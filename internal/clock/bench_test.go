package clock

import (
	"testing"
	"time"
)

// BenchmarkVirtualSleepCycle measures one full virtual sleep + advance
// cycle with a single participant — the simulator's pacing cost.
func BenchmarkVirtualSleepCycle(b *testing.B) {
	v := NewVirtual()
	v.Add(1)
	defer v.Add(-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Sleep(time.Millisecond)
	}
}

// BenchmarkVirtualContended measures the advance cycle with 4 sleepers.
func BenchmarkVirtualContended(b *testing.B) {
	v := NewVirtual()
	const workers = 4
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		v.Add(1)
		go func(w int) {
			defer v.Add(-1)
			for {
				select {
				case <-done:
					return
				default:
					v.Sleep(time.Duration(w+1) * time.Millisecond)
				}
			}
		}(w)
	}
	v.Add(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Sleep(2 * time.Millisecond)
	}
	b.StopTimer()
	close(done)
	v.Add(-1)
}
