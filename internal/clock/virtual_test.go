package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualSingleSleeperAdvances(t *testing.T) {
	v := NewVirtual()
	v.Add(1)
	defer v.Add(-1)
	start := time.Now()
	v.Sleep(5 * time.Hour) // virtual hours cost ~nothing
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("virtual sleep took %v wall time", wall)
	}
	if got := v.Now(); got != 5*time.Hour {
		t.Fatalf("Now = %v, want 5h", got)
	}
}

func TestVirtualSleepNonPositive(t *testing.T) {
	v := NewVirtual()
	v.Add(1)
	defer v.Add(-1)
	v.Sleep(0)
	v.Sleep(-time.Second)
	if v.Now() != 0 {
		t.Fatal("non-positive sleeps must not advance time")
	}
}

func TestVirtualSleepersWakeInDeadlineOrder(t *testing.T) {
	v := NewVirtual()
	v.Add(1) // main participates

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		v.Add(1)
		go func(id int, d time.Duration) {
			defer wg.Done()
			defer v.Add(-1)
			v.Sleep(d)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}(i, d)
	}
	// Main sleeps past everyone; all three wake strictly before it.
	v.Sleep(time.Second)
	v.Add(-1)
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("wake order = %v, want [1 2 0]", order)
	}
	if v.Now() != time.Second {
		t.Fatalf("Now = %v", v.Now())
	}
}

func TestVirtualBlockEnterAllowsAdvance(t *testing.T) {
	v := NewVirtual()

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	ready := false

	var wg sync.WaitGroup
	// Consumer parks on a condition variable, bracketed by
	// BlockEnter/BlockExit.
	wg.Add(1)
	v.Add(1)
	go func() {
		defer wg.Done()
		defer v.Add(-1)
		mu.Lock()
		for !ready {
			v.BlockEnter()
			cond.Wait()
			v.BlockExit()
		}
		mu.Unlock()
	}()

	// Producer sleeps 10ms of virtual time, then signals.
	wg.Add(1)
	v.Add(1)
	go func() {
		defer wg.Done()
		defer v.Add(-1)
		v.Sleep(10 * time.Millisecond) // must advance despite the parked consumer
		mu.Lock()
		ready = true
		mu.Unlock()
		cond.Broadcast()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: clock did not advance past a parked participant")
	}
	if v.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v", v.Now())
	}
}

func TestVirtualManyConcurrentSleepCycles(t *testing.T) {
	v := NewVirtual()
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		v.Add(1)
		go func(w int) {
			defer wg.Done()
			defer v.Add(-1)
			for r := 0; r < rounds; r++ {
				v.Sleep(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("virtual clock stalled")
	}
	// The slowest worker slept 8ms × 200 = 1.6s of virtual time; the
	// clock must have reached at least that.
	if got := v.Now(); got < 1600*time.Millisecond {
		t.Fatalf("Now = %v, want ≥ 1.6s", got)
	}
}

func TestVirtualActiveAccounting(t *testing.T) {
	v := NewVirtual()
	if v.Active() != 0 {
		t.Fatal("fresh clock must be idle")
	}
	v.Add(2)
	if v.Active() != 2 {
		t.Fatalf("Active = %d", v.Active())
	}
	v.BlockEnter()
	if v.Active() != 1 {
		t.Fatalf("Active after BlockEnter = %d", v.Active())
	}
	v.BlockExit()
	v.Add(-2)
	if v.Active() != 0 {
		t.Fatalf("Active = %d", v.Active())
	}
}

func TestVirtualTimeIsMonotone(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var last time.Duration
	for w := 0; w < 4; w++ {
		wg.Add(1)
		v.Add(1)
		go func() {
			defer wg.Done()
			defer v.Add(-1)
			for r := 0; r < 100; r++ {
				v.Sleep(time.Millisecond)
				now := v.Now()
				mu.Lock()
				if now < last {
					t.Errorf("time went backwards: %v after %v", now, last)
				}
				if now > last {
					last = now
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
