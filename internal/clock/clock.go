// Package clock abstracts time for the runtime so that experiments can run
// the paper's workload at scaled-down wall-clock cost and unit tests can
// drive time by hand.
//
// All runtime timing is expressed as a time.Duration offset from the
// clock's epoch ("runtime time"). A ScaledClock lets an application declare
// paper-scale durations (a 250 ms tracker stage) while the process sleeps a
// fraction of that, so recorded metrics remain in paper units.
package clock

import (
	"sync"
	"time"
)

// Clock supplies runtime time and sleeping. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the runtime time elapsed since the clock's epoch.
	Now() time.Duration
	// Sleep blocks the caller for d of runtime time. Non-positive
	// durations return immediately.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the process monotonic clock.
type Real struct {
	epoch time.Time
}

// NewReal returns a real clock whose epoch is the moment of the call.
func NewReal() *Real { return &Real{epoch: time.Now()} }

// Now implements Clock.
func (r *Real) Now() time.Duration { return time.Since(r.epoch) }

// Sleep implements Clock.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Scaled is a Clock that runs faster (Scale > 1) or slower (Scale < 1)
// than its base clock. Durations observed through Now and requested via
// Sleep are in *virtual* units: Sleep(d) blocks the caller for d/Scale of
// base time, and Now reports base elapsed time multiplied by Scale.
type Scaled struct {
	base  Clock
	scale float64
}

// NewScaled wraps base so virtual time advances scale times faster than
// base time. scale must be positive; NewScaled panics otherwise since a
// non-positive scale would freeze or reverse time.
func NewScaled(base Clock, scale float64) *Scaled {
	if scale <= 0 {
		panic("clock: scale must be positive")
	}
	return &Scaled{base: base, scale: scale}
}

// Now implements Clock.
func (s *Scaled) Now() time.Duration {
	return time.Duration(float64(s.base.Now()) * s.scale)
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.base.Sleep(time.Duration(float64(d) / s.scale))
}

// Manual is a Clock driven explicitly by tests. Sleepers block until
// Advance moves the current time past their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Duration
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Duration
	done     chan struct{}
}

// NewManual returns a manual clock starting at time zero.
func NewManual() *Manual { return &Manual{} }

// Now implements Clock.
func (m *Manual) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock. The caller blocks until Advance has moved the
// clock at least d beyond the current time.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	w := &manualWaiter{deadline: m.now + d, done: make(chan struct{})}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()
	<-w.done
}

// Advance moves the clock forward by d, releasing every sleeper whose
// deadline has been reached. Negative d panics: manual time is monotone.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: cannot advance a Manual clock backwards")
	}
	m.mu.Lock()
	m.now += d
	remaining := m.waiters[:0]
	var released []*manualWaiter
	for _, w := range m.waiters {
		if w.deadline <= m.now {
			released = append(released, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range released {
		close(w.done)
	}
}

// Sleepers returns the number of goroutines currently blocked in Sleep.
// Tests use it to know when workers have quiesced before advancing.
func (m *Manual) Sleepers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// Stopwatch measures spans of runtime time on a Clock. The zero value is
// not usable; construct with NewStopwatch.
type Stopwatch struct {
	clk   Clock
	start time.Duration
}

// NewStopwatch returns a stopwatch started at the current clock time.
func NewStopwatch(clk Clock) *Stopwatch {
	return &Stopwatch{clk: clk, start: clk.Now()}
}

// Elapsed returns the time since the stopwatch was started or last Reset.
func (sw *Stopwatch) Elapsed() time.Duration { return sw.clk.Now() - sw.start }

// Reset restarts the stopwatch at the current clock time and returns the
// span that had elapsed.
func (sw *Stopwatch) Reset() time.Duration {
	now := sw.clk.Now()
	e := now - sw.start
	sw.start = now
	return e
}
