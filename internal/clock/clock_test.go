package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealMonotone(t *testing.T) {
	c := NewReal()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("real clock must advance: %v then %v", a, b)
	}
}

func TestRealSleepNonPositive(t *testing.T) {
	c := NewReal()
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-positive Sleep must return immediately")
	}
}

func TestScaledSpeedsUpSleep(t *testing.T) {
	base := NewManual()
	c := NewScaled(base, 10)

	done := make(chan struct{})
	go func() {
		c.Sleep(100 * time.Millisecond) // should need only 10ms of base time
		close(done)
	}()
	waitForSleepers(t, base, 1)
	base.Advance(10 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("scaled Sleep(100ms) at 10x should finish after 10ms base time")
	}
}

func TestScaledNow(t *testing.T) {
	base := NewManual()
	c := NewScaled(base, 20)
	base.Advance(5 * time.Millisecond)
	if got := c.Now(); got != 100*time.Millisecond {
		t.Fatalf("scaled Now = %v, want 100ms", got)
	}
}

func TestScaledRejectsBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScaled(_, 0) must panic")
		}
	}()
	NewScaled(NewManual(), 0)
}

func TestManualSleepReleasesInOrder(t *testing.T) {
	m := NewManual()
	var mu sync.Mutex
	var woke []int

	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		go func(id int, d time.Duration) {
			defer wg.Done()
			m.Sleep(d)
			mu.Lock()
			woke = append(woke, id)
			mu.Unlock()
		}(i, d)
	}
	waitForSleepers(t, m, 3)

	m.Advance(10 * time.Millisecond) // releases sleeper 1
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(woke)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for first sleeper to wake")
		}
		time.Sleep(100 * time.Microsecond)
	}
	mu.Lock()
	if woke[0] != 1 {
		t.Fatalf("after 10ms woke = %v, want [1]", woke)
	}
	mu.Unlock()

	m.Advance(20 * time.Millisecond) // releases the rest
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want all three", woke)
	}
}

func TestManualAdvanceBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) must panic")
		}
	}()
	NewManual().Advance(-1)
}

func TestManualSleepZeroReturns(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		m.Sleep(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) must not block")
	}
}

func TestStopwatch(t *testing.T) {
	m := NewManual()
	sw := NewStopwatch(m)
	m.Advance(7 * time.Millisecond)
	if got := sw.Elapsed(); got != 7*time.Millisecond {
		t.Fatalf("Elapsed = %v", got)
	}
	if got := sw.Reset(); got != 7*time.Millisecond {
		t.Fatalf("Reset = %v", got)
	}
	m.Advance(3 * time.Millisecond)
	if got := sw.Elapsed(); got != 3*time.Millisecond {
		t.Fatalf("Elapsed after Reset = %v", got)
	}
}

// waitForSleepers polls until n goroutines are blocked in m.Sleep.
func waitForSleepers(t *testing.T, m *Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.Sleepers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d sleepers (have %d)", n, m.Sleepers())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
