package clock

import (
	"runtime"
	"sync"
	"time"
)

// Virtual is a discrete-event clock: virtual time stands still while any
// registered goroutine is runnable and jumps to the next sleeper's
// deadline once every participant is blocked (sleeping on the clock or
// parked in a buffer wait). Simulated workloads run as fast as the host
// can execute them, with microsecond-exact virtual durations — essential
// on small hosts where real time.Sleep granularity would distort
// millisecond-scale stage periods.
//
// Protocol:
//
//   - Every goroutine that calls Sleep must be registered: Add(1) before
//     its first clock use, Add(-1) when it exits.
//   - Code that blocks a registered goroutine on anything other than
//     Sleep (condition variables in buffers) must bracket the wait with
//     BlockEnter/BlockExit so the clock knows the goroutine is parked.
//
// Advancement is guarded by a quiescence check: when the active count
// hits zero, a one-shot advancer re-verifies quiescence across several
// scheduler yields before jumping, so goroutines that were just woken by
// a broadcast get to run (and re-register as active) first.
type Virtual struct {
	mu       sync.Mutex
	now      time.Duration
	active   int
	gen      uint64
	sleepers map[*vSleeper]struct{}
}

type vSleeper struct {
	deadline time.Duration
	ch       chan struct{}
}

// Blocker is implemented by clocks that need to know when a registered
// goroutine parks outside of Sleep. Buffers test for it.
type Blocker interface {
	BlockEnter()
	BlockExit()
}

// Registrar is implemented by clocks that track participant goroutines.
type Registrar interface {
	Add(delta int)
}

var (
	_ Clock     = (*Virtual)(nil)
	_ Blocker   = (*Virtual)(nil)
	_ Registrar = (*Virtual)(nil)
)

// NewVirtual returns a virtual clock at time zero with no participants.
func NewVirtual() *Virtual {
	return &Virtual{sleepers: make(map[*vSleeper]struct{})}
}

// Now implements Clock.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Add adjusts the registered-participant count. A participant is counted
// active while runnable; Sleep and BlockEnter mark it inactive.
func (v *Virtual) Add(delta int) {
	v.mu.Lock()
	v.active += delta
	v.gen++
	kick := v.active == 0
	gen := v.gen
	v.mu.Unlock()
	if kick {
		go v.tryAdvance(gen)
	}
}

// Active returns the current active participant count (for tests).
func (v *Virtual) Active() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.active
}

// Sleep implements Clock: the calling participant becomes inactive until
// virtual time reaches now+d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	s := &vSleeper{deadline: v.now + d, ch: make(chan struct{})}
	v.sleepers[s] = struct{}{}
	v.active--
	v.gen++
	kick := v.active == 0
	gen := v.gen
	v.mu.Unlock()
	if kick {
		go v.tryAdvance(gen)
	}
	<-s.ch
}

// BlockEnter implements Blocker: the participant is about to park on an
// external wait (condition variable).
func (v *Virtual) BlockEnter() {
	v.mu.Lock()
	v.active--
	v.gen++
	kick := v.active == 0
	gen := v.gen
	v.mu.Unlock()
	if kick {
		go v.tryAdvance(gen)
	}
}

// BlockExit implements Blocker: the participant resumed from an external
// wait.
func (v *Virtual) BlockExit() {
	v.mu.Lock()
	v.active++
	v.gen++
	v.mu.Unlock()
}

// tryAdvance verifies quiescence (no activity since gen across several
// scheduler yields) and then jumps virtual time to the earliest sleeper
// deadline, waking everything due. Woken sleepers become active before
// their channels are closed, so the clock can never double-advance past
// them.
func (v *Virtual) tryAdvance(gen uint64) {
	for i := 0; i < 16; i++ {
		runtime.Gosched()
		v.mu.Lock()
		stale := v.gen != gen || v.active != 0
		v.mu.Unlock()
		if stale {
			return
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.gen != gen || v.active != 0 || len(v.sleepers) == 0 {
		return
	}
	// Jump to the earliest deadline.
	var next time.Duration = -1
	for s := range v.sleepers {
		if next < 0 || s.deadline < next {
			next = s.deadline
		}
	}
	if next > v.now {
		v.now = next
	}
	var wake []*vSleeper
	for s := range v.sleepers {
		if s.deadline <= v.now {
			wake = append(wake, s)
		}
	}
	for _, s := range wake {
		delete(v.sleepers, s)
		v.active++
	}
	v.gen++
	for _, s := range wake {
		close(s.ch)
	}
}
