package kiosk

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/trace"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.InterestRate != 0.5 {
		t.Error("default interest rate")
	}
	if cfg.Timing != DefaultTiming() || cfg.Sizes != DefaultSizes() {
		t.Error("default timing/sizes")
	}
	if cfg.Collector == nil || cfg.Collector.Name() != "dgc" {
		t.Error("default collector")
	}
	bad := Config{InterestRate: 1.7}.withDefaults()
	if bad.InterestRate != 0.5 {
		t.Error("out-of-range interest rate must reset")
	}
}

func TestGraphStructure(t *testing.T) {
	app, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := app.Runtime.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	threads, channels, queues := 0, 0, 0
	g.Nodes(func(n *graph.Node) {
		switch n.Kind {
		case graph.KindThread:
			threads++
		case graph.KindChannel:
			channels++
		case graph.KindQueue:
			queues++
		}
	})
	if threads != 5 || channels != 4 || queues != 1 {
		t.Fatalf("topology = %d threads, %d channels, %d queues", threads, channels, queues)
	}
	srcs := g.SourceThreads()
	if len(srcs) != 1 || g.Node(srcs[0]).Name != "digitizer" {
		t.Fatalf("sources = %v", srcs)
	}
}

// run executes for d, sampling the decision-queue occupancy just before
// shutdown (Stop drains queues, so occupancy must be read live).
func run(t *testing.T, cfg Config, d time.Duration) (*trace.Analysis, int) {
	t.Helper()
	app, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Runtime.Start(); err != nil {
		t.Fatal(err)
	}
	// Sleep on the virtual clock as a registered participant.
	if reg, ok := app.Runtime.Clock().(clock.Registrar); ok {
		reg.Add(1)
		app.Runtime.Clock().Sleep(d)
		reg.Add(-1)
	} else {
		app.Runtime.Clock().Sleep(d)
	}
	qItems, _ := app.Runtime.Buffer(app.DecisionQueue).Occupancy()
	app.Runtime.Stop()
	if err := app.Runtime.Wait(); err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(app.Recorder, trace.AnalyzeOptions{From: d / 10, To: d})
	if err != nil {
		t.Fatal(err)
	}
	return a, qItems
}

// TestQueueGrowsWithoutARU: the Decision stage forwards interesting
// records faster than the high-fidelity tracker can absorb them; without
// feedback the decision queue grows without bound.
func TestQueueGrowsWithoutARU(t *testing.T) {
	_, qOff := run(t, Config{Seed: 42, Policy: core.PolicyOff()}, 60*time.Second)
	_, qMin := run(t, Config{Seed: 42, Policy: core.PolicyMin()}, 60*time.Second)

	// No ARU: ~10 records/s in, ~5.7/s out → dozens queued after 60 s.
	if qOff < 50 {
		t.Fatalf("unthrottled decision queue holds only %d records; expected unbounded growth", qOff)
	}
	// ARU: the demand signal crosses the queue; occupancy stays small.
	if qMin > 10 {
		t.Fatalf("ARU-min decision queue holds %d records; feedback through the queue failed", qMin)
	}
}

// TestARUBoundsFootprint: same story in bytes.
func TestARUBoundsFootprint(t *testing.T) {
	aOff, _ := run(t, Config{Seed: 42, Policy: core.PolicyOff()}, 60*time.Second)
	aMin, _ := run(t, Config{Seed: 42, Policy: core.PolicyMin()}, 60*time.Second)
	// Most bytes are frames; the unbounded queue holds tiny records, so
	// the byte-level gap is smaller than the tracker's — but still
	// decisive.
	if aMin.All.MeanBytes >= 0.7*aOff.All.MeanBytes {
		t.Fatalf("ARU-min footprint %.0f must be well under No-ARU %.0f",
			aMin.All.MeanBytes, aOff.All.MeanBytes)
	}
	if aMin.Outputs == 0 || aOff.Outputs == 0 {
		t.Fatal("no outputs")
	}
}

// TestDecisionAwareCompressor: the §3.3.2 user-defined operator recovers
// the throughput plain min sacrifices, while keeping the queue bounded.
func TestDecisionAwareCompressor(t *testing.T) {
	aPlain, _ := run(t, Config{Seed: 42, Policy: core.PolicyMin()}, 90*time.Second)
	aAware, qAware := run(t, Config{
		Seed: 42, Policy: core.PolicyMin(), DecisionAwareCompressor: true,
	}, 90*time.Second)

	// The rate-scaled operator lets the front run ~1/InterestRate faster,
	// so the GUI sees substantially more results.
	if float64(aAware.Outputs) < 1.4*float64(aPlain.Outputs) {
		t.Fatalf("decision-aware compressor outputs %d, plain min %d; expected ~2x",
			aAware.Outputs, aPlain.Outputs)
	}
	// Still bounded: the operator matches, not exceeds, the sink rate.
	if qAware > 25 {
		t.Fatalf("decision-aware compressor queue grew to %d", qAware)
	}
}

func TestRunHelperValidation(t *testing.T) {
	app, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(time.Second, 2*time.Second); err == nil {
		t.Fatal("warmup ≥ duration must fail")
	}
}
