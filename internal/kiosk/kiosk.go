// Package kiosk implements the paper's *other* pipeline: the Figure 1
// vision application, drawn from the Smart Kiosk system (Rehg et al.,
// CVPR 1997 — the paper's reference [25]) that motivated Stampede:
//
//	Camera → Digitizer ──frames──▶ Low-fi tracker ──low-fi records──▶ Decision
//	              │                                                      │
//	              │                                          decision records (queue)
//	              │                                                      ▼
//	              └────────frames──────────────────────────▶ High-fi tracker ──▶ GUI
//
// The cheap low-fidelity tracker scans every frame; a Decision task
// forwards only the interesting detections as *decision records* into a
// Stampede queue (records must not be lost, unlike frames); the expensive
// high-fidelity tracker dequeues each record, grabs the freshest frame,
// and runs a detailed analysis whose result the GUI displays.
//
// The topology stresses a different ARU property than the Figure 5
// tracker: the feedback has to travel through a *queue* and a
// data-dependent filter (the Decision stage forwards only a fraction of
// its inputs). Without ARU the decision queue grows without bound
// whenever interesting activity outpaces the high-fidelity tracker; with
// ARU the demand signal propagates through the queue and the whole front
// of the pipeline slows to what the back can absorb.
package kiosk

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/runtime"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vt"
)

// Timing holds the stage periods.
type Timing struct {
	// CameraPeriod is the digitizer's frame interval.
	CameraPeriod time.Duration
	// DigitizeCost is the digitizer's busy time per frame.
	DigitizeCost time.Duration
	// LowFiCost is the cheap tracker's per-frame compute.
	LowFiCost time.Duration
	// DecisionCost is the decision task's per-record compute.
	DecisionCost time.Duration
	// HighFiCost is the expensive tracker's per-record compute.
	HighFiCost time.Duration
	// GUICost is the display compute per result.
	GUICost time.Duration
	// NoiseSigma is the log-normal execution-noise σ.
	NoiseSigma float64
}

// DefaultTiming makes the high-fidelity tracker the bottleneck, ~4× the
// low-fidelity rate.
func DefaultTiming() Timing {
	return Timing{
		CameraPeriod: 33 * time.Millisecond,
		DigitizeCost: 6 * time.Millisecond,
		LowFiCost:    45 * time.Millisecond,
		DecisionCost: 8 * time.Millisecond,
		HighFiCost:   170 * time.Millisecond,
		GUICost:      15 * time.Millisecond,
		NoiseSigma:   0.10,
	}
}

// Sizes holds the per-item logical sizes.
type Sizes struct {
	Frame, LowFiRecord, DecisionRecord, HighFiRecord int64
}

// DefaultSizes mirrors the tracker's frame size with small records.
func DefaultSizes() Sizes {
	return Sizes{Frame: 738 << 10, LowFiRecord: 4 << 10, DecisionRecord: 256, HighFiRecord: 2 << 10}
}

// Config assembles one kiosk run.
type Config struct {
	// Seed drives the synthetic randomness.
	Seed int64
	// Policy is the ARU policy under test.
	Policy core.Policy
	// InterestRate is the fraction of low-fi records the Decision task
	// forwards as decision records (default 0.5).
	InterestRate float64
	// Timing and Sizes default via DefaultTiming/DefaultSizes.
	Timing Timing
	Sizes  Sizes
	// Collector defaults to DGC.
	Collector gc.Collector
	// QueueCapacity optionally bounds the decision queue (0 = unbounded,
	// exposing the growth pathology ARU fixes).
	QueueCapacity int
	// BusBytesPerSec defaults to the tracker's calibrated bus.
	BusBytesPerSec float64
	// DecisionAwareCompressor installs a user-defined compression
	// operator on the Decision node (§3.3.2's application-supplied
	// functions): because Decision forwards only InterestRate of its
	// inputs, it can sustain a period of InterestRate × its consumer's
	// period without flooding the queue. Plain min over-throttles the
	// front of the pipeline by 1/InterestRate; the custom operator
	// recovers that throughput while keeping the queue bounded.
	DecisionAwareCompressor bool
}

func (cfg Config) withDefaults() Config {
	if cfg.InterestRate <= 0 || cfg.InterestRate > 1 {
		cfg.InterestRate = 0.5
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.Sizes == (Sizes{}) {
		cfg.Sizes = DefaultSizes()
	}
	if cfg.Collector == nil {
		cfg.Collector = gc.NewDeadTimestamp()
	}
	if cfg.BusBytesPerSec == 0 {
		cfg.BusBytesPerSec = 120e6
	}
	return cfg
}

// App is a built kiosk application.
type App struct {
	cfg      Config
	Runtime  *runtime.Runtime
	Recorder *trace.Recorder
	// DecisionQueue exposes the queue for occupancy assertions.
	DecisionQueue *runtime.QueueRef
}

// LowFiRecord is the cheap tracker's output payload.
type LowFiRecord struct {
	FrameTS  vt.Timestamp
	Activity float64
}

// DecisionRecord is the decision task's output payload.
type DecisionRecord struct {
	FrameTS  vt.Timestamp
	Priority float64
}

// HighFiRecord is the expensive tracker's output payload.
type HighFiRecord struct {
	FrameTS vt.Timestamp
	Detail  float64
}

// New builds the Figure 1 pipeline on a discrete-event clock.
func New(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.DecisionAwareCompressor && cfg.Policy.Enabled {
		rate := cfg.InterestRate
		inner := cfg.Policy.Compressor
		if inner == nil {
			inner = core.Min
		}
		if cfg.Policy.PerNode == nil {
			cfg.Policy.PerNode = map[string]core.Compressor{}
		}
		cfg.Policy.PerNode["decision"] = core.Func{
			FuncName: fmt.Sprintf("rate-scaled(%s,%.2f)", inner.Name(), rate),
			Fn: func(vec []core.STP) core.STP {
				v := inner.Compress(vec)
				if !v.Known() {
					return v
				}
				return core.STP(float64(v) * rate)
			},
		}
	}
	clk := clock.NewVirtual()
	cluster := transport.NewCluster(clk, transport.ClusterSpec{
		Hosts: 1, BusBytesPerSec: cfg.BusBytesPerSec,
	})
	rec := trace.NewRecorder()
	rt := runtime.New(runtime.Options{
		Clock: clk, Cluster: cluster, Collector: cfg.Collector,
		ARU: cfg.Policy, Recorder: rec,
	})
	app := &App{cfg: cfg, Runtime: rt, Recorder: rec}
	if err := app.build(); err != nil {
		return nil, err
	}
	return app, nil
}

func (a *App) build() error {
	cfg := a.cfg
	rt := a.Runtime
	tm := cfg.Timing
	sz := cfg.Sizes

	framesLow, err := rt.AddChannel("frames-lowfi", 0)
	if err != nil {
		return err
	}
	framesHigh := rt.MustAddChannel("frames-highfi", 0)
	lowRecords := rt.MustAddChannel("lowfi-records", 0)
	decisions := rt.MustAddQueue("decision-records", 0, runtime.WithQueueCapacity(cfg.QueueCapacity))
	highRecords := rt.MustAddChannel("highfi-records", 0)
	a.DecisionQueue = decisions

	noise := func(rng *rand.Rand) float64 {
		if tm.NoiseSigma <= 0 {
			return 1
		}
		return math.Exp(rng.NormFloat64() * tm.NoiseSigma)
	}
	scale := func(d time.Duration, f float64) time.Duration {
		return time.Duration(float64(d) * f)
	}

	digitizer := rt.MustAddThread("digitizer", 0, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		outs := ctx.Outs()
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(scale(tm.DigitizeCost, noise(rng)))
			for _, out := range outs {
				if err := ctx.Put(out, ts, nil, sz.Frame); err != nil {
					return err
				}
			}
			ctx.Idle(tm.CameraPeriod - ctx.Elapsed())
			ctx.Sync()
		}
		return nil
	})

	lowfi := rt.MustAddThread("lowfi-tracker", 0, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		in := ctx.Ins()[0]
		out := ctx.Outs()[0]
		for {
			msg, err := ctx.GetLatest(in)
			if err != nil {
				return err
			}
			ctx.Compute(scale(tm.LowFiCost, noise(rng)))
			rec := LowFiRecord{FrameTS: msg.TS, Activity: rng.Float64()}
			if err := ctx.Put(out, msg.TS, rec, sz.LowFiRecord); err != nil {
				return err
			}
			ctx.Sync()
		}
	})

	decision := rt.MustAddThread("decision", 0, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 2))
		in := ctx.Ins()[0]
		out := ctx.Outs()[0]
		for {
			msg, err := ctx.GetLatest(in)
			if err != nil {
				return err
			}
			ctx.Compute(scale(tm.DecisionCost, noise(rng)))
			low := msg.Payload.(LowFiRecord)
			if low.Activity < cfg.InterestRate { // interesting: escalate
				rec := DecisionRecord{FrameTS: low.FrameTS, Priority: 1 - low.Activity}
				if err := ctx.Put(out, msg.TS, rec, sz.DecisionRecord); err != nil {
					return err
				}
			}
			ctx.Sync()
		}
	})

	highfi := rt.MustAddThread("highfi-tracker", 0, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		ins := ctx.Ins() // [decision queue, frames]
		out := ctx.Outs()[0]
		for {
			rec, err := ctx.Get(ins[0]) // unified get: FIFO — every decision is honored
			if err != nil {
				return err
			}
			if _, err := ctx.GetLatest(ins[1]); err != nil { // freshest frame
				return err
			}
			ctx.Compute(scale(tm.HighFiCost, noise(rng)))
			hi := HighFiRecord{FrameTS: rec.Payload.(DecisionRecord).FrameTS, Detail: rng.Float64()}
			if err := ctx.Put(out, rec.TS, hi, sz.HighFiRecord); err != nil {
				return err
			}
			ctx.Sync()
		}
	})

	gui := rt.MustAddThread("gui", 0, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 4))
		in := ctx.Ins()[0]
		for {
			if _, err := ctx.GetLatest(in); err != nil {
				return err
			}
			ctx.Compute(scale(tm.GUICost, noise(rng)))
			ctx.Emit()
			ctx.Sync()
		}
	})

	digitizer.MustOutput(framesLow)
	digitizer.MustOutput(framesHigh)
	lowfi.MustInput(framesLow)
	lowfi.MustOutput(lowRecords)
	decision.MustInput(lowRecords)
	decision.MustOutput(decisions)
	highfi.MustInput(decisions)
	highfi.MustInput(framesHigh)
	highfi.MustOutput(highRecords)
	gui.MustInput(highRecords)

	return nil
}

// Run executes the kiosk for d of virtual time and analyzes the window
// after warmup.
func (a *App) Run(d, warmup time.Duration) (*trace.Analysis, error) {
	if warmup >= d {
		return nil, fmt.Errorf("kiosk: warmup %v must be shorter than run %v", warmup, d)
	}
	if err := a.Runtime.RunFor(d); err != nil {
		return nil, err
	}
	return trace.Analyze(a.Recorder, trace.AnalyzeOptions{From: warmup, To: d})
}
