// Package vt implements virtual time for the Stampede-style streaming
// runtime: timestamps, half-open intervals, and ordered timestamp sets.
//
// Every data item produced by an application thread is tagged with a
// Timestamp. Timestamps index the virtual (or wall-clock) time of the
// application and preserve the temporal locality that interactive
// multimedia algorithms rely on (corresponding frames across cameras,
// sliding windows over a stream, and so on).
package vt

import (
	"fmt"
	"math"
)

// Timestamp is a point in the application's virtual time. Values are
// application defined; the digitizer in the tracker application uses the
// frame number. Negative values are valid application timestamps; the
// distinguished values None and Infinity bound the range.
type Timestamp int64

const (
	// None is the timestamp "before all items": no item carries it, and
	// every valid timestamp compares greater than it. A consumer that has
	// consumed nothing yet has guarantee None.
	None Timestamp = math.MinInt64

	// Infinity compares greater than every valid timestamp. A detached
	// consumer has guarantee Infinity: it will never request anything.
	Infinity Timestamp = math.MaxInt64
)

// Valid reports whether t is an ordinary application timestamp, i.e.
// neither None nor Infinity.
func (t Timestamp) Valid() bool { return t != None && t != Infinity }

// Before reports whether t is strictly earlier than u.
func (t Timestamp) Before(u Timestamp) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Timestamp) After(u Timestamp) bool { return t > u }

// Next returns the smallest timestamp strictly greater than t. Next of
// Infinity is Infinity.
func (t Timestamp) Next() Timestamp {
	if t == Infinity {
		return Infinity
	}
	return t + 1
}

// Prev returns the largest timestamp strictly less than t. Prev of None is
// None.
func (t Timestamp) Prev() Timestamp {
	if t == None {
		return None
	}
	return t - 1
}

// String renders the timestamp, using symbolic names for the bounds.
func (t Timestamp) String() string {
	switch t {
	case None:
		return "ts(-inf)"
	case Infinity:
		return "ts(+inf)"
	default:
		return fmt.Sprintf("ts(%d)", int64(t))
	}
}

// Min returns the earlier of a and b.
func Min(a, b Timestamp) Timestamp {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Timestamp) Timestamp {
	if a > b {
		return a
	}
	return b
}

// Interval is the half-open virtual-time interval [Lo, Hi). An interval
// with Hi <= Lo is empty.
type Interval struct {
	Lo, Hi Timestamp
}

// Empty reports whether the interval contains no timestamps.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether t lies within [Lo, Hi).
func (iv Interval) Contains(t Timestamp) bool { return t >= iv.Lo && t < iv.Hi }

// Len returns the number of timestamps in the interval. Intervals touching
// None or Infinity report math.MaxInt64.
func (iv Interval) Len() int64 {
	if iv.Empty() {
		return 0
	}
	if iv.Lo == None || iv.Hi == Infinity {
		return math.MaxInt64
	}
	return int64(iv.Hi - iv.Lo)
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: Max(iv.Lo, other.Lo), Hi: Min(iv.Hi, other.Hi)}
}

// Union returns the smallest interval covering both inputs. Empty inputs
// are ignored; the union of two empty intervals is empty.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Lo: Min(iv.Lo, other.Lo), Hi: Max(iv.Hi, other.Hi)}
}

// String renders the interval in [lo, hi) form.
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Lo, iv.Hi)
}
