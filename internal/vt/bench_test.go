package vt

import "testing"

// BenchmarkSetAddRemove measures the live-set churn of a channel under a
// steady put/consume cycle.
func BenchmarkSetAddRemove(b *testing.B) {
	s := NewSet()
	for ts := Timestamp(0); ts < 16; ts++ {
		s.Add(ts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := Timestamp(16 + i)
		s.Add(ts)
		s.Remove(ts - 16)
	}
}

// BenchmarkSetRemoveBelow measures guarantee-advance sweeps.
func BenchmarkSetRemoveBelow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSet()
		for ts := Timestamp(0); ts < 64; ts++ {
			s.Add(ts)
		}
		b.StartTimer()
		s.RemoveBelow(48)
	}
}
