package vt

import (
	"math"
	"testing"
)

func TestTimestampBounds(t *testing.T) {
	if None.Valid() {
		t.Error("None must not be Valid")
	}
	if Infinity.Valid() {
		t.Error("Infinity must not be Valid")
	}
	if !Timestamp(0).Valid() {
		t.Error("ts(0) must be Valid")
	}
	if !Timestamp(-42).Valid() {
		t.Error("negative application timestamps are valid")
	}
	if !None.Before(Timestamp(math.MinInt64 + 1)) {
		t.Error("None must sort before every other timestamp")
	}
	if !Timestamp(math.MaxInt64 - 1).Before(Infinity) {
		t.Error("Infinity must sort after every other timestamp")
	}
}

func TestTimestampNextPrev(t *testing.T) {
	cases := []struct {
		in         Timestamp
		next, prev Timestamp
	}{
		{Timestamp(0), Timestamp(1), Timestamp(-1)},
		{Timestamp(41), Timestamp(42), Timestamp(40)},
		{Infinity, Infinity, Infinity - 1},
		{None, None + 1, None},
	}
	for _, c := range cases {
		if got := c.in.Next(); got != c.next {
			t.Errorf("%v.Next() = %v, want %v", c.in, got, c.next)
		}
		if got := c.in.Prev(); got != c.prev {
			t.Errorf("%v.Prev() = %v, want %v", c.in, got, c.prev)
		}
	}
}

func TestTimestampString(t *testing.T) {
	if got := Timestamp(7).String(); got != "ts(7)" {
		t.Errorf("String = %q", got)
	}
	if got := None.String(); got != "ts(-inf)" {
		t.Errorf("None.String = %q", got)
	}
	if got := Infinity.String(); got != "ts(+inf)" {
		t.Errorf("Infinity.String = %q", got)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(None, 0) != None || Max(Infinity, 0) != Infinity {
		t.Error("bounds must win Min/Max")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5}
	if iv.Empty() {
		t.Fatal("non-empty interval reported Empty")
	}
	if iv.Len() != 3 {
		t.Errorf("Len = %d, want 3", iv.Len())
	}
	for _, ts := range []Timestamp{2, 3, 4} {
		if !iv.Contains(ts) {
			t.Errorf("interval must contain %v", ts)
		}
	}
	for _, ts := range []Timestamp{1, 5, 100} {
		if iv.Contains(ts) {
			t.Errorf("interval must not contain %v", ts)
		}
	}
	if !(Interval{Lo: 5, Hi: 5}).Empty() || !(Interval{Lo: 6, Hi: 5}).Empty() {
		t.Error("degenerate intervals must be empty")
	}
}

func TestIntervalUnboundedLen(t *testing.T) {
	if (Interval{Lo: None, Hi: 5}).Len() != math.MaxInt64 {
		t.Error("interval from None must report unbounded length")
	}
	if (Interval{Lo: 5, Hi: Infinity}).Len() != math.MaxInt64 {
		t.Error("interval to Infinity must report unbounded length")
	}
}

func TestIntervalIntersectUnion(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 15}
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Errorf("Intersect = %v", got)
	}
	u := a.Union(b)
	if u.Lo != 0 || u.Hi != 15 {
		t.Errorf("Union = %v", u)
	}
	empty := Interval{Lo: 3, Hi: 3}
	if got := empty.Union(a); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := a.Union(empty); got != a {
		t.Errorf("Union with empty (rhs) = %v, want %v", got, a)
	}
	disjoint := a.Intersect(Interval{Lo: 20, Hi: 30})
	if !disjoint.Empty() {
		t.Errorf("disjoint Intersect must be empty, got %v", disjoint)
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 4}
	if got := iv.String(); got != "[ts(1), ts(4))" {
		t.Errorf("String = %q", got)
	}
}
