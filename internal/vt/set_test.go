package vt

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetAddRemoveContains(t *testing.T) {
	s := NewSet()
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set must be empty")
	}
	if !s.Add(5) {
		t.Error("first Add must report change")
	}
	if s.Add(5) {
		t.Error("duplicate Add must report no change")
	}
	s.Add(1)
	s.Add(9)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(5) || s.Contains(6) {
		t.Error("Contains broken")
	}
	if !s.Remove(5) {
		t.Error("Remove of present element must report true")
	}
	if s.Remove(5) {
		t.Error("Remove of absent element must report false")
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []Timestamp{1, 9}) {
		t.Errorf("Slice = %v", got)
	}
}

func TestSetMinMaxEmpty(t *testing.T) {
	s := NewSet()
	if s.Min() != Infinity {
		t.Error("empty Min must be Infinity")
	}
	if s.Max() != None {
		t.Error("empty Max must be None")
	}
	s.Add(4)
	s.Add(-2)
	if s.Min() != -2 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSetOrderInvariant(t *testing.T) {
	s := NewSet()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s.Add(Timestamp(rng.Intn(100)))
	}
	got := s.Slice()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("set contents must stay sorted")
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatal("set must not contain duplicates")
		}
	}
}

func TestSetRemoveBelow(t *testing.T) {
	s := NewSet(1, 3, 5, 7, 9)
	removed := s.RemoveBelow(5)
	if !reflect.DeepEqual(removed, []Timestamp{1, 3}) {
		t.Errorf("removed = %v", removed)
	}
	if !reflect.DeepEqual(s.Slice(), []Timestamp{5, 7, 9}) {
		t.Errorf("remaining = %v", s.Slice())
	}
	if got := s.RemoveBelow(0); got != nil {
		t.Errorf("RemoveBelow with nothing below returned %v", got)
	}
	all := s.RemoveBelow(Infinity)
	if len(all) != 3 || !s.Empty() {
		t.Errorf("RemoveBelow(Infinity) must drain; got %v, len=%d", all, s.Len())
	}
}

func TestSetFirstAfterLastBefore(t *testing.T) {
	s := NewSet(2, 4, 8)
	cases := []struct {
		in    Timestamp
		after Timestamp
	}{
		{None, 2}, {1, 2}, {2, 4}, {5, 8}, {8, Infinity}, {100, Infinity},
	}
	for _, c := range cases {
		if got := s.FirstAfter(c.in); got != c.after {
			t.Errorf("FirstAfter(%v) = %v, want %v", c.in, got, c.after)
		}
	}
	befores := []struct {
		in     Timestamp
		before Timestamp
	}{
		{2, None}, {3, 2}, {8, 4}, {Infinity, 8}, {None, None},
	}
	for _, c := range befores {
		if got := s.LastBefore(c.in); got != c.before {
			t.Errorf("LastBefore(%v) = %v, want %v", c.in, got, c.before)
		}
	}
}

func TestSetAscend(t *testing.T) {
	s := NewSet(5, 1, 9, 3)
	var got []Timestamp
	s.Ascend(func(ts Timestamp) bool {
		got = append(got, ts)
		return true
	})
	if !reflect.DeepEqual(got, []Timestamp{1, 3, 5, 9}) {
		t.Fatalf("Ascend order = %v", got)
	}
	// Early stop.
	got = got[:0]
	s.Ascend(func(ts Timestamp) bool {
		got = append(got, ts)
		return ts < 3
	})
	if !reflect.DeepEqual(got, []Timestamp{1, 3}) {
		t.Fatalf("Ascend early stop = %v", got)
	}
	// Empty set visits nothing.
	NewSet().Ascend(func(Timestamp) bool { t.Fatal("visited"); return true })
}

func TestSetAscendRange(t *testing.T) {
	s := NewSet(1, 3, 5, 7, 9)
	collect := func(lo, hi Timestamp) []Timestamp {
		var got []Timestamp
		s.AscendRange(lo, hi, func(ts Timestamp) bool {
			got = append(got, ts)
			return true
		})
		return got
	}
	if got := collect(3, 8); !reflect.DeepEqual(got, []Timestamp{3, 5, 7}) {
		t.Fatalf("[3,8) = %v", got)
	}
	if got := collect(None, Infinity); !reflect.DeepEqual(got, []Timestamp{1, 3, 5, 7, 9}) {
		t.Fatalf("[None,Inf) = %v", got)
	}
	if got := collect(4, 4); got != nil {
		t.Fatalf("empty range visited %v", got)
	}
	if got := collect(8, 2); got != nil {
		t.Fatalf("inverted range visited %v", got)
	}
	if got := collect(10, 20); got != nil {
		t.Fatalf("past-the-end range visited %v", got)
	}
	// Half-open: hi itself excluded.
	if got := collect(1, 9); !reflect.DeepEqual(got, []Timestamp{1, 3, 5, 7}) {
		t.Fatalf("[1,9) = %v", got)
	}
}

func TestSetQuickAscendRangeMatchesSlice(t *testing.T) {
	f := func(elems []int16, lo, hi int16) bool {
		s := NewSet()
		for _, e := range elems {
			s.Add(Timestamp(e))
		}
		var got []Timestamp
		s.AscendRange(Timestamp(lo), Timestamp(hi), func(ts Timestamp) bool {
			got = append(got, ts)
			return true
		})
		var want []Timestamp
		for _, ts := range s.Slice() {
			if ts >= Timestamp(lo) && ts < Timestamp(hi) {
				want = append(want, ts)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetUnionIntersectSubtract(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(2, 3, 4)

	u := a.Clone()
	u.Union(b)
	if !reflect.DeepEqual(u.Slice(), []Timestamp{1, 2, 3, 4}) {
		t.Errorf("Union = %v", u.Slice())
	}

	i := a.Clone()
	i.Intersect(b)
	if !reflect.DeepEqual(i.Slice(), []Timestamp{2, 3}) {
		t.Errorf("Intersect = %v", i.Slice())
	}

	d := a.Clone()
	d.Subtract(b)
	if !reflect.DeepEqual(d.Slice(), []Timestamp{1}) {
		t.Errorf("Subtract = %v", d.Slice())
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(1, 2)
	if got := s.String(); got != "{ts(1) ts(2)}" {
		t.Errorf("String = %q", got)
	}
	if got := NewSet().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: for any insertion sequence, the set equals the sorted
// deduplicated slice of the inputs.
func TestSetQuickMatchesReference(t *testing.T) {
	f := func(vals []int16) bool {
		s := NewSet()
		ref := map[Timestamp]bool{}
		for _, v := range vals {
			ts := Timestamp(v)
			s.Add(ts)
			ref[ts] = true
		}
		want := make([]Timestamp, 0, len(ref))
		for ts := range ref {
			want = append(want, ts)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) == 0 {
			return s.Empty()
		}
		return reflect.DeepEqual(s.Slice(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveBelow(b) partitions the set: removed < b <= remaining,
// and removed ∪ remaining equals the original contents.
func TestSetQuickRemoveBelowPartitions(t *testing.T) {
	f := func(vals []int16, bound int16) bool {
		s := NewSet()
		for _, v := range vals {
			s.Add(Timestamp(v))
		}
		orig := s.Slice()
		b := Timestamp(bound)
		removed := s.RemoveBelow(b)
		for _, ts := range removed {
			if ts >= b {
				return false
			}
		}
		for _, ts := range s.Slice() {
			if ts < b {
				return false
			}
		}
		return len(removed)+s.Len() == len(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: set algebra matches map-based reference semantics.
func TestSetQuickAlgebra(t *testing.T) {
	build := func(vals []int8) (*Set, map[Timestamp]bool) {
		s := NewSet()
		m := map[Timestamp]bool{}
		for _, v := range vals {
			s.Add(Timestamp(v))
			m[Timestamp(v)] = true
		}
		return s, m
	}
	f := func(av, bv []int8) bool {
		a, am := build(av)
		b, bm := build(bv)

		u := a.Clone()
		u.Union(b)
		i := a.Clone()
		i.Intersect(b)
		d := a.Clone()
		d.Subtract(b)

		for ts := range am {
			if !u.Contains(ts) {
				return false
			}
			if bm[ts] != i.Contains(ts) {
				return false
			}
			if bm[ts] == d.Contains(ts) {
				return false
			}
		}
		for ts := range bm {
			if !u.Contains(ts) {
				return false
			}
			if !am[ts] && (i.Contains(ts) || d.Contains(ts)) {
				return false
			}
		}
		return u.Len() <= len(am)+len(bm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
