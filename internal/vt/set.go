package vt

import (
	"sort"
	"strings"
)

// Set is an ordered set of timestamps. The zero value is an empty set
// ready to use. Set is not safe for concurrent use; callers synchronize.
//
// Sets are used by the dead-timestamp garbage collector to track the
// timestamps that are live in a channel and the timestamps known to be dead
// at neighbouring nodes of the task graph.
type Set struct {
	ts []Timestamp // sorted ascending, no duplicates
}

// NewSet returns a set holding the given timestamps.
func NewSet(ts ...Timestamp) *Set {
	s := &Set{}
	for _, t := range ts {
		s.Add(t)
	}
	return s
}

// Len returns the number of timestamps in the set.
func (s *Set) Len() int { return len(s.ts) }

// Empty reports whether the set holds no timestamps.
func (s *Set) Empty() bool { return len(s.ts) == 0 }

// index returns the position of t in the backing slice and whether it is
// present.
func (s *Set) index(t Timestamp) (int, bool) {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= t })
	return i, i < len(s.ts) && s.ts[i] == t
}

// Contains reports whether t is in the set.
func (s *Set) Contains(t Timestamp) bool {
	_, ok := s.index(t)
	return ok
}

// Add inserts t, reporting whether the set changed.
func (s *Set) Add(t Timestamp) bool {
	i, ok := s.index(t)
	if ok {
		return false
	}
	s.ts = append(s.ts, 0)
	copy(s.ts[i+1:], s.ts[i:])
	s.ts[i] = t
	return true
}

// Remove deletes t, reporting whether it was present.
func (s *Set) Remove(t Timestamp) bool {
	i, ok := s.index(t)
	if !ok {
		return false
	}
	s.ts = append(s.ts[:i], s.ts[i+1:]...)
	return true
}

// Min returns the earliest timestamp, or Infinity if the set is empty.
func (s *Set) Min() Timestamp {
	if len(s.ts) == 0 {
		return Infinity
	}
	return s.ts[0]
}

// Max returns the latest timestamp, or None if the set is empty.
func (s *Set) Max() Timestamp {
	if len(s.ts) == 0 {
		return None
	}
	return s.ts[len(s.ts)-1]
}

// Ascend visits every timestamp in ascending order until f returns
// false. It makes no copy — it is the hot-path alternative to Slice for
// callers that only need to look. The set must not be mutated during the
// walk.
func (s *Set) Ascend(f func(Timestamp) bool) {
	for _, t := range s.ts {
		if !f(t) {
			return
		}
	}
}

// AscendRange visits, in ascending order, every timestamp t with
// lo <= t < hi until f returns false. Like Ascend it walks the backing
// slice directly with no copy; the set must not be mutated during the
// walk. An empty range (hi <= lo) visits nothing.
func (s *Set) AscendRange(lo, hi Timestamp, f func(Timestamp) bool) {
	if hi <= lo {
		return
	}
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= lo })
	for ; i < len(s.ts); i++ {
		t := s.ts[i]
		if t >= hi {
			return
		}
		if !f(t) {
			return
		}
	}
}

// Slice returns a copy of the contents in ascending order.
func (s *Set) Slice() []Timestamp {
	out := make([]Timestamp, len(s.ts))
	copy(out, s.ts)
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{ts: s.Slice()}
}

// Union adds every timestamp of other to s.
func (s *Set) Union(other *Set) {
	for _, t := range other.ts {
		s.Add(t)
	}
}

// Intersect removes from s every timestamp not present in other.
func (s *Set) Intersect(other *Set) {
	kept := s.ts[:0]
	for _, t := range s.ts {
		if other.Contains(t) {
			kept = append(kept, t)
		}
	}
	s.ts = kept
}

// Subtract removes from s every timestamp present in other.
func (s *Set) Subtract(other *Set) {
	kept := s.ts[:0]
	for _, t := range s.ts {
		if !other.Contains(t) {
			kept = append(kept, t)
		}
	}
	s.ts = kept
}

// RemoveBelow deletes every timestamp strictly less than bound and returns
// the removed timestamps in ascending order. It is the primitive used when
// a consumer's virtual-time guarantee advances: everything below the
// guarantee can never be requested again.
func (s *Set) RemoveBelow(bound Timestamp) []Timestamp {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= bound })
	if i == 0 {
		return nil
	}
	removed := make([]Timestamp, i)
	copy(removed, s.ts[:i])
	s.ts = append(s.ts[:0], s.ts[i:]...)
	return removed
}

// FirstAfter returns the earliest timestamp strictly greater than t, or
// Infinity if none exists.
func (s *Set) FirstAfter(t Timestamp) Timestamp {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] > t })
	if i == len(s.ts) {
		return Infinity
	}
	return s.ts[i]
}

// LastBefore returns the latest timestamp strictly less than t, or None if
// none exists.
func (s *Set) LastBefore(t Timestamp) Timestamp {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= t })
	if i == 0 {
		return None
	}
	return s.ts[i-1]
}

// String renders the set as {ts(1) ts(2) ...}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.ts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
