package faultnet

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pair starts a scripted listener, dials it, and returns both ends of
// one live connection (client side raw, server side scripted).
func pair(t *testing.T, ctl *Control) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	errc := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		accepted <- nc
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server = <-accepted:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept never returned")
	}
	t.Cleanup(func() { server.Close() })
	return client, server
}

func TestSeedEnvOverride(t *testing.T) {
	os.Setenv("FAULTNET_SEED", "1719")
	defer os.Unsetenv("FAULTNET_SEED")
	if got := Seed(1); got != 1719 {
		t.Fatalf("Seed = %d, want 1719 (env)", got)
	}
	os.Setenv("FAULTNET_SEED", "junk")
	if got := Seed(7); got != 7 {
		t.Fatalf("Seed = %d, want 7 (bad env falls back)", got)
	}
}

func TestScriptedReadDelay(t *testing.T) {
	ctl := New(Seed(42))
	ctl.SetDelays(50*time.Millisecond, 0, 0)
	client, server := pair(t, ctl)

	go client.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("scripted 50ms read delay not applied: read returned in %v", elapsed)
	}
}

func TestBlackholeHonorsReadDeadline(t *testing.T) {
	ctl := New(Seed(42))
	ctl.BlackholeReads(true)
	client, server := pair(t, ctl)

	go client.Write([]byte("x"))
	server.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := server.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("black-holed read with deadline = %v, want deadline exceeded", err)
	}

	// Healing releases the data.
	ctl.BlackholeReads(false)
	server.SetReadDeadline(time.Time{})
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestBlackholeBlocksWithoutDeadline(t *testing.T) {
	ctl := New(Seed(42))
	ctl.BlackholeReads(true)
	client, server := pair(t, ctl)

	go client.Write([]byte("x"))
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		server.Read(buf)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("black-holed read returned without deadline or heal")
	case <-time.After(80 * time.Millisecond):
	}
	ctl.BlackholeReads(false)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read never released after heal")
	}
}

func TestDropWriteAfterSeversMidStream(t *testing.T) {
	ctl := New(Seed(42))
	client, server := pair(t, ctl)

	// First write passes (budget 4 bytes), the write crossing the
	// budget is dropped before reaching the wire.
	ctl.DropWriteAfter(4)
	if _, err := server.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Write([]byte("lost!")); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget-crossing write = %v, want ErrInjected", err)
	}
	// The peer sees only the first message, then EOF: the second was
	// lost, not truncated.
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("peer saw %q, want only %q", got, "ok")
	}
	if ctl.Injected() == 0 {
		t.Fatal("injected fault not counted")
	}
}

func TestDropReadAfterSevers(t *testing.T) {
	ctl := New(Seed(42))
	client, server := pair(t, ctl)
	ctl.DropReadAfter(2)

	if _, err := client.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	// Budget crossed on a later read: the connection dies.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := server.Read(buf); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("read budget never severed the connection")
		}
	}
}

func TestPartitionSeversAndRefusesThenHeals(t *testing.T) {
	ctl := New(Seed(42))
	client, server := pair(t, ctl)

	// A read blocked mid-stream is severed by the partition.
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := server.Read(buf)
		readErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	ctl.Partition()
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("partition did not sever the blocked read")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked read survived the partition")
	}

	// New dials through the control are refused while partitioned.
	if _, err := ctl.Dial(client.RemoteAddr().String(), time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial during partition = %v, want ErrInjected", err)
	}

	ctl.Heal()
	if ctl.Partitioned() {
		t.Fatal("Heal did not lift the partition")
	}
}

func TestFlakyAcceptDropsEveryKth(t *testing.T) {
	ctl := New(Seed(42))
	ctl.FlakyAccept(2) // every 2nd accept dies
	ln, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		nc  net.Conn
		err error
	}
	results := make(chan result, 4)
	go func() {
		for i := 0; i < 2; i++ {
			nc, err := ln.Accept()
			results <- result{nc, err}
		}
	}()

	// Dial 4 times; the listener drops accepts 2 and 4, so only 2
	// survive. Each surviving connection still works.
	for i := 0; i < 4; i++ {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			r.nc.Close()
		case <-time.After(5 * time.Second):
			t.Fatal("surviving accepts never arrived")
		}
	}
	// Two surviving accepts means the listener walked past the 2nd
	// (dropped) backlog connection; the 4th stays queued, so exactly
	// one flaky drop has fired by now.
	if got := ctl.Injected(); got < 1 {
		t.Fatalf("injected = %d, want ≥ 1 flaky drop", got)
	}
}

func TestConnsTracking(t *testing.T) {
	ctl := New(Seed(42))
	_, server := pair(t, ctl)
	if got := ctl.Conns(); got != 1 {
		t.Fatalf("Conns = %d, want 1", got)
	}
	server.Close()
	if got := ctl.Conns(); got != 0 {
		t.Fatalf("Conns after close = %d, want 0", got)
	}
}
