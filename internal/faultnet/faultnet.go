// Package faultnet injects deterministic, scriptable faults into
// net.Conn / net.Listener pairs so tests can prove — rather than hope —
// that the remote layer degrades safely. A Control is a seeded script
// shared by every connection it wraps; tests flip its switches while a
// pipeline is running:
//
//   - fixed or randomized per-operation delay (slow wires),
//   - black-holed reads (a stalled peer that accepts bytes but never
//     answers),
//   - drop-after-N-bytes (a connection that dies mid-message),
//   - mid-stream partition (every live connection severed at once, new
//     dials refused until Heal),
//   - flaky accept (every k-th accepted connection is immediately
//     closed).
//
// All randomness comes from one seeded source, so a chaos run is
// reproducible from its seed (CI pins FAULTNET_SEED). The wrappers are
// plain net.Conn/net.Listener values: any client or server that accepts
// an injected dialer or listener can be driven through a script —
// nothing in this package depends on the rest of the repository.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/rand"
)

// ErrInjected reports an I/O failure injected by a faultnet script
// (partitioned wire, refused dial, byte-budget exhaustion).
var ErrInjected = errors.New("faultnet: injected fault")

// Seed returns the chaos seed: the FAULTNET_SEED environment variable
// when set (CI pins it for reproducible runs), def otherwise.
func Seed(def int64) int64 {
	return rand.EnvSeed("FAULTNET_SEED", def)
}

// Control is one fault script shared by every connection it wraps. All
// methods are safe for concurrent use; switches apply to in-flight
// connections immediately.
type Control struct {
	mu  sync.Mutex
	rng *rand.Rand

	readDelay   time.Duration
	writeDelay  time.Duration
	delayJitter time.Duration

	// blackhole is non-nil while reads are black-holed; it is closed
	// (releasing every blocked reader) when the script lifts the fault.
	blackhole chan struct{}

	// dropRead/dropWrite are one-shot byte budgets; the connection that
	// crosses an armed budget is severed. Negative means disarmed.
	dropRead  int64
	dropWrite int64

	partitioned bool

	// acceptEvery k>0 closes every k-th accepted connection.
	acceptEvery int
	acceptCount int

	conns    map[*Conn]struct{}
	injected int64
}

// New returns a Control whose randomized faults (delay jitter) draw
// from the given seed.
func New(seed int64) *Control {
	return &Control{
		rng:       rand.New(uint64(seed)),
		dropRead:  -1,
		dropWrite: -1,
		conns:     make(map[*Conn]struct{}),
	}
}

// SetDelays scripts a per-operation latency: every Read sleeps read (+
// up to jitter, seeded) before touching the wire, every Write sleeps
// write (+ jitter). Zero disables.
func (c *Control) SetDelays(read, write, jitter time.Duration) {
	c.mu.Lock()
	c.readDelay, c.writeDelay, c.delayJitter = read, write, jitter
	c.mu.Unlock()
}

// BlackholeReads scripts a stalled peer: while on, every Read blocks —
// honoring the connection's read deadline, so deadline-hardened clients
// observe a timeout, while deadline-less clients hang exactly as they
// would against a real wedged server. Turning it off releases every
// blocked reader.
func (c *Control) BlackholeReads(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if on && c.blackhole == nil {
		c.blackhole = make(chan struct{})
	} else if !on && c.blackhole != nil {
		close(c.blackhole)
		c.blackhole = nil
	}
}

// DropReadAfter arms a one-shot budget: after n more bytes have been
// read across wrapped connections, the connection crossing the budget
// is severed mid-stream.
func (c *Control) DropReadAfter(n int64) {
	c.mu.Lock()
	c.dropRead = n
	c.mu.Unlock()
}

// DropWriteAfter is DropReadAfter for the write direction. Arming with
// n=0 severs the next writer before any of its bytes reach the wire —
// the canonical "response lost" script.
func (c *Control) DropWriteAfter(n int64) {
	c.mu.Lock()
	c.dropWrite = n
	c.mu.Unlock()
}

// Partition severs every live wrapped connection mid-stream and refuses
// new ones (accepted connections are closed immediately, Dial fails)
// until Heal.
func (c *Control) Partition() {
	c.mu.Lock()
	c.partitioned = true
	conns := make([]*Conn, 0, len(c.conns))
	for cn := range c.conns {
		conns = append(conns, cn)
	}
	c.injected++
	c.mu.Unlock()
	for _, cn := range conns {
		cn.Close()
	}
}

// Heal lifts a partition; new connections flow again.
func (c *Control) Heal() {
	c.mu.Lock()
	c.partitioned = false
	c.mu.Unlock()
}

// Partitioned reports whether the wire is currently partitioned.
func (c *Control) Partitioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitioned
}

// FlakyAccept scripts a flaky listener: every k-th accepted connection
// is closed before the client can use it (k ≤ 0 disables).
func (c *Control) FlakyAccept(k int) {
	c.mu.Lock()
	c.acceptEvery = k
	c.acceptCount = 0
	c.mu.Unlock()
}

// Injected returns how many faults the script has fired (partitions,
// budget drops, flaky accepts, refused dials).
func (c *Control) Injected() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Conns returns the number of live wrapped connections.
func (c *Control) Conns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// Wrap places nc under the script's control.
func (c *Control) Wrap(nc net.Conn) *Conn {
	w := &Conn{inner: nc, ctl: c, closed: make(chan struct{})}
	c.mu.Lock()
	c.conns[w] = struct{}{}
	c.mu.Unlock()
	return w
}

// Listen opens a TCP listener whose accepted connections are under the
// script's control.
func (c *Control) Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{inner: ln, ctl: c}, nil
}

// WrapListener places an existing listener under the script's control.
func (c *Control) WrapListener(ln net.Listener) *Listener {
	return &Listener{inner: ln, ctl: c}
}

// Dial opens a client connection under the script's control; it fails
// immediately while the wire is partitioned.
func (c *Control) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	c.mu.Lock()
	parted := c.partitioned
	if parted {
		c.injected++
	}
	c.mu.Unlock()
	if parted {
		return nil, fmt.Errorf("%w: dial %s refused: wire partitioned", ErrInjected, addr)
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return c.Wrap(nc), nil
}

// unregister drops a closed connection from the script's live set.
func (c *Control) unregister(w *Conn) {
	c.mu.Lock()
	delete(c.conns, w)
	c.mu.Unlock()
}

// delay computes the scripted sleep for one operation (seeded jitter).
func (c *Control) delay(read bool) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.writeDelay
	if read {
		d = c.readDelay
	}
	if c.delayJitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.delayJitter)))
	}
	return d
}

// spend deducts n bytes from the direction's one-shot budget and
// reports whether the budget was crossed (severing the connection is
// the caller's job).
func (c *Control) spend(read bool, n int) bool {
	if n <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	budget := &c.dropWrite
	if read {
		budget = &c.dropRead
	}
	if *budget < 0 {
		return false
	}
	*budget -= int64(n)
	if *budget < 0 {
		*budget = -1 // disarm: one-shot
		c.injected++
		return true
	}
	return false
}

// blackholeCh returns the current blackhole gate (nil when reads flow).
func (c *Control) blackholeCh() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blackhole
}

// flakyDrop reports whether this accept should be dropped.
func (c *Control) flakyDrop() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acceptEvery <= 0 {
		return false
	}
	c.acceptCount++
	if c.acceptCount%c.acceptEvery == 0 {
		c.injected++
		return true
	}
	return false
}

// Conn is one scripted connection.
type Conn struct {
	inner net.Conn
	ctl   *Control

	closeOnce sync.Once
	closed    chan struct{}

	mu           sync.Mutex
	readDeadline time.Time
}

// Read applies the script (partition, delay, blackhole, byte budget)
// around the underlying read.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(true); err != nil {
		return 0, err
	}
	n, err := c.inner.Read(p)
	if c.ctl.spend(true, n) {
		c.Close()
	}
	return n, err
}

// Write applies the script around the underlying write.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(false); err != nil {
		return 0, err
	}
	if c.ctl.spend(false, len(p)) {
		// The budget dies before these bytes reach the wire: the peer
		// never sees this message (lost response / lost request).
		c.Close()
		return 0, fmt.Errorf("%w: write budget exhausted", ErrInjected)
	}
	return c.inner.Write(p)
}

// gate enforces the pre-I/O script: partition check, scripted delay,
// and (reads only) the blackhole, which honors the read deadline.
func (c *Conn) gate(read bool) error {
	if c.ctl.Partitioned() {
		return fmt.Errorf("%w: wire partitioned", ErrInjected)
	}
	if d := c.ctl.delay(read); d > 0 {
		select {
		case <-time.After(d):
		case <-c.closed:
			return net.ErrClosed
		}
	}
	if !read {
		return nil
	}
	if bh := c.ctl.blackholeCh(); bh != nil {
		var deadlineC <-chan time.Time
		c.mu.Lock()
		dl := c.readDeadline
		c.mu.Unlock()
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return os.ErrDeadlineExceeded
			}
			t := time.NewTimer(d)
			defer t.Stop()
			deadlineC = t.C
		}
		select {
		case <-bh: // healed: proceed to the real read
		case <-c.closed:
			return net.ErrClosed
		case <-deadlineC:
			return os.ErrDeadlineExceeded
		}
	}
	return nil
}

// Close severs the connection and releases any blocked script waits.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		c.ctl.unregister(c)
		err = c.inner.Close()
	})
	return err
}

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline sets both deadlines (tracked so scripted blocks honor
// them too).
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline sets the read deadline; a black-holed Read returns
// os.ErrDeadlineExceeded when it expires, exactly like a real conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline sets the write deadline on the underlying conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}

// Listener is a scripted net.Listener: accepted connections come out
// wrapped, flaky-accept and partition scripts apply.
type Listener struct {
	inner net.Listener
	ctl   *Control
}

// Accept returns the next scripted connection. While partitioned, or
// when the flaky-accept script fires, the accepted connection is closed
// immediately and Accept moves on — the client sees a wire that opened
// and instantly died, the classic half-up failure.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		nc, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		if l.ctl.Partitioned() || l.ctl.flakyDrop() {
			nc.Close()
			continue
		}
		return l.ctl.Wrap(nc), nil
	}
}

// Close closes the underlying listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the underlying listen address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }
