package buffer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vt"
)

// Prometheus family names for the per-buffer instruments registered by
// Base.Init. They carry a {buffer="<name>"} label.
const (
	MetricPuts       = "aru_buffer_puts_total"
	MetricFrees      = "aru_buffer_frees_total"
	MetricItemsHW    = "aru_buffer_items_highwater"
	MetricBytesHW    = "aru_buffer_bytes_highwater"
	MetricPutBlocked = "aru_buffer_put_blocked_seconds"
	MetricDrained    = "aru_buffer_drained_items_total"
	MetricShed       = "aru_buffer_shed_items_total"
)

// Consumer tracks one attached consumer connection. Backends read and
// update the fields under Base.Mu.
type Consumer struct {
	// Conn is the connection's graph identity.
	Conn graph.ConnID
	// Guarantee is the timestamp bound the consumer will never request
	// at or below again; the collector relies on it. FIFO backends leave
	// it at vt.None.
	Guarantee vt.Timestamp
	// LastSeen is the newest timestamp delivered as a window head.
	LastSeen vt.Timestamp
	// Window is the sliding-window width: how many trailing items
	// (including the head) the consumer may still re-read. 1 is the
	// ordinary consumer.
	Window vt.Timestamp
	// SkippedScratch and WindowScratch back the GetResult.Skipped and
	// GetResult.Window slices delivered to this connection. Reusing them
	// across gets keeps windowed and skipping gets allocation-free (the
	// gc.Dead scratch idiom); the returned slices are therefore only
	// valid until the connection's next get.
	SkippedScratch []Item
	WindowScratch  []Item
}

// Base owns the machinery every in-process buffer backend needs: the
// notEmpty/notFull condition-variable pair with discrete-event-clock-aware
// waits, producer/consumer attachment maps, capacity blocking with
// blocked-time measurement, and liveBytes/puts/frees accounting. Backends
// embed it and add their storage discipline (a timestamp-indexed map plus
// live set for channels, a head-indexed slice for queues).
//
// Blocking is split across two condition variables so wakeups are
// targeted: consumers waiting for fresh data park on notEmpty (signaled by
// puts and close), producers waiting for capacity park on notFull
// (signaled by frees and close). Before the split a single condvar was
// broadcast on every put and every guarantee advance, thundering-herding
// every waiter on every operation.
type Base struct {
	// Cfg is the buffer's configuration with defaults applied (Clock and
	// Collector are never nil after Init).
	Cfg Config
	// Coll is the item collector (gc.NewNone() when Cfg.Collector was
	// nil).
	Coll gc.Collector

	// Mu guards all mutable state of the Base and of the embedding
	// backend.
	Mu       sync.Mutex
	notEmpty *sync.Cond // consumers: a fresh item arrived (or closed)
	notFull  *sync.Cond // producers: capacity freed (or closed)
	consWait int        // consumers currently parked on notEmpty

	// Consumers and Producers are the attachment maps.
	Consumers map[graph.ConnID]*Consumer
	Producers map[graph.ConnID]bool

	closed    bool
	sealed    bool
	puts      int64
	frees     int64
	liveBytes int64
	drained   int64 // items delivered to a consumer after Seal
	shed      int64 // items discarded undelivered (Drain, or Close with backlog)

	// putBlockedNs / putBlockedN accumulate producer capacity-blocking
	// (the elastic scheduler's backlog-pressure sensor). Maintained
	// metrics on or off: the cost lands only on puts that actually
	// blocked, a path that already read the clock twice.
	putBlockedNs int64
	putBlockedN  int64

	// prodFailed / consFailed count attachments removed because their
	// thread failed permanently (FailProducer / FailConsumer). They
	// distinguish "all peers are dead" from "no peers attached yet":
	// exhaustion predicates only fire once at least one peer has actually
	// failed, so startup ordering never looks like a failure.
	prodFailed int
	consFailed int

	// occupied counts the backend's currently live items for capacity
	// blocking. It is stored once at Init — not passed per call — so the
	// hot path never allocates a closure crossing the package boundary.
	occupied func() int

	// Live instruments (nil when Cfg.Metrics is nil — every use no-ops
	// after one branch). Handles are resolved once at Init, the cold
	// path; an enabled event is a fixed number of atomic ops.
	mPuts       *metrics.Counter
	mFrees      *metrics.Counter
	mItemsHW    *metrics.Gauge
	mBytesHW    *metrics.Gauge
	mPutBlocked *metrics.Histogram
	mDrained    *metrics.Counter
	mShed       *metrics.Counter
}

// Init prepares the Base: applies Config defaults (real clock, no-op
// collector), allocates the attachment maps and condition variables, and
// stores the backend's live-item counter used for capacity blocking.
func (b *Base) Init(cfg Config, occupied func() int) {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	b.Cfg = cfg
	b.Coll = cfg.Collector
	if b.Coll == nil {
		b.Coll = gc.NewNone()
	}
	b.Consumers = make(map[graph.ConnID]*Consumer)
	b.Producers = make(map[graph.ConnID]bool)
	b.notEmpty = sync.NewCond(&b.Mu)
	b.notFull = sync.NewCond(&b.Mu)
	b.occupied = occupied
	if reg := cfg.Metrics; reg != nil {
		ls := cfg.MetricLabels()
		b.mPuts = reg.Counter(MetricPuts, "Items inserted into the buffer.", ls)
		b.mFrees = reg.Counter(MetricFrees, "Items reclaimed by the collector (or drained).", ls)
		b.mItemsHW = reg.Gauge(MetricItemsHW, "High-water mark of live items.", ls)
		b.mBytesHW = reg.Gauge(MetricBytesHW, "High-water mark of live bytes.", ls)
		b.mPutBlocked = reg.Histogram(MetricPutBlocked, "Time producers spent blocked on capacity (blocking puts only).", nil, ls)
		b.mDrained = reg.Counter(MetricDrained, "Items delivered to a consumer after the buffer was sealed for drain.", ls)
		b.mShed = reg.Counter(MetricShed, "Items discarded undelivered at shutdown (explicitly shed, not silently lost).", ls)
	}
}

// Name returns the buffer's system-wide unique name.
func (b *Base) Name() string { return b.Cfg.Name }

// Node returns the buffer's task-graph id.
func (b *Base) Node() graph.NodeID { return b.Cfg.Node }

// Clock returns the buffer's clock (never nil after Init).
func (b *Base) Clock() clock.Clock { return b.Cfg.Clock }

// wait parks the caller on the given condition variable, telling a
// discrete-event clock (if one is in use) that the goroutine is blocked
// so virtual time may advance.
func (b *Base) wait(cond *sync.Cond) {
	if bl, ok := b.Cfg.Clock.(clock.Blocker); ok {
		bl.BlockEnter()
		cond.Wait()
		bl.BlockExit()
		return
	}
	cond.Wait()
}

// WaitConsumer parks a consumer on notEmpty, maintaining the waiter
// count that lets puts choose Signal over Broadcast.
func (b *Base) WaitConsumer() {
	b.consWait++
	b.wait(b.notEmpty)
	b.consWait--
}

// WakeConsumersLocked wakes consumers after a put. The single parked
// consumer — by far the common case — is woken with Signal; only when
// several consumers (with heterogeneous wait predicates: get-latest
// versus get-at-ts) are parked does it fall back to Broadcast.
func (b *Base) WakeConsumersLocked() {
	switch {
	case b.consWait == 0:
	case b.consWait == 1:
		b.notEmpty.Signal()
	default:
		b.notEmpty.Broadcast()
	}
}

// SignalConsumerLocked wakes exactly one parked consumer. FIFO backends
// use it on put: queue consumers are interchangeable, so exactly one
// should wake per enqueued item.
func (b *Base) SignalConsumerLocked() { b.notEmpty.Signal() }

// SignalConsumersLocked wakes up to n parked consumers — one per newly
// enqueued item, capped at the number actually waiting. FIFO backends
// use it on batch puts so a k-item batch costs min(k, waiters) signals
// instead of k.
func (b *Base) SignalConsumersLocked(n int) {
	switch {
	case b.consWait == 0:
	case n >= b.consWait:
		b.notEmpty.Broadcast()
	default:
		for i := 0; i < n; i++ {
			b.notEmpty.Signal()
		}
	}
}

// AtCapacityLocked reports whether a put would block right now. Batch
// puts consult it before each insert so they can publish (and wake
// consumers for) the prefix already applied before parking — otherwise
// a batch larger than the remaining capacity would deadlock against the
// very consumers that must drain it.
func (b *Base) AtCapacityLocked() bool {
	return b.Cfg.Capacity > 0 && b.occupied() >= b.Cfg.Capacity
}

// AwaitCapacityLocked blocks the calling producer while the buffer is at
// capacity, returning the time spent blocked. Unbounded buffers return
// immediately without reading the clock (the hot path stays clock-free).
// When every consumer has failed permanently while the producer waits,
// the wait reports ErrPeerFailed: with a dead audience the collector
// will never free a slot (guarantees stop advancing), so the producer
// would otherwise block forever. A sealed buffer rejects the put with
// ErrDraining — immediately, or when Seal lands while the producer is
// parked — so drains never wait on producers that can no longer help.
func (b *Base) AwaitCapacityLocked() (time.Duration, error) {
	if b.sealed {
		return 0, fmt.Errorf("%w: put into sealed %q", ErrDraining, b.Cfg.Name)
	}
	if b.Cfg.Capacity <= 0 {
		return 0, nil
	}
	start := b.Cfg.Clock.Now()
	for !b.closed && !b.sealed && b.occupied() >= b.Cfg.Capacity {
		if b.ConsumersExhaustedLocked() {
			d := b.Cfg.Clock.Now() - start
			b.accountPutBlockedLocked(d)
			return d, fmt.Errorf("%w: all consumers of %q failed while producer blocked on capacity", ErrPeerFailed, b.Cfg.Name)
		}
		b.wait(b.notFull)
	}
	d := b.Cfg.Clock.Now() - start
	if d > 0 {
		b.accountPutBlockedLocked(d)
	}
	if b.sealed && !b.closed {
		return d, fmt.Errorf("%w: put into sealed %q", ErrDraining, b.Cfg.Name)
	}
	return d, nil
}

// accountPutBlockedLocked records one capacity-blocked put: the
// cumulative ledger behind PutBlocked plus the histogram observation
// when metrics are on.
func (b *Base) accountPutBlockedLocked(d time.Duration) {
	b.putBlockedNs += int64(d)
	b.putBlockedN++
	b.mPutBlocked.Observe(d)
}

// PutBlocked returns the cumulative time producers spent blocked on
// capacity and the number of puts that blocked. Implements PutBlocker.
func (b *Base) PutBlocked() (time.Duration, int64) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return time.Duration(b.putBlockedNs), b.putBlockedN
}

// FailProducerLocked removes a producer attachment that failed
// permanently, reporting whether it was the last one: once true, gets
// that would wait forever should report ErrPeerFailed instead.
func (b *Base) FailProducerLocked(conn graph.ConnID) bool {
	if b.Producers[conn] {
		delete(b.Producers, conn)
		b.prodFailed++
	}
	return b.ProducersExhaustedLocked()
}

// ProducersExhaustedLocked reports whether every producer has failed
// permanently: at least one failed and none remain. A buffer that never
// had producers attached reports false (startup, not failure).
func (b *Base) ProducersExhaustedLocked() bool {
	return b.prodFailed > 0 && len(b.Producers) == 0
}

// MarkConsumerFailedLocked records one consumer's permanent failure.
// The backend removes the attachment itself (it owns the collector
// bookkeeping); this only maintains the failure count behind
// ConsumersExhaustedLocked.
func (b *Base) MarkConsumerFailedLocked() { b.consFailed++ }

// ConsumersExhaustedLocked reports whether every consumer has failed
// permanently: at least one failed and none remain.
func (b *Base) ConsumersExhaustedLocked() bool {
	return b.consFailed > 0 && len(b.Consumers) == 0
}

// BroadcastConsumersLocked wakes every parked consumer (used when the
// last producer fails so blocked gets re-check the exhaustion
// predicate).
func (b *Base) BroadcastConsumersLocked() { b.notEmpty.Broadcast() }

// CheckProducerLocked validates that conn is an attached producer.
func (b *Base) CheckProducerLocked(conn graph.ConnID) error {
	if !b.Producers[conn] {
		return fmt.Errorf("%w: producer %d on %q", ErrNotAttached, conn, b.Cfg.Name)
	}
	return nil
}

// ConsumerLocked returns the state of an attached consumer connection.
func (b *Base) ConsumerLocked(conn graph.ConnID) (*Consumer, error) {
	cs, ok := b.Consumers[conn]
	if !ok {
		return nil, fmt.Errorf("%w: consumer %d on %q", ErrNotAttached, conn, b.Cfg.Name)
	}
	return cs, nil
}

// AttachProducer registers an output connection of a producer thread.
func (b *Base) AttachProducer(conn graph.ConnID) error {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.Producers[conn] = true
	return nil
}

// AttachConsumerLocked registers a consumer connection with the given
// sliding-window width; duplicate attaches keep the original state.
func (b *Base) AttachConsumerLocked(conn graph.ConnID, window int) {
	if _, dup := b.Consumers[conn]; !dup {
		b.Consumers[conn] = &Consumer{
			Conn: conn, Guarantee: vt.None, LastSeen: vt.None, Window: vt.Timestamp(window),
		}
	}
}

// AccountPutLocked records one inserted item.
func (b *Base) AccountPutLocked(it *Item) {
	b.liveBytes += it.Size
	b.puts++
	if b.mPuts != nil {
		b.mPuts.Inc()
		b.mItemsHW.Max(int64(b.occupied()))
		b.mBytesHW.Max(b.liveBytes)
	}
}

// AccountPutBatchLocked records a batch of inserted items with a single
// metrics branch — the per-item nil-handle checks of AccountPutLocked
// are hoisted out of the loop, and the counter advances once by the
// batch size.
func (b *Base) AccountPutBatchLocked(items []*Item) {
	var bytes int64
	for _, it := range items {
		bytes += it.Size
	}
	b.liveBytes += bytes
	b.puts += int64(len(items))
	if b.mPuts != nil {
		b.mPuts.Add(int64(len(items)))
		b.mItemsHW.Max(int64(b.occupied()))
		b.mBytesHW.Max(b.liveBytes)
	}
}

// RecycleLocked returns an item to the configured pool. Backends call it
// at the exact point they relinquish the pointer — after reclamation
// accounting and the OnFree observer, never while the item is still
// reachable from their storage. Without a pool the item is left to the
// garbage collector, but its payload reference is still dropped so a
// freed item never extends a payload's lifetime.
func (b *Base) RecycleLocked(it *Item) {
	if b.Cfg.Pool == nil {
		if it != nil {
			it.Payload = nil
		}
		return
	}
	b.Cfg.Pool.Recycle(it)
}

// AccountFreeLocked records one reclaimed item: it adjusts liveBytes and
// the frees counter, reports the item to OnFree, and wakes one capacity
// waiter for the freed slot.
func (b *Base) AccountFreeLocked(it *Item) {
	b.liveBytes -= it.Size
	b.frees++
	b.mFrees.Inc()
	if b.Cfg.OnFree != nil {
		b.Cfg.OnFree(it, b.Cfg.Clock.Now())
	}
	if b.Cfg.Capacity > 0 {
		b.notFull.Signal()
	}
}

// Seal flips the buffer into drain mode: subsequent puts (and puts
// blocked on capacity) report ErrDraining while gets keep serving the
// backlog. The broadcast wakes every parked operation so producers
// observe the seal and consumers re-check their termination predicates.
// Idempotent; implements Buffer.Seal for embedding backends.
func (b *Base) Seal() {
	b.Mu.Lock()
	if !b.sealed {
		b.sealed = true
		b.BroadcastLocked()
	}
	b.Mu.Unlock()
}

// SealedLocked reports the sealed flag; callers hold Mu.
func (b *Base) SealedLocked() bool { return b.sealed }

// Sealed reports whether Seal has been called.
func (b *Base) Sealed() bool {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.sealed
}

// Drained reports that the buffer is sealed and empty — the generic
// flush-complete predicate. Backends whose delivered items may remain
// live after consumption (channels retaining window trails) override it
// with a discipline-aware check.
func (b *Base) Drained() bool {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.sealed && b.occupied() == 0
}

// NoteDeliveredLocked records one item delivered to a consumer while the
// buffer is sealed — the "drained" side of the conservation ledger. A
// no-op before Seal, so backends call it unconditionally on delivery.
func (b *Base) NoteDeliveredLocked() { b.NoteDeliveredNLocked(1) }

// NoteDeliveredNLocked is NoteDeliveredLocked for a batch of n items.
func (b *Base) NoteDeliveredNLocked(n int) {
	if b.sealed && n > 0 {
		b.drained += int64(n)
		if b.mDrained != nil {
			b.mDrained.Add(int64(n))
		}
	}
}

// AccountShedLocked records n items discarded undelivered — the
// explicitly-shed side of the conservation ledger (deadline-hit drains
// and plain Stop with backlog).
func (b *Base) AccountShedLocked(n int64) {
	if n <= 0 {
		return
	}
	b.shed += n
	if b.mShed != nil {
		b.mShed.Add(n)
	}
}

// DrainStats returns the cumulative drain accounting: items delivered
// after Seal and items discarded undelivered.
func (b *Base) DrainStats() (drained, shed int64) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.drained, b.shed
}

// MarkClosedLocked sets the closed flag, reporting whether this call was
// the transition. It does not wake waiters; the backend finishes its
// close work first and then calls BroadcastLocked.
func (b *Base) MarkClosedLocked() bool {
	if b.closed {
		return false
	}
	b.closed = true
	return true
}

// ClosedLocked reports the closed flag; callers hold Mu.
func (b *Base) ClosedLocked() bool { return b.closed }

// BroadcastLocked wakes every blocked operation (used on close and
// drain).
func (b *Base) BroadcastLocked() {
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
}

// BroadcastFullLocked wakes all capacity waiters (used by Drain, which
// frees slots without going through AccountFreeLocked's one-signal-per-
// slot discipline).
func (b *Base) BroadcastFullLocked() { b.notFull.Broadcast() }

// Closed reports whether Close has been called.
func (b *Base) Closed() bool {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.closed
}

// Occupancy returns the current live item count and bytes.
func (b *Base) Occupancy() (items int, bytes int64) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.occupied(), b.liveBytes
}

// Stats returns cumulative puts and frees.
func (b *Base) Stats() (puts, frees int64) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.puts, b.frees
}

// HighWater returns the high-water marks of live items and bytes since
// creation. Zeros when metrics are disabled (the marks are only
// maintained by the instrument handles, keeping the metrics-off hot
// path free of extra work). Implements HighWaterer.
func (b *Base) HighWater() (items, bytes int64) {
	if b.mItemsHW == nil {
		return 0, 0
	}
	return b.mItemsHW.Value(), b.mBytesHW.Value()
}

// LiveBytesLocked returns the current live byte count; callers hold Mu.
func (b *Base) LiveBytesLocked() int64 { return b.liveBytes }

// Snapshot copies the externally visible fields of an item: backends
// return snapshots, never pointers into their storage.
func Snapshot(it *Item) Item {
	return Item{TS: it.TS, Payload: it.Payload, Size: it.Size, ID: it.ID}
}
