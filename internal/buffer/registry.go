package buffer

import (
	"fmt"
	"sort"
	"sync"
)

// Factory creates a backend instance from a Config.
type Factory func(cfg Config) (Buffer, error)

// Backend is a registered buffer implementation: its constructor plus the
// capabilities the runtime may validate against before any instance
// exists (wiring-time port-kind checks).
type Backend struct {
	// New constructs an instance.
	New Factory
	// Caps describes what every instance of this backend supports.
	Caps Caps
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register adds a backend under name. Backends register themselves from
// init(), so importing a backend package is all it takes to make it
// available to the runtime's endpoint descriptors. Re-registering a name
// panics: it is a wiring bug, not a runtime condition.
func Register(name string, b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("buffer: Register with empty backend name")
	}
	if b.New == nil {
		panic(fmt.Sprintf("buffer: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("buffer: Register(%q) called twice", name))
	}
	registry[name] = b
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// New materializes an instance of the named backend.
func New(name string, cfg Config) (Buffer, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("buffer: unknown backend %q (registered: %v)", name, Names())
	}
	return b.New(cfg)
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
