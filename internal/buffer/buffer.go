// Package buffer defines the pluggable buffer-endpoint layer of the
// runtime: the Buffer interface every timestamped buffer backend
// implements, the shared Item/GetResult types, and a Base that owns the
// machinery every in-process backend needs (condition variables,
// discrete-event-clock-aware waits, attachment maps, capacity blocking,
// and puts/frees/liveBytes accounting).
//
// The paper treats threads, channels, and queues as uniform task-graph
// nodes that all relay summary-STP feedback; this package is the code
// form of that uniformity. The runtime wires thread ports to Buffer
// values and dispatches every put/get through the interface — no type
// switches — so new backends (a FIFO queue, a get-latest channel, a
// TCP-served remote channel, ...) plug in through the Registry without
// touching the runtime layer.
package buffer

import (
	"errors"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/vt"
)

// Errors shared by all buffer backends. The channel and queue packages
// re-export them under their historical names; errors.Is works across
// the aliases.
var (
	// ErrClosed reports an operation on a closed buffer.
	ErrClosed = errors.New("buffer: closed")
	// ErrDuplicate reports a put of a timestamp already present
	// (random-access backends only).
	ErrDuplicate = errors.New("buffer: duplicate timestamp")
	// ErrPassed reports a get of a timestamp the connection's guarantee
	// has already moved past.
	ErrPassed = errors.New("buffer: timestamp already passed")
	// ErrGone reports a get of an item the collector freed.
	ErrGone = errors.New("buffer: item was garbage collected")
	// ErrNotAttached reports use of a connection id that was never
	// attached.
	ErrNotAttached = errors.New("buffer: connection not attached")
	// ErrUnsupported reports an operation the backend does not provide
	// (e.g. a timestamped get on a FIFO queue, a sliding window on a
	// wire-backed channel). The runtime surfaces it as a typed
	// port-kind error at wiring or call time — never as a panic.
	ErrUnsupported = errors.New("buffer: operation unsupported by backend")
	// ErrDegraded reports that a wire-backed operation exhausted its
	// redial/retry budget: the remote peer is unreachable right now and
	// the operation did NOT take effect (a put's item was dropped, a
	// get returned nothing). The endpoint keeps reconnecting in the
	// background; callers should treat the fault as observable load
	// shedding, not a crash.
	ErrDegraded = errors.New("buffer: remote endpoint degraded")
	// ErrReattached is informational: the operation SUCCEEDED, but only
	// after the underlying connection was redialed and its attachment
	// replayed. The result accompanying the error is valid; callers that
	// do not care may ignore it (errors.Is(err, ErrReattached)).
	ErrReattached = errors.New("buffer: remote endpoint re-attached")
	// ErrPeerFailed reports that an operation can never complete because
	// every peer on the other side of the buffer failed permanently: a
	// get blocked on a buffer whose producers all died, or a put blocked
	// on capacity in a buffer whose consumers all died. It is delivered
	// by the thread supervisor's failure propagation (FailProducer /
	// FailConsumer) so peers of a dead stage observe a typed condition
	// instead of hanging forever.
	ErrPeerFailed = errors.New("buffer: peer thread failed permanently")
	// ErrDraining reports a put into a sealed buffer: the runtime is
	// draining and no new items are accepted, but items already buffered
	// remain consumable (gets keep serving until the buffer is empty,
	// then report ErrClosed). Producers should treat it like a shutdown
	// signal for the put path — stop producing, let downstream flush.
	ErrDraining = errors.New("buffer: sealed for drain, no new puts")
)

// PeerFailer is implemented by backends that support failure-aware
// detach: the thread supervisor calls these when a thread fails
// permanently so the dead stage's peers unblock with ErrPeerFailed
// instead of waiting forever. Backends that cannot observe peer death
// (wire-backed endpoints, whose peers live in other processes) simply
// don't implement it; the runtime falls back to DetachConsumer.
type PeerFailer interface {
	// FailProducer removes a producer attachment that failed
	// permanently. Once every producer has failed, blocked and future
	// gets that would otherwise wait forever report ErrPeerFailed
	// (items already buffered remain consumable first where the
	// discipline allows it).
	FailProducer(conn graph.ConnID)
	// FailConsumer removes a consumer attachment that failed
	// permanently (like DetachConsumer, its collection guarantee
	// becomes infinite). Once every consumer has failed, puts blocked
	// on capacity report ErrPeerFailed and WouldBeDead turns true —
	// production for a dead audience is wasted by definition.
	FailConsumer(conn graph.ConnID)
}

// Item is one timestamped data element stored in (or passing through) a
// buffer. All backends share this one type, so the runtime's put/get
// paths never convert between per-backend item structs.
type Item struct {
	// TS is the item's virtual timestamp.
	TS vt.Timestamp
	// Payload is the application data.
	Payload any
	// Size is the logical size in bytes used for footprint and transfer
	// accounting (the paper's item sizes: a digitizer frame is 738 kB).
	Size int64
	// ID is the trace identity of this item instance.
	ID trace.ItemID
}

// GetResult is the outcome of a successful get. All item fields are
// snapshots taken under the buffer lock: the backend may reclaim its
// stored items at any moment after the call returns, so callers never
// share memory with the buffer.
type GetResult struct {
	// Item is the consumed item (snapshot).
	Item Item
	// Skipped lists the live items the connection passed over to reach
	// Item (stale data dropped by get-latest semantics), oldest first.
	Skipped []Item
	// Window lists the retained trailing items preceding Item (oldest
	// first) for sliding-window consumers; empty for window width 1.
	Window []Item
	// Blocked is the time spent waiting for a fresh item.
	Blocked time.Duration
}

// Discipline is a backend's consumption order.
type Discipline uint8

const (
	// Latest marks get-latest (channel) semantics: every consumer sees
	// every item and may skip stale ones.
	Latest Discipline = iota
	// FIFO marks work-queue semantics: each item goes to exactly one
	// consumer, in put order.
	FIFO
)

// String returns the lowercase discipline name.
func (d Discipline) String() string {
	if d == FIFO {
		return "fifo"
	}
	return "latest"
}

// Caps describes what a backend supports. The runtime validates port
// usage against it at wiring time, so misuse surfaces as a typed error
// before (or instead of) a hot-path type assertion.
type Caps struct {
	// Discipline is the backend's consumption order.
	Discipline Discipline
	// Windows reports sliding-window consumer support.
	Windows bool
	// GetAt reports support for consuming an exact timestamp.
	GetAt bool
	// TryGet reports support for the non-blocking get variant.
	TryGet bool
	// Remote marks a backend whose storage lives outside this process:
	// summary-STP feedback crosses a wire, so the local controller must
	// treat the buffer's summary as externally supplied, and the
	// runtime requires a real clock (a discrete-event clock cannot see
	// network blocking).
	Remote bool
}

// Feedback lets a backend exchange summary-STP values with the hosting
// runtime. In-process backends ignore it (the controller piggybacks
// feedback itself); wire-backed backends use it to forward a consumer's
// summary-STP with each get and to deliver the buffer's summary-STP
// received with each put reply.
type Feedback interface {
	// ConsumerSummary returns the current summary-STP of the thread
	// consuming over conn.
	ConsumerSummary(conn graph.ConnID) core.STP
	// ObserveBufferSummary delivers the buffer's summary-STP as
	// reported by its authoritative (remote) holder.
	ObserveBufferSummary(s core.STP)
}

// RemoteTuning tunes a wire-backed backend's fault tolerance. The zero
// value means defaults everywhere; in-process backends ignore it.
type RemoteTuning struct {
	// CallTimeout bounds each bounded request/response round trip
	// (attach, put, try-get, stats) with read/write deadlines; a stalled
	// peer surfaces as a typed timeout instead of a wedged connection.
	// Zero means the backend default (5s).
	CallTimeout time.Duration
	// GetTimeout bounds a blocking get's wait for the reply. Zero means
	// wait forever (a legitimately idle channel must not look like a
	// fault); set it above the longest expected idle gap to bound fault
	// detection on consumers.
	GetTimeout time.Duration
	// RetryBase/RetryCap/RetryFactor/RetryJitter shape the capped
	// exponential redial backoff (defaults 50ms / 2s / 2 / 0.2).
	RetryBase   time.Duration
	RetryCap    time.Duration
	RetryFactor float64
	RetryJitter float64
	// MaxRetries is the per-operation redial/retry budget before the
	// operation reports ErrDegraded. Zero means the default (3);
	// negative disables retries.
	MaxRetries int
	// Seed fixes the jitter randomness for deterministic tests; zero
	// derives a seed from the clock.
	Seed int64
	// StaleTTL is the age past which a remote summary-STP stops being
	// trusted: its contribution to the backward fold decays linearly to
	// Unknown over a second TTL, so a producer throttled by a dead
	// consumer returns to local pacing (the paper-safe direction). Zero
	// means the default (10s); negative disables decay.
	StaleTTL time.Duration
}

// Config configures a buffer backend. Fields irrelevant to a backend
// are ignored (queues ignore Collector; in-process backends ignore
// Addr/RemoteName/Feedback).
type Config struct {
	// Name is the buffer's system-wide unique name.
	Name string
	// Tenant optionally names the tenant/pipeline the buffer belongs to;
	// when set, every metric instrument carries it as a `tenant` label so
	// multi-tenant runs sharing one registry stay distinguishable.
	Tenant string
	// Node is the buffer's task-graph identity.
	Node graph.NodeID
	// Clock supplies event times; nil means a real clock.
	Clock clock.Clock
	// Collector reclaims dead items (random-access backends); nil
	// means gc.NewNone().
	Collector gc.Collector
	// OnFree, if non-nil, observes every reclaimed item (the runtime
	// records EvFree trace events here).
	OnFree func(it *Item, at time.Duration)
	// Capacity bounds the number of live items; Put blocks while full.
	// Zero means unbounded (the Stampede default).
	Capacity int
	// Addr is the server address for wire-backed backends.
	Addr string
	// RemoteName is the hosted buffer name on the server; empty means
	// Name.
	RemoteName string
	// Feedback is the runtime's summary-STP exchange hook for
	// wire-backed backends.
	Feedback Feedback
	// Remote tunes a wire-backed backend's fault tolerance (deadlines,
	// redial backoff, staleness TTL); in-process backends ignore it.
	Remote RemoteTuning
	// Metrics, when non-nil, receives the backend's live instruments
	// (puts/frees counters, occupancy high-water marks, blocked-put wait
	// histogram; wire-backed backends add round-trip latency and fault
	// counters), labeled by buffer name. Nil keeps the hot path
	// instrument-free: handles are nil and no-op after one branch.
	Metrics *metrics.Registry
	// Pool, when non-nil, receives items back once the buffer is done
	// with them (after reclamation and the OnFree observer). The runtime
	// shares one pool across all its buffers so the steady-state
	// put→free cycle reuses Item allocations. Nil disables recycling.
	Pool *ItemPool
}

// MetricLabels returns the label set a backend's instruments must carry:
// the buffer name, plus the tenant tag when one is configured. Every
// backend registers through this helper so the tenant dimension is
// uniform across families.
func (c Config) MetricLabels() metrics.Labels {
	ls := metrics.Labels{"buffer": c.Name}
	if c.Tenant != "" {
		ls["tenant"] = c.Tenant
	}
	return ls
}

// HighWaterer is implemented by backends that track occupancy
// high-water marks inline (in-process backends do, when metrics are
// enabled). The runtime snapshot layer type-asserts it.
type HighWaterer interface {
	// HighWater returns the maximum live item count and byte footprint
	// observed since creation (zeros when metrics are disabled).
	HighWater() (items, bytes int64)
}

// PutBlocker is implemented by backends that account producer
// capacity-blocking inline (every Base-embedding in-process backend
// does, metrics on or off). The elastic scheduler reads it as its
// backlog-pressure sensor: a buffer whose producers accumulate blocked
// time faster than its consumer drains is the bottleneck's inbox.
type PutBlocker interface {
	// PutBlocked returns the cumulative time producers spent blocked on
	// capacity and the number of puts that blocked.
	PutBlocked() (blocked time.Duration, blockedPuts int64)
}

// Buffer is a timestamped buffer endpoint as seen by the runtime. All
// methods must be safe for concurrent use.
type Buffer interface {
	// Name returns the buffer's system-wide unique name.
	Name() string
	// Node returns the buffer's task-graph id.
	Node() graph.NodeID
	// Caps reports the backend's capabilities.
	Caps() Caps

	// AttachProducer registers an output connection of a producer
	// thread. It must happen before the producer's first Put.
	AttachProducer(conn graph.ConnID) error
	// AttachConsumer registers an input connection with the given
	// sliding-window width (1 for ordinary consumers). Backends
	// without window support reject window > 1 with ErrUnsupported.
	AttachConsumer(conn graph.ConnID, window int) error
	// DetachConsumer removes a consumer connection; its collection
	// guarantee becomes infinite.
	DetachConsumer(conn graph.ConnID)

	// Put inserts an item, blocking while a bounded buffer is full.
	// The returned duration is the time spent blocked on capacity.
	// Ownership of it transfers to the buffer exactly when the put took
	// effect (err == nil, or ErrReattached); on any other error the
	// caller keeps the item and may recycle it.
	Put(conn graph.ConnID, it *Item) (time.Duration, error)
	// PutBatch inserts items in order under one synchronization round,
	// returning how many were applied and the total time blocked on
	// capacity. It stops at the first failing item: applied < len(items)
	// implies err != nil, and ownership of items[applied:] stays with
	// the caller. Backends without a native batch path may apply items
	// one by one (PutBatchSerial).
	PutBatch(conn graph.ConnID, items []*Item) (applied int, blocked time.Duration, err error)
	// Get consumes the next item per the backend's discipline —
	// freshest-unseen for Latest, oldest for FIFO — blocking until one
	// is available.
	Get(conn graph.ConnID) (GetResult, error)
	// GetBatch consumes up to len(dst) immediately consumable items into
	// dst, blocking only until the first is available: n >= 1 when err
	// is nil, and dst[0].Blocked carries the wait. Latest backends
	// deliver every unseen live item oldest-first (a lossless drain — no
	// Skipped marking — and reject window > 1 consumers with
	// ErrUnsupported); FIFO backends dequeue in order. len(dst) == 0
	// returns (0, nil) without blocking.
	GetBatch(conn graph.ConnID, dst []GetResult) (n int, err error)
	// TryGet is the non-blocking Get; ok is false when nothing is
	// consumable right now.
	TryGet(conn graph.ConnID) (res GetResult, ok bool, err error)
	// GetAt consumes the item at exactly ts (random-access backends).
	GetAt(conn graph.ConnID, ts vt.Timestamp) (GetResult, error)

	// WouldBeDead reports whether an item put at ts right now would be
	// immediately unreachable (§3.2 upstream computation elimination).
	// Backends whose items are never skipped report false.
	WouldBeDead(ts vt.Timestamp) bool

	// Seal flips the buffer into drain mode: every subsequent Put /
	// PutBatch is rejected with ErrDraining (and any put blocked on
	// capacity unblocks with it), while gets keep serving the items
	// already buffered. Once nothing consumable remains for a
	// connection, its gets report ErrClosed — the flush-then-terminate
	// contract consumers drain on. Sealing is idempotent and weaker
	// than Close: Close still fully closes a sealed buffer.
	Seal()
	// Drained reports that the buffer is sealed and holds nothing any
	// consumer could still consume: the flush completed.
	Drained() bool
	// DrainStats returns the drain accounting: drained counts items
	// delivered to a consumer after Seal; shed counts items discarded
	// undelivered (by Drain() or by closing a buffer that still held
	// backlog). Both are cumulative and survive Close.
	DrainStats() (drained, shed int64)

	// Close marks the buffer closed and wakes all blocked operations.
	Close()
	// Closed reports whether Close has been called.
	Closed() bool
	// Drain discards items still buffered after Close, reporting each
	// to OnFree, and returns how many it discarded.
	Drain() int

	// Occupancy returns the current live item count and bytes.
	Occupancy() (items int, bytes int64)
	// Stats returns cumulative puts and frees.
	Stats() (puts, frees int64)
}
