// Differential property tests: the refactored backends, driven purely
// through the buffer.Buffer interface exactly as the runtime drives
// them, are compared op-for-op against straight-line oracle models of
// the pre-refactor semantics (get-latest delivery with skip sets for
// channels, strict FIFO with immediate reclamation for queues). Any
// divergence in delivered timestamps, skip sets, error classes,
// occupancy, or the puts/frees counters is a regression the unit tests
// might rationalize away; the oracle cannot.
package buffer_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	_ "repro/internal/channel" // register "channel"
	"repro/internal/graph"
	_ "repro/internal/queue" // register "queue"
	_ "repro/internal/ring"  // register "ring"
	"repro/internal/vt"
)

const (
	prodConn  graph.ConnID = 10
	consConnA graph.ConnID = 1
	consConnB graph.ConnID = 2
)

func newBackend(t *testing.T, backend string) buffer.Buffer {
	t.Helper()
	b, err := buffer.New(backend, buffer.Config{Name: "diff-" + backend, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AttachProducer(prodConn); err != nil {
		t.Fatal(err)
	}
	for _, conn := range []graph.ConnID{consConnA, consConnB} {
		if err := b.AttachConsumer(conn, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// itemSize derives a deterministic per-timestamp size so the oracle can
// predict occupancy bytes.
func itemSize(ts vt.Timestamp) int64 { return int64(ts%7+1) * 100 }

// --- channel oracle -------------------------------------------------

// chanCons models one get-latest consumer connection.
type chanCons struct {
	lastSeen  vt.Timestamp
	guarantee vt.Timestamp
}

// chanOracle is the pre-refactor channel model under the no-op
// collector: every put stays live, so delivery and skip sets follow
// from the timestamp order alone.
type chanOracle struct {
	live   map[vt.Timestamp]bool
	maxPut vt.Timestamp
	cons   map[graph.ConnID]*chanCons
	puts   int64
	bytes  int64
}

func newChanOracle() *chanOracle {
	return &chanOracle{
		live:   make(map[vt.Timestamp]bool),
		maxPut: vt.None,
		cons: map[graph.ConnID]*chanCons{
			consConnA: {lastSeen: vt.None, guarantee: vt.None},
			consConnB: {lastSeen: vt.None, guarantee: vt.None},
		},
	}
}

func (o *chanOracle) liveAsc(lo, hi vt.Timestamp) []vt.Timestamp {
	if lo < 1 {
		lo = 1 // the test only puts timestamps ≥ 1 (vt.None is MinInt64)
	}
	var out []vt.Timestamp
	for ts := lo; ts < hi; ts++ {
		if o.live[ts] {
			out = append(out, ts)
		}
	}
	return out
}

func (o *chanOracle) newest() vt.Timestamp {
	newest := vt.None
	for ts := range o.live {
		if ts > newest {
			newest = ts
		}
	}
	return newest
}

// put returns whether the put must succeed.
func (o *chanOracle) put(ts vt.Timestamp) bool {
	if o.live[ts] {
		return false // duplicate
	}
	o.live[ts] = true
	o.puts++
	o.bytes += itemSize(ts)
	if ts > o.maxPut {
		o.maxPut = ts
	}
	return true
}

// tryGet returns the expected item TS, skip list, and ok flag.
func (o *chanOracle) tryGet(conn graph.ConnID) (vt.Timestamp, []vt.Timestamp, bool) {
	cs := o.cons[conn]
	newest := o.newest()
	if newest <= cs.lastSeen {
		return 0, nil, false
	}
	skipped := o.liveAsc(cs.lastSeen+1, newest)
	cs.lastSeen = newest
	if newest > cs.guarantee {
		cs.guarantee = newest
	}
	return newest, skipped, true
}

// getAtClass classifies the expected GetAt outcome: "ok", "passed",
// "gone", or "block" (the test never issues blocking calls).
func (o *chanOracle) getAtClass(conn graph.ConnID, ts vt.Timestamp) string {
	cs := o.cons[conn]
	if ts <= cs.guarantee {
		return "passed"
	}
	if o.live[ts] {
		if ts > cs.lastSeen {
			cs.lastSeen = ts
		}
		cs.guarantee = ts
		return "ok"
	}
	if o.maxPut > ts {
		return "gone"
	}
	return "block"
}

// TestDifferentialChannel drives a registry-materialized channel with a
// seeded random op sequence and checks every observable against the
// oracle.
func TestDifferentialChannel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			b := newBackend(t, "channel")
			o := newChanOracle()
			conns := []graph.ConnID{consConnA, consConnB}
			var nextTS vt.Timestamp = 1

			for op := 0; op < 3000; op++ {
				switch k := rng.Intn(10); {
				case k < 4: // put, occasionally a duplicate
					ts := nextTS
					if o.puts > 0 && rng.Intn(10) == 0 {
						ts = vt.Timestamp(1 + rng.Int63n(int64(o.maxPut)))
					} else {
						nextTS += vt.Timestamp(1 + rng.Intn(3))
					}
					wantOK := o.put(ts)
					_, err := b.Put(prodConn, &buffer.Item{TS: ts, Size: itemSize(ts)})
					if wantOK && err != nil {
						t.Fatalf("op %d: put %v: unexpected error %v", op, ts, err)
					}
					if !wantOK && !errors.Is(err, buffer.ErrDuplicate) {
						t.Fatalf("op %d: duplicate put %v: got %v, want ErrDuplicate", op, ts, err)
					}

				case k < 8: // try-get by a random consumer
					conn := conns[rng.Intn(len(conns))]
					wantTS, wantSkip, wantOK := o.tryGet(conn)
					res, ok, err := b.TryGet(conn)
					if err != nil {
						t.Fatalf("op %d: tryget: %v", op, err)
					}
					if ok != wantOK {
						t.Fatalf("op %d: tryget ok=%v, oracle %v", op, ok, wantOK)
					}
					if !ok {
						continue
					}
					if res.Item.TS != wantTS {
						t.Fatalf("op %d: tryget ts=%v, oracle %v", op, res.Item.TS, wantTS)
					}
					if len(res.Skipped) != len(wantSkip) {
						t.Fatalf("op %d: tryget skipped %d items, oracle %d", op, len(res.Skipped), len(wantSkip))
					}
					for i, sk := range res.Skipped {
						if sk.TS != wantSkip[i] {
							t.Fatalf("op %d: skipped[%d]=%v, oracle %v", op, i, sk.TS, wantSkip[i])
						}
					}

				case k < 9: // get-at a timestamp that cannot block
					if o.maxPut == vt.None {
						continue
					}
					conn := conns[rng.Intn(len(conns))]
					ts := vt.Timestamp(1 + rng.Int63n(int64(o.maxPut)))
					class := o.getAtClass(conn, ts)
					if class == "block" {
						continue
					}
					res, err := b.GetAt(conn, ts)
					switch class {
					case "ok":
						if err != nil {
							t.Fatalf("op %d: getat %v: %v, oracle ok", op, ts, err)
						}
						if res.Item.TS != ts {
							t.Fatalf("op %d: getat ts=%v, want %v", op, res.Item.TS, ts)
						}
					case "passed":
						if !errors.Is(err, buffer.ErrPassed) {
							t.Fatalf("op %d: getat %v: %v, oracle ErrPassed", op, ts, err)
						}
					case "gone":
						if !errors.Is(err, buffer.ErrGone) {
							t.Fatalf("op %d: getat %v: %v, oracle ErrGone", op, ts, err)
						}
					}

				default: // accounting parity
					items, bytes := b.Occupancy()
					if items != len(o.live) || bytes != o.bytes {
						t.Fatalf("op %d: occupancy (%d, %d), oracle (%d, %d)", op, items, bytes, len(o.live), o.bytes)
					}
					puts, frees := b.Stats()
					if puts != o.puts || frees != 0 {
						t.Fatalf("op %d: stats (%d, %d), oracle (%d, 0)", op, puts, frees, o.puts)
					}
				}
			}
		})
	}
}

// --- queue oracle ---------------------------------------------------

// queueOracle is the pre-refactor FIFO model: put appends, get pops the
// head, and the popped item is reclaimed on the spot — so frees must
// track gets exactly (the Stats parity the refactor added).
type queueOracle struct {
	fifo  []vt.Timestamp
	puts  int64
	frees int64
	bytes int64
}

func (o *queueOracle) put(ts vt.Timestamp) {
	o.fifo = append(o.fifo, ts)
	o.puts++
	o.bytes += itemSize(ts)
}

func (o *queueOracle) tryGet() (vt.Timestamp, bool) {
	if len(o.fifo) == 0 {
		return 0, false
	}
	ts := o.fifo[0]
	o.fifo = o.fifo[1:]
	o.frees++
	o.bytes -= itemSize(ts)
	return ts, true
}

// TestDifferentialQueue drives a registry-materialized queue against the
// FIFO oracle, including the frees-counter parity that WriteStatus
// reports.
func TestDifferentialQueue(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			b := newBackend(t, "queue")
			o := &queueOracle{}
			conns := []graph.ConnID{consConnA, consConnB}
			var nextTS vt.Timestamp

			for op := 0; op < 3000; op++ {
				switch k := rng.Intn(10); {
				case k < 4: // put (queues accept any timestamp order)
					nextTS++
					ts := nextTS
					o.put(ts)
					if _, err := b.Put(prodConn, &buffer.Item{TS: ts, Size: itemSize(ts)}); err != nil {
						t.Fatalf("op %d: put %v: %v", op, ts, err)
					}

				case k < 8: // try-get from either consumer pops the head
					conn := conns[rng.Intn(len(conns))]
					wantTS, wantOK := o.tryGet()
					res, ok, err := b.TryGet(conn)
					if err != nil {
						t.Fatalf("op %d: tryget: %v", op, err)
					}
					if ok != wantOK {
						t.Fatalf("op %d: tryget ok=%v, oracle %v", op, ok, wantOK)
					}
					if ok && res.Item.TS != wantTS {
						t.Fatalf("op %d: tryget ts=%v, oracle %v", op, res.Item.TS, wantTS)
					}

				case k < 9: // unsupported op reports the typed error
					if _, err := b.GetAt(consConnA, 1); !errors.Is(err, buffer.ErrUnsupported) {
						t.Fatalf("op %d: getat on queue: %v, want ErrUnsupported", op, err)
					}

				default: // accounting parity, including frees
					items, bytes := b.Occupancy()
					if items != len(o.fifo) || bytes != o.bytes {
						t.Fatalf("op %d: occupancy (%d, %d), oracle (%d, %d)", op, items, bytes, len(o.fifo), o.bytes)
					}
					puts, frees := b.Stats()
					if puts != o.puts || frees != o.frees {
						t.Fatalf("op %d: stats (%d, %d), oracle (%d, %d)", op, puts, frees, o.puts, o.frees)
					}
				}
			}
		})
	}
}

// TestDifferentialRing drives a registry-materialized ring against the
// same FIFO oracle as the queue — the ring is a drop-in FIFO, so any
// divergence from the queue's observable behaviour (delivery order,
// accounting, error classes) is a bug in the lock-free path. Puts and
// gets mix the single-item and batch entry points so the batch fast
// paths are checked against the oracle too.
func TestDifferentialRing(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Capacity exceeds the total put count so single-threaded
			// puts can never park.
			b, err := buffer.New("ring", buffer.Config{Name: "diff-ring", Node: 1, Capacity: 8192})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.AttachProducer(prodConn); err != nil {
				t.Fatal(err)
			}
			if err := b.AttachConsumer(consConnA, 1); err != nil {
				t.Fatal(err)
			}
			o := &queueOracle{}
			var nextTS vt.Timestamp
			items := make([]*buffer.Item, 0, 4)
			dst := make([]buffer.GetResult, 4)

			for op := 0; op < 3000; op++ {
				switch k := rng.Intn(10); {
				case k < 4: // put a run of 1..4 items, batched or serial
					items = items[:0]
					for m := 1 + rng.Intn(4); m > 0; m-- {
						nextTS++
						o.put(nextTS)
						items = append(items, &buffer.Item{TS: nextTS, Size: itemSize(nextTS)})
					}
					if rng.Intn(2) == 0 {
						applied, _, err := b.PutBatch(prodConn, items)
						if err != nil || applied != len(items) {
							t.Fatalf("op %d: putbatch = (%d, %v), want (%d, nil)", op, applied, err, len(items))
						}
					} else {
						for _, it := range items {
							if _, err := b.Put(prodConn, it); err != nil {
								t.Fatalf("op %d: put %v: %v", op, it.TS, err)
							}
						}
					}

				case k < 8: // pop: batch get when non-empty, try-get otherwise
					if len(o.fifo) > 0 && rng.Intn(2) == 0 {
						want := len(o.fifo)
						if want > len(dst) {
							want = len(dst)
						}
						n, err := b.GetBatch(consConnA, dst[:1+rng.Intn(len(dst))])
						if err != nil {
							t.Fatalf("op %d: getbatch: %v", op, err)
						}
						if n == 0 || n > want {
							t.Fatalf("op %d: getbatch n=%d with %d queued", op, n, want)
						}
						for i := 0; i < n; i++ {
							wantTS, _ := o.tryGet()
							if dst[i].Item.TS != wantTS {
								t.Fatalf("op %d: getbatch[%d] ts=%v, oracle %v", op, i, dst[i].Item.TS, wantTS)
							}
						}
					} else {
						wantTS, wantOK := o.tryGet()
						res, ok, err := b.TryGet(consConnA)
						if err != nil {
							t.Fatalf("op %d: tryget: %v", op, err)
						}
						if ok != wantOK {
							t.Fatalf("op %d: tryget ok=%v, oracle %v", op, ok, wantOK)
						}
						if ok && res.Item.TS != wantTS {
							t.Fatalf("op %d: tryget ts=%v, oracle %v", op, res.Item.TS, wantTS)
						}
					}

				case k < 9: // unsupported op reports the typed error
					if _, err := b.GetAt(consConnA, 1); !errors.Is(err, buffer.ErrUnsupported) {
						t.Fatalf("op %d: getat on ring: %v, want ErrUnsupported", op, err)
					}

				default: // accounting parity, including frees
					items, bytes := b.Occupancy()
					if items != len(o.fifo) || bytes != o.bytes {
						t.Fatalf("op %d: occupancy (%d, %d), oracle (%d, %d)", op, items, bytes, len(o.fifo), o.bytes)
					}
					puts, frees := b.Stats()
					if puts != o.puts || frees != o.frees {
						t.Fatalf("op %d: stats (%d, %d), oracle (%d, %d)", op, puts, frees, o.puts, o.frees)
					}
				}
			}
		})
	}
}

// TestRingMPSCHammer floods the ring's CAS-claimed tail from concurrent
// pooled producers through the Buffer interface and demands exact
// accounting at the end: every item delivered exactly once, byte totals
// matching, puts == frees, and an empty ring. Run under -race this is
// the memory-ordering check for the MPSC path.
func TestRingMPSCHammer(t *testing.T) {
	const producers, perProducer, batch = 4, 2500, 8
	pool := buffer.NewItemPool()
	b, err := buffer.New("ring", buffer.Config{Name: "hammer-ring", Node: 1, Capacity: 512, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < producers; i++ {
		if err := b.AttachProducer(graph.ConnID(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AttachConsumer(consConnA, 1); err != nil {
		t.Fatal(err)
	}

	var wantBytes int64
	for i := 0; i < producers*perProducer; i++ {
		wantBytes += itemSize(vt.Timestamp(i + 1))
	}

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := graph.ConnID(100 + i)
			items := make([]*buffer.Item, 0, batch)
			for k := 0; k < perProducer; {
				items = items[:0]
				for len(items) < batch && k < perProducer {
					it := pool.Get()
					it.TS = vt.Timestamp(i*perProducer + k + 1)
					it.Size = itemSize(it.TS)
					items = append(items, it)
					k++
				}
				if len(items) == 1 {
					if _, err := b.Put(conn, items[0]); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else if applied, _, err := b.PutBatch(conn, items); err != nil || applied != len(items) {
					t.Errorf("putbatch = (%d, %v), want (%d, nil)", applied, err, len(items))
					return
				}
			}
		}(i)
	}

	seen := make(map[vt.Timestamp]int, producers*perProducer)
	var gotBytes int64
	dst := make([]buffer.GetResult, 32)
	for got := 0; got < producers*perProducer; {
		n, err := b.GetBatch(consConnA, dst)
		if err != nil {
			t.Fatalf("getbatch after %d items: %v", got, err)
		}
		for _, res := range dst[:n] {
			seen[res.Item.TS]++
			gotBytes += res.Item.Size
		}
		got += n
	}
	wg.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("distinct timestamps = %d, want %d", len(seen), producers*perProducer)
	}
	for ts, n := range seen {
		if n != 1 {
			t.Fatalf("ts %v delivered %d times, want exactly once", ts, n)
		}
	}
	if gotBytes != wantBytes {
		t.Fatalf("delivered bytes = %d, want %d", gotBytes, wantBytes)
	}
	puts, frees := b.Stats()
	if want := int64(producers * perProducer); puts != want || frees != want {
		t.Fatalf("stats = %d/%d, want %d/%d", puts, frees, want, want)
	}
	if items, bytes := b.Occupancy(); items != 0 || bytes != 0 {
		t.Fatalf("occupancy = %d/%d, want 0/0", items, bytes)
	}
}

// TestUnifiedDispatchConcurrent hammers both in-process backends through
// the Buffer interface from concurrent producers and consumers — the
// shape the runtime's unified Ctx.Get/Ctx.Put produces — so the -race
// build checks the Base synchronization under interface dispatch.
func TestUnifiedDispatchConcurrent(t *testing.T) {
	for _, backend := range []string{"channel", "queue"} {
		t.Run(backend, func(t *testing.T) {
			b, err := buffer.New(backend, buffer.Config{Name: "race-" + backend, Node: 1})
			if err != nil {
				t.Fatal(err)
			}
			const producers, consumers, perProducer = 3, 3, 200
			for i := 0; i < producers; i++ {
				if err := b.AttachProducer(graph.ConnID(100 + i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < consumers; i++ {
				if err := b.AttachConsumer(graph.ConnID(200+i), 1); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			for i := 0; i < producers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for k := 0; k < perProducer; k++ {
						ts := vt.Timestamp(i*perProducer + k + 1)
						if _, err := b.Put(graph.ConnID(100+i), &buffer.Item{TS: ts, Size: 64}); err != nil {
							t.Errorf("put %v: %v", ts, err)
							return
						}
					}
				}(i)
			}
			for i := 0; i < consumers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					conn := graph.ConnID(200 + i)
					for {
						if _, err := b.Get(conn); err != nil {
							if errors.Is(err, buffer.ErrClosed) {
								return
							}
							t.Errorf("get: %v", err)
							return
						}
					}
				}(i)
			}

			// Let the producers finish, then close to release the
			// blocked consumers.
			done := make(chan struct{})
			go func() {
				defer close(done)
				wg.Wait()
			}()
			go func() {
				// Close once all puts landed; consumers drain or skip.
				for {
					puts, _ := b.Stats()
					if puts >= producers*perProducer {
						b.Close()
						return
					}
					time.Sleep(time.Millisecond)
				}
			}()
			<-done

			puts, _ := b.Stats()
			if puts != producers*perProducer {
				t.Fatalf("puts=%d, want %d", puts, producers*perProducer)
			}
		})
	}
}
