package buffer

import "sync"

// freeListCap bounds the ItemPool's level-0 free list. It is deliberately
// small: the list exists to make recycling deterministic (a GC cycle may
// empty a sync.Pool at any time, which would perturb the put=0 allocation
// pins), not to be the bulk store — overflow spills into the sync.Pool,
// whose per-P private slots carry the parallel load.
const freeListCap = 1024

// ItemPool recycles Item allocations between the producer hot path and
// the reclamation paths (collection, dequeue, drain). With a pool wired
// into the runtime, the steady-state put→consume→free cycle allocates
// nothing: the Item freed by one iteration is the Item the next put
// reuses, retiring the historical put=1 allocation pin to put=0.
//
// Get consults a bounded free list first (the deterministic fast path),
// then the embedded sync.Pool; Recycle zeroes the item — dropping the
// payload reference so pooling never extends payload lifetimes — and
// returns it the same way. All methods are safe for concurrent use and
// nil-safe: a nil *ItemPool ignores Recycle and allocates on Get, so
// backends call it unconditionally.
type ItemPool struct {
	mu   sync.Mutex
	free []*Item
	pool sync.Pool
}

// NewItemPool returns an empty pool.
func NewItemPool() *ItemPool {
	p := &ItemPool{free: make([]*Item, 0, freeListCap)}
	p.pool.New = func() any { return new(Item) }
	return p
}

// Get returns a zeroed Item, reusing a recycled one when available.
func (p *ItemPool) Get() *Item {
	if p == nil {
		return new(Item)
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		it := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return it
	}
	p.mu.Unlock()
	return p.pool.Get().(*Item)
}

// GetN fills dst with zeroed carriers in one free-list round: the lock
// is taken once for the whole batch instead of once per item, which is
// what makes batched puts cheaper than repeated Get calls.
func (p *ItemPool) GetN(dst []*Item) {
	if p == nil {
		for i := range dst {
			dst[i] = new(Item)
		}
		return
	}
	p.mu.Lock()
	n := len(p.free)
	take := n
	if take > len(dst) {
		take = len(dst)
	}
	copy(dst[:take], p.free[n-take:])
	p.free = p.free[:n-take]
	p.mu.Unlock()
	for i := take; i < len(dst); i++ {
		dst[i] = p.pool.Get().(*Item)
	}
}

// RecycleN zeroes and recycles a batch of items in one free-list round;
// what the free list cannot hold spills into the sync.Pool outside the
// lock. nil entries are skipped, and like Recycle the caller must be
// the sole owner of every item. A nil pool ignores the batch.
func (p *ItemPool) RecycleN(items []*Item) {
	if p == nil {
		return
	}
	for _, it := range items {
		if it != nil {
			*it = Item{}
		}
	}
	k := 0
	p.mu.Lock()
	for k < len(items) && len(p.free) < cap(p.free) {
		if items[k] != nil {
			p.free = append(p.free, items[k])
		}
		k++
	}
	p.mu.Unlock()
	for ; k < len(items); k++ {
		if items[k] != nil {
			p.pool.Put(items[k])
		}
	}
}

// Recycle zeroes an item and returns it to the pool. The caller must be
// the item's sole owner: buffers recycle only after the item left their
// storage and every observer (OnFree, snapshots) is done with the
// pointer. Recycling nil or through a nil pool is a no-op.
func (p *ItemPool) Recycle(it *Item) {
	if p == nil || it == nil {
		return
	}
	*it = Item{}
	p.mu.Lock()
	if len(p.free) < cap(p.free) {
		p.free = append(p.free, it)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.pool.Put(it)
}
