package buffer

import (
	"errors"
	"time"

	"repro/internal/graph"
)

// PutBatchSerial implements PutBatch as a loop of single puts. Backends
// without a native batch path (wire-backed endpoints, whose unit of
// synchronization is the request round trip rather than a lock) delegate
// to it; the ownership contract matches PutBatch exactly — items[:applied]
// belong to the buffer, the rest stay with the caller. An informational
// ErrReattached from an individual put counts as applied and does not
// stop the batch; it is reported once at the end.
func PutBatchSerial(b Buffer, conn graph.ConnID, items []*Item) (applied int, blocked time.Duration, err error) {
	var info error
	for i, it := range items {
		d, perr := b.Put(conn, it)
		blocked += d
		if perr != nil {
			if !errors.Is(perr, ErrReattached) {
				return i, blocked, perr
			}
			info = perr
		}
	}
	return len(items), blocked, info
}

// GetBatchSerial implements GetBatch as one blocking Get followed by
// non-blocking TryGets while the batch has room. Backends without TryGet
// support degrade to batch size 1 — never blocking for a second item a
// producer might not send. An informational ErrReattached on the first
// get is passed through with its (valid) item.
func GetBatchSerial(b Buffer, conn graph.ConnID, dst []GetResult) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	res, err := b.Get(conn)
	if err != nil && !errors.Is(err, ErrReattached) {
		return 0, err
	}
	dst[0] = res
	n := 1
	if !b.Caps().TryGet {
		return n, err
	}
	for n < len(dst) {
		res, ok, terr := b.TryGet(conn)
		if terr != nil || !ok {
			break // the first get's informational err still stands
		}
		dst[n] = res
		n++
	}
	return n, err
}
