// Package backoff provides the capped-exponential-backoff-with-jitter
// schedule shared by every layer that retries after a failure: the remote
// wire layer redialing a severed connection (internal/remote) and the
// thread supervisor restarting a crashed thread body (internal/runtime).
//
// Delay is a pure function of the attempt index and a unit jitter sample,
// so fake-clock tests can pin the exact schedule a seed produces — the
// property the PR 3 chaos suite relies on for the redial schedule and the
// supervision suite relies on for the restart schedule.
package backoff

import "time"

// Defaults, chosen so a transient blip heals in well under a second while
// a true outage backs off to a polite cap within a few attempts.
const (
	// DefaultBase is the first delay.
	DefaultBase = 50 * time.Millisecond
	// DefaultCap bounds every delay.
	DefaultCap = 2 * time.Second
	// DefaultFactor is the exponential growth rate.
	DefaultFactor = 2.0
	// DefaultJitter is the symmetric jitter fraction.
	DefaultJitter = 0.2
)

// Backoff parameterizes capped exponential backoff with symmetric
// jitter: the n-th delay is Base·Factorⁿ capped at Cap, then scaled by
// 1 + Jitter·(2u−1) for a unit sample u.
type Backoff struct {
	// Base is the first delay (default 50ms).
	Base time.Duration
	// Cap bounds every delay (default 2s).
	Cap time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Jitter is the symmetric jitter fraction in [0,1) (default 0.2);
	// negative disables jitter entirely.
	Jitter float64
}

// WithDefaults fills zero fields. It is idempotent: the negative
// "jitter disabled" sentinel survives repeated application (mapping it
// to 0 here would let a second pass resurrect the default).
func (b Backoff) WithDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBase
	}
	if b.Cap <= 0 {
		b.Cap = DefaultCap
	}
	if b.Factor <= 0 {
		b.Factor = DefaultFactor
	}
	if b.Jitter == 0 {
		b.Jitter = DefaultJitter
	}
	return b
}

// Delay returns the n-th (0-based) delay for a unit jitter sample u in
// [0,1). It is a pure function, so fake-clock tests can pin the exact
// schedule a seed produces.
func (b Backoff) Delay(n int, u float64) time.Duration {
	b = b.WithDefaults()
	j := b.Jitter
	if j < 0 {
		j = 0 // negative disables jitter
	}
	d := float64(b.Base)
	for i := 0; i < n && d < float64(b.Cap); i++ {
		d *= b.Factor
	}
	if d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if j > 0 {
		d *= 1 + j*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	if d > float64(b.Cap)*(1+j) {
		d = float64(b.Cap) * (1 + j)
	}
	return time.Duration(d)
}
