package backoff

import (
	"testing"
	"time"
)

// TestDelaySchedule pins the jitter-free schedule: Base·Factorⁿ capped
// at Cap, exactly.
func TestDelaySchedule(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
	}
	for n, w := range want {
		if got := b.Delay(n, 0.5); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

// TestDelayJitterBounds checks the jittered delay stays within the
// symmetric band around the deterministic value.
func TestDelayJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.2}
	for n := 0; n < 6; n++ {
		det := b.Delay(n, 0.5) // u=0.5 → no displacement
		for _, u := range []float64{0, 0.25, 0.75, 0.999} {
			d := b.Delay(n, u)
			lo := time.Duration(float64(det) * 0.8)
			hi := time.Duration(float64(det) * 1.2)
			if d < lo || d > hi {
				t.Errorf("Delay(%d, %v) = %v outside [%v, %v]", n, u, d, lo, hi)
			}
		}
	}
}

// TestWithDefaultsIdempotent verifies applying defaults twice changes
// nothing, including the negative jitter-disabled sentinel.
func TestWithDefaultsIdempotent(t *testing.T) {
	var zero Backoff
	once := zero.WithDefaults()
	if once != once.WithDefaults() {
		t.Errorf("WithDefaults not idempotent: %+v vs %+v", once, once.WithDefaults())
	}
	if once.Base != DefaultBase || once.Cap != DefaultCap || once.Factor != DefaultFactor || once.Jitter != DefaultJitter {
		t.Errorf("defaults not applied: %+v", once)
	}
	noJ := Backoff{Jitter: -1}.WithDefaults()
	if noJ.Jitter != -1 {
		t.Errorf("jitter-disabled sentinel lost: %+v", noJ)
	}
	if d := noJ.Delay(0, 0.999); d != DefaultBase {
		t.Errorf("disabled jitter still jitters: %v", d)
	}
}
