package scenario

import (
	"errors"
	"testing"
	"time"
)

// fuzzTopologies / fuzzShapes include one invalid name each so the
// rejection path is part of the fuzzed surface.
var (
	fuzzTopologies = append(append([]string{}, TopologyNames...), "bogus")
	fuzzShapes     = append(append([]string{}, ShapeNames...), "bogus")
)

// FuzzGenerate is the generated-graph wiring fuzz target: arbitrary
// generator parameters must either be rejected with a typed
// *ParamError or yield a DAG that wires into a real Runtime, starts,
// runs, and stops cleanly — never a panic and never a deadlocked
// Start. CI replays the seed corpus on every chaos run; `go test
// -fuzz FuzzGenerate ./internal/scenario` explores further.
func FuzzGenerate(f *testing.F) {
	// Seed corpus: every topology/shape combination at the default
	// draw, the boundary depths/widths, failure injection, and a few
	// deliberately invalid corners.
	f.Add(uint64(1719), uint8(0), uint8(0), 2, 3, int64(10), int64(2), int64(14), 2, 8, 3, int64(2000), 0)
	f.Add(uint64(1), uint8(1), uint8(2), 0, 1, int64(5), int64(1), int64(4), 1, 2, 1, int64(500), 1)
	f.Add(uint64(7), uint8(2), uint8(4), 8, 8, int64(30), int64(8), int64(60), 4, 64, 16, int64(1500), 3)
	f.Add(uint64(0), uint8(3), uint8(5), -1, 0, int64(0), int64(0), int64(0), 0, 0, 0, int64(0), -1)
	f.Add(uint64(42), uint8(1), uint8(3), 4, 2, int64(1000), int64(50), int64(200), 1, 70000, 20, int64(700000), 0)

	f.Fuzz(func(t *testing.T, seed uint64, topoSel, shapeSel uint8,
		depth, width int, periodMs, costMinMs, costMaxMs int64,
		qmin, qmax, windowMax int, durMs int64, failures int) {

		p := Params{
			Seed:        seed,
			Topology:    fuzzTopologies[int(topoSel)%len(fuzzTopologies)],
			Depth:       depth,
			Width:       width,
			Shape:       fuzzShapes[int(shapeSel)%len(fuzzShapes)],
			BasePeriod:  time.Duration(periodMs) * time.Millisecond,
			CostMin:     time.Duration(costMinMs) * time.Millisecond,
			CostMax:     time.Duration(costMaxMs) * time.Millisecond,
			QueueCapMin: qmin,
			QueueCapMax: qmax,
			WindowMax:   windowMax,
			Duration:    time.Duration(durMs) * time.Millisecond,
			Failures:    failures,
		}
		spec, err := Generate(p)
		if err != nil {
			var pe *ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection must be a *ParamError, got %T: %v", err, err)
			}
			return
		}
		// Valid params must produce a runnable DAG. Clamp the virtual
		// run length (and the failure iterations with it) so a fuzz
		// exec stays fast; the clamp is grid-aligned, so this is just
		// a shorter deterministic run.
		if spec.Params.Duration > 400*time.Millisecond {
			spec.Params.Duration = 400 * time.Millisecond
		}
		cm, err := Run(spec, RunConfig{})
		if err != nil {
			t.Fatalf("generated spec failed to run: %v\nparams: %+v", err, p)
		}
		if cm.Produced < 0 || cm.DropRatio < 0 || cm.DropRatio > 1 {
			t.Fatalf("nonsense metrics from valid run: %+v", cm)
		}
	})
}
