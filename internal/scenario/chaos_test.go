package scenario

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/remote"
	rt "repro/internal/runtime"
	"repro/internal/trace"
)

// manualParams fills the Params fields the runner reads when a Spec is
// hand-built rather than generated.
func manualParams(topology string, d time.Duration) Params {
	return Params{
		Topology:   topology,
		Shape:      "steady",
		BasePeriod: 20 * time.Millisecond,
		CostMin:    2 * time.Millisecond,
		CostMax:    4 * time.Millisecond,
		Duration:   d,
	}
}

// wireSpec hand-builds source → remote("wire") → sink: the smallest
// scenario with a wire-backed edge. Generate never draws remote edges
// (they need a live server and a real clock); this is the composition
// surface for faultnet chaos.
func wireSpec(addr string, d time.Duration) *Spec {
	shape, _ := ShapeByName("steady")
	return &Spec{
		Params: manualParams("chain", d),
		Shape:  shape,
		Stages: []StageSpec{
			{Name: "source0", Index: 0, Kind: "source", Cost: 2 * time.Millisecond, ItemBytes: 512, Outputs: []int{0}, Window: 1},
			{Name: "sink1", Index: 1, Kind: "sink", Cost: 2 * time.Millisecond, Inputs: []int{0}, Window: 1},
		},
		Buffers: []BufferSpec{
			{Name: "wire", Index: 0, Backend: "remote", Addr: addr, Producers: []int{0}, Consumers: []int{1}},
		},
	}
}

// TestRemoteEdgeComposesFaultnetChaos runs a scenario whose middle
// edge is a real socket wrapped in a faultnet script: scripted wire
// delays plus a one-shot mid-stream write sever. The pipeline must
// ride out the fault through the reconnect/replay machinery and keep
// emitting — proving faultnet chaos composes onto any scenario with a
// remote-backed edge.
func TestRemoteEdgeComposesFaultnetChaos(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	ln, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := remote.NewServer(remote.ServerConfig{Listener: ln}, "wire")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctl.SetDelays(200*time.Microsecond, 200*time.Microsecond, 300*time.Microsecond)
	// Sever the producer's connection partway into the stream: the
	// budget covers the attach handshake and the first several puts,
	// so the drop lands mid-run and the endpoint must redial + replay.
	ctl.DropWriteAfter(4096)

	spec := wireSpec(srv.Addr(), 3*time.Second)
	cm, err := Run(spec, RunConfig{Clock: clock.NewReal()})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if cm.Produced == 0 || cm.Emitted == 0 {
		t.Fatalf("pipeline did not flow under chaos: produced %d, emitted %d", cm.Produced, cm.Emitted)
	}
	if ctl.Injected() == 0 {
		t.Fatal("the fault script never bit: test proves nothing")
	}
	puts, _ := srv.Channel("wire").Stats()
	if puts <= 0 || int64(puts) > cm.Produced {
		t.Fatalf("server applied %d puts, source produced %d: lost or duplicated inserts", puts, cm.Produced)
	}
}

// TestRingAutoUpgradeFromGeneratedShape proves the generator's
// "ring-shaped" draws (power-of-two bounded queue, single consumer,
// window 1) actually auto-upgrade to the lock-free ring backend when
// built under a real clock — the eligibility path the pinned
// virtual-clock matrix can't take.
func TestRingAutoUpgradeFromGeneratedShape(t *testing.T) {
	shape, _ := ShapeByName("steady")
	spec := &Spec{
		Params: manualParams("chain", time.Second),
		Shape:  shape,
		Stages: []StageSpec{
			{Name: "source0", Index: 0, Kind: "source", Cost: 2 * time.Millisecond, ItemBytes: 256, Outputs: []int{0}, Window: 1},
			{Name: "sink1", Index: 1, Kind: "sink", Cost: 2 * time.Millisecond, Inputs: []int{0}, Window: 1},
		},
		Buffers: []BufferSpec{
			{Name: "buf0", Index: 0, Backend: "queue", Capacity: 8, Producers: []int{0}, Consumers: []int{1}},
		},
	}
	r, err := build(spec, rt.Options{
		Clock:       clock.NewReal(),
		Recorder:    trace.NewRecorder(),
		ARU:         core.PolicyMin(),
		SampleEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Start(); err != nil {
		t.Fatal(err)
	}
	upgraded := false
	for _, b := range r.rt.Snapshot().Buffers {
		if b.Name == "buf0" && b.Backend == "ring" {
			upgraded = true
		}
	}
	r.rt.Stop()
	if err := r.rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if !upgraded {
		t.Fatal("pow2 single-consumer queue did not auto-upgrade to the ring backend under a real clock")
	}

	// The same shape under the virtual clock must NOT upgrade: the
	// pinned matrix depends on queues staying queues there.
	r2, err := build(spec, rt.Options{
		Clock:       clock.NewVirtual(),
		Recorder:    trace.NewRecorder(),
		ARU:         core.PolicyMin(),
		SampleEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.rt.Start(); err != nil {
		t.Fatal(err)
	}
	for _, b := range r2.rt.Snapshot().Buffers {
		if b.Name == "buf0" && b.Backend == "ring" {
			t.Fatal("queue upgraded to ring under the discrete-event clock")
		}
	}
	r2.rt.Stop()
	if err := r2.rt.Wait(); err != nil {
		t.Fatal(err)
	}
}
