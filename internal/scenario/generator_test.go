package scenario

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// validateSpec checks the structural DAG invariants every generated
// spec must satisfy (the same rules graph.Validate enforces at Start).
func validateSpec(t *testing.T, s *Spec) {
	t.Helper()
	if len(s.Stages) == 0 || len(s.Buffers) == 0 {
		t.Fatalf("empty spec: %d stages, %d buffers", len(s.Stages), len(s.Buffers))
	}
	sources, sinks := 0, 0
	for i, st := range s.Stages {
		if st.Index != i {
			t.Fatalf("stage %d has index %d", i, st.Index)
		}
		switch st.Kind {
		case "source":
			sources++
			if len(st.Inputs) != 0 || len(st.Outputs) == 0 {
				t.Fatalf("source %s has %d ins / %d outs", st.Name, len(st.Inputs), len(st.Outputs))
			}
		case "sink":
			sinks++
			if len(st.Inputs) == 0 || len(st.Outputs) != 0 {
				t.Fatalf("sink %s has %d ins / %d outs", st.Name, len(st.Inputs), len(st.Outputs))
			}
		case "relay", "join":
			if len(st.Inputs) == 0 || len(st.Outputs) == 0 {
				t.Fatalf("%s %s is not connected on both sides", st.Kind, st.Name)
			}
		default:
			t.Fatalf("unknown stage kind %q", st.Kind)
		}
		if st.Cost < Grid || st.Cost%Grid != 0 {
			t.Fatalf("stage %s cost %v is off the grid", st.Name, st.Cost)
		}
		if st.Window < 1 || st.Window > s.Params.WindowMax {
			t.Fatalf("stage %s window %d out of [1,%d]", st.Name, st.Window, s.Params.WindowMax)
		}
	}
	if sources != 1 {
		t.Fatalf("want exactly 1 source, got %d", sources)
	}
	if sinks < 1 {
		t.Fatalf("want ≥1 sink, got %d", sinks)
	}
	for i, b := range s.Buffers {
		if b.Index != i {
			t.Fatalf("buffer %d has index %d", i, b.Index)
		}
		if len(b.Producers) == 0 || len(b.Consumers) == 0 {
			t.Fatalf("buffer %s: %d producers, %d consumers", b.Name, len(b.Producers), len(b.Consumers))
		}
		switch b.Backend {
		case "channel":
			if b.Capacity != 0 {
				t.Fatalf("channel %s has capacity %d (must be unbounded)", b.Name, b.Capacity)
			}
		case "queue":
			if b.Capacity < s.Params.QueueCapMin || b.Capacity > MaxQueueCap {
				t.Fatalf("queue %s capacity %d out of range", b.Name, b.Capacity)
			}
		default:
			t.Fatalf("unknown backend %q", b.Backend)
		}
		// Cross-references must be consistent both ways.
		for _, si := range b.Producers {
			if !contains(s.Stages[si].Outputs, i) {
				t.Fatalf("buffer %s lists producer %s which does not list it as output", b.Name, s.Stages[si].Name)
			}
		}
		for _, si := range b.Consumers {
			if !contains(s.Stages[si].Inputs, i) {
				t.Fatalf("buffer %s lists consumer %s which does not list it as input", b.Name, s.Stages[si].Name)
			}
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestGenerateTopologies(t *testing.T) {
	for _, topo := range TopologyNames {
		for _, shape := range ShapeNames {
			p := DefaultParams(1719, topo, shape)
			s, err := Generate(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", topo, shape, err)
			}
			validateSpec(t, s)
		}
	}
}

func TestGenerateDepthWidthSweep(t *testing.T) {
	for depth := 0; depth <= MaxDepth; depth += 2 {
		for width := 1; width <= MaxWidth; width += 3 {
			for _, topo := range TopologyNames {
				p := DefaultParams(7, topo, "steady")
				p.Depth, p.Width = depth, width
				s, err := Generate(p)
				if err != nil {
					t.Fatalf("%s d=%d w=%d: %v", topo, depth, width, err)
				}
				validateSpec(t, s)
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	p := DefaultParams(42, "diamond", "flash")
	p.Failures = 2
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Spec.Shape holds a func value (never DeepEqual); compare the
	// drawn structure.
	if !reflect.DeepEqual(a.Params, b.Params) || !reflect.DeepEqual(a.Stages, b.Stages) || !reflect.DeepEqual(a.Buffers, b.Buffers) {
		t.Fatal("same params produced different specs")
	}
	// A different seed must actually change the draws.
	p.Seed = 43
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Stages, c.Stages) && reflect.DeepEqual(a.Buffers, c.Buffers) {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestGenerateFailureDraws(t *testing.T) {
	p := DefaultParams(9, "chain", "steady")
	p.Failures = 3
	s, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, st := range s.Stages {
		if st.FailAt > 0 {
			n++
			if st.Kind == "source" {
				t.Fatalf("failure injected into the source (%s): the offered load must survive", st.Name)
			}
		}
	}
	if n != 3 {
		t.Fatalf("want 3 failure-marked stages, got %d", n)
	}
}

func TestGenerateRejects(t *testing.T) {
	base := func() Params { return DefaultParams(1, "chain", "steady") }
	cases := []struct {
		name  string
		mut   func(*Params)
		field string
	}{
		{"bad topology", func(p *Params) { p.Topology = "torus" }, "Topology"},
		{"bad shape", func(p *Params) { p.Shape = "square" }, "Shape"},
		{"negative depth", func(p *Params) { p.Depth = -1 }, "Depth"},
		{"huge depth", func(p *Params) { p.Depth = MaxDepth + 1 }, "Depth"},
		{"zero width", func(p *Params) { p.Topology = "diamond"; p.Width = 0 }, "Width"},
		{"zero period", func(p *Params) { p.BasePeriod = 0 }, "BasePeriod"},
		{"inverted costs", func(p *Params) { p.CostMin = 10 * time.Millisecond; p.CostMax = time.Millisecond }, "CostMin/CostMax"},
		{"zero queue cap", func(p *Params) { p.QueueCapMin = 0 }, "QueueCapMin/QueueCapMax"},
		{"zero window", func(p *Params) { p.WindowMax = 0 }, "WindowMax"},
		{"tiny duration", func(p *Params) { p.Duration = time.Millisecond }, "Duration"},
		{"negative failures", func(p *Params) { p.Failures = -1 }, "Failures"},
	}
	for _, tc := range cases {
		p := base()
		tc.mut(&p)
		_, err := Generate(p)
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: want *ParamError, got %v", tc.name, err)
		}
		if pe.Field != tc.field {
			t.Fatalf("%s: want field %q, got %q (%v)", tc.name, tc.field, pe.Field, pe)
		}
	}
}

func TestShapePeriodsOnGrid(t *testing.T) {
	base := 10 * time.Millisecond
	total := 8 * time.Second
	for _, name := range ShapeNames {
		sh, ok := ShapeByName(name)
		if !ok {
			t.Fatalf("shape %q missing", name)
		}
		for now := time.Duration(0); now < total; now += 37 * time.Millisecond {
			p := sh.Period(base, now, total)
			if p < Grid || p%Grid != 0 {
				t.Fatalf("%s at %v: period %v off the grid", name, now, p)
			}
			if p > time.Second {
				t.Fatalf("%s at %v: period %v implausibly long", name, now, p)
			}
		}
	}
	if _, ok := ShapeByName("nope"); ok {
		t.Fatal("unknown shape resolved")
	}
}
