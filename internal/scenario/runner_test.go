package scenario

import (
	"encoding/json"
	"testing"
	"time"
)

// runCell generates and runs one cell, failing the test on any error.
func runCell(t *testing.T, p Params, cfg RunConfig) *CellMetrics {
	t.Helper()
	spec, err := Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cm, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cm
}

func TestRunChainSteady(t *testing.T) {
	cm := runCell(t, DefaultParams(1719, "chain", "steady"), RunConfig{})
	if cm.Produced == 0 {
		t.Fatal("source produced nothing")
	}
	if cm.Emitted == 0 {
		t.Fatal("sink emitted nothing")
	}
	if cm.Gets == 0 {
		t.Fatal("no consumptions recorded")
	}
	if cm.ThroughputFPS <= 0 {
		t.Fatalf("throughput %v must be positive", cm.ThroughputFPS)
	}
	if cm.MUMeanBytes <= 0 {
		t.Fatalf("MU mean %v must be positive", cm.MUMeanBytes)
	}
	if cm.DropRatio < 0 || cm.DropRatio > 1 {
		t.Fatalf("drop ratio %v out of [0,1]", cm.DropRatio)
	}
	if cm.Restarts != 0 {
		t.Fatalf("no failures injected but %d restarts", cm.Restarts)
	}
}

// TestRunMatrixSmoke drives every (topology, shape) cell briefly: each
// must start, flow items end to end, and stop cleanly.
func TestRunMatrixSmoke(t *testing.T) {
	for _, topo := range TopologyNames {
		for _, shape := range ShapeNames {
			p := DefaultParams(1719, topo, shape)
			p.Duration = 2 * time.Second
			cm := runCell(t, p, RunConfig{})
			if cm.Emitted == 0 {
				t.Fatalf("%s/%s: no outputs", topo, shape)
			}
		}
	}
}

func TestRunBoundedQueueMeasuresPutWaits(t *testing.T) {
	// Tight queues and an overloaded relay: some puts must gate.
	p := DefaultParams(3, "chain", "onoff")
	p.QueueCapMin, p.QueueCapMax = 2, 2
	p.CostMin, p.CostMax = 12*time.Millisecond, 20*time.Millisecond
	cm := runCell(t, p, RunConfig{})
	if cm.PutWaits == 0 {
		t.Fatal("no put-wait samples collected")
	}
	if cm.PutWaitP99Ms < 0 {
		t.Fatalf("negative put-wait p99 %v", cm.PutWaitP99Ms)
	}
}

func TestRunFailureInjection(t *testing.T) {
	p := DefaultParams(11, "chain", "steady")
	p.Failures = 2
	cm := runCell(t, p, RunConfig{})
	if cm.Restarts == 0 {
		t.Fatal("injected failures produced no supervised restarts")
	}
	if cm.Emitted == 0 {
		t.Fatal("pipeline never recovered after injected failures")
	}
}

// TestRunMetricsNeutral asserts the live metrics subsystem is
// behavior-neutral: a cell run with a live registry yields exactly the
// same outcome metrics as the same cell with metrics off. This is the
// deterministic stand-in for "metrics-subsystem overhead per cell":
// the overhead is pure instrument-update cost (pinned per-op in
// EXPERIMENTS.md), never a behavioral drift.
func TestRunMetricsNeutral(t *testing.T) {
	p := DefaultParams(1719, "diamond", "sine")
	p.Duration = 3 * time.Second
	off := runCell(t, p, RunConfig{})
	on := runCell(t, p, RunConfig{Metrics: true})
	if on.MetricsSeries <= 0 {
		t.Fatalf("metrics-on run reports %d series", on.MetricsSeries)
	}
	on.MetricsSeries = off.MetricsSeries // the only field allowed to differ
	a, _ := json.Marshal(off)
	b, _ := json.Marshal(on)
	if string(a) != string(b) {
		t.Fatalf("metrics changed the run outcome:\noff: %s\non:  %s", a, b)
	}
}

// TestRunAIMDNoWorseDropsSpotCheck is the in-package version of the
// matrix-wide differential cmd/scenarios enforces: under the bursty
// shape, the AIMD estimator must not drop more than raw propagation.
func TestRunAIMDNoWorseDropsSpotCheck(t *testing.T) {
	p := DefaultParams(1719, "chain", "onoff")
	raw := runCell(t, p, RunConfig{Estimator: "raw"})
	aimd := runCell(t, p, RunConfig{Estimator: "aimd"})
	if aimd.Drops > raw.Drops {
		t.Fatalf("AIMD dropped more than raw: %d > %d", aimd.Drops, raw.Drops)
	}
}

func TestRunRejectsUnknownEstimator(t *testing.T) {
	spec, err := Generate(DefaultParams(1, "chain", "steady"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunConfig{Estimator: "oracle"}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}
