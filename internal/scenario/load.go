package scenario

import (
	"math"
	"time"
)

// Grid is the scenario time quantum. Every sleep a scenario body takes
// — compute costs, pacing pads, poll intervals, restart backoffs — is a
// whole multiple of Grid, while each stage is offset onto its own
// sub-Grid phase (a few nanoseconds). Together these give the
// determinism contract (DESIGN.md §4i): no two stages ever act at the
// same virtual instant, so a run is a totally ordered event sequence
// and every metric is bit-reproducible from the seed.
const Grid = time.Millisecond

// QuantizeUp rounds d up to the next Grid multiple (minimum one Grid).
func QuantizeUp(d time.Duration) time.Duration {
	if d <= Grid {
		return Grid
	}
	return ((d + Grid - 1) / Grid) * Grid
}

// Shape is a deterministic load profile: a period multiplier over the
// run's normalized progress. The source's offered inter-item period at
// progress f is base·mult(f), quantized onto the Grid. Multipliers
// below 1 mean overload (faster than the base rate), above 1 slack.
type Shape struct {
	Name string
	mult func(frac float64) float64
}

// ShapeNames lists the adversarial load profiles in matrix order.
var ShapeNames = []string{"steady", "sine", "flash", "onoff", "drift"}

// ShapeByName resolves a load shape; ok is false for unknown names.
func ShapeByName(name string) (Shape, bool) {
	switch name {
	case "steady":
		// Constant offered rate: the control-theory baseline.
		return Shape{name, func(float64) float64 { return 1 }}, true
	case "sine":
		// Diurnal sine: offered period swings ±60% over one full cycle,
		// so the run sweeps through overload and slack smoothly.
		return Shape{name, func(f float64) float64 {
			return 1 + 0.6*math.Sin(2*math.Pi*f)
		}}, true
	case "flash":
		// Flash crowd: steady load with a 4x rate spike through the
		// middle 15% of the run — the estimator must absorb the edge
		// without oscillating after it passes.
		return Shape{name, func(f float64) float64 {
			if f >= 0.40 && f < 0.55 {
				return 0.25
			}
			return 1
		}}, true
	case "onoff":
		// Bursty on-off: alternating tenths of the run at 2x rate and
		// quarter rate, a square wave that punishes slow convergence.
		return Shape{name, func(f float64) float64 {
			if int(f*10)%2 == 0 {
				return 0.5
			}
			return 4
		}}, true
	case "drift":
		// Slow drift: the offered period ramps linearly from half the
		// base (overload) to nearly double it, with no step edges at
		// all — trend-following estimators should shine, lag should
		// show up as sustained drops early.
		return Shape{name, func(f float64) float64 {
			return 0.5 + 1.4*f
		}}, true
	}
	return Shape{}, false
}

// Period returns the offered inter-item period at virtual time now in
// a run of the given total length, Grid-quantized so source pacing
// stays on the determinism grid.
func (s Shape) Period(base, now, total time.Duration) time.Duration {
	if total <= 0 {
		return QuantizeUp(base)
	}
	f := float64(now) / float64(total)
	if f < 0 {
		f = 0
	} else if f >= 1 {
		f = math.Nextafter(1, 0)
	}
	return QuantizeUp(time.Duration(float64(base) * s.mult(f)))
}
