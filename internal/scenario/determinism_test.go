package scenario

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// TestDeterministicReruns is the determinism oracle: every generated
// scenario, run twice with the same seed, must produce byte-identical
// metric snapshots. This is the contract the BENCH_scenarios.json pin
// and the whole regression net stand on, so it runs across topologies,
// shapes, estimators, and failure injection — and CI repeats it under
// the race detector (-race -count=2 in the chaos job), where any
// schedule-dependence in the phase-grid runner would surface as a
// diff.
func TestDeterministicReruns(t *testing.T) {
	type cell struct {
		topo, shape, est string
		failures         int
	}
	var cells []cell
	for _, topo := range TopologyNames {
		for _, shape := range []string{"steady", "onoff"} {
			for _, est := range []string{"raw", "aimd"} {
				cells = append(cells, cell{topo, shape, est, 0})
			}
		}
	}
	// Failure injection and the remaining shapes ride on one topology
	// each to keep the oracle fast.
	cells = append(cells,
		cell{"chain", "sine", "aimd", 0},
		cell{"diamond", "flash", "raw", 0},
		cell{"fanout", "drift", "aimd", 0},
		cell{"chain", "steady", "raw", 2},
	)

	for _, c := range cells {
		c := c
		name := fmt.Sprintf("%s/%s/%s/fail%d", c.topo, c.shape, c.est, c.failures)
		t.Run(name, func(t *testing.T) {
			p := DefaultParams(1719, c.topo, c.shape)
			p.Duration = 4 * time.Second
			p.Failures = c.failures
			var snaps [2][]byte
			for i := range snaps {
				spec, err := Generate(p)
				if err != nil {
					t.Fatal(err)
				}
				cm, err := Run(spec, RunConfig{Estimator: c.est})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(cm)
				if err != nil {
					t.Fatal(err)
				}
				snaps[i] = b
			}
			if string(snaps[0]) != string(snaps[1]) {
				t.Fatalf("same seed, different metrics:\nrun1: %s\nrun2: %s", snaps[0], snaps[1])
			}
		})
	}
}

// TestDeterministicDrainReruns extends the oracle to drain mode: a
// graceful Runtime.Drain on the virtual clock must be as
// bit-reproducible as a hard stop — same seed, byte-identical
// drained/shed/clean/duration accounting across reruns. A chain cell
// must additionally drain clean with zero shed: a linear FIFO pipeline
// whose sources quiesce has nothing left to lose, so any shed item is
// a flush bug, not load.
func TestDeterministicDrainReruns(t *testing.T) {
	for _, topo := range TopologyNames {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			p := DefaultParams(1719, topo, "steady")
			p.Duration = 4 * time.Second
			var snaps [2]*CellMetrics
			var raw [2][]byte
			for i := range snaps {
				spec, err := Generate(p)
				if err != nil {
					t.Fatal(err)
				}
				cm, err := Run(spec, RunConfig{Estimator: "aimd", Drain: true})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(cm)
				if err != nil {
					t.Fatal(err)
				}
				snaps[i], raw[i] = cm, b
			}
			if string(raw[0]) != string(raw[1]) {
				t.Fatalf("same seed, different drain metrics:\nrun1: %s\nrun2: %s", raw[0], raw[1])
			}
			cm := snaps[0]
			if !cm.DrainMode {
				t.Fatal("drain cell did not set drain_mode")
			}
			if !cm.DrainClean {
				t.Errorf("drain missed its deadline: %+v", cm)
			}
			if topo == "chain" && cm.DrainShed != 0 {
				t.Errorf("clean chain drain shed %d items, want 0", cm.DrainShed)
			}
		})
	}
}

// TestDeterministicSeedSensitivity is the converse guard: a different
// seed must actually change the measured outcome, or the oracle above
// is vacuously comparing constants.
func TestDeterministicSeedSensitivity(t *testing.T) {
	run := func(seed uint64) []byte {
		p := DefaultParams(seed, "chain", "onoff")
		p.Duration = 3 * time.Second
		spec, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := Run(spec, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(cm)
		return b
	}
	if string(run(1719)) == string(run(1720)) {
		t.Fatal("different seeds produced byte-identical metrics")
	}
}
