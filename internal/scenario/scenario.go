// Package scenario is the repository's workload factory: a seeded
// generator that grows random pipeline DAGs (linear chains, fan-out /
// fan-in diamonds, parameterized depth and width, mixed channel/queue
// backends with valid window and capacity draws), per-stage synthetic
// cost models, and adversarial load shapes — all driven through the
// discrete-event clock so that every (seed, topology, shape) cell is
// bit-reproducible. The runner (runner.go) wires a generated Spec into
// the real Runtime and emits the paper's MU/IGC metrics plus drop
// rate, blocked-put p99, and metrics-subsystem neutrality per cell;
// cmd/scenarios pins the resulting matrix as the regression net every
// later PR is judged against (ROADMAP item 5).
package scenario

import (
	"fmt"
	"time"

	"repro/internal/rand"
)

// Topology names accepted by Generate, in matrix order.
var TopologyNames = []string{"chain", "diamond", "fanout"}

// Params seeds one scenario draw. The zero value is not valid; use
// DefaultParams and override. All durations are quantized onto the
// Grid by Generate, and every derived draw comes from Seed via
// per-stage split streams, so adding a stage never perturbs its
// siblings' draws.
type Params struct {
	// Seed drives every random draw in the scenario.
	Seed uint64
	// Topology is one of TopologyNames.
	Topology string
	// Depth is the relay-stage count per path (chain: stages between
	// source and sink; diamond/fanout: per branch). 0..MaxDepth.
	Depth int
	// Width is the branch count for diamond and fanout (ignored for
	// chain). 1..MaxWidth.
	Width int
	// Shape is one of ShapeNames.
	Shape string
	// BasePeriod is the source's nominal inter-item period before the
	// load shape modulates it.
	BasePeriod time.Duration
	// CostMin/CostMax bound the per-stage compute cost draw.
	CostMin, CostMax time.Duration
	// QueueCapMin/QueueCapMax bound the bounded-queue capacity draw.
	QueueCapMin, QueueCapMax int
	// WindowMax bounds the per-consumer window draw on channel edges
	// (1 = plain latest consumption).
	WindowMax int
	// Duration is the virtual run length.
	Duration time.Duration
	// Failures is the number of stages that panic once mid-run and are
	// restarted under supervision (0 = no failure injection).
	Failures int
}

// Generator guard rails: the fuzz target proves arbitrary Params are
// either rejected with a *ParamError or produce a runnable DAG, so the
// bounds here are load-bearing, not cosmetic.
const (
	MaxDepth    = 8
	MaxWidth    = 8
	MaxQueueCap = 1 << 16
	MaxWindow   = 16
	MinDuration = 200 * time.Millisecond
	MaxDuration = 10 * time.Minute
)

// DefaultParams returns the canonical cell parameters used by the
// pinned matrix: a mildly overloaded pipeline whose relays are
// sometimes slower than the offered rate, so every load shape
// produces a distinct drop/footprint signature.
func DefaultParams(seed uint64, topology, shape string) Params {
	return Params{
		Seed:        seed,
		Topology:    topology,
		Depth:       2,
		Width:       3,
		Shape:       shape,
		BasePeriod:  10 * time.Millisecond,
		CostMin:     2 * time.Millisecond,
		CostMax:     14 * time.Millisecond,
		QueueCapMin: 2,
		QueueCapMax: 8,
		WindowMax:   3,
		Duration:    8 * time.Second,
		Failures:    0,
	}
}

// ParamError is the typed rejection for invalid generator parameters:
// the fuzz contract is "valid DAG or *ParamError, never a panic".
type ParamError struct {
	Field  string
	Value  any
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("scenario: invalid %s (%v): %s", e.Field, e.Value, e.Reason)
}

// StageSpec is one generated thread.
type StageSpec struct {
	Name string
	// Index is the stage's position in spec order; it doubles as the
	// stage's phase offset on the determinism grid (Index+1 ns).
	Index int
	// Kind is "source", "relay", "join", or "sink".
	Kind string
	// Cost is the per-item compute time (Grid-quantized).
	Cost time.Duration
	// ItemBytes is the logical size of items this stage produces
	// (sources and relays; 0 for sinks).
	ItemBytes int64
	// Inputs/Outputs are buffer indices into Spec.Buffers.
	Inputs, Outputs []int
	// Window is the consumer window applied to channel-backed inputs
	// (≥ 2 exercises windowed retention; 1 or 0 = plain latest).
	Window int
	// FailAt, when > 0, makes the stage panic once at that local
	// iteration; the runner arms supervised restart for it.
	FailAt int64
}

// BufferSpec is one generated edge buffer.
type BufferSpec struct {
	Name string
	// Index is the buffer's position in spec order.
	Index int
	// Backend is "channel" (unbounded, latest-discipline) or "queue"
	// (bounded FIFO; power-of-two capacities are ring-eligible and
	// auto-upgrade under a real clock). Hand-built specs may also use
	// "remote" (a wire-backed edge; Generate never draws it because it
	// needs a live server and a real clock).
	Backend string
	// Capacity is the queue bound (0 for channels: unbounded, the
	// paper's Stampede default — ARU is what keeps them finite).
	Capacity int
	// Addr is the server address for "remote" edges.
	Addr string
	// Producers/Consumers are stage indices.
	Producers, Consumers []int
}

// Spec is a fully drawn scenario: a DAG of stages and buffers plus the
// resolved load shape. Build/Run (runner.go) wire it into a Runtime.
type Spec struct {
	Params  Params
	Shape   Shape
	Stages  []StageSpec
	Buffers []BufferSpec
}

// Generate draws a scenario from params. It returns *ParamError for
// out-of-range parameters and never panics; any returned Spec wires
// into a Runtime whose Start succeeds (the fuzz target enforces both).
func Generate(p Params) (*Spec, error) {
	shape, ok := ShapeByName(p.Shape)
	if !ok {
		return nil, &ParamError{"Shape", p.Shape, "unknown load shape"}
	}
	switch p.Topology {
	case "chain", "diamond", "fanout":
	default:
		return nil, &ParamError{"Topology", p.Topology, "unknown topology"}
	}
	if p.Depth < 0 || p.Depth > MaxDepth {
		return nil, &ParamError{"Depth", p.Depth, fmt.Sprintf("must be in [0,%d]", MaxDepth)}
	}
	if p.Topology != "chain" && (p.Width < 1 || p.Width > MaxWidth) {
		return nil, &ParamError{"Width", p.Width, fmt.Sprintf("must be in [1,%d]", MaxWidth)}
	}
	if p.BasePeriod <= 0 || p.BasePeriod > time.Second {
		return nil, &ParamError{"BasePeriod", p.BasePeriod, "must be in (0, 1s]"}
	}
	if p.CostMin <= 0 || p.CostMax < p.CostMin || p.CostMax > 100*time.Millisecond {
		return nil, &ParamError{"CostMin/CostMax", fmt.Sprintf("%v/%v", p.CostMin, p.CostMax), "need 0 < min ≤ max ≤ 100ms"}
	}
	if p.QueueCapMin < 1 || p.QueueCapMax < p.QueueCapMin || p.QueueCapMax > MaxQueueCap {
		return nil, &ParamError{"QueueCapMin/QueueCapMax", fmt.Sprintf("%d/%d", p.QueueCapMin, p.QueueCapMax), fmt.Sprintf("need 1 ≤ min ≤ max ≤ %d", MaxQueueCap)}
	}
	if p.WindowMax < 1 || p.WindowMax > MaxWindow {
		return nil, &ParamError{"WindowMax", p.WindowMax, fmt.Sprintf("must be in [1,%d]", MaxWindow)}
	}
	if p.Duration < MinDuration || p.Duration > MaxDuration {
		return nil, &ParamError{"Duration", p.Duration, fmt.Sprintf("must be in [%v,%v]", MinDuration, MaxDuration)}
	}
	if p.Failures < 0 {
		return nil, &ParamError{"Failures", p.Failures, "must be ≥ 0"}
	}

	p.BasePeriod = QuantizeUp(p.BasePeriod)
	p.CostMin, p.CostMax = QuantizeUp(p.CostMin), QuantizeUp(p.CostMax)
	p.Duration = QuantizeUp(p.Duration)

	g := &builder{p: p}
	switch p.Topology {
	case "chain":
		g.chain()
	case "diamond":
		g.diamond()
	case "fanout":
		g.fanout()
	}
	g.drawFailures()
	return &Spec{Params: p, Shape: shape, Stages: g.stages, Buffers: g.buffers}, nil
}

// builder accumulates the drawn DAG. Every stage and buffer draws from
// its own split stream of the master seed (streams are keyed by spec
// index), so the grammar can grow without reshuffling existing draws.
type builder struct {
	p       Params
	stages  []StageSpec
	buffers []BufferSpec
}

// stream returns draw stream k of the scenario seed.
func (b *builder) stream(k uint64) *rand.Rand {
	return rand.New(rand.Split(b.p.Seed, k))
}

// addStage appends a stage with its cost and size draws taken from the
// stage's own stream.
func (b *builder) addStage(kind string) int {
	i := len(b.stages)
	r := b.stream(uint64(i))
	cost := QuantizeUp(r.Duration(b.p.CostMin, b.p.CostMax+1))
	if kind == "source" {
		// Sources pay a light acquisition cost; the offered rate comes
		// from the load shape, not the compute draw.
		cost = QuantizeUp(b.p.CostMin)
	}
	st := StageSpec{
		Name:      fmt.Sprintf("%s%d", kind, i),
		Index:     i,
		Kind:      kind,
		Cost:      cost,
		ItemBytes: 1024 + r.Int63n(15*1024),
		Window:    1 + r.Intn(b.p.WindowMax),
	}
	if kind == "sink" {
		st.ItemBytes = 0
	}
	b.stages = append(b.stages, st)
	return i
}

// addBuffer appends a buffer whose backend and capacity draws come
// from its own stream (offset so stage draws are untouched).
func (b *builder) addBuffer() int {
	i := len(b.buffers)
	r := b.stream(1<<32 + uint64(i))
	bs := BufferSpec{Name: fmt.Sprintf("buf%d", i), Index: i}
	if r.Intn(2) == 0 {
		bs.Backend = "channel" // unbounded, latest-discipline
	} else {
		bs.Backend = "queue"
		bs.Capacity = b.p.QueueCapMin + r.Intn(b.p.QueueCapMax-b.p.QueueCapMin+1)
		if r.Intn(2) == 0 {
			// Round half the queues up to a power of two: exactly the
			// shape that auto-upgrades to the lock-free ring backend
			// when run under a real clock with a single consumer.
			bs.Capacity = nextPow2(bs.Capacity)
		}
	}
	b.buffers = append(b.buffers, bs)
	return i
}

// connect wires stage s → buffer b → stage d.
func (b *builder) connect(s, buf, d int) {
	b.stages[s].Outputs = append(b.stages[s].Outputs, buf)
	b.stages[d].Inputs = append(b.stages[d].Inputs, buf)
	b.buffers[buf].Producers = append(b.buffers[buf].Producers, s)
	b.buffers[buf].Consumers = append(b.buffers[buf].Consumers, d)
}

// chain draws source → relay^Depth → sink.
func (b *builder) chain() {
	prev := b.addStage("source")
	for i := 0; i < b.p.Depth; i++ {
		buf := b.addBuffer()
		cur := b.addStage("relay")
		b.connect(prev, buf, cur)
		prev = cur
	}
	buf := b.addBuffer()
	sink := b.addStage("sink")
	b.connect(prev, buf, sink)
}

// diamond draws source → fanoutBuf → Width relay branches (each Depth
// deep) → join → sink: fan-out at a shared buffer, fan-in at a thread.
func (b *builder) diamond() {
	src := b.addStage("source")
	fan := b.addBuffer()
	b.stages[src].Outputs = append(b.stages[src].Outputs, fan)
	b.buffers[fan].Producers = append(b.buffers[fan].Producers, src)

	branchEnds := make([]int, 0, b.p.Width)
	for w := 0; w < b.p.Width; w++ {
		prev := -1
		for d := 0; d <= b.p.Depth; d++ {
			cur := b.addStage("relay")
			if d == 0 {
				b.stages[cur].Inputs = append(b.stages[cur].Inputs, fan)
				b.buffers[fan].Consumers = append(b.buffers[fan].Consumers, cur)
			} else {
				buf := b.addBuffer()
				b.connect(prev, buf, cur)
			}
			prev = cur
		}
		end := b.addBuffer()
		b.stages[prev].Outputs = append(b.stages[prev].Outputs, end)
		b.buffers[end].Producers = append(b.buffers[end].Producers, prev)
		branchEnds = append(branchEnds, end)
	}
	join := b.addStage("join")
	for _, end := range branchEnds {
		b.stages[join].Inputs = append(b.stages[join].Inputs, end)
		b.buffers[end].Consumers = append(b.buffers[end].Consumers, join)
	}
	out := b.addBuffer()
	sink := b.addStage("sink")
	b.connect(join, out, sink)
}

// fanout draws source → fanoutBuf → Width independent branches, each
// Depth relays deep and ending in its own sink (a multi-sink DAG).
func (b *builder) fanout() {
	src := b.addStage("source")
	fan := b.addBuffer()
	b.stages[src].Outputs = append(b.stages[src].Outputs, fan)
	b.buffers[fan].Producers = append(b.buffers[fan].Producers, src)
	for w := 0; w < b.p.Width; w++ {
		prev := -1
		for d := 0; d < b.p.Depth; d++ {
			cur := b.addStage("relay")
			if d == 0 {
				b.stages[cur].Inputs = append(b.stages[cur].Inputs, fan)
				b.buffers[fan].Consumers = append(b.buffers[fan].Consumers, cur)
			} else {
				buf := b.addBuffer()
				b.connect(prev, buf, cur)
			}
			prev = cur
		}
		sink := b.addStage("sink")
		if prev < 0 {
			// Depth 0: the sink consumes the fan buffer directly.
			b.stages[sink].Inputs = append(b.stages[sink].Inputs, fan)
			b.buffers[fan].Consumers = append(b.buffers[fan].Consumers, sink)
		} else {
			buf := b.addBuffer()
			b.connect(prev, buf, sink)
		}
	}
}

// drawFailures marks Failures distinct non-source stages to panic once
// at a drawn early iteration.
func (b *builder) drawFailures() {
	if b.p.Failures <= 0 {
		return
	}
	r := b.stream(1 << 48)
	candidates := make([]int, 0, len(b.stages))
	for i, st := range b.stages {
		if st.Kind != "source" {
			candidates = append(candidates, i)
		}
	}
	n := b.p.Failures
	if n > len(candidates) {
		n = len(candidates)
	}
	for k := 0; k < n; k++ {
		// Draw without replacement.
		j := k + r.Intn(len(candidates)-k)
		candidates[k], candidates[j] = candidates[j], candidates[k]
		b.stages[candidates[k]].FailAt = int64(5 + r.Intn(20))
	}
}

// nextPow2 rounds n up to a power of two (min 2), capped at
// MaxQueueCap so drawn capacities stay in the validated range.
func nextPow2(n int) int {
	p := 2
	for p < n && p < MaxQueueCap {
		p <<= 1
	}
	return p
}
