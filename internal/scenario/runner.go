package scenario

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	rt "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vt"
)

// RunConfig selects how a generated Spec is executed.
type RunConfig struct {
	// Estimator is "raw" (default: raw summary-STP propagation) or
	// "aimd" (the PR-7 filtered AIMD pipeline).
	Estimator string
	// Metrics attaches a live metrics registry (sampler disabled, so
	// instrument updates are the only metrics-subsystem activity); the
	// cell then reports the registry's series count and lets callers
	// diff metrics-on vs metrics-off outcomes for neutrality.
	Metrics bool
	// Warmup is excluded from the analysis window (default Duration/8).
	Warmup time.Duration
	// Clock overrides the run's clock (default: a fresh discrete-event
	// clock.Virtual). Cells pinned in BENCH_scenarios.json always use
	// the default; a real clock is for smoke runs that need
	// wall-clock-only machinery (ring auto-upgrade, remote edges) and
	// gives up bit-reproducibility.
	Clock clock.Clock
	// Drain ends the run with a graceful Runtime.Drain at 3/4 of the
	// cell duration instead of running to the stop deadline: sources
	// quiesce, relays and sinks flush the backlog, and the cell reports
	// the drain accounting (drained/shed/clean). On the virtual clock a
	// drain is bit-reproducible like everything else, which is exactly
	// what the pinned drain cells assert.
	Drain bool
	// Elastic installs the elastic scheduler (internal/sched) over the
	// cell's relay stages: the control loop elects the bottleneck relay
	// each tick and replicates it behind its inbound buffer. On the
	// virtual clock the scale schedule is bit-reproducible like
	// everything else, so elastic cells pin the scheduler's end-to-end
	// behavior per topology.
	Elastic bool
}

// CellMetrics is one cell of the scenario matrix: the paper's MU/IGC
// numbers plus the operational signals (drops, blocked-put p99,
// supervision restarts, metrics footprint) for one deterministic run.
// Two runs of the same (seed, topology, shape, estimator) cell must
// marshal to byte-identical JSON — the determinism oracle test and the
// BENCH_scenarios.json pin both lean on that.
//
// PeakBytes is deliberately absent: footprint peaks depend on the
// ordering of equal-instant alloc/free deltas, which is the one
// analysis output that is not tie-order invariant. Every field below
// is either an event count or an integral/quantile over a totally
// ordered event sequence.
type CellMetrics struct {
	Topology  string `json:"topology"`
	Shape     string `json:"shape"`
	Seed      uint64 `json:"seed"`
	Estimator string `json:"estimator"`
	Failures  int    `json:"failures"`
	Stages    int    `json:"stages"`
	Buffers   int    `json:"buffers"`

	Produced int64 `json:"produced"` // source puts over the whole run
	Gets     int   `json:"gets"`     // in-window item consumptions
	Emitted  int   `json:"emitted"`  // in-window sink outputs
	Drops    int   `json:"drops"`    // in-window latest-discipline skips

	DropRatio     float64 `json:"drop_ratio"`
	MUMeanBytes   float64 `json:"mu_mean_bytes"`
	MUStdBytes    float64 `json:"mu_std_bytes"`
	IGCMeanBytes  float64 `json:"igc_mean_bytes"`
	WastedMemPct  float64 `json:"wasted_mem_pct"`
	WastedCompPct float64 `json:"wasted_comp_pct"`
	ThroughputFPS float64 `json:"throughput_fps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	JitterMs      float64 `json:"jitter_ms"`

	ItemsTotal      int `json:"items_total"`
	ItemsSuccessful int `json:"items_successful"`
	ItemsWasted     int `json:"items_wasted"`

	PutWaits     int     `json:"put_waits"`       // bounded-buffer puts measured
	PutWaitP99Ms float64 `json:"put_wait_p99_ms"` // blocked-put p99 (occupancy-gated wait)

	Restarts      int `json:"restarts"`       // supervised restarts consumed
	MetricsSeries int `json:"metrics_series"` // live registry series (0 when metrics off)

	// Drain-mode accounting (RunConfig.Drain only; omitted — and zero —
	// for ordinary cells, so the pinned matrix's historical cells keep
	// byte-identical JSON).
	DrainMode    bool    `json:"drain_mode,omitempty"`    // cell ran under RunConfig.Drain
	DrainedItems int64   `json:"drained_items,omitempty"` // items flushed downstream after seal
	DrainShed    int64   `json:"drain_shed,omitempty"`    // items explicitly shed at settle
	DrainClean   bool    `json:"drain_clean,omitempty"`   // deadline not hit
	DrainMs      float64 `json:"drain_ms,omitempty"`      // drain duration (virtual time)

	// Elastic-mode accounting (RunConfig.Elastic only; omitted — and
	// zero — for ordinary cells for the same pin-stability reason).
	ElasticMode        bool  `json:"elastic_mode,omitempty"`         // cell ran under RunConfig.Elastic
	ElasticScaleUps    int64 `json:"elastic_scale_ups,omitempty"`    // replica spawns across all relays
	ElasticScaleDowns  int64 `json:"elastic_scale_downs,omitempty"`  // drain-safe retirements
	ElasticReplicasEnd int   `json:"elastic_replicas_end,omitempty"` // live replicas at the final tick
}

// errDeadline makes a stage body exit cleanly when its per-stage
// deadline passes while it is gated on a full buffer.
var errDeadline = errors.New("scenario: stage deadline reached")

// runner holds the shared execution state for one cell.
type runner struct {
	spec     *Spec
	clk      clock.Clock
	rt       *rt.Runtime
	bufRefs  []*rt.BufferRef
	stages   []*stageRun
	total    time.Duration
	deadline time.Duration // base stage deadline (phase is added per stage)
}

// stageRun is one stage's mutable run state. It survives supervised
// restarts (the body closure captures it), which is what keeps the
// injected-failure schedule and the phase discipline stable across a
// panic: the initial phase offset runs exactly once per run, and the
// iteration counter keeps counting so a FailAt panic fires once.
//
// Under RunConfig.Elastic the same closure also runs in scheduler-
// spawned replica incarnations concurrently with the primary, so the
// counters are atomic and the wait samples are mutex-guarded. The
// atomics cost nothing behaviorally in the single-threaded cells (the
// historical pins stay byte-identical), and the quantile over
// putWaitNs sorts its input, so replica-interleaved append order
// cannot move a pinned number.
type stageRun struct {
	r      *runner
	spec   *StageSpec
	thread *rt.Thread
	phase  time.Duration
	phased atomic.Bool
	iter   atomic.Int64
	prod   atomic.Int64

	mu        sync.Mutex      // guards outBufs resolution and putWaitNs
	outBufs   []buffer.Buffer // lazily resolved (post-Start)
	outCaps   []int
	putWaitNs []float64
}

func (s *stageRun) now() time.Duration { return s.r.clk.Now() }

// deadline is the stage's private exit instant: the shared base plus
// the stage phase, so the comparison instants stay on the stage's own
// grid residue and every stage exits before the runner's stop wakes.
func (s *stageRun) stageDeadline() time.Duration { return s.r.deadline + s.phase }

// enter runs once per body invocation: the first invocation sleeps the
// stage onto its unique sub-grid phase; restarts (and elastic replica
// incarnations, which join an already-phased stage) resume already
// phased (the restart backoff schedule is a whole number of grid
// quanta, so the residue survives the panic).
func (s *stageRun) enter(ctx *rt.Ctx) {
	if s.phased.CompareAndSwap(false, true) {
		ctx.Idle(s.phase)
	}
}

// checkFail fires the injected failure exactly once, at the drawn
// local iteration (iter is the caller's freshly incremented count).
func (s *stageRun) checkFail(iter int64) {
	if s.spec.FailAt > 0 && iter == s.spec.FailAt {
		panic(fmt.Sprintf("scenario: injected failure in %s at iteration %d", s.spec.Name, iter))
	}
}

// put produces one item, gating on occupancy for bounded buffers so
// the runtime-level Put never blocks (a block would hand wakeup order
// to the scheduler; the gate keeps the wait on the stage's own grid
// and measures it as the blocked-put sample).
func (s *stageRun) put(ctx *rt.Ctx, outIdx int, p *rt.OutPort, ts vt.Timestamp, size int64) error {
	wait := time.Duration(0)
	if cap := s.outCaps[outIdx]; cap > 0 {
		b := s.outBuf(outIdx)
		start := s.now()
		for {
			items, _ := b.Occupancy()
			if items < cap {
				break
			}
			if s.now() >= s.stageDeadline() {
				return errDeadline
			}
			ctx.Idle(Grid)
		}
		wait = s.now() - start
	}
	s.mu.Lock()
	s.putWaitNs = append(s.putWaitNs, float64(wait))
	s.mu.Unlock()
	err := ctx.Put(p, ts, nil, size)
	if errors.Is(err, rt.ErrReattached) {
		// Informational: the wire dropped mid-put and the item was
		// replayed through a fresh session (remote edges under chaos).
		err = nil
	}
	return err
}

// outBuf resolves the outIdx-th output buffer on first use (the ring
// handle only exists post-Start); the lock makes the resolution safe
// when replica incarnations race to the first put.
func (s *stageRun) outBuf(outIdx int) buffer.Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.outBufs[outIdx] == nil {
		s.outBufs[outIdx] = s.r.rt.Buffer(s.r.bufRefs[s.spec.Outputs[outIdx]])
	}
	return s.outBufs[outIdx]
}

// tryGet polls an input without blocking, folding the remote layer's
// informational reattach into "nothing this wake".
func tryGet(ctx *rt.Ctx, in *rt.InPort) (rt.Msg, bool, error) {
	msg, ok, err := ctx.TryGetLatest(in)
	if errors.Is(err, rt.ErrReattached) {
		return rt.Msg{}, false, nil
	}
	return msg, ok, err
}

// bodyErr maps clean-shutdown and deadline exits to nil; anything else
// is a real failure and goes to the supervisor.
func bodyErr(err error) error {
	if err == nil || errors.Is(err, rt.ErrShutdown) || errors.Is(err, errDeadline) {
		return nil
	}
	return err
}

// sourceBody offers load on the cell's shape: compute the acquisition
// cost, put, then pad the iteration to max(shape period, controller
// target) before Sync — the pad is what makes ARU throttling happen at
// a grid instant instead of inside Throttle.Pace, keeping the run
// totally ordered while exercising the real control loop.
func (s *stageRun) sourceBody(ctx *rt.Ctx) error {
	s.enter(ctx)
	out := ctx.Outs()[0]
	base := s.r.spec.Params.BasePeriod
	for !ctx.Stopped() {
		start := s.now()
		if start >= s.stageDeadline() {
			return nil
		}
		n := s.iter.Add(1)
		s.checkFail(n)
		ctx.Compute(s.spec.Cost)
		if err := s.put(ctx, 0, out, vt.Timestamp(n), s.spec.ItemBytes); err != nil {
			return bodyErr(err)
		}
		s.prod.Add(1)
		span := s.r.spec.Shape.Period(base, start, s.r.total)
		if t := s.r.rt.Controller().TargetPeriod(s.thread.ID()); t.Known() {
			if q := QuantizeUp(t.Duration()); q > span {
				span = q
			}
		}
		wake := start + span
		if dl := s.stageDeadline(); wake > dl {
			wake = dl
		}
		if now := s.now(); wake > now {
			ctx.Idle(wake - now)
		}
		ctx.Sync()
	}
	return nil
}

// relayBody polls its input (TryGet keeps the stage unblocked and on
// its grid residue), pays the compute cost, and forwards.
func (s *stageRun) relayBody(ctx *rt.Ctx) error {
	s.enter(ctx)
	in, out := ctx.Ins()[0], ctx.Outs()[0]
	for !ctx.Stopped() {
		if s.now() >= s.stageDeadline() {
			return nil
		}
		msg, ok, err := tryGet(ctx, in)
		if err != nil {
			return bodyErr(err)
		}
		if !ok {
			ctx.Idle(Grid)
			continue
		}
		n := s.iter.Add(1)
		s.checkFail(n)
		ctx.Compute(s.spec.Cost)
		if err := s.put(ctx, 0, out, msg.TS, s.spec.ItemBytes); err != nil {
			return bodyErr(err)
		}
		ctx.Sync()
	}
	return nil
}

// joinBody drains at most one item per input per wake and emits one
// joined item. The output carries the join's own monotonic timestamp:
// sibling branches legally deliver the same upstream timestamp (a
// channel fan-out broadcasts), so forwarding the max would collide on
// the output buffer's unique-timestamp rule.
func (s *stageRun) joinBody(ctx *rt.Ctx) error {
	s.enter(ctx)
	ins, out := ctx.Ins(), ctx.Outs()[0]
	for !ctx.Stopped() {
		if s.now() >= s.stageDeadline() {
			return nil
		}
		got := 0
		for _, in := range ins {
			if _, ok, err := tryGet(ctx, in); err != nil {
				return bodyErr(err)
			} else if ok {
				got++
			}
		}
		if got == 0 {
			ctx.Idle(Grid)
			continue
		}
		n := s.iter.Add(1)
		s.checkFail(n)
		ctx.Compute(s.spec.Cost)
		if err := s.put(ctx, 0, out, vt.Timestamp(n), s.spec.ItemBytes); err != nil {
			return bodyErr(err)
		}
		ctx.Sync()
	}
	return nil
}

// sinkBody consumes, pays the display cost, and emits the pipeline
// output (the trace's latency/throughput anchor).
func (s *stageRun) sinkBody(ctx *rt.Ctx) error {
	s.enter(ctx)
	in := ctx.Ins()[0]
	for !ctx.Stopped() {
		if s.now() >= s.stageDeadline() {
			return nil
		}
		_, ok, err := tryGet(ctx, in)
		if err != nil {
			return bodyErr(err)
		}
		if !ok {
			ctx.Idle(Grid)
			continue
		}
		n := s.iter.Add(1)
		s.checkFail(n)
		ctx.Compute(s.spec.Cost)
		ctx.Emit()
		ctx.Sync()
	}
	return nil
}

// failurePolicy is the deterministic supervision schedule for injected
// panics: grid-multiple backoff delays (Jitter −1 disables the jitter
// term), so a restarted stage resumes on its own phase residue.
func failurePolicy() rt.RestartPolicy {
	return rt.RestartPolicy{
		Backoff:     backoff.Backoff{Base: 4 * Grid, Cap: 16 * Grid, Factor: 2, Jitter: -1},
		MaxRestarts: 3,
		Seed:        1,
	}
}

// baseDeadline is the shared stage-exit deadline for a cell: stages
// (and the elastic scheduler's tick horizon) stop strictly before the
// runner's stop instant so the shutdown sequence never races stage
// wakeups. The margin covers the largest compute draw plus gate polls
// and restart backoffs.
func baseDeadline(spec *Spec) time.Duration {
	d := spec.Params.Duration - (QuantizeUp(spec.Params.CostMax) + 32*Grid)
	if d < Grid {
		d = Grid
	}
	return d
}

// build declares the spec's buffers and threads into a fresh runtime.
func build(spec *Spec, opts rt.Options) (*runner, error) {
	r := &runner{
		spec:  spec,
		clk:   opts.Clock,
		total: spec.Params.Duration,
	}
	r.deadline = baseDeadline(spec)
	r.rt = rt.New(opts)

	r.bufRefs = make([]*rt.BufferRef, len(spec.Buffers))
	for i := range spec.Buffers {
		b := &spec.Buffers[i]
		switch b.Backend {
		case "channel":
			ref, err := r.rt.AddChannel(b.Name, 0)
			if err != nil {
				return nil, err
			}
			r.bufRefs[i] = ref
		case "queue":
			ref, err := r.rt.AddQueue(b.Name, 0, rt.WithQueueCapacity(b.Capacity))
			if err != nil {
				return nil, err
			}
			r.bufRefs[i] = ref
		case "remote":
			// Wire-backed edge: requires a real clock and a live server
			// (chaos composition, never part of the pinned matrix).
			ref, err := r.rt.AddRemoteChannel(b.Name, 0, b.Addr)
			if err != nil {
				return nil, err
			}
			r.bufRefs[i] = ref
		default:
			return nil, fmt.Errorf("scenario: buffer %q has unknown backend %q", b.Name, b.Backend)
		}
	}

	r.stages = make([]*stageRun, len(spec.Stages))
	for i := range spec.Stages {
		st := &spec.Stages[i]
		s := &stageRun{
			r:       r,
			spec:    st,
			phase:   time.Duration(st.Index + 1), // unique sub-grid residue
			outBufs: make([]buffer.Buffer, len(st.Outputs)),
			outCaps: make([]int, len(st.Outputs)),
		}
		for k, bi := range st.Outputs {
			s.outCaps[k] = spec.Buffers[bi].Capacity
		}
		var body rt.Body
		switch st.Kind {
		case "source":
			body = s.sourceBody
		case "relay":
			body = s.relayBody
		case "join":
			body = s.joinBody
		case "sink":
			body = s.sinkBody
		default:
			return nil, fmt.Errorf("scenario: stage %q has unknown kind %q", st.Name, st.Kind)
		}
		var topts []rt.ThreadOption
		if st.FailAt > 0 {
			topts = append(topts, rt.WithRestartOnFailure(failurePolicy()))
		}
		th, err := r.rt.AddThread(st.Name, 0, body, topts...)
		if err != nil {
			return nil, err
		}
		s.thread = th
		for _, bi := range st.Inputs {
			ref := r.bufRefs[bi]
			if spec.Buffers[bi].Backend == "channel" && st.Window > 1 {
				if _, err := th.InputWindow(ref, st.Window); err != nil {
					return nil, err
				}
			} else if _, err := th.Input(ref); err != nil {
				return nil, err
			}
		}
		for _, bi := range st.Outputs {
			if _, err := th.Output(r.bufRefs[bi]); err != nil {
				return nil, err
			}
		}
		r.stages[i] = s
	}
	return r, nil
}

// scenarioAIMD tunes the AIMD estimator for the scenario matrix. The
// default ±10% hysteresis band lets the damped target hold up to 10%
// below the demand estimate indefinitely; with the simulator's exact
// feedback (the summary-STP IS the bottleneck's demanded period, not a
// noisy congestion inference) that band is pure over-production — the
// source outruns the signalled demand and every extra item becomes a
// latest-discipline drop, visibly so on fan-out topologies. A tight
// band and a window matched to the load shapes keeps the damped target
// tracking the signal, which is the regime under which the matrix-wide
// "AIMD no worse on drops than raw" differential is asserted.
func scenarioAIMD() core.AIMDConfig {
	cfg := core.DefaultAIMDConfig()
	cfg.Margin = 0.02
	cfg.Window = time.Second
	return cfg
}

// elasticSchedConfig derives the scheduler configuration for an
// elastic cell from the generated spec: supervise every relay stage
// (sources and sinks stay fixed — replicating a source would change
// the offered load, and the sink anchors the output order) and defend
// a period of half the cost ceiling, so any relay whose drawn cost
// lands in the upper half of the range genuinely violates the target
// while it has work. Everything else keeps the scheduler defaults; on
// the discrete-event clock the resulting scale schedule is exactly as
// reproducible as the rest of the cell, which is what the pinned
// elastic cells assert.
func elasticSchedConfig(spec *Spec) sched.Config {
	var relays []string
	for i := range spec.Stages {
		if spec.Stages[i].Kind == "relay" {
			relays = append(relays, spec.Stages[i].Name)
		}
	}
	return sched.Config{
		TargetPeriod: QuantizeUp(spec.Params.CostMax / 2),
		Stages:       relays,
		// Ticks stop at the stage-exit deadline: a control tick landing
		// exactly on the stop instant would tie with the shutdown on the
		// virtual clock, and the loser of that tie is the one
		// scheduler-dependent outcome in an otherwise totally ordered
		// run. Inside the deadline every tick instant is unique.
		Horizon: baseDeadline(spec),
	}
}

// Run executes one cell: wire the spec into a real Runtime on a fresh
// discrete-event clock, run it to completion, and reduce the trace to
// CellMetrics. Same spec + same config → byte-identical metrics.
func Run(spec *Spec, cfg RunConfig) (*CellMetrics, error) {
	est := cfg.Estimator
	if est == "" {
		est = "raw"
	}
	policy := core.PolicyMin()
	switch est {
	case "raw":
	case "aimd":
		policy = policy.WithEstimator(core.AIMDFactory(scenarioAIMD()))
	default:
		return nil, fmt.Errorf("scenario: unknown estimator %q", est)
	}

	var reg *metrics.Registry
	if cfg.Metrics || cfg.Elastic {
		// Elastic cells need the registry even when Metrics is off: the
		// scheduler's counters are how the cell reports its scale events.
		reg = metrics.NewRegistry()
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewVirtual()
	}
	rec := trace.NewRecorder()
	opts := rt.Options{
		Clock:       clk,
		Recorder:    rec,
		ARU:         policy,
		Metrics:     reg,
		SampleEvery: -1, // no background sampler: nothing off-grid runs
	}
	if cfg.Elastic {
		opts.ControlLoops = append(opts.ControlLoops, sched.Loop(elasticSchedConfig(spec)))
	}
	r, err := build(spec, opts)
	if err != nil {
		return nil, err
	}
	var drainRep rt.DrainReport
	if cfg.Drain {
		// Run 3/4 of the cell, then drain gracefully: sources quiesce
		// and the live relays/sinks flush the backlog (their own stage
		// deadlines lie beyond the drain instant). The drain deadline is
		// the full cell duration — generous, so a correct flush is
		// always Clean and a non-clean drain is a regression.
		if err := r.rt.Start(); err != nil {
			return nil, err
		}
		drainAt := QuantizeUp(3 * r.total / 4)
		if reg, ok := clk.(clock.Registrar); ok {
			reg.Add(1)
			clk.Sleep(drainAt)
			reg.Add(-1)
		} else {
			clk.Sleep(drainAt)
		}
		drainRep = r.rt.Drain(r.total)
		if err := r.rt.Wait(); err != nil {
			return nil, err
		}
	} else if err := r.rt.RunFor(r.total); err != nil {
		return nil, err
	}

	warmup := cfg.Warmup
	if warmup <= 0 {
		warmup = QuantizeUp(r.total / 8)
	}
	if warmup >= r.deadline {
		warmup = 0
	}
	a, err := trace.Analyze(rec, trace.AnalyzeOptions{From: warmup, To: r.total})
	if err != nil {
		return nil, err
	}

	cm := &CellMetrics{
		Topology:        spec.Params.Topology,
		Shape:           spec.Params.Shape,
		Seed:            spec.Params.Seed,
		Estimator:       est,
		Failures:        spec.Params.Failures,
		Stages:          len(spec.Stages),
		Buffers:         len(spec.Buffers),
		Gets:            a.Gets,
		Emitted:         a.Outputs,
		Drops:           a.Skips,
		MUMeanBytes:     a.All.MeanBytes,
		MUStdBytes:      a.All.StdBytes,
		IGCMeanBytes:    a.IGC.MeanBytes,
		WastedMemPct:    a.WastedMemPct,
		WastedCompPct:   a.WastedCompPct,
		ThroughputFPS:   a.ThroughputFPS,
		LatencyP50Ms:    ms(a.LatencyP50),
		LatencyP95Ms:    ms(a.LatencyP95),
		LatencyP99Ms:    ms(a.LatencyP99),
		JitterMs:        ms(a.Jitter),
		ItemsTotal:      a.ItemsTotal,
		ItemsSuccessful: a.ItemsSuccessful,
		ItemsWasted:     a.ItemsWasted,
	}
	if a.Gets+a.Skips > 0 {
		cm.DropRatio = float64(a.Skips) / float64(a.Gets+a.Skips)
	}
	var waits []float64
	for _, s := range r.stages {
		cm.Produced += s.prod.Load()
		waits = append(waits, s.putWaitNs...)
	}
	cm.PutWaits = len(waits)
	if len(waits) > 0 {
		cm.PutWaitP99Ms = stats.Quantile(waits, 0.99) / float64(time.Millisecond)
	}
	for _, th := range r.rt.Health().Threads {
		cm.Restarts += th.Restarts
	}
	if cfg.Metrics {
		cm.MetricsSeries = registrySeries(reg)
	}
	if cfg.Elastic {
		cm.ElasticMode = true
		for _, s := range r.stages {
			if s.spec.Kind != "relay" {
				continue
			}
			ls := metrics.Labels{"stage": s.spec.Name}
			cm.ElasticScaleUps += reg.Counter(sched.MetricScaleUps, "", ls).Value()
			cm.ElasticScaleDowns += reg.Counter(sched.MetricScaleDowns, "", ls).Value()
			// The gauge holds the scheduler's last-tick count; the live
			// replica set itself has drained by the time the run returns.
			cm.ElasticReplicasEnd += int(reg.Gauge(sched.MetricReplicas, "", ls).Value())
		}
	}
	if cfg.Drain {
		cm.DrainMode = true
		cm.DrainedItems = drainRep.Drained
		cm.DrainShed = drainRep.Shed
		cm.DrainClean = drainRep.Clean
		cm.DrainMs = ms(drainRep.Duration)
	}
	return cm, nil
}

// registrySeries counts the exposition series the cell's run created —
// a deterministic stand-in for metrics-subsystem overhead (each series
// is a fixed number of atomic updates per event; EXPERIMENTS.md pins
// the ns/update cost).
func registrySeries(reg *metrics.Registry) int {
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		return -1
	}
	n := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) > 0 && line[0] != '#' {
			n++
		}
	}
	return n
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
