package runtime

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vt"
)

// TestARUFeedbackThroughQueue verifies that queues relay summary-STP
// feedback exactly like channels (§3.3.2: "a node may either be a thread,
// channel, or a queue"): a fast producer feeding a slow consumer through
// a queue must throttle to the consumer's period.
func TestARUFeedbackThroughQueue(t *testing.T) {
	run := func(policy core.Policy) (produced int64, consumed int64) {
		rec := trace.NewRecorder()
		rt := New(Options{Clock: fastClock(), ARU: policy, Recorder: rec})
		q := rt.MustAddQueue("Q", 0)
		src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
			for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
				ctx.Compute(2 * time.Millisecond)
				if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
					return err
				}
				produced++
				ctx.Sync()
			}
			return nil
		})
		sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
			for {
				if _, err := ctx.GetQueue(ctx.Ins()[0]); err != nil {
					return err
				}
				consumed++
				ctx.Compute(20 * time.Millisecond)
				ctx.Emit()
				ctx.Sync()
			}
		})
		src.MustOutput(q)
		sink.MustInput(q)
		if err := rt.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		return produced, consumed
	}

	prodOff, _ := run(core.PolicyOff())
	prodMin, consMin := run(core.PolicyMin())

	// Without ARU the 2ms producer runs ~10x the 20ms consumer.
	if prodOff < 300 {
		t.Fatalf("unthrottled producer made only %d items", prodOff)
	}
	// With ARU the queue relays the sink's ~20ms summary back: the
	// producer must land near the consumer rate (within 2x).
	if prodMin > 2*consMin+5 {
		t.Fatalf("queue did not relay feedback: produced %d vs consumed %d", prodMin, consMin)
	}
	if prodMin >= prodOff/3 {
		t.Fatalf("ARU-min through a queue barely throttled: %d vs %d unthrottled", prodMin, prodOff)
	}
}

// TestQueueBackpressureWithCapacity: a bounded queue throttles the
// producer by blocking puts whether or not ARU is on. (Pacing does not
// displace blocking once the queue is full: the throttle sleeps only for
// whatever part of the target period blocking did not already consume,
// so a full queue stays the equilibrium. ARU's job is preventing the
// *unbounded* buffering of the paper's channels, not replacing
// backpressure.)
func TestQueueBackpressureWithCapacity(t *testing.T) {
	run := func(policy core.Policy) time.Duration {
		rec := trace.NewRecorder()
		rt := New(Options{Clock: fastClock(), ARU: policy, Recorder: rec})
		q := rt.MustAddQueue("Q", 0, WithQueueCapacity(3))
		src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
			for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
				ctx.Compute(time.Millisecond)
				if err := ctx.Put(ctx.Outs()[0], ts, nil, 10); err != nil {
					return err
				}
				ctx.Sync()
			}
			return nil
		})
		sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
			for {
				if _, err := ctx.GetQueue(ctx.Ins()[0]); err != nil {
					return err
				}
				ctx.Compute(15 * time.Millisecond)
				ctx.Sync()
			}
		})
		src.MustOutput(q)
		sink.MustInput(q)
		if err := rt.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		var blocked time.Duration
		for _, ev := range rec.Events() {
			if ev.Kind == trace.EvIter && ev.Thread == src.ID() {
				blocked += ev.Blocked
			}
		}
		return blocked
	}

	blockedOff := run(core.PolicyOff())
	blockedMin := run(core.PolicyMin())
	if blockedOff < 400*time.Millisecond {
		t.Fatalf("bounded queue must backpressure the producer; blocked only %v", blockedOff)
	}
	// ARU must coexist with backpressure: same steady-state rate, and no
	// pathological extra blocking.
	if blockedMin > blockedOff*3/2 {
		t.Fatalf("ARU increased blocking: %v vs %v", blockedMin, blockedOff)
	}
}

// TestGetWindowRuntime drives a sliding-window input end to end: the
// recognizer sees consecutive trailing frames and provenance marks
// window members successful.
func TestGetWindowRuntime(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), Recorder: rec})
	frames := rt.MustAddChannel("frames", 0)
	src := rt.MustAddThread("cam", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(5 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, int(ts), 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	var spans []int
	sink := rt.MustAddThread("recog", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		for {
			head, window, err := ctx.GetWindow(in)
			if err != nil {
				return err
			}
			spans = append(spans, len(window)+1)
			// Window members strictly precede the head, in order.
			last := vt.None
			for _, m := range window {
				if m.TS <= last || m.TS >= head.TS {
					t.Errorf("window member %v out of order (head %v)", m.TS, head.TS)
				}
				last = m.TS
			}
			ctx.Compute(25 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})
	src.MustOutput(frames)
	sink.MustInputWindow(frames, 4)

	if err := rt.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(spans) < 10 {
		t.Fatalf("only %d iterations", len(spans))
	}
	grew := 0
	for _, s := range spans {
		if s > 1 {
			grew++
		}
		if s > 4 {
			t.Fatalf("span %d exceeds window width 4", s)
		}
	}
	if grew == 0 {
		t.Fatal("window never contained trailing items")
	}
	a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The 5ms producer outruns a 25ms consumer: without a window most
	// items would be wasted; width 4 means up to 4 of every ~5 are used.
	if a.WastedMemPct > 40 {
		t.Errorf("wasted %.1f%%; window members must count as used", a.WastedMemPct)
	}
}

// TestInputWindowValidation rejects bad widths and non-channel sources.
func TestInputWindowValidation(t *testing.T) {
	rt := New(Options{Clock: fastClock()})
	ch := rt.MustAddChannel("c", 0)
	q := rt.MustAddQueue("q", 0)
	th := rt.MustAddThread("t", 0, func(ctx *Ctx) error { return nil })
	if _, err := th.InputWindow(ch, 0); err == nil {
		t.Error("width 0 must fail")
	}
	if _, err := th.InputWindow(q, 3); err == nil {
		t.Error("queue window must fail")
	}
	p, err := th.InputWindow(ch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Window() != 3 {
		t.Errorf("Window() = %d", p.Window())
	}
}
