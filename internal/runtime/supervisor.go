// Thread supervision: panic containment, restart policies, permanent-
// failure propagation, and the stall watchdog.
//
// The paper's premise is that feedback must always reflect *live*
// consumers; PR 3 enforced that across the wire (staleness decay of
// remote summary-STP), and this file enforces it in-process. Every
// thread body now runs under a supervisor loop: a panic is recovered
// into a typed *ThreadFailure instead of killing the process, a failed
// body is restarted on a pure, fake-clock-testable capped-exponential
// backoff schedule (shared with the remote redial schedule, package
// backoff), and when the restart budget is exhausted the failure is
// propagated — peers blocked on the dead thread's buffers observe
// ErrPeerFailed, and the controller releases its summary-STP from the
// backward fold so upstream producers return to their own measured
// period. A clock-aware heartbeat (stamped by Ctx.Sync) feeds an
// optional watchdog that flags threads whose heartbeat age exceeds a
// stall TTL, turning a silently hung stage into an observable
// condition.
package runtime

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/backoff"
	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/rand"
)

// captureStack snapshots the failing goroutine's stack for the
// ThreadFailure.
func captureStack() []byte { return debug.Stack() }

// DefaultMaxRestarts is the restart budget applied when a RestartPolicy
// leaves MaxRestarts at zero.
const DefaultMaxRestarts = 5

// ThreadState is one thread's supervision lifecycle state.
//
//	StateNew ──Start──▶ StateRunning ──body returns nil/ErrShutdown──▶ StateStopped
//	                        │  ▲
//	        failure,budget  │  │ backoff elapsed
//	        remaining       ▼  │
//	                    StateRestarting ──Stop during backoff──▶ StateStopped
//	                        │
//	        budget          ▼
//	        exhausted   StateFailed  (permanent: peers get ErrPeerFailed,
//	                                  feedback released)
type ThreadState uint8

const (
	// StateNew is a declared thread before Start.
	StateNew ThreadState = iota
	// StateRunning is a thread whose body is executing.
	StateRunning
	// StateRestarting is a failed thread sleeping its restart backoff.
	StateRestarting
	// StateFailed is a permanently failed thread: its restart budget is
	// exhausted (or its policy is RestartNever), its attachments have
	// been released, and its failure is reported by Wait.
	StateFailed
	// StateStopped is a thread whose body returned cleanly (nil or
	// ErrShutdown), or that was stopped mid-restart.
	StateStopped
)

// String returns the lowercase state name.
func (s ThreadState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunning:
		return "running"
	case StateRestarting:
		return "restarting"
	case StateFailed:
		return "failed"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalText renders the state name, so ThreadState fields serialize
// readably in JSON health views.
func (s ThreadState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// ThreadFailure is one failure of a thread body: either a recovered
// panic (Value and Stack set) or a non-shutdown error return (Err set).
// It is the error type Wait reports for permanently failed threads;
// errors.As extracts it and errors.Is sees through Err.
type ThreadFailure struct {
	// Thread is the failing thread's name.
	Thread string
	// Value is the recovered panic value (nil for error returns).
	Value any
	// Stack is the goroutine stack captured at recover time.
	Stack []byte
	// Err is the body's error return (nil for panics).
	Err error
}

// Error renders the failure.
func (f *ThreadFailure) Error() string {
	if f.Err != nil {
		return fmt.Sprintf("thread %q failed: %v", f.Thread, f.Err)
	}
	return fmt.Sprintf("thread %q panicked: %v", f.Thread, f.Value)
}

// Unwrap exposes the body's error return to errors.Is/As chains.
func (f *ThreadFailure) Unwrap() error { return f.Err }

// RestartPolicy configures RestartOnFailure supervision for one thread.
// The zero value means defaults everywhere.
type RestartPolicy struct {
	// Backoff shapes the restart delay schedule (defaults: 50ms base,
	// 2s cap, factor 2, jitter 0.2 — the shared backoff schedule). Set
	// Jitter to -1 for a deterministic, fake-clock-pinnable schedule.
	Backoff backoff.Backoff
	// MaxRestarts is the restart budget within Window (default 5). When
	// the budget is exhausted the thread fails permanently.
	MaxRestarts int
	// Window is the sliding interval the budget applies to; restarts
	// older than Window stop counting (and the backoff attempt index
	// resets with them). Zero means the budget spans the whole run.
	Window time.Duration
	// Seed fixes the jitter randomness for deterministic tests; zero
	// derives a seed from wall time.
	Seed int64
}

// ThreadOption configures a thread at AddThread time.
type ThreadOption func(*Thread)

// WithRestartOnFailure enables supervised restarts: when the body
// panics or returns a non-shutdown error, it is restarted on p's
// backoff schedule until p's budget is exhausted, at which point the
// thread fails permanently. The default (no option) is RestartNever:
// the first failure is permanent — the pre-supervision behavior, minus
// the process crash on panic.
func WithRestartOnFailure(p RestartPolicy) ThreadOption {
	return func(t *Thread) {
		t.restart = p
		t.hasRestart = true
	}
}

// WithThreadTenant tags the thread with a tenant/pipeline name, carried
// as a `tenant` label on every one of its metric instruments (the
// thread-side counterpart of the buffer WithTenant option). It has no
// behavioural effect.
func WithThreadTenant(name string) ThreadOption {
	return func(t *Thread) { t.tenant = name }
}

// WithStallTTL sets a per-thread heartbeat TTL for the stall watchdog,
// overriding Options.StallTTL. The watchdog must be enabled (some TTL
// set) for stall detection to run at all.
func WithStallTTL(ttl time.Duration) ThreadOption {
	return func(t *Thread) { t.stallTTL = ttl }
}

// ThreadHealth is the supervision snapshot of one thread.
type ThreadHealth struct {
	// Name is the thread's name.
	Name string
	// State is the current lifecycle state.
	State ThreadState
	// Restarts counts completed restarts over the thread's lifetime.
	Restarts int
	// Stalled reports that the stall watchdog currently flags the
	// thread (heartbeat older than its TTL while running).
	Stalled bool
	// HeartbeatAge is the time since the last Ctx.Sync (or thread
	// start).
	HeartbeatAge time.Duration
	// LastFailure is the most recent failure, nil if none.
	LastFailure *ThreadFailure
}

// HealthSnapshot is a point-in-time supervision view of the whole
// application, ordered by thread name.
type HealthSnapshot struct {
	// Threads holds one entry per declared thread.
	Threads []ThreadHealth
}

// Healthy reports whether no thread is permanently failed or currently
// stalled.
func (h HealthSnapshot) Healthy() bool {
	for _, t := range h.Threads {
		if t.State == StateFailed || t.Stalled {
			return false
		}
	}
	return true
}

// Health returns the supervision snapshot. Valid any time after Start;
// before Start every thread reports StateNew.
func (rt *Runtime) Health() HealthSnapshot {
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	now := rt.clk.Now()
	snap := HealthSnapshot{Threads: make([]ThreadHealth, 0, len(threads))}
	for _, t := range threads {
		snap.Threads = append(snap.Threads, t.health(now))
	}
	sort.Slice(snap.Threads, func(i, j int) bool { return snap.Threads[i].Name < snap.Threads[j].Name })
	return snap
}

// health builds one thread's ThreadHealth at clock reading now.
func (t *Thread) health(now time.Duration) ThreadHealth {
	t.supMu.Lock()
	defer t.supMu.Unlock()
	age := now - time.Duration(t.lastBeat.Load())
	if age < 0 {
		age = 0
	}
	return ThreadHealth{
		Name:         t.name,
		State:        t.state,
		Restarts:     t.restarts,
		Stalled:      t.stalled,
		HeartbeatAge: age,
		LastFailure:  t.lastFailure,
	}
}

// State returns the thread's current lifecycle state.
func (t *Thread) State() ThreadState {
	t.supMu.Lock()
	defer t.supMu.Unlock()
	return t.state
}

// Restarts returns the number of completed restarts.
func (t *Thread) Restarts() int {
	t.supMu.Lock()
	defer t.supMu.Unlock()
	return t.restarts
}

// LastFailure returns the most recent failure, nil if none.
func (t *Thread) LastFailure() *ThreadFailure {
	t.supMu.Lock()
	defer t.supMu.Unlock()
	return t.lastFailure
}

// setState transitions the lifecycle state.
func (t *Thread) setState(s ThreadState) {
	t.supMu.Lock()
	t.state = s
	t.supMu.Unlock()
}

// stopRequested reports whether the runtime asked the thread to stop.
func (t *Thread) stopRequested() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// runOnce executes one body incarnation, recovering panics and mapping
// the outcome to nil (clean exit) or a *ThreadFailure.
func (t *Thread) runOnce() (f *ThreadFailure) {
	defer func() {
		if v := recover(); v != nil {
			f = &ThreadFailure{Thread: t.name, Value: v, Stack: captureStack()}
			if t.tm.panics != nil {
				t.tm.panics.Inc()
			}
		}
	}()
	if err := t.run(); err != nil && !errors.Is(err, ErrShutdown) && !errors.Is(err, ErrDraining) {
		return &ThreadFailure{Thread: t.name, Err: err}
	}
	// ErrDraining is a clean exit: the body observed its quiesce (or a
	// sealed downstream buffer) during a graceful drain and returned.
	return nil
}

// supervise is the per-thread supervisor loop Start spawns: it runs the
// body, contains failures, restarts per policy, and on permanent
// failure propagates the death to peers and the controller.
func (t *Thread) supervise() {
	t.setState(StateRunning)
	for {
		f := t.runOnce()
		if f == nil {
			t.setState(StateStopped)
			return
		}
		t.supMu.Lock()
		t.lastFailure = f
		t.supMu.Unlock()

		delay, ok := t.nextRestartDelay(f)
		if !ok {
			t.setState(StateFailed)
			t.rt.failPermanently(t, f)
			return
		}
		t.setState(StateRestarting)
		t.sleepRestart(delay)
		if t.stopRequested() || t.rt.draining.Load() {
			// Drain is a terminal lifecycle phase: a restart granted
			// before it began is abandoned, never resumed mid-flush.
			t.setState(StateStopped)
			return
		}
		t.supMu.Lock()
		t.restarts++
		t.restartTimes = append(t.restartTimes, t.rt.clk.Now())
		t.supMu.Unlock()
		if t.tm.restarts != nil {
			t.tm.restarts.Inc()
		}
		t.lastBeat.Store(int64(t.rt.clk.Now()))
		t.setState(StateRunning)
	}
}

// nextRestartDelay decides whether failure f is restartable and, if so,
// returns the backoff delay to sleep first. Not restartable: no policy
// (RestartNever), stop already requested, a budget-window exhausted, or
// an ErrPeerFailed return — restarting cannot resurrect a dead peer, so
// the failure cascades instead of looping.
func (t *Thread) nextRestartDelay(f *ThreadFailure) (time.Duration, bool) {
	if !t.hasRestart || t.stopRequested() || t.rt.draining.Load() {
		// No restarts during a graceful drain: a restarted body would
		// inject work into a graph that is flushing to empty.
		return 0, false
	}
	if f.Err != nil && errors.Is(f.Err, ErrPeerFailed) {
		return 0, false
	}
	t.supMu.Lock()
	defer t.supMu.Unlock()
	now := t.rt.clk.Now()
	if w := t.restart.Window; w > 0 {
		keep := t.restartTimes[:0]
		for _, at := range t.restartTimes {
			if now-at <= w {
				keep = append(keep, at)
			}
		}
		t.restartTimes = keep
	}
	n := len(t.restartTimes)
	max := t.restart.MaxRestarts
	if max <= 0 {
		max = DefaultMaxRestarts
	}
	if n >= max {
		return 0, false
	}
	// n doubles as the backoff attempt index: pruning old restarts out
	// of the window also resets the schedule after a quiet period.
	return t.restart.Backoff.Delay(n, t.rng.Float64()), true
}

// sleepRestart sleeps the backoff delay on the runtime clock. On a real
// clock the sleep aborts as soon as Stop fires; fake and virtual clocks
// are test- or event-driven and release their sleepers through the
// clock itself.
func (t *Thread) sleepRestart(d time.Duration) {
	if d <= 0 {
		return
	}
	if _, isReal := t.rt.clk.(*clock.Real); isReal {
		tm := time.NewTimer(d)
		defer tm.Stop()
		select {
		case <-tm.C:
		case <-t.stop:
		}
		return
	}
	t.rt.clk.Sleep(d)
}

// failPermanently propagates a thread's permanent failure: the error is
// recorded for Wait, the dead thread's buffer attachments are released
// so blocked peers observe ErrPeerFailed instead of hanging, and the
// controller fades its feedback so upstream producers return to their
// own measured period — the in-process mirror of the remote staleness
// decay.
func (rt *Runtime) failPermanently(t *Thread, f *ThreadFailure) {
	rt.recordFailure(f)
	if t.replicaSlot > 0 {
		// A replica shares its ports with the primary and its sibling
		// replicas: failing the shared attachments would cascade the
		// death to incarnations that are alive and well. The failure is
		// recorded and the slot leaves the controller fold via
		// finishReplica; the stage itself lives on.
		if t.tm.failures != nil {
			t.tm.failures.Inc()
		}
		return
	}
	if t.tm.failures != nil {
		t.tm.failures.Inc()
		t.tm.faded.Inc()
	}
	// Inputs: the dead thread was these buffers' consumer. Failure-aware
	// detach flips their producers' capacity waits to ErrPeerFailed once
	// no consumer remains; backends without failure awareness (remote
	// endpoints, whose peers live elsewhere) fall back to a plain
	// detach. Either way the controller drops the dead consumer's
	// feedback slot so its last summary-STP stops throttling upstream.
	for _, p := range t.ins {
		if pf, ok := p.buf.(buffer.PeerFailer); ok {
			pf.FailConsumer(p.conn)
		} else {
			p.buf.DetachConsumer(p.conn)
		}
		rt.ctrl.DropConsumer(p.conn)
	}
	// Outputs: the dead thread was these buffers' producer. Once every
	// producer of a buffer has failed, its consumers' blocking gets
	// report ErrPeerFailed (after draining what is already buffered,
	// where the discipline allows).
	for _, p := range t.outs {
		if pf, ok := p.buf.(buffer.PeerFailer); ok {
			pf.FailProducer(p.conn)
		}
	}
	rt.ctrl.FadeNode(t.id)
}

// recordFailure appends one permanent failure for Wait to report.
func (rt *Runtime) recordFailure(err error) {
	rt.failMu.Lock()
	rt.failures = append(rt.failures, err)
	rt.failMu.Unlock()
}

// watchdogPlan decides whether the stall watchdog should run and at
// what interval: enabled when Options.StallTTL is set or any thread
// carries a per-thread TTL; the check interval defaults to a quarter of
// the smallest TTL.
func (rt *Runtime) watchdogPlan() (time.Duration, bool) {
	minTTL := rt.opts.StallTTL
	for _, t := range rt.threads {
		if t.stallTTL > 0 && (minTTL <= 0 || t.stallTTL < minTTL) {
			minTTL = t.stallTTL
		}
	}
	if minTTL <= 0 {
		return 0, false
	}
	every := rt.opts.StallCheckEvery
	if every <= 0 {
		every = minTTL / 4
		if every <= 0 {
			every = time.Millisecond
		}
	}
	return every, true
}

// watchdog periodically compares each running thread's heartbeat age
// against its stall TTL, maintaining the Stalled flag surfaced by
// Health/WriteStatus and firing OnStall once per stall episode. It runs
// until Stop.
func (rt *Runtime) watchdog(every time.Duration) {
	defer rt.wg.Done()
	reg, hasReg := rt.clk.(clock.Registrar)
	if hasReg {
		defer reg.Add(-1)
	}
	_, isReal := rt.clk.(*clock.Real)
	for {
		if isReal {
			tm := time.NewTimer(every)
			select {
			case <-tm.C:
			case <-rt.stopCh:
				tm.Stop()
				return
			}
			tm.Stop()
		} else {
			rt.clk.Sleep(every)
			select {
			case <-rt.stopCh:
				return
			default:
			}
		}
		rt.checkStalls()
	}
}

// checkStalls performs one watchdog sweep. Sweeps are suppressed while
// a graceful drain is in progress: a thread flushing a deep backlog
// stops calling Sync on its usual cadence, and flagging (or acting on)
// that as a stall would fight the drain it is part of.
func (rt *Runtime) checkStalls() {
	if rt.draining.Load() {
		return
	}
	now := rt.clk.Now()
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	for _, t := range threads {
		ttl := t.stallTTL
		if ttl <= 0 {
			ttl = rt.opts.StallTTL
		}
		if ttl <= 0 {
			continue
		}
		age := now - time.Duration(t.lastBeat.Load())
		t.supMu.Lock()
		running := t.state == StateRunning
		wasStalled := t.stalled
		nowStalled := running && age > ttl
		t.stalled = nowStalled
		t.supMu.Unlock()
		if nowStalled && !wasStalled {
			if t.tm.stallEpisodes != nil {
				t.tm.stallEpisodes.Inc()
			}
			if rt.opts.OnStall != nil {
				rt.opts.OnStall(t.name, age)
			}
		}
	}
}

// newSupervisionRNG builds the jitter source for one thread's restart
// schedule: a split stream of the shared xorshift64 generator, keyed by
// the thread's name so sibling threads (and elastic replicas) jitter on
// decorrelated schedules while staying byte-reproducible. A zero policy
// seed falls back to the ARU_SEED environment override instead of wall
// time, so fixed-seed runs pin the exact restart schedule even on the
// virtual clock.
func newSupervisionRNG(seed int64, name string) *rand.Rand {
	if seed == 0 {
		seed = rand.EnvSeed("ARU_SEED", 0)
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.Split(uint64(seed), h.Sum64()))
}
