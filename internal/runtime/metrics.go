// Live metrics instrumentation of the runtime layer: per-thread
// supervision and iteration counters, per-buffer consumption counters,
// and the sampler-refreshed gauge families (STP, occupancy, heartbeat
// age).
//
// The registration/increment split mirrors package metrics' contract:
// every handle below is resolved once at Start (the cold path, where
// map lookups and label allocations are acceptable), and the hot paths
// (Ctx.Sync, Ctx.Get, Ctx.Put, the supervisor loop) touch only nil-safe
// handles — one branch when metrics are off, a fixed number of atomic
// ops when they are on. The existing allocation pins (put = 1 item
// allocation, get = 0) hold in both modes.
package runtime

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Prometheus family names for the runtime-level instruments. Node
// families carry {node="<name>"}, buffer families {buffer="<name>"},
// thread families {thread="<name>"}.
const (
	// Sampler-refreshed gauges.
	MetricBufferItems   = "aru_buffer_items"
	MetricBufferBytes   = "aru_buffer_bytes"
	MetricNodeCurrent   = "aru_node_current_stp_seconds"
	MetricNodeSummary   = "aru_node_summary_stp_seconds"
	MetricNodeComp      = "aru_node_compressed_stp_seconds"
	MetricNodeDegraded  = "aru_node_degraded"
	MetricHeartbeatAge  = "aru_thread_heartbeat_age_seconds"
	MetricThreadStalled = "aru_thread_stalled"

	// Estimator-stage gauges (thread nodes under an estimator-bearing
	// policy only; see DESIGN.md §4h).
	MetricNodeTarget      = "aru_node_target_stp_seconds"
	MetricNodeEstimate    = "aru_node_estimated_stp_seconds"
	MetricNodeTrend       = "aru_node_trend_state"
	MetricNodePhase       = "aru_node_aimd_phase"
	MetricNodeFeedbackItv = "aru_node_feedback_interval_seconds"

	// Event-incremented counters and histograms.
	MetricGets          = "aru_buffer_gets_total"
	MetricGetBlocked    = "aru_buffer_get_blocked_seconds"
	MetricPeerFailed    = "aru_buffer_peer_failed_total"
	MetricNodeDegradedT = "aru_node_degraded_transitions_total"
	MetricNodeFaded     = "aru_node_faded_total"
	MetricIterations    = "aru_thread_iterations_total"
	MetricThrottleSleep = "aru_throttle_sleep_seconds_total"
	MetricRestarts      = "aru_thread_restarts_total"
	MetricPanics        = "aru_thread_panics_total"
	MetricFailures      = "aru_thread_failures_total"
	MetricStallEpisodes = "aru_thread_stall_episodes_total"
	MetricNodeBackoffs  = "aru_node_aimd_backoffs_total"
	MetricNodeSpeedups  = "aru_node_aimd_speedups_total"

	// Graceful-drain instruments (runtime-wide, no labels). The
	// per-buffer drained/shed counters live in package buffer
	// (buffer.MetricDrained, buffer.MetricShed).
	MetricDrainDuration = "aru_drain_duration_seconds"
	MetricDraining      = "aru_runtime_draining"
)

// threadInstruments holds one thread's live handles. The zero value
// (all nil) is the metrics-off configuration; every use no-ops after a
// branch.
type threadInstruments struct {
	iterations    *metrics.Counter
	throttleSleep *metrics.Counter // nanoseconds, rendered as seconds
	restarts      *metrics.Counter
	panics        *metrics.Counter
	failures      *metrics.Counter
	stallEpisodes *metrics.Counter
	faded         *metrics.Counter
	heartbeatAge  *metrics.Gauge // sampler-refreshed
	stalled       *metrics.Gauge // sampler-refreshed
}

// nodeInstruments holds one task-graph node's sampler-refreshed ARU
// gauges plus the degraded-transition counter.
type nodeInstruments struct {
	current    *metrics.Gauge
	compressed *metrics.Gauge
	summary    *metrics.Gauge
	degraded   *metrics.Gauge
	degradedT  *metrics.Counter
	// wasDegraded is the transition edge detector; atomic because
	// concurrent Snapshot calls may publish at once.
	wasDegraded atomic.Bool

	// Estimator-stage instruments (thread nodes under an
	// estimator-bearing policy only; all nil otherwise). The estimator
	// reports lifetime back-off/speed-up totals, so the published
	// counters advance by the diff against the last published total —
	// the atomic Swap makes concurrent publishes settle on exactly one
	// increment per actuation (the wasDegraded idiom, for counts).
	target      *metrics.Gauge
	estimate    *metrics.Gauge
	trend       *metrics.Gauge
	phase       *metrics.Gauge
	feedbackItv *metrics.Gauge
	backoffs    *metrics.Counter
	speedups    *metrics.Counter
	lastBack    atomic.Uint64
	lastSpeed   atomic.Uint64
}

// bufferInstruments holds one buffer's sampler-refreshed occupancy
// gauges.
type bufferInstruments struct {
	items *metrics.Gauge
	bytes *metrics.Gauge
}

// tenantLabels builds a label set, appending the tenant dimension when
// the tag is non-empty so untagged runs keep their exact historical
// label sets.
func tenantLabels(key, name, tenant string) metrics.Labels {
	ls := metrics.Labels{key: name}
	if tenant != "" {
		ls["tenant"] = tenant
	}
	return ls
}

// registerInstrumentsLocked resolves every runtime-level handle against
// Options.Metrics. Called once from Start with rt.mu held, after the
// buffers are materialized; a nil registry leaves every handle nil.
func (rt *Runtime) registerInstrumentsLocked() {
	reg := rt.opts.Metrics
	if reg == nil {
		return
	}
	rt.nodeInst = make(map[graph.NodeID]*nodeInstruments)
	rt.bufInst = make(map[graph.NodeID]*bufferInstruments)
	rt.threadByName = make(map[string]*Thread, len(rt.threads))
	rt.mDrainDur = reg.Histogram(MetricDrainDuration, "Duration of graceful drains (Runtime.Drain).", nil, nil)
	rt.mDraining = reg.Gauge(MetricDraining, "1 while a graceful drain is in progress.", nil)
	// Tenant tags per node: buffers carry theirs on the ref, threads on
	// the Thread. Node-level families inherit the owning entity's tag.
	tenants := make(map[graph.NodeID]string)
	for id, ref := range rt.refs {
		tenants[id] = ref.tenant
	}
	for _, t := range rt.threads {
		tenants[t.id] = t.tenant
	}
	estOn := rt.opts.ARU.EstimatorFactory != nil
	rt.g.Nodes(func(n *graph.Node) {
		nls := tenantLabels("node", n.Name, tenants[n.ID])
		ni := &nodeInstruments{
			current:    reg.DurationGauge(MetricNodeCurrent, "Last measured current-STP of the node (NaN: unknown).", nls),
			compressed: reg.DurationGauge(MetricNodeComp, "Compressed backwardSTP of the node (NaN: unknown).", nls),
			summary:    reg.DurationGauge(MetricNodeSummary, "Propagated summary-STP of the node (NaN: unknown).", nls),
		}
		rt.nodeInst[n.ID] = ni
		if estOn && n.Kind == graph.KindThread {
			ni.target = reg.DurationGauge(MetricNodeTarget, "Estimator pacing target the node's thread throttles to (NaN: unknown).", nls)
			ni.estimate = reg.DurationGauge(MetricNodeEstimate, "Sliding-window estimate of the node's feedback signal (NaN: unknown).", nls)
			ni.trend = reg.Gauge(MetricNodeTrend, "Backlog trend classification: -1 underuse, 0 hold, 1 overuse.", nls)
			ni.phase = reg.Gauge(MetricNodePhase, "AIMD actuation phase: -1 backoff, 0 hold, 1 speedup.", nls)
			ni.feedbackItv = reg.DurationGauge(MetricNodeFeedbackItv, "Mean interval between feedback samples in the estimator window.", nls)
			ni.backoffs = reg.Counter(MetricNodeBackoffs, "Multiplicative back-offs applied by the node's rate controller.", nls)
			ni.speedups = reg.Counter(MetricNodeSpeedups, "Additive speed-ups applied by the node's rate controller.", nls)
		}
		if _, isBuf := rt.buffers[n.ID]; isBuf {
			bls := tenantLabels("buffer", n.Name, tenants[n.ID])
			ni.degraded = reg.Gauge(MetricNodeDegraded, "1 while the node's remote feedback is stale (degraded).", nls)
			ni.degradedT = reg.Counter(MetricNodeDegradedT, "Fresh→stale transitions of the node's remote feedback.", nls)
			rt.bufInst[n.ID] = &bufferInstruments{
				items: reg.Gauge(MetricBufferItems, "Live items in the buffer (sampled).", bls),
				bytes: reg.Gauge(MetricBufferBytes, "Live bytes in the buffer (sampled).", bls),
			}
		}
	})
	for _, t := range rt.threads {
		rt.registerThreadInstruments(t)
		for _, p := range t.ins {
			ls := tenantLabels("buffer", p.ref.name, p.ref.tenant)
			p.mGets = reg.Counter(MetricGets, "Items consumed from the buffer.", ls)
			p.mGetBlocked = reg.Histogram(MetricGetBlocked, "Time consumers spent blocked in gets.", nil, ls)
			p.mPeerFailed = reg.Counter(MetricPeerFailed, "Operations woken by total peer failure (ErrPeerFailed).", ls)
		}
		for _, p := range t.outs {
			p.mPeerFailed = reg.Counter(MetricPeerFailed, "Operations woken by total peer failure (ErrPeerFailed).", tenantLabels("buffer", p.ref.name, p.ref.tenant))
		}
	}
}

// registerThreadInstruments resolves one thread's supervision and
// iteration handles and publishes the thread to threadByName. Called at
// Start for every declared thread and from SpawnReplica for elastic
// replicas (whose names are unique per slot) — the map insert is
// instMu-guarded because replicas register while the sampler is live.
// Port instruments are not touched here: a replica shares its primary's
// ports, whose handles were resolved at Start. No-op when metrics are
// disabled.
func (rt *Runtime) registerThreadInstruments(t *Thread) {
	reg := rt.opts.Metrics
	if reg == nil {
		return
	}
	tls := tenantLabels("thread", t.name, t.tenant)
	t.tm = threadInstruments{
		iterations:    reg.Counter(MetricIterations, "Completed Sync iterations.", tls),
		throttleSleep: reg.DurationCounter(MetricThrottleSleep, "Time the source throttle slept to match the summary-STP.", tls),
		restarts:      reg.Counter(MetricRestarts, "Supervised restarts completed.", tls),
		panics:        reg.Counter(MetricPanics, "Panics recovered from the thread body.", tls),
		failures:      reg.Counter(MetricFailures, "Permanent failures (restart budget exhausted or RestartNever).", tls),
		stallEpisodes: reg.Counter(MetricStallEpisodes, "Stall episodes flagged by the watchdog.", tls),
		faded:         reg.Counter(MetricNodeFaded, "Times the controller faded this node's feedback on permanent failure.", tenantLabels("node", t.name, t.tenant)),
		heartbeatAge:  reg.DurationGauge(MetricHeartbeatAge, "Age of the thread's last heartbeat (sampled).", tls),
		stalled:       reg.Gauge(MetricThreadStalled, "1 while the stall watchdog flags the thread.", tls),
	}
	rt.instMu.Lock()
	rt.threadByName[t.name] = t
	rt.instMu.Unlock()
}

// noteGet records one get outcome on the port's instruments: blocked
// wait time, the consumption count, and ErrPeerFailed wakeups. One
// branch when metrics are off.
func (p *InPort) noteGet(blocked time.Duration, err error) {
	if p.mGets == nil {
		return
	}
	if blocked > 0 {
		p.mGetBlocked.Observe(blocked)
	}
	switch {
	case err == nil || errors.Is(err, buffer.ErrReattached):
		p.mGets.Inc()
	case errors.Is(err, buffer.ErrPeerFailed):
		p.mPeerFailed.Inc()
	}
}

// noteGetBatch is noteGet for a whole batch: the nil-handle branch runs
// once and n successes land in one Add, so the per-item cost of metrics
// on the batch path is zero — this is also what reclaims the metrics-on
// overhead regression on high-rate consumers.
func (p *InPort) noteGetBatch(n int, blocked time.Duration, err error) {
	if p.mGets == nil {
		return
	}
	if blocked > 0 {
		p.mGetBlocked.Observe(blocked)
	}
	if n > 0 {
		p.mGets.Add(int64(n))
	}
	if err != nil && errors.Is(err, buffer.ErrPeerFailed) {
		p.mPeerFailed.Inc()
	}
}

// notePut records a put outcome's failure class (ErrPeerFailed wakeups;
// successes are counted inside the buffer layer itself).
func (p *OutPort) notePut(err error) {
	if err != nil && errors.Is(err, buffer.ErrPeerFailed) {
		p.mPeerFailed.Inc()
	}
}

// setSTPGauge publishes an STP value to a duration gauge, mapping
// Unknown to the NaN sentinel.
func setSTPGauge(g *metrics.Gauge, s core.STP) {
	if g == nil {
		return
	}
	if s.Known() {
		g.SetDuration(s.Duration())
	} else {
		g.SetUnknown()
	}
}

// publish refreshes the sampler-owned gauge families from a snapshot.
// No-op when metrics are disabled. Counters are event-incremented
// elsewhere; only gauges (point-in-time values) are written here, so
// concurrent publishes are harmless last-writer-wins races on values
// that are themselves instantaneous.
func (rt *Runtime) publish(snap Snapshot) {
	if rt.opts.Metrics == nil {
		return
	}
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		ni := rt.nodeInst[ns.Node]
		if ni == nil {
			continue
		}
		setSTPGauge(ni.current, ns.Current)
		setSTPGauge(ni.compressed, ns.Compressed)
		setSTPGauge(ni.summary, ns.Summary)
		if ni.target != nil && ns.Estimator != nil {
			es := ns.Estimator
			setSTPGauge(ni.target, es.Target)
			setSTPGauge(ni.estimate, es.Estimate)
			ni.trend.Set(int64(es.Trend))
			ni.phase.Set(int64(es.Phase))
			ni.feedbackItv.SetDuration(es.FeedbackInterval)
			// Publish the lifetime totals as counter increments; the Swap
			// hands each delta to exactly one publisher, and a stale
			// snapshot racing a fresher one yields a wrapped (huge) delta
			// that is simply skipped.
			if d := es.Backoffs - ni.lastBack.Swap(es.Backoffs); d > 0 && d < 1<<62 {
				ni.backoffs.Add(int64(d))
			}
			if d := es.Speedups - ni.lastSpeed.Swap(es.Speedups); d > 0 && d < 1<<62 {
				ni.speedups.Add(int64(d))
			}
		}
		if ni.degraded != nil {
			ni.degraded.SetBool(ns.Degraded)
			if ns.Degraded {
				if ni.wasDegraded.CompareAndSwap(false, true) {
					ni.degradedT.Inc()
				}
			} else {
				ni.wasDegraded.Store(false)
			}
		}
	}
	for i := range snap.Buffers {
		bs := &snap.Buffers[i]
		bi := rt.bufInst[bs.Node]
		if bi == nil {
			continue
		}
		bi.items.Set(int64(bs.Items))
		bi.bytes.Set(bs.Bytes)
	}
	rt.instMu.Lock()
	for i := range snap.Threads {
		th := &snap.Threads[i]
		t := rt.threadByName[th.Name]
		if t == nil {
			continue
		}
		t.tm.heartbeatAge.SetDuration(th.HeartbeatAge)
		t.tm.stalled.SetBool(th.Stalled)
	}
	rt.instMu.Unlock()
}
