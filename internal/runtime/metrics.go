// Live metrics instrumentation of the runtime layer: per-thread
// supervision and iteration counters, per-buffer consumption counters,
// and the sampler-refreshed gauge families (STP, occupancy, heartbeat
// age).
//
// The registration/increment split mirrors package metrics' contract:
// every handle below is resolved once at Start (the cold path, where
// map lookups and label allocations are acceptable), and the hot paths
// (Ctx.Sync, Ctx.Get, Ctx.Put, the supervisor loop) touch only nil-safe
// handles — one branch when metrics are off, a fixed number of atomic
// ops when they are on. The existing allocation pins (put = 1 item
// allocation, get = 0) hold in both modes.
package runtime

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Prometheus family names for the runtime-level instruments. Node
// families carry {node="<name>"}, buffer families {buffer="<name>"},
// thread families {thread="<name>"}.
const (
	// Sampler-refreshed gauges.
	MetricBufferItems   = "aru_buffer_items"
	MetricBufferBytes   = "aru_buffer_bytes"
	MetricNodeCurrent   = "aru_node_current_stp_seconds"
	MetricNodeSummary   = "aru_node_summary_stp_seconds"
	MetricNodeComp      = "aru_node_compressed_stp_seconds"
	MetricNodeDegraded  = "aru_node_degraded"
	MetricHeartbeatAge  = "aru_thread_heartbeat_age_seconds"
	MetricThreadStalled = "aru_thread_stalled"

	// Event-incremented counters and histograms.
	MetricGets          = "aru_buffer_gets_total"
	MetricGetBlocked    = "aru_buffer_get_blocked_seconds"
	MetricPeerFailed    = "aru_buffer_peer_failed_total"
	MetricNodeDegradedT = "aru_node_degraded_transitions_total"
	MetricNodeFaded     = "aru_node_faded_total"
	MetricIterations    = "aru_thread_iterations_total"
	MetricThrottleSleep = "aru_throttle_sleep_seconds_total"
	MetricRestarts      = "aru_thread_restarts_total"
	MetricPanics        = "aru_thread_panics_total"
	MetricFailures      = "aru_thread_failures_total"
	MetricStallEpisodes = "aru_thread_stall_episodes_total"
)

// threadInstruments holds one thread's live handles. The zero value
// (all nil) is the metrics-off configuration; every use no-ops after a
// branch.
type threadInstruments struct {
	iterations    *metrics.Counter
	throttleSleep *metrics.Counter // nanoseconds, rendered as seconds
	restarts      *metrics.Counter
	panics        *metrics.Counter
	failures      *metrics.Counter
	stallEpisodes *metrics.Counter
	faded         *metrics.Counter
	heartbeatAge  *metrics.Gauge // sampler-refreshed
	stalled       *metrics.Gauge // sampler-refreshed
}

// nodeInstruments holds one task-graph node's sampler-refreshed ARU
// gauges plus the degraded-transition counter.
type nodeInstruments struct {
	current    *metrics.Gauge
	compressed *metrics.Gauge
	summary    *metrics.Gauge
	degraded   *metrics.Gauge
	degradedT  *metrics.Counter
	// wasDegraded is the transition edge detector; atomic because
	// concurrent Snapshot calls may publish at once.
	wasDegraded atomic.Bool
}

// bufferInstruments holds one buffer's sampler-refreshed occupancy
// gauges.
type bufferInstruments struct {
	items *metrics.Gauge
	bytes *metrics.Gauge
}

// registerInstrumentsLocked resolves every runtime-level handle against
// Options.Metrics. Called once from Start with rt.mu held, after the
// buffers are materialized; a nil registry leaves every handle nil.
func (rt *Runtime) registerInstrumentsLocked() {
	reg := rt.opts.Metrics
	if reg == nil {
		return
	}
	rt.nodeInst = make(map[graph.NodeID]*nodeInstruments)
	rt.bufInst = make(map[graph.NodeID]*bufferInstruments)
	rt.threadByName = make(map[string]*Thread, len(rt.threads))
	rt.g.Nodes(func(n *graph.Node) {
		nls := metrics.Labels{"node": n.Name}
		ni := &nodeInstruments{
			current:    reg.DurationGauge(MetricNodeCurrent, "Last measured current-STP of the node (NaN: unknown).", nls),
			compressed: reg.DurationGauge(MetricNodeComp, "Compressed backwardSTP of the node (NaN: unknown).", nls),
			summary:    reg.DurationGauge(MetricNodeSummary, "Propagated summary-STP of the node (NaN: unknown).", nls),
		}
		rt.nodeInst[n.ID] = ni
		if _, isBuf := rt.buffers[n.ID]; isBuf {
			bls := metrics.Labels{"buffer": n.Name}
			ni.degraded = reg.Gauge(MetricNodeDegraded, "1 while the node's remote feedback is stale (degraded).", nls)
			ni.degradedT = reg.Counter(MetricNodeDegradedT, "Fresh→stale transitions of the node's remote feedback.", nls)
			rt.bufInst[n.ID] = &bufferInstruments{
				items: reg.Gauge(MetricBufferItems, "Live items in the buffer (sampled).", bls),
				bytes: reg.Gauge(MetricBufferBytes, "Live bytes in the buffer (sampled).", bls),
			}
		}
	})
	for _, t := range rt.threads {
		tls := metrics.Labels{"thread": t.name}
		t.tm = threadInstruments{
			iterations:    reg.Counter(MetricIterations, "Completed Sync iterations.", tls),
			throttleSleep: reg.DurationCounter(MetricThrottleSleep, "Time the source throttle slept to match the summary-STP.", tls),
			restarts:      reg.Counter(MetricRestarts, "Supervised restarts completed.", tls),
			panics:        reg.Counter(MetricPanics, "Panics recovered from the thread body.", tls),
			failures:      reg.Counter(MetricFailures, "Permanent failures (restart budget exhausted or RestartNever).", tls),
			stallEpisodes: reg.Counter(MetricStallEpisodes, "Stall episodes flagged by the watchdog.", tls),
			faded:         reg.Counter(MetricNodeFaded, "Times the controller faded this node's feedback on permanent failure.", metrics.Labels{"node": t.name}),
			heartbeatAge:  reg.DurationGauge(MetricHeartbeatAge, "Age of the thread's last heartbeat (sampled).", tls),
			stalled:       reg.Gauge(MetricThreadStalled, "1 while the stall watchdog flags the thread.", tls),
		}
		rt.threadByName[t.name] = t
		for _, p := range t.ins {
			ls := metrics.Labels{"buffer": p.ref.name}
			p.mGets = reg.Counter(MetricGets, "Items consumed from the buffer.", ls)
			p.mGetBlocked = reg.Histogram(MetricGetBlocked, "Time consumers spent blocked in gets.", nil, ls)
			p.mPeerFailed = reg.Counter(MetricPeerFailed, "Operations woken by total peer failure (ErrPeerFailed).", ls)
		}
		for _, p := range t.outs {
			p.mPeerFailed = reg.Counter(MetricPeerFailed, "Operations woken by total peer failure (ErrPeerFailed).", metrics.Labels{"buffer": p.ref.name})
		}
	}
}

// noteGet records one get outcome on the port's instruments: blocked
// wait time, the consumption count, and ErrPeerFailed wakeups. One
// branch when metrics are off.
func (p *InPort) noteGet(blocked time.Duration, err error) {
	if p.mGets == nil {
		return
	}
	if blocked > 0 {
		p.mGetBlocked.Observe(blocked)
	}
	switch {
	case err == nil || errors.Is(err, buffer.ErrReattached):
		p.mGets.Inc()
	case errors.Is(err, buffer.ErrPeerFailed):
		p.mPeerFailed.Inc()
	}
}

// noteGetBatch is noteGet for a whole batch: the nil-handle branch runs
// once and n successes land in one Add, so the per-item cost of metrics
// on the batch path is zero — this is also what reclaims the metrics-on
// overhead regression on high-rate consumers.
func (p *InPort) noteGetBatch(n int, blocked time.Duration, err error) {
	if p.mGets == nil {
		return
	}
	if blocked > 0 {
		p.mGetBlocked.Observe(blocked)
	}
	if n > 0 {
		p.mGets.Add(int64(n))
	}
	if err != nil && errors.Is(err, buffer.ErrPeerFailed) {
		p.mPeerFailed.Inc()
	}
}

// notePut records a put outcome's failure class (ErrPeerFailed wakeups;
// successes are counted inside the buffer layer itself).
func (p *OutPort) notePut(err error) {
	if err != nil && errors.Is(err, buffer.ErrPeerFailed) {
		p.mPeerFailed.Inc()
	}
}

// setSTPGauge publishes an STP value to a duration gauge, mapping
// Unknown to the NaN sentinel.
func setSTPGauge(g *metrics.Gauge, s core.STP) {
	if g == nil {
		return
	}
	if s.Known() {
		g.SetDuration(s.Duration())
	} else {
		g.SetUnknown()
	}
}

// publish refreshes the sampler-owned gauge families from a snapshot.
// No-op when metrics are disabled. Counters are event-incremented
// elsewhere; only gauges (point-in-time values) are written here, so
// concurrent publishes are harmless last-writer-wins races on values
// that are themselves instantaneous.
func (rt *Runtime) publish(snap Snapshot) {
	if rt.opts.Metrics == nil {
		return
	}
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		ni := rt.nodeInst[ns.Node]
		if ni == nil {
			continue
		}
		setSTPGauge(ni.current, ns.Current)
		setSTPGauge(ni.compressed, ns.Compressed)
		setSTPGauge(ni.summary, ns.Summary)
		if ni.degraded != nil {
			ni.degraded.SetBool(ns.Degraded)
			if ns.Degraded {
				if ni.wasDegraded.CompareAndSwap(false, true) {
					ni.degradedT.Inc()
				}
			} else {
				ni.wasDegraded.Store(false)
			}
		}
	}
	for i := range snap.Buffers {
		bs := &snap.Buffers[i]
		bi := rt.bufInst[bs.Node]
		if bi == nil {
			continue
		}
		bi.items.Set(int64(bs.Items))
		bi.bytes.Set(bs.Bytes)
	}
	for i := range snap.Threads {
		th := &snap.Threads[i]
		t := rt.threadByName[th.Name]
		if t == nil {
			continue
		}
		t.tm.heartbeatAge.SetDuration(th.HeartbeatAge)
		t.tm.stalled.SetBool(th.Stalled)
	}
}
