// Package runtime is the Stampede-style streaming runtime the paper's
// experiments run on: it binds the task graph (package graph), timestamped
// buffers (package buffer and its backends channel, queue, and remote),
// garbage collection (package gc), the ARU feedback controller (package
// core), the simulated cluster substrate (package transport), and the
// measurement infrastructure (package trace) behind one programming
// surface.
//
// An application is built in two phases. First the task graph is declared:
// AddThread / AddChannel / AddQueue / AddRemoteChannel create nodes, and
// Thread.Input / Thread.Output wire connections (mirroring Stampede's
// spd_chan_alloc and attach calls, where the ARU dependency parameter also
// lives). Then Start materializes every buffer endpoint through the
// backend registry, spawns one goroutine per thread, and the declared body
// runs a loop of get → compute → put → Sync, where Sync is the paper's
// periodicity_sync(): it closes the iteration, measures the current-STP,
// feeds the ARU controller, and paces source threads to their summary-STP.
package runtime

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/channel"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/queue"
	_ "repro/internal/ring" // registers the "ring" backend for auto-upgrade and AddRing
	"repro/internal/trace"
	"repro/internal/transport"
)

// Options configures a Runtime.
type Options struct {
	// Clock drives all timing; nil means a real clock.
	Clock clock.Clock
	// Cluster is the simulated machine room; nil means a single host
	// with no bus accounting.
	Cluster *transport.Cluster
	// Collector is the GC strategy shared by all channels; nil means
	// DGC, the paper's configuration.
	Collector gc.Collector
	// ARU selects the feedback policy (off / min / max / custom).
	ARU core.Policy
	// Recorder receives trace events; nil disables tracing.
	Recorder *trace.Recorder
	// PressureBytes, when positive, enables the memory-pressure model:
	// every bus charge on a host is scaled by
	// 1 + liveBytes(host)/PressureBytes, so hosts drowning in buffered
	// items pay more per byte moved. Zero disables the model.
	PressureBytes int64
	// StallTTL, when positive, enables the stall watchdog: a running
	// thread whose heartbeat (stamped by each Ctx.Sync) is older than
	// the TTL is flagged stalled in Health and WriteStatus. Per-thread
	// WithStallTTL overrides the runtime-wide value.
	StallTTL time.Duration
	// StallCheckEvery is the watchdog sweep interval; zero derives a
	// quarter of the smallest TTL in use.
	StallCheckEvery time.Duration
	// OnStall, if non-nil, is called once per stall episode with the
	// thread's name and heartbeat age. It runs on the watchdog
	// goroutine; keep it fast.
	OnStall func(thread string, age time.Duration)
	// Metrics, when non-nil, enables the live metrics registry: the
	// controller, buffer, remote, and supervision layers register their
	// instruments against it at Start and each enabled event costs O(1)
	// atomic operations. Nil (the default) disables metrics entirely —
	// the hot paths pay one predictable branch per event and keep their
	// allocation pins (put = 1, get = 0).
	Metrics *metrics.Registry
	// MetricsAddr, when non-empty, serves the observability HTTP
	// endpoint on that address (":0" for an ephemeral port, reported by
	// Runtime.MetricsAddr): GET /metrics (Prometheus text),
	// /metrics.json, /status (WriteStatus), /health (JSON). Setting it
	// implies metrics: New creates a registry when Metrics is nil.
	MetricsAddr string
	// SampleEvery is the periodic sampler interval refreshing the
	// gauge-class families (occupancy, STP, heartbeat age). Zero means
	// DefaultSampleEvery when metrics are enabled; negative disables the
	// sampler goroutine (Snapshot and scrapes still refresh on demand).
	SampleEvery time.Duration
	// ControlLoops are background control goroutines Start spawns
	// alongside the stall watchdog and the metrics sampler: each runs
	// until stop closes and is joined by Wait (wg- and clock-registrar-
	// accounted exactly like the built-in loops). The elastic scheduler
	// (internal/sched, installed via the facade's WithElastic) plugs in
	// through this hook; the runtime core stays policy-free. Empty (the
	// default) spawns nothing.
	ControlLoops []ControlLoop
}

// ControlLoop is one long-lived background goroutine under the
// runtime's lifecycle (Options.ControlLoops): spawned by Start, told to
// exit when stop closes, joined by Wait. It may call any concurrency-
// safe Runtime method — Snapshot for sensing, SpawnReplica and
// RetireReplica for actuation.
type ControlLoop func(rt *Runtime, stop <-chan struct{})

// Runtime is one Stampede application instance.
type Runtime struct {
	opts Options
	clk  clock.Clock
	g    *graph.Graph

	mu      sync.Mutex
	started bool
	stopped bool
	threads []*Thread

	// buffers holds every materialized endpoint, keyed by node;
	// operations dispatch through the buffer.Buffer interface — the
	// runtime has no per-backend code paths.
	buffers map[graph.NodeID]buffer.Buffer

	// refs are the endpoint descriptors indexed at declaration time so
	// Start materializes buffers with O(1) lookups instead of rescanning
	// every thread's ports per node.
	refs map[graph.NodeID]*BufferRef

	// pool recycles buffer.Item allocations across every endpoint in the
	// runtime: an Item freed by one buffer's reclamation is the Item the
	// next Ctx.Put reuses, so the steady-state put path allocates nothing.
	pool *buffer.ItemPool

	ctrl *core.Controller

	// hostLive tracks live buffered bytes per host for the
	// memory-pressure model.
	hostLive []atomic.Int64

	wg sync.WaitGroup

	// failures collects every permanent thread failure (no cap, no
	// drops); Wait joins and reports them. stopCh is closed by Stop so
	// long-lived supervision goroutines (the stall watchdog) terminate.
	failMu   sync.Mutex
	failures []error
	waitOnce sync.Once
	waitErr  error
	stopCh   chan struct{}

	// Graceful-drain state (see drain.go). draining is read by the
	// supervisor (no restarts during drain) and the stall watchdog
	// (threads flushing a drain are not stalls); drainMu serializes
	// Drain calls and guards the cached report.
	draining    atomic.Bool
	drainMu     sync.Mutex
	drainDone   bool
	drainReport DrainReport
	mDrainDur   *metrics.Histogram
	mDraining   *metrics.Gauge

	// Live-metrics state: the node/buffer instrument maps are resolved at
	// Start (immutable afterwards; read lock-free by the sampler), while
	// threadByName also admits elastic replicas after Start and is
	// guarded by instMu. httpLn/httpSrv are the opt-in observability HTTP
	// server.
	nodeInst     map[graph.NodeID]*nodeInstruments
	bufInst      map[graph.NodeID]*bufferInstruments
	instMu       sync.Mutex
	threadByName map[string]*Thread
	httpLn       net.Listener
	httpSrv      *http.Server

	// Elastic replication state (see replica.go): live replicas and the
	// monotone slot sequence, both keyed by the stage's node id. Guarded
	// by replMu; when both locks are needed the order is rt.mu → replMu.
	replMu   sync.Mutex
	replicas map[graph.NodeID][]*Thread
	replSeq  map[graph.NodeID]int
}

// New creates an empty runtime.
func New(opts Options) *Runtime {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.Collector == nil {
		opts.Collector = gc.NewDeadTimestamp()
	}
	if opts.MetricsAddr != "" && opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	rt := &Runtime{
		opts:    opts,
		clk:     opts.Clock,
		g:       graph.New(),
		buffers: make(map[graph.NodeID]buffer.Buffer),
		refs:    make(map[graph.NodeID]*BufferRef),
		pool:    buffer.NewItemPool(),
		stopCh:  make(chan struct{}),
	}
	hosts := 1
	if opts.Cluster != nil {
		hosts = opts.Cluster.Hosts()
	}
	rt.hostLive = make([]atomic.Int64, hosts)
	return rt
}

// addLive adjusts a host's live buffered byte count.
func (rt *Runtime) addLive(host int, delta int64) {
	if host >= 0 && host < len(rt.hostLive) {
		rt.hostLive[host].Add(delta)
	}
}

// pressureFactor returns the memory-pressure cost multiplier for a host.
func (rt *Runtime) pressureFactor(host int) float64 {
	if rt.opts.PressureBytes <= 0 || host < 0 || host >= len(rt.hostLive) {
		return 1
	}
	return 1 + float64(rt.hostLive[host].Load())/float64(rt.opts.PressureBytes)
}

// Clock returns the runtime's clock.
func (rt *Runtime) Clock() clock.Clock { return rt.clk }

// Graph returns the application task graph.
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Controller returns the ARU controller; nil before Start.
func (rt *Runtime) Controller() *core.Controller { return rt.ctrl }

// Recorder returns the trace recorder (possibly nil).
func (rt *Runtime) Recorder() *trace.Recorder { return rt.opts.Recorder }

// Metrics returns the live metrics registry (nil when metrics are
// disabled).
func (rt *Runtime) Metrics() *metrics.Registry { return rt.opts.Metrics }

// hostCount returns the number of hosts available for placement.
func (rt *Runtime) hostCount() int {
	if rt.opts.Cluster == nil {
		return 1
	}
	return rt.opts.Cluster.Hosts()
}

// bus returns host h's bus (nil without a cluster).
func (rt *Runtime) bus(h int) *transport.Bus {
	if rt.opts.Cluster == nil {
		return nil
	}
	return rt.opts.Cluster.Bus(transport.HostID(h))
}

// transfer charges the network for moving size bytes between hosts.
func (rt *Runtime) transfer(from, to int, size int64) {
	if rt.opts.Cluster == nil || from == to {
		return
	}
	rt.opts.Cluster.Network().Transfer(transport.HostID(from), transport.HostID(to), size)
}

func (rt *Runtime) checkBuilding(what string) error {
	if rt.started {
		return fmt.Errorf("runtime: cannot %s after Start", what)
	}
	return nil
}

func (rt *Runtime) checkHost(host int) error {
	if host < 0 || host >= rt.hostCount() {
		return fmt.Errorf("runtime: host %d out of range [0,%d)", host, rt.hostCount())
	}
	return nil
}

// addBuffer declares a buffer node backed by the named registered
// backend. Backend capabilities are captured on the ref immediately, so
// wiring-time checks (windowed input on a FIFO queue, say) fail before
// Start.
func (rt *Runtime) addBuffer(kind graph.Kind, backend, name string, host int, opts []BufferOption) (*BufferRef, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err := rt.checkBuilding("add " + backend); err != nil {
		return nil, err
	}
	if err := rt.checkHost(host); err != nil {
		return nil, err
	}
	be, ok := buffer.Lookup(backend)
	if !ok {
		return nil, fmt.Errorf("runtime: unknown buffer backend %q (registered: %v)", backend, buffer.Names())
	}
	id, err := rt.g.AddNode(kind, name, host)
	if err != nil {
		return nil, err
	}
	ref := &BufferRef{rt: rt, id: id, name: name, host: host, backend: backend, caps: be.Caps}
	for _, o := range opts {
		o(ref)
	}
	rt.refs[id] = ref
	return ref, nil
}

// AddChannel declares a channel placed on the given host. Stampede places
// channels on the host of their producer (§5); the caller is responsible
// for following that convention (helpers in package bench do).
func (rt *Runtime) AddChannel(name string, host int, copts ...ChannelOption) (*ChannelRef, error) {
	return rt.addBuffer(graph.KindChannel, "channel", name, host, copts)
}

// MustAddChannel is AddChannel that panics on error.
func (rt *Runtime) MustAddChannel(name string, host int, copts ...ChannelOption) *ChannelRef {
	ref, err := rt.AddChannel(name, host, copts...)
	if err != nil {
		panic(err)
	}
	return ref
}

// AddQueue declares a queue placed on the given host.
func (rt *Runtime) AddQueue(name string, host int, qopts ...QueueOption) (*QueueRef, error) {
	return rt.addBuffer(graph.KindQueue, "queue", name, host, qopts)
}

// MustAddQueue is AddQueue that panics on error.
func (rt *Runtime) MustAddQueue(name string, host int, qopts ...QueueOption) *QueueRef {
	ref, err := rt.AddQueue(name, host, qopts...)
	if err != nil {
		panic(err)
	}
	return ref
}

// AddRing declares a lock-free ring buffer placed on the given host: the
// high-throughput FIFO backend. A positive capacity is required
// (WithQueueCapacity; rounded up to a power of two) and the runtime must
// use a real clock — the ring's spin-then-park waits cannot participate
// in a discrete-event clock. Most applications never call this: Start
// upgrades eligible bounded queues to rings automatically.
func (rt *Runtime) AddRing(name string, host int, qopts ...QueueOption) (*QueueRef, error) {
	return rt.addBuffer(graph.KindQueue, "ring", name, host, qopts)
}

// MustAddRing is AddRing that panics on error.
func (rt *Runtime) MustAddRing(name string, host int, qopts ...QueueOption) *QueueRef {
	ref, err := rt.AddRing(name, host, qopts...)
	if err != nil {
		panic(err)
	}
	return ref
}

// AddRemoteChannel declares a channel endpoint whose storage is a
// channel hosted by a remote server (package remote) at addr, mounted
// into the task graph through the "remote" backend: puts and gets cross
// real TCP, and summary-STP feedback rides the wire in both directions.
// The hosted channel's name defaults to this endpoint's name
// (WithRemoteName overrides). The process must import the remote backend
// package for the registration to exist; a real clock is required
// (enforced at Start).
func (rt *Runtime) AddRemoteChannel(name string, host int, addr string, copts ...ChannelOption) (*ChannelRef, error) {
	ref, err := rt.addBuffer(graph.KindChannel, "remote", name, host, copts)
	if err != nil {
		return nil, err
	}
	ref.addr = addr
	return ref, nil
}

// MustAddRemoteChannel is AddRemoteChannel that panics on error.
func (rt *Runtime) MustAddRemoteChannel(name string, host int, addr string, copts ...ChannelOption) *ChannelRef {
	ref, err := rt.AddRemoteChannel(name, host, addr, copts...)
	if err != nil {
		panic(err)
	}
	return ref
}

// Body is a thread's task loop. It runs on its own goroutine after Start
// and should return nil when ctx.Stopped() becomes true or a get/put
// reports shutdown (errors.Is(err, ErrShutdown)).
type Body func(ctx *Ctx) error

// AddThread declares a computation thread on the given host. Options
// configure its supervision: WithRestartOnFailure enables restarts on a
// backoff schedule, WithStallTTL a per-thread watchdog TTL. Without
// options the thread is supervised with RestartNever semantics — a
// panic or non-shutdown error return is a permanent failure (contained,
// propagated to peers, and reported by Wait; never a process crash).
func (rt *Runtime) AddThread(name string, host int, body Body, topts ...ThreadOption) (*Thread, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err := rt.checkBuilding("add thread"); err != nil {
		return nil, err
	}
	if err := rt.checkHost(host); err != nil {
		return nil, err
	}
	if body == nil {
		return nil, fmt.Errorf("runtime: thread %q has nil body", name)
	}
	id, err := rt.g.AddNode(graph.KindThread, name, host)
	if err != nil {
		return nil, err
	}
	th := &Thread{rt: rt, id: id, name: name, host: host, body: body}
	for _, o := range topts {
		o(th)
	}
	rt.threads = append(rt.threads, th)
	return th, nil
}

// MustAddThread is AddThread that panics on error.
func (rt *Runtime) MustAddThread(name string, host int, body Body, topts ...ThreadOption) *Thread {
	th, err := rt.AddThread(name, host, body, topts...)
	if err != nil {
		panic(err)
	}
	return th
}

// runtimeFeedback is the summary-STP exchange hook handed to wire-backed
// backends: it reads the consuming thread's summary for outgoing gets and
// delivers the remote buffer's summary into the controller.
type runtimeFeedback struct {
	rt   *Runtime
	node graph.NodeID
}

func (f *runtimeFeedback) ConsumerSummary(conn graph.ConnID) core.STP {
	if f.rt.ctrl == nil {
		return core.Unknown
	}
	return f.rt.ctrl.ConsumerSummary(conn)
}

func (f *runtimeFeedback) ObserveBufferSummary(s core.STP) {
	if f.rt.ctrl == nil {
		return
	}
	f.rt.ctrl.SetRemoteSummary(f.node, s)
}

// ringEligibleLocked reports whether a declared queue can be materialized
// as the lock-free ring without changing observable semantics: bounded
// with a power-of-two capacity (the ring rounds sizes up, which would
// loosen a non-power-of-two bound's blocking behaviour), exactly one
// consumer connection with the default window (the ring is SPSC/MPSC),
// a real clock (the ring's spin waits cannot participate in a
// discrete-event clock), and the ring backend registered.
func (rt *Runtime) ringEligibleLocked(n *graph.Node, ref *BufferRef, windows map[graph.ConnID]int) bool {
	if ref.backend != "queue" {
		return false
	}
	if ref.capacity <= 0 || ref.capacity&(ref.capacity-1) != 0 {
		return false
	}
	if len(n.Out) != 1 || windows[n.Out[0]] > 1 {
		return false
	}
	if _, isReg := rt.clk.(clock.Registrar); isReg {
		return false
	}
	_, ok := buffer.Lookup("ring")
	return ok
}

// materializeLocked builds the endpoint for one buffer node through the
// backend registry and attaches its producer and consumer connections.
func (rt *Runtime) materializeLocked(n *graph.Node, windows map[graph.ConnID]int) error {
	ref := rt.refs[n.ID]
	if ref == nil {
		return fmt.Errorf("runtime: buffer node %q has no endpoint descriptor", n.Name)
	}
	if ref.caps.Remote {
		if _, isReg := rt.clk.(clock.Registrar); isReg {
			return fmt.Errorf("runtime: remote endpoint %q requires a real clock: a discrete-event clock cannot observe network blocking", n.Name)
		}
		// The wire is authoritative for this node's summary-STP; the
		// local fold must not overwrite it. Staleness decay makes that
		// authority expire: past the TTL without fresh feedback the
		// summary fades back to Unknown, so producers stop pacing to a
		// dead peer.
		ttl := ref.remote.StaleTTL
		if ttl == 0 {
			ttl = core.DefaultStaleTTL
		} else if ttl < 0 {
			ttl = 0
		}
		rt.ctrl.MarkRemote(n.ID, rt.clk, ttl)
	}
	if rt.ringEligibleLocked(n, ref, windows) {
		// Upgrade the bounded queue to the lock-free ring: same FIFO
		// discipline and capability surface, an order of magnitude more
		// throughput. The ref records the materialized backend so status
		// output and tests can observe the upgrade.
		ref.backend = "ring"
	}
	host, node := n.Host, n.ID
	b, err := buffer.New(ref.backend, buffer.Config{
		Name:       n.Name,
		Tenant:     ref.tenant,
		Node:       node,
		Clock:      rt.clk,
		Collector:  rt.opts.Collector,
		Capacity:   ref.capacity,
		Addr:       ref.addr,
		RemoteName: ref.remoteName,
		Remote:     ref.remote,
		Metrics:    rt.opts.Metrics,
		Pool:       rt.pool,
		Feedback:   &runtimeFeedback{rt: rt, node: node},
		OnFree: func(it *buffer.Item, at time.Duration) {
			rt.addLive(host, -it.Size)
			rt.opts.Recorder.Append(trace.Event{Kind: trace.EvFree, At: at, Item: it.ID, Node: node})
		},
	})
	if err != nil {
		return fmt.Errorf("runtime: materialize %q (backend %q): %w", n.Name, ref.backend, err)
	}
	for _, cid := range n.In {
		if err := b.AttachProducer(cid); err != nil {
			return fmt.Errorf("runtime: attach producer to %q: %w", n.Name, err)
		}
	}
	for _, cid := range n.Out {
		w := windows[cid]
		if w < 1 {
			w = 1
		}
		if err := b.AttachConsumer(cid, w); err != nil {
			return fmt.Errorf("runtime: attach consumer to %q: %w", n.Name, err)
		}
	}
	rt.buffers[n.ID] = b
	return nil
}

// Start validates the graph, materializes every buffer endpoint through
// the backend registry, builds the ARU controller, and spawns every
// thread goroutine.
func (rt *Runtime) Start() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return errors.New("runtime: already started")
	}
	if err := rt.g.Validate(); err != nil {
		return err
	}

	// The controller shares the runtime clock so the estimator stage (when
	// plugged in) timestamps observations in manual/virtual time under
	// tests and simulations.
	rt.ctrl = core.NewControllerOn(rt.g, rt.opts.ARU, rt.clk)

	// Sliding-window widths per consumer connection.
	windows := map[graph.ConnID]int{}
	for _, th := range rt.threads {
		for _, p := range th.ins {
			if p.window > 1 {
				windows[p.conn] = p.window
			}
		}
	}

	// Materialize buffers.
	var mErr error
	rt.g.Nodes(func(n *graph.Node) {
		if mErr != nil || n.Kind == graph.KindThread {
			return
		}
		mErr = rt.materializeLocked(n, windows)
	})
	if mErr == nil && rt.opts.MetricsAddr != "" {
		mErr = rt.startMetricsServerLocked()
	}
	if mErr != nil {
		// Unwind endpoints already materialized (remote attaches hold
		// TCP connections).
		for id, b := range rt.buffers {
			b.Close()
			delete(rt.buffers, id)
		}
		return mErr
	}
	rt.registerInstrumentsLocked()

	rt.started = true
	reg, hasReg := rt.clk.(clock.Registrar)
	for _, th := range rt.threads {
		th.prepare()
		rt.wg.Add(1)
		if hasReg {
			reg.Add(1) // registered before spawn so the clock never sees a false quiescence
		}
		go func(th *Thread) {
			defer rt.wg.Done()
			if hasReg {
				defer reg.Add(-1)
			}
			th.supervise()
		}(th)
	}
	if every, enabled := rt.watchdogPlan(); enabled {
		rt.wg.Add(1)
		if hasReg {
			reg.Add(1)
		}
		go rt.watchdog(every)
	}
	if every, enabled := rt.samplePlan(); enabled {
		rt.wg.Add(1)
		if hasReg {
			reg.Add(1)
		}
		go rt.sampler(every)
	}
	for _, cl := range rt.opts.ControlLoops {
		rt.wg.Add(1)
		if hasReg {
			reg.Add(1)
		}
		go func(cl ControlLoop) {
			defer rt.wg.Done()
			if hasReg {
				defer reg.Add(-1)
			}
			cl(rt, rt.stopCh)
		}(cl)
	}
	return nil
}

// Stop closes every buffer, which unblocks all waiting threads; their
// bodies observe ErrShutdown and return. Remaining buffered items are
// drained so their storage is accounted as reclaimed. Stop is idempotent.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if !rt.started || rt.stopped {
		rt.mu.Unlock()
		return
	}
	rt.stopped = true
	close(rt.stopCh)
	buffers := make([]buffer.Buffer, 0, len(rt.buffers))
	for _, b := range rt.buffers {
		buffers = append(buffers, b)
	}
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()

	for _, th := range threads {
		th.requestStop()
	}
	for _, b := range buffers {
		b.Close()
	}
	for _, b := range buffers {
		b.Drain()
	}
	rt.closeMetricsServer()
}

// Stopped reports whether Stop has been called.
func (rt *Runtime) Stopped() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stopped
}

// Wait blocks until every supervision goroutine has returned and
// reports every permanent thread failure, joined. It is idempotent:
// repeated calls block the same way and return the same error.
func (rt *Runtime) Wait() error {
	rt.wg.Wait()
	rt.waitOnce.Do(func() {
		rt.failMu.Lock()
		rt.waitErr = errors.Join(rt.failures...)
		rt.failMu.Unlock()
	})
	return rt.waitErr
}

// RunFor starts the runtime (if not yet started), lets it execute for d of
// runtime-clock time, stops it, and waits for quiescence.
func (rt *Runtime) RunFor(d time.Duration) error {
	rt.mu.Lock()
	started := rt.started
	rt.mu.Unlock()
	if !started {
		if err := rt.Start(); err != nil {
			return err
		}
	}
	// The calling goroutine participates in the clock for the duration of
	// its sleep, so a discrete-event clock can account for it.
	if reg, ok := rt.clk.(clock.Registrar); ok {
		reg.Add(1)
		rt.clk.Sleep(d)
		reg.Add(-1)
	} else {
		rt.clk.Sleep(d)
	}
	rt.Stop()
	return rt.Wait()
}

// Buffer returns the materialized endpoint for a ref (post-Start).
func (rt *Runtime) Buffer(ref *BufferRef) buffer.Buffer {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.buffers[ref.id]
}

// Channel returns the materialized channel for a ref (post-Start), or nil
// if the ref's backend is not the in-process channel.
func (rt *Runtime) Channel(ref *ChannelRef) *channel.Channel {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ch, _ := rt.buffers[ref.id].(*channel.Channel)
	return ch
}

// Queue returns the materialized queue for a ref (post-Start), or nil if
// the ref's backend is not the in-process queue — including a declared
// queue that Start upgraded to the ring backend. Code that must work
// across FIFO backends should use Buffer and the interface surface.
func (rt *Runtime) Queue(ref *QueueRef) *queue.Queue {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	q, _ := rt.buffers[ref.id].(*queue.Queue)
	return q
}

// WriteStatus renders a point-in-time view of the running application:
// the ARU controller's per-node state (current-STP, compressed
// backwardSTP, summary), per-buffer occupancy, and the thread
// supervision table. It answers the operational question "why is this
// stage running at this period?".
//
// Everything is rendered from one Runtime.Snapshot, so the text view
// can never disagree with the JSON and Prometheus outputs, the buffers
// are queried without rt.mu held (no lock nesting against the buffers'
// own locks), and column widths are computed from the snapshot so long
// node and thread names never truncate or misalign.
func (rt *Runtime) WriteStatus(w io.Writer) {
	rt.writeStatus(w, rt.Snapshot())
}

// fmtSTP renders an STP cell ("-" for Unknown).
func fmtSTP(s core.STP) string {
	if !s.Known() {
		return "-"
	}
	return s.Duration().Round(time.Millisecond).String()
}

// fmtVec renders a backwardSTP vector cell.
func fmtVec(vec []core.STP) string {
	out := "["
	for i, s := range vec {
		if i > 0 {
			out += " "
		}
		out += fmtSTP(s)
	}
	return out + "]"
}

// nameColumn returns the width of a left-aligned name column: the
// longest of the header and every name, so no name is ever truncated.
func nameColumn(header string, names []string) int {
	w := len(header)
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}

// writeStatus renders a snapshot as the status text.
func (rt *Runtime) writeStatus(w io.Writer, snap Snapshot) {
	if snap.ARUEnabled {
		names := make([]string, len(snap.Nodes))
		for i, ns := range snap.Nodes {
			names[i] = ns.Name
		}
		nw := nameColumn("node", names)
		fmt.Fprintln(w, "ARU controller state:")
		fmt.Fprintf(w, "%-*s %-8s %-5s %12s %12s %12s  %s\n",
			nw, "node", "kind", "op", "current", "compressed", "summary", "backwardSTP")
		for _, ns := range snap.Nodes {
			extra := ""
			if ns.Degraded {
				extra = "  (degraded)"
			}
			if es := ns.Estimator; es != nil {
				extra += fmt.Sprintf("  %s[target=%s est=%s trend=%s phase=%s backoffs=%d speedups=%d]",
					es.Name, fmtSTP(es.Target), fmtSTP(es.Estimate), es.Trend, es.Phase, es.Backoffs, es.Speedups)
			}
			fmt.Fprintf(w, "%-*s %-8s %-5s %12s %12s %12s  %s%s\n",
				nw, ns.Name, ns.Kind.String(), ns.Compressor,
				fmtSTP(ns.Current), fmtSTP(ns.Compressed), fmtSTP(ns.Summary),
				fmtVec(ns.Vector), extra)
		}
		fmt.Fprintln(w)
	}

	bnames := make([]string, len(snap.Buffers))
	for i, b := range snap.Buffers {
		bnames[i] = b.Name
	}
	bw := nameColumn("buffer", bnames)
	withHW := rt.opts.Metrics != nil
	if withHW {
		fmt.Fprintf(w, "%-*s %8s %12s %8s %8s %9s %12s\n", bw, "buffer", "items", "bytes", "puts", "frees", "hw-items", "hw-bytes")
	} else {
		fmt.Fprintf(w, "%-*s %8s %12s %8s %8s\n", bw, "buffer", "items", "bytes", "puts", "frees")
	}
	for _, b := range snap.Buffers {
		if withHW {
			fmt.Fprintf(w, "%-*s %8d %12d %8d %8d %9d %12d\n",
				bw, b.Name, b.Items, b.Bytes, b.Puts, b.Frees, b.HighWaterItems, b.HighWaterBytes)
		} else {
			fmt.Fprintf(w, "%-*s %8d %12d %8d %8d\n", bw, b.Name, b.Items, b.Bytes, b.Puts, b.Frees)
		}
	}

	tnames := make([]string, len(snap.Threads))
	for i, th := range snap.Threads {
		tnames[i] = th.Name
	}
	tw := nameColumn("thread", tnames)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-*s %-11s %8s %10s %7s  %s\n", tw, "thread", "state", "restarts", "beat-age", "stalled", "last-failure")
	for _, th := range snap.Threads {
		failure := "-"
		if th.LastFailure != nil {
			failure = th.LastFailure.Error()
		}
		fmt.Fprintf(w, "%-*s %-11s %8d %10s %7v  %s\n",
			tw, th.Name, th.State, th.Restarts, th.HeartbeatAge.Round(time.Millisecond), th.Stalled, failure)
	}

	// Elastic replication: rendered only when some stage is replicated,
	// so the default (non-elastic) status output stays byte-identical.
	if len(snap.Replicas) > 0 {
		stages := make([]string, 0, len(snap.Replicas))
		for s := range snap.Replicas {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		sw := nameColumn("stage", stages)
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-*s %9s\n", sw, "stage", "replicas")
		for _, s := range stages {
			fmt.Fprintf(w, "%-*s %9d\n", sw, s, snap.Replicas[s])
		}
	}
}

// TotalOccupancy sums live items and bytes over every buffer endpoint.
func (rt *Runtime) TotalOccupancy() (items int, bytes int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, b := range rt.buffers {
		n, bts := b.Occupancy()
		items += n
		bytes += bts
	}
	return items, bytes
}
