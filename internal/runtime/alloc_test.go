package runtime

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vt"
)

// The hot-path allocation pins. PR 1 drove the buffer hot path to its
// floor — a skip-free consume is 0 allocs/op and a put+consume round
// trip cost exactly the one Item the producer materialized. The item
// pool retired that last allocation: in steady state the Item freed by
// the consumer's get is the Item the producer's next put reuses, so a
// put+get round trip is now 0 allocs/op. A pure put backlog (nothing
// freed, so nothing recycled) still pays the 1 Item alloc per put —
// that residual pin is kept below. testing.AllocsPerRun divides total
// mallocs by runs (integer division), so amortized slice/map growth
// inside the backends does not disturb the pins.

const allocRuns = 500

// allocRuntime builds a tracing-free runtime (nil Recorder: the sharded
// trace recorder's amortized append costs are pinned separately in
// internal/trace) with ARU off and a real clock.
func allocRuntime() *Runtime {
	return New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
}

// TestCtxPutChannelAllocs pins the producer half in isolation: a pure
// put backlog recycles nothing, so each Ctx.Put pays exactly 1 alloc —
// the Item the pool must mint when its free list is empty.
func TestCtxPutChannelAllocs(t *testing.T) {
	rt := allocRuntime()
	ch := rt.MustAddChannel("C", 0)
	got := make(chan float64, 1)

	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		ts := vt.Timestamp(0)
		got <- testing.AllocsPerRun(allocRuns, func() {
			ts++
			if err := ctx.Put(out, ts, nil, 64); err != nil {
				panic(err)
			}
		})
		<-ctx.Done()
		return nil
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		<-ctx.Done() // attached but idle: nothing else allocates
		return nil
	})
	prod.MustOutput(ch)
	cons.MustInput(ch)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	allocs := <-got
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if allocs != 1 {
		t.Fatalf("Ctx.Put on channel: %.0f allocs/op, want exactly 1 (the Item)", allocs)
	}
}

// TestCtxPutGetChannelAllocs pins a full produce/consume round trip over
// a channel through the unified dispatch at the pooled floor: the
// consumer measures (request, producer's Ctx.Put, Ctx.Get) and the
// round is 0 allocs/op — the Item freed by the previous round's get is
// the Item this round's put reuses.
func TestCtxPutGetChannelAllocs(t *testing.T) {
	rt := allocRuntime()
	ch := rt.MustAddChannel("C", 0)
	req := make(chan struct{})
	ack := make(chan struct{})
	got := make(chan float64, 1)

	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		ts := vt.Timestamp(0)
		for {
			select {
			case <-ctx.Done():
				return nil
			case _, ok := <-req:
				if !ok {
					return nil
				}
			}
			ts++
			if err := ctx.Put(out, ts, nil, 64); err != nil {
				return err
			}
			ack <- struct{}{}
		}
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		got <- testing.AllocsPerRun(allocRuns, func() {
			req <- struct{}{}
			<-ack
			if _, err := ctx.Get(in); err != nil {
				panic(err)
			}
		})
		close(req)
		<-ctx.Done()
		return nil
	})
	prod.MustOutput(ch)
	cons.MustInput(ch)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	allocs := <-got
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("channel put+get round trip: %.0f allocs/op, want 0 (pooled Item)", allocs)
	}
}

// TestCtxPutGetQueueAllocs pins both halves on the FIFO backend: Ctx.Put
// is exactly the 1 Item alloc, and draining the backlog through the
// unified Ctx.Get — which now also advances the queue's frees counter —
// is 0 allocs/op.
func TestCtxPutGetQueueAllocs(t *testing.T) {
	rt := allocRuntime()
	q := rt.MustAddQueue("Q", 0)
	putAllocs := make(chan float64, 1)
	getAllocs := make(chan float64, 1)
	start := make(chan struct{})

	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		ts := vt.Timestamp(0)
		putAllocs <- testing.AllocsPerRun(allocRuns, func() {
			ts++
			if err := ctx.Put(out, ts, nil, 64); err != nil {
				panic(err)
			}
		})
		<-ctx.Done()
		return nil
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		<-start // wait until the producer has gone quiet
		getAllocs <- testing.AllocsPerRun(allocRuns, func() {
			if _, err := ctx.Get(in); err != nil {
				panic(err)
			}
		})
		<-ctx.Done()
		return nil
	})
	prod.MustOutput(q)
	cons.MustInput(q)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	puts := <-putAllocs // producer finished all its puts
	close(start)
	gets := <-getAllocs
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if puts != 1 {
		t.Errorf("Ctx.Put on queue: %.0f allocs/op, want exactly 1 (the Item)", puts)
	}
	if gets != 0 {
		t.Errorf("Ctx.Get on queue: %.0f allocs/op, want 0", gets)
	}
}
