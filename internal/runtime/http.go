// The opt-in observability HTTP endpoint: Prometheus text exposition,
// a JSON variant of the same registry gather, the WriteStatus text
// view, and a JSON health view. All four derive from the same
// Snapshot/Gather pair, so a scrape, a poll, and a status dump can
// never disagree.
//
// The endpoint is off by default. Options.MetricsAddr enables it
// (":0" binds an ephemeral port, reported by Runtime.MetricsAddr); the
// listener is opened inside Start so a bad address fails the start
// instead of dying silently on a background goroutine.
package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// startMetricsServerLocked opens the listener on Options.MetricsAddr
// and spawns the HTTP server goroutine. Called from Start with rt.mu
// held; the server goroutine joins rt.wg so Wait observes its exit.
func (rt *Runtime) startMetricsServerLocked() error {
	ln, err := net.Listen("tcp", rt.opts.MetricsAddr)
	if err != nil {
		return fmt.Errorf("runtime: metrics listen %s: %w", rt.opts.MetricsAddr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", rt.handleProm)
	mux.HandleFunc("/metrics.json", rt.handleMetricsJSON)
	mux.HandleFunc("/status", rt.handleStatus)
	mux.HandleFunc("/health", rt.handleHealth)
	srv := &http.Server{Handler: mux}
	rt.httpLn = ln
	rt.httpSrv = srv
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		srv.Serve(ln) // returns once Stop closes the server
	}()
	return nil
}

// MetricsAddr returns the bound address of the observability HTTP
// listener, or "" when the endpoint is disabled (or before Start).
// With Options.MetricsAddr ":0" this is how tests and operators learn
// the ephemeral port.
func (rt *Runtime) MetricsAddr() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.httpLn == nil {
		return ""
	}
	return rt.httpLn.Addr().String()
}

// handleProm serves the Prometheus text exposition format. The scrape
// takes a fresh Snapshot first, so gauge families are current even if
// the periodic sampler has not fired since the last change.
func (rt *Runtime) handleProm(w http.ResponseWriter, _ *http.Request) {
	rt.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.opts.Metrics.WriteProm(w)
}

// handleMetricsJSON serves the same registry gather as JSON.
func (rt *Runtime) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	rt.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	rt.opts.Metrics.WriteJSON(w)
}

// handleStatus serves the WriteStatus text view.
func (rt *Runtime) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rt.WriteStatus(w)
}

// threadHealthJSON is the wire form of one ThreadHealth entry.
type threadHealthJSON struct {
	Name                string  `json:"name"`
	State               string  `json:"state"`
	Restarts            int     `json:"restarts"`
	Stalled             bool    `json:"stalled"`
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
	LastFailure         string  `json:"last_failure,omitempty"`
}

// handleHealth serves the supervision health snapshot as JSON.
func (rt *Runtime) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := rt.Health()
	out := struct {
		Healthy bool               `json:"healthy"`
		Threads []threadHealthJSON `json:"threads"`
	}{Healthy: h.Healthy(), Threads: make([]threadHealthJSON, 0, len(h.Threads))}
	for _, th := range h.Threads {
		tj := threadHealthJSON{
			Name:                th.Name,
			State:               th.State.String(),
			Restarts:            th.Restarts,
			Stalled:             th.Stalled,
			HeartbeatAgeSeconds: th.HeartbeatAge.Seconds(),
		}
		if th.LastFailure != nil {
			tj.LastFailure = th.LastFailure.Error()
		}
		out.Threads = append(out.Threads, tj)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// metricsShutdownGrace bounds how long closeMetricsServer waits for
// in-flight scrapes before severing their connections.
const metricsShutdownGrace = 2 * time.Second

// closeMetricsServer tears the HTTP endpoint down (idempotent; called
// from Stop and Drain). Graceful first: http.Server.Shutdown stops the
// listener and lets in-flight /metrics scrapes run to completion — a
// Prometheus scrape racing a Stop or Drain sees a complete exposition,
// not a severed connection. Connections that outlive the grace period
// are closed hard so shutdown never hangs on a stuck client.
func (rt *Runtime) closeMetricsServer() {
	rt.mu.Lock()
	srv := rt.httpSrv
	rt.httpSrv = nil
	rt.mu.Unlock()
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), metricsShutdownGrace)
	defer cancel()
	if srv.Shutdown(ctx) != nil {
		srv.Close()
	}
}
