package runtime

import (
	"repro/internal/buffer"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// BufferRef is an endpoint descriptor: it names a declared buffer node
// during graph construction and records which registered backend will
// materialize it at Start. The runtime is polymorphic over backends —
// ChannelRef and QueueRef are aliases of this one type, and every
// put/get dispatches through the buffer.Buffer interface — so a new
// backend (a wire-served remote channel, say) plugs in without touching
// the runtime layer.
type BufferRef struct {
	rt      *Runtime
	id      graph.NodeID
	name    string
	host    int
	backend string
	caps    buffer.Caps

	capacity   int
	addr       string
	remoteName string
	remote     buffer.RemoteTuning
	tenant     string
}

// ChannelRef names a declared channel during graph construction.
type ChannelRef = BufferRef

// QueueRef names a declared queue during graph construction.
type QueueRef = BufferRef

// ID returns the buffer's task-graph id.
func (b *BufferRef) ID() graph.NodeID { return b.id }

// Name returns the buffer's name.
func (b *BufferRef) Name() string { return b.name }

// Host returns the buffer's placement.
func (b *BufferRef) Host() int { return b.host }

// Backend returns the registered backend name ("channel", "queue",
// "remote", ...).
func (b *BufferRef) Backend() string { return b.backend }

// Caps returns the backend's capabilities, known at declaration time so
// port misuse surfaces while wiring.
func (b *BufferRef) Caps() buffer.Caps { return b.caps }

// Tenant returns the buffer's tenant/pipeline label ("" when unset).
func (b *BufferRef) Tenant() string { return b.tenant }

// BufferOption customizes a buffer declaration.
type BufferOption func(*BufferRef)

// ChannelOption customizes a channel declaration.
type ChannelOption = BufferOption

// QueueOption customizes a queue declaration.
type QueueOption = BufferOption

// WithCapacity bounds the buffer's live items; producers block while it
// is full. Zero (the default) is unbounded, Stampede's behaviour and the
// precondition for the paper's footprint measurements.
func WithCapacity(n int) BufferOption {
	return func(b *BufferRef) { b.capacity = n }
}

// WithQueueCapacity bounds the queue's occupancy. It is WithCapacity
// under its historical name.
func WithQueueCapacity(n int) BufferOption { return WithCapacity(n) }

// WithTenant tags the buffer with a tenant/pipeline name. The tag rides
// on every one of the buffer's metric instruments as a `tenant` label,
// so multi-tenant runs sharing one registry stay distinguishable on
// /metrics. It has no behavioural effect.
func WithTenant(name string) BufferOption {
	return func(b *BufferRef) { b.tenant = name }
}

// WithRemoteName maps the endpoint to a differently named channel hosted
// on the remote server (remote backends only); the default is the
// endpoint's own name.
func WithRemoteName(name string) BufferOption {
	return func(b *BufferRef) { b.remoteName = name }
}

// WithRemoteTuning sets a wire-backed endpoint's fault tolerance: call
// deadlines, redial backoff shape, per-operation retry budget, and the
// staleness TTL past which remote summary-STP feedback decays back to
// local pacing. The zero value means defaults everywhere; in-process
// backends ignore it.
func WithRemoteTuning(t buffer.RemoteTuning) BufferOption {
	return func(b *BufferRef) { b.remote = t }
}

// OutPort is a thread's output connection to a buffer.
type OutPort struct {
	thread *Thread
	ref    *BufferRef
	conn   graph.ConnID
	// buf is the materialized endpoint, resolved once at Start so the
	// hot path is a direct interface dispatch with no map lookups or
	// type assertions.
	buf buffer.Buffer

	// mPeerFailed is the port's live metric handle, resolved once at
	// Start like buf; nil (one branch, no work) when metrics are off.
	mPeerFailed *metrics.Counter
}

// Conn returns the port's connection id.
func (p *OutPort) Conn() graph.ConnID { return p.conn }

// Target returns the connected buffer's node id.
func (p *OutPort) Target() graph.NodeID { return p.ref.id }

// InPort is a thread's input connection from a buffer.
type InPort struct {
	thread *Thread
	ref    *BufferRef
	conn   graph.ConnID
	// window is the sliding-window width for windowed inputs (≥1).
	window int
	// buf is the materialized endpoint (see OutPort.buf).
	buf buffer.Buffer

	// Live metric handles, resolved once at Start like buf; all nil
	// (one branch, no work) when metrics are off.
	mGets       *metrics.Counter
	mGetBlocked *metrics.Histogram
	mPeerFailed *metrics.Counter
}

// Window returns the port's sliding-window width (1 for ordinary
// consumers).
func (p *InPort) Window() int {
	if p.window < 1 {
		return 1
	}
	return p.window
}

// Conn returns the port's connection id.
func (p *InPort) Conn() graph.ConnID { return p.conn }

// Source returns the connected buffer's node id.
func (p *InPort) Source() graph.NodeID { return p.ref.id }
