package runtime

import (
	"repro/internal/graph"
)

// endpoint is a buffer node a thread can connect to (channel or queue).
type endpoint interface {
	nodeID() graph.NodeID
	nodeHost() int
	nodeName() string
}

// ChannelRef names a declared channel during graph construction.
type ChannelRef struct {
	rt       *Runtime
	id       graph.NodeID
	name     string
	host     int
	capacity int
}

func (c *ChannelRef) nodeID() graph.NodeID { return c.id }
func (c *ChannelRef) nodeHost() int        { return c.host }
func (c *ChannelRef) nodeName() string     { return c.name }

// ID returns the channel's task-graph id.
func (c *ChannelRef) ID() graph.NodeID { return c.id }

// Name returns the channel's name.
func (c *ChannelRef) Name() string { return c.name }

// Host returns the channel's placement.
func (c *ChannelRef) Host() int { return c.host }

// ChannelOption customizes a channel declaration.
type ChannelOption func(*ChannelRef)

// WithCapacity bounds the channel's live items; producers block while it
// is full. Zero (the default) is unbounded, Stampede's behaviour and the
// precondition for the paper's footprint measurements.
func WithCapacity(n int) ChannelOption {
	return func(c *ChannelRef) { c.capacity = n }
}

// QueueRef names a declared queue during graph construction.
type QueueRef struct {
	rt       *Runtime
	id       graph.NodeID
	name     string
	host     int
	capacity int
}

func (q *QueueRef) nodeID() graph.NodeID { return q.id }
func (q *QueueRef) nodeHost() int        { return q.host }
func (q *QueueRef) nodeName() string     { return q.name }

// ID returns the queue's task-graph id.
func (q *QueueRef) ID() graph.NodeID { return q.id }

// Name returns the queue's name.
func (q *QueueRef) Name() string { return q.name }

// Host returns the queue's placement.
func (q *QueueRef) Host() int { return q.host }

// QueueOption customizes a queue declaration.
type QueueOption func(*QueueRef)

// WithQueueCapacity bounds the queue's occupancy.
func WithQueueCapacity(n int) QueueOption {
	return func(q *QueueRef) { q.capacity = n }
}

// OutPort is a thread's output connection to a buffer.
type OutPort struct {
	thread *Thread
	target endpoint
	conn   graph.ConnID
}

// Conn returns the port's connection id.
func (p *OutPort) Conn() graph.ConnID { return p.conn }

// Target returns the connected buffer's node id.
func (p *OutPort) Target() graph.NodeID { return p.target.nodeID() }

// InPort is a thread's input connection from a buffer.
type InPort struct {
	thread *Thread
	source endpoint
	conn   graph.ConnID
	// window is the sliding-window width for channel inputs (≥1).
	window int
}

// Window returns the port's sliding-window width (1 for ordinary
// consumers).
func (p *InPort) Window() int {
	if p.window < 1 {
		return 1
	}
	return p.window
}

// Conn returns the port's connection id.
func (p *InPort) Conn() graph.ConnID { return p.conn }

// Source returns the connected buffer's node id.
func (p *InPort) Source() graph.NodeID { return p.source.nodeID() }
