package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
)

// TestRestartJitterSeededPinned pins the jittered restart schedule a
// fixed policy seed produces: the supervisor's jitter stream is the
// shared xorshift64 generator split by thread name, so the exact delays
// are derivable outside the runtime and must be byte-identical across
// runs — the reproducibility the old wall-time math/rand fallback broke.
func TestRestartJitterSeededPinned(t *testing.T) {
	policy := RestartPolicy{
		Backoff:     backoff.Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.2},
		MaxRestarts: 3,
		Seed:        1719,
	}
	// Derive the expected schedule from the same split stream the
	// supervisor builds for a thread named "crashy".
	rng := newSupervisionRNG(policy.Seed, "crashy")
	var delays []time.Duration
	for n := 0; n < policy.MaxRestarts; n++ {
		delays = append(delays, policy.Backoff.Delay(n, rng.Float64()))
	}
	want := []time.Duration{0}
	for i, d := range delays {
		want = append(want, want[i]+d)
	}

	clk := clock.NewManual()
	rt := New(Options{Clock: clk})
	c1 := rt.MustAddChannel("C1", 0)
	var mu sync.Mutex
	var starts []time.Duration
	crashy := rt.MustAddThread("crashy", 0, func(ctx *Ctx) error {
		mu.Lock()
		starts = append(starts, clk.Now())
		mu.Unlock()
		panic("injected")
	}, WithRestartOnFailure(policy))
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		_, err := ctx.GetLatest(ctx.Ins()[0])
		return err
	})
	crashy.MustOutput(c1)
	sink.MustInput(c1)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	for _, d := range delays {
		waitManualSleepers(t, clk, 1)
		clk.Advance(d)
	}
	deadline := time.Now().Add(5 * time.Second)
	for crashy.State() != StateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("thread never failed permanently (state %v)", crashy.State())
		}
		time.Sleep(100 * time.Microsecond)
	}

	mu.Lock()
	got := append([]time.Duration(nil), starts...)
	mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("body ran %d times (%v), want %d (%v)", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("incarnation %d started at %v, want %v (jitter stream drifted)", i, got[i], want[i])
		}
	}
}

// TestSupervisionRNGStreams pins the jitter stream derivation: the same
// (seed, name) pair replays identically, sibling threads draw from
// decorrelated streams, and a zero policy seed honors the ARU_SEED
// environment override instead of wall time.
func TestSupervisionRNGStreams(t *testing.T) {
	a1 := newSupervisionRNG(42, "stage").Float64()
	a2 := newSupervisionRNG(42, "stage").Float64()
	if a1 != a2 {
		t.Fatalf("same (seed, name) diverged: %v vs %v", a1, a2)
	}
	if b := newSupervisionRNG(42, "stage#2").Float64(); b == a1 {
		t.Errorf("sibling names share a jitter stream (both drew %v)", a1)
	}

	t.Setenv("ARU_SEED", "9001")
	env := newSupervisionRNG(0, "stage").Float64()
	if exp := newSupervisionRNG(9001, "stage").Float64(); env != exp {
		t.Errorf("zero seed drew %v, want the ARU_SEED stream's %v", env, exp)
	}
	// And with no override at all, the zero seed still replays (the
	// shared generator maps 0 onto its fixed nonzero constant).
	t.Setenv("ARU_SEED", "")
	if z1, z2 := newSupervisionRNG(0, "s").Float64(), newSupervisionRNG(0, "s").Float64(); z1 != z2 {
		t.Errorf("unseeded stream not reproducible: %v vs %v", z1, z2)
	}
}
