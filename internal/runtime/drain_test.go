package runtime

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vt"
)

// drainPipe builds source → queue → sink on a real clock: the source
// floods `items` puts as fast as the queue accepts them, the sink pays
// `sinkCost` per item so a backlog actually accumulates for the drain
// to flush. Counters are atomics because the lifecycle tests race
// Stop/Drain/Wait against the running bodies.
type drainPipe struct {
	rt        *Runtime
	produced  atomic.Int64
	delivered atomic.Int64
	srcErr    atomic.Value // first non-nil put error the source saw
}

func buildDrainPipe(t *testing.T, items int, sinkCost time.Duration) *drainPipe {
	t.Helper()
	p := &drainPipe{rt: New(Options{SampleEvery: -1})}
	q := p.rt.MustAddQueue("Q", 0)
	src := p.rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		var ts vt.Timestamp
		for !ctx.Stopped() {
			if int(ts) >= items {
				ctx.Idle(time.Millisecond)
				continue
			}
			ts++
			if err := ctx.Put(out, ts, nil, 8); err != nil {
				p.srcErr.CompareAndSwap(nil, err)
				return nil
			}
			p.produced.Add(1)
		}
		return nil
	})
	sink := p.rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		for {
			if _, err := ctx.Get(in); err != nil {
				if errors.Is(err, ErrShutdown) {
					return nil
				}
				return err
			}
			p.delivered.Add(1)
			if sinkCost > 0 {
				ctx.Compute(sinkCost)
			}
		}
	})
	src.MustOutput(q)
	sink.MustInput(q)
	return p
}

// TestDrainFlushesBacklogZeroShed is the core drain contract: a clean
// (deadline-not-hit) drain flushes the whole backlog downstream and
// sheds exactly 0 items — produced == delivered, to the item.
func TestDrainFlushesBacklogZeroShed(t *testing.T) {
	p := buildDrainPipe(t, 400, 100*time.Microsecond)
	if err := p.rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let a backlog build
	rep := p.rt.Drain(10 * time.Second)
	if err := p.rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("drain missed a 10s deadline: %+v", rep)
	}
	if rep.Shed != 0 {
		t.Fatalf("clean drain shed %d items, want 0 (report %+v)", rep.Shed, rep)
	}
	if got, want := p.delivered.Load(), p.produced.Load(); got != want {
		t.Fatalf("conservation broke: produced %d, delivered %d, shed %d", want, got, rep.Shed)
	}
	// The snapshot agrees with the report, buffer by buffer.
	snap := p.rt.Snapshot()
	for _, bs := range snap.Buffers {
		if bs.Name == "Q" && (bs.DrainedItems != rep.Buffers[0].Drained || bs.ShedItems != rep.Buffers[0].Shed) {
			t.Fatalf("snapshot accounting %d/%d disagrees with report %+v", bs.DrainedItems, bs.ShedItems, rep.Buffers[0])
		}
	}
	if snap.Draining {
		t.Fatal("Draining still set after the drain completed")
	}
}

// TestDrainQuiescedSourcePutReturnsErrDraining pins the typed quiesce
// rejection: a source that keeps putting after Drain began observes
// ErrDraining (not a silent drop, not ErrShutdown) — and the rejected
// item never enters the ledger.
func TestDrainQuiescedSourcePutReturnsErrDraining(t *testing.T) {
	rt := New(Options{SampleEvery: -1})
	q := rt.MustAddQueue("Q", 0)
	var putErr atomic.Value
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		var ts vt.Timestamp
		// Deliberately ignores Stopped: the loop only exits when a put
		// fails, so the quiesce rejection is the only way out.
		for {
			ts++
			if err := ctx.Put(out, ts, nil, 8); err != nil {
				putErr.Store(err)
				return nil
			}
			ctx.Idle(200 * time.Microsecond)
		}
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		for {
			if _, err := ctx.Get(in); err != nil {
				if errors.Is(err, ErrShutdown) {
					return nil
				}
				return err
			}
		}
	})
	src.MustOutput(q)
	sink.MustInput(q)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	rep := rt.Drain(10 * time.Second)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	err, _ := putErr.Load().(error)
	if err == nil {
		t.Fatal("quiesced source never saw a put rejection")
	}
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("quiesced put returned %v, want ErrDraining", err)
	}
	if !rep.Clean || rep.Shed != 0 {
		t.Fatalf("drain not clean/zero-shed: %+v", rep)
	}
}

// TestDrainIdempotent: repeated Drain calls return the first report —
// concurrently and sequentially.
func TestDrainIdempotent(t *testing.T) {
	p := buildDrainPipe(t, 100, 50*time.Microsecond)
	if err := p.rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	reps := make([]DrainReport, 3)
	var wg sync.WaitGroup
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i] = p.rt.Drain(10 * time.Second)
		}(i)
	}
	wg.Wait()
	if err := p.rt.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reps); i++ {
		if !reflect.DeepEqual(reps[0], reps[i]) {
			t.Fatalf("drain not idempotent:\nfirst  %+v\nrepeat %+v", reps[0], reps[i])
		}
	}
	if again := p.rt.Drain(time.Millisecond); !reflect.DeepEqual(again, reps[0]) {
		t.Fatalf("post-Wait Drain returned a different report: %+v vs %+v", again, reps[0])
	}
}

// TestDrainAfterStop: Stop first is the abrupt path; a later Drain has
// nothing to flush and must say so — Clean=false, zero duration, with
// the stop-shed backlog visible in the accounting rather than lost.
func TestDrainAfterStop(t *testing.T) {
	p := buildDrainPipe(t, 300, 2*time.Millisecond) // slow sink: backlog at Stop
	if err := p.rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	p.rt.Stop()
	if err := p.rt.Wait(); err != nil {
		t.Fatal(err)
	}
	rep := p.rt.Drain(time.Second)
	if rep.Clean {
		t.Fatalf("Drain after Stop claimed a clean flush: %+v", rep)
	}
	if rep.Duration != 0 {
		t.Fatalf("Drain after Stop took %v, want 0 (nothing to do)", rep.Duration)
	}
	// Conservation via the abrupt path: whatever the sink missed was
	// explicitly shed by Stop's close, not silently dropped.
	if got, want := p.delivered.Load()+rep.Shed, p.produced.Load(); got != want {
		t.Fatalf("stop-shed accounting broke conservation: delivered+shed %d != produced %d", got, want)
	}
	if rep.Shed == 0 {
		t.Fatal("slow sink at Stop left no backlog: the test proves nothing")
	}
}

// TestDrainStopWaitHammer races Drain, Stop, Wait, and in-flight
// PutBatch against each other. Run under -race -count=2 in CI; every
// interleaving must terminate and keep the ledger exact:
// produced == delivered + shed, whichever call wins.
func TestDrainStopWaitHammer(t *testing.T) {
	for round := 0; round < 5; round++ {
		rt := New(Options{SampleEvery: -1})
		q := rt.MustAddQueue("Q", 0)
		var produced, delivered atomic.Int64
		src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
			out := ctx.Outs()[0]
			var ts vt.Timestamp
			specs := make([]PutSpec, 8)
			for !ctx.Stopped() {
				for i := range specs {
					ts++
					specs[i] = PutSpec{TS: ts, Size: 8}
				}
				applied, err := ctx.PutBatch(out, specs)
				produced.Add(int64(applied))
				if err != nil {
					return nil // quiesce or shutdown mid-batch: applied prefix is the truth
				}
				ctx.Idle(100 * time.Microsecond)
			}
			return nil
		})
		sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
			in := ctx.Ins()[0]
			for {
				if _, err := ctx.Get(in); err != nil {
					if errors.Is(err, ErrShutdown) {
						return nil
					}
					return err
				}
				delivered.Add(1)
			}
		})
		src.MustOutput(q)
		sink.MustInput(q)
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); time.Sleep(2 * time.Millisecond); rt.Drain(5 * time.Second) }()
		go func() { defer wg.Done(); time.Sleep(time.Duration(round) * time.Millisecond); rt.Stop() }()
		go func() { defer wg.Done(); rt.Wait() }()
		wg.Wait()
		if err := rt.Wait(); err != nil {
			t.Fatal(err)
		}

		var shed int64
		for _, bs := range rt.Snapshot().Buffers {
			shed += bs.ShedItems
		}
		if produced.Load() != delivered.Load()+shed {
			t.Fatalf("round %d: conservation broke under the race: produced %d != delivered %d + shed %d",
				round, produced.Load(), delivered.Load(), shed)
		}
	}
}

// TestDrainSuppressesRestarts: the supervisor treats drain as a
// terminal phase — a restart granted before the drain began is
// abandoned, and a body exiting with ErrDraining is a clean stop (no
// failure, no restart), exactly like ErrShutdown.
func TestDrainSuppressesRestarts(t *testing.T) {
	rt := New(Options{SampleEvery: -1})
	q := rt.MustAddQueue("Q", 0)
	feeder := rt.MustAddThread("feeder", 0, func(ctx *Ctx) error {
		for !ctx.Stopped() {
			ctx.Idle(time.Millisecond)
		}
		return nil
	})
	th := rt.MustAddThread("worker", 0, func(ctx *Ctx) error {
		ctx.Idle(time.Millisecond)
		return ErrDraining
	}, WithRestartOnFailure(RestartPolicy{MaxRestarts: 5}))
	feeder.MustOutput(q)
	th.MustInput(q)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the worker's ErrDraining exit land
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, th := range rt.Health().Threads {
		if th.Name != "worker" {
			continue
		}
		if th.Restarts != 0 {
			t.Fatalf("ErrDraining exit consumed a restart: %+v", th)
		}
		if th.State != StateStopped {
			t.Fatalf("ErrDraining exit left state %v, want StateStopped", th.State)
		}
	}

	// White-box: with the draining flag up, the restart scheduler
	// refuses outright even with budget to spare.
	rt2 := New(Options{SampleEvery: -1})
	th2 := rt2.MustAddThread("w2", 0, func(ctx *Ctx) error { return nil },
		WithRestartOnFailure(RestartPolicy{MaxRestarts: 5}))
	rt2.draining.Store(true)
	if _, ok := th2.nextRestartDelay(&ThreadFailure{Thread: "w2"}); ok {
		t.Fatal("nextRestartDelay granted a restart during drain")
	}
	_ = th
}
