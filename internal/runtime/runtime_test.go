package runtime

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vt"
)

// fastClock returns the discrete-event virtual clock: paper-scale
// millisecond periods cost essentially no wall time and are exact.
func fastClock() clock.Clock { return clock.NewVirtual() }

// buildChain constructs src -> C1 -> mid -> C2 -> sink with the given
// compute periods and returns the runtime plus the recorder.
func buildChain(t *testing.T, policy core.Policy, srcPeriod, midPeriod, sinkPeriod time.Duration) (*Runtime, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), ARU: policy, Recorder: rec})

	c1 := rt.MustAddChannel("C1", 0)
	c2 := rt.MustAddChannel("C2", 0)

	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		var ts vt.Timestamp
		out := outPortOf(t, rt, "src", "C1")
		for !ctx.Stopped() {
			ts++
			ctx.Compute(srcPeriod)
			if err := ctx.Put(out, ts, ts, 1000); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	mid := rt.MustAddThread("mid", 0, func(ctx *Ctx) error {
		in := inPortOf(t, rt, "mid", "C1")
		out := outPortOf(t, rt, "mid", "C2")
		for {
			msg, err := ctx.GetLatest(in)
			if err != nil {
				return err
			}
			ctx.Compute(midPeriod)
			if err := ctx.Put(out, msg.TS, msg.Payload, 500); err != nil {
				return err
			}
			ctx.Sync()
		}
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		in := inPortOf(t, rt, "sink", "C2")
		for {
			_, err := ctx.GetLatest(in)
			if err != nil {
				return err
			}
			ctx.Compute(sinkPeriod)
			ctx.Emit()
			ctx.Sync()
		}
	})

	src.MustOutput(c1)
	mid.MustInput(c1)
	mid.MustOutput(c2)
	sink.MustInput(c2)
	_ = sink
	return rt, rec
}

// outPortOf / inPortOf find a thread's port by buffer name; declared ports
// are established before Start, so bodies can resolve them lazily.
func outPortOf(t *testing.T, rt *Runtime, threadName, bufName string) *OutPort {
	t.Helper()
	for _, th := range rt.threads {
		if th.name != threadName {
			continue
		}
		for _, p := range th.outs {
			if p.ref.name == bufName {
				return p
			}
		}
	}
	t.Fatalf("no out port %s -> %s", threadName, bufName)
	return nil
}

func inPortOf(t *testing.T, rt *Runtime, threadName, bufName string) *InPort {
	t.Helper()
	for _, th := range rt.threads {
		if th.name != threadName {
			continue
		}
		for _, p := range th.ins {
			if p.ref.name == bufName {
				return p
			}
		}
	}
	t.Fatalf("no in port %s <- %s", threadName, bufName)
	return nil
}

func TestPipelineEndToEnd(t *testing.T) {
	rt, rec := buildChain(t, core.PolicyOff(), 10*time.Millisecond, 30*time.Millisecond, 5*time.Millisecond)
	if err := rt.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Outputs < 10 {
		t.Fatalf("outputs = %d, want a steady stream", a.Outputs)
	}
	if a.ItemsTotal == 0 || a.Gets == 0 {
		t.Fatal("no items traced")
	}
	// The fast source (10ms) feeding a slow mid (30ms) must generate
	// skipped/wasted items without ARU.
	if a.ItemsWasted == 0 {
		t.Fatal("expected wasted items without ARU")
	}
	if a.ThroughputFPS <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestARUThrottlesSource(t *testing.T) {
	run := func(policy core.Policy) (*trace.Analysis, int64) {
		rt, rec := buildChain(t, policy, 10*time.Millisecond, 30*time.Millisecond, 5*time.Millisecond)
		if err := rt.RunFor(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var srcIters int64
		for _, th := range rt.threads {
			if th.name == "src" {
				// iterations == puts onto C1
				ch := rt.buffers[th.outs[0].ref.id]
				puts, _ := ch.Stats()
				srcIters = puts
			}
		}
		return a, srcIters
	}

	aOff, putsOff := run(core.PolicyOff())
	aMin, putsMin := run(core.PolicyMin())

	if putsMin >= putsOff {
		t.Fatalf("ARU-min must slow the source: %d puts vs %d without", putsMin, putsOff)
	}
	if aMin.WastedMemPct >= aOff.WastedMemPct {
		t.Fatalf("ARU-min must reduce wasted memory: %.1f%% vs %.1f%%",
			aMin.WastedMemPct, aOff.WastedMemPct)
	}
	if aMin.All.MeanBytes >= aOff.All.MeanBytes {
		t.Fatalf("ARU-min must reduce mean footprint: %.0f vs %.0f",
			aMin.All.MeanBytes, aOff.All.MeanBytes)
	}
	// Throughput must not collapse: the sink is driven by the mid stage
	// either way.
	if aMin.Outputs < aOff.Outputs/3 {
		t.Fatalf("ARU-min throughput collapsed: %d vs %d outputs", aMin.Outputs, aOff.Outputs)
	}
}

func TestStopUnblocksAndShutsDownCleanly(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), Recorder: rec})
	c1 := rt.MustAddChannel("C1", 0)
	// A consumer that blocks forever (no producer puts).
	rt.MustAddThread("producer", 0, func(ctx *Ctx) error {
		out := ctx.thread.outs[0]
		// Produce one item then idle until stop.
		if err := ctx.Put(out, 1, nil, 10); err != nil {
			return err
		}
		ctx.Sync()
		<-ctx.Done()
		return nil
	}).MustOutput(c1)
	rt.MustAddThread("consumer", 0, func(ctx *Ctx) error {
		in := ctx.thread.ins[0]
		for {
			if _, err := ctx.GetLatest(in); err != nil {
				return err
			}
			ctx.Sync()
		}
	}).MustInput(c1)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Wait() }()
	time.Sleep(20 * time.Millisecond)
	rt.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runtime did not shut down")
	}
	if !rt.Stopped() {
		t.Error("Stopped must report true")
	}
	rt.Stop() // idempotent
}

func TestQueueFlow(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), Recorder: rec})
	q := rt.MustAddQueue("Q", 0)
	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		out := ctx.thread.outs[0]
		for ts := vt.Timestamp(1); ts <= 20; ts++ {
			if err := ctx.Put(out, ts, int(ts), 8); err != nil {
				return err
			}
			ctx.Sync()
		}
		<-ctx.Done()
		return nil
	})
	var got []vt.Timestamp
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		in := ctx.thread.ins[0]
		for {
			msg, err := ctx.GetQueue(in)
			if err != nil {
				return err
			}
			got = append(got, msg.TS)
			if len(got) == 20 {
				ctx.Emit()
			}
			ctx.Sync()
		}
	})
	prod.MustOutput(q)
	cons.MustInput(q)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := rt.Buffer(q).Stats(); n >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("producer never finished")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let consumer drain
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("consumed %d items, want 20 (FIFO, no skipping)", len(got))
	}
	for i, ts := range got {
		if ts != vt.Timestamp(i+1) {
			t.Fatalf("out of order at %d: %v", i, ts)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	rt := New(Options{Clock: fastClock()})
	if _, err := rt.AddChannel("C", 5); err == nil {
		t.Error("out-of-range host must fail")
	}
	if _, err := rt.AddThread("t", 0, nil); err == nil {
		t.Error("nil body must fail")
	}
	c := rt.MustAddChannel("C", 0)
	th := rt.MustAddThread("t", 0, func(ctx *Ctx) error { return nil })
	th.MustOutput(c)
	// Channel with no consumer fails validation at Start.
	if err := rt.Start(); err == nil || !strings.Contains(err.Error(), "consumer") {
		t.Fatalf("Start err = %v, want consumer validation failure", err)
	}
}

func TestStartTwiceFails(t *testing.T) {
	rt := New(Options{Clock: fastClock()})
	c := rt.MustAddChannel("C", 0)
	p := rt.MustAddThread("p", 0, func(ctx *Ctx) error { <-ctx.Done(); return nil })
	s := rt.MustAddThread("s", 0, func(ctx *Ctx) error { <-ctx.Done(); return nil })
	p.MustOutput(c)
	s.MustInput(c)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err == nil {
		t.Error("second Start must fail")
	}
	if _, err := rt.AddChannel("D", 0); err == nil {
		t.Error("AddChannel after Start must fail")
	}
	if _, err := p.Output(c); err == nil {
		t.Error("Output after Start must fail")
	}
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBodyErrorSurfacesInWait(t *testing.T) {
	boom := errors.New("boom")
	rt := New(Options{Clock: fastClock()})
	c := rt.MustAddChannel("C", 0)
	p := rt.MustAddThread("p", 0, func(ctx *Ctx) error { return boom })
	s := rt.MustAddThread("s", 0, func(ctx *Ctx) error {
		in := ctx.thread.ins[0]
		_, err := ctx.GetLatest(in)
		return err
	})
	p.MustOutput(c)
	s.MustInput(c)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	rt.Stop()
	err := rt.Wait()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
}

func TestClusterPlacementAndTransfers(t *testing.T) {
	clk := fastClock()
	cluster := transport.NewCluster(clk, transport.ClusterSpec{
		Hosts: 2,
		Link:  transport.LinkSpec{Latency: time.Millisecond, BytesPerSec: 100e6},
	})
	rec := trace.NewRecorder()
	rt := New(Options{Clock: clk, Cluster: cluster, Recorder: rec})
	c := rt.MustAddChannel("C", 0)
	p := rt.MustAddThread("p", 0, func(ctx *Ctx) error {
		out := ctx.thread.outs[0]
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			if err := ctx.Put(out, ts, nil, 100_000); err != nil {
				return err
			}
			ctx.Compute(2 * time.Millisecond)
			ctx.Sync()
		}
		return nil
	})
	s := rt.MustAddThread("s", 1, func(ctx *Ctx) error { // remote host
		in := ctx.thread.ins[0]
		for {
			if _, err := ctx.GetLatest(in); err != nil {
				return err
			}
			ctx.Sync()
		}
	})
	p.MustOutput(c)
	s.MustInput(c)
	if err := rt.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Consumer on host 1 pulled items from host 0: the link must show
	// traffic.
	if busy := cluster.Network().LinkBusy(0, 1); busy == 0 {
		t.Fatal("cross-host link saw no traffic")
	}
}

func TestTotalOccupancyAndAccessors(t *testing.T) {
	rt, _ := buildChain(t, core.PolicyOff(), 5*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	items, bytes := rt.TotalOccupancy()
	if items < 0 || bytes < 0 {
		t.Fatal("occupancy must be non-negative")
	}
	if rt.Graph().NumNodes() != 5 {
		t.Errorf("graph nodes = %d", rt.Graph().NumNodes())
	}
	if rt.Controller() == nil {
		t.Error("controller must exist after Start")
	}
	if rt.Clock() == nil || rt.Recorder() == nil {
		t.Error("accessors broken")
	}
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	// After stop, everything is freed.
	items, bytes = rt.TotalOccupancy()
	if items != 0 || bytes != 0 {
		t.Fatalf("occupancy after stop = %d/%d", items, bytes)
	}
}

func TestGCCollectorPluggability(t *testing.T) {
	for _, coll := range []gc.Collector{gc.NewNone(), gc.NewTransparent(), gc.NewDeadTimestamp()} {
		rec := trace.NewRecorder()
		rt := New(Options{Clock: fastClock(), Collector: coll, Recorder: rec})
		c1 := rt.MustAddChannel("C1", 0)
		p := rt.MustAddThread("p", 0, func(ctx *Ctx) error {
			out := ctx.thread.outs[0]
			for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
				if err := ctx.Put(out, ts, nil, 100); err != nil {
					return err
				}
				ctx.Compute(time.Millisecond)
				ctx.Sync()
			}
			return nil
		})
		s := rt.MustAddThread("s", 0, func(ctx *Ctx) error {
			in := ctx.thread.ins[0]
			for {
				if _, err := ctx.GetLatest(in); err != nil {
					return err
				}
				ctx.Compute(3 * time.Millisecond)
				ctx.Sync()
			}
		})
		p.MustOutput(c1)
		s.MustInput(c1)
		if err := rt.RunFor(300 * time.Millisecond); err != nil {
			t.Fatalf("%s: %v", coll.Name(), err)
		}
		a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
		if err != nil {
			t.Fatalf("%s: %v", coll.Name(), err)
		}
		if a.ItemsTotal == 0 {
			t.Fatalf("%s: no items", coll.Name())
		}
	}
}

func TestWriteStatus(t *testing.T) {
	rt, _ := buildChain(t, core.PolicyMin(), 5*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let some real work happen
	var buf bytes.Buffer
	rt.WriteStatus(&buf)
	out := buf.String()
	for _, want := range []string{"ARU controller state", "C1", "C2", "buffer", "puts"} {
		if !strings.Contains(out, want) {
			t.Errorf("status missing %q:\n%s", want, out)
		}
	}
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	// Disabled ARU: no controller section.
	rt2, _ := buildChain(t, core.PolicyOff(), 5*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond)
	if err := rt2.Start(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	rt2.WriteStatus(&buf)
	if strings.Contains(buf.String(), "ARU controller state") {
		t.Error("disabled policy must not print controller state")
	}
	rt2.Stop()
	rt2.Wait()
}
