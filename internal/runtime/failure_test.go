package runtime

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vt"
)

// TestHungConsumerDoesNotDeadlockPipeline injects a consumer that stops
// consuming mid-run. The producer must keep running (unbounded channel),
// the runtime must stop cleanly, and with DGC nothing is freed past the
// hang point (the hung consumer's guarantee pins items).
func TestHungConsumerDoesNotDeadlockPipeline(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), ARU: core.PolicyMin(), Recorder: rec})
	c1 := rt.MustAddChannel("C1", 0)

	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	hang := rt.MustAddThread("hangs-after-5", 0, func(ctx *Ctx) error {
		for i := 0; i < 5; i++ {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Compute(4 * time.Millisecond)
			ctx.Sync()
		}
		ctx.Park() // hangs: never consumes again
		return nil
	})
	src.MustOutput(c1)
	hang.MustInput(c1)

	if err := rt.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The producer kept going long after the consumer hung.
	if a.ItemsTotal < 50 {
		t.Fatalf("producer stalled: only %d items", a.ItemsTotal)
	}
	// Everything after the hang is wasted — the exact pathology ARU
	// cannot fix alone when feedback stops flowing (stale summary).
	if a.ItemsWasted < a.ItemsTotal/2 {
		t.Errorf("expected mostly wasted items, got %d/%d", a.ItemsWasted, a.ItemsTotal)
	}
}

// TestBurstyProducer alternates fast bursts with long pauses; consumers
// must survive and the trace must stay consistent.
func TestBurstyProducer(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), Recorder: rec})
	c1 := rt.MustAddChannel("C1", 0)

	src := rt.MustAddThread("bursty", 0, func(ctx *Ctx) error {
		ts := vt.Timestamp(0)
		for !ctx.Stopped() {
			for i := 0; i < 10; i++ { // burst
				ts++
				ctx.Compute(500 * time.Microsecond)
				if err := ctx.Put(ctx.Outs()[0], ts, nil, 10); err != nil {
					return err
				}
				ctx.Sync()
			}
			ctx.Idle(50 * time.Millisecond) // silence
			ctx.Sync()
		}
		return nil
	})
	var consumed int
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			consumed++
			ctx.Compute(3 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})
	src.MustOutput(c1)
	sink.MustInput(c1)

	if err := rt.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if consumed < 10 {
		t.Fatalf("sink consumed only %d items", consumed)
	}
	if _, err := trace.Analyze(rec, trace.AnalyzeOptions{}); err != nil {
		t.Fatalf("trace inconsistent after bursts: %v", err)
	}
}

// TestBoundedChannelBackpressure verifies that a capacity-bounded channel
// throttles the producer by blocking (backpressure), and that blocked
// put time is excluded from the producer's current-STP.
func TestBoundedChannelBackpressure(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), ARU: core.PolicyOff(), Recorder: rec})
	c1 := rt.MustAddChannel("C1", 0, WithCapacity(2))

	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 10); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Compute(20 * time.Millisecond)
			ctx.Sync()
		}
	})
	src.MustOutput(c1)
	sink.MustInput(c1)

	if err := rt.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The channel never exceeded its bound.
	var srcIters, fastIters int
	var blockedTotal time.Duration
	for _, ev := range rec.Events() {
		if ev.Kind == trace.EvIter && ev.Thread == src.ID() {
			srcIters++
			blockedTotal += ev.Blocked
			if ev.Compute < 5*time.Millisecond {
				fastIters++
			}
		}
	}
	if srcIters == 0 {
		t.Fatal("no source iterations")
	}
	// A 1ms producer against a 20ms consumer with capacity 2: the
	// producer must have spent most of its time blocked.
	if blockedTotal < 200*time.Millisecond {
		t.Errorf("producer blocked only %v; backpressure not engaging", blockedTotal)
	}
	// Compute (current-STP basis) stays near 1ms despite the blocking.
	if fastIters < srcIters*3/4 {
		t.Errorf("blocked put time leaked into compute: %d/%d fast iterations", fastIters, srcIters)
	}
	// DGC with a single consumer: occupancy bounded by capacity.
	ch := rt.Channel(c1)
	if n, _ := ch.Occupancy(); n > 2 {
		t.Errorf("occupancy %d exceeds capacity 2", n)
	}
}

// TestARUSurvivesConsumerStall: with ARU-min and a consumer that stalls
// for a while and then resumes, the source must slow down on stale
// feedback and speed back up after recovery — no deadlock, no runaway.
func TestARUSurvivesConsumerStall(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), ARU: core.PolicyMin(), Recorder: rec})
	c1 := rt.MustAddChannel("C1", 0)

	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	sink := rt.MustAddThread("stalling-sink", 0, func(ctx *Ctx) error {
		n := 0
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			n++
			if n == 10 {
				ctx.Idle(200 * time.Millisecond) // stall
			}
			ctx.Compute(10 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})
	src.MustOutput(c1)
	sink.MustInput(c1)

	if err := rt.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline recovered: outputs continued after the stall window.
	var late int
	for _, ts := range a.OutputTimes {
		if ts > 500*time.Millisecond {
			late++
		}
	}
	if late < 10 {
		t.Fatalf("pipeline did not recover after the stall: %d late outputs", late)
	}
}

// TestTryGetLatestAndReuseProvenance drives the cached-input pattern and
// checks that reused items stay classified successful.
func TestTryGetLatestAndReuseProvenance(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), Recorder: rec})
	frames := rt.MustAddChannel("frames", 0)
	models := rt.MustAddChannel("models", 0)

	frameSrc := rt.MustAddThread("frames-src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(5 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	modelSrc := rt.MustAddThread("models-src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(50 * time.Millisecond) // rare model updates
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	detect := rt.MustAddThread("detect", 0, func(ctx *Ctx) error {
		model, err := ctx.GetLatest(ctx.Ins()[1])
		if err != nil {
			return err
		}
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			if m, ok, err := ctx.TryGetLatest(ctx.Ins()[1]); err != nil {
				return err
			} else if ok {
				model = m
			} else {
				ctx.Reuse(model)
			}
			ctx.Compute(10 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})
	frameSrc.MustOutput(frames)
	modelSrc.MustOutput(models)
	detect.MustInput(frames)
	detect.MustInput(models)

	if err := rt.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(rec, trace.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every model that was ever consumed is reused across iterations and
	// must be successful; models are produced every 50ms and consumed
	// every ~10ms cycle, so virtually all are used.
	var modelWasted int
	for _, it := range a.Items {
		if it.Node == models.ID() && !it.Successful && it.Gets > 0 {
			modelWasted++
		}
	}
	if modelWasted != 0 {
		t.Errorf("%d consumed models classified wasted despite Reuse", modelWasted)
	}
	if a.Outputs < 50 {
		t.Fatalf("outputs = %d", a.Outputs)
	}
}
