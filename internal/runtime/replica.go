// Elastic stage replication: the actuator half of the resource-aware
// scheduler (internal/sched).
//
// A replica is one additional supervised incarnation of a declared
// thread: the same body, the same task-graph node, and — critically —
// the *same ports*. All incarnations share the stage's consumer
// connections, so k replicas behind a FIFO buffer drain one backlog
// cooperatively (each item is delivered to exactly one of them) and the
// conservation ledger (produced == delivered + shed) is untouched by
// scaling. Each incarnation measures its own current-STP through its
// own Ctx, and the controller folds the measurements as a parallel
// composition (core/replica.go), so the stage's summary-STP relaxes as
// replicas come online and upstream throttling eases through the
// ordinary feedback rules.
//
// Retirement is drain-safe by construction: RetireReplica flips the
// replica's retiring flag, which gates only the *consume* side (the
// mirror image of the drain quiesce, which gates produce). The replica
// finishes the item it already holds — its outputs are delivered, its
// Sync runs — and the next get reports ErrDraining, a clean supervised
// exit. A replica parked inside a blocking get retires lazily when the
// next item (or shutdown) wakes it; it consumes nothing after the flag
// is set... except the single item that wakes it, which it processes
// fully. Either way no consumed item is ever dropped mid-stage.
package runtime

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
)

// SpawnReplica spawns one additional supervised incarnation of the
// named stage, placed on the given host (host < 0 inherits the
// primary's placement). The replica is a real thread: supervised with
// the primary's restart policy, heartbeat-tracked, metric-instrumented
// under its own name ("stage#N"), and visible in Health, Snapshot, and
// WriteStatus. It must be called on a started, running runtime —
// normally from a ControlLoop, whose goroutine the runtime already
// accounts for.
//
// Source stages (no inputs) are rejected: replicating a producer
// duplicates production instead of dividing work, which breaks the
// exactly-once conservation ledger the shared-consumer design
// guarantees.
func (rt *Runtime) SpawnReplica(stage string, host int) (*Thread, error) {
	rt.mu.Lock()
	if !rt.started {
		rt.mu.Unlock()
		return nil, fmt.Errorf("runtime: SpawnReplica(%q) before Start", stage)
	}
	if rt.stopped {
		rt.mu.Unlock()
		return nil, fmt.Errorf("runtime: SpawnReplica(%q) after Stop", stage)
	}
	if rt.draining.Load() {
		rt.mu.Unlock()
		return nil, fmt.Errorf("runtime: SpawnReplica(%q) during drain", stage)
	}
	primary := rt.primaryLocked(stage)
	if primary == nil {
		rt.mu.Unlock()
		return nil, fmt.Errorf("runtime: SpawnReplica: no thread %q", stage)
	}
	if len(primary.ins) == 0 {
		rt.mu.Unlock()
		return nil, fmt.Errorf("runtime: SpawnReplica(%q): a source stage cannot be replicated (it would duplicate production)", stage)
	}
	if host < 0 {
		host = primary.host
	}
	if err := rt.checkHost(host); err != nil {
		rt.mu.Unlock()
		return nil, err
	}

	rt.replMu.Lock()
	if rt.replicas == nil {
		rt.replicas = make(map[graph.NodeID][]*Thread)
		rt.replSeq = make(map[graph.NodeID]int)
	}
	rt.replSeq[primary.id]++
	slot := rt.replSeq[primary.id]
	r := &Thread{
		rt:          rt,
		id:          primary.id,
		name:        fmt.Sprintf("%s#%d", primary.name, slot),
		host:        host,
		body:        primary.body,
		tenant:      primary.tenant,
		ins:         primary.ins, // shared: one backlog, drained cooperatively
		outs:        primary.outs,
		restart:     primary.restart,
		hasRestart:  primary.hasRestart,
		stallTTL:    primary.stallTTL,
		replicaSlot: slot,
	}
	// Bespoke prepare: the shared ports' endpoints were resolved at
	// Start, and rewriting p.buf here would race the primary's hot path.
	r.stop = make(chan struct{})
	r.rng = newSupervisionRNG(r.restart.Seed, r.name)
	r.lastBeat.Store(int64(rt.clk.Now()))
	rt.replicas[primary.id] = append(rt.replicas[primary.id], r)
	rt.replMu.Unlock()

	// In rt.threads the replica participates in everything keyed off the
	// thread list: Stop's requestStop sweep, drain quiesce waves, the
	// stall watchdog, and Health.
	rt.threads = append(rt.threads, r)
	rt.mu.Unlock()

	rt.registerThreadInstruments(r)
	// Register the slot with the controller now (Unknown until the
	// replica's first Sync measures it), so controller snapshots count
	// the replica from the moment it exists.
	rt.ctrl.SetReplicaSTP(r.id, slot, core.Unknown)

	reg, hasReg := rt.clk.(clock.Registrar)
	rt.wg.Add(1)
	if hasReg {
		reg.Add(1)
	}
	go func() {
		defer rt.wg.Done()
		if hasReg {
			defer reg.Add(-1)
		}
		r.supervise()
		rt.finishReplica(r)
	}()
	return r, nil
}

// RetireReplica requests drain-safe retirement of the named stage's most
// recently spawned live replica and returns the retiring replica's
// name. The replica leaves the live count (and the controller's
// parallel fold) immediately so upstream throttling tightens without
// waiting; the goroutine itself exits at its next get — lazily, if it
// is parked inside a blocking get on an idle buffer.
func (rt *Runtime) RetireReplica(stage string) (string, error) {
	rt.mu.Lock()
	primary := rt.primaryLocked(stage)
	rt.mu.Unlock()
	if primary == nil {
		return "", fmt.Errorf("runtime: RetireReplica: no thread %q", stage)
	}
	rt.replMu.Lock()
	live := rt.replicas[primary.id]
	if len(live) == 0 {
		rt.replMu.Unlock()
		return "", fmt.Errorf("runtime: RetireReplica(%q): no live replicas", stage)
	}
	r := live[len(live)-1]
	rt.replicas[primary.id] = live[:len(live)-1]
	rt.replMu.Unlock()

	r.retiring.Store(true)
	// Drop the slot from the fold now for prompt upstream feedback. The
	// replica's final Sync (closing out the item it already holds) may
	// transiently re-add it; finishReplica removes it again — the
	// authoritative cleanup — when the goroutine exits.
	rt.ctrl.RetireReplica(r.id, r.replicaSlot)
	return r.name, nil
}

// finishReplica is the post-supervise cleanup of one replica goroutine,
// for every exit path (retirement, shutdown, permanent failure): the
// slot leaves the controller fold so the stage's effective period
// reflects only live incarnations, and the replica leaves the live
// registry if retirement has not already removed it.
func (rt *Runtime) finishReplica(r *Thread) {
	rt.ctrl.RetireReplica(r.id, r.replicaSlot)
	rt.replMu.Lock()
	live := rt.replicas[r.id]
	for i, t := range live {
		if t == r {
			rt.replicas[r.id] = append(live[:i], live[i+1:]...)
			break
		}
	}
	rt.replMu.Unlock()
}

// primaryLocked finds the primary incarnation of a stage by name;
// callers hold rt.mu.
func (rt *Runtime) primaryLocked(stage string) *Thread {
	for _, t := range rt.threads {
		if t.replicaSlot == 0 && t.name == stage {
			return t
		}
	}
	return nil
}

// ReplicaCount returns the number of live replicas of the named stage
// (the primary is not counted; retiring replicas leave the count at
// retire-request time).
func (rt *Runtime) ReplicaCount(stage string) int {
	return rt.ReplicaCounts()[stage]
}

// ReplicaCounts returns stage name → live replica count, nil when no
// stage is replicated — the non-elastic configuration stays
// indistinguishable from before the scheduler existed.
func (rt *Runtime) ReplicaCounts() map[string]int {
	rt.replMu.Lock()
	defer rt.replMu.Unlock()
	var out map[string]int
	for id, live := range rt.replicas {
		if len(live) == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]int)
		}
		out[rt.g.Node(id).Name] = len(live)
	}
	return out
}
