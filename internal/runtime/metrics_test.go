package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vt"
)

// TestSamplerManualClockPinned pins the periodic sampler's exact
// schedule on a manual clock: one Snapshot per SampleEvery tick, gauge
// families refreshed from it deterministically. An idle thread never
// Syncs, so its heartbeat-age gauge must read exactly the advanced time
// — 1s after one tick, 2s after two — and the buffer occupancy gauge
// must show the single buffered item.
func TestSamplerManualClockPinned(t *testing.T) {
	clk := clock.NewManual()
	reg := metrics.NewRegistry()
	rt := New(Options{Clock: clk, ARU: core.PolicyOff(), Metrics: reg, SampleEvery: time.Second})
	ch := rt.MustAddChannel("C", 0)

	putDone := make(chan struct{})
	consUp := make(chan struct{})
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		if err := ctx.Put(ctx.Outs()[0], 1, nil, 64); err != nil {
			return err
		}
		close(putDone)
		<-ctx.Done()
		return nil
	})
	cons := rt.MustAddThread("idle-cons", 0, func(ctx *Ctx) error {
		close(consUp)
		<-ctx.Done() // never Syncs: the heartbeat stays at its start stamp
		return nil
	})
	src.MustOutput(ch)
	cons.MustInput(ch)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-putDone
	<-consUp

	items := reg.Gauge(MetricBufferItems, "", metrics.Labels{"buffer": "C"})
	bytes := reg.Gauge(MetricBufferBytes, "", metrics.Labels{"buffer": "C"})
	age := reg.DurationGauge(MetricHeartbeatAge, "", metrics.Labels{"thread": "idle-cons"})
	stalled := reg.Gauge(MetricThreadStalled, "", metrics.Labels{"thread": "idle-cons"})

	// Before the first tick nothing has sampled: the gauges still hold
	// their registration zero.
	waitManualSleepers(t, clk, 1) // the sampler is the only clock sleeper
	if items.Value() != 0 {
		t.Fatalf("buffer items gauge = %d before the first sample, want 0", items.Value())
	}

	// Tick 1: Advance removes the sampler from the waiter list, and it
	// reappears (Sleepers back to 1) only after its Snapshot completed —
	// so the gauge reads below are race-free and exact.
	clk.Advance(time.Second)
	waitManualSleepers(t, clk, 1)
	if items.Value() != 1 || bytes.Value() != 64 {
		t.Errorf("occupancy gauges after tick 1 = %d items/%d bytes, want 1/64", items.Value(), bytes.Value())
	}
	if age.Value() != int64(time.Second) {
		t.Errorf("heartbeat age after tick 1 = %v, want exactly 1s", time.Duration(age.Value()))
	}
	if stalled.Value() != 0 {
		t.Errorf("stalled gauge = %d, want 0", stalled.Value())
	}

	// Tick 2: the idle thread still has not Synced, so its age is
	// exactly the total advanced time.
	clk.Advance(time.Second)
	waitManualSleepers(t, clk, 1)
	if age.Value() != int64(2*time.Second) {
		t.Errorf("heartbeat age after tick 2 = %v, want exactly 2s", time.Duration(age.Value()))
	}

	// The buffer layer's own counters were event-incremented, not
	// sampler-driven: the put was counted when it happened.
	if puts := reg.Counter(buffer.MetricPuts, "", metrics.Labels{"buffer": "C"}); puts.Value() != 1 {
		t.Errorf("puts counter = %d, want 1", puts.Value())
	}

	// Stop does not join rt.wg (Wait does); the sampler is parked in
	// Manual.Sleep and needs one more tick to observe stopCh.
	rt.Stop()
	clk.Advance(time.Second)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSamplerDisabled checks SampleEvery < 0: no sampler goroutine is
// spawned (nothing ever sleeps on the clock), while on-demand Snapshot
// still refreshes the gauge families.
func TestSamplerDisabled(t *testing.T) {
	clk := clock.NewManual()
	reg := metrics.NewRegistry()
	rt := New(Options{Clock: clk, ARU: core.PolicyOff(), Metrics: reg, SampleEvery: -1})
	ch := rt.MustAddChannel("C", 0)

	putDone := make(chan struct{})
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		if err := ctx.Put(ctx.Outs()[0], 1, nil, 64); err != nil {
			return err
		}
		close(putDone)
		<-ctx.Done()
		return nil
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		<-ctx.Done()
		return nil
	})
	src.MustOutput(ch)
	cons.MustInput(ch)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	<-putDone
	if n := clk.Sleepers(); n != 0 {
		t.Fatalf("%d clock sleepers with the sampler disabled, want 0", n)
	}

	items := reg.Gauge(MetricBufferItems, "", metrics.Labels{"buffer": "C"})
	if items.Value() != 0 {
		t.Fatalf("gauge moved without a sampler or Snapshot: %d", items.Value())
	}
	rt.Snapshot() // on-demand refresh still works
	if items.Value() != 1 {
		t.Fatalf("on-demand Snapshot did not publish: items = %d, want 1", items.Value())
	}

	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteStatusLongNamesAligned is the fixed-width regression test:
// the old renderer hard-coded %-18s name columns, so longer names broke
// every column after them. Widths are now computed from the snapshot;
// a name much longer than 18 characters must appear untruncated and
// every table column must still line up with its header.
func TestWriteStatusLongNamesAligned(t *testing.T) {
	const (
		longThread = "a-preposterously-long-thread-name-that-broke-fixed-columns"
		longBuffer = "an-equally-preposterously-long-buffer-name"
	)
	rt := New(Options{Clock: fastClock(), ARU: core.PolicyMin()})
	ch := rt.MustAddChannel(longBuffer, 0)
	src := rt.MustAddThread(longThread, 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 10); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Sync()
		}
	})
	src.MustOutput(ch)
	sink.MustInput(ch)
	if err := rt.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	rt.WriteStatus(&sb)
	out := sb.String()
	lines := strings.Split(out, "\n")

	// rowAfter finds the first line with rowPrefix at or after the line
	// with hdrPrefix, so each assertion stays inside its own table (the
	// same names appear in both the ARU node table and the buffer/thread
	// tables).
	rowAfter := func(hdrPrefix, rowPrefix string) (hdr, row string) {
		t.Helper()
		i := 0
		for ; i < len(lines); i++ {
			if strings.HasPrefix(lines[i], hdrPrefix) {
				hdr = lines[i]
				break
			}
		}
		if hdr == "" {
			t.Fatalf("no line starting with %q in:\n%s", hdrPrefix, out)
		}
		for i++; i < len(lines); i++ {
			if strings.HasPrefix(lines[i], rowPrefix) {
				return hdr, lines[i]
			}
		}
		t.Fatalf("no line starting with %q after %q in:\n%s", rowPrefix, hdrPrefix, out)
		return "", ""
	}

	// Untruncated names.
	if !strings.Contains(out, longThread) || !strings.Contains(out, longBuffer) {
		t.Fatalf("long names truncated:\n%s", out)
	}

	// ARU table: the kind column of the long node row starts where the
	// header says it does.
	nodeHdr, nodeRow := rowAfter("node ", longThread+" ")
	kindCol := strings.Index(nodeHdr, "kind")
	if kindCol <= len("node") {
		t.Fatalf("node header has no kind column: %q", nodeHdr)
	}
	if !strings.HasPrefix(nodeRow[kindCol:], "thread") {
		t.Errorf("ARU table misaligned: kind column at %d in header, row reads %q", kindCol, nodeRow)
	}

	// Buffer table: the right-aligned items value ends where the header's
	// "items" ends.
	bufHdr, bufRow := rowAfter("buffer ", longBuffer+" ")
	itemsEnd := strings.Index(bufHdr, "items") + len("items")
	num := regexp.MustCompile(`\d+`).FindStringIndex(bufRow)
	if num == nil || num[1] != itemsEnd {
		t.Errorf("buffer table misaligned: items column ends at %d in header, first number spans %v in %q", itemsEnd, num, bufRow)
	}

	// Thread table: the state column of the long thread row starts at
	// the header's state column.
	thrHdr, thrRow := rowAfter("thread ", longThread+" ")
	stateCol := strings.Index(thrHdr, "state")
	if !strings.HasPrefix(thrRow[stateCol:], "stopped") {
		t.Errorf("thread table misaligned: state column at %d, row reads %q", stateCol, thrRow)
	}
}

// TestMetricsHTTPEndpoint exercises the opt-in observability server
// end to end on an ephemeral port: /metrics (Prometheus text with the
// right Content-Type), /metrics.json (decodes into FamilySnapshots that
// agree with the buffer's own Stats), /status (the WriteStatus view),
// and /health (JSON supervision snapshot). The pipeline does a fixed
// amount of work and parks, so every scrape sees the same quiescent
// numbers.
func TestMetricsHTTPEndpoint(t *testing.T) {
	rt := New(Options{
		Clock:       clock.NewReal(),
		ARU:         core.PolicyOff(),
		MetricsAddr: "127.0.0.1:0",
		SampleEvery: -1,
	})
	ch := rt.MustAddQueue("C", 0) // FIFO: every one of the n puts is consumed
	const n = 3
	consumed := make(chan struct{})
	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); ts <= n; ts++ {
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 64); err != nil {
				return err
			}
			ctx.Sync()
		}
		<-ctx.Done()
		return nil
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		for i := 0; i < n; i++ {
			if _, err := ctx.Get(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Sync()
		}
		close(consumed)
		<-ctx.Done()
		return nil
	})
	prod.MustOutput(ch)
	cons.MustInput(ch)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		rt.Stop()
		if err := rt.Wait(); err != nil {
			t.Fatal(err)
		}
	}()
	<-consumed

	addr := rt.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty after Start with MetricsAddr option set")
	}
	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	// /metrics: Prometheus text, correct version header, and the scrape
	// refreshed its own Snapshot so gauge families are current without a
	// sampler.
	prom, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want the 0.0.4 text format", ct)
	}
	for _, w := range []string{
		fmt.Sprintf(`%s{buffer="C"} %d`, buffer.MetricPuts, n),
		fmt.Sprintf(`%s{buffer="C"} %d`, MetricGets, n),
		fmt.Sprintf(`%s{thread="prod"} %d`, MetricIterations, n),
		MetricNodeCurrent + `{node="C"}`,
		MetricBufferItems + `{buffer="C"} 0`,
	} {
		if !strings.Contains(prom, w) {
			t.Errorf("/metrics lacks %q:\n%s", w, prom)
		}
	}

	// /metrics.json: the same gather as JSON, consistent with the
	// buffer's own counters.
	jsonBody, resp := get("/metrics.json")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/metrics.json Content-Type = %q", ct)
	}
	var fams []metrics.FamilySnapshot
	if err := json.Unmarshal([]byte(jsonBody), &fams); err != nil {
		t.Fatalf("/metrics.json does not decode: %v\n%s", err, jsonBody)
	}
	putsJSON := -1.0
	for _, f := range fams {
		if f.Name == buffer.MetricPuts {
			for _, s := range f.Series {
				if s.Labels["buffer"] == "C" {
					putsJSON = float64(s.Value)
				}
			}
		}
	}
	puts, _ := rt.Buffer(ch).Stats()
	if putsJSON != float64(puts) || puts != n {
		t.Errorf("puts: JSON endpoint %v, buffer Stats %d, want %d", putsJSON, puts, n)
	}

	// /status: the WriteStatus rendering, including the high-water
	// columns that only exist with metrics enabled.
	status, _ := get("/status")
	for _, w := range []string{"buffer", "hw-items", "prod", "cons"} {
		if !strings.Contains(status, w) {
			t.Errorf("/status lacks %q:\n%s", w, status)
		}
	}

	// /health: JSON supervision snapshot; both threads parked in Done
	// are healthy and running.
	healthBody, _ := get("/health")
	var health struct {
		Healthy bool `json:"healthy"`
		Threads []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"threads"`
	}
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		t.Fatalf("/health does not decode: %v\n%s", err, healthBody)
	}
	if !health.Healthy || len(health.Threads) != 2 {
		t.Fatalf("/health = %+v, want healthy with 2 threads", health)
	}
	for _, th := range health.Threads {
		if th.State != "running" {
			t.Errorf("/health thread %s state = %q, want running", th.Name, th.State)
		}
	}
}

// TestChaosStatusHammer is the -race workout for the status paths: the
// TestSupervisionChaos graph (panicking source under a restart budget,
// permanently failing mid stage, cascading sink, silent staller) runs
// while hammer goroutines concurrently pound WriteStatus, Health,
// Snapshot, and the registry's two renderers. Afterwards the supervision
// counters must agree exactly with the known chaos schedule.
func TestChaosStatusHammer(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := New(Options{
		Clock:    fastClock(),
		ARU:      core.PolicyMin(),
		Metrics:  reg,
		StallTTL: 80 * time.Millisecond,
	})
	c1 := rt.MustAddChannel("C1", 0)
	c2 := rt.MustAddChannel("C2", 0)

	var produced vt.Timestamp
	var pmu sync.Mutex
	crashy := rt.MustAddThread("crashy-src", 0, func(ctx *Ctx) error {
		for !ctx.Stopped() {
			pmu.Lock()
			produced++
			ts := produced
			pmu.Unlock()
			if ts%4 == 0 {
				panic("chaos: injected source panic")
			}
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	}, WithRestartOnFailure(RestartPolicy{
		Backoff:     backoff.Backoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2, Jitter: -1},
		MaxRestarts: 3,
		Seed:        1719,
	}))
	mid := rt.MustAddThread("mid", 0, func(ctx *Ctx) error {
		for n := 0; ; n++ {
			m, err := ctx.GetLatest(ctx.Ins()[0])
			if err != nil {
				return err
			}
			ctx.Compute(3 * time.Millisecond)
			if n == 2 {
				return errors.New("chaos: injected mid failure")
			}
			if err := ctx.Put(ctx.Outs()[0], m.TS, nil, 50); err != nil {
				return err
			}
			ctx.Sync()
		}
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Compute(2 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})
	staller := rt.MustAddThread("staller", 0, func(ctx *Ctx) error {
		for n := 0; n < 2; n++ {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Sync()
		}
		ctx.Park()
		return nil
	})
	crashy.MustOutput(c1)
	mid.MustInput(c1)
	mid.MustOutput(c2)
	sink.MustInput(c2)
	staller.MustInput(c1)

	// The hammer: every status surface, concurrently, for the whole run.
	// None of these goroutines participates in the virtual clock, so
	// they cannot distort the chaos schedule — only race against it.
	stop := make(chan struct{})
	var hwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		hwg.Add(1)
		go func(i int) {
			defer hwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Real-time throttle: the probes must interleave with the
				// chaos schedule, not starve the discrete-event clock's
				// quiescence detection by spinning.
				time.Sleep(200 * time.Microsecond)
				switch i {
				case 0:
					rt.WriteStatus(io.Discard)
				case 1:
					rt.Health()
					rt.Snapshot()
				case 2:
					reg.WriteProm(io.Discard)
					reg.WriteJSON(io.Discard)
				}
			}
		}(i)
	}
	err := rt.RunFor(time.Second)
	close(stop)
	hwg.Wait()
	if err == nil {
		t.Fatal("expected joined failures from Wait")
	}
	if !errors.Is(err, ErrPeerFailed) {
		t.Errorf("Wait error lacks the sink's ErrPeerFailed cascade: %v", err)
	}

	// The counters must agree exactly with the chaos schedule: the
	// source's body ran 4 times (initial + 3 restarts) and panicked on
	// every 4th produced item, so panics = 4, restarts = 3; three
	// threads failed permanently; the watchdog flagged the staller.
	counter := func(name, label, value string) int64 {
		return reg.Counter(name, "", metrics.Labels{label: value}).Value()
	}
	if got := counter(MetricPanics, "thread", "crashy-src"); got != 4 {
		t.Errorf("panics{crashy-src} = %d, want 4", got)
	}
	if got := counter(MetricRestarts, "thread", "crashy-src"); got != 3 {
		t.Errorf("restarts{crashy-src} = %d, want 3", got)
	}
	for _, th := range []string{"crashy-src", "mid", "sink"} {
		if got := counter(MetricFailures, "thread", th); got != 1 {
			t.Errorf("failures{%s} = %d, want 1", th, got)
		}
	}
	if got := counter(MetricNodeFaded, "node", "crashy-src"); got != 1 {
		t.Errorf("faded{crashy-src} = %d, want 1", got)
	}
	if got := counter(MetricStallEpisodes, "thread", "staller"); got < 1 {
		t.Errorf("stall episodes{staller} = %d, want >= 1", got)
	}
	if got := counter(MetricIterations, "thread", "crashy-src"); got < 1 {
		t.Errorf("iterations{crashy-src} = %d, want > 0", got)
	}
	if got := counter(MetricPeerFailed, "buffer", "C2"); got < 1 {
		t.Errorf("peer-failed wakeups{C2} = %d, want >= 1 (sink's cascade)", got)
	}
	if got := counter(MetricGets, "buffer", "C1"); got < 1 {
		t.Errorf("gets{C1} = %d, want > 0", got)
	}
}

// allocMetricsRuntime is allocRuntime with live metrics enabled and the
// background sampler disabled — AllocsPerRun counts process-wide
// mallocs, so a concurrent sampler would poison the pin. This is the
// metrics-ON half of the hot-path claim: every enabled event is a fixed
// number of atomic ops, zero allocations.
func allocMetricsRuntime() *Runtime {
	return New(Options{
		Clock:       clock.NewReal(),
		ARU:         core.PolicyOff(),
		Metrics:     metrics.NewRegistry(),
		SampleEvery: -1,
	})
}

// TestCtxPutGetChannelAllocsMetricsOn re-pins the channel round trip
// with metrics enabled: still 0 allocs/op at the pooled floor.
func TestCtxPutGetChannelAllocsMetricsOn(t *testing.T) {
	rt := allocMetricsRuntime()
	ch := rt.MustAddChannel("C", 0)
	req := make(chan struct{})
	ack := make(chan struct{})
	got := make(chan float64, 1)

	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		ts := vt.Timestamp(0)
		for {
			select {
			case <-ctx.Done():
				return nil
			case _, ok := <-req:
				if !ok {
					return nil
				}
			}
			ts++
			if err := ctx.Put(out, ts, nil, 64); err != nil {
				return err
			}
			ack <- struct{}{}
		}
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		got <- testing.AllocsPerRun(allocRuns, func() {
			req <- struct{}{}
			<-ack
			if _, err := ctx.Get(in); err != nil {
				panic(err)
			}
		})
		close(req)
		<-ctx.Done()
		return nil
	})
	prod.MustOutput(ch)
	cons.MustInput(ch)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	allocs := <-got
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("metrics-on channel put+get round trip: %.0f allocs/op, want 0 (pooled Item)", allocs)
	}
}

// TestCtxPutGetQueueAllocsMetricsOn re-pins both queue halves with
// metrics enabled: put stays at the 1 Item alloc, get at 0.
func TestCtxPutGetQueueAllocsMetricsOn(t *testing.T) {
	rt := allocMetricsRuntime()
	q := rt.MustAddQueue("Q", 0)
	putAllocs := make(chan float64, 1)
	getAllocs := make(chan float64, 1)
	start := make(chan struct{})

	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		out := ctx.Outs()[0]
		ts := vt.Timestamp(0)
		putAllocs <- testing.AllocsPerRun(allocRuns, func() {
			ts++
			if err := ctx.Put(out, ts, nil, 64); err != nil {
				panic(err)
			}
		})
		<-ctx.Done()
		return nil
	})
	cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		<-start
		getAllocs <- testing.AllocsPerRun(allocRuns, func() {
			if _, err := ctx.Get(in); err != nil {
				panic(err)
			}
		})
		<-ctx.Done()
		return nil
	})
	prod.MustOutput(q)
	cons.MustInput(q)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	puts := <-putAllocs
	close(start)
	gets := <-getAllocs
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if puts != 1 {
		t.Errorf("metrics-on Ctx.Put on queue: %.0f allocs/op, want exactly 1 (the Item)", puts)
	}
	if gets != 0 {
		t.Errorf("metrics-on Ctx.Get on queue: %.0f allocs/op, want 0", gets)
	}
}
