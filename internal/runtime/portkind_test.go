package runtime

import (
	"errors"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	_ "repro/internal/remote" // register the "remote" backend
	"repro/internal/vt"
)

// TestInputWindowOnQueueIsTypedError pins the wiring-time half of the
// port-kind contract: connecting a sliding-window input to a FIFO queue
// is refused with ErrPortKind — an error value, never a panic.
func TestInputWindowOnQueueIsTypedError(t *testing.T) {
	rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
	q := rt.MustAddQueue("Q", 0)
	th := rt.MustAddThread("t", 0, func(ctx *Ctx) error { return nil })
	if _, err := th.InputWindow(q, 3); !errors.Is(err, ErrPortKind) {
		t.Fatalf("InputWindow on queue: err = %v, want ErrPortKind", err)
	}
}

// TestRemoteBufferNeedsRealClock pins the other wiring-time capability
// check: a Remote-caps backend under a discrete-event clock fails Start
// with a typed error (network blocking is invisible to virtual time).
func TestRemoteBufferNeedsRealClock(t *testing.T) {
	rt := New(Options{Clock: clock.NewVirtual(), ARU: core.PolicyOff()})
	ch := rt.MustAddRemoteChannel("frames", 0, "127.0.0.1:1")
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error { return nil })
	snk := rt.MustAddThread("snk", 0, func(ctx *Ctx) error { return nil })
	src.MustOutput(ch)
	snk.MustInput(ch)
	if err := rt.Start(); err == nil {
		rt.Stop()
		rt.Wait()
		t.Fatal("Start with remote buffer under virtual clock: want error, got nil")
	}
}

// TestPortKindMisuseAtCallTime pins the call-time half: every
// discipline-restricted get variant invoked on the wrong backend returns
// ErrPortKind (and leaves the port usable), while the unified Ctx.Get
// serves both disciplines.
func TestPortKindMisuseAtCallTime(t *testing.T) {
	rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
	ch := rt.MustAddChannel("C", 0)
	q := rt.MustAddQueue("Q", 0)

	type report struct {
		name string
		err  error
	}
	results := make(chan report, 16)

	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); ts <= 2; ts++ {
			for _, out := range ctx.Outs() {
				if err := ctx.Put(out, ts, nil, 10); err != nil {
					return err
				}
			}
		}
		<-ctx.Done()
		return nil
	})
	consC := rt.MustAddThread("consC", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		_, err := ctx.GetQueue(in)
		results <- report{"GetQueue on channel", err}
		_, err = ctx.Get(in) // unified get still works afterwards
		results <- report{"unified Get on channel", err}
		<-ctx.Done()
		return nil
	})
	consQ := rt.MustAddThread("consQ", 0, func(ctx *Ctx) error {
		in := ctx.Ins()[0]
		_, err := ctx.GetLatest(in)
		results <- report{"GetLatest on queue", err}
		_, err = ctx.GetAt(in, 1)
		results <- report{"GetAt on queue", err}
		_, _, err = ctx.GetWindow(in)
		results <- report{"GetWindow on queue", err}
		_, err = ctx.Get(in) // unified get still works afterwards
		results <- report{"unified Get on queue", err}
		<-ctx.Done()
		return nil
	})

	prod.MustOutput(ch)
	prod.MustOutput(q)
	consC.MustInput(ch)
	consQ.MustInput(q)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		rt.Stop()
		rt.Wait()
	}()

	wantKind := map[string]bool{
		"GetQueue on channel":    true,
		"GetLatest on queue":     true,
		"GetAt on queue":         true,
		"GetWindow on queue":     true,
		"unified Get on channel": false,
		"unified Get on queue":   false,
	}
	for i := 0; i < len(wantKind); i++ {
		rep := <-results
		if wantKind[rep.name] {
			if !errors.Is(rep.err, ErrPortKind) {
				t.Errorf("%s: err = %v, want ErrPortKind", rep.name, rep.err)
			}
		} else if rep.err != nil {
			t.Errorf("%s: unexpected error %v", rep.name, rep.err)
		}
	}
}
