package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rand"
	"repro/internal/trace"
	"repro/internal/vt"
)

// ErrShutdown reports that an operation was interrupted because the
// runtime is stopping. Thread bodies should return promptly on it (run()
// treats it as a clean exit, so `return err` suffices).
var ErrShutdown = errors.New("runtime: shutting down")

// ErrPortKind reports a get/put variant that the port's buffer backend
// does not support — a timestamped GetAt on a FIFO queue, a GetQueue on a
// channel input, a windowed input on a backend without window support.
// Before the buffer layer became pluggable these misuses panicked through
// a runtime type assertion; now they surface as a typed error at wiring
// or call time.
var ErrPortKind = errors.New("runtime: operation not supported by port's buffer backend")

// ErrDegraded reports that a wire-backed put/get exhausted its redial and
// retry budget: the remote peer is unreachable and the operation did NOT
// take effect. The endpoint keeps redialing on subsequent operations;
// bodies should treat the fault as observable load shedding (skip the
// item, keep looping), not a crash.
var ErrDegraded = buffer.ErrDegraded

// ErrReattached is informational: the operation SUCCEEDED, but only
// after its connection was redialed and the attachment replayed. The
// accompanying result is valid and all bookkeeping (provenance, feedback
// piggyback) has been performed; bodies that do not care must filter it
// with errors.Is(err, ErrReattached) before bailing on non-nil errors.
var ErrReattached = buffer.ErrReattached

// ErrPeerFailed reports that a get or put can never complete because
// every peer on the other side of the buffer failed permanently — a get
// whose producers all died, a put blocked on capacity whose consumers
// all died. It is delivered by the supervision subsystem's failure
// propagation; a body returning it fails permanently itself (the
// cascade is deliberate: restarting against a dead peer is futile), so
// whole dead subgraphs resolve instead of hanging.
var ErrPeerFailed = buffer.ErrPeerFailed

// snapshotItems copies an id list for attachment to a trace event, or
// returns nil when tracing is disabled: the nil recorder would drop the
// copy anyway, and untraced runs must not pay a per-iteration allocation
// for provenance nobody reads.
func snapshotItems(rec *trace.Recorder, ids []trace.ItemID) []trace.ItemID {
	if rec == nil || len(ids) == 0 {
		return nil
	}
	return append([]trace.ItemID(nil), ids...)
}

// Thread is one declared computation thread.
type Thread struct {
	rt     *Runtime
	id     graph.NodeID
	name   string
	host   int
	body   Body
	tenant string

	ins  []*InPort
	outs []*OutPort

	isSource bool
	stop     chan struct{}
	stopOnce sync.Once

	// quiesced flips during a graceful drain: the thread's Ctx rejects
	// further puts with ErrDraining, so no new work enters the graph
	// while the backlog flushes (see drain.go).
	quiesced atomic.Bool

	// Elastic replication (see replica.go). replicaSlot is 0 for ordinary
	// threads and the primary incarnation of a replicated stage; replicas
	// carry their slot number (≥ 1) and fold their measured current-STP
	// into the stage's parallel composition instead of overwriting it.
	// retiring is the scale-down signal: it gates the *consume* side only
	// (the mirror of quiesced, which gates produce), so a retiring replica
	// finishes delivering the outputs of the item it already holds and
	// exits cleanly before taking another.
	replicaSlot int
	retiring    atomic.Bool

	// Supervision (see supervisor.go). restart/hasRestart/stallTTL are
	// set at AddThread time and read-only afterwards; the rest is
	// guarded by supMu except lastBeat, which the hot path (Ctx.Sync)
	// stamps atomically.
	restart      RestartPolicy
	hasRestart   bool
	stallTTL     time.Duration
	supMu        sync.Mutex
	state        ThreadState
	restarts     int
	restartTimes []time.Duration
	lastFailure  *ThreadFailure
	stalled      bool
	rng          *rand.Rand
	lastBeat     atomic.Int64

	// tm holds the thread's live metric handles (see runtime/metrics.go).
	// The zero value is the metrics-off configuration: every handle is
	// nil and every use no-ops after one branch.
	tm threadInstruments
}

// ID returns the thread's task-graph id.
func (t *Thread) ID() graph.NodeID { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Tenant returns the thread's tenant/pipeline label ("" when unset).
func (t *Thread) Tenant() string { return t.tenant }

// Host returns the thread's placement.
func (t *Thread) Host() int { return t.host }

// Input connects a buffer as one of the thread's inputs and returns the
// port used to get from it.
func (t *Thread) Input(src *BufferRef) (*InPort, error) {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if err := t.rt.checkBuilding("connect input"); err != nil {
		return nil, err
	}
	conn, err := t.rt.g.Connect(src.id, t.id)
	if err != nil {
		return nil, err
	}
	p := &InPort{thread: t, ref: src, conn: conn}
	t.ins = append(t.ins, p)
	return p, nil
}

// MustInput is Input that panics on error.
func (t *Thread) MustInput(src *BufferRef) *InPort {
	p, err := t.Input(src)
	if err != nil {
		panic(err)
	}
	return p
}

// InputWindow connects a buffer as a sliding-window input of width
// n ≥ 1: GetWindow on the returned port delivers the freshest item plus
// the retained trailing items — the paper's gesture-recognition motif
// ("a sliding window over a video stream"). The backend must support
// windows (channels do, FIFO queues and wire-backed endpoints do not);
// misuse is a typed ErrPortKind error at wiring time.
func (t *Thread) InputWindow(src *BufferRef, n int) (*InPort, error) {
	if n < 1 {
		return nil, fmt.Errorf("runtime: window width %d < 1", n)
	}
	if !src.caps.Windows {
		return nil, fmt.Errorf("%w: windowed input requires a channel, got %q (backend %q)", ErrPortKind, src.name, src.backend)
	}
	p, err := t.Input(src)
	if err != nil {
		return nil, err
	}
	p.window = n
	return p, nil
}

// MustInputWindow is InputWindow that panics on error.
func (t *Thread) MustInputWindow(src *BufferRef, n int) *InPort {
	p, err := t.InputWindow(src, n)
	if err != nil {
		panic(err)
	}
	return p
}

// Output connects a buffer as one of the thread's outputs and returns the
// port used to put into it.
func (t *Thread) Output(dst *BufferRef) (*OutPort, error) {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if err := t.rt.checkBuilding("connect output"); err != nil {
		return nil, err
	}
	conn, err := t.rt.g.Connect(t.id, dst.id)
	if err != nil {
		return nil, err
	}
	p := &OutPort{thread: t, ref: dst, conn: conn}
	t.outs = append(t.outs, p)
	return p, nil
}

// MustOutput is Output that panics on error.
func (t *Thread) MustOutput(dst *BufferRef) *OutPort {
	p, err := t.Output(dst)
	if err != nil {
		panic(err)
	}
	return p
}

// prepare finalizes the thread just before Start spawns it: each port
// resolves its materialized endpoint once, so the hot path is a direct
// interface dispatch with no map lookups or type assertions.
func (t *Thread) prepare() {
	t.stop = make(chan struct{})
	t.isSource = len(t.ins) == 0
	t.rng = newSupervisionRNG(t.restart.Seed, t.name)
	t.lastBeat.Store(int64(t.rt.clk.Now()))
	for _, p := range t.ins {
		p.buf = t.rt.buffers[p.ref.id]
	}
	for _, p := range t.outs {
		p.buf = t.rt.buffers[p.ref.id]
	}
}

// requestStop signals the body's Stopped()/Done() observers.
func (t *Thread) requestStop() {
	t.stopOnce.Do(func() { close(t.stop) })
}

// run executes the body on its goroutine.
func (t *Thread) run() error {
	ctx := &Ctx{thread: t, rt: t.rt, meter: core.NewMeter(t.rt.clk), throttle: core.NewThrottle(t.rt.clk)}
	ctx.meter.BeginIteration()
	return t.body(ctx)
}

// Msg is a consumed item as seen by a thread body.
type Msg struct {
	// TS is the item's virtual timestamp.
	TS vt.Timestamp
	// Payload is the application data.
	Payload any
	// Size is the item's logical size in bytes.
	Size int64
	// ID is the trace identity (NoItem when tracing is disabled).
	ID trace.ItemID
}

// Ctx is the per-thread execution context handed to a Body. It is not
// safe for concurrent use: a body is a single loop on a single goroutine,
// exactly like a Stampede thread.
type Ctx struct {
	thread   *Thread
	rt       *Runtime
	meter    *core.Meter
	throttle *core.Throttle

	consumed []trace.ItemID
	produced []trace.ItemID
	emitted  int
	iters    int64

	// Reused scratch for the batch and window paths: a steady-state body
	// that batches its puts and gets allocates nothing per iteration. All
	// are safe to reuse because Ctx is single-goroutine by contract.
	putScratch    []*buffer.Item
	putIDScratch  []trace.ItemID
	getScratch    []buffer.GetResult
	windowScratch []Msg
}

// Name returns the owning thread's name.
func (c *Ctx) Name() string { return c.thread.name }

// Host returns the owning thread's placement.
func (c *Ctx) Host() int { return c.thread.host }

// Done returns a channel closed when the runtime is stopping. Under the
// discrete-event virtual clock, blocking directly on it freezes virtual
// time (the clock still counts the goroutine active); a body that wants
// to idle until shutdown should call Park instead.
func (c *Ctx) Done() <-chan struct{} { return c.thread.stop }

// Park blocks until the runtime stops, telling a discrete-event clock
// that the thread is idle so virtual time keeps advancing for everyone
// else.
func (c *Ctx) Park() {
	if b, ok := c.rt.clk.(clock.Blocker); ok {
		b.BlockEnter()
		<-c.thread.stop
		b.BlockExit()
		return
	}
	<-c.thread.stop
}

// Stopped reports whether the runtime is stopping.
func (c *Ctx) Stopped() bool {
	select {
	case <-c.thread.stop:
		return true
	default:
		return false
	}
}

// Iterations returns the number of completed Sync calls.
func (c *Ctx) Iterations() int64 { return c.iters }

// Ins returns the thread's input ports in wiring (declaration) order.
func (c *Ctx) Ins() []*InPort { return c.thread.ins }

// Outs returns the thread's output ports in wiring (declaration) order.
func (c *Ctx) Outs() []*OutPort { return c.thread.outs }

// Compute simulates data-dependent task execution for d of runtime time.
// It counts toward the iteration's busy time and hence the current-STP.
func (c *Ctx) Compute(d time.Duration) {
	c.rt.clk.Sleep(d)
}

// Idle sleeps for d of runtime time without counting toward the
// current-STP or the computation metrics — deliberate pacing, like a
// digitizer waiting for the next camera frame. The paper's computation
// accounting explicitly excludes "blocking and sleep time" (§4).
func (c *Ctx) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	c.rt.clk.Sleep(d)
	c.meter.AddThrottled(d)
}

// Elapsed returns the wall time of the current iteration so far.
func (c *Ctx) Elapsed() time.Duration { return c.meter.Elapsed() }

// ChargeBus charges the host's shared memory system for touching size
// bytes (queueing behind concurrent charges from co-located threads,
// scaled by the host's memory pressure). It models the paper's
// observation that wasteful production loads the memory system everyone
// shares.
func (c *Ctx) ChargeBus(size int64) {
	c.rt.bus(c.thread.host).ChargeScaled(size, c.rt.pressureFactor(c.thread.host))
}

// translateErr maps buffer shutdown errors to ErrShutdown.
func translateErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, buffer.ErrClosed) {
		return ErrShutdown
	}
	return err
}

// portKindErr builds the typed misuse error for a get variant the port's
// backend cannot serve.
func portKindErr(op string, ref *BufferRef) error {
	return fmt.Errorf("%w: %s on %q (backend %q, discipline %s)", ErrPortKind, op, ref.name, ref.backend, ref.caps.Discipline)
}

// Get consumes the next item from any input port per its backend's
// discipline — the freshest unseen item for channel-like (Latest)
// endpoints, the oldest for FIFO queues — blocking until one is
// available. It is the unified consumption path: skipped stale items are
// traced, the consumer's summary-STP is piggybacked to the buffer, and
// the transfer is charged to the network and the local bus, identically
// for every backend.
func (c *Ctx) Get(p *InPort) (Msg, error) {
	if c.thread.retiring.Load() {
		// A retiring replica stops consuming before taking another item;
		// the surviving incarnations drain the buffer (see replica.go).
		return Msg{}, ErrDraining
	}
	res, err := p.buf.Get(p.conn)
	c.meter.AddBlocked(res.Blocked)
	p.noteGet(res.Blocked, err)
	if err != nil && !errors.Is(err, buffer.ErrReattached) {
		return Msg{}, translateErr(err)
	}
	msg, ferr := c.finishGet(p, res)
	if ferr != nil {
		return msg, ferr
	}
	// err is nil or the informational ErrReattached: the item is valid
	// and fully accounted either way.
	return msg, err
}

// GetLatest consumes the freshest item from a get-latest (channel-like)
// input, blocking until one newer than this connection's guarantee
// arrives. It is Get restricted to Latest-discipline ports; a FIFO port
// reports ErrPortKind.
func (c *Ctx) GetLatest(p *InPort) (Msg, error) {
	if p.ref.caps.Discipline != buffer.Latest {
		return Msg{}, portKindErr("GetLatest", p.ref)
	}
	return c.Get(p)
}

// GetQueue dequeues the oldest item from a FIFO queue input. It is Get
// restricted to FIFO-discipline ports; a channel port reports
// ErrPortKind.
func (c *Ctx) GetQueue(p *InPort) (Msg, error) {
	if p.ref.caps.Discipline != buffer.FIFO {
		return Msg{}, portKindErr("GetQueue", p.ref)
	}
	return c.Get(p)
}

// GetWindow consumes the freshest item from a sliding-window input
// (declared via Thread.InputWindow) and returns it together with the
// retained trailing items, oldest first. All returned items count as
// consumed for provenance; the head drives skip/feedback semantics
// exactly like Get. The window slice is scratch owned by the Ctx — valid
// until this thread's next GetWindow call — so a steady-state windowed
// consumer allocates nothing per iteration.
func (c *Ctx) GetWindow(p *InPort) (head Msg, window []Msg, err error) {
	if !p.ref.caps.Windows {
		return Msg{}, nil, portKindErr("GetWindow", p.ref)
	}
	if c.thread.retiring.Load() {
		return Msg{}, nil, ErrDraining
	}
	res, err := p.buf.Get(p.conn)
	c.meter.AddBlocked(res.Blocked)
	p.noteGet(res.Blocked, err)
	if err != nil {
		return Msg{}, nil, translateErr(err)
	}
	rec := c.rt.opts.Recorder
	now := c.rt.clk.Now()
	c.windowScratch = c.windowScratch[:0]
	for _, w := range res.Window {
		rec.Append(trace.Event{Kind: trace.EvGet, At: now, Item: w.ID, Node: p.ref.id, Thread: c.thread.id})
		c.consumed = append(c.consumed, w.ID)
		// Window members already live locally; only the head pays the
		// transfer below.
		c.windowScratch = append(c.windowScratch, Msg{TS: w.TS, Payload: w.Payload, Size: w.Size, ID: w.ID})
	}
	if len(c.windowScratch) > 0 {
		window = c.windowScratch
	}
	head, err = c.finishGet(p, res)
	return head, window, err
}

// TryGetLatest is the non-blocking variant of Get: ok is false when no
// item newer than the connection's guarantee is available. Bodies that
// keep working with their previous input when nothing fresh exists (the
// tracker's detectors reusing the current histogram model) are built on
// it; pair it with Reuse so provenance stays accurate.
func (c *Ctx) TryGetLatest(p *InPort) (Msg, bool, error) {
	if !p.ref.caps.TryGet {
		return Msg{}, false, portKindErr("TryGetLatest", p.ref)
	}
	if c.thread.retiring.Load() {
		return Msg{}, false, ErrDraining
	}
	res, ok, err := p.buf.TryGet(p.conn)
	if err != nil && !errors.Is(err, buffer.ErrReattached) {
		p.noteGet(0, err)
		return Msg{}, false, translateErr(err)
	}
	if !ok {
		return Msg{}, false, err // nil or informational ErrReattached
	}
	p.noteGet(0, err)
	msg, ferr := c.finishGet(p, res)
	if ferr != nil {
		return msg, false, ferr
	}
	return msg, true, err // nil or informational ErrReattached
}

// Reuse declares that a previously consumed item participates in the
// current iteration's outputs, so provenance (and therefore the
// wasted-versus-successful classification and latency accounting) remains
// correct for cached inputs.
func (c *Ctx) Reuse(msg Msg) {
	if msg.ID != trace.NoItem {
		c.consumed = append(c.consumed, msg.ID)
	}
}

// GetAt consumes the item at exactly ts from a random-access input. It is
// the corresponding-timestamp primitive (stereo modules, overlays);
// backends without timestamped access (FIFO queues, wire-backed
// endpoints) report ErrPortKind.
func (c *Ctx) GetAt(p *InPort, ts vt.Timestamp) (Msg, error) {
	if !p.ref.caps.GetAt {
		return Msg{}, portKindErr("GetAt", p.ref)
	}
	if c.thread.retiring.Load() {
		return Msg{}, ErrDraining
	}
	res, err := p.buf.GetAt(p.conn, ts)
	c.meter.AddBlocked(res.Blocked)
	p.noteGet(res.Blocked, err)
	if err != nil {
		return Msg{}, translateErr(err)
	}
	return c.finishGet(p, res)
}

// finishGet performs the shared post-consumption work of every get
// variant, uniformly across backends.
func (c *Ctx) finishGet(p *InPort, res buffer.GetResult) (Msg, error) {
	rec := c.rt.opts.Recorder
	now := c.rt.clk.Now()
	for _, sk := range res.Skipped {
		rec.Append(trace.Event{Kind: trace.EvSkip, At: now, Item: sk.ID, Node: p.ref.id, Thread: c.thread.id})
	}
	rec.Append(trace.Event{Kind: trace.EvGet, At: now, Item: res.Item.ID, Node: p.ref.id, Thread: c.thread.id})

	// Move the item to the consumer: network hop (if remote) plus local
	// memory traffic. Both are load and belong in the current-STP.
	c.rt.transfer(p.ref.host, c.thread.host, res.Item.Size)
	c.ChargeBus(res.Item.Size)

	// Piggyback the consumer's summary-STP back to the buffer (§3.3.2).
	c.rt.ctrl.NoteGet(p.conn)

	c.consumed = append(c.consumed, res.Item.ID)
	return Msg{TS: res.Item.TS, Payload: res.Item.Payload, Size: res.Item.Size, ID: res.Item.ID}, nil
}

// Put produces an item with the given timestamp, payload, and logical
// size into any output port. Producing charges the local bus (writing
// size bytes) and, for a remotely placed buffer, the network. The
// buffer's summary-STP is piggybacked back on the same operation — over
// the wire for remote endpoints. The new item's provenance is every item
// consumed so far in this iteration.
func (c *Ctx) Put(p *OutPort, ts vt.Timestamp, payload any, size int64) error {
	if c.thread.quiesced.Load() {
		// Quiesced for a graceful drain: no new work enters the graph.
		// Rejected before any accounting — the item never existed.
		return ErrDraining
	}
	rec := c.rt.opts.Recorder
	id := rec.NewItemID()

	// The producer materializes the item locally, then it travels to the
	// buffer's host.
	c.ChargeBus(size)
	c.rt.transfer(c.thread.host, p.ref.host, size)

	rec.Append(trace.Event{
		Kind: trace.EvAlloc, At: c.rt.clk.Now(), Item: id,
		Node: p.ref.id, Thread: c.thread.id, TS: ts, Size: size,
		Items: snapshotItems(rec, c.consumed),
	})

	// The item comes from the runtime's pool: in steady state this is the
	// Item some buffer's reclamation recycled a moment ago, so the put
	// path performs zero allocations.
	it := c.rt.pool.Get()
	it.TS, it.Payload, it.Size, it.ID = ts, payload, size, id
	blocked, err := p.buf.Put(p.conn, it)
	c.meter.AddBlocked(blocked)
	p.notePut(err)
	if err != nil && !errors.Is(err, buffer.ErrReattached) {
		// The item never entered the buffer (this includes ErrDegraded:
		// a retry budget exhausted against an unreachable peer drops the
		// item); account its storage as immediately reclaimed so
		// footprint accounting stays balanced, and recycle the carrier —
		// ownership only transfers when the put takes effect.
		rec.Append(trace.Event{Kind: trace.EvFree, At: c.rt.clk.Now(), Item: id, Node: p.ref.id})
		c.rt.pool.Recycle(it)
		return translateErr(err)
	}

	// Piggyback the buffer's summary-STP back to this producer (§3.3.2).
	c.rt.ctrl.NotePut(p.conn)

	if !p.ref.caps.Remote {
		// Remote endpoints hold their storage on the server; local
		// footprint accounting tracks in-process buffers only.
		c.rt.addLive(p.ref.host, size)
	}
	c.produced = append(c.produced, id)
	// err is nil or the informational ErrReattached: the item was
	// applied and fully accounted either way.
	return err
}

// PutSpec describes one item of a batched put: the arguments of one
// Ctx.Put call as data.
type PutSpec struct {
	// TS is the item's virtual timestamp.
	TS vt.Timestamp
	// Payload is the application data.
	Payload any
	// Size is the item's logical size in bytes.
	Size int64
}

// PutBatch produces the specs into an output port as one batched
// operation: one lock acquisition (on lock-based backends), one bus
// charge, one network transfer, and one summary-STP piggyback fold for
// the whole batch, amortizing the per-put overhead that dominates
// high-rate producers. Items are applied in order and the batch stops at
// the first failure; applied reports how many entered the buffer (all
// of them when err is nil or the informational ErrReattached). The
// provenance of every item in the batch is the items consumed so far in
// this iteration, like repeated Ctx.Put calls.
func (c *Ctx) PutBatch(p *OutPort, specs []PutSpec) (applied int, err error) {
	if len(specs) == 0 {
		return 0, nil
	}
	if c.thread.quiesced.Load() {
		return 0, ErrDraining
	}
	rec := c.rt.opts.Recorder

	// Materializing the batch touches every payload once locally, then
	// the whole batch travels to the buffer's host in one transfer.
	var total int64
	for i := range specs {
		total += specs[i].Size
	}
	c.ChargeBus(total)
	c.rt.transfer(c.thread.host, p.ref.host, total)

	if cap(c.putScratch) < len(specs) {
		c.putScratch = make([]*buffer.Item, len(specs))
		c.putIDScratch = make([]trace.ItemID, len(specs))
	}
	items := c.putScratch[:len(specs)]
	ids := c.putIDScratch[:len(specs)]
	c.rt.pool.GetN(items) // one pool round for the whole batch
	var now time.Duration
	if rec != nil {
		now = c.rt.clk.Now() // the clock feeds only trace events
	}
	for i := range specs {
		it := items[i]
		it.TS, it.Payload, it.Size = specs[i].TS, specs[i].Payload, specs[i].Size
		it.ID = rec.NewItemID()
		ids[i] = it.ID
		if rec != nil {
			rec.Append(trace.Event{
				Kind: trace.EvAlloc, At: now, Item: it.ID,
				Node: p.ref.id, Thread: c.thread.id, TS: it.TS, Size: it.Size,
				Items: snapshotItems(rec, c.consumed),
			})
		}
	}

	applied, blocked, err := p.buf.PutBatch(p.conn, items)
	c.meter.AddBlocked(blocked)
	p.notePut(err)

	// items[:applied] belong to the buffer now — they may already be
	// freed and recycled, so provenance and footprint are read from the
	// specs and the id scratch, never back from the items. One feedback
	// fold covers the whole batch: the summary-STP piggyback is
	// per-operation, not per-item (§3.3.2).
	if applied > 0 {
		c.rt.ctrl.NotePut(p.conn)
		if !p.ref.caps.Remote {
			var appliedBytes int64
			for i := 0; i < applied; i++ {
				appliedBytes += specs[i].Size
			}
			c.rt.addLive(p.ref.host, appliedBytes)
		}
		if rec != nil {
			c.produced = append(c.produced, ids[:applied]...)
		}
	}
	// items[applied:] never entered the buffer: their storage is
	// accounted as immediately reclaimed and the carriers recycled.
	if applied < len(items) {
		if rec != nil {
			now := c.rt.clk.Now()
			for i := applied; i < len(items); i++ {
				rec.Append(trace.Event{Kind: trace.EvFree, At: now, Item: ids[i], Node: p.ref.id})
			}
		}
		c.rt.pool.RecycleN(items[applied:])
	}
	for i := range items {
		items[i] = nil // drop the references; the scratch persists
	}
	if err != nil && !errors.Is(err, buffer.ErrReattached) {
		return applied, translateErr(err)
	}
	return applied, err
}

// GetBatch consumes up to len(dst) items from an input port as one
// batched operation, blocking only until the first is available. It
// returns the number filled (≥ 1 when err is nil) with per-item
// semantics identical to Get — each item is traced and counted as
// consumed — but the lock acquisition, the bus and network charges, the
// summary-STP piggyback, and the metrics updates are amortized over the
// batch. len(dst) == 0 returns (0, nil) without blocking.
func (c *Ctx) GetBatch(p *InPort, dst []Msg) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if c.thread.retiring.Load() {
		return 0, ErrDraining
	}
	if cap(c.getScratch) < len(dst) {
		c.getScratch = make([]buffer.GetResult, len(dst))
	}
	res := c.getScratch[:len(dst)]
	n, err := p.buf.GetBatch(p.conn, res)
	var blocked time.Duration
	if n > 0 {
		blocked = res[0].Blocked
	}
	c.meter.AddBlocked(blocked)
	p.noteGetBatch(n, blocked, err)
	if err != nil && !errors.Is(err, buffer.ErrReattached) {
		return 0, translateErr(err)
	}

	rec := c.rt.opts.Recorder
	var now time.Duration
	if rec != nil {
		now = c.rt.clk.Now() // the clock feeds only trace events
	}
	var total int64
	for i := 0; i < n; i++ {
		r := &res[i]
		if rec != nil {
			for _, sk := range r.Skipped {
				rec.Append(trace.Event{Kind: trace.EvSkip, At: now, Item: sk.ID, Node: p.ref.id, Thread: c.thread.id})
			}
			rec.Append(trace.Event{Kind: trace.EvGet, At: now, Item: r.Item.ID, Node: p.ref.id, Thread: c.thread.id})
			c.consumed = append(c.consumed, r.Item.ID)
		}
		total += r.Item.Size
		dst[i] = Msg{TS: r.Item.TS, Payload: r.Item.Payload, Size: r.Item.Size, ID: r.Item.ID}
		*r = buffer.GetResult{} // drop payload references from the scratch
	}

	// One transfer and one bus charge move the whole batch to the
	// consumer; one fold piggybacks the consumer's summary-STP back.
	c.rt.transfer(p.ref.host, c.thread.host, total)
	c.ChargeBus(total)
	c.rt.ctrl.NoteGet(p.conn)
	return n, err
}

// ShouldProduce reports whether work toward putting timestamp ts into
// the output is still worthwhile: false when every consumer of the
// target buffer has already moved past ts (the item would be dead on
// arrival). This is the paper's §3.2 upstream computation elimination
// using local virtual-time knowledge; backends whose items are never
// skipped (FIFO queues) always report true. Call it before the expensive
// compute, not after.
func (c *Ctx) ShouldProduce(p *OutPort, ts vt.Timestamp) bool {
	return !p.buf.WouldBeDead(ts)
}

// Emit records one pipeline output: the items consumed so far in this
// iteration reached the end of the pipeline (the tracker's GUI displaying
// a frame). Sink threads call it once per successful iteration.
func (c *Ctx) Emit() {
	rec := c.rt.opts.Recorder
	rec.Append(trace.Event{
		Kind: trace.EvEmit, At: c.rt.clk.Now(), Thread: c.thread.id,
		Items: snapshotItems(rec, c.consumed),
	})
	c.emitted++
}

// Sync is the paper's periodicity_sync(): every thread calls it at the
// end of each loop iteration. It measures the iteration's current-STP
// (blocking excluded), feeds it to the ARU controller, records the
// iteration trace event, and — for source threads — paces the loop to the
// thread's summary-STP, which is precisely how ARU throttles production.
func (c *Ctx) Sync() {
	fullElapsed := c.meter.Elapsed()
	current, busy, blocked := c.meter.EndIteration()

	// Heartbeat for the stall watchdog: one atomic store per iteration,
	// timing-neutral (the clock was already read above).
	c.thread.lastBeat.Store(int64(c.rt.clk.Now()))

	// Re-fold wire-backed output summaries every iteration. A remote
	// buffer's summary-STP decays with age (graceful degradation), but
	// the ordinary piggyback fold only runs on successful puts — exactly
	// what stops happening when the peer dies. Refreshing here lets the
	// decayed value (ultimately Unknown) reach this thread's backward
	// vector, so its pacing returns to the local current-STP.
	for _, p := range c.thread.outs {
		if p.ref.caps.Remote {
			c.rt.ctrl.NotePut(p.conn)
		}
	}

	if c.thread.replicaSlot > 0 {
		// A replica's measurement folds into the stage's parallel
		// composition instead of overwriting the primary's.
		c.rt.ctrl.SetReplicaSTP(c.thread.id, c.thread.replicaSlot, current)
	} else {
		c.rt.ctrl.SetCurrentSTP(c.thread.id, current)
	}
	rec := c.rt.opts.Recorder
	rec.Append(trace.Event{
		Kind: trace.EvIter, At: c.rt.clk.Now(), Thread: c.thread.id,
		Compute: busy, Blocked: blocked,
		Items: snapshotItems(rec, c.produced),
	})
	c.consumed = c.consumed[:0]
	c.produced = c.produced[:0]
	c.iters++
	if c.thread.tm.iterations != nil {
		c.thread.tm.iterations.Inc()
	}

	if c.thread.isSource && !c.Stopped() {
		// TargetPeriod is the thread's summary-STP under raw propagation,
		// or the estimator stage's damped target when one is plugged in
		// (Policy.WithEstimator) — the single actuation point of the
		// control loop either way.
		target := c.rt.ctrl.TargetPeriod(c.thread.id)
		slept := c.throttle.Pace(target, fullElapsed)
		if slept > 0 && c.thread.tm.throttleSleep != nil {
			c.thread.tm.throttleSleep.AddDuration(slept)
		}
	}
	c.meter.BeginIteration()
}
