package runtime

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vt"
)

// TestCtxBatchOverBackends drives the batch entry points end to end over
// every in-process backend: a producer thread amortizing its puts with
// Ctx.PutBatch, a consumer draining with Ctx.GetBatch. Each backend must
// deliver every item exactly once and in timestamp order (channels under
// the no-op collector drain losslessly oldest-first; queues and rings
// are FIFO by discipline).
func TestCtxBatchOverBackends(t *testing.T) {
	const batches, perBatch = 10, 16
	for _, backend := range []string{"channel", "queue", "ring"} {
		t.Run(backend, func(t *testing.T) {
			rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
			var ref *BufferRef
			switch backend {
			case "channel":
				ref = rt.MustAddChannel("B", 0)
			case "queue":
				ref = rt.MustAddQueue("B", 0)
			case "ring":
				ref = rt.MustAddRing("B", 0, WithCapacity(64))
			}

			prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
				out := ctx.Outs()[0]
				specs := make([]PutSpec, perBatch)
				for b := 0; b < batches; b++ {
					for i := range specs {
						ts := vt.Timestamp(b*perBatch + i + 1)
						specs[i] = PutSpec{TS: ts, Payload: int(ts), Size: 8}
					}
					if applied, err := ctx.PutBatch(out, specs); err != nil || applied != perBatch {
						return fmt.Errorf("putbatch = (%d, %v), want (%d, nil)", applied, err, perBatch)
					}
				}
				<-ctx.Done()
				return nil
			})

			got := make(chan []vt.Timestamp, 1)
			cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error {
				in := ctx.Ins()[0]
				dst := make([]Msg, 24)
				var seen []vt.Timestamp
				for len(seen) < batches*perBatch {
					n, err := ctx.GetBatch(in, dst)
					if err != nil {
						return err
					}
					for _, m := range dst[:n] {
						if m.Payload.(int) != int(m.TS) {
							return fmt.Errorf("payload %v does not match ts %v", m.Payload, m.TS)
						}
						seen = append(seen, m.TS)
					}
				}
				got <- seen
				<-ctx.Done()
				return nil
			})

			prod.MustOutput(ref)
			cons.MustInput(ref)
			if err := rt.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				rt.Stop()
				rt.Wait()
			}()

			select {
			case seen := <-got:
				for i, ts := range seen {
					if ts != vt.Timestamp(i+1) {
						t.Fatalf("seen[%d] = %v, want %v (in-order exactly-once delivery)", i, ts, i+1)
					}
				}
			case <-time.After(10 * time.Second):
				t.Fatal("consumer did not drain the batches")
			}
		})
	}
}

// TestQueueAutoUpgradeToRing pins the materialization-time backend swap:
// a bounded power-of-two queue with one FIFO consumer under a real clock
// silently becomes a ring, and every disqualifier (unbounded, non-power-
// of-two, fan-out, discrete-event clock) leaves the queue as declared.
func TestQueueAutoUpgradeToRing(t *testing.T) {
	pipeline := func(rt *Runtime, ref *BufferRef, consumers int) {
		prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error { <-ctx.Done(); return nil })
		prod.MustOutput(ref)
		for i := 0; i < consumers; i++ {
			cons := rt.MustAddThread(fmt.Sprintf("cons%d", i), 0, func(ctx *Ctx) error { <-ctx.Done(); return nil })
			cons.MustInput(ref)
		}
	}
	start := func(t *testing.T, rt *Runtime) {
		t.Helper()
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		rt.Stop()
		rt.Wait()
	}

	t.Run("eligible", func(t *testing.T) {
		rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
		q := rt.MustAddQueue("Q", 0, WithCapacity(64))
		pipeline(rt, q, 1)
		start(t, rt)
		if q.Backend() != "ring" {
			t.Fatalf("backend = %q, want ring", q.Backend())
		}
	})
	t.Run("unbounded", func(t *testing.T) {
		rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
		q := rt.MustAddQueue("Q", 0)
		pipeline(rt, q, 1)
		start(t, rt)
		if q.Backend() != "queue" {
			t.Fatalf("backend = %q, want queue (unbounded queues cannot ring)", q.Backend())
		}
	})
	t.Run("non-power-of-two", func(t *testing.T) {
		rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
		q := rt.MustAddQueue("Q", 0, WithCapacity(48))
		pipeline(rt, q, 1)
		start(t, rt)
		if q.Backend() != "queue" {
			t.Fatalf("backend = %q, want queue (capacity 48 must stay exact, not round to 64)", q.Backend())
		}
	})
	t.Run("fan-out", func(t *testing.T) {
		rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
		q := rt.MustAddQueue("Q", 0, WithCapacity(64))
		pipeline(rt, q, 2)
		start(t, rt)
		if q.Backend() != "queue" {
			t.Fatalf("backend = %q, want queue (two consumers need the shared pop)", q.Backend())
		}
	})
	t.Run("virtual-clock", func(t *testing.T) {
		rt := New(Options{Clock: clock.NewVirtual(), ARU: core.PolicyOff()})
		q := rt.MustAddQueue("Q", 0, WithCapacity(64))
		prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error { return nil })
		cons := rt.MustAddThread("cons", 0, func(ctx *Ctx) error { return nil })
		prod.MustOutput(q)
		cons.MustInput(q)
		if err := rt.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if q.Backend() != "queue" {
			t.Fatalf("backend = %q, want queue (ring spins cannot advance virtual time)", q.Backend())
		}
	})
	t.Run("explicit-ring", func(t *testing.T) {
		rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
		r := rt.MustAddRing("R", 0, WithCapacity(32))
		pipeline(rt, r, 1)
		start(t, rt)
		if r.Backend() != "ring" {
			t.Fatalf("backend = %q, want ring", r.Backend())
		}
	})
}

// TestMultiTenantPipelines packs thousands of independent two-thread
// pipelines into one runtime — the million-client shape: many small
// tenant graphs sharing one scheduler, one item pool, and one
// materialization pass. Every pipeline's queue is ring-eligible, so this
// is also the auto-upgrade at scale, and the per-tenant item counts must
// come out exact despite 2·N goroutines running concurrently.
func TestMultiTenantPipelines(t *testing.T) {
	pipelines := 10000
	if testing.Short() {
		pipelines = 500
	}
	const perPipeline = 4

	rt := New(Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})
	var delivered atomic.Int64
	refs := make([]*BufferRef, pipelines)
	for i := 0; i < pipelines; i++ {
		q := rt.MustAddQueue(fmt.Sprintf("q%d", i), 0, WithCapacity(8))
		refs[i] = q
		prod := rt.MustAddThread(fmt.Sprintf("p%d", i), 0, func(ctx *Ctx) error {
			out := ctx.Outs()[0]
			specs := make([]PutSpec, perPipeline)
			for k := range specs {
				specs[k] = PutSpec{TS: vt.Timestamp(k + 1), Size: 16}
			}
			if applied, err := ctx.PutBatch(out, specs); err != nil || applied != perPipeline {
				return fmt.Errorf("putbatch = (%d, %v)", applied, err)
			}
			return nil
		})
		cons := rt.MustAddThread(fmt.Sprintf("c%d", i), 0, func(ctx *Ctx) error {
			in := ctx.Ins()[0]
			dst := make([]Msg, perPipeline)
			var next vt.Timestamp = 1
			for got := 0; got < perPipeline; {
				n, err := ctx.GetBatch(in, dst)
				if err != nil {
					return err
				}
				for _, m := range dst[:n] {
					if m.TS != next {
						return fmt.Errorf("tenant saw ts %v, want %v", m.TS, next)
					}
					next++
				}
				got += n
				delivered.Add(int64(n))
			}
			return nil
		})
		prod.MustOutput(q)
		cons.MustInput(q)
	}

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		rt.Stop()
		rt.Wait()
	}()

	want := int64(pipelines * perPipeline)
	deadline := time.Now().Add(60 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d items before the deadline", delivered.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered = %d, want exactly %d", got, want)
	}
	for _, ref := range refs[:10] {
		if ref.Backend() != "ring" {
			t.Fatalf("tenant queue %s backend = %q, want ring (auto-upgrade at scale)", ref.Name(), ref.Backend())
		}
	}
}
