package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vt"
)

// TestFeedbackPropagationDelay validates the paper's §3.3.2 claim about
// reaction time: "The worst case propagation time for a summary-STP value
// to reach the producer from the last consumer in the pipeline is equal
// to the time it takes for an item to be processed and be emitted by the
// application (i.e., latency)" — because summaries hop one stage backwards
// per put/get.
//
// Setup: src → C1 → mid → C2 → sink, everything fast (~10 ms latency).
// Mid-run the sink slows from 10 ms to 80 ms. The source's summary-STP
// must reflect ~80 ms within a few pipeline latencies, not within some
// global epoch.
func TestFeedbackPropagationDelay(t *testing.T) {
	rec := trace.NewRecorder()
	rt := New(Options{Clock: fastClock(), ARU: core.PolicyMin(), Recorder: rec})
	c1 := rt.MustAddChannel("C1", 0)
	c2 := rt.MustAddChannel("C2", 0)

	var slow atomic.Bool
	var adaptedAt atomic.Int64 // runtime ns when the source first saw ≥60ms
	adaptedAt.Store(-1)

	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 10); err != nil {
				return err
			}
			ctx.Sync()
			if adaptedAt.Load() < 0 {
				if target := rt.Controller().TargetPeriod(ctx.thread.id); target.Known() && target.Duration() >= 60*time.Millisecond {
					adaptedAt.Store(int64(rt.Clock().Now()))
				}
			}
		}
		return nil
	})
	mid := rt.MustAddThread("mid", 0, func(ctx *Ctx) error {
		for {
			msg, err := ctx.GetLatest(ctx.Ins()[0])
			if err != nil {
				return err
			}
			ctx.Compute(3 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], msg.TS, nil, 10); err != nil {
				return err
			}
			ctx.Sync()
		}
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			if slow.Load() {
				ctx.Compute(80 * time.Millisecond)
			} else {
				ctx.Compute(10 * time.Millisecond)
			}
			ctx.Emit()
			ctx.Sync()
		}
	})
	src.MustOutput(c1)
	mid.MustInput(c1)
	mid.MustOutput(c2)
	sink.MustInput(c2)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the pipeline reach steady state, then flip the sink slow.
	waitVirtual(t, rt, 300*time.Millisecond)
	slowAt := rt.Clock().Now()
	slow.Store(true)
	waitVirtual(t, rt, 1200*time.Millisecond)
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	got := adaptedAt.Load()
	if got < 0 {
		t.Fatal("source never adapted to the slowed sink")
	}
	delay := time.Duration(got) - slowAt
	// Pipeline latency here is a few tens of ms at steady state; after
	// the slowdown, one full item traversal costs ≲ 100 ms. The paper's
	// bound says the feedback needs roughly one traversal (plus the
	// stage periods for the next put/get to happen). Allow 5×, reject
	// an order of magnitude.
	if delay > 500*time.Millisecond {
		t.Fatalf("feedback took %v to reach the source; §3.3.2 bounds it by ~pipeline latency", delay)
	}
	if delay <= 0 {
		t.Fatalf("nonsensical adaptation delay %v", delay)
	}
	t.Logf("source adapted %v after the sink slowed", delay)
}

// waitVirtual sleeps d of runtime (virtual) time from a non-thread
// goroutine, registering with a discrete-event clock if present.
func waitVirtual(t *testing.T, rt *Runtime, d time.Duration) {
	t.Helper()
	type registrar interface{ Add(int) }
	if reg, ok := rt.Clock().(registrar); ok {
		reg.Add(1)
		rt.Clock().Sleep(d)
		reg.Add(-1)
		return
	}
	rt.Clock().Sleep(d)
}
