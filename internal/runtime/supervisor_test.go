package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vt"
)

// waitManualSleepers polls until n goroutines are blocked in clk.Sleep.
func waitManualSleepers(t *testing.T, clk *clock.Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Sleepers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d manual-clock sleepers (have %d)", n, clk.Sleepers())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitState polls until the thread reaches the given lifecycle state.
func waitState(t *testing.T, th *Thread, want ThreadState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for th.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for thread %q to reach %v (at %v)", th.Name(), want, th.State())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRestartSchedulePinned pins the exact restart schedule a
// deterministic (jitter-disabled) policy produces on a fake clock: a
// body that panics immediately is restarted at 100ms, 300ms, and 700ms
// (delays 100·2ⁿ), then the budget of 3 restarts is exhausted, the
// thread fails permanently, and its blocked consumer unblocks with
// ErrPeerFailed. Wait reports both failures and is idempotent.
func TestRestartSchedulePinned(t *testing.T) {
	clk := clock.NewManual()
	rt := New(Options{Clock: clk})
	c1 := rt.MustAddChannel("C1", 0)

	var mu sync.Mutex
	var starts []time.Duration
	crashy := rt.MustAddThread("crashy", 0, func(ctx *Ctx) error {
		mu.Lock()
		starts = append(starts, clk.Now())
		mu.Unlock()
		panic("injected")
	}, WithRestartOnFailure(RestartPolicy{
		Backoff:     backoff.Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: -1},
		MaxRestarts: 3,
		Seed:        1,
	}))
	var sinkErr error
	sinkDone := make(chan struct{})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		defer close(sinkDone)
		_, sinkErr = ctx.GetLatest(ctx.Ins()[0])
		return sinkErr
	})
	crashy.MustOutput(c1)
	sink.MustInput(c1)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Each crash parks the supervisor in a backoff sleep; release the
	// exact scheduled delay each time.
	for _, d := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond} {
		waitManualSleepers(t, clk, 1)
		clk.Advance(d)
	}
	waitState(t, crashy, StateFailed)
	<-sinkDone

	mu.Lock()
	got := append([]time.Duration(nil), starts...)
	mu.Unlock()
	want := []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond, 700 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("body ran %d times (%v), want %d (%v)", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("incarnation %d started at %v, want %v", i, got[i], want[i])
		}
	}
	if crashy.Restarts() != 3 {
		t.Errorf("restarts = %d, want 3", crashy.Restarts())
	}
	f := crashy.LastFailure()
	if f == nil || f.Value != "injected" || len(f.Stack) == 0 {
		t.Fatalf("last failure = %+v, want recovered panic with stack", f)
	}

	// The dead producer's consumer unblocked with the typed condition.
	if !errors.Is(sinkErr, ErrPeerFailed) {
		t.Fatalf("sink error = %v, want ErrPeerFailed", sinkErr)
	}

	// Wait reports both permanent failures, and repeated calls return
	// the identical joined error (no double-close panic).
	err1 := rt.Wait()
	if err1 == nil {
		t.Fatal("Wait reported no error")
	}
	var tf *ThreadFailure
	if !errors.As(err1, &tf) {
		t.Fatalf("Wait error %v does not unwrap to *ThreadFailure", err1)
	}
	if !errors.Is(err1, ErrPeerFailed) {
		t.Errorf("Wait error %v does not include the sink's ErrPeerFailed", err1)
	}
	if err2 := rt.Wait(); !errors.Is(err2, err1) && err2.Error() != err1.Error() {
		t.Errorf("second Wait returned a different error: %v vs %v", err2, err1)
	}
}

// TestRestartWindowRefreshesBudget verifies the sliding restart window:
// with MaxRestarts 2 per 150ms window, a thread that keeps crashing is
// still restarted past 2 total failures because old restarts age out of
// the window (and the backoff attempt index resets with them).
func TestRestartWindowRefreshesBudget(t *testing.T) {
	clk := clock.NewManual()
	rt := New(Options{Clock: clk})
	c1 := rt.MustAddChannel("C1", 0)

	crashy := rt.MustAddThread("crashy", 0, func(ctx *Ctx) error {
		panic("again")
	}, WithRestartOnFailure(RestartPolicy{
		Backoff:     backoff.Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: -1},
		MaxRestarts: 2,
		Window:      150 * time.Millisecond,
		Seed:        1,
	}))
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		_, err := ctx.GetLatest(ctx.Ins()[0])
		return err
	})
	crashy.MustOutput(c1)
	sink.MustInput(c1)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Schedule: restart 1 after 100ms (t=100), restart 2 after 200ms
	// (t=300). At t=300 the t=100 restart is 200ms old and has aged out
	// of the 150ms window, so the budget is 1/2 again and the attempt
	// index is back to 1: restart 3 comes after another 200ms — a
	// lifetime budget of 2 would have failed permanently at t=300.
	for _, d := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond} {
		waitManualSleepers(t, clk, 1)
		clk.Advance(d)
	}
	waitManualSleepers(t, clk, 1) // a 4th backoff sleep: still restarting
	if got := crashy.Restarts(); got < 3 {
		t.Fatalf("restarts = %d, want ≥ 3 (window should refresh the budget)", got)
	}
	if st := crashy.State(); st == StateFailed {
		t.Fatalf("thread failed permanently despite window-refreshed budget")
	}
	rt.Stop()
	clk.Advance(time.Second) // release the pending backoff sleep
	_ = rt.Wait()
}

// TestFailurePropagationReleasesSTP injects a permanent mid-run sink
// failure under ARU-min and asserts the paper's liveness property for
// feedback: the dead consumer's summary-STP is released from the
// backward fold, so the upstream producer returns from the sink's 40ms
// period to its own 5ms period — instead of pacing to a ghost forever.
func TestFailurePropagationReleasesSTP(t *testing.T) {
	rt := New(Options{Clock: fastClock(), ARU: core.PolicyMin()})
	c1 := rt.MustAddChannel("C1", 0)

	var mu sync.Mutex
	var srcIters []time.Duration
	var failedAt time.Duration
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(5 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
			mu.Lock()
			srcIters = append(srcIters, rt.Clock().Now())
			mu.Unlock()
		}
		return nil
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for n := 0; ; n++ {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Compute(40 * time.Millisecond)
			ctx.Sync()
			if n == 7 {
				mu.Lock()
				failedAt = rt.Clock().Now()
				mu.Unlock()
				return errors.New("injected sink failure")
			}
		}
	})
	src.MustOutput(c1)
	sink.MustInput(c1)

	if err := rt.RunFor(2 * time.Second); err == nil {
		t.Fatal("expected the injected sink failure in Wait")
	} else if want := "injected sink failure"; !errors.As(err, new(*ThreadFailure)) {
		t.Fatalf("error %v does not unwrap to *ThreadFailure (want %q inside)", err, want)
	}

	mu.Lock()
	defer mu.Unlock()
	if failedAt == 0 {
		t.Fatal("sink never failed")
	}
	// Iteration rates before and after the failure. While the sink was
	// alive, ARU-min throttled the source toward the sink's ~40ms
	// period; after the failure is propagated the source returns to its
	// own ~5ms period.
	var before, after int
	cut := failedAt + 100*time.Millisecond // settle margin
	for _, at := range srcIters {
		if at <= failedAt {
			before++
		} else if at > cut {
			after++
		}
	}
	beforeRate := float64(before) / float64(failedAt)
	afterWindow := 2*time.Second - cut
	afterRate := float64(after) / float64(afterWindow)
	if afterRate < 3*beforeRate {
		t.Errorf("source did not speed back up after consumer death: before %.2f iters/s, after %.2f iters/s (failedAt=%v, before=%d, after=%d)",
			beforeRate*float64(time.Second), afterRate*float64(time.Second), failedAt, before, after)
	}
	// The controller's view agrees: the source's target period is back
	// at (or below) its own measured period, not the sink's 40ms.
	target := rt.Controller().TargetPeriod(src.ID())
	if target.Known() && target.Duration() > 10*time.Millisecond {
		t.Errorf("target period still throttled to %v after consumer death", target.Duration())
	}
}

// TestSupervisionChaos runs the full failure menagerie on one graph —
// a panicking source under a restart policy, a mid-pipeline stage that
// errors permanently, a sink that cascades via ErrPeerFailed, and a
// consumer that silently stalls — and asserts the process never
// crashes, every failure is contained, typed, and reported, and the
// watchdog flags the staller.
func TestSupervisionChaos(t *testing.T) {
	var stallMu sync.Mutex
	stalls := map[string]int{}
	rt := New(Options{
		Clock:    fastClock(),
		ARU:      core.PolicyMin(),
		StallTTL: 80 * time.Millisecond,
		OnStall: func(name string, age time.Duration) {
			stallMu.Lock()
			stalls[name]++
			stallMu.Unlock()
		},
	})
	c1 := rt.MustAddChannel("C1", 0)
	c2 := rt.MustAddChannel("C2", 0)

	// Crashy source: panics every 4th put, restart budget 3 → three
	// contained restarts, then permanent failure.
	var produced vt.Timestamp
	var pmu sync.Mutex
	crashy := rt.MustAddThread("crashy-src", 0, func(ctx *Ctx) error {
		for !ctx.Stopped() {
			pmu.Lock()
			produced++
			ts := produced
			pmu.Unlock()
			if ts%4 == 0 {
				panic("chaos: injected source panic")
			}
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	}, WithRestartOnFailure(RestartPolicy{
		Backoff:     backoff.Backoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2, Jitter: -1},
		MaxRestarts: 3,
		Seed:        1719,
	}))

	// Mid stage: errors permanently after 3 iterations.
	mid := rt.MustAddThread("mid", 0, func(ctx *Ctx) error {
		for n := 0; ; n++ {
			m, err := ctx.GetLatest(ctx.Ins()[0])
			if err != nil {
				return err
			}
			ctx.Compute(3 * time.Millisecond)
			if n == 2 {
				return errors.New("chaos: injected mid failure")
			}
			if err := ctx.Put(ctx.Outs()[0], m.TS, nil, 50); err != nil {
				return err
			}
			ctx.Sync()
		}
	})

	// Sink: cascades — once mid (its only producer) dies, its blocking
	// get must report ErrPeerFailed rather than hang.
	var sinkErr error
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				sinkErr = err
				return err
			}
			ctx.Compute(2 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})

	// Staller: consumes twice, then silently hangs forever — the
	// watchdog must flag it.
	staller := rt.MustAddThread("staller", 0, func(ctx *Ctx) error {
		for n := 0; n < 2; n++ {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Sync()
		}
		ctx.Park()
		return nil
	})

	crashy.MustOutput(c1)
	mid.MustInput(c1)
	mid.MustOutput(c2)
	sink.MustInput(c2)
	staller.MustInput(c1)

	if err := rt.RunFor(time.Second); err == nil {
		t.Fatal("expected joined failures from Wait")
	} else {
		if !errors.Is(err, ErrPeerFailed) {
			t.Errorf("Wait error lacks the sink's ErrPeerFailed cascade: %v", err)
		}
		var tf *ThreadFailure
		if !errors.As(err, &tf) {
			t.Errorf("Wait error lacks a *ThreadFailure: %v", err)
		}
	}

	if !errors.Is(sinkErr, ErrPeerFailed) {
		t.Errorf("sink error = %v, want ErrPeerFailed", sinkErr)
	}

	h := rt.Health()
	states := map[string]ThreadHealth{}
	for _, th := range h.Threads {
		states[th.Name] = th
	}
	if st := states["crashy-src"].State; st != StateFailed {
		t.Errorf("crashy-src state = %v, want failed", st)
	}
	if got := states["crashy-src"].Restarts; got != 3 {
		t.Errorf("crashy-src restarts = %d, want 3", got)
	}
	if f := states["crashy-src"].LastFailure; f == nil || f.Value == nil {
		t.Errorf("crashy-src last failure = %+v, want recovered panic", f)
	}
	if st := states["mid"].State; st != StateFailed {
		t.Errorf("mid state = %v, want failed", st)
	}
	if st := states["sink"].State; st != StateFailed {
		t.Errorf("sink state = %v, want failed (ErrPeerFailed cascade)", st)
	}
	if st := states["staller"].State; st != StateStopped {
		t.Errorf("staller state = %v, want stopped", st)
	}
	if h.Healthy() {
		t.Error("Health().Healthy() = true for a graph full of corpses")
	}

	stallMu.Lock()
	defer stallMu.Unlock()
	if stalls["staller"] == 0 {
		t.Errorf("watchdog never flagged the staller (stalls: %v)", stalls)
	}
}

// TestAllFailuresReported declares more failing threads than the old
// 64-slot error channel could hold and checks that Wait reports every
// single one — the silent-drop regression test.
func TestAllFailuresReported(t *testing.T) {
	rt := New(Options{Clock: fastClock()})
	c1 := rt.MustAddChannel("C1", 0)
	const n = 70
	prod := rt.MustAddThread("prod", 0, func(ctx *Ctx) error {
		return errors.New("prod failure")
	})
	prod.MustOutput(c1)
	for i := 0; i < n; i++ {
		th := rt.MustAddThread(fmt.Sprintf("cons-%d", i), 0, func(ctx *Ctx) error {
			return errors.New("consumer failure")
		})
		_ = th.MustInput(c1)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	err := rt.Wait()
	if err == nil {
		t.Fatal("Wait reported no error")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("Wait error is not a joined error: %T", err)
	}
	if got := len(joined.Unwrap()); got != n+1 {
		t.Fatalf("Wait reported %d failures, want %d", got, n+1)
	}
}

// TestStatusIncludesSupervision checks WriteStatus renders the thread
// supervision table.
func TestStatusIncludesSupervision(t *testing.T) {
	rt := New(Options{Clock: fastClock()})
	c1 := rt.MustAddChannel("C1", 0)
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 10); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Sync()
		}
	})
	src.MustOutput(c1)
	sink.MustInput(c1)
	if err := rt.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rt.WriteStatus(&buf)
	out := buf.String()
	for _, want := range []string{"thread", "state", "restarts", "stalled", "stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteStatus output lacks %q:\n%s", want, out)
		}
	}
}
