// Graceful drain: the phased, topologically-ordered shutdown that
// flushes in-flight work instead of discarding it.
//
// Stop is abrupt by design — it closes every buffer at once and whatever
// was queued is shed. Drain is the polite counterpart: sources are
// quiesced first (their Ctx rejects new puts with ErrDraining), then a
// seal wave walks the dataflow — each buffer is sealed the moment every
// producer thread feeding it has exited, and a sealed buffer keeps
// serving gets until its backlog is flushed, at which point consumers
// observe ErrClosed and exit, letting the wave advance downstream. The
// wave needs no explicit topological sort: "seal when all producers
// exited" cascades from sources to sinks on any DAG. A deadline bounds
// the whole affair; when it expires the remaining items are counted as
// explicitly shed (never silently lost), so the conservation invariant
//
//	produced == delivered + explicitly shed
//
// holds on every path out of a drain. cmd/soak asserts it under chaos.
package runtime

import (
	"sort"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/graph"
)

// ErrDraining reports a put rejected because the runtime (or the target
// buffer) is draining: sources have been quiesced and no new work is
// admitted. Thread bodies should return it (or the error wrapping it);
// the supervisor treats it as a clean exit, exactly like ErrShutdown.
var ErrDraining = buffer.ErrDraining

// drainPollEvery is the seal wave's poll interval. On the discrete-event
// virtual clock it is exact, so a drain is bit-reproducible: the same
// seed yields byte-identical drained/shed counts.
const drainPollEvery = time.Millisecond

// BufferDrain is one buffer's drain accounting in a DrainReport.
type BufferDrain struct {
	// Name is the buffer's system-wide name.
	Name string
	// Drained counts items delivered to a consumer after the buffer was
	// sealed — backlog flushed downstream, not lost.
	Drained int64
	// Shed counts items discarded undelivered at shutdown: backlog the
	// deadline (or a dead audience) left behind, explicitly accounted.
	Shed int64
}

// DrainReport is the outcome of one Runtime.Drain.
type DrainReport struct {
	// Duration is runtime-clock time the drain took, including the final
	// Stop.
	Duration time.Duration
	// Drained and Shed total the per-buffer accounting.
	Drained int64
	Shed    int64
	// Clean reports that every buffer flushed (or lost its audience)
	// before the deadline: the drain completed without being cut off. A
	// deadline expiry or a Drain after Stop reports false.
	Clean bool
	// Buffers holds the per-buffer accounting, name-ordered.
	Buffers []BufferDrain
}

// Draining reports whether a graceful drain is in progress (or has
// completed). Stop alone never sets it.
func (rt *Runtime) Draining() bool { return rt.draining.Load() }

// Drain performs a graceful, phased shutdown bounded by timeout
// (non-positive means no deadline):
//
//  1. Quiesce: every source thread's Ctx flips to drain mode — its puts
//     return ErrDraining — and is asked to stop. No new work enters.
//  2. Seal wave: each buffer is sealed once every producer thread
//     feeding it has exited; sealed buffers serve their backlog until
//     empty, then their consumers observe ErrClosed and exit, sealing
//     the next stage. The wave polls on the runtime clock, so under the
//     virtual clock a drain is deterministic.
//  3. Settle: once every buffer is drained (or the deadline expires),
//     Stop closes everything; remaining items are counted as explicitly
//     shed by the buffer layer.
//
// Drain is idempotent — repeated calls return the first call's report.
// Drain after Stop performs no flushing (the buffers are already
// closed) and returns the settled accounting with Clean=false. Callers
// should still Wait() for thread failures as usual.
func (rt *Runtime) Drain(timeout time.Duration) DrainReport {
	rt.drainMu.Lock()
	defer rt.drainMu.Unlock()
	if rt.drainDone {
		return rt.drainReport
	}

	rt.mu.Lock()
	started, stopped := rt.started, rt.stopped
	threads := append([]*Thread(nil), rt.threads...)
	type bref struct {
		name string
		b    buffer.Buffer
	}
	brefs := make([]bref, 0, len(rt.buffers))
	rt.g.Nodes(func(n *graph.Node) {
		if b, ok := rt.buffers[n.ID]; ok {
			brefs = append(brefs, bref{n.Name, b})
		}
	})
	rt.mu.Unlock()

	if !started {
		rt.drainDone = true
		return rt.drainReport
	}

	collect := func(dur time.Duration, clean bool) DrainReport {
		rep := DrainReport{Duration: dur, Clean: clean}
		for _, br := range brefs {
			d, s := br.b.DrainStats()
			rep.Drained += d
			rep.Shed += s
			rep.Buffers = append(rep.Buffers, BufferDrain{Name: br.name, Drained: d, Shed: s})
		}
		sort.Slice(rep.Buffers, func(i, j int) bool { return rep.Buffers[i].Name < rep.Buffers[j].Name })
		return rep
	}

	if stopped {
		// Stop already closed and shed everything; nothing left to flush.
		rt.drainDone = true
		rt.drainReport = collect(0, false)
		return rt.drainReport
	}

	begin := rt.clk.Now()
	rt.draining.Store(true)
	if rt.mDraining != nil {
		rt.mDraining.Set(1)
	}

	// Phase 1 — quiesce sources: no new work enters the graph. A source
	// mid-Put finishes that put (the item is real and will be flushed);
	// its next put is rejected with ErrDraining.
	for _, t := range threads {
		if t.isSource {
			t.quiesced.Store(true)
			t.requestStop()
		}
	}

	// Per-buffer peer sets for the seal wave, resolved from the wired
	// ports (the graph's authoritative connection lists).
	producersOf := make(map[buffer.Buffer][]*Thread)
	consumersOf := make(map[buffer.Buffer][]*Thread)
	for _, t := range threads {
		for _, p := range t.outs {
			producersOf[p.buf] = append(producersOf[p.buf], t)
		}
		for _, p := range t.ins {
			consumersOf[p.buf] = append(consumersOf[p.buf], t)
		}
	}
	exited := func(ts []*Thread) bool {
		for _, t := range ts {
			if s := t.State(); s != StateStopped && s != StateFailed {
				return false
			}
		}
		return true
	}

	// Phase 2 — seal wave. The polling goroutine participates in the
	// clock so a discrete-event clock can account for its sleeps.
	reg, hasReg := rt.clk.(clock.Registrar)
	if hasReg {
		reg.Add(1)
	}
	sealed := make(map[buffer.Buffer]bool, len(brefs))
	clean := true
	for {
		settled := true
		for _, br := range brefs {
			if !sealed[br.b] {
				if !exited(producersOf[br.b]) {
					settled = false
					continue
				}
				br.b.Seal()
				sealed[br.b] = true
			}
			// A sealed buffer is settled when its flush completed — or
			// when nobody is left to flush it (every consumer exited or
			// failed); the final Stop sheds such stranded backlog with
			// exact accounting.
			if !br.b.Drained() && !exited(consumersOf[br.b]) {
				settled = false
			}
		}
		if settled && exited(threads) {
			break
		}
		if timeout > 0 && rt.clk.Now()-begin >= timeout {
			clean = false
			break
		}
		rt.clk.Sleep(drainPollEvery)
	}
	if hasReg {
		reg.Add(-1)
	}

	// Phase 3 — settle: close everything. Backlog the wave did not flush
	// (deadline expiry, dead audiences) is counted as shed by each
	// backend's Close/Drain accounting.
	rt.Stop()
	dur := rt.clk.Now() - begin

	rt.draining.Store(false)
	if rt.mDraining != nil {
		rt.mDraining.Set(0)
	}
	if rt.mDrainDur != nil {
		rt.mDrainDur.Observe(dur)
	}
	rt.drainDone = true
	rt.drainReport = collect(dur, clean)
	return rt.drainReport
}
