package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vt"
)

// estimatorChain builds src -> C1 -> sink on the virtual clock with the
// AIMD estimator plugged into the ARU policy. The sink's compute period
// is the bottleneck the estimator must converge on; the source computes
// much faster and is paced purely by feedback.
func estimatorChain(t *testing.T, reg *metrics.Registry, sinkPeriod time.Duration) *Runtime {
	t.Helper()
	cfg := core.DefaultAIMDConfig()
	rt := New(Options{
		Clock:       fastClock(),
		ARU:         core.PolicyMin().WithEstimator(core.AIMDFactory(cfg)),
		Metrics:     reg,
		SampleEvery: -1,
	})
	c1 := rt.MustAddChannel("C1", 0)
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		var ts vt.Timestamp
		out := outPortOf(t, rt, "src", "C1")
		for !ctx.Stopped() {
			ts++
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(out, ts, nil, 100); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		in := inPortOf(t, rt, "sink", "C1")
		for {
			if _, err := ctx.GetLatest(in); err != nil {
				return err
			}
			ctx.Compute(sinkPeriod)
			ctx.Emit()
			ctx.Sync()
		}
	})
	src.MustOutput(c1)
	sink.MustInput(c1)
	return rt
}

// nodeStatusOf finds a node's status in a snapshot by name.
func nodeStatusOf(t *testing.T, snap Snapshot, name string) NodeStatus {
	t.Helper()
	for _, ns := range snap.Nodes {
		if ns.Name == name {
			return ns
		}
	}
	t.Fatalf("no node %q in snapshot", name)
	return NodeStatus{}
}

// TestRuntimeEstimatorEndToEnd runs a real pipeline with the AIMD
// estimator enabled and checks the full integration surface: the
// source's thread node exposes live estimator state through Snapshot,
// the damped target tracks the sink bottleneck, buffer nodes never grow
// estimators, and WriteStatus renders the estimator suffix.
func TestRuntimeEstimatorEndToEnd(t *testing.T) {
	const bottleneck = 50 * time.Millisecond
	rt := estimatorChain(t, nil, bottleneck)
	if err := rt.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	snap := rt.Snapshot()
	src := nodeStatusOf(t, snap, "src")
	if src.Estimator == nil {
		t.Fatal("src thread node has no estimator state with the factory set")
	}
	if src.Estimator.Name != "aimd" {
		t.Errorf("estimator name = %q, want aimd", src.Estimator.Name)
	}
	if !src.Estimator.Target.Known() || !src.Estimator.Estimate.Known() {
		t.Fatalf("estimator never initialized: target=%v estimate=%v",
			src.Estimator.Target, src.Estimator.Estimate)
	}
	// The damped target must have converged near the sink's period: at
	// least the bottleneck minus the AIMD band, and not runaway-slow.
	if got := src.Estimator.Target.Duration(); got < 40*time.Millisecond || got > 2*bottleneck {
		t.Errorf("converged target = %v, want near the %v bottleneck", got, bottleneck)
	}
	if src.Estimator.FeedbackInterval <= 0 {
		t.Errorf("feedback interval = %v, want > 0 after live feedback", src.Estimator.FeedbackInterval)
	}

	// Buffer nodes carry raw folds only — the estimator stage exists on
	// thread nodes alone, which is what keeps the propagated vector (and
	// the paper figures) byte-identical when the estimator is off.
	if c1 := nodeStatusOf(t, snap, "C1"); c1.Estimator != nil {
		t.Errorf("buffer node C1 grew an estimator: %+v", *c1.Estimator)
	}

	var sb strings.Builder
	rt.WriteStatus(&sb)
	out := sb.String()
	if !strings.Contains(out, "aimd[target=") {
		t.Errorf("WriteStatus lacks the estimator suffix:\n%s", out)
	}
}

// TestRuntimeEstimatorMetricsPublish drives the same pipeline with a
// registry attached and checks the estimator instrument family: the
// target/estimate gauges agree exactly with the snapshot that published
// them, the trend/phase gauges carry the enum values, and the Swap-diff
// counter publication sums to the controller's lifetime totals.
func TestRuntimeEstimatorMetricsPublish(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := estimatorChain(t, reg, 50*time.Millisecond)
	if err := rt.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	snap := rt.Snapshot() // publishes to the registry
	es := nodeStatusOf(t, snap, "src").Estimator
	if es == nil {
		t.Fatal("src has no estimator state")
	}
	ls := metrics.Labels{"node": "src"}
	if got := reg.DurationGauge(MetricNodeTarget, "", ls).Value(); got != int64(es.Target) {
		t.Errorf("target gauge = %d, snapshot says %d", got, int64(es.Target))
	}
	if got := reg.DurationGauge(MetricNodeEstimate, "", ls).Value(); got != int64(es.Estimate) {
		t.Errorf("estimate gauge = %d, snapshot says %d", got, int64(es.Estimate))
	}
	if got := reg.Gauge(MetricNodeTrend, "", ls).Value(); got != int64(es.Trend) {
		t.Errorf("trend gauge = %d, snapshot says %d", got, es.Trend)
	}
	if got := reg.Gauge(MetricNodePhase, "", ls).Value(); got != int64(es.Phase) {
		t.Errorf("phase gauge = %d, snapshot says %d", got, es.Phase)
	}
	if got := reg.DurationGauge(MetricNodeFeedbackItv, "", ls).Value(); got != int64(es.FeedbackInterval) {
		t.Errorf("feedback interval gauge = %d, snapshot says %d", got, int64(es.FeedbackInterval))
	}
	// The counters are published as diffs of the lifetime totals; after
	// any number of publishes they must sum back to exactly those totals.
	if got := reg.Counter(MetricNodeBackoffs, "", ls).Value(); got != int64(es.Backoffs) {
		t.Errorf("backoffs counter = %d, lifetime total %d", got, es.Backoffs)
	}
	if got := reg.Counter(MetricNodeSpeedups, "", ls).Value(); got != int64(es.Speedups) {
		t.Errorf("speedups counter = %d, lifetime total %d", got, es.Speedups)
	}

	// Estimator instruments exist only for thread nodes: the Prometheus
	// text must have a src series and no C1 series in the target family.
	var pb strings.Builder
	reg.WriteProm(&pb)
	prom := pb.String()
	if !strings.Contains(prom, MetricNodeTarget+`{node="src"}`) {
		t.Errorf("prom output lacks the src target series:\n%s", prom)
	}
	if strings.Contains(prom, MetricNodeTarget+`{node="C1"}`) {
		t.Errorf("buffer node C1 has a target series:\n%s", prom)
	}
}

// TestTenantLabelsExposition pins the multi-tenant label contract:
// entities tagged with WithTenant / WithThreadTenant carry a `tenant`
// label on every buffer-, thread-, and node-level instrument, while
// untagged entities keep their exact historical label sets (no empty
// tenant="" dimension).
func TestTenantLabelsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := New(Options{
		Clock:       fastClock(),
		ARU:         core.PolicyMin(),
		Metrics:     reg,
		SampleEvery: -1,
	})
	tagged := rt.MustAddChannel("C-acme", 0, WithTenant("acme"))
	plain := rt.MustAddChannel("C-plain", 0)
	src := rt.MustAddThread("src", 0, func(ctx *Ctx) error {
		var ts vt.Timestamp
		for !ctx.Stopped() {
			ts++
			ctx.Compute(time.Millisecond)
			for _, out := range ctx.Outs() {
				if err := ctx.Put(out, ts, nil, 10); err != nil {
					return err
				}
			}
			ctx.Sync()
		}
		return nil
	}, WithThreadTenant("acme"))
	sink := rt.MustAddThread("sink", 0, func(ctx *Ctx) error {
		for {
			for _, in := range ctx.Ins() {
				if _, err := ctx.GetLatest(in); err != nil {
					return err
				}
			}
			ctx.Compute(2 * time.Millisecond)
			ctx.Sync()
		}
	})
	src.MustOutput(tagged)
	src.MustOutput(plain)
	sink.MustInput(tagged)
	sink.MustInput(plain)

	if rt.Buffer(tagged) != nil {
		t.Fatal("buffer materialized before Start")
	}
	if got := tagged.Tenant(); got != "acme" {
		t.Fatalf("BufferRef.Tenant() = %q, want acme", got)
	}
	if err := rt.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rt.Snapshot()

	var sb strings.Builder
	reg.WriteProm(&sb)
	prom := sb.String()

	// Tagged entities: the tenant dimension rides on buffer-layer
	// counters, runtime buffer gauges, thread instruments, and the
	// thread's node-level STP gauges alike.
	for _, want := range []string{
		buffer.MetricPuts + `{buffer="C-acme",tenant="acme"}`,
		MetricBufferItems + `{buffer="C-acme",tenant="acme"}`,
		MetricGets + `{buffer="C-acme",tenant="acme"}`,
		MetricIterations + `{tenant="acme",thread="src"}`,
		MetricNodeCurrent + `{node="src",tenant="acme"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output lacks tagged series %q", want)
		}
	}
	// Untagged entities: byte-identical historical label sets.
	for _, want := range []string{
		buffer.MetricPuts + `{buffer="C-plain"}`,
		MetricBufferItems + `{buffer="C-plain"}`,
		MetricIterations + `{thread="sink"}`,
		MetricNodeCurrent + `{node="sink"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output lacks untagged series %q", want)
		}
	}
	for _, bad := range []string{`tenant=""`, `{buffer="C-plain",tenant=`} {
		if strings.Contains(prom, bad) {
			t.Errorf("prom output grew a spurious tenant label %q:\n%s", bad, prom)
		}
	}
}
