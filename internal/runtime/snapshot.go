// Runtime.Snapshot: the single consistent point-in-time view every
// presentation layer derives from. WriteStatus (text), the HTTP JSON
// and Prometheus endpoints, and the periodic sampler all call Snapshot,
// so the three outputs can never disagree about what the runtime looked
// like — they are renderings of one struct.
//
// Snapshot also fixes the WriteStatus lock-order hazard: the node/
// buffer pairs are collected under rt.mu, the lock is released, and
// only then is each buffer queried (Occupancy/Stats take the buffer's
// own lock). rt.mu and buffer locks are never nested.
package runtime

import (
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
)

// DefaultSampleEvery is the periodic sampler interval applied when
// Options.SampleEvery is zero and metrics are enabled.
const DefaultSampleEvery = time.Second

// NodeStatus is one node's ARU state in a snapshot, extending the
// controller's view with the staleness flag.
type NodeStatus struct {
	core.NodeSnapshot
	// Degraded reports that the node's remote feedback has gone stale
	// (always false for local nodes).
	Degraded bool
}

// BufferStatus is one materialized buffer endpoint's state in a
// snapshot.
type BufferStatus struct {
	// Node is the buffer's task-graph id; Name its system-wide name;
	// Backend the registered backend that materialized it.
	Node    graph.NodeID
	Name    string
	Backend string
	// Items and Bytes are the live occupancy at snapshot time.
	Items int
	Bytes int64
	// Puts and Frees are the cumulative insert/reclaim counts.
	Puts, Frees int64
	// HighWaterItems and HighWaterBytes are the occupancy high-water
	// marks since Start. They are maintained by the metrics instruments
	// and read zero when metrics are disabled (the off hot path does no
	// extra work).
	HighWaterItems, HighWaterBytes int64
	// DrainedItems counts items delivered to a consumer after the
	// buffer was sealed for drain; ShedItems counts items discarded
	// undelivered at shutdown (explicitly shed, not silently lost).
	DrainedItems, ShedItems int64
	// PutBlocked and PutBlockedCount accumulate producer
	// capacity-blocking on the buffer — the elastic scheduler's
	// backlog-pressure sensor. Zero for backends without inline
	// accounting (remote endpoints, the lock-free ring).
	PutBlocked      time.Duration
	PutBlockedCount int64
}

// Snapshot is the consistent point-in-time view of a running
// application: controller state, buffer occupancy, and thread health,
// all collected by one call. WriteStatus, the HTTP endpoints, and the
// periodic sampler are renderings of this struct.
type Snapshot struct {
	// At is the runtime-clock reading when the snapshot was taken.
	At time.Duration
	// ARUEnabled reports whether feedback propagation is active.
	ARUEnabled bool
	// Nodes is the per-node ARU state, node-id ordered (empty before
	// Start).
	Nodes []NodeStatus
	// Buffers lists every materialized endpoint in graph declaration
	// order.
	Buffers []BufferStatus
	// Threads is the supervision health view, name-ordered.
	Threads []ThreadHealth
	// Draining reports that a graceful drain was in progress (or had
	// completed) when the snapshot was taken.
	Draining bool
	// Replicas maps stage name → live elastic replica count. Nil when no
	// stage is replicated (the default, non-elastic configuration), so
	// status renderings of non-elastic runs are byte-identical to the
	// pre-elastic output.
	Replicas map[string]int
}

// Snapshot collects the consistent status view and publishes it to the
// metrics registry's gauge families (when metrics are enabled). It is
// safe to call concurrently with running threads and with itself, and —
// unlike the pre-snapshot WriteStatus — never holds rt.mu across a
// buffer's own lock.
func (rt *Runtime) Snapshot() Snapshot {
	type bref struct {
		node    graph.NodeID
		name    string
		backend string
		b       buffer.Buffer
	}
	rt.mu.Lock()
	ctrl := rt.ctrl
	brefs := make([]bref, 0, len(rt.buffers))
	rt.g.Nodes(func(n *graph.Node) {
		b, ok := rt.buffers[n.ID]
		if !ok {
			return
		}
		backend := ""
		if ref := rt.refs[n.ID]; ref != nil {
			backend = ref.backend
		}
		brefs = append(brefs, bref{n.ID, n.Name, backend, b})
	})
	rt.mu.Unlock()

	snap := Snapshot{At: rt.clk.Now()}
	if ctrl != nil {
		snap.ARUEnabled = ctrl.Enabled()
		for _, ns := range ctrl.Snapshot() {
			snap.Nodes = append(snap.Nodes, NodeStatus{NodeSnapshot: ns, Degraded: ctrl.Degraded(ns.Node)})
		}
	}
	for _, br := range brefs {
		items, bytes := br.b.Occupancy() // rt.mu NOT held: no lock nesting
		puts, frees := br.b.Stats()
		bs := BufferStatus{
			Node: br.node, Name: br.name, Backend: br.backend,
			Items: items, Bytes: bytes, Puts: puts, Frees: frees,
		}
		if hw, ok := br.b.(buffer.HighWaterer); ok {
			bs.HighWaterItems, bs.HighWaterBytes = hw.HighWater()
		}
		if pb, ok := br.b.(buffer.PutBlocker); ok {
			bs.PutBlocked, bs.PutBlockedCount = pb.PutBlocked()
		}
		bs.DrainedItems, bs.ShedItems = br.b.DrainStats()
		snap.Buffers = append(snap.Buffers, bs)
	}
	snap.Threads = rt.Health().Threads
	snap.Draining = rt.draining.Load()
	snap.Replicas = rt.ReplicaCounts()
	rt.publish(snap)
	return snap
}

// samplePlan decides whether the periodic sampler should run and at
// what interval: enabled when metrics are on and SampleEvery is not
// negative; zero defaults to DefaultSampleEvery.
func (rt *Runtime) samplePlan() (time.Duration, bool) {
	if rt.opts.Metrics == nil || rt.opts.SampleEvery < 0 {
		return 0, false
	}
	every := rt.opts.SampleEvery
	if every == 0 {
		every = DefaultSampleEvery
	}
	return every, true
}

// sampler periodically refreshes the gauge-class metric families
// (occupancy, STP, heartbeat age) by taking a Snapshot. It is
// clock-aware exactly like the stall watchdog: on a real clock the
// sleep aborts promptly when Stop fires; on fake and virtual clocks the
// interval is test-driven through the clock itself, so fake-clock tests
// pin the exact sampling schedule.
func (rt *Runtime) sampler(every time.Duration) {
	defer rt.wg.Done()
	reg, hasReg := rt.clk.(clock.Registrar)
	if hasReg {
		defer reg.Add(-1)
	}
	_, isReal := rt.clk.(*clock.Real)
	for {
		if isReal {
			tm := time.NewTimer(every)
			select {
			case <-tm.C:
			case <-rt.stopCh:
				tm.Stop()
				return
			}
			tm.Stop()
		} else {
			rt.clk.Sleep(every)
			select {
			case <-rt.stopCh:
				return
			default:
			}
		}
		rt.Snapshot()
	}
}
