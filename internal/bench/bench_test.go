package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// shortSuite runs the full grid with a reduced envelope; package-level so
// multiple tests share one execution.
var sharedSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if sharedSuite != nil {
		return sharedSuite
	}
	s, err := RunSuite(Scenario{
		Duration: 90 * time.Second,
		Warmup:   10 * time.Second,
		Seeds:    []int64{42, 43},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedSuite = s
	return s
}

func TestRunSingleScenario(t *testing.T) {
	r, err := Run(Scenario{Policy: ARUMin, Hosts: 1, Duration: 30 * time.Second, Warmup: 5 * time.Second, Seeds: []int64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 1 {
		t.Fatalf("trials = %d", len(r.Trials))
	}
	if r.MeanFootprint <= 0 || r.ThroughputMean <= 0 || r.LatencyMean <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.IGCMeanFootprint > r.MeanFootprint {
		t.Error("IGC must not exceed the actual footprint")
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{}.withDefaults()
	if sc.Hosts != 1 || sc.Duration != 120*time.Second || sc.Warmup != 15*time.Second {
		t.Errorf("defaults = %+v", sc)
	}
	if len(sc.Seeds) == 0 || sc.Collector != "dgc" {
		t.Errorf("defaults = %+v", sc)
	}
}

func TestSuiteGridComplete(t *testing.T) {
	s := suite(t)
	for _, hosts := range []int{1, 5} {
		for _, p := range Policies {
			if s.Results[hosts][p] == nil {
				t.Fatalf("missing cell %d/%s", hosts, p)
			}
		}
		if s.IGCReference(hosts) <= 0 {
			t.Fatalf("IGC reference missing for hosts=%d", hosts)
		}
	}
	if s.IGCReference(3) != 0 {
		t.Error("unknown config must have zero IGC reference")
	}
}

func TestShapeChecksPass(t *testing.T) {
	s := suite(t)
	checks := s.CheckShapes()
	if len(checks) < 15 {
		t.Fatalf("only %d checks evaluated", len(checks))
	}
	for _, c := range FailedShapes(checks) {
		t.Errorf("shape %s failed: %s (%s)", c.ID, c.Description, c.Detail)
	}
}

func TestTablesRender(t *testing.T) {
	s := suite(t)
	var buf bytes.Buffer
	s.WriteAll(&buf)
	out := buf.String()
	for _, want := range []string{
		"Figure 6", "Figure 7", "Figure 10",
		"No ARU", "ARU-min", "ARU-max", "IGC",
		"% wrt IGC", "Jitter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
	// Paper reference values must appear.
	for _, want := range []string{"33.62", "66.0", "4.68"} {
		if !strings.Contains(out, want) {
			t.Errorf("paper value %q missing from tables", want)
		}
	}
	t.Logf("\n%s", out)
}

func TestFootprintSeriesAndCSV(t *testing.T) {
	s := suite(t)
	panels := s.FootprintSeries(1, 200)
	if len(panels) != 4 {
		t.Fatalf("panels = %d, want 4 (igc, aru-max, aru-min, no-aru)", len(panels))
	}
	if panels[0].Name != "igc" || panels[3].Name != "no-aru" {
		t.Errorf("panel order = %v, %v", panels[0].Name, panels[3].Name)
	}
	for _, p := range panels {
		if len(p.Times) == 0 || len(p.Times) != len(p.Bytes) {
			t.Fatalf("panel %s malformed: %d/%d", p.Name, len(p.Times), len(p.Bytes))
		}
	}
	// The no-aru curve must visibly dominate the aru-max curve.
	if peak(panels[3].Bytes) < 2*peak(panels[1].Bytes) {
		t.Errorf("no-aru peak %.0f must dwarf aru-max peak %.0f",
			peak(panels[3].Bytes), peak(panels[1].Bytes))
	}

	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, panels); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 201 {
		t.Fatalf("csv rows = %d, want header + 200", len(lines))
	}
	if lines[0] != "time_us,igc_bytes,aru-max_bytes,aru-min_bytes,no-aru_bytes" {
		t.Errorf("csv header = %q", lines[0])
	}
	if err := WriteSeriesCSV(&buf, nil); err == nil {
		t.Error("empty panels must error")
	}
}

func TestSaveFigures(t *testing.T) {
	s := suite(t)
	dir := t.TempDir()
	paths, err := s.SaveFigures(dir, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	if filepath.Base(paths[0]) != "fig8_footprint_config1.csv" {
		t.Errorf("unexpected file %s", paths[0])
	}
}

func TestRenderASCII(t *testing.T) {
	s := suite(t)
	panels := s.FootprintSeries(1, 100)
	var buf bytes.Buffer
	RenderASCII(&buf, panels, 60, 8)
	out := buf.String()
	if !strings.Contains(out, "no-aru") || !strings.Contains(out, "#") {
		t.Errorf("ascii chart degenerate:\n%s", out)
	}
	// Degenerate inputs must not panic.
	RenderASCII(&buf, nil, 60, 8)
	RenderASCII(&buf, panels, 2, 1)
}

func TestPaperTablesConsistency(t *testing.T) {
	// The embedded paper values must satisfy the paper's own shape
	// claims — a guard against transcription errors.
	if !(PaperFig6[NoARU].Mean1 > PaperFig6[ARUMin].Mean1 && PaperFig6[ARUMin].Mean1 > PaperFig6[ARUMax].Mean1) {
		t.Error("Figure 6 transcription broken (config 1 ordering)")
	}
	if !(PaperFig7[NoARU].Mem1 > PaperFig7[ARUMin].Mem1 && PaperFig7[ARUMin].Mem1 > PaperFig7[ARUMax].Mem1) {
		t.Error("Figure 7 transcription broken")
	}
	if !(PaperFig10[ARUMin].FPS1 > PaperFig10[ARUMax].FPS1 && PaperFig10[ARUMax].FPS1 > PaperFig10[NoARU].FPS1) {
		t.Error("Figure 10 fps transcription broken")
	}
	if !(PaperFig10[NoARU].Lat1 > PaperFig10[ARUMin].Lat1 && PaperFig10[ARUMin].Lat1 > PaperFig10[ARUMax].Lat1) {
		t.Error("Figure 10 latency transcription broken")
	}
}
