package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func ablationEnvelope() Scenario {
	return Scenario{Duration: 60 * time.Second, Warmup: 10 * time.Second, Seeds: []int64{42}}
}

func TestFilterAblationHelps(t *testing.T) {
	ab, err := RunFilterAblation(ablationEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) != 3 {
		t.Fatalf("rows = %d", len(ab.Rows))
	}
	none := ab.Rows[0].Result
	ewma := ab.Rows[1].Result
	// The paper's conjecture: filters smooth the noisy feedback. EWMA
	// must cut output jitter versus unfiltered ARU-max.
	if ewma.Jitter >= none.Jitter {
		t.Errorf("EWMA jitter %v must beat unfiltered %v", ewma.Jitter, none.Jitter)
	}
	if ewma.ThroughputMean < none.ThroughputMean {
		t.Errorf("EWMA fps %.2f must not fall below unfiltered %.2f", ewma.ThroughputMean, none.ThroughputMean)
	}
}

func TestNoiseAblationMonotone(t *testing.T) {
	ab, err := RunNoiseAblation(ablationEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) != 3 {
		t.Fatalf("rows = %d", len(ab.Rows))
	}
	low, mid, high := ab.Rows[0].Result, ab.Rows[1].Result, ab.Rows[2].Result
	_ = mid
	// §5.2: more scheduling noise → more over-throttling → lower fps and
	// higher jitter for ARU-max. Require the extremes to order.
	if !(low.ThroughputMean > high.ThroughputMean) {
		t.Errorf("fps must fall with noise: %.2f (low σ) vs %.2f (high σ)",
			low.ThroughputMean, high.ThroughputMean)
	}
	if !(low.Jitter < high.Jitter) {
		t.Errorf("jitter must rise with noise: %v vs %v", low.Jitter, high.Jitter)
	}
}

func TestGCAblationOrdering(t *testing.T) {
	ab, err := RunGCAblation(ablationEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Result{}
	for _, row := range ab.Rows {
		byName[row.Variant] = row.Result
	}
	dgc, tgc, none := byName["dgc"], byName["tgc"], byName["none"]
	if dgc == nil || tgc == nil || none == nil {
		t.Fatal("missing variants")
	}
	// DGC frees most aggressively; TGC is conservative; no GC only
	// reclaims at shutdown.
	if !(dgc.MeanFootprint < tgc.MeanFootprint && tgc.MeanFootprint < none.MeanFootprint) {
		t.Errorf("footprint ordering dgc<tgc<none violated: %.2f / %.2f / %.2f MB",
			dgc.MeanFootprint/mb, tgc.MeanFootprint/mb, none.MeanFootprint/mb)
	}
	// ARU alone cannot bound memory: without GC the footprint must be an
	// order of magnitude above DGC's.
	if none.MeanFootprint < 10*dgc.MeanFootprint {
		t.Errorf("no-GC footprint %.2f MB should dwarf DGC %.2f MB",
			none.MeanFootprint/mb, dgc.MeanFootprint/mb)
	}
}

func TestAblationWrite(t *testing.T) {
	ab, err := RunGCAblation(ablationEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ab.Write(&buf)
	out := buf.String()
	for _, want := range []string{"ABL3", "dgc", "tgc", "none", "fps", "wasted mem"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q:\n%s", want, out)
		}
	}
}

// TestEliminationAblationLimitedSuccess reproduces the paper's §3.2
// finding: dead-timestamp computation elimination alone saves far less
// than ARU, because upstream work is rarely provably dead when it starts.
func TestEliminationAblationLimitedSuccess(t *testing.T) {
	ab, err := RunEliminationAblation(ablationEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Result{}
	for _, row := range ab.Rows {
		byName[row.Variant] = row.Result
	}
	noARU := byName["no-aru"]
	elim := byName["no-aru+elim"]
	min := byName["aru-min"]
	if noARU == nil || elim == nil || min == nil {
		t.Fatal("missing variants")
	}
	// Elimination must not make things worse...
	if elim.MeanFootprint > noARU.MeanFootprint*1.15 {
		t.Errorf("elimination raised footprint: %.2f vs %.2f MB",
			elim.MeanFootprint/mb, noARU.MeanFootprint/mb)
	}
	// ...but its savings are limited compared to ARU's (the paper's
	// point): ARU-min must stay far below the elimination variant.
	if min.MeanFootprint > elim.MeanFootprint*0.7 {
		t.Errorf("ARU-min (%.2f MB) should far undercut elimination alone (%.2f MB)",
			min.MeanFootprint/mb, elim.MeanFootprint/mb)
	}
}
