package bench

import "fmt"

// ShapeCheck is one qualitative expectation from the paper's evaluation.
type ShapeCheck struct {
	// ID names the expectation (e.g. "fig6-footprint-ordering-c1").
	ID string
	// Description states the claim being checked.
	Description string
	// OK reports whether the measured data satisfies it.
	OK bool
	// Detail carries the measured values for the report.
	Detail string
}

// CheckShapes evaluates the paper's qualitative claims against a suite.
// The reproduction is not expected to match absolute numbers (the
// substrate is a simulator, not the authors' 17-node cluster), but who
// wins, by roughly what factor, and where the trade-offs fall must hold.
func (s *Suite) CheckShapes() []ShapeCheck {
	var checks []ShapeCheck
	add := func(id, desc string, ok bool, detail string) {
		checks = append(checks, ShapeCheck{ID: id, Description: desc, OK: ok, Detail: detail})
	}

	for _, hosts := range []int{1, 5} {
		cfg := map[int]string{1: "c1", 5: "c2"}[hosts]
		no := s.Results[hosts][NoARU]
		mn := s.Results[hosts][ARUMin]
		mx := s.Results[hosts][ARUMax]
		igc := s.IGCReference(hosts)

		add("fig6-footprint-ordering-"+cfg,
			"mean footprint: No ARU > ARU-min > ARU-max",
			no.MeanFootprint > mn.MeanFootprint && mn.MeanFootprint > mx.MeanFootprint,
			fmt.Sprintf("%.2f > %.2f > %.2f MB", no.MeanFootprint/mb, mn.MeanFootprint/mb, mx.MeanFootprint/mb))

		add("fig6-igc-bound-"+cfg,
			"IGC lower-bounds every policy's footprint",
			igc > 0 && igc <= no.MeanFootprint && igc <= mn.MeanFootprint*1.25 && igc <= mx.MeanFootprint*1.25,
			fmt.Sprintf("IGC %.2f MB vs %.2f/%.2f/%.2f", igc/mb, no.MeanFootprint/mb, mn.MeanFootprint/mb, mx.MeanFootprint/mb))

		add("fig6-noaru-multiple-"+cfg,
			"No-ARU footprint is a large multiple (≳2.5×) of the IGC bound",
			igc > 0 && no.MeanFootprint/igc > 2.5,
			fmt.Sprintf("%.0f%% of IGC (paper: %d%%)", pctOf(no.MeanFootprint, igc), PaperFig6[NoARU].Pct1))

		add("fig6-arumax-near-igc-"+cfg,
			"ARU-max footprint approaches the IGC bound (≤1.6×)",
			igc > 0 && mx.MeanFootprint/igc < 1.6,
			fmt.Sprintf("%.0f%% of IGC (paper: %d%%)", pctOf(mx.MeanFootprint, igc), PaperFig6[ARUMax].Pct1))

		add("fig7-wasted-mem-ordering-"+cfg,
			"wasted memory: No ARU ≫ ARU-min > ARU-max",
			no.WastedMemPct > 2*mn.WastedMemPct && mn.WastedMemPct > mx.WastedMemPct,
			fmt.Sprintf("%.1f%% / %.1f%% / %.1f%%", no.WastedMemPct, mn.WastedMemPct, mx.WastedMemPct))

		add("fig7-noaru-majority-wasted-"+cfg,
			"No-ARU wastes the majority of its memory footprint (paper: >60%)",
			no.WastedMemPct > 40,
			fmt.Sprintf("%.1f%%", no.WastedMemPct))

		add("fig7-arumax-negligible-"+cfg,
			"ARU-max wastes almost nothing (paper: <5%)",
			mx.WastedMemPct < 10,
			fmt.Sprintf("%.1f%%", mx.WastedMemPct))

		add("fig7-wasted-comp-ordering-"+cfg,
			"wasted computation: No ARU > ARU policies",
			no.WastedCompPct > mn.WastedCompPct && no.WastedCompPct > mx.WastedCompPct,
			fmt.Sprintf("%.1f%% / %.1f%% / %.1f%%", no.WastedCompPct, mn.WastedCompPct, mx.WastedCompPct))

		// In configuration 2 the paper's No-ARU and ARU-min latencies are
		// nearly tied (648 vs 605 ms), so the min-versus-No-ARU leg gets a
		// 10% tolerance; ARU-max must be strictly lowest in both configs.
		latencyOK := mx.LatencyMean < mn.LatencyMean && mx.LatencyMean < no.LatencyMean &&
			float64(mn.LatencyMean) < 1.10*float64(no.LatencyMean)
		if hosts == 1 {
			latencyOK = no.LatencyMean > mn.LatencyMean && mn.LatencyMean > mx.LatencyMean
		}
		add("fig10-latency-ordering-"+cfg,
			"latency: No ARU ≳ ARU-min > ARU-max (aggressive slowing empties buffers)",
			latencyOK,
			fmt.Sprintf("%dms / %dms / %dms", durationMS(no.LatencyMean), durationMS(mn.LatencyMean), durationMS(mx.LatencyMean)))

		add("fig10-min-beats-max-fps-"+cfg,
			"throughput: ARU-min > ARU-max (max over-throttles producers)",
			mn.ThroughputMean > mx.ThroughputMean,
			fmt.Sprintf("%.2f vs %.2f fps", mn.ThroughputMean, mx.ThroughputMean))
	}

	// Configuration-specific claims.
	no1 := s.Results[1][NoARU]
	mn1 := s.Results[1][ARUMin]
	add("fig10-min-beats-noaru-fps-c1",
		"throughput: ARU-min > No ARU on one host (wasteful production loads the shared memory system)",
		mn1.ThroughputMean > no1.ThroughputMean,
		fmt.Sprintf("%.2f vs %.2f fps", mn1.ThroughputMean, no1.ThroughputMean))

	no5 := s.Results[5][NoARU]
	mx5 := s.Results[5][ARUMax]
	add("fig10-max-fps-dip-c2",
		"throughput: ARU-max < No ARU on five hosts (paper: 3.53 vs 4.27)",
		mx5.ThroughputMean < no5.ThroughputMean,
		fmt.Sprintf("%.2f vs %.2f fps", mx5.ThroughputMean, no5.ThroughputMean))

	mn5 := s.Results[5][ARUMin]
	add("fig10-max-jitter-c2",
		"jitter: ARU-max > ARU-min on five hosts (paper: 162 vs 89 ms)",
		mx5.Jitter > mn5.Jitter,
		fmt.Sprintf("%dms vs %dms", durationMS(mx5.Jitter), durationMS(mn5.Jitter)))

	return checks
}

// FailedShapes filters the violations.
func FailedShapes(checks []ShapeCheck) []ShapeCheck {
	var out []ShapeCheck
	for _, c := range checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}
