package bench

import (
	"fmt"
	"io"
	"time"
)

// PaperFig6 holds the published Figure 6 values: memory footprint STD and
// mean in MB, and percent with respect to IGC, per configuration.
type PaperFig6Row struct {
	Std1, Mean1 float64
	Pct1        int
	Std5, Mean5 float64
	Pct5        int
}

// PaperFig6 is Figure 6 as published.
var PaperFig6 = map[PolicyName]PaperFig6Row{
	NoARU:  {4.31, 33.62, 387, 6.41, 36.81, 341},
	ARUMin: {2.58, 16.23, 187, 2.94, 15.72, 145},
	ARUMax: {0.49, 12.45, 143, 0.37, 13.09, 121},
}

// PaperFig6IGC holds the published IGC row (STD, mean per config).
var PaperFig6IGC = PaperFig6Row{0.33, 8.69, 100, 0.33, 10.81, 100}

// PaperFig7Row holds published Figure 7 values: percent wasted memory and
// computation per configuration.
type PaperFig7Row struct {
	Mem1, Comp1 float64
	Mem5, Comp5 float64
}

// PaperFig7 is Figure 7 as published.
var PaperFig7 = map[PolicyName]PaperFig7Row{
	NoARU:  {66.0, 25.2, 60.7, 24.4},
	ARUMin: {4.1, 2.8, 7.2, 4.0},
	ARUMax: {0.3, 0.2, 4.8, 2.1},
}

// PaperFig10Row holds published Figure 10 values.
type PaperFig10Row struct {
	FPS1, FPSStd1 float64
	Lat1, LatStd1 int // ms
	Jit1          int // ms
	FPS5, FPSStd5 float64
	Lat5, LatStd5 int
	Jit5          int
}

// PaperFig10 is Figure 10 as published.
var PaperFig10 = map[PolicyName]PaperFig10Row{
	NoARU:  {3.30, 0.02, 661, 23, 77, 4.27, 0.06, 648, 23, 96},
	ARUMin: {4.68, 0.09, 594, 9, 34, 4.47, 0.10, 605, 24, 89},
	ARUMax: {4.18, 0.10, 350, 7, 46, 3.53, 0.15, 480, 13, 162},
}

const mb = 1 << 20

// WriteFig6 renders the Figure 6 reproduction: measured memory footprint
// against the published table.
func (s *Suite) WriteFig6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 — Memory footprint of the tracker vs the Ideal Garbage Collector (IGC)")
	fmt.Fprintln(w, "            (measured | paper)   mean and STD in MB; % is w.r.t. the IGC bound")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-9s │ %33s │ %33s\n", "", "Config 1: 1 host", "Config 2: 5 hosts")
	fmt.Fprintf(w, "%-9s │ %10s %10s %11s │ %10s %10s %11s\n",
		"", "STD", "mean", "% wrt IGC", "STD", "mean", "% wrt IGC")
	for _, p := range Policies {
		r1 := s.Results[1][p]
		r5 := s.Results[5][p]
		paper := PaperFig6[p]
		pct1 := pctOf(r1.MeanFootprint, s.IGCReference(1))
		pct5 := pctOf(r5.MeanFootprint, s.IGCReference(5))
		fmt.Fprintf(w, "%-9s │ %4.2f|%-5.2f %5.2f|%-5.2f %4.0f%%|%3d%% │ %4.2f|%-5.2f %5.2f|%-5.2f %4.0f%%|%3d%%\n",
			p,
			r1.StdFootprint/mb, paper.Std1, r1.MeanFootprint/mb, paper.Mean1, pct1, paper.Pct1,
			r5.StdFootprint/mb, paper.Std5, r5.MeanFootprint/mb, paper.Mean5, pct5, paper.Pct5)
	}
	ig1 := s.IGCReference(1) / mb
	ig5 := s.IGCReference(5) / mb
	fmt.Fprintf(w, "%-9s │ %4s|%-5.2f %5.2f|%-5.2f %4d%%|%3d%% │ %4s|%-5.2f %5.2f|%-5.2f %4d%%|%3d%%\n",
		"IGC", "-", PaperFig6IGC.Std1, ig1, PaperFig6IGC.Mean1, 100, 100,
		"-", PaperFig6IGC.Std5, ig5, PaperFig6IGC.Mean5, 100, 100)
	fmt.Fprintln(w)
}

// WriteFig7 renders the Figure 7 reproduction: percent wasted memory and
// computation.
func (s *Suite) WriteFig7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7 — Wasted memory footprint and wasted computation (measured | paper)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-9s │ %25s │ %25s\n", "", "Config 1: 1 host", "Config 2: 5 hosts")
	fmt.Fprintf(w, "%-9s │ %12s %12s │ %12s %12s\n", "", "% mem", "% comp", "% mem", "% comp")
	for _, p := range Policies {
		r1 := s.Results[1][p]
		r5 := s.Results[5][p]
		paper := PaperFig7[p]
		fmt.Fprintf(w, "%-9s │ %5.1f|%-5.1f  %5.1f|%-5.1f │ %5.1f|%-5.1f  %5.1f|%-5.1f\n",
			p,
			r1.WastedMemPct, paper.Mem1, r1.WastedCompPct, paper.Comp1,
			r5.WastedMemPct, paper.Mem5, r5.WastedCompPct, paper.Comp5)
	}
	fmt.Fprintln(w)
}

// WriteFig10 renders the Figure 10 reproduction: throughput, latency,
// jitter.
func (s *Suite) WriteFig10(w io.Writer) {
	fmt.Fprintln(w, "Figure 10 — Latency, throughput and jitter of the tracker (measured | paper)")
	fmt.Fprintln(w)
	for _, hosts := range []int{1, 5} {
		fmt.Fprintf(w, "Config %d: %d host(s)\n", map[int]int{1: 1, 5: 2}[hosts], hosts)
		fmt.Fprintf(w, "%-9s │ %23s │ %23s │ %13s\n", "", "Throughput (fps)", "Latency (ms)", "Jitter (ms)")
		fmt.Fprintf(w, "%-9s │ %11s %11s │ %11s %11s │ %13s\n", "", "mean", "STD", "mean", "STD", "")
		for _, p := range Policies {
			r := s.Results[hosts][p]
			var paper PaperFig10Row = PaperFig10[p]
			fps, fpsStd := paper.FPS1, paper.FPSStd1
			lat, latStd, jit := paper.Lat1, paper.LatStd1, paper.Jit1
			if hosts == 5 {
				fps, fpsStd = paper.FPS5, paper.FPSStd5
				lat, latStd, jit = paper.Lat5, paper.LatStd5, paper.Jit5
			}
			fmt.Fprintf(w, "%-9s │ %5.2f|%-5.2f %5.2f|%-5.2f │ %5d|%-5d %5d|%-5d │ %5d|%-5d\n",
				p,
				r.ThroughputMean, fps, r.ThroughputStd, fpsStd,
				r.LatencyMean.Milliseconds(), int64(lat),
				r.LatencyStd.Milliseconds(), int64(latStd),
				r.Jitter.Milliseconds(), int64(jit))
		}
		fmt.Fprintln(w)
	}
}

// WriteAll renders every table.
func (s *Suite) WriteAll(w io.Writer) {
	s.WriteFig6(w)
	s.WriteFig7(w)
	s.WriteFig10(w)
}

func pctOf(v, ref float64) float64 {
	if ref <= 0 {
		return 0
	}
	return 100 * v / ref
}

// durationMS formats a duration in whole milliseconds for tables.
func durationMS(d time.Duration) int64 { return d.Milliseconds() }
