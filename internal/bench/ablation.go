package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/tracker"
)

// AblationRow is one variant's aggregated result.
type AblationRow struct {
	Variant string
	Result  *Result
}

// Ablation is one ablation study: a named sweep of variants over a base
// scenario.
type Ablation struct {
	ID          string
	Title       string
	Description string
	Rows        []AblationRow
}

// RunFilterAblation is ABL1: the paper's stated future work (§3.3.2) —
// smoothing the noisy summary-STP stream before it enters the
// backwardSTP vector, under the aggressive max operator where noise
// hurts most.
func RunFilterAblation(envelope Scenario) (*Ablation, error) {
	ab := &Ablation{
		ID:    "ABL1",
		Title: "Summary-STP feedback filters (ARU-max, config 1)",
		Description: "The paper observes that OS-scheduling variance makes consumers " +
			"intermittently emit large or small summary-STP values and names feedback " +
			"filters as the fix, leaving them to future work. Implemented here.",
	}
	variants := []struct {
		name string
		mk   core.FilterFactory
	}{
		{"none (paper)", nil},
		{"ewma a=0.3", func() core.Filter { return core.NewEWMAFilter(0.3) }},
		{"median w=5", func() core.Filter { return core.NewMedianFilter(5) }},
	}
	for _, v := range variants {
		sc := envelope
		sc.Policy = ARUMax
		sc.Hosts = 1
		mk := v.mk
		sc.Mutate = func(cfg *tracker.Config) {
			if mk != nil {
				cfg.Policy.NewFilter = mk
			}
		}
		r, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", ab.ID, v.name, err)
		}
		ab.Rows = append(ab.Rows, AblationRow{Variant: v.name, Result: r})
	}
	return ab, nil
}

// RunNoiseAblation is ABL2: sweeping the injected scheduling-variance σ
// to quantify the paper's §5.2 explanation of the ARU-max throughput dip
// (STP noise plus aggressive slowing starves consumers).
func RunNoiseAblation(envelope Scenario) (*Ablation, error) {
	ab := &Ablation{
		ID:    "ABL2",
		Title: "Scheduling-noise sensitivity (ARU-max, config 2)",
		Description: "§5.2 attributes ARU-max's throughput loss to jitter in the " +
			"summary-STP values; with the noise dialed down the dip should vanish.",
	}
	for _, sigma := range []float64{0.02, 0.12, 0.30} {
		sc := envelope
		sc.Policy = ARUMax
		sc.Hosts = 5
		sigma := sigma
		sc.Mutate = func(cfg *tracker.Config) {
			t := cfg.Timing
			if t == (tracker.Timing{}) {
				t = tracker.DefaultTiming()
			}
			t.NoiseSigma = sigma
			cfg.Timing = t
		}
		r, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/σ=%.2f: %w", ab.ID, sigma, err)
		}
		ab.Rows = append(ab.Rows, AblationRow{Variant: fmt.Sprintf("sigma=%.2f", sigma), Result: r})
	}
	return ab, nil
}

// RunGCAblation is ABL3: crossing the GC strategies with ARU-min. ARU and
// GC are complementary (§2): ARU cannot bound memory alone, and the
// conservative TGC retains far more than DGC.
func RunGCAblation(envelope Scenario) (*Ablation, error) {
	ab := &Ablation{
		ID:    "ABL3",
		Title: "Garbage-collection strategy × ARU-min (config 1)",
		Description: "DGC is the paper's collector. TGC's global low-water mark lets " +
			"one slow consumer pin garbage everywhere; with no GC at all, ARU alone " +
			"cannot bound the footprint and memory pressure collapses throughput.",
	}
	for _, coll := range []string{"dgc", "tgc", "none"} {
		sc := envelope
		sc.Policy = ARUMin
		sc.Hosts = 1
		sc.Collector = coll
		r, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", ab.ID, coll, err)
		}
		ab.Rows = append(ab.Rows, AblationRow{Variant: coll, Result: r})
	}
	return ab, nil
}

// RunEliminationAblation is ABL4: the paper's §3.2 observation that
// dead-timestamp-based *computation elimination* alone (without ARU) has
// "limited success", because upstream threads run ahead of their
// consumers' guarantees so their work is rarely provably dead at the
// moment it starts — which is precisely the argument for rate feedback.
func RunEliminationAblation(envelope Scenario) (*Ablation, error) {
	ab := &Ablation{
		ID:    "ABL4",
		Title: "Dead-timestamp computation elimination without ARU (config 1)",
		Description: "§3.2: eliminating upstream computations from consumer virtual-time " +
			"guarantees alone has shown limited success — it generally becomes too late. " +
			"Compare No-ARU, No-ARU + elimination, and ARU-min.",
	}
	variants := []struct {
		name      string
		policy    PolicyName
		eliminate bool
	}{
		{"no-aru", NoARU, false},
		{"no-aru+elim", NoARU, true},
		{"aru-min", ARUMin, false},
	}
	for _, v := range variants {
		sc := envelope
		sc.Policy = v.policy
		sc.Hosts = 1
		elim := v.eliminate
		base := sc.Mutate
		sc.Mutate = func(cfg *tracker.Config) {
			if base != nil {
				base(cfg)
			}
			cfg.EliminateDeadComputations = elim
		}
		r, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", ab.ID, v.name, err)
		}
		ab.Rows = append(ab.Rows, AblationRow{Variant: v.name, Result: r})
	}
	return ab, nil
}

// RunAllAblations executes ABL1–ABL4.
func RunAllAblations(envelope Scenario) ([]*Ablation, error) {
	var out []*Ablation
	for _, run := range []func(Scenario) (*Ablation, error){
		RunFilterAblation, RunNoiseAblation, RunGCAblation, RunEliminationAblation,
	} {
		ab, err := run(envelope)
		if err != nil {
			return nil, err
		}
		out = append(out, ab)
	}
	return out, nil
}

// Write renders an ablation as a table.
func (ab *Ablation) Write(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", ab.ID, ab.Title)
	fmt.Fprintf(w, "    %s\n\n", ab.Description)
	fmt.Fprintf(w, "%-14s %10s %10s %12s %12s %12s\n",
		"variant", "fps", "jitter", "latency", "mem mean", "wasted mem")
	for _, row := range ab.Rows {
		r := row.Result
		fmt.Fprintf(w, "%-14s %10.2f %10v %12v %9.2f MB %11.1f%%\n",
			row.Variant, r.ThroughputMean,
			r.Jitter.Round(time.Millisecond),
			r.LatencyMean.Round(time.Millisecond),
			r.MeanFootprint/mb, r.WastedMemPct)
	}
	fmt.Fprintln(w)
}
