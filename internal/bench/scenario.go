// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5): the memory-footprint table
// (Figure 6), the wasted-resources table (Figure 7), the
// footprint-versus-time graphs (Figures 8 and 9), and the performance
// table (Figure 10). It runs the tracker workload under each ARU policy
// in both cluster configurations, averages over seeds ("average statistics
// over successive execution runs"), and prints paper-versus-measured
// tables plus machine-readable series.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracker"
)

// PolicyName identifies one row of the paper's tables.
type PolicyName string

// The three policies of the evaluation.
const (
	NoARU  PolicyName = "No ARU"
	ARUMin PolicyName = "ARU-min"
	ARUMax PolicyName = "ARU-max"
)

// Policies lists the table rows in paper order.
var Policies = []PolicyName{NoARU, ARUMin, ARUMax}

// corePolicy maps a row to its ARU policy.
func corePolicy(p PolicyName) core.Policy {
	switch p {
	case ARUMin:
		return core.PolicyMin()
	case ARUMax:
		return core.PolicyMax()
	default:
		return core.PolicyOff()
	}
}

// Scenario describes one experiment cell: a policy in a cluster
// configuration, run for Duration per seed.
type Scenario struct {
	// Policy selects the table row.
	Policy PolicyName
	// Hosts is 1 (configuration 1) or 5 (configuration 2).
	Hosts int
	// Duration is the virtual run length; Warmup is discarded before
	// analysis.
	Duration, Warmup time.Duration
	// Seeds are the trial seeds; results are averaged across them.
	Seeds []int64
	// Collector names the GC strategy ("dgc" default, "tgc", "none").
	Collector string
	// Mutate, if non-nil, adjusts the tracker config before each trial
	// (used by ablations).
	Mutate func(*tracker.Config)
}

// withDefaults fills unset fields with the standard experiment envelope.
func (s Scenario) withDefaults() Scenario {
	if s.Hosts == 0 {
		s.Hosts = 1
	}
	if s.Duration == 0 {
		s.Duration = 120 * time.Second
	}
	if s.Warmup == 0 {
		s.Warmup = 15 * time.Second
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{11, 23, 42}
	}
	if s.Collector == "" {
		s.Collector = "dgc"
	}
	return s
}

// Result aggregates a scenario's trials.
type Result struct {
	Scenario Scenario
	// Trials holds the per-seed postmortem analyses.
	Trials []*trace.Analysis

	// Figure 6 metrics (bytes).
	MeanFootprint, StdFootprint float64
	IGCMeanFootprint            float64
	// Figure 7 metrics (percent).
	WastedMemPct, WastedCompPct float64
	// Figure 10 metrics.
	ThroughputMean, ThroughputStd float64 // fps across trials
	LatencyMean, LatencyStd       time.Duration
	Jitter                        time.Duration
}

// Run executes all trials of a scenario and aggregates.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	res := &Result{Scenario: sc}

	var footMean, footStd, igcMean stats.Welford
	var wastedMem, wastedComp stats.Welford
	var fps stats.Welford
	var latMean stats.Welford
	var jitter stats.Welford

	for _, seed := range sc.Seeds {
		cfg := tracker.Config{
			Hosts:     sc.Hosts,
			Seed:      seed,
			Policy:    corePolicy(sc.Policy),
			Collector: gc.ByName(sc.Collector),
		}
		if sc.Mutate != nil {
			sc.Mutate(&cfg)
		}
		app, err := tracker.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s/%d hosts: %w", sc.Policy, sc.Hosts, err)
		}
		a, err := app.Run(sc.Duration, sc.Warmup)
		if err != nil {
			return nil, fmt.Errorf("bench: running %s/%d hosts: %w", sc.Policy, sc.Hosts, err)
		}
		res.Trials = append(res.Trials, a)

		footMean.Add(a.All.MeanBytes)
		footStd.Add(a.All.StdBytes)
		igcMean.Add(a.IGC.MeanBytes)
		wastedMem.Add(a.WastedMemPct)
		wastedComp.Add(a.WastedCompPct)
		fps.Add(a.ThroughputFPS)
		latMean.Add(float64(a.LatencyMean))
		jitter.Add(float64(a.Jitter))
	}

	res.MeanFootprint = footMean.Mean()
	res.StdFootprint = footStd.Mean()
	res.IGCMeanFootprint = igcMean.Mean()
	res.WastedMemPct = wastedMem.Mean()
	res.WastedCompPct = wastedComp.Mean()
	res.ThroughputMean = fps.Mean()
	res.ThroughputStd = fps.SampleStd()
	res.LatencyMean = time.Duration(latMean.Mean())
	res.LatencyStd = time.Duration(latMean.SampleStd())
	res.Jitter = time.Duration(jitter.Mean())
	return res, nil
}

// Suite is the full evaluation: every policy in both configurations.
type Suite struct {
	// Results is keyed by [hosts][policy].
	Results map[int]map[PolicyName]*Result
	// Envelope carries the common scenario parameters used.
	Envelope Scenario
}

// RunSuite executes the full evaluation grid. The envelope's Policy and
// Hosts fields are ignored; its duration/seed fields apply to every cell.
func RunSuite(envelope Scenario) (*Suite, error) {
	envelope = envelope.withDefaults()
	suite := &Suite{Results: make(map[int]map[PolicyName]*Result), Envelope: envelope}
	for _, hosts := range []int{1, 5} {
		suite.Results[hosts] = make(map[PolicyName]*Result)
		for _, p := range Policies {
			sc := envelope
			sc.Hosts = hosts
			sc.Policy = p
			r, err := Run(sc)
			if err != nil {
				return nil, err
			}
			suite.Results[hosts][p] = r
		}
	}
	return suite, nil
}

// IGCReference returns the IGC footprint reference for a configuration:
// the ideal-collector bound computed from the No-ARU execution trace, the
// baseline every "% wrt IGC" column is normalized against.
func (s *Suite) IGCReference(hosts int) float64 {
	if r, ok := s.Results[hosts][NoARU]; ok {
		return r.IGCMeanFootprint
	}
	return 0
}
