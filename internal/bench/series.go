package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// SeriesPanel is one panel of Figure 8/9: a named footprint-versus-time
// curve.
type SeriesPanel struct {
	// Name labels the panel: "igc", "aru-max", "aru-min", "no-aru" (the
	// paper's left-to-right panel order).
	Name string
	// Times and Bytes are the downsampled curve.
	Times []time.Duration
	Bytes []float64
}

// FootprintSeries extracts the four panels of Figure 8 (hosts=1) or
// Figure 9 (hosts=5) from a suite, downsampled to n points each. The IGC
// panel comes from the No-ARU execution's trace, matching the paper's
// methodology; all panels share the same time axis so they can be plotted
// side by side on identical scales.
func (s *Suite) FootprintSeries(hosts, n int) []SeriesPanel {
	from := s.Envelope.Warmup
	to := s.Envelope.Duration

	var panels []SeriesPanel
	appendPanel := func(name string, times []time.Duration, values []float64) {
		panels = append(panels, SeriesPanel{Name: name, Times: times, Bytes: values})
	}

	if no := s.Results[hosts][NoARU]; no != nil && len(no.Trials) > 0 {
		t0 := no.Trials[0]
		times, values := t0.IGC.Series.Downsample(from, to, n)
		appendPanel("igc", times, values)
	}
	for _, pn := range []PolicyName{ARUMax, ARUMin, NoARU} {
		if r := s.Results[hosts][pn]; r != nil && len(r.Trials) > 0 {
			t0 := r.Trials[0]
			times, values := t0.All.Series.Downsample(from, to, n)
			name := map[PolicyName]string{ARUMax: "aru-max", ARUMin: "aru-min", NoARU: "no-aru"}[pn]
			appendPanel(name, times, values)
		}
	}
	return panels
}

// WriteSeriesCSV writes one Figure 8/9 panel set as CSV: a time column in
// microseconds followed by one column per panel.
func WriteSeriesCSV(w io.Writer, panels []SeriesPanel) error {
	if len(panels) == 0 {
		return fmt.Errorf("bench: no panels to write")
	}
	fmt.Fprint(w, "time_us")
	for _, p := range panels {
		fmt.Fprintf(w, ",%s_bytes", p.Name)
	}
	fmt.Fprintln(w)
	rows := len(panels[0].Times)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(w, "%d", panels[0].Times[i].Microseconds())
		for _, p := range panels {
			v := 0.0
			if i < len(p.Bytes) {
				v = p.Bytes[i]
			}
			fmt.Fprintf(w, ",%.0f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SaveFigures writes fig8_footprint_config1.csv and
// fig9_footprint_config2.csv (n points per curve) into dir, creating it
// if needed, and returns the written paths.
func (s *Suite) SaveFigures(dir string, n int) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, fig := range []struct {
		hosts int
		file  string
	}{
		{1, "fig8_footprint_config1.csv"},
		{5, "fig9_footprint_config2.csv"},
	} {
		panels := s.FootprintSeries(fig.hosts, n)
		path := filepath.Join(dir, fig.file)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		err = WriteSeriesCSV(f, panels)
		cerr := f.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// RenderASCII draws a crude fixed-width chart of the panels for terminal
// inspection — the qualitative view of Figures 8/9 (all panels share the
// same y scale, like the paper's side-by-side graphs).
func RenderASCII(w io.Writer, panels []SeriesPanel, width, height int) {
	if len(panels) == 0 || width < 8 || height < 2 {
		return
	}
	var max float64
	for _, p := range panels {
		for _, v := range p.Bytes {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, p := range panels {
		fmt.Fprintf(w, "%s (peak %.2f MB, shared y-scale %.2f MB)\n", p.Name, peak(p.Bytes)/mb, max/mb)
		grid := make([][]byte, height)
		for r := range grid {
			grid[r] = make([]byte, width)
			for cidx := range grid[r] {
				grid[r][cidx] = ' '
			}
		}
		for x := 0; x < width; x++ {
			idx := x * len(p.Bytes) / width
			if idx >= len(p.Bytes) {
				idx = len(p.Bytes) - 1
			}
			level := int(p.Bytes[idx] / max * float64(height-1))
			for y := 0; y <= level; y++ {
				grid[height-1-y][x] = '#'
			}
		}
		for _, row := range grid {
			fmt.Fprintf(w, "  |%s|\n", string(row))
		}
		fmt.Fprintln(w)
	}
}

func peak(vs []float64) float64 {
	var m float64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
