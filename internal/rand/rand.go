// Package rand is the repository's one seeded randomness source: a
// dependency-free xorshift64 generator plus the environment-seed
// convention shared by every chaos and scenario harness.
//
// Two callers grew their own copies before this package existed — the
// cmd/aru jitter source and internal/faultnet's delay jitter — and the
// scenario factory would have been a third. Centralizing matters
// beyond deduplication: pinned benchmark files (BENCH_aru.json,
// BENCH_scenarios.json) are regenerated from seeds, so the generator
// algorithm is part of the repository's persisted state. Rand
// reproduces cmd/aru's original xorshift64 stream bit for bit: New(s)
// followed by Uint64 calls yields exactly the sequence the pinned
// cells were measured under.
package rand

import (
	"os"
	"strconv"
	"time"
)

// zeroSeed replaces a zero seed: zero is the xorshift fixpoint (every
// draw would be zero forever). The constant is the splitmix64 golden
// gamma, an arbitrary full-entropy odd word.
const zeroSeed = 0x9E3779B97F4A7C15

// Rand is a seeded xorshift64 generator. It is deliberately minimal
// and deterministic across platforms; it is NOT safe for concurrent
// use — fork one per goroutine with Split streams instead of sharing.
type Rand struct {
	s uint64
}

// New returns a generator whose first Uint64 is exactly
// xorshift64(seed). A zero seed (the xorshift fixpoint) is replaced
// with a fixed full-entropy constant.
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = zeroSeed
	}
	return &Rand{s: seed}
}

// Uint64 advances the generator: x ^= x<<13; x ^= x>>7; x ^= x<<17.
func (r *Rand) Uint64() uint64 {
	x := r.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.s = x
	return x
}

// Int63n returns a uniform int64 in [0, n). n <= 0 returns 0 rather
// than panicking — fault scripts pass user-configured jitter spans and
// a zero span simply means "no jitter".
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a uniform int in [0, n); n <= 0 returns 0.
func (r *Rand) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of
// precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [min, max); max <= min
// returns min.
func (r *Rand) Duration(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(r.Int63n(int64(max-min)))
}

// Fork derives an independent child generator from this one's stream,
// advancing the parent by one draw. The child is re-mixed through
// splitmix64 so parent and child sequences are uncorrelated (raw
// xorshift states one draw apart overlap heavily).
func (r *Rand) Fork() *Rand {
	return New(Split(r.Uint64(), 0))
}

// Split deterministically derives stream k's seed from a master seed
// using one round of splitmix64. Distinct (seed, k) pairs give
// uncorrelated xorshift streams; the scenario generator uses it to
// hand every stage its own stream so adding a stage never perturbs the
// draws of its siblings.
func Split(seed uint64, k uint64) uint64 {
	z := seed + (k+1)*zeroSeed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = zeroSeed
	}
	return z
}

// EnvSeed returns the seed pinned in the named environment variable
// when it parses as an int64 (CI pins FAULTNET_SEED / SCENARIO_SEED
// for reproducible runs), def otherwise. Junk values fall back to def,
// matching the historical faultnet.Seed contract.
func EnvSeed(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}
