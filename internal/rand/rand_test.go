package rand

import (
	"math"
	"testing"
	"time"
)

// legacyXorshift is the original cmd/aru implementation, kept here as
// the compatibility oracle: BENCH_aru.json was measured under this
// exact stream, so Rand must reproduce it bit for bit.
func legacyXorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

func TestUint64MatchesLegacyStream(t *testing.T) {
	for _, seed := range []uint64{1, 2, 1719, 0xDEADBEEF, math.MaxUint64} {
		r := New(seed)
		s := seed
		for i := 0; i < 1000; i++ {
			want := legacyXorshift(&s)
			if got := r.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: got %#x want %#x", seed, i, got, want)
			}
		}
	}
}

func TestZeroSeedIsNotAFixpoint(t *testing.T) {
	r := New(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("zero seed must be remapped to a live stream, got %#x, %#x", a, b)
	}
}

func TestInt63nBounds(t *testing.T) {
	r := New(42)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(7); v < 0 || v >= 7 {
			t.Fatalf("Int63n(7) = %d out of range", v)
		}
	}
	if v := r.Int63n(0); v != 0 {
		t.Fatalf("Int63n(0) = %d, want 0", v)
	}
	if v := r.Int63n(-5); v != 0 {
		t.Fatalf("Int63n(-5) = %d, want 0", v)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestDuration(t *testing.T) {
	r := New(7)
	lo, hi := 5*time.Millisecond, 40*time.Millisecond
	for i := 0; i < 10000; i++ {
		if d := r.Duration(lo, hi); d < lo || d >= hi {
			t.Fatalf("Duration = %v out of [%v,%v)", d, lo, hi)
		}
	}
	if d := r.Duration(hi, lo); d != hi {
		t.Fatalf("inverted bounds must return min, got %v", d)
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	seen := map[uint64]uint64{}
	for k := uint64(0); k < 64; k++ {
		s := Split(1719, k)
		if s == 0 {
			t.Fatalf("Split produced zero seed for stream %d", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collided on seed %#x", prev, k, s)
		}
		seen[s] = k
	}
	// Same (seed, k) must be stable.
	if Split(1719, 3) != Split(1719, 3) {
		t.Fatal("Split is not deterministic")
	}
}

func TestForkDecorrelates(t *testing.T) {
	parent := New(1719)
	child := parent.Fork()
	// The child must not replay the parent's upcoming stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and forked child matched on %d/64 draws", same)
	}
}

func TestEnvSeed(t *testing.T) {
	const key = "RAND_TEST_SEED"
	if got := EnvSeed(key, 11); got != 11 {
		t.Fatalf("unset env: got %d want 11", got)
	}
	t.Setenv(key, "2026")
	if got := EnvSeed(key, 11); got != 2026 {
		t.Fatalf("set env: got %d want 2026", got)
	}
	t.Setenv(key, "junk")
	if got := EnvSeed(key, 11); got != 11 {
		t.Fatalf("junk env: got %d want 11 (fallback)", got)
	}
}
