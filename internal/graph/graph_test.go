package graph

import (
	"strings"
	"testing"
)

// buildDiamond constructs digitizer -> C1 -> worker -> C2 -> gui.
func buildDiamond(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New()
	ids := map[string]NodeID{}
	add := func(kind Kind, name string, host int) {
		id, err := g.AddNode(kind, name, host)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	add(KindThread, "digitizer", 0)
	add(KindChannel, "C1", 0)
	add(KindThread, "worker", 1)
	add(KindChannel, "C2", 1)
	add(KindThread, "gui", 2)
	for _, e := range [][2]string{{"digitizer", "C1"}, {"C1", "worker"}, {"worker", "C2"}, {"C2", "gui"}} {
		if _, err := g.Connect(ids[e[0]], ids[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestKindString(t *testing.T) {
	if KindThread.String() != "thread" || KindChannel.String() != "channel" || KindQueue.String() != "queue" {
		t.Error("Kind.String broken")
	}
	if !KindChannel.IsBuffer() || !KindQueue.IsBuffer() || KindThread.IsBuffer() {
		t.Error("IsBuffer broken")
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestAddNodeValidation(t *testing.T) {
	g := New()
	if _, err := g.AddNode(KindThread, "", 0); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := g.AddNode(KindThread, "a", -1); err == nil {
		t.Error("negative host must fail")
	}
	if _, err := g.AddNode(KindThread, "a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode(KindChannel, "a", 0); err == nil {
		t.Error("duplicate name must fail")
	}
}

func TestConnectRules(t *testing.T) {
	g := New()
	t1 := g.MustAddNode(KindThread, "t1", 0)
	t2 := g.MustAddNode(KindThread, "t2", 0)
	c1 := g.MustAddNode(KindChannel, "c1", 0)
	q1 := g.MustAddNode(KindQueue, "q1", 0)

	if _, err := g.Connect(t1, t2); err == nil {
		t.Error("thread->thread must be rejected")
	}
	if _, err := g.Connect(c1, q1); err == nil {
		t.Error("buffer->buffer must be rejected")
	}
	if _, err := g.Connect(t1, c1); err != nil {
		t.Errorf("thread->channel: %v", err)
	}
	if _, err := g.Connect(t1, c1); err == nil {
		t.Error("duplicate connection must be rejected")
	}
	if _, err := g.Connect(c1, t2); err != nil {
		t.Errorf("channel->thread: %v", err)
	}
	if _, err := g.Connect(t2, q1); err != nil {
		t.Errorf("thread->queue: %v", err)
	}
	if _, err := g.Connect(NodeID(99), t1); err == nil {
		t.Error("invalid id must be rejected")
	}
	if _, err := g.Connect(t1, NodeID(-5)); err == nil {
		t.Error("invalid id must be rejected")
	}
}

func TestInOutWiring(t *testing.T) {
	g, ids := buildDiamond(t)
	dig := g.Node(ids["digitizer"])
	if len(dig.In) != 0 || len(dig.Out) != 1 {
		t.Errorf("digitizer in/out = %d/%d", len(dig.In), len(dig.Out))
	}
	c1 := g.Node(ids["C1"])
	if len(c1.In) != 1 || len(c1.Out) != 1 {
		t.Errorf("C1 in/out = %d/%d", len(c1.In), len(c1.Out))
	}
	conn := g.Conn(c1.Out[0])
	if conn.From != ids["C1"] || conn.To != ids["worker"] {
		t.Errorf("conn endpoints = %d -> %d", conn.From, conn.To)
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g, ids := buildDiamond(t)
	srcs := g.SourceThreads()
	if len(srcs) != 1 || srcs[0] != ids["digitizer"] {
		t.Errorf("SourceThreads = %v", srcs)
	}
	sinks := g.SinkThreads()
	if len(sinks) != 1 || sinks[0] != ids["gui"] {
		t.Errorf("SinkThreads = %v", sinks)
	}
}

func TestLookupAndCounts(t *testing.T) {
	g, ids := buildDiamond(t)
	if id, ok := g.Lookup("worker"); !ok || id != ids["worker"] {
		t.Error("Lookup failed")
	}
	if _, ok := g.Lookup("nope"); ok {
		t.Error("Lookup of absent name must fail")
	}
	if g.NumNodes() != 5 || g.NumConns() != 4 {
		t.Errorf("counts = %d nodes, %d conns", g.NumNodes(), g.NumConns())
	}
	count := 0
	g.Nodes(func(*Node) { count++ })
	if count != 5 {
		t.Errorf("Nodes iterated %d", count)
	}
	count = 0
	g.Conns(func(*Conn) { count++ })
	if count != 4 {
		t.Errorf("Conns iterated %d", count)
	}
}

func TestHosts(t *testing.T) {
	g, _ := buildDiamond(t)
	if got := g.Hosts(); got != 3 {
		t.Errorf("Hosts = %d, want 3", got)
	}
	if got := New().Hosts(); got != 1 {
		t.Errorf("empty graph Hosts = %d, want 1", got)
	}
}

func TestUpDownstreamAndReachable(t *testing.T) {
	g, ids := buildDiamond(t)
	down := g.Downstream(ids["C1"])
	if len(down) != 1 || down[0] != ids["worker"] {
		t.Errorf("Downstream = %v", down)
	}
	up := g.Upstream(ids["worker"])
	if len(up) != 1 || up[0] != ids["C1"] {
		t.Errorf("Upstream = %v", up)
	}
	reach := g.Reachable(ids["worker"])
	for _, name := range []string{"worker", "C2", "gui"} {
		if !reach[ids[name]] {
			t.Errorf("%s must be reachable from worker", name)
		}
	}
	if reach[ids["digitizer"]] || reach[ids["C1"]] {
		t.Error("upstream nodes must not be forward-reachable")
	}
}

func TestTopoSort(t *testing.T) {
	g, ids := buildDiamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	g.Conns(func(c *Conn) {
		if pos[c.From] >= pos[c.To] {
			t.Errorf("edge %d->%d violates topo order", c.From, c.To)
		}
	})
	_ = ids
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	t1 := g.MustAddNode(KindThread, "t1", 0)
	c1 := g.MustAddNode(KindChannel, "c1", 0)
	t2 := g.MustAddNode(KindThread, "t2", 0)
	c2 := g.MustAddNode(KindChannel, "c2", 0)
	g.MustConnect(t1, c1)
	g.MustConnect(c1, t2)
	g.MustConnect(t2, c2)
	g.MustConnect(c2, t1) // closes the cycle
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle must be detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic graphs")
	}
}

func TestValidate(t *testing.T) {
	g, _ := buildDiamond(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond must validate: %v", err)
	}

	if err := New().Validate(); err == nil {
		t.Error("empty graph must not validate")
	}

	g2 := New()
	g2.MustAddNode(KindChannel, "orphan", 0)
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "producer") {
		t.Errorf("producerless channel: %v", err)
	}

	g3 := New()
	tid := g3.MustAddNode(KindThread, "t", 0)
	cid := g3.MustAddNode(KindChannel, "c", 0)
	g3.MustConnect(tid, cid)
	if err := g3.Validate(); err == nil || !strings.Contains(err.Error(), "consumer") {
		t.Errorf("consumerless channel: %v", err)
	}

	g4 := New()
	g4.MustAddNode(KindThread, "lonely", 0)
	if err := g4.Validate(); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("disconnected thread: %v", err)
	}
}

func TestMustHelpersPanic(t *testing.T) {
	g := New()
	g.MustAddNode(KindThread, "a", 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAddNode must panic on duplicate")
			}
		}()
		g.MustAddNode(KindThread, "a", 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustConnect must panic on invalid edge")
			}
		}()
		g.MustConnect(0, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Node must panic on bad id")
			}
		}()
		g.Node(NodeID(42))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Conn must panic on bad id")
			}
		}()
		g.Conn(ConnID(42))
	}()
}
