package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomDAG builds a random layered thread/buffer DAG: threads in even
// layers, buffers in odd layers, edges only forward, so the result is
// always acyclic and obeys the alternation rule. Returns the graph and
// the adjacency for reference computations.
func randomDAG(rng *rand.Rand) (*Graph, map[NodeID][]NodeID) {
	g := New()
	layers := 2 + rng.Intn(4)*2 // even count: thread/buffer alternation
	var layerNodes [][]NodeID
	for l := 0; l < layers; l++ {
		kind := KindThread
		if l%2 == 1 {
			if rng.Intn(2) == 0 {
				kind = KindChannel
			} else {
				kind = KindQueue
			}
		}
		n := 1 + rng.Intn(3)
		var ids []NodeID
		for i := 0; i < n; i++ {
			ids = append(ids, g.MustAddNode(kind, fmt.Sprintf("n%d_%d", l, i), 0))
		}
		layerNodes = append(layerNodes, ids)
	}
	adj := map[NodeID][]NodeID{}
	for l := 0; l+1 < layers; l++ {
		for _, from := range layerNodes[l] {
			for _, to := range layerNodes[l+1] {
				if rng.Intn(2) == 0 {
					continue
				}
				if _, err := g.Connect(from, to); err == nil {
					adj[from] = append(adj[from], to)
				}
			}
		}
	}
	return g, adj
}

// TestQuickTopoSortRespectsEdges: for random DAGs, every node appears
// exactly once in the topological order and every edge goes forward.
func TestQuickTopoSortRespectsEdges(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := randomDAG(rng)
		order, err := g.TopoSort()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(order) != g.NumNodes() {
			t.Fatalf("seed %d: order has %d of %d nodes", seed, len(order), g.NumNodes())
		}
		pos := map[NodeID]int{}
		for i, id := range order {
			if _, dup := pos[id]; dup {
				t.Fatalf("seed %d: node %d appears twice", seed, id)
			}
			pos[id] = i
		}
		violated := false
		g.Conns(func(c *Conn) {
			if pos[c.From] >= pos[c.To] {
				violated = true
			}
		})
		if violated {
			t.Fatalf("seed %d: topo order violates an edge", seed)
		}
	}
}

// TestQuickReachableMatchesBFS: Reachable equals a reference BFS closure.
func TestQuickReachableMatchesBFS(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, adj := randomDAG(rng)
		for id := NodeID(0); int(id) < g.NumNodes(); id++ {
			got := g.Reachable(id)
			// Reference BFS.
			want := map[NodeID]bool{id: true}
			frontier := []NodeID{id}
			for len(frontier) > 0 {
				cur := frontier[0]
				frontier = frontier[1:]
				for _, next := range adj[cur] {
					if !want[next] {
						want[next] = true
						frontier = append(frontier, next)
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d node %d: reachable %d vs reference %d", seed, id, len(got), len(want))
			}
			for n := range want {
				if !got[n] {
					t.Fatalf("seed %d node %d: missing %d", seed, id, n)
				}
			}
		}
	}
}

// TestQuickSourcesSinksConsistent: every source thread has indegree 0,
// every sink thread outdegree 0, and both sets contain only threads.
func TestQuickSourcesSinksConsistent(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := randomDAG(rng)
		for _, id := range g.SourceThreads() {
			n := g.Node(id)
			if n.Kind != KindThread || len(n.In) != 0 {
				t.Fatalf("seed %d: bad source %+v", seed, n)
			}
		}
		for _, id := range g.SinkThreads() {
			n := g.Node(id)
			if n.Kind != KindThread || len(n.Out) != 0 {
				t.Fatalf("seed %d: bad sink %+v", seed, n)
			}
		}
	}
}
