// Package graph models the application task graph of a Stampede-style
// streaming application: threads connected through channels and queues.
//
// The graph is the structural knowledge the ARU mechanism exploits (§3.2 of
// the paper): data dependencies are "implicitly derived by the input/output
// connections made between threads", and summary-STP feedback flows
// backwards along exactly these connections.
//
// Terminology follows the paper: a *node* is a thread, channel, or queue; a
// *connection* is a directed data-flow edge between a thread and a buffer
// (threads never connect directly to threads, nor buffers to buffers).
// Machines of the cluster are called *hosts* here to avoid overloading
// "node".
package graph

import (
	"errors"
	"fmt"
)

// Kind discriminates the three node flavours of the task graph.
type Kind uint8

const (
	// KindThread is a computation task executed by a thread.
	KindThread Kind = iota
	// KindChannel is a timestamped random-access buffer.
	KindChannel
	// KindQueue is a timestamped FIFO buffer.
	KindQueue
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindThread:
		return "thread"
	case KindChannel:
		return "channel"
	case KindQueue:
		return "queue"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsBuffer reports whether the kind is a data container (channel or queue).
func (k Kind) IsBuffer() bool { return k == KindChannel || k == KindQueue }

// NodeID identifies a node within one Graph.
type NodeID int

// ConnID identifies a connection within one Graph.
type ConnID int

// NoNode is the invalid node id.
const NoNode NodeID = -1

// Node is a vertex of the task graph.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Host is the index of the cluster host this node is placed on.
	// Channels are conventionally placed on the host of their producer
	// thread (paper §5, configuration 2).
	Host int
	// In holds connections whose To is this node (upstream edges).
	In []ConnID
	// Out holds connections whose From is this node (downstream edges).
	// The ARU backwardSTP vector of the node has one slot per Out edge.
	Out []ConnID
}

// Conn is a directed data-flow edge: items (and, in the opposite
// direction, summary-STP feedback) travel From → To.
type Conn struct {
	ID       ConnID
	From, To NodeID
}

// Graph is a mutable task graph. It is not safe for concurrent mutation;
// build it fully before starting the runtime. Read accessors are safe once
// mutation has stopped.
type Graph struct {
	nodes  []*Node
	conns  []*Conn
	byName map[string]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// AddNode adds a node of the given kind, unique name, and host placement,
// returning its id. Duplicate names are rejected because channels and
// queues are "system-wide unique names" in Stampede.
func (g *Graph) AddNode(kind Kind, name string, host int) (NodeID, error) {
	if name == "" {
		return NoNode, errors.New("graph: node name must be non-empty")
	}
	if _, dup := g.byName[name]; dup {
		return NoNode, fmt.Errorf("graph: duplicate node name %q", name)
	}
	if host < 0 {
		return NoNode, fmt.Errorf("graph: node %q has negative host %d", name, host)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, &Node{ID: id, Kind: kind, Name: name, Host: host})
	g.byName[name] = id
	return id, nil
}

// MustAddNode is AddNode that panics on error, for static graph literals.
func (g *Graph) MustAddNode(kind Kind, name string, host int) NodeID {
	id, err := g.AddNode(kind, name, host)
	if err != nil {
		panic(err)
	}
	return id
}

// Connect adds a data-flow edge from one node to another. Exactly one
// endpoint must be a thread and the other a buffer; this mirrors the
// Stampede rule that threads communicate only through channels and queues.
func (g *Graph) Connect(from, to NodeID) (ConnID, error) {
	fn, err := g.checkID(from)
	if err != nil {
		return -1, err
	}
	tn, err := g.checkID(to)
	if err != nil {
		return -1, err
	}
	if fn.Kind == KindThread && !tn.Kind.IsBuffer() {
		return -1, fmt.Errorf("graph: thread %q may only connect to a buffer, not %s %q", fn.Name, tn.Kind, tn.Name)
	}
	if fn.Kind.IsBuffer() && tn.Kind != KindThread {
		return -1, fmt.Errorf("graph: buffer %q may only connect to a thread, not %s %q", fn.Name, tn.Kind, tn.Name)
	}
	for _, cid := range fn.Out {
		if g.conns[cid].To == to {
			return -1, fmt.Errorf("graph: duplicate connection %q -> %q", fn.Name, tn.Name)
		}
	}
	id := ConnID(len(g.conns))
	g.conns = append(g.conns, &Conn{ID: id, From: from, To: to})
	fn.Out = append(fn.Out, id)
	tn.In = append(tn.In, id)
	return id, nil
}

// MustConnect is Connect that panics on error.
func (g *Graph) MustConnect(from, to NodeID) ConnID {
	id, err := g.Connect(from, to)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) checkID(id NodeID) (*Node, error) {
	if id < 0 || int(id) >= len(g.nodes) {
		return nil, fmt.Errorf("graph: invalid node id %d", id)
	}
	return g.nodes[id], nil
}

// Node returns the node with the given id; it panics on an invalid id
// since ids only come from this graph.
func (g *Graph) Node(id NodeID) *Node {
	n, err := g.checkID(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Conn returns the connection with the given id.
func (g *Graph) Conn(id ConnID) *Conn {
	if id < 0 || int(id) >= len(g.conns) {
		panic(fmt.Sprintf("graph: invalid conn id %d", id))
	}
	return g.conns[id]
}

// Lookup returns the node id for a name.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumConns returns the number of connections.
func (g *Graph) NumConns() int { return len(g.conns) }

// Nodes iterates all nodes in id order.
func (g *Graph) Nodes(fn func(*Node)) {
	for _, n := range g.nodes {
		fn(n)
	}
}

// Conns iterates all connections in id order.
func (g *Graph) Conns(fn func(*Conn)) {
	for _, c := range g.conns {
		fn(c)
	}
}

// SourceThreads returns the threads with no incoming connections — the
// "threads on the left of the pipeline" that ARU throttles directly.
func (g *Graph) SourceThreads() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindThread && len(n.In) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// SinkThreads returns the threads with no outgoing connections — the
// pipeline endpoints whose consumption defines a "successful" item.
func (g *Graph) SinkThreads() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindThread && len(n.Out) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// Hosts returns the number of distinct hosts referenced (max host index
// plus one); an empty graph uses one host.
func (g *Graph) Hosts() int {
	max := 0
	for _, n := range g.nodes {
		if n.Host > max {
			max = n.Host
		}
	}
	return max + 1
}

// Downstream returns the ids of nodes directly downstream of id.
func (g *Graph) Downstream(id NodeID) []NodeID {
	n := g.Node(id)
	out := make([]NodeID, 0, len(n.Out))
	for _, cid := range n.Out {
		out = append(out, g.conns[cid].To)
	}
	return out
}

// Upstream returns the ids of nodes directly upstream of id.
func (g *Graph) Upstream(id NodeID) []NodeID {
	n := g.Node(id)
	out := make([]NodeID, 0, len(n.In))
	for _, cid := range n.In {
		out = append(out, g.conns[cid].From)
	}
	return out
}

// Reachable returns the set of nodes reachable from id by following
// data-flow edges forward, including id itself.
func (g *Graph) Reachable(id NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{id: true}
	stack := []NodeID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.Downstream(cur) {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// TopoSort returns the nodes in a topological order of the data flow, or
// an error naming a node on a cycle. Streaming pipelines are DAGs; a cycle
// would deadlock the get-latest discipline.
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for _, c := range g.conns {
		indeg[c.To]++
	}
	var order []NodeID
	var queue []NodeID
	for _, n := range g.nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		for _, next := range g.Downstream(cur) {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if len(order) != len(g.nodes) {
		for _, n := range g.nodes {
			if indeg[n.ID] > 0 {
				return nil, fmt.Errorf("graph: cycle involving node %q", n.Name)
			}
		}
	}
	return order, nil
}

// Validate checks structural well-formedness: every buffer has at least
// one producer and one consumer, every thread touches at least one buffer,
// and the graph is acyclic.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("graph: empty graph")
	}
	for _, n := range g.nodes {
		switch {
		case n.Kind.IsBuffer() && len(n.In) == 0:
			return fmt.Errorf("graph: %s %q has no producer", n.Kind, n.Name)
		case n.Kind.IsBuffer() && len(n.Out) == 0:
			return fmt.Errorf("graph: %s %q has no consumer", n.Kind, n.Name)
		case n.Kind == KindThread && len(n.In) == 0 && len(n.Out) == 0:
			return fmt.Errorf("graph: thread %q is disconnected", n.Name)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}
