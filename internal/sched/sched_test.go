package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/vt"
)

// TestElasticConservationOracle is the differential oracle for the
// whole elastic loop: a bottleneck stage under heavy per-item cost is
// scaled up into a replica pool, the load then collapses and the pool
// is drained back down — and across the full scale-up → scale-down
// lifecycle every produced item is delivered downstream exactly once
// (no duplicates, no losses; produced == delivered + shed with shed 0
// before Stop). The run is entirely on the virtual clock, so it is
// -race -count=2 safe and independent of wall-clock scheduling.
func TestElasticConservationOracle(t *testing.T) {
	const (
		items      = 400
		heavyItems = 120
		heavyCost  = 40 * time.Millisecond // ≫ target: forces scale-up
		lightCost  = 2 * time.Millisecond  // ≪ band: forces scale-down
	)
	reg := metrics.NewRegistry()
	cfg := Config{
		TargetPeriod: 12 * time.Millisecond,
		Stages:       []string{"worker"},
		Tick:         10 * time.Millisecond,
	}
	rt := runtime.New(runtime.Options{
		Clock:        clock.NewVirtual(),
		ARU:          core.PolicyMin(),
		Metrics:      reg,
		SampleEvery:  -1,
		ControlLoops: []runtime.ControlLoop{Loop(cfg)},
	})
	qin := rt.MustAddQueue("Qin", 0, runtime.WithQueueCapacity(8))
	qout := rt.MustAddQueue("Qout", 0, runtime.WithQueueCapacity(8))

	// Counters are atomics and the dedupe ledger is mutex-guarded: the
	// worker runs as several concurrent incarnations mid-test.
	var produced, delivered, processed atomic.Int64
	src := rt.MustAddThread("src", 0, func(ctx *runtime.Ctx) error {
		out := ctx.Outs()[0]
		var ts vt.Timestamp
		for !ctx.Stopped() {
			if int(ts) >= items {
				ctx.Idle(time.Millisecond)
				continue
			}
			ts++
			if err := ctx.Put(out, ts, nil, 8); err != nil {
				return nil
			}
			produced.Add(1)
			ctx.Sync()
		}
		return nil
	})
	worker := rt.MustAddThread("worker", 0, func(ctx *runtime.Ctx) error {
		in, out := ctx.Ins()[0], ctx.Outs()[0]
		for {
			m, err := ctx.Get(in)
			if err != nil {
				if errors.Is(err, runtime.ErrShutdown) || errors.Is(err, runtime.ErrDraining) {
					return nil
				}
				return err
			}
			cost := lightCost
			if processed.Add(1) <= heavyItems {
				cost = heavyCost
			}
			ctx.Compute(cost)
			if err := ctx.Put(out, m.TS, nil, 8); err != nil {
				return nil
			}
			ctx.Sync() // measures this incarnation's current-STP

		}
	})
	var mu sync.Mutex
	seen := make(map[vt.Timestamp]int)
	var dup atomic.Int64
	sink := rt.MustAddThread("sink", 0, func(ctx *runtime.Ctx) error {
		in := ctx.Ins()[0]
		for {
			m, err := ctx.Get(in)
			if err != nil {
				if errors.Is(err, runtime.ErrShutdown) {
					return nil
				}
				return err
			}
			mu.Lock()
			seen[m.TS]++
			if seen[m.TS] > 1 {
				dup.Add(1)
			}
			mu.Unlock()
			delivered.Add(1)
			ctx.Sync()
		}
	})
	src.MustOutput(qin)
	worker.MustInput(qin)
	worker.MustOutput(qout)
	sink.MustInput(qout)

	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait (in real time; virtual time free-runs) for the full
	// lifecycle: every item delivered AND the replica pool drained back
	// to zero by the light phase.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if delivered.Load() == items && rt.ReplicaCount("worker") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lifecycle incomplete after 30s wall: delivered %d/%d, replicas %d",
				delivered.Load(), items, rt.ReplicaCount("worker"))
		}
		time.Sleep(time.Millisecond)
	}
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// Exactly-once conservation across the elastic lifecycle.
	if dup.Load() != 0 {
		t.Fatalf("%d duplicate deliveries through the replicated stage", dup.Load())
	}
	if got, want := delivered.Load(), produced.Load(); got != want {
		t.Fatalf("conservation broke: produced %d, delivered %d", want, got)
	}
	mu.Lock()
	for ts := vt.Timestamp(1); int(ts) <= items; ts++ {
		if seen[ts] != 1 {
			mu.Unlock()
			t.Fatalf("item %d delivered %d times, want exactly 1", ts, seen[ts])
		}
	}
	mu.Unlock()
	var shed int64
	for _, bs := range rt.Snapshot().Buffers {
		shed += bs.ShedItems
	}
	if shed != 0 {
		t.Fatalf("post-completion stop shed %d items, want 0", shed)
	}

	// Both halves of the lifecycle actually happened.
	ls := metrics.Labels{"stage": "worker"}
	ups := reg.Counter(MetricScaleUps, "", ls).Value()
	downs := reg.Counter(MetricScaleDowns, "", ls).Value()
	if ups == 0 {
		t.Fatal("heavy phase never scaled the worker up")
	}
	if downs == 0 {
		t.Fatal("light phase never scaled the worker down")
	}
	if downs != ups {
		t.Fatalf("asymmetric lifecycle: %d scale-ups, %d scale-downs (pool must drain to zero)", ups, downs)
	}
	if g := reg.Gauge(MetricReplicas, "", ls).Value(); g != 0 {
		t.Fatalf("replica gauge reads %d after the pool drained", g)
	}
}

// TestLoopRespectsAllowlistAndSources: the scheduler only ever touches
// allowlisted stages, and never considers sources (which cannot be
// replicated). White-box over newScheduler's discovery.
func TestLoopRespectsAllowlistAndSources(t *testing.T) {
	rt := runtime.New(runtime.Options{Clock: clock.NewVirtual(), SampleEvery: -1})
	q := rt.MustAddQueue("Q", 0)
	q2 := rt.MustAddQueue("Q2", 0)
	src := rt.MustAddThread("src", 0, func(ctx *runtime.Ctx) error { return nil })
	mid := rt.MustAddThread("mid", 0, func(ctx *runtime.Ctx) error { return nil })
	sink := rt.MustAddThread("sink", 0, func(ctx *runtime.Ctx) error { return nil })
	src.MustOutput(q)
	mid.MustInput(q)
	mid.MustOutput(q2)
	sink.MustInput(q2)

	all := newScheduler(rt, Config{TargetPeriod: time.Millisecond}.withDefaults())
	if _, ok := all.stages["src"]; ok {
		t.Fatal("source stage entered the scheduler's eligible set")
	}
	if len(all.stages) != 2 {
		t.Fatalf("eligible set %v, want exactly {mid, sink}", stageNames(all))
	}

	only := newScheduler(rt, Config{TargetPeriod: time.Millisecond, Stages: []string{"mid"}}.withDefaults())
	if len(only.stages) != 1 || only.stages["mid"] == nil {
		t.Fatalf("allowlisted set %v, want exactly {mid}", stageNames(only))
	}
}

func stageNames(s *scheduler) []string {
	var out []string
	for name := range s.stages {
		out = append(out, name)
	}
	return out
}

// TestPickHostSpreadsByWeight: placement is least-weighted-load-first
// over the configured host set, deterministically tie-broken by
// listing order.
func TestPickHostSpreadsByWeight(t *testing.T) {
	s := &scheduler{
		cfg:      Config{Hosts: []int{0, 1, 2}, Weights: map[string]float64{"heavy": 3}}.withDefaults(),
		hostLoad: make(map[int]float64),
	}
	st := &stage{name: "heavy"}
	var got []int
	for i := 0; i < 4; i++ {
		h := s.pickHost()
		got = append(got, h)
		st.placed = append(st.placed, h)
		s.hostLoad[h] += s.cfg.weight(st.name)
	}
	want := []int{0, 1, 2, 0}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("placement order %v, want %v", got, want)
	}
	// Retirement releases the load LIFO (hosts 0 then 2); host 2 is now
	// the only unloaded candidate and must win the next placement.
	s.unplace(st)
	s.unplace(st)
	if h := s.pickHost(); h != 2 {
		t.Fatalf("after two retirements placement chose host %d, want 2 (load released)", h)
	}

	// No host set: inherit the primary's placement.
	bare := &scheduler{cfg: Config{}.withDefaults(), hostLoad: make(map[int]float64)}
	if h := bare.pickHost(); h != -1 {
		t.Fatalf("hostless placement returned %d, want -1 (inherit)", h)
	}
}
