// Package sched is the elastic, resource-aware scheduler: a clock-aware
// control loop over Runtime.Snapshot that detects the bottleneck stage
// of a running application and elastically replicates it into a worker
// pool behind its inbound buffer.
//
// The loop is a classical sensor → policy → actuator pipeline:
//
//	sensor:   Runtime.Snapshot — per-stage summary/current STP from the
//	          feedback controller, plus blocked-put time accumulated on
//	          each stage's inbound buffers (backlog pressure).
//	policy:   per-stage pure hysteresis state machine (policy.go) with
//	          sustain counters, an up/down dead band, and post-action
//	          cooldown, so decisions never flap.
//	actuator: Runtime.SpawnReplica / Runtime.RetireReplica — real
//	          supervised incarnations sharing the stage's consumer side,
//	          placed on the least-loaded simulated host by per-stage
//	          resource weight.
//
// The scheduler is strictly opt-in: a runtime without a sched loop in
// Options.ControlLoops behaves byte-identically to one built before
// this package existed.
package sched

import (
	"fmt"
	"os"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/runtime"
)

var debugOn = os.Getenv("SCHED_DEBUG") != ""

// Metric family names exported by the scheduler (registered only when
// the runtime has a metrics registry).
const (
	// MetricReplicas is the live replica count per stage (gauge).
	MetricReplicas = "aru_sched_replicas"
	// MetricScaleUps counts replica spawns per stage.
	MetricScaleUps = "aru_sched_scale_ups_total"
	// MetricScaleDowns counts replica retirements per stage.
	MetricScaleDowns = "aru_sched_scale_downs_total"
	// MetricBottleneck is 1 on the stage that won the latest bottleneck
	// election, 0 elsewhere (gauge).
	MetricBottleneck = "aru_sched_bottleneck"
)

// Defaults applied by Config.withDefaults.
const (
	DefaultMaxReplicas = 3
	DefaultTick        = 50 * time.Millisecond
	DefaultUpSustain   = 3
	DefaultDownSustain = 5
	DefaultDownBand    = 0.9
	DefaultCooldown    = 2
)

// Config parameterizes one scheduler loop.
type Config struct {
	// TargetPeriod is the per-stage service period the scheduler defends:
	// a bottleneck stage whose effective current-STP exceeds it is
	// scaled up. Required (a zero target would scale everything forever).
	TargetPeriod time.Duration

	// Stages optionally restricts scaling to the named stages. Nil means
	// every eligible stage (threads with at least one input — sources
	// cannot be replicated).
	Stages []string

	// MaxReplicas caps the replicas per stage (default 3: with the
	// primary that is 4 incarnations, a 4× fold headroom).
	MaxReplicas int

	// Tick is the control period (default 50ms).
	Tick time.Duration

	// UpSustain / DownSustain are the consecutive-tick sustain
	// requirements for scaling up (default 3) and down (default 5) —
	// scaling down is deliberately the slower direction.
	UpSustain   int
	DownSustain int

	// DownBand is the scale-down headroom fraction (default 0.9): a
	// replica retires only if the projected period without it stays
	// below DownBand × TargetPeriod. The (DownBand × Target, Target]
	// interval is the hysteresis dead band.
	DownBand float64

	// Cooldown is the number of ticks every stage holds after any
	// actuation on it (default 2), letting the STP fold re-converge
	// before the next decision.
	Cooldown int

	// Weights is the per-stage resource weight used for placement
	// (default 1.0): a replica lands on the candidate host with the
	// minimum summed weight of scheduler-placed replicas.
	Weights map[string]float64

	// Hosts is the candidate host set for placement. Nil means every
	// replica inherits its primary's host (single-host behaviour).
	Hosts []int

	// Horizon, when positive, stops the loop from ticking at or past
	// this clock instant: the last control tick fires strictly before
	// it. Deterministic harnesses whose stages exit on their own
	// deadlines set the horizon to the same deadline, so a tick can
	// never tie with the run's stop instant on the discrete-event
	// clock. Zero means tick until shutdown.
	Horizon time.Duration
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.MaxReplicas == 0 {
		cfg.MaxReplicas = DefaultMaxReplicas
	}
	if cfg.Tick == 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.UpSustain == 0 {
		cfg.UpSustain = DefaultUpSustain
	}
	if cfg.DownSustain == 0 {
		cfg.DownSustain = DefaultDownSustain
	}
	if cfg.DownBand == 0 {
		cfg.DownBand = DefaultDownBand
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	return cfg
}

// weight returns the placement weight of a stage (default 1).
func (cfg Config) weight(stage string) float64 {
	if w, ok := cfg.Weights[stage]; ok && w > 0 {
		return w
	}
	return 1
}

// stage is the scheduler's per-stage working state.
type stage struct {
	name   string
	inbufs []graph.NodeID // inbound buffer node ids (pressure sensors)
	pol    policy
	// lastBlocked is the previous tick's cumulative blocked-put reading
	// summed over inbufs; the per-tick delta is the pressure signal.
	lastBlocked time.Duration
	// placed is the host placement stack of scheduler-spawned replicas
	// (parallel to the runtime's newest-first retirement order).
	placed []int

	mReplicas   *metrics.Gauge
	mUps        *metrics.Counter
	mDowns      *metrics.Counter
	mBottleneck *metrics.Gauge
}

// scheduler is one control loop's state over one runtime.
type scheduler struct {
	cfg      Config
	rt       *runtime.Runtime
	stages   map[string]*stage
	ordered  []*stage // graph declaration order, for deterministic election ties
	hostLoad map[int]float64
}

// newScheduler discovers the eligible stages from the runtime's task
// graph and initializes their policy state.
func newScheduler(rt *runtime.Runtime, cfg Config) *scheduler {
	s := &scheduler{
		cfg:      cfg,
		rt:       rt,
		stages:   make(map[string]*stage),
		hostLoad: make(map[int]float64),
	}
	var allow map[string]bool
	if cfg.Stages != nil {
		allow = make(map[string]bool, len(cfg.Stages))
		for _, name := range cfg.Stages {
			allow[name] = true
		}
	}
	g := rt.Graph()
	g.Nodes(func(n *graph.Node) {
		if n.Kind != graph.KindThread {
			return
		}
		ins := g.Upstream(n.ID)
		if len(ins) == 0 {
			return // sources cannot be replicated
		}
		if allow != nil && !allow[n.Name] {
			return
		}
		st := &stage{
			name:   n.Name,
			inbufs: ins,
			pol: policy{
				target:      cfg.TargetPeriod,
				downBand:    cfg.DownBand,
				upSustain:   cfg.UpSustain,
				downSustain: cfg.DownSustain,
				cooldownFor: cfg.Cooldown,
				maxReplicas: cfg.MaxReplicas,
			},
		}
		if reg := rt.Metrics(); reg != nil {
			ls := metrics.Labels{"stage": n.Name}
			st.mReplicas = reg.Gauge(MetricReplicas, "live elastic replicas per stage", ls)
			st.mUps = reg.Counter(MetricScaleUps, "elastic replica spawns per stage", ls)
			st.mDowns = reg.Counter(MetricScaleDowns, "elastic replica retirements per stage", ls)
			st.mBottleneck = reg.Gauge(MetricBottleneck, "1 on the elected bottleneck stage", ls)
		}
		s.stages[n.Name] = st
		s.ordered = append(s.ordered, st)
	})
	return s
}

// step runs one control tick: sense, elect, decide, actuate.
func (s *scheduler) step() {
	if len(s.stages) == 0 {
		return
	}
	snap := s.rt.Snapshot()
	if snap.Draining {
		return // drain owns the application's fate; never actuate into it
	}

	// Sense: per-stage STP from the controller fold, blocked-put deltas
	// from the inbound buffers.
	summaries := make(map[string]core.STP, len(snap.Nodes))
	currents := make(map[string]core.STP, len(snap.Nodes))
	for _, ns := range snap.Nodes {
		summaries[ns.Name] = ns.Summary
		currents[ns.Name] = ns.Current
	}
	blocked := make(map[graph.NodeID]time.Duration, len(snap.Buffers))
	for _, bs := range snap.Buffers {
		blocked[bs.Node] = bs.PutBlocked
	}

	// Elect the bottleneck: the eligible stage maximizing summary-STP
	// plus this tick's inbound blocked-put delta. The delta is itself
	// time producers lost to the stage's backlog, so the two addends
	// share a unit; declaration order breaks exact ties
	// deterministically.
	type sense struct {
		st       *stage
		current  time.Duration
		score    time.Duration
		pressure bool
	}
	senses := make([]sense, 0, len(s.ordered))
	var leader *stage
	var best time.Duration
	for _, st := range s.ordered {
		var total time.Duration
		for _, id := range st.inbufs {
			total += blocked[id]
		}
		delta := total - st.lastBlocked
		st.lastBlocked = total
		score := summaries[st.name].Duration() + delta
		senses = append(senses, sense{
			st:       st,
			current:  currents[st.name].Duration(),
			score:    score,
			pressure: delta > 0,
		})
		if score > best {
			best, leader = score, st
		}
	}

	// Decide and actuate per stage.
	for _, sn := range senses {
		st := sn.st
		replicas := snap.Replicas[st.name]
		s.reconcile(st, replicas)
		if st.mBottleneck != nil {
			if st == leader {
				st.mBottleneck.Set(1)
			} else {
				st.mBottleneck.Set(0)
			}
		}
		d := st.pol.observe(Signal{
			Current:    sn.current,
			Bottleneck: st == leader,
			Replicas:   replicas,
			Pressure:   sn.pressure,
		})
		if debugOn && d != Hold {
			fmt.Printf("sched %v %s: %v current=%v score=%v replicas=%d pressure=%v\n",
				snap.At, st.name, d, sn.current, sn.score, replicas, sn.pressure)
		}
		switch d {
		case ScaleUp:
			host := s.pickHost()
			if _, err := s.rt.SpawnReplica(st.name, host); err == nil {
				st.placed = append(st.placed, host)
				if host >= 0 {
					s.hostLoad[host] += s.cfg.weight(st.name)
				}
				replicas++
				st.mUps.Inc()
			}
		case ScaleDown:
			if _, err := s.rt.RetireReplica(st.name); err == nil {
				s.unplace(st)
				replicas--
				st.mDowns.Inc()
			}
		}
		st.mReplicas.Set(int64(replicas))
	}
}

// reconcile trues the stage's placement stack against the runtime's
// live replica count: replicas that exited on their own (permanent
// failure, shutdown) release their host load without a ScaleDown.
func (s *scheduler) reconcile(st *stage, live int) {
	for len(st.placed) > live {
		s.unplace(st)
	}
}

// unplace pops the newest placement (runtime retirement is LIFO) and
// releases its weighted host load.
func (s *scheduler) unplace(st *stage) {
	if len(st.placed) == 0 {
		return
	}
	host := st.placed[len(st.placed)-1]
	st.placed = st.placed[:len(st.placed)-1]
	if host >= 0 {
		s.hostLoad[host] -= s.cfg.weight(st.name)
	}
}

// pickHost chooses the candidate host carrying the minimum weighted
// replica load (first-listed wins ties); -1 — inherit the primary's
// host — when no candidate set is configured.
func (s *scheduler) pickHost() int {
	if len(s.cfg.Hosts) == 0 {
		return -1
	}
	bestHost, bestLoad := s.cfg.Hosts[0], s.hostLoad[s.cfg.Hosts[0]]
	for _, h := range s.cfg.Hosts[1:] {
		if l := s.hostLoad[h]; l < bestLoad {
			bestHost, bestLoad = h, l
		}
	}
	return bestHost
}

// Loop builds the runtime control loop for cfg. Wire it in with
//
//	opts.ControlLoops = append(opts.ControlLoops, sched.Loop(sched.Config{
//		TargetPeriod: 40 * time.Millisecond,
//	}))
//
// (or the aru.WithElastic facade helper). The loop is clock-aware like
// the runtime's watchdog and sampler: on a real clock ticks abort
// promptly at Stop; on fake and virtual clocks the tick schedule is
// driven through the clock, so tests pin the exact decision sequence.
func Loop(cfg Config) runtime.ControlLoop {
	cfg = cfg.withDefaults()
	return func(rt *runtime.Runtime, stop <-chan struct{}) {
		s := newScheduler(rt, cfg)
		clk := rt.Clock()
		_, isReal := clk.(*clock.Real)
		for {
			if isReal {
				tm := time.NewTimer(cfg.Tick)
				select {
				case <-tm.C:
				case <-stop:
					tm.Stop()
					return
				}
				tm.Stop()
			} else {
				clk.Sleep(cfg.Tick)
				select {
				case <-stop:
					return
				default:
				}
			}
			if cfg.Horizon > 0 && clk.Now() >= cfg.Horizon {
				return
			}
			s.step()
		}
	}
}
