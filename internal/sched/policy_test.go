package sched

import (
	"testing"
	"time"
)

func testPolicy() policy {
	return policy{
		target:      10 * time.Millisecond,
		downBand:    0.9,
		upSustain:   3,
		downSustain: 5,
		cooldownFor: 2,
		maxReplicas: 3,
	}
}

// TestPolicyFlapResistance is the no-flap contract: a load oscillating
// anywhere inside the hysteresis dead band — above the scale-down
// projection threshold, at or below the scale-up target — produces zero
// scale events, however long it runs. This is the property that lets
// the scheduler run unattended against noisy STP measurements.
func TestPolicyFlapResistance(t *testing.T) {
	p := testPolicy()
	// One replica live. Scale-down needs projected = current × 2 ≤ 9ms,
	// i.e. current ≤ 4.5ms; scale-up needs current > 10ms sustained as
	// bottleneck. Oscillate across [5ms, 10ms] — the whole dead band —
	// flipping bottleneck status too.
	wave := []Signal{
		{Current: 5 * time.Millisecond, Bottleneck: false, Replicas: 1},
		{Current: 10 * time.Millisecond, Bottleneck: true, Replicas: 1},
		{Current: 7 * time.Millisecond, Bottleneck: true, Replicas: 1},
		{Current: 9 * time.Millisecond, Bottleneck: false, Replicas: 1},
	}
	for i := 0; i < 1000; i++ {
		if d := p.observe(wave[i%len(wave)]); d != Hold {
			t.Fatalf("tick %d: dead-band oscillation produced %v, want hold", i, d)
		}
	}
}

// TestPolicyUpSustain: a bottleneck over target scales up only after
// UpSustain consecutive ticks, and any break resets the count.
func TestPolicyUpSustain(t *testing.T) {
	p := testPolicy()
	hot := Signal{Current: 20 * time.Millisecond, Bottleneck: true, Replicas: 0}
	cool := Signal{Current: 8 * time.Millisecond, Bottleneck: true, Replicas: 0}

	if d := p.observe(hot); d != Hold {
		t.Fatalf("tick 1 hot: %v, want hold", d)
	}
	if d := p.observe(hot); d != Hold {
		t.Fatalf("tick 2 hot: %v, want hold", d)
	}
	if d := p.observe(cool); d != Hold {
		t.Fatalf("cool break: %v, want hold", d)
	}
	// The break reset the counter: two more hot ticks still hold.
	p.observe(hot)
	if d := p.observe(hot); d != Hold {
		t.Fatalf("post-break tick 2: %v, want hold (sustain reset)", d)
	}
	if d := p.observe(hot); d != ScaleUp {
		t.Fatalf("post-break tick 3: %v, want scale-up", d)
	}
}

// TestPolicyCooldownAndMax: after an action the policy holds for
// Cooldown ticks even under a sustained bottleneck, and never exceeds
// MaxReplicas.
func TestPolicyCooldownAndMax(t *testing.T) {
	p := testPolicy()
	hot := func(replicas int) Signal {
		return Signal{Current: 20 * time.Millisecond, Bottleneck: true, Replicas: replicas}
	}
	replicas := 0
	ups := 0
	for i := 0; i < 50; i++ {
		if p.observe(hot(replicas)) == ScaleUp {
			replicas++
			ups++
		}
	}
	if replicas != p.maxReplicas {
		t.Fatalf("converged at %d replicas, want max %d", replicas, p.maxReplicas)
	}
	// With sustain 3 + cooldown 2, actions are at least 3 ticks apart
	// (cooldown runs concurrently with re-sustain); 50 hot ticks at cap 3
	// must produce exactly 3 ups — cooldown prevented a spawn staircase.
	if ups != 3 {
		t.Fatalf("%d scale-ups, want exactly 3", ups)
	}

	// Immediately after the last action the policy is cooling down: even
	// a drastic load drop cannot trigger an instant retirement.
	idle := Signal{Current: time.Millisecond, Bottleneck: false, Replicas: replicas}
	if d := p.observe(idle); d != Hold {
		t.Fatalf("first idle tick after action: %v, want hold (cooldown)", d)
	}
}

// TestPolicyScaleDown: a drained stage retires replicas only after
// DownSustain quiet ticks, never while inbound pressure persists, and
// only when the projected period without the replica keeps headroom.
func TestPolicyScaleDown(t *testing.T) {
	p := testPolicy()
	idle := Signal{Current: 2 * time.Millisecond, Replicas: 2}
	pressured := idle
	pressured.Pressure = true

	for i := 0; i < 4; i++ {
		if d := p.observe(idle); d != Hold {
			t.Fatalf("quiet tick %d: %v, want hold", i+1, d)
		}
	}
	// Pressure on the 5th tick resets the sustain.
	if d := p.observe(pressured); d != Hold {
		t.Fatalf("pressured tick: %v, want hold", d)
	}
	for i := 0; i < 4; i++ {
		p.observe(idle)
	}
	if d := p.observe(idle); d != ScaleDown {
		t.Fatalf("5th quiet tick after reset: %v, want scale-down", d)
	}

	// Projection guard: with one replica left at 6ms, removing it
	// projects 12ms > 9ms band — the replica must stay.
	p2 := testPolicy()
	busy := Signal{Current: 6 * time.Millisecond, Replicas: 1}
	for i := 0; i < 20; i++ {
		if d := p2.observe(busy); d != Hold {
			t.Fatalf("projection-guarded tick %d: %v, want hold", i+1, d)
		}
	}

	// No replicas: scale-down can never fire.
	p3 := testPolicy()
	bare := Signal{Current: time.Millisecond, Replicas: 0}
	for i := 0; i < 20; i++ {
		if d := p3.observe(bare); d != Hold {
			t.Fatalf("bare-stage tick %d: %v, want hold", i+1, d)
		}
	}
}
