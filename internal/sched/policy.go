// The per-stage scaling policy: a pure hysteresis state machine. No
// clocks, no goroutines, no runtime handles — one observation in, one
// decision out — so the no-flap property is provable by unit test
// rather than by staring at a soak run.
package sched

import "time"

// Decision is one tick's scaling verdict for a stage.
type Decision int

const (
	// Hold means no actuation this tick.
	Hold Decision = iota
	// ScaleUp means spawn one replica behind the stage's inbound buffer.
	ScaleUp
	// ScaleDown means retire the stage's most recent replica.
	ScaleDown
)

// String returns the lowercase decision name.
func (d Decision) String() string {
	switch d {
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	}
	return "hold"
}

// Signal is one control tick's observation of a stage, as sensed from
// Runtime.Snapshot.
type Signal struct {
	// Current is the stage's effective current-STP: the parallel fold
	// over every live incarnation (zero when not yet measured).
	Current time.Duration
	// Bottleneck reports that the stage won this tick's bottleneck
	// election (max summary-STP plus inbound blocked-put pressure).
	Bottleneck bool
	// Replicas is the stage's live replica count (primary not counted).
	Replicas int
	// Pressure reports that producers accumulated fresh blocked-put time
	// on the stage's inbound buffers since the previous tick — the
	// backlog is still growing, so scaling down would be premature.
	Pressure bool
}

// policy is one stage's hysteresis state. The asymmetric design is the
// anti-flap machinery:
//
//   - Scale up only when the stage is the elected bottleneck AND its
//     effective period exceeds TargetPeriod, sustained for UpSustain
//     consecutive ticks.
//   - Scale down only when the *projected* period without one replica —
//     current × (n+1)/n, the inverse of the parallel fold for
//     homogeneous incarnations — would still sit below DownBand ×
//     TargetPeriod, with no inbound pressure, sustained for DownSustain
//     consecutive ticks.
//
// Between TargetPeriod and DownBand × TargetPeriod lies a dead band
// where neither condition can fire: a load oscillating inside it resets
// both sustain counters every crossing and the stage never scales. A
// Cooldown of held ticks after every actuation lets the fold's feedback
// propagate before the next decision, so one burst never triggers a
// spawn staircase.
type policy struct {
	target      time.Duration
	downBand    float64
	upSustain   int
	downSustain int
	cooldownFor int
	maxReplicas int

	upTicks   int
	downTicks int
	cooldown  int
}

// observe folds one tick's signal into the hysteresis state and returns
// the decision.
func (p *policy) observe(s Signal) Decision {
	up := s.Bottleneck && s.Current > p.target
	down := false
	if !up && s.Replicas > 0 && s.Current > 0 && !s.Pressure {
		projected := s.Current * time.Duration(s.Replicas+1) / time.Duration(s.Replicas)
		down = float64(projected) <= p.downBand*float64(p.target)
	}
	if up {
		p.upTicks++
	} else {
		p.upTicks = 0
	}
	if down {
		p.downTicks++
	} else {
		p.downTicks = 0
	}
	if p.cooldown > 0 {
		p.cooldown--
		return Hold
	}
	if p.upTicks >= p.upSustain && s.Replicas < p.maxReplicas {
		p.upTicks, p.downTicks, p.cooldown = 0, 0, p.cooldownFor
		return ScaleUp
	}
	if p.downTicks >= p.downSustain {
		p.upTicks, p.downTicks, p.cooldown = 0, 0, p.cooldownFor
		return ScaleDown
	}
	return Hold
}
