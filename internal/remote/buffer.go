package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vt"
)

// Prometheus family names for the wire-layer instruments. Client-side
// families carry a {buffer="<endpoint name>"} label; the server-side
// dedup family carries {channel="<hosted name>"}.
const (
	MetricRTT        = "aru_remote_rtt_seconds"
	MetricRedials    = "aru_remote_redials_total"
	MetricTimeouts   = "aru_remote_timeouts_total"
	MetricDegraded   = "aru_remote_degraded_total"
	MetricReattached = "aru_remote_reattached_total"
	MetricPutRetries = "aru_remote_put_retries_total"
	MetricDedupHits  = "aru_remote_dedup_hits_total"
)

// endpointCaps describes the wire-backed backend: get-latest discipline
// without windows or timestamped access (the protocol serves the
// freshest unseen item), and Remote — its storage lives on the server,
// summary-STP feedback crosses the wire, and the hosting runtime must
// use a real clock.
var endpointCaps = buffer.Caps{
	Discipline: buffer.Latest,
	TryGet:     true,
	Remote:     true,
}

func init() {
	buffer.Register("remote", buffer.Backend{
		New:  func(cfg buffer.Config) (buffer.Buffer, error) { return NewEndpoint(cfg) },
		Caps: endpointCaps,
	})
}

// Endpoint mounts a server-hosted channel (package remote's wire
// protocol) as a buffer.Buffer graph endpoint: the third backend of the
// registry, proving the buffer layer is pluggable beyond the two
// in-process disciplines. Each attached connection holds its own TCP
// session, mirroring Stampede's one-socket-per-attachment design.
//
// Summary-STP feedback flows through buffer.Feedback: every Get forwards
// the consuming thread's summary to the server (where it lands in the
// hosted channel's backwardSTP vector), and every Put reply delivers the
// channel's compressed summary, which the endpoint hands to the hosting
// runtime via ObserveBufferSummary — the §3.3.2 piggyback rules, over a
// real socket.
type Endpoint struct {
	cfg  buffer.Config
	name string // hosted channel name on the server

	// Live instruments (nil / zero when cfg.Metrics is nil). Wire
	// counters are shared across this endpoint's sessions; the registry
	// aggregates, so per-session granularity is deliberately not kept.
	mRTT *metrics.Histogram
	wire WireInstruments

	mu        sync.Mutex
	producers map[graph.ConnID]*Producer
	consumers map[graph.ConnID]*Consumer
	closed    bool
	sealed    bool
	inflight  int // wire puts currently outstanding
	puts      int64
	frees     int64
	drained   int64 // items served to a consumer after Seal

	mDrained *metrics.Counter
	mShed    *metrics.Counter
}

// NewEndpoint creates a wire-backed endpoint for the channel named
// cfg.RemoteName (default cfg.Name) on the server at cfg.Addr. No
// connection is made yet; attaches dial.
func NewEndpoint(cfg buffer.Config) (*Endpoint, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("remote: endpoint %q has no server address", cfg.Name)
	}
	name := cfg.RemoteName
	if name == "" {
		name = cfg.Name
	}
	e := &Endpoint{
		cfg:       cfg,
		name:      name,
		producers: make(map[graph.ConnID]*Producer),
		consumers: make(map[graph.ConnID]*Consumer),
	}
	if reg := cfg.Metrics; reg != nil {
		ls := cfg.MetricLabels()
		e.mRTT = reg.Histogram(MetricRTT, "Round-trip latency of remote puts.", nil, ls)
		e.wire = WireInstruments{
			Redials:    reg.Counter(MetricRedials, "Backoff redial cycles after wire faults.", ls),
			Timeouts:   reg.Counter(MetricTimeouts, "Remote calls lost to a deadline expiry.", ls),
			Degraded:   reg.Counter(MetricDegraded, "Operations that exhausted the retry budget (ErrDegraded).", ls),
			Reattached: reg.Counter(MetricReattached, "Successful redial+replay cycles (ErrReattached).", ls),
			PutRetries: reg.Counter(MetricPutRetries, "Puts re-sent with the idempotent-retry flag.", ls),
		}
		e.mDrained = reg.Counter(buffer.MetricDrained, "Items delivered to a consumer after the buffer was sealed for drain.", ls)
		e.mShed = reg.Counter(buffer.MetricShed, "Items discarded undelivered at shutdown (explicitly shed, not silently lost).", ls)
	}
	return e, nil
}

// Name returns the endpoint's local (graph) name.
func (e *Endpoint) Name() string { return e.cfg.Name }

// Node returns the endpoint's task-graph id.
func (e *Endpoint) Node() graph.NodeID { return e.cfg.Node }

// Caps reports the wire-backed backend's capabilities.
func (e *Endpoint) Caps() buffer.Caps { return endpointCaps }

// dialConfig translates the endpoint's buffer.RemoteTuning into the
// client layer's DialConfig for one attachment.
func (e *Endpoint) dialConfig(window int) DialConfig {
	t := e.cfg.Remote
	return DialConfig{
		Addr:        e.cfg.Addr,
		Channel:     e.name,
		CallTimeout: t.CallTimeout,
		GetTimeout:  t.GetTimeout,
		Backoff: Backoff{
			Base:   t.RetryBase,
			Cap:    t.RetryCap,
			Factor: t.RetryFactor,
			Jitter: t.RetryJitter,
		},
		MaxRetries:  t.MaxRetries,
		Clock:       e.cfg.Clock,
		Seed:        t.Seed,
		Window:      window,
		Instruments: e.wire,
	}
}

// AttachProducer dials a producer session to the hosted channel.
func (e *Endpoint) AttachProducer(conn graph.ConnID) error {
	p, err := DialProducerConfig(e.dialConfig(0))
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		p.Close()
		return buffer.ErrClosed
	}
	if _, dup := e.producers[conn]; dup {
		p.Close()
		return nil
	}
	e.producers[conn] = p
	return nil
}

// AttachConsumer dials a consumer session to the hosted channel. The
// wire protocol serves whole fresh items only, so window > 1 is
// rejected with ErrUnsupported.
func (e *Endpoint) AttachConsumer(conn graph.ConnID, window int) error {
	if window != 1 {
		return fmt.Errorf("%w: window width %d on wire-backed endpoint %q", buffer.ErrUnsupported, window, e.cfg.Name)
	}
	c, err := DialConsumerConfig(e.dialConfig(window))
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return buffer.ErrClosed
	}
	if _, dup := e.consumers[conn]; dup {
		c.Close()
		return nil
	}
	e.consumers[conn] = c
	return nil
}

// DetachConsumer closes the connection's consumer session; the server
// treats its guarantee as infinite from then on.
func (e *Endpoint) DetachConsumer(conn graph.ConnID) {
	e.mu.Lock()
	c := e.consumers[conn]
	delete(e.consumers, conn)
	e.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// producer returns the session for a producer connection.
func (e *Endpoint) producer(conn graph.ConnID) (*Producer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, buffer.ErrClosed
	}
	p, ok := e.producers[conn]
	if !ok {
		return nil, fmt.Errorf("%w: producer %d on %q", buffer.ErrNotAttached, conn, e.cfg.Name)
	}
	return p, nil
}

// consumer returns the session for a consumer connection.
func (e *Endpoint) consumer(conn graph.ConnID) (*Consumer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, buffer.ErrClosed
	}
	c, ok := e.consumers[conn]
	if !ok {
		return nil, fmt.Errorf("%w: consumer %d on %q", buffer.ErrNotAttached, conn, e.cfg.Name)
	}
	return c, nil
}

// wireErr maps wire-level failures to the shared buffer errors: a closed
// endpoint (or a server that went away mid-call) reports ErrClosed so
// the runtime translates it into a clean shutdown. ErrDegraded and
// ErrReattached already wrap their buffer-layer counterparts and pass
// through unchanged.
func (e *Endpoint) wireErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrClosed) {
		return buffer.ErrClosed
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return buffer.ErrClosed
	}
	return err
}

// Put sends an item over the wire. Payloads must be []byte (or nil): the
// endpoint refuses to guess an encoding for arbitrary values. The
// channel's summary-STP piggybacked on the reply is delivered to the
// hosting runtime through cfg.Feedback.
func (e *Endpoint) Put(conn graph.ConnID, it *buffer.Item) (time.Duration, error) {
	p, err := e.producer(conn)
	if err != nil {
		return 0, err
	}
	payload, ok := it.Payload.([]byte)
	if !ok && it.Payload != nil {
		return 0, fmt.Errorf("%w: remote put payload must be []byte, got %T", buffer.ErrUnsupported, it.Payload)
	}
	if err := e.beginPut(); err != nil {
		return 0, err
	}
	defer e.endPut()
	var start time.Duration
	if e.mRTT != nil {
		start = e.cfg.Clock.Now()
	}
	summary, err := p.Put(it.TS, payload, it.Size)
	if e.mRTT != nil {
		e.mRTT.Observe(e.cfg.Clock.Now() - start)
	}
	if err != nil && !errors.Is(err, ErrReattached) {
		return 0, e.wireErr(err)
	}
	e.mu.Lock()
	e.puts++
	e.mu.Unlock()
	if e.cfg.Feedback != nil {
		e.cfg.Feedback.ObserveBufferSummary(summary)
	}
	// err is nil or the informational ErrReattached (which wraps
	// buffer.ErrReattached): the put was applied either way. The item's
	// bytes are on the server now, so the local carrier goes back to the
	// pool — the wire backend never holds item pointers past the call.
	e.cfg.Pool.Recycle(it)
	return 0, err
}

// PutBatch sends items one request at a time: the wire protocol's unit
// of synchronization is the round trip, so there is no lock to amortize
// and the serial fallback is the native path.
func (e *Endpoint) PutBatch(conn graph.ConnID, items []*buffer.Item) (int, time.Duration, error) {
	return buffer.PutBatchSerial(e, conn, items)
}

// GetBatch serves one blocking get then drains non-blocking gets while
// the batch has room (the serial fallback).
func (e *Endpoint) GetBatch(conn graph.ConnID, dst []buffer.GetResult) (int, error) {
	return buffer.GetBatchSerial(e, conn, dst)
}

// Get blocks until the hosted channel serves a fresh item, forwarding the
// consuming thread's summary-STP with the request. Time spent inside the
// call is reported as blocked: under the required real clock it covers
// both the wire and the server-side wait for data.
func (e *Endpoint) Get(conn graph.ConnID) (buffer.GetResult, error) {
	c, err := e.consumer(conn)
	if err != nil {
		return buffer.GetResult{}, err
	}
	if e.Sealed() {
		// Sealed: local producers can no longer put, so a blocking wait
		// would hang on a flushed channel. Serve whatever is still fresh
		// without blocking; nothing fresh means the flush completed.
		it, ok, terr := c.TryGetLatest(e.consumerSummary(conn))
		if terr != nil && !errors.Is(terr, ErrReattached) {
			return buffer.GetResult{}, e.wireErr(terr)
		}
		if !ok {
			return buffer.GetResult{}, buffer.ErrClosed
		}
		e.noteDelivered(1)
		return e.result(it, 0), terr
	}
	start := e.cfg.Clock.Now()
	it, err := c.GetLatest(e.consumerSummary(conn))
	blocked := e.cfg.Clock.Now() - start
	if err != nil && !errors.Is(err, ErrReattached) {
		return buffer.GetResult{Blocked: blocked}, e.wireErr(err)
	}
	// err is nil or the informational ErrReattached: the item is valid.
	e.noteDelivered(1)
	return e.result(it, blocked), err
}

// TryGet is the non-blocking Get.
func (e *Endpoint) TryGet(conn graph.ConnID) (buffer.GetResult, bool, error) {
	c, err := e.consumer(conn)
	if err != nil {
		return buffer.GetResult{}, false, err
	}
	it, ok, err := c.TryGetLatest(e.consumerSummary(conn))
	if err != nil && !errors.Is(err, ErrReattached) {
		return buffer.GetResult{}, false, e.wireErr(err)
	}
	if !ok {
		if e.Sealed() {
			// Sealed with nothing fresh: the flush completed.
			return buffer.GetResult{}, false, buffer.ErrClosed
		}
		return buffer.GetResult{}, false, err // nil or informational
	}
	e.noteDelivered(1)
	return e.result(it, 0), true, err // nil or informational
}

// GetAt is unsupported: the wire protocol serves freshest-unseen only.
func (e *Endpoint) GetAt(conn graph.ConnID, ts vt.Timestamp) (buffer.GetResult, error) {
	return buffer.GetResult{}, fmt.Errorf("%w: GetAt on wire-backed endpoint %q", buffer.ErrUnsupported, e.cfg.Name)
}

// consumerSummary reads the consuming thread's summary-STP to piggyback
// on an outgoing get.
func (e *Endpoint) consumerSummary(conn graph.ConnID) core.STP {
	if e.cfg.Feedback == nil {
		return core.Unknown
	}
	return e.cfg.Feedback.ConsumerSummary(conn)
}

// result converts a wire item into the shared GetResult. Skipped stale
// items are known by timestamp only (their payloads stayed on the
// server); they carry no trace identity.
func (e *Endpoint) result(it Item, blocked time.Duration) buffer.GetResult {
	res := buffer.GetResult{
		Item:    buffer.Item{TS: it.TS, Payload: it.Payload, Size: it.Size},
		Blocked: blocked,
	}
	for _, ts := range it.SkippedTS {
		res.Skipped = append(res.Skipped, buffer.Item{TS: ts})
	}
	return res
}

// WouldBeDead reports false: the endpoint has no local knowledge of the
// server-side consumer guarantees.
func (e *Endpoint) WouldBeDead(ts vt.Timestamp) bool { return false }

// Close tears down every session. The hosted channel itself stays up —
// it belongs to the server, which may serve other processes.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	producers := e.producers
	consumers := e.consumers
	e.producers = make(map[graph.ConnID]*Producer)
	e.consumers = make(map[graph.ConnID]*Consumer)
	e.mu.Unlock()
	for _, p := range producers {
		p.Close()
	}
	for _, c := range consumers {
		c.Close()
	}
}

// Closed reports whether Close has been called.
func (e *Endpoint) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// beginPut admits a wire put: sealed endpoints reject it with
// ErrDraining, open ones count it in-flight so Drained waits for its
// round trip (including any redial+replay cycle) to complete.
func (e *Endpoint) beginPut() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return buffer.ErrClosed
	}
	if e.sealed {
		return fmt.Errorf("%w: put into sealed %q", buffer.ErrDraining, e.cfg.Name)
	}
	e.inflight++
	return nil
}

// endPut retires an in-flight wire put.
func (e *Endpoint) endPut() {
	e.mu.Lock()
	e.inflight--
	e.mu.Unlock()
}

// noteDelivered counts post-seal deliveries toward the drained total.
func (e *Endpoint) noteDelivered(n int) {
	e.mu.Lock()
	sealed := e.sealed
	if sealed {
		e.drained += int64(n)
	}
	e.mu.Unlock()
	if sealed && e.mDrained != nil {
		e.mDrained.Add(int64(n))
	}
}

// Seal flips the endpoint into drain mode: new puts are rejected with
// ErrDraining while gets keep serving whatever the hosted channel still
// holds. In-flight puts — including idempotent batch replays after a
// reconnect — run to completion; Drained waits for them.
func (e *Endpoint) Seal() {
	e.mu.Lock()
	e.sealed = true
	e.mu.Unlock()
}

// Sealed reports whether Seal has been called.
func (e *Endpoint) Sealed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealed
}

// Drained reports that the endpoint is sealed and every in-flight wire
// put has completed its round trip: nothing this process produced can
// still be in transit. Items already accepted by the server live there —
// the hosted channel outlives the endpoint by design — so server-side
// occupancy does not gate a local drain.
func (e *Endpoint) Drained() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealed && e.inflight == 0
}

// DrainStats returns the drain accounting: drained counts items served
// to a local consumer after Seal; shed is always 0 — the endpoint never
// discards items, their storage belongs to the server.
func (e *Endpoint) DrainStats() (drained, shed int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drained, 0
}

// Drain reports 0: buffered items live on the server, which reclaims
// them through its own collector.
func (e *Endpoint) Drain() int { return 0 }

// Occupancy queries the hosted channel's occupancy over a fresh
// connection; it reports zeros when the server is unreachable (e.g.
// after shutdown).
func (e *Endpoint) Occupancy() (items int, bytes int64) {
	items, bytes, err := Stats(e.cfg.Addr, e.name)
	if err != nil {
		return 0, 0
	}
	return items, bytes
}

// Stats returns the endpoint's local put count. Frees happen on the
// server and are not visible here; they read as 0.
func (e *Endpoint) Stats() (puts, frees int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.puts, e.frees
}
