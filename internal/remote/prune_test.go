package remote

import (
	"encoding/gob"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vt"
)

// dialRaw opens a bare protocol connection (no Reconnector) so tests
// can speak the wire format directly.
func dialRaw(t *testing.T, addr string) *conn {
	t.Helper()
	nc, err := dialTCP(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &conn{nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc), timeout: time.Second}
}

// waitDedupEntries polls until the hosted channel's lastPut map holds
// exactly n entries (detach runs on the server's connection goroutine,
// after the client's Close returns).
func waitDedupEntries(t *testing.T, h *hosted, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.dedupEntries() != n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d dedup entries (have %d)", n, h.dedupEntries())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDedupStatePrunedOnDetach is the lastPut-leak regression test: the
// per-producer dedup state must be reclaimed when the producer's last
// session detaches, so attach→put→detach cycles leave the map empty
// instead of growing it by one entry per producer forever.
func TestDedupStatePrunedOnDetach(t *testing.T) {
	s := newTestServer(t, nil)
	h, ok := s.lookup("frames")
	if !ok {
		t.Fatal("hosted channel missing")
	}

	for cycle := 1; cycle <= 5; cycle++ {
		prod, err := DialProducer(s.Addr(), "frames")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prod.Put(vt.Timestamp(cycle), []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
		if h.dedupEntries() != 1 {
			t.Fatalf("cycle %d: dedup entries = %d while attached, want 1", cycle, h.dedupEntries())
		}
		prod.Close()
		waitDedupEntries(t, h, 0)
	}
}

// TestDedupStateSurvivesReattach checks the refcount half of the prune:
// a producer that redials under the same token (the crash-recovery
// path) must NOT lose its dedup entry while any of its sessions remains
// attached — pruning only fires when the token's last session detaches.
func TestDedupStateSurvivesReattach(t *testing.T) {
	s := newTestServer(t, nil)
	h, _ := s.lookup("frames")

	prod, err := DialProducer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	if _, err := prod.Put(1, []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	waitDedupEntries(t, h, 1)

	// A second session attaches under the same token (what a reconnect
	// replay does), then detaches: the entry must survive because the
	// first session is still attached.
	c2 := dialRaw(t, s.Addr())
	token := h.anyToken(t)
	if _, err := c2.call(&Request{Op: OpAttachProducer, Channel: "frames", Token: token}, time.Second); err != nil {
		t.Fatal(err)
	}
	c2.close()
	time.Sleep(20 * time.Millisecond) // let the server process the detach
	if h.dedupEntries() != 1 {
		t.Fatalf("dedup entry pruned while a session is still attached (entries = %d)", h.dedupEntries())
	}
}

// anyToken returns the single registered producer token (test helper).
func (h *hosted) anyToken(t *testing.T) uint64 {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	for tok := range h.tokens {
		return tok
	}
	t.Fatal("no producer token registered")
	return 0
}

// TestServerDedupHitCounter checks ServerConfig.Metrics wiring: a
// replayed put (same token, same timestamp, Retry set) is answered from
// the dedup state and counted on aru_remote_dedup_hits_total.
func TestServerDedupHitCounter(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Metrics: reg}, "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := dialRaw(t, s.Addr())
	defer c.close()
	token := newToken()
	if _, err := c.call(&Request{Op: OpAttachProducer, Channel: "frames", Token: token}, time.Second); err != nil {
		t.Fatal(err)
	}
	put := &Request{Op: OpPut, TS: 7, Payload: []byte("x"), Size: 1, Token: token}
	if _, err := c.call(put, time.Second); err != nil {
		t.Fatal(err)
	}
	// Replay the identical put as a retry: the server must answer OK
	// without re-applying, and count the dedup hit.
	put.Retry = true
	if _, err := c.call(put, time.Second); err != nil {
		t.Fatalf("replayed put rejected: %v", err)
	}
	hits := reg.Counter(MetricDedupHits, "", metrics.Labels{"channel": "frames"})
	if hits.Value() != 1 {
		t.Fatalf("dedup hits = %d, want 1", hits.Value())
	}
}
