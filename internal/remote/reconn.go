package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/rand"
)

// Fault-tolerance defaults. Chosen so a transient blip (a dropped
// connection, one lost response) heals in well under a second while a
// true outage degrades within a few seconds instead of wedging. The
// redial schedule defaults live in package backoff (DefaultBase and
// friends), shared with the thread supervisor's restart schedule.
const (
	defaultCallTimeout = 5 * time.Second
	defaultMaxRetries  = 3
)

// Backoff parameterizes capped exponential redial backoff with
// symmetric jitter: the n-th delay is Base·Factorⁿ capped at Cap, then
// scaled by 1 + Jitter·(2u−1) for a unit sample u. It is the shared
// backoff.Backoff schedule; Delay is a pure function, so fake-clock
// tests pin the exact schedule a seed produces.
type Backoff = backoff.Backoff

// WireInstruments carries the optional live instruments a Reconnector
// maintains. All handles are nil-safe: the zero value disables
// instrumentation entirely, and each enabled event costs one atomic op.
type WireInstruments struct {
	// Redials counts backoff-then-redial cycles entered after a wire
	// fault (or failed dial attempt).
	Redials *metrics.Counter
	// Timeouts counts calls lost to a read/write deadline expiry.
	Timeouts *metrics.Counter
	// Degraded counts operations that exhausted the retry budget and
	// reported ErrDegraded.
	Degraded *metrics.Counter
	// Reattached counts successful redial+replay cycles (the
	// ErrReattached events surfaced to callers).
	Reattached *metrics.Counter
	// PutRetries counts puts re-sent with the Retry dedup flag after a
	// transport fault left the original in doubt.
	PutRetries *metrics.Counter
}

// DialConfig configures a fault-tolerant client connection.
type DialConfig struct {
	// Addr is the server address; Channel names the hosted channel.
	Addr    string
	Channel string
	// CallTimeout bounds each bounded round trip (default 5s).
	CallTimeout time.Duration
	// GetTimeout bounds a blocking get's wait for its reply; zero waits
	// forever. See Consumer.GetLatest.
	GetTimeout time.Duration
	// Backoff shapes the redial schedule.
	Backoff Backoff
	// MaxRetries is the per-operation redial/retry budget before the
	// operation reports ErrDegraded (default 3; negative: no retries).
	MaxRetries int
	// Clock times the backoff sleeps (nil: real time). Fake-clock tests
	// pin the exact redial schedule through it.
	Clock clock.Clock
	// Dialer opens the transport (nil: TCP). Fault-injection tests wrap
	// it.
	Dialer Dialer
	// Seed fixes the jitter randomness; zero falls back to the ARU_SEED
	// environment override and then to a process-wide seeded sub-stream,
	// so redial schedules stay reproducible for differential tests.
	Seed int64
	// Window is the consumer sliding-window width replayed on every
	// (re-)attach; zero means 1.
	Window int
	// Instruments are the optional live metrics this connection
	// maintains; the zero value disables them.
	Instruments WireInstruments
}

// withDefaults normalizes the config.
func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = defaultCallTimeout
	}
	cfg.Backoff = cfg.Backoff.WithDefaults()
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Dialer == nil {
		cfg.Dialer = dialTCP
	}
	if cfg.Seed == 0 {
		cfg.Seed = defaultSeed()
	}
	return cfg
}

// procRand is the package's seeded randomness source: one xorshift64
// stream per purpose (producer tokens, default redial seeds), split from
// ARU_SEED when set so differential tests replay byte-identical token
// and jitter draws, and from wall time (once, at first use) otherwise —
// producer tokens identify distinct processes to the dedup layer, so the
// unseeded default must still differ across processes. Replacing the
// package-global math/rand source also takes token minting off the
// process-wide rand lock.
var procRand = struct {
	sync.Mutex
	tokens *rand.Rand
	seeds  *rand.Rand
}{}

// procStreamsLocked lazily builds the process streams.
func procStreamsLocked() (*rand.Rand, *rand.Rand) {
	if procRand.tokens == nil {
		seed := uint64(rand.EnvSeed("ARU_SEED", 0))
		if seed == 0 {
			seed = uint64(time.Now().UnixNano())
		}
		procRand.tokens = rand.New(rand.Split(seed, 0x70_6b))
		procRand.seeds = rand.New(rand.Split(seed, 0x6a_69))
	}
	return procRand.tokens, procRand.seeds
}

// newToken returns a nonzero producer identity for idempotent puts.
func newToken() uint64 {
	procRand.Lock()
	defer procRand.Unlock()
	tokens, _ := procStreamsLocked()
	return tokens.Uint64() | 1
}

// defaultSeed draws a nonzero per-connection jitter seed from the
// process stream: distinct per Reconnector, reproducible under ARU_SEED.
func defaultSeed() int64 {
	procRand.Lock()
	defer procRand.Unlock()
	_, seeds := procStreamsLocked()
	for {
		if s := int64(seeds.Uint64()); s != 0 {
			return s
		}
	}
}

// Reconnector owns one logical attachment to a hosted channel and keeps
// it alive across wire faults: it redials with capped exponential
// backoff plus jitter, replays the attachment (channel name, window
// width, producer token) on every new connection, and retries the
// failed call. Application-level refusals from the server and clean
// ErrClosed shutdowns are terminal — only transport failures retry.
type Reconnector struct {
	cfg    DialConfig
	attach func(*conn) error

	// done is closed by Close so backoff sleeps on a real clock abort
	// promptly instead of running out their delay.
	done chan struct{}

	mu         sync.Mutex
	c          *conn
	rng        *rand.Rand
	closed     bool
	ever       bool // a connection has succeeded at least once
	pending    bool // a redial happened since the last successful call
	reattaches int64
}

// newReconnector builds a reconnector; no connection is made yet.
func newReconnector(cfg DialConfig, attach func(*conn) error) *Reconnector {
	cfg = cfg.withDefaults()
	return &Reconnector{
		cfg:    cfg,
		attach: attach,
		rng:    rand.New(uint64(cfg.Seed)),
		done:   make(chan struct{}),
	}
}

// isClosed reports whether Close was called.
func (r *Reconnector) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Reattaches reports how many redial+replay cycles have succeeded.
func (r *Reconnector) Reattaches() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reattaches
}

// Close tears the connection down and makes every subsequent (and
// in-flight) operation report ErrClosed promptly — no backoff sleeps
// run once closed.
func (r *Reconnector) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	c := r.c
	r.c = nil
	r.mu.Unlock()
	close(r.done)
	if c != nil {
		c.close()
	}
}

// ensure returns the live connection, dialing and replaying the
// attachment if none exists. Dial failures are wire-tagged (retryable);
// attach refusals pass through as the server reported them.
func (r *Reconnector) ensure() (*conn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.c != nil {
		c := r.c
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()

	nc, err := r.cfg.Dialer(r.cfg.Addr, r.cfg.CallTimeout)
	if err != nil {
		return nil, wireFail("dial "+r.cfg.Addr, err)
	}
	c := &conn{nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc), timeout: r.cfg.CallTimeout}
	if err := r.attach(c); err != nil {
		c.close()
		return nil, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.close()
		return nil, ErrClosed
	}
	r.c = c
	if r.ever {
		r.pending = true
		r.reattaches++
		r.cfg.Instruments.Reattached.Inc()
	}
	r.ever = true
	r.mu.Unlock()
	return c, nil
}

// invalidate discards a connection observed failing.
func (r *Reconnector) invalidate(c *conn) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	c.close()
}

// sleepBackoff sleeps the n-th redial delay on the configured clock. On
// a real clock the sleep aborts as soon as Close fires; fake clocks are
// test-driven and release their sleepers explicitly.
func (r *Reconnector) sleepBackoff(n int) {
	r.cfg.Instruments.Redials.Inc()
	r.mu.Lock()
	u := r.rng.Float64()
	r.mu.Unlock()
	d := r.cfg.Backoff.Delay(n, u)
	if _, isReal := r.cfg.Clock.(*clock.Real); isReal {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.done:
		}
		return
	}
	r.cfg.Clock.Sleep(d)
}

// noteWireErr records the instrument-visible class of a wire failure.
func (r *Reconnector) noteWireErr(err error) {
	if errors.Is(err, ErrTimeout) {
		r.cfg.Instruments.Timeouts.Inc()
	}
}

// connect performs the initial dial+attach with the standard retry
// budget, so a cold start rides through a briefly unreachable server.
func (r *Reconnector) connect() error {
	attempts := 0
	for {
		_, err := r.ensure()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrClosed) || !isWire(err) {
			return err
		}
		r.noteWireErr(err)
		if attempts++; attempts > r.cfg.MaxRetries {
			r.cfg.Instruments.Degraded.Inc()
			return fmt.Errorf("%w (last: %v)", ErrDegraded, err)
		}
		r.sleepBackoff(attempts - 1)
	}
}

// call performs one fault-tolerant round trip: on a transport failure
// it discards the connection, redials with backoff, replays the
// attachment, and retries — marking retried puts so the server can
// deduplicate. reattached is true when the call succeeded on a
// connection established after a fault since the previous success.
func (r *Reconnector) call(req *Request, readTimeout time.Duration) (resp Response, reattached bool, err error) {
	attempts := 0
	for {
		c, err := r.ensure()
		if err != nil {
			if errors.Is(err, ErrClosed) || !isWire(err) {
				return Response{}, false, err
			}
			r.noteWireErr(err)
			if attempts++; attempts > r.cfg.MaxRetries {
				r.cfg.Instruments.Degraded.Inc()
				return Response{}, false, fmt.Errorf("%w (last: %v)", ErrDegraded, err)
			}
			if r.isClosed() {
				return Response{}, false, ErrClosed
			}
			r.sleepBackoff(attempts - 1)
			continue
		}

		resp, err := c.call(req, readTimeout)
		if err == nil || !isWire(err) {
			if err != nil && errors.Is(err, ErrClosed) {
				return resp, false, err
			}
			r.mu.Lock()
			re := r.pending
			if err == nil {
				r.pending = false
			}
			r.mu.Unlock()
			return resp, re && err == nil, err
		}

		// Transport failure mid-call: the connection is poisoned. A put
		// may or may not have been applied — mark the retry so the
		// server's (token, timestamp) dedup makes it idempotent.
		r.noteWireErr(err)
		r.invalidate(c)
		if req.Op == OpPut {
			if !req.Retry {
				r.cfg.Instruments.PutRetries.Inc()
			}
			req.Retry = true
		}
		if attempts++; attempts > r.cfg.MaxRetries {
			r.cfg.Instruments.Degraded.Inc()
			return Response{}, false, fmt.Errorf("%w (last: %v)", ErrDegraded, err)
		}
		if r.isClosed() {
			return Response{}, false, ErrClosed
		}
		r.sleepBackoff(attempts - 1)
	}
}
