package remote

// Chaos suite: drives a real runtime pipeline (camera → remote channel →
// display, ARU feedback on) across scripted network faults and asserts
// the fault-tolerance contract end to end:
//
//   - the pipeline never deadlocks (shutdown completes under a timeout),
//   - no put is double-inserted (acked ≤ server puts ≤ attempts),
//   - consumption stays monotone (get-latest discipline survives replay),
//   - the controller reports the endpoint degraded while feedback is
//     stale and healthy again after the wire heals,
//   - throughput resumes after partition, slow wire, and server restart.
//
// Every script is seeded (FAULTNET_SEED pins it in CI), so a failure
// reproduces.

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/runtime"
	"repro/internal/vt"
)

// chaosCounters aggregates what the thread bodies observed; all fields
// are read by the test goroutine while the pipeline runs.
type chaosCounters struct {
	attempts     atomic.Int64 // puts tried
	acked        atomic.Int64 // puts acknowledged (incl. after reattach)
	degradedPuts atomic.Int64 // puts that exhausted the retry budget
	consumed     atomic.Int64 // items displayed
	degradedGets atomic.Int64 // gets that exhausted the retry budget
	reattaches   atomic.Int64 // operations that succeeded via reattach
	orderBreaks  atomic.Int64 // timestamp regressions seen by the display
}

// chaosPipeline is one assembled camera → frames → display application
// over a wire-backed channel.
type chaosPipeline struct {
	rt       *runtime.Runtime
	ch       *runtime.ChannelRef
	cam, dis *runtime.Thread
	ctr      *chaosCounters
}

// buildChaosPipeline wires the two-thread pipeline against the server at
// addr with tight, deterministic fault tolerance: millisecond backoff, a
// generous retry budget (ops should ride out the scripted faults), and a
// short staleness TTL so degradation is observable within the test.
func buildChaosPipeline(t *testing.T, addr string) *chaosPipeline {
	t.Helper()
	rt := runtime.New(runtime.Options{ARU: core.PolicyMin()})
	ch, err := rt.AddRemoteChannel("frames", 0, addr, runtime.WithRemoteTuning(buffer.RemoteTuning{
		CallTimeout: 2 * time.Second,
		GetTimeout:  500 * time.Millisecond,
		RetryBase:   5 * time.Millisecond,
		RetryCap:    40 * time.Millisecond,
		RetryJitter: -1, // deterministic schedule
		MaxRetries:  40,
		Seed:        1719,
		StaleTTL:    120 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctr := &chaosCounters{}

	var ts atomic.Int64
	cam := rt.MustAddThread("camera", 0, func(ctx *runtime.Ctx) error {
		out := ctx.Outs()[0]
		for !ctx.Stopped() {
			n := vt.Timestamp(ts.Add(1))
			ctr.attempts.Add(1)
			err := ctx.Put(out, n, []byte("frame"), 64)
			switch {
			case err == nil:
				ctr.acked.Add(1)
			case errors.Is(err, runtime.ErrReattached):
				ctr.acked.Add(1)
				ctr.reattaches.Add(1)
			case errors.Is(err, runtime.ErrShutdown):
				return nil
			case errors.Is(err, runtime.ErrDegraded):
				// The item was shed; keep producing.
				ctr.degradedPuts.Add(1)
			default:
				return err
			}
			ctx.Compute(2 * time.Millisecond)
			ctx.Sync()
		}
		return nil
	})
	cam.MustOutput(ch)

	var last atomic.Int64
	dis := rt.MustAddThread("display", 0, func(ctx *runtime.Ctx) error {
		in := ctx.Ins()[0]
		for !ctx.Stopped() {
			msg, err := ctx.Get(in)
			switch {
			case err == nil:
			case errors.Is(err, runtime.ErrReattached):
				ctr.reattaches.Add(1)
			case errors.Is(err, runtime.ErrShutdown):
				return nil
			case errors.Is(err, runtime.ErrDegraded):
				ctr.degradedGets.Add(1)
				ctx.Sync()
				continue
			default:
				return err
			}
			if int64(msg.TS) < last.Load() {
				ctr.orderBreaks.Add(1)
			}
			last.Store(int64(msg.TS))
			ctr.consumed.Add(1)
			ctx.Compute(3 * time.Millisecond)
			ctx.Sync()
		}
		return nil
	})
	dis.MustInput(ch)

	return &chaosPipeline{rt: rt, ch: ch, cam: cam, dis: dis, ctr: ctr}
}

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stopAndWait shuts the pipeline down under a deadlock timeout.
func stopAndWait(t *testing.T, rt *runtime.Runtime) {
	t.Helper()
	rt.Stop()
	done := make(chan error, 1)
	go func() { done <- rt.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pipeline error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("pipeline deadlocked on shutdown")
	}
}

// assertNoDuplicates checks the put-count oracle against a server that
// survived the whole scenario: every acknowledged put was applied
// exactly once, and nothing was applied that was never attempted.
func assertNoDuplicates(t *testing.T, s *Server, ctr *chaosCounters) {
	t.Helper()
	puts, _ := s.Channel("frames").Stats()
	acked, attempts := ctr.acked.Load(), ctr.attempts.Load()
	if puts < acked || puts > attempts {
		t.Fatalf("server puts = %d outside [acked %d, attempts %d]: lost or duplicated inserts", puts, acked, attempts)
	}
	if ctr.orderBreaks.Load() != 0 {
		t.Fatalf("display saw %d timestamp regressions", ctr.orderBreaks.Load())
	}
}

func newChaosServer(t *testing.T, ctl *faultnet.Control, addr string) *Server {
	t.Helper()
	ln, err := ctl.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{Listener: ln}, "frames")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosPartitionMidStream partitions the wire mid-stream: every
// live connection is severed and redials are cut off. The controller
// must report the endpoint degraded once feedback passes the staleness
// TTL; after healing, the pipeline re-attaches, resumes, and reports
// healthy again.
func TestChaosPartitionMidStream(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	srv := newChaosServer(t, ctl, "127.0.0.1:0")
	defer srv.Close()
	p := buildChaosPipeline(t, srv.Addr())
	if err := p.rt.Start(); err != nil {
		t.Fatal(err)
	}

	// Warm up until feedback flows end to end: the camera's target
	// period derives from the remote summary.
	waitUntil(t, 10*time.Second, "warmup traffic", func() bool {
		return p.ctr.acked.Load() >= 20 && p.ctr.consumed.Load() >= 5
	})
	waitUntil(t, 10*time.Second, "feedback to flow", func() bool {
		return p.rt.Controller().TargetPeriod(p.cam.ID()).Known()
	})
	if p.rt.Controller().Degraded(p.ch.ID()) {
		t.Fatal("healthy pipeline must not be degraded")
	}

	ctl.Partition()
	// Feedback stops flowing; past the 120ms staleness TTL the
	// controller must notice.
	waitUntil(t, 5*time.Second, "degraded state under partition", func() bool {
		return p.rt.Controller().Degraded(p.ch.ID())
	})
	time.Sleep(200 * time.Millisecond) // let operations fail and retry under the partition
	ackedAtHeal := p.ctr.acked.Load()
	consumedAtHeal := p.ctr.consumed.Load()
	ctl.Heal()

	// The pipeline must resume and the controller recover.
	waitUntil(t, 10*time.Second, "production to resume", func() bool {
		return p.ctr.acked.Load() >= ackedAtHeal+10
	})
	waitUntil(t, 10*time.Second, "consumption to resume", func() bool {
		return p.ctr.consumed.Load() >= consumedAtHeal+3
	})
	waitUntil(t, 10*time.Second, "healthy state after heal", func() bool {
		return !p.rt.Controller().Degraded(p.ch.ID())
	})

	stopAndWait(t, p.rt)
	assertNoDuplicates(t, srv, p.ctr)
	if p.ctr.reattaches.Load() == 0 {
		t.Fatal("partition healed without a single reattach: the fault never bit")
	}
}

// TestChaosSlowWireAndSever scripts a slow wire (scripted read delays
// with jitter) and one mid-stream severed connection. The pipeline must
// absorb the latency without faults and ride out the sever with a
// reattach; ordering and the no-duplicate oracle hold throughout.
func TestChaosSlowWireAndSever(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	srv := newChaosServer(t, ctl, "127.0.0.1:0")
	defer srv.Close()
	p := buildChaosPipeline(t, srv.Addr())
	if err := p.rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "warmup traffic", func() bool {
		return p.ctr.acked.Load() >= 20 && p.ctr.consumed.Load() >= 5
	})

	// Slow every server-side read by 10ms ± 3ms jitter for a while.
	ctl.SetDelays(10*time.Millisecond, 0, 3*time.Millisecond)
	time.Sleep(250 * time.Millisecond)

	// Sever whichever connection reads next, mid-stream.
	ctl.DropReadAfter(0)
	time.Sleep(250 * time.Millisecond)
	ctl.SetDelays(0, 0, 0)

	acked := p.ctr.acked.Load()
	waitUntil(t, 10*time.Second, "throughput after heal", func() bool {
		return p.ctr.acked.Load() >= acked+20
	})

	stopAndWait(t, p.rt)
	assertNoDuplicates(t, srv, p.ctr)
	if ctl.Injected() == 0 {
		t.Fatal("no fault was injected; the scenario proved nothing")
	}
	if p.ctr.reattaches.Load() == 0 {
		t.Fatal("severed connection never reattached")
	}
}

// TestChaosServerRestart kills the server mid-stream (wires severed
// first, so clients observe transport faults rather than a clean
// shutdown) and brings a fresh one up on the same address. Clients must
// redial, replay their attachments against the new server, and resume.
func TestChaosServerRestart(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	srv := newChaosServer(t, ctl, "127.0.0.1:0")
	addr := srv.Addr()
	p := buildChaosPipeline(t, addr)
	if err := p.rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "warmup traffic", func() bool {
		return p.ctr.acked.Load() >= 20 && p.ctr.consumed.Load() >= 5
	})

	// Sever abruptly, then take the server down. Without the partition
	// the server's shutdown would answer in-flight calls with a clean
	// "closed" — a terminal signal; a crash must look like a crash.
	ctl.Partition()
	srv.Close()
	time.Sleep(50 * time.Millisecond)
	ctl.Heal()

	// A fresh server on the same address: hosted state is empty, client
	// attachments are replayed from the client side.
	var srv2 *Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := ctl.Listen(addr)
		if err == nil {
			if srv2, err = NewServer(ServerConfig{Listener: ln}, "frames"); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	ackedAtRestart := p.ctr.acked.Load()
	consumedAtRestart := p.ctr.consumed.Load()
	waitUntil(t, 15*time.Second, "production against the new server", func() bool {
		return p.ctr.acked.Load() >= ackedAtRestart+10
	})
	waitUntil(t, 15*time.Second, "consumption against the new server", func() bool {
		return p.ctr.consumed.Load() >= consumedAtRestart+3
	})

	stopAndWait(t, p.rt)
	if p.ctr.orderBreaks.Load() != 0 {
		t.Fatalf("display saw %d timestamp regressions across the restart", p.ctr.orderBreaks.Load())
	}
	if puts, _ := srv2.Channel("frames").Stats(); puts == 0 {
		t.Fatal("new server never received a put")
	}
	if p.ctr.reattaches.Load() == 0 {
		t.Fatal("restart survived without a reattach: the fault never bit")
	}
}

var _ net.Listener = (*faultnet.Listener)(nil)
