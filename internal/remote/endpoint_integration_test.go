// Integration test for the wire-backed buffer backend: a full runtime
// application whose only buffer is a server-hosted channel mounted
// through the "remote" backend registration. Exercised under -race in
// CI, this covers the unified Ctx.Put/Ctx.Get dispatch crossing a real
// TCP socket and the §3.3.2 feedback rules operating over the wire:
// the display's summary-STP travels with each get request, the server
// compresses it into the hosted channel's summary, each put reply
// carries that summary back, and the local controller throttles the
// camera with it.
package remote_test

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/runtime"
	"repro/internal/vt"
)

func TestRuntimeOverWireBackedEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock integration test")
	}
	srv, err := remote.NewServer(remote.ServerConfig{Addr: "127.0.0.1:0", Compressor: core.Min}, "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rt := runtime.New(runtime.Options{Clock: clock.NewReal(), ARU: core.PolicyMin()})
	ch, err := rt.AddRemoteChannel("frames", 0, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Caps().Remote {
		t.Fatalf("remote endpoint caps = %+v, want Remote", ch.Caps())
	}

	const displayPeriod = 15 * time.Millisecond
	camera := rt.MustAddThread("camera", 0, func(ctx *runtime.Ctx) error {
		out := ctx.Outs()[0]
		for ts := vt.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(2 * time.Millisecond) // natural period 2ms
			if err := ctx.Put(out, ts, []byte("frame"), 4<<10); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	display := rt.MustAddThread("display", 0, func(ctx *runtime.Ctx) error {
		in := ctx.Ins()[0]
		for {
			if _, err := ctx.Get(in); err != nil {
				return err
			}
			ctx.Compute(displayPeriod)
			ctx.Sync()
		}
	})
	camera.MustOutput(ch)
	display.MustInput(ch)

	if err := rt.RunFor(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Frames crossed the wire.
	puts, _ := rt.Buffer(ch).Stats()
	if puts == 0 {
		t.Fatal("no puts reached the wire-backed endpoint")
	}

	// The camera's target period converged toward the display's
	// sustainable period — feedback that can only have arrived over TCP.
	target := rt.Controller().TargetPeriod(camera.ID())
	if !target.Known() {
		t.Fatal("camera target period still unknown: no summary-STP crossed the wire")
	}
	if target.Duration() < displayPeriod/2 {
		t.Fatalf("camera target period %v, want ≥ %v (throttled by remote feedback)",
			target.Duration(), displayPeriod/2)
	}
}
