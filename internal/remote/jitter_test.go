package remote

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/rand"
)

// redialSchedule drives one reconnector with an always-failing dialer on
// a manual clock, releasing each backoff sleep by exactly the expected
// delay, and returns the dial instants it observed.
func redialSchedule(t *testing.T, cfg DialConfig, delays []time.Duration) []time.Duration {
	t.Helper()
	clk := clock.NewManual()
	var mu sync.Mutex
	var attempts []time.Duration
	cfg.Clock = clk
	cfg.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		attempts = append(attempts, clk.Now())
		mu.Unlock()
		return nil, errors.New("connection refused")
	}
	r := newReconnector(cfg, func(c *conn) error { return nil })
	defer r.Close()

	done := make(chan error, 1)
	go func() { done <- r.connect() }()
	for _, d := range delays {
		waitSleepers(t, clk, 1)
		clk.Advance(d)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("connect = %v, want ErrDegraded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("connect never exhausted its retry budget")
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]time.Duration(nil), attempts...)
}

// TestRedialJitterSeededPinned pins the jittered redial schedule a fixed
// DialConfig.Seed produces: the reconnector's jitter stream is the
// shared xorshift64 generator seeded directly from cfg.Seed, so the
// exact delays are derivable outside the wire layer, and two
// reconnectors with the same seed must replay byte-identical schedules —
// the differential-test property the old wall-time default seed broke.
func TestRedialJitterSeededPinned(t *testing.T) {
	cfg := DialConfig{
		Addr:    "test:0",
		Channel: "frames",
		Backoff: Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.2},
		Seed:    1719,
	}
	// Derive the expected jittered delays from the same stream.
	rng := rand.New(uint64(cfg.Seed))
	var delays []time.Duration
	for n := 0; n < defaultMaxRetries; n++ {
		delays = append(delays, cfg.Backoff.Delay(n, rng.Float64()))
	}
	want := []time.Duration{0}
	for i, d := range delays {
		want = append(want, want[i]+d)
	}

	first := redialSchedule(t, cfg, delays)
	if len(first) != len(want) {
		t.Fatalf("attempts = %v, want %v", first, want)
	}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("attempt %d at %v, want %v (schedule %v)", i, first[i], w, first)
		}
	}

	// A second reconnector with the same seed replays the identical
	// schedule: the jitter source is per-connection state, not a shared
	// process-global stream.
	second := redialSchedule(t, cfg, delays)
	if len(second) != len(first) {
		t.Fatalf("replay diverged: %v vs %v", second, first)
	}
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("replay attempt %d at %v, first run %v", i, second[i], first[i])
		}
	}
}

// TestDefaultSeedsAndTokens covers the unseeded paths: zero-seed configs
// draw distinct nonzero jitter seeds from the process stream (no two
// connections share a schedule by accident), and producer tokens are
// nonzero, odd-bit-tagged, and distinct.
func TestDefaultSeedsAndTokens(t *testing.T) {
	s1, s2 := defaultSeed(), defaultSeed()
	if s1 == 0 || s2 == 0 || s1 == s2 {
		t.Fatalf("default seeds = %d, %d: want distinct nonzero", s1, s2)
	}
	if cfg := (DialConfig{}).withDefaults(); cfg.Seed == 0 {
		t.Fatal("withDefaults left a zero jitter seed")
	}
	t1, t2 := newToken(), newToken()
	if t1&1 == 0 || t2&1 == 0 {
		t.Fatalf("tokens %d, %d missing the nonzero tag bit", t1, t2)
	}
	if t1 == t2 {
		t.Fatalf("consecutive tokens collided: %d", t1)
	}
}
