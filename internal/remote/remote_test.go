package remote

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vt"
)

func newTestServer(t *testing.T, comp core.Compressor, names ...string) *Server {
	t.Helper()
	if len(names) == 0 {
		names = []string{"frames"}
	}
	s, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Compressor: comp}, names...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Error("no channels must fail")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0"}, "a", "a"); err == nil {
		t.Error("duplicate channels must fail")
	}
	if _, err := NewServer(ServerConfig{Addr: "256.0.0.1:bad"}, "a"); err == nil {
		t.Error("bad address must fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	prod, err := DialProducer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := DialConsumer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	for ts := vt.Timestamp(1); ts <= 3; ts++ {
		if _, err := prod.Put(ts, []byte(fmt.Sprintf("frame-%d", ts)), 0); err != nil {
			t.Fatal(err)
		}
	}
	it, err := cons.GetLatest(core.Unknown)
	if err != nil {
		t.Fatal(err)
	}
	if it.TS != 3 || string(it.Payload) != "frame-3" {
		t.Fatalf("item = %+v", it)
	}
	if len(it.SkippedTS) != 2 {
		t.Fatalf("skipped = %v", it.SkippedTS)
	}
	if it.Size != int64(len("frame-3")) {
		t.Fatalf("size = %d", it.Size)
	}
}

func TestGetLatestBlocksAcrossTheWire(t *testing.T) {
	s := newTestServer(t, nil)
	cons, err := DialConsumer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	got := make(chan Item, 1)
	go func() {
		it, err := cons.GetLatest(core.Unknown)
		if err != nil {
			return
		}
		got <- it
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("GetLatest returned before any put")
	default:
	}

	prod, err := DialProducer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	if _, err := prod.Put(7, []byte("x"), 10); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-got:
		if it.TS != 7 {
			t.Fatalf("ts = %v", it.TS)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote GetLatest never woke")
	}
}

func TestTryGetLatest(t *testing.T) {
	s := newTestServer(t, nil)
	cons, _ := DialConsumer(s.Addr(), "frames")
	defer cons.Close()
	if _, ok, err := cons.TryGetLatest(core.Unknown); err != nil || ok {
		t.Fatalf("empty TryGetLatest = ok=%v err=%v", ok, err)
	}
	prod, _ := DialProducer(s.Addr(), "frames")
	defer prod.Close()
	prod.Put(1, []byte("a"), 0)
	it, ok, err := cons.TryGetLatest(core.Unknown)
	if err != nil || !ok || it.TS != 1 {
		t.Fatalf("TryGetLatest = %+v ok=%v err=%v", it, ok, err)
	}
}

func TestSTPPiggybackOverTheWire(t *testing.T) {
	s := newTestServer(t, core.Min)
	prod, _ := DialProducer(s.Addr(), "frames")
	defer prod.Close()
	consA, _ := DialConsumer(s.Addr(), "frames")
	defer consA.Close()
	consB, _ := DialConsumer(s.Addr(), "frames")
	defer consB.Close()

	// Before any consumer feedback, puts see Unknown.
	sum, err := prod.Put(1, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Known() {
		t.Fatalf("summary before feedback = %v", sum)
	}

	// Consumers report 139ms and 337ms with their gets; the channel
	// compresses with min.
	if _, err := consA.GetLatest(core.STP(337 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := consB.GetLatest(core.STP(139 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	sum, err = prod.Put(2, []byte("y"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum != core.STP(139*time.Millisecond) {
		t.Fatalf("piggybacked summary = %v, want 139ms (min)", sum)
	}
	if prod.Summary() != sum {
		t.Fatal("Producer.Summary must cache the last piggyback")
	}
}

func TestSTPPiggybackMaxOperator(t *testing.T) {
	s := newTestServer(t, core.Max)
	prod, _ := DialProducer(s.Addr(), "frames")
	defer prod.Close()
	consA, _ := DialConsumer(s.Addr(), "frames")
	defer consA.Close()
	consB, _ := DialConsumer(s.Addr(), "frames")
	defer consB.Close()
	prod.Put(1, []byte("x"), 0)
	consA.GetLatest(core.STP(337 * time.Millisecond))
	consB.GetLatest(core.STP(544 * time.Millisecond))
	sum, err := prod.Put(2, []byte("y"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum != core.STP(544*time.Millisecond) {
		t.Fatalf("piggybacked summary = %v, want 544ms (max)", sum)
	}
}

func TestConsumerDetachReleasesFeedbackSlot(t *testing.T) {
	s := newTestServer(t, core.Min)
	prod, _ := DialProducer(s.Addr(), "frames")
	defer prod.Close()
	consSlow, _ := DialConsumer(s.Addr(), "frames")
	consFast, _ := DialConsumer(s.Addr(), "frames")
	defer consFast.Close()

	prod.Put(1, []byte("x"), 0)
	consSlow.GetLatest(core.STP(50 * time.Millisecond)) // fast rate dominates min
	consFast.GetLatest(core.STP(400 * time.Millisecond))
	if sum, _ := prod.Put(2, []byte("y"), 0); sum != core.STP(50*time.Millisecond) {
		t.Fatalf("summary = %v, want 50ms", sum)
	}
	consSlow.Close()
	// Allow the server to observe the disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sum, err := prod.Put(vt.Timestamp(time.Now().UnixNano()), []byte("z"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if sum == core.STP(400*time.Millisecond) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detached consumer still in the vector: %v", sum)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStats(t *testing.T) {
	s := newTestServer(t, nil)
	prod, _ := DialProducer(s.Addr(), "frames")
	defer prod.Close()
	// One consumer attached so DGC retains until consumed.
	cons, _ := DialConsumer(s.Addr(), "frames")
	defer cons.Close()
	prod.Put(1, []byte("abcd"), 0)
	items, bytes, err := Stats(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	if items != 1 || bytes != 4 {
		t.Fatalf("stats = %d/%d", items, bytes)
	}
	if _, _, err := Stats(s.Addr(), "nope"); err == nil {
		t.Error("unknown channel stats must fail")
	}
}

// rawConn returns the live wire connection behind a reconnector so the
// protocol-error tests can speak the protocol directly.
func rawConn(t *testing.T, r *Reconnector) *conn {
	t.Helper()
	c, err := r.ensure()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProtocolErrors(t *testing.T) {
	s := newTestServer(t, nil)
	if _, err := DialProducer(s.Addr(), "nope"); err == nil {
		t.Error("unknown channel attach must fail")
	}
	// Put on a consumer connection.
	cons, _ := DialConsumer(s.Addr(), "frames")
	defer cons.Close()
	cc := rawConn(t, cons.r)
	if _, err := cc.call(&Request{Op: OpPut, TS: 1}, time.Second); err == nil {
		t.Error("put on consumer connection must fail")
	}
	// Get on a producer connection.
	prod, _ := DialProducer(s.Addr(), "frames")
	defer prod.Close()
	pc := rawConn(t, prod.r)
	if _, err := pc.call(&Request{Op: OpGetLatest}, time.Second); err == nil {
		t.Error("get on producer connection must fail")
	}
	// Double attach.
	if _, err := pc.call(&Request{Op: OpAttachProducer, Channel: "frames"}, time.Second); err == nil {
		t.Error("double attach must fail")
	}
	// Unknown op.
	if _, err := pc.call(&Request{Op: Op(99)}, time.Second); err == nil {
		t.Error("unknown op must fail")
	}
	// Detach then reattach on the same wire is allowed.
	if _, err := pc.call(&Request{Op: OpDetach}, time.Second); err != nil {
		t.Error(err)
	}
	if _, err := pc.call(&Request{Op: OpAttachConsumer, Channel: "frames"}, time.Second); err != nil {
		t.Error(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := newTestServer(t, nil)
	cons, _ := DialConsumer(s.Addr(), "frames")
	defer cons.Close()
	errs := make(chan error, 1)
	go func() {
		_, err := cons.GetLatest(core.Unknown)
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("expected an error after server close")
		}
		// Either the wire broke or ErrClosed surfaced; both are a clean
		// shutdown signal.
		if !errors.Is(err, ErrClosed) && err.Error() == "" {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client never unblocked after server close")
	}
}

func TestConcurrentRemotePipeline(t *testing.T) {
	s := newTestServer(t, core.Min, "stage1", "stage2")
	const n = 50

	var wg sync.WaitGroup
	// Producer → stage1.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prod, err := DialProducer(s.Addr(), "stage1")
		if err != nil {
			t.Error(err)
			return
		}
		defer prod.Close()
		for ts := vt.Timestamp(1); ts <= n; ts++ {
			if _, err := prod.Put(ts, []byte{byte(ts)}, 1000); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Relay stage1 → stage2.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cons, err := DialConsumer(s.Addr(), "stage1")
		if err != nil {
			t.Error(err)
			return
		}
		defer cons.Close()
		prod, err := DialProducer(s.Addr(), "stage2")
		if err != nil {
			t.Error(err)
			return
		}
		defer prod.Close()
		for {
			it, err := cons.GetLatest(core.STP(2 * time.Millisecond))
			if err != nil {
				return // closed
			}
			if _, err := prod.Put(it.TS, it.Payload, it.Size); err != nil {
				return
			}
			if it.TS == n {
				return
			}
		}
	}()
	// Final consumer on stage2 watches for the last timestamp.
	last := vt.None
	wg.Add(1)
	go func() {
		defer wg.Done()
		cons, err := DialConsumer(s.Addr(), "stage2")
		if err != nil {
			t.Error(err)
			return
		}
		defer cons.Close()
		for {
			it, err := cons.GetLatest(core.STP(2 * time.Millisecond))
			if err != nil {
				return
			}
			last = it.TS
			if it.TS == n {
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("remote pipeline stalled")
	}
	if last != n {
		t.Fatalf("final consumer saw %v, want %d", last, n)
	}
}
