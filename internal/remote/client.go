package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/vt"
)

// ErrClosed reports that the remote channel or server shut down.
var ErrClosed = errors.New("remote: closed")

// conn is one attached TCP connection speaking the request/response
// protocol. It is safe for concurrent use, serializing requests.
type conn struct {
	mu  sync.Mutex
	nc  net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func dial(addr string) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	return &conn{nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc)}, nil
}

// call performs one request/response round trip.
func (c *conn) call(req *Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("remote: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("remote: receive: %w", err)
	}
	if resp.Err == ErrClosedText {
		return resp, ErrClosed
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *conn) close() error { return c.nc.Close() }

// Producer is a remote producer connection to one channel.
type Producer struct {
	c *conn
	// Summary holds the channel's latest summary-STP, refreshed by each
	// Put's piggybacked reply — the feedback a producing thread folds
	// into its own backwardSTP vector.
	mu      sync.Mutex
	summary core.STP
}

// DialProducer attaches a new producer connection to the named channel on
// the server at addr.
func DialProducer(addr, channel string) (*Producer, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	if _, err := c.call(&Request{Op: OpAttachProducer, Channel: channel}); err != nil {
		c.close()
		return nil, err
	}
	return &Producer{c: c}, nil
}

// Put inserts an item and returns the channel's summary-STP piggybacked
// on the reply.
func (p *Producer) Put(ts vt.Timestamp, payload []byte, size int64) (core.STP, error) {
	resp, err := p.c.call(&Request{Op: OpPut, TS: ts, Payload: payload, Size: size})
	if err != nil {
		return core.Unknown, err
	}
	p.mu.Lock()
	p.summary = resp.SummarySTP
	p.mu.Unlock()
	return resp.SummarySTP, nil
}

// Summary returns the channel's last piggybacked summary-STP.
func (p *Producer) Summary() core.STP {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.summary
}

// Close releases the connection.
func (p *Producer) Close() error { return p.c.close() }

// Consumer is a remote consumer connection to one channel.
type Consumer struct {
	c *conn
}

// DialConsumer attaches a new consumer connection to the named channel on
// the server at addr.
func DialConsumer(addr, channel string) (*Consumer, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	if _, err := c.call(&Request{Op: OpAttachConsumer, Channel: channel}); err != nil {
		c.close()
		return nil, err
	}
	return &Consumer{c: c}, nil
}

// Item is one consumed remote item.
type Item struct {
	TS      vt.Timestamp
	Payload []byte
	Size    int64
	// SkippedTS lists the stale timestamps this consumer passed over.
	SkippedTS []vt.Timestamp
}

// GetLatest blocks until an unseen item is available and consumes the
// freshest one. summary piggybacks the consumer's summary-STP to the
// channel (pass core.Unknown if the consumer has none yet).
func (c *Consumer) GetLatest(summary core.STP) (Item, error) {
	resp, err := c.c.call(&Request{Op: OpGetLatest, SummarySTP: summary})
	if err != nil {
		return Item{}, err
	}
	return Item{TS: resp.TS, Payload: resp.Payload, Size: resp.Size, SkippedTS: resp.SkippedTS}, nil
}

// TryGetLatest is the non-blocking variant; ok is false when nothing
// fresh exists.
func (c *Consumer) TryGetLatest(summary core.STP) (Item, bool, error) {
	resp, err := c.c.call(&Request{Op: OpTryGetLatest, SummarySTP: summary})
	if err != nil {
		return Item{}, false, err
	}
	if !resp.OK {
		return Item{}, false, nil
	}
	return Item{TS: resp.TS, Payload: resp.Payload, Size: resp.Size, SkippedTS: resp.SkippedTS}, true, nil
}

// Close releases the connection.
func (c *Consumer) Close() error { return c.c.close() }

// Stats queries a channel's occupancy over a fresh connection.
func Stats(addr, channel string) (items int, bytes int64, err error) {
	c, err := dial(addr)
	if err != nil {
		return 0, 0, err
	}
	defer c.close()
	resp, err := c.call(&Request{Op: OpStats, Channel: channel})
	if err != nil {
		return 0, 0, err
	}
	return resp.Items, resp.Bytes, nil
}
