package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/vt"
)

// ErrClosed reports that the remote channel or server shut down
// cleanly. It is terminal: the reconnector does not redial through it,
// so pipeline shutdown stays prompt.
var ErrClosed = errors.New("remote: closed")

// ErrTimeout reports that one call exceeded its read/write deadline —
// the stalled-peer signal. It is always accompanied by errWire, so the
// reconnector treats it as retryable.
var ErrTimeout = errors.New("remote: call deadline exceeded")

// ErrDegraded reports that an operation exhausted its redial/retry
// budget: the peer is unreachable and the operation did not take
// effect. It wraps buffer.ErrDegraded so the runtime's typed error
// surfaces through errors.Is across layers.
var ErrDegraded = fmt.Errorf("remote: wire degraded: %w", buffer.ErrDegraded)

// ErrReattached is informational: the operation succeeded, but only
// after the connection was redialed and its attachment replayed. It
// wraps buffer.ErrReattached.
var ErrReattached = fmt.Errorf("remote: connection re-attached: %w", buffer.ErrReattached)

// errWire tags transport-level failures (encode/decode/dial errors,
// deadline expiry) apart from application-level refusals the server
// answered with. Only wire failures are retryable.
var errWire = errors.New("remote: wire failure")

// isWire reports whether an error is a retryable transport failure.
func isWire(err error) bool { return errors.Is(err, errWire) }

// conn is one attached TCP connection speaking the request/response
// protocol. It is safe for concurrent use, serializing requests. Every
// round trip is bounded by deadlines: the write (and the read, for
// bounded operations) must complete within timeout, so a hung server
// surfaces as ErrTimeout instead of wedging every subsequent call on
// this connection behind the mutex.
type conn struct {
	mu      sync.Mutex
	nc      net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration // write deadline and default read deadline
}

// Dialer opens the transport for a client connection. Tests inject
// fault-scripted dialers; nil means plain TCP.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

// dialTCP is the default Dialer.
func dialTCP(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// call performs one request/response round trip. readTimeout bounds the
// wait for the reply; zero waits forever (blocking gets on an idle
// channel are not a fault). A deadline expiry poisons the gob stream,
// so the caller must discard the connection afterwards.
func (c *conn) call(req *Request, readTimeout time.Duration) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, wireFail("send", err)
	}
	if readTimeout > 0 {
		c.nc.SetReadDeadline(time.Now().Add(readTimeout))
	} else {
		c.nc.SetReadDeadline(time.Time{})
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, wireFail("receive", err)
	}
	if resp.Err == ErrClosedText {
		return resp, ErrClosed
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// wireFail wraps a transport failure with the errWire tag, adding
// ErrTimeout when a deadline fired.
func wireFail(stage string, err error) error {
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %w: %s: %v", errWire, ErrTimeout, stage, err)
	}
	return fmt.Errorf("%w: %s: %v", errWire, stage, err)
}

func (c *conn) close() error { return c.nc.Close() }

// Producer is a remote producer connection to one channel. It survives
// wire faults: calls carry deadlines, failed connections are redialed
// with capped exponential backoff, the attachment is replayed, and a
// put retried after a lost response is idempotent (keyed by the
// producer's token and timestamp on the server).
type Producer struct {
	r     *Reconnector
	token uint64
	// Summary holds the channel's latest summary-STP, refreshed by each
	// Put's piggybacked reply — the feedback a producing thread folds
	// into its own backwardSTP vector.
	mu      sync.Mutex
	summary core.STP
}

// DialProducer attaches a new producer connection to the named channel
// on the server at addr with default fault tolerance.
func DialProducer(addr, channel string) (*Producer, error) {
	return DialProducerConfig(DialConfig{Addr: addr, Channel: channel})
}

// DialProducerConfig attaches a producer with explicit fault-tolerance
// configuration. The initial dial uses the same retry budget as every
// later call, so a briefly unreachable server does not fail a cold
// start.
func DialProducerConfig(cfg DialConfig) (*Producer, error) {
	p := &Producer{token: newToken()}
	channel := cfg.Channel
	token := p.token
	p.r = newReconnector(cfg, func(c *conn) error {
		_, err := c.call(&Request{Op: OpAttachProducer, Channel: channel, Token: token}, c.timeout)
		return err
	})
	if err := p.r.connect(); err != nil {
		p.r.Close()
		return nil, err
	}
	return p, nil
}

// Put inserts an item and returns the channel's summary-STP piggybacked
// on the reply. A put that succeeded only after a reconnect returns the
// valid summary together with ErrReattached (informational); a put that
// exhausted the retry budget returns ErrDegraded and was NOT applied.
func (p *Producer) Put(ts vt.Timestamp, payload []byte, size int64) (core.STP, error) {
	resp, reattached, err := p.r.call(&Request{Op: OpPut, TS: ts, Payload: payload, Size: size, Token: p.token}, p.r.cfg.CallTimeout)
	if err != nil {
		return core.Unknown, err
	}
	p.mu.Lock()
	p.summary = resp.SummarySTP
	p.mu.Unlock()
	if reattached {
		return resp.SummarySTP, ErrReattached
	}
	return resp.SummarySTP, nil
}

// Summary returns the channel's last piggybacked summary-STP.
func (p *Producer) Summary() core.STP {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.summary
}

// Reattaches reports how many times the connection was redialed and
// re-attached after a wire fault.
func (p *Producer) Reattaches() int64 { return p.r.Reattaches() }

// Close releases the connection.
func (p *Producer) Close() error { p.r.Close(); return nil }

// Consumer is a remote consumer connection to one channel, with the
// same fault tolerance as Producer. A reconnect re-sends the channel
// name and window width, rebuilding the server-side attachment; the
// fresh session's guarantee restarts, so a reattached consumer may see
// an item it already consumed — get-latest discipline makes that safe.
type Consumer struct {
	r *Reconnector
}

// DialConsumer attaches a new consumer connection to the named channel
// on the server at addr with default fault tolerance.
func DialConsumer(addr, channel string) (*Consumer, error) {
	return DialConsumerConfig(DialConfig{Addr: addr, Channel: channel})
}

// DialConsumerConfig attaches a consumer with explicit fault-tolerance
// configuration.
func DialConsumerConfig(cfg DialConfig) (*Consumer, error) {
	c := &Consumer{}
	channel := cfg.Channel
	window := cfg.Window
	if window < 1 {
		window = 1
	}
	c.r = newReconnector(cfg, func(cc *conn) error {
		_, err := cc.call(&Request{Op: OpAttachConsumer, Channel: channel, Window: window}, cc.timeout)
		return err
	})
	if err := c.r.connect(); err != nil {
		c.r.Close()
		return nil, err
	}
	return c, nil
}

// Item is one consumed remote item.
type Item struct {
	TS      vt.Timestamp
	Payload []byte
	Size    int64
	// SkippedTS lists the stale timestamps this consumer passed over.
	SkippedTS []vt.Timestamp
}

// GetLatest blocks until an unseen item is available and consumes the
// freshest one. summary piggybacks the consumer's summary-STP to the
// channel (pass core.Unknown if the consumer has none yet). The wait is
// bounded by the configured GetTimeout (zero: forever); on expiry the
// connection is treated as suspect and redialed — set GetTimeout above
// the longest expected idle gap.
func (c *Consumer) GetLatest(summary core.STP) (Item, error) {
	resp, reattached, err := c.r.call(&Request{Op: OpGetLatest, SummarySTP: summary}, c.r.cfg.GetTimeout)
	if err != nil {
		return Item{}, err
	}
	it := Item{TS: resp.TS, Payload: resp.Payload, Size: resp.Size, SkippedTS: resp.SkippedTS}
	if reattached {
		return it, ErrReattached
	}
	return it, nil
}

// TryGetLatest is the non-blocking variant; ok is false when nothing
// fresh exists.
func (c *Consumer) TryGetLatest(summary core.STP) (Item, bool, error) {
	resp, reattached, err := c.r.call(&Request{Op: OpTryGetLatest, SummarySTP: summary}, c.r.cfg.CallTimeout)
	if err != nil {
		return Item{}, false, err
	}
	if !resp.OK {
		if reattached {
			return Item{}, false, ErrReattached
		}
		return Item{}, false, nil
	}
	it := Item{TS: resp.TS, Payload: resp.Payload, Size: resp.Size, SkippedTS: resp.SkippedTS}
	if reattached {
		return it, true, ErrReattached
	}
	return it, true, nil
}

// Reattaches reports how many times the connection was redialed and
// re-attached after a wire fault.
func (c *Consumer) Reattaches() int64 { return c.r.Reattaches() }

// Close releases the connection.
func (c *Consumer) Close() error { c.r.Close(); return nil }

// Stats queries a channel's occupancy over a fresh connection.
func Stats(addr, channel string) (items int, bytes int64, err error) {
	nc, err := dialTCP(addr, defaultCallTimeout)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	c := &conn{nc: nc, enc: gob.NewEncoder(nc), dec: gob.NewDecoder(nc), timeout: defaultCallTimeout}
	defer c.close()
	resp, err := c.call(&Request{Op: OpStats, Channel: channel}, defaultCallTimeout)
	if err != nil {
		return 0, 0, err
	}
	return resp.Items, resp.Bytes, nil
}
