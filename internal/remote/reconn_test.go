package remote

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/faultnet"
	"repro/internal/vt"
)

// TestBackoffSchedule pins the exact redial schedule Delay produces:
// capped exponential growth, and jitter bounds around every point.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: 400 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
	}
	for n, w := range want {
		if got := b.Delay(n, 0.5); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}

	// Symmetric jitter scales each delay into [d·(1−j), d·(1+j)].
	j := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.2}
	for n := 0; n < 5; n++ {
		base := 100 * time.Millisecond << n // unjittered exponential
		if base > time.Second {
			base = time.Second
		}
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
			d := j.Delay(n, u)
			lo := time.Duration(float64(base) * 0.8)
			hi := time.Duration(float64(base) * 1.2)
			if d < lo || d > hi {
				t.Errorf("Delay(%d, %v) = %v outside [%v, %v]", n, u, d, lo, hi)
			}
		}
		// The jitter sample maps linearly: u=0.5 is the midpoint.
		if d := j.Delay(n, 0.5); d != base {
			t.Errorf("Delay(%d, 0.5) = %v, want unjittered %v", n, d, base)
		}
	}

	// Zero-value Backoff picks up every default, including 0.2 jitter.
	var def Backoff
	if d := def.Delay(0, 0.5); d != backoff.DefaultBase {
		t.Errorf("default Delay(0, 0.5) = %v, want %v", d, backoff.DefaultBase)
	}
	if d := def.Delay(0, 1); d <= backoff.DefaultBase {
		t.Errorf("default jitter not applied: Delay(0, 1) = %v", d)
	}
}

// waitSleepers polls until n goroutines sleep on the manual clock.
func waitSleepers(t *testing.T, clk *clock.Manual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Sleepers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d sleepers", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRedialScheduleFakeClock drives a reconnector whose dialer always
// fails against a manual clock and pins the exact redial instants the
// configuration produces: attempts at 0, 100ms, 300ms, 700ms (base
// 100ms, factor 2, cap 400ms, no jitter), then ErrDegraded.
func TestRedialScheduleFakeClock(t *testing.T) {
	clk := clock.NewManual()
	var mu sync.Mutex
	var attempts []time.Duration
	cfg := DialConfig{
		Addr:    "test:0",
		Channel: "frames",
		Backoff: Backoff{Base: 100 * time.Millisecond, Cap: 400 * time.Millisecond, Factor: 2, Jitter: -1},
		Clock:   clk,
		Seed:    1,
		Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
			mu.Lock()
			attempts = append(attempts, clk.Now())
			mu.Unlock()
			return nil, errors.New("connection refused")
		},
	}
	r := newReconnector(cfg, func(c *conn) error { return nil })
	defer r.Close()

	done := make(chan error, 1)
	go func() { done <- r.connect() }()

	// Release the three backoff sleeps by exactly their scheduled
	// delays; advancing precisely proves the schedule, not just the
	// order.
	for _, d := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond} {
		waitSleepers(t, clk, 1)
		clk.Advance(d)
	}
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("connect never exhausted its retry budget")
	}
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, buffer.ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded wrapping buffer.ErrDegraded", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond, 700 * time.Millisecond}
	if len(attempts) != len(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	for i, w := range want {
		if attempts[i] != w {
			t.Fatalf("attempt %d at %v, want %v (schedule %v)", i, attempts[i], w, attempts)
		}
	}
}

// TestCloseInterruptsBackoff proves Close is prompt: a reconnector
// sleeping a backoff delay reports ErrClosed without waiting it out.
func TestCloseInterruptsBackoff(t *testing.T) {
	cfg := DialConfig{
		Addr:    "test:0",
		Channel: "frames",
		Backoff: Backoff{Base: time.Hour, Cap: time.Hour, Factor: 1, Jitter: -1},
		Seed:    1,
		Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
	}
	r := newReconnector(cfg, func(c *conn) error { return nil })
	done := make(chan error, 1)
	go func() {
		_, _, err := r.call(&Request{Op: OpPut, TS: 1}, time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it enter the hour-long backoff... or fail trying
	r.Close()
	select {
	case err := <-done:
		// Either ErrClosed (observed the close) or ErrDegraded (budget
		// spent first) is acceptable; waiting out the hour is not.
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call survived Close inside backoff sleep")
	}
}

// TestIdempotentPutNoDoubleInsert injects a lost put response: the
// server applies the put, the reply never reaches the client, the client
// redials and retries. The server's (token, timestamp) dedup must
// acknowledge without inserting twice — proven by the channel's put
// counter.
func TestIdempotentPutNoDoubleInsert(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	ln, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{Listener: ln}, "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A consumer keeps DGC from collecting, so occupancy is also exact.
	cons, err := DialConsumer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	prod, err := DialProducerConfig(DialConfig{
		Addr: s.Addr(), Channel: "frames",
		Backoff: Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, Jitter: -1},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()

	if _, err := prod.Put(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}

	// Drop the server's next write: put 2 is applied, its response is
	// lost, and the connection is severed mid-stream.
	ctl.DropWriteAfter(0)
	sum, err := prod.Put(2, []byte("b"), 0)
	if !errors.Is(err, ErrReattached) || !errors.Is(err, buffer.ErrReattached) {
		t.Fatalf("retried put err = %v, want informational ErrReattached", err)
	}
	if ctl.Injected() == 0 {
		t.Fatal("no fault was injected; the test proved nothing")
	}
	if prod.Reattaches() != 1 {
		t.Fatalf("reattaches = %d, want 1", prod.Reattaches())
	}
	_ = sum // the summary accompanying ErrReattached is valid (possibly Unknown here)

	// Oracle: exactly two puts were applied — the retry did not
	// double-insert.
	ch := s.Channel("frames")
	if puts, _ := ch.Stats(); puts != 2 {
		t.Fatalf("server puts = %d, want 2 (idempotent retry)", puts)
	}
	if items, _ := ch.Occupancy(); items != 2 {
		t.Fatalf("occupancy = %d items, want 2", items)
	}

	// The healed connection keeps working without further retries.
	if _, err := prod.Put(3, []byte("c"), 0); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	if puts, _ := ch.Stats(); puts != 3 {
		t.Fatalf("server puts = %d, want 3", puts)
	}
}

// TestConsumerReattachReplaysWindow proves a consumer's re-attach
// replays the channel name (and window width) so the server-side session
// is rebuilt: after a severed wire, GetLatest keeps serving.
func TestConsumerReattachReplaysAttachment(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(42))
	ln, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{Listener: ln}, "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	prod, err := DialProducer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	// A second, idle consumer keeps the collector from freeing items the
	// faulted consumer saw in its severed session.
	keeper, err := DialConsumer(s.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()
	cons, err := DialConsumerConfig(DialConfig{
		Addr: s.Addr(), Channel: "frames",
		Backoff: Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, Jitter: -1},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	if _, err := prod.Put(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if it, err := cons.GetLatest(0); err != nil || it.TS != 1 {
		t.Fatalf("first get = %+v, %v", it, err)
	}
	if _, err := prod.Put(2, []byte("b"), 0); err != nil {
		t.Fatal(err)
	}

	// Drop the server's next write: the get's response is lost and the
	// wire severed mid-call. The consumer redials, replays its
	// attachment (channel name and window width), and retries; the
	// fresh session's guarantee restarts, so the freshest item is served
	// again — get-latest discipline makes the replay safe.
	ctl.DropWriteAfter(0)
	it, err := cons.GetLatest(0)
	if err != nil && !errors.Is(err, ErrReattached) {
		t.Fatalf("get across fault = %v", err)
	}
	if it.TS != vt.Timestamp(2) {
		t.Fatalf("ts = %v, want 2", it.TS)
	}
	if cons.Reattaches() != 1 {
		t.Fatalf("consumer reattaches = %d, want 1", cons.Reattaches())
	}
	if ctl.Injected() == 0 {
		t.Fatal("no fault was injected; the test proved nothing")
	}
}
