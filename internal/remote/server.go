package remote

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/channel"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vt"
)

// ServerConfig configures a channel server.
type ServerConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// port). Ignored when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of listening on Addr.
	// Fault-injection tests pass a scripted listener here.
	Listener net.Listener
	// Clock times blocking and frees; nil means a real clock (remote
	// deployments run in real time).
	Clock clock.Clock
	// Collector reclaims dead items; nil means DGC.
	Collector gc.Collector
	// Compressor folds each channel's backwardSTP vector; nil means Min.
	Compressor core.Compressor
	// Metrics, when non-nil, receives the server's live instruments
	// (dedup hits per hosted channel). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Server hosts named channels for remote producers and consumers.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	channels map[string]*hosted
	conns    map[net.Conn]struct{}
	nextConn graph.ConnID
	closed   bool
	wg       sync.WaitGroup
}

// hosted is one channel plus its ARU state.
type hosted struct {
	ch  *channel.Channel
	vec *core.BackwardVec

	// mDedup counts retried puts answered from the dedup state instead
	// of re-inserting (nil when metrics are disabled).
	mDedup *metrics.Counter

	// lastPut remembers, per producer token, the timestamp of the last
	// applied put. The wire protocol is a strict request/response
	// alternation, so at most one put per producer can ever be in doubt
	// after a lost response — remembering just the latest (token, ts)
	// pair makes retried puts idempotent with O(producers) state.
	//
	// tokens refcounts the sessions attached under each producer token,
	// so lastPut is pruned when the last session for a token detaches —
	// without a reconnecting producer's fresh session racing the old
	// session's deferred detach into deleting live dedup state. Even if
	// an entry is pruned early the protocol stays correct: a retried put
	// that misses the dedup map falls back to the channel's own
	// ErrDuplicate detection.
	mu      sync.Mutex
	lastPut map[uint64]vt.Timestamp
	tokens  map[uint64]int
}

// retainToken registers one session attached under token.
func (h *hosted) retainToken(token uint64) {
	if token == 0 {
		return
	}
	h.mu.Lock()
	h.tokens[token]++
	h.mu.Unlock()
}

// releaseToken drops one session's claim on token, pruning the dedup
// state once no session remains: without it lastPut grows by one entry
// per producer ever attached, forever.
func (h *hosted) releaseToken(token uint64) {
	if token == 0 {
		return
	}
	h.mu.Lock()
	if h.tokens[token]--; h.tokens[token] <= 0 {
		delete(h.tokens, token)
		delete(h.lastPut, token)
	}
	h.mu.Unlock()
}

// dedupEntries reports the size of the lastPut map (tests pin that
// attach→put→detach cycles leave it empty).
func (h *hosted) dedupEntries() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.lastPut)
}

// alreadyApplied reports whether a put of ts from token was the last one
// applied — i.e. this request is a retry of a put whose response was
// lost.
func (h *hosted) alreadyApplied(token uint64, ts vt.Timestamp) bool {
	if token == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	last, ok := h.lastPut[token]
	return ok && last == ts
}

// recordPut remembers the last applied put for token.
func (h *hosted) recordPut(token uint64, ts vt.Timestamp) {
	if token == 0 {
		return
	}
	h.mu.Lock()
	h.lastPut[token] = ts
	h.mu.Unlock()
}

// summary returns the channel's summary-STP: buffers have no current-STP,
// so it is the compressed backwardSTP (§3.3.2).
func (h *hosted) summary(comp core.Compressor) core.STP {
	return h.vec.Compressed(comp)
}

// NewServer starts a server hosting the named channels.
func NewServer(cfg ServerConfig, channelNames ...string) (*Server, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Collector == nil {
		cfg.Collector = gc.NewDeadTimestamp()
	}
	if cfg.Compressor == nil {
		cfg.Compressor = core.Min
	}
	if len(channelNames) == 0 {
		return nil, errors.New("remote: server needs at least one channel")
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("remote: listen: %w", err)
		}
	}
	s := &Server{cfg: cfg, ln: ln, channels: make(map[string]*hosted), conns: make(map[net.Conn]struct{})}
	for i, name := range channelNames {
		if _, dup := s.channels[name]; dup {
			ln.Close()
			return nil, fmt.Errorf("remote: duplicate channel %q", name)
		}
		h := &hosted{
			ch: channel.New(channel.Config{
				Name: name, Node: graph.NodeID(i),
				Clock: cfg.Clock, Collector: cfg.Collector,
			}),
			vec:     core.NewBackwardVec(nil, nil),
			lastPut: make(map[uint64]vt.Timestamp),
			tokens:  make(map[uint64]int),
		}
		if cfg.Metrics != nil {
			h.mDedup = cfg.Metrics.Counter(MetricDedupHits,
				"Retried puts answered from the server's dedup state.",
				metrics.Labels{"channel": name})
		}
		s.channels[name] = h
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes every hosted channel, releasing
// blocked remote gets.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, h := range s.channels {
		h.ch.Close()
	}
	// Sever client wires so serve loops blocked in Decode return.
	for _, nc := range conns {
		nc.Close()
	}
	s.wg.Wait()
	return err
}

// track registers a client connection for shutdown; it reports false when
// the server is already closing.
func (s *Server) track(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, nc)
}

// Channel exposes a hosted channel for local (in-process) interaction and
// tests.
func (s *Server) Channel(name string) *channel.Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.channels[name]; ok {
		return h.ch
	}
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// session is the per-TCP-connection attachment state.
type session struct {
	hosted   *hosted
	connID   graph.ConnID
	producer bool
	consumer bool
	token    uint64 // producer dedup token (0: none)
}

func (s *Server) serve(nc net.Conn) {
	defer nc.Close()
	if !s.track(nc) {
		return
	}
	defer s.untrack(nc)
	dec := gob.NewDecoder(nc)
	enc := gob.NewEncoder(nc)
	var sess session
	defer s.detach(&sess)

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // client went away
		}
		resp := s.handle(&sess, &req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// detach releases a session's attachment, pruning the per-token dedup
// state once the last session holding the token is gone.
func (s *Server) detach(sess *session) {
	if sess.hosted == nil {
		return
	}
	if sess.consumer {
		sess.hosted.ch.DetachConsumer(sess.connID)
		sess.hosted.vec.RemoveSlot(sess.connID)
	}
	if sess.producer {
		sess.hosted.releaseToken(sess.token)
		sess.token = 0
	}
	sess.hosted = nil
}

func (s *Server) allocConn() graph.ConnID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextConn++
	return s.nextConn
}

func (s *Server) lookup(name string) (*hosted, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.channels[name]
	return h, ok
}

func (s *Server) handle(sess *session, req *Request) Response {
	switch req.Op {
	case OpAttachProducer, OpAttachConsumer:
		if sess.hosted != nil {
			return Response{Err: "remote: connection already attached"}
		}
		h, ok := s.lookup(req.Channel)
		if !ok {
			return Response{Err: fmt.Sprintf("remote: unknown channel %q", req.Channel)}
		}
		sess.hosted = h
		sess.connID = s.allocConn()
		if req.Op == OpAttachProducer {
			sess.producer = true
			sess.token = req.Token
			h.retainToken(req.Token)
			h.ch.AttachProducer(sess.connID)
		} else {
			sess.consumer = true
			w := req.Window
			if w < 1 {
				w = 1
			}
			if err := h.ch.AttachConsumer(sess.connID, w); err != nil {
				sess.hosted = nil
				sess.consumer = false
				return Response{Err: errText(err)}
			}
			h.vec.AddSlot(sess.connID, nil)
		}
		return Response{OK: true}

	case OpPut:
		if sess.hosted == nil || !sess.producer {
			return Response{Err: "remote: put on a non-producer connection"}
		}
		// Idempotent retry: if this (token, ts) pair is the last put this
		// producer applied, its original response was lost on the wire —
		// acknowledge again without inserting a duplicate.
		if req.Retry && sess.hosted.alreadyApplied(req.Token, req.TS) {
			sess.hosted.mDedup.Inc()
			return Response{OK: true, SummarySTP: sess.hosted.summary(s.cfg.Compressor)}
		}
		size := req.Size
		if size == 0 {
			size = int64(len(req.Payload))
		}
		_, err := sess.hosted.ch.Put(sess.connID, &channel.Item{
			TS: req.TS, Payload: req.Payload, Size: size,
		})
		if err != nil {
			// A retried put colliding with its own earlier insert is a
			// success for token-less producers too: the item is there.
			if req.Retry && errors.Is(err, channel.ErrDuplicate) {
				sess.hosted.mDedup.Inc()
				return Response{OK: true, SummarySTP: sess.hosted.summary(s.cfg.Compressor)}
			}
			return Response{Err: errText(err)}
		}
		sess.hosted.recordPut(req.Token, req.TS)
		// Piggyback the channel's summary-STP back to the producer.
		return Response{OK: true, SummarySTP: sess.hosted.summary(s.cfg.Compressor)}

	case OpGetLatest, OpTryGetLatest:
		if sess.hosted == nil || !sess.consumer {
			return Response{Err: "remote: get on a non-consumer connection"}
		}
		// Piggyback the consumer's summary-STP into the channel's vector.
		if req.SummarySTP.Known() {
			sess.hosted.vec.Update(sess.connID, req.SummarySTP)
		}
		var res channel.GetResult
		var err error
		if req.Op == OpGetLatest {
			res, err = sess.hosted.ch.GetLatest(sess.connID)
		} else {
			var ok bool
			res, ok, err = sess.hosted.ch.TryGetLatest(sess.connID)
			if err == nil && !ok {
				return Response{OK: false}
			}
		}
		if err != nil {
			return Response{Err: errText(err)}
		}
		resp := Response{OK: true, TS: res.Item.TS, Size: res.Item.Size}
		if b, ok := res.Item.Payload.([]byte); ok {
			resp.Payload = b
		}
		for _, sk := range res.Skipped {
			resp.SkippedTS = append(resp.SkippedTS, sk.TS)
		}
		return resp

	case OpStats:
		h, ok := s.lookup(req.Channel)
		if !ok {
			return Response{Err: fmt.Sprintf("remote: unknown channel %q", req.Channel)}
		}
		items, bytes := h.ch.Occupancy()
		return Response{OK: true, Items: items, Bytes: bytes}

	case OpDetach:
		s.detach(sess)
		return Response{OK: true}

	default:
		return Response{Err: fmt.Sprintf("remote: unknown op %d", req.Op)}
	}
}

// errText maps channel errors onto wire strings.
func errText(err error) string {
	if errors.Is(err, channel.ErrClosed) {
		return ErrClosedText
	}
	return err.Error()
}
