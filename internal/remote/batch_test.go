package remote

// Batch suite: PutBatch/GetBatch over the wire backend. The remote
// endpoint has no native batch path — the round trip is its unit of
// synchronization — so both delegate to the serial fallbacks
// (buffer.PutBatchSerial / buffer.GetBatchSerial). These tests pin the
// fallback contract end to end across a real socket:
//
//   - a batch applies in order and the no-duplicate oracle holds,
//   - a connection severed mid-batch is ridden out by the reconnector:
//     the batch completes fully with the informational ErrReattached,
//   - under a partition with an exhausted retry budget the batch stops
//     early — applied < len(specs), tail ownership stays with the
//     caller — and production resumes after the wire heals.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/runtime"
	"repro/internal/vt"
)

const batchSize = 8

// batchCounters aggregates what the batched thread bodies observed.
type batchCounters struct {
	attempts    atomic.Int64 // items offered via PutBatch
	acked       atomic.Int64 // items applied (incl. via reattach replay)
	shortPuts   atomic.Int64 // batches that stopped early (applied < batch)
	degraded    atomic.Int64 // batch ops that exhausted the retry budget
	consumed    atomic.Int64 // items received via GetBatch
	multiFills  atomic.Int64 // GetBatch calls that filled more than one slot
	reattaches  atomic.Int64 // ops that succeeded via reattach
	orderBreaks atomic.Int64 // timestamp regressions across batch boundaries
}

// buildBatchPipeline wires camera → wire("frames") → display where both
// ends use the batched entry points exclusively. maxRetries controls
// how long the endpoint fights a fault before declaring the op
// degraded: generous for ride-it-out tests, tiny for partial-apply
// tests.
func buildBatchPipeline(t *testing.T, addr string, maxRetries int) (*runtime.Runtime, *batchCounters) {
	t.Helper()
	rt := runtime.New(runtime.Options{ARU: core.PolicyMin()})
	ch, err := rt.AddRemoteChannel("frames", 0, addr, runtime.WithRemoteTuning(buffer.RemoteTuning{
		CallTimeout: 2 * time.Second,
		GetTimeout:  500 * time.Millisecond,
		RetryBase:   5 * time.Millisecond,
		RetryCap:    40 * time.Millisecond,
		RetryJitter: -1, // deterministic schedule
		MaxRetries:  maxRetries,
		Seed:        1719,
		StaleTTL:    120 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctr := &batchCounters{}

	var ts atomic.Int64
	cam := rt.MustAddThread("camera", 0, func(ctx *runtime.Ctx) error {
		out := ctx.Outs()[0]
		specs := make([]runtime.PutSpec, batchSize)
		for !ctx.Stopped() {
			for i := range specs {
				specs[i] = runtime.PutSpec{TS: vt.Timestamp(ts.Add(1)), Payload: []byte("frame"), Size: 64}
			}
			ctr.attempts.Add(int64(len(specs)))
			applied, err := ctx.PutBatch(out, specs)
			ctr.acked.Add(int64(applied))
			// Shutdown legitimately aborts an in-flight batch; only a
			// fault-driven short apply counts against the contract.
			if applied < len(specs) && !errors.Is(err, runtime.ErrShutdown) {
				ctr.shortPuts.Add(1)
			}
			switch {
			case err == nil:
			case errors.Is(err, runtime.ErrReattached):
				ctr.reattaches.Add(1)
			case errors.Is(err, runtime.ErrShutdown):
				return nil
			case errors.Is(err, runtime.ErrDegraded):
				// specs[applied:] were shed; ownership stayed here.
				ctr.degraded.Add(1)
			default:
				return err
			}
			ctx.Compute(2 * time.Millisecond)
			ctx.Sync()
		}
		return nil
	})
	cam.MustOutput(ch)

	var last atomic.Int64
	dis := rt.MustAddThread("display", 0, func(ctx *runtime.Ctx) error {
		in := ctx.Ins()[0]
		dst := make([]runtime.Msg, 4)
		for !ctx.Stopped() {
			n, err := ctx.GetBatch(in, dst)
			switch {
			case err == nil:
			case errors.Is(err, runtime.ErrReattached):
				ctr.reattaches.Add(1)
			case errors.Is(err, runtime.ErrShutdown):
				return nil
			case errors.Is(err, runtime.ErrDegraded):
				ctr.degraded.Add(1)
				ctx.Sync()
				continue
			default:
				return err
			}
			if n > 1 {
				ctr.multiFills.Add(1)
			}
			for i := 0; i < n; i++ {
				if int64(dst[i].TS) < last.Load() {
					ctr.orderBreaks.Add(1)
				}
				last.Store(int64(dst[i].TS))
				ctr.consumed.Add(1)
			}
			ctx.Compute(3 * time.Millisecond)
			ctx.Sync()
		}
		return nil
	})
	dis.MustInput(ch)
	return rt, ctr
}

// assertBatchOracle is the batch no-duplicate/no-loss check: every
// applied item reached the server exactly once, nothing arrived that
// was never offered, and the get-latest discipline kept consumption
// monotone across batch boundaries.
func assertBatchOracle(t *testing.T, s *Server, ctr *batchCounters) {
	t.Helper()
	puts, _ := s.Channel("frames").Stats()
	acked, attempts := ctr.acked.Load(), ctr.attempts.Load()
	if puts < acked || puts > attempts {
		t.Fatalf("server puts = %d outside [acked %d, attempts %d]: lost or duplicated batch inserts", puts, acked, attempts)
	}
	if ctr.orderBreaks.Load() != 0 {
		t.Fatalf("display saw %d timestamp regressions", ctr.orderBreaks.Load())
	}
}

// TestBatchOverWireEndToEnd drives batched production and consumption
// over a healthy wire: full batches apply, items flow, and the serial
// fallback's ordering contract holds.
func TestBatchOverWireEndToEnd(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	srv := newChaosServer(t, ctl, "127.0.0.1:0")
	defer srv.Close()
	rt, ctr := buildBatchPipeline(t, srv.Addr(), 40)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "batched traffic", func() bool {
		return ctr.acked.Load() >= 5*batchSize && ctr.consumed.Load() >= 5
	})
	stopAndWait(t, rt)
	assertBatchOracle(t, srv, ctr)
	if ctr.shortPuts.Load() != 0 {
		t.Fatalf("healthy wire short-applied %d batches", ctr.shortPuts.Load())
	}
	if ctr.degraded.Load() != 0 {
		t.Fatalf("healthy wire degraded %d batch ops", ctr.degraded.Load())
	}
}

// TestBatchRidesOutMidBatchSever severs the producer's connection on
// its next write — between two puts of an in-flight batch, since the
// serial fallback issues one request per item over the same conn. The
// reconnector's generous retry budget must redial and replay so the
// batch still applies fully, reported once via the informational
// ErrReattached; then the consumer side gets the same treatment.
func TestBatchRidesOutMidBatchSever(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	srv := newChaosServer(t, ctl, "127.0.0.1:0")
	defer srv.Close()
	rt, ctr := buildBatchPipeline(t, srv.Addr(), 40)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "warmup traffic", func() bool {
		return ctr.acked.Load() >= 3*batchSize && ctr.consumed.Load() >= 3
	})

	// Sever the next write mid-stream; the producer writes far more
	// often than the consumer, so this lands inside a put batch.
	ctl.DropWriteAfter(0)
	acked := ctr.acked.Load()
	waitUntil(t, 10*time.Second, "batches to ride out the sever", func() bool {
		return ctr.acked.Load() >= acked+3*batchSize
	})

	// Now the read side: sever whichever connection reads next.
	ctl.DropReadAfter(0)
	consumed := ctr.consumed.Load()
	waitUntil(t, 10*time.Second, "consumption to ride out the sever", func() bool {
		return ctr.consumed.Load() >= consumed+3
	})

	stopAndWait(t, rt)
	assertBatchOracle(t, srv, ctr)
	if ctl.Injected() == 0 {
		t.Fatal("no fault was injected; the scenario proved nothing")
	}
	if ctr.reattaches.Load() == 0 {
		t.Fatal("severed connection never reattached")
	}
	if ctr.shortPuts.Load() != 0 {
		t.Fatalf("reattach replay should complete batches, yet %d applied short", ctr.shortPuts.Load())
	}
}

// TestBatchPartialApplyUnderPartition partitions the wire under a tiny
// retry budget: a batch in flight must stop early with applied <
// len(specs) and ErrDegraded — the partial-apply ownership contract —
// and after healing the endpoint reattaches and full batches flow
// again.
func TestBatchPartialApplyUnderPartition(t *testing.T) {
	ctl := faultnet.New(faultnet.Seed(1719))
	srv := newChaosServer(t, ctl, "127.0.0.1:0")
	defer srv.Close()
	rt, ctr := buildBatchPipeline(t, srv.Addr(), 3)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "warmup traffic", func() bool {
		return ctr.acked.Load() >= 3*batchSize && ctr.consumed.Load() >= 3
	})

	ctl.Partition()
	waitUntil(t, 10*time.Second, "a batch to apply short under partition", func() bool {
		return ctr.shortPuts.Load() >= 1 && ctr.degraded.Load() >= 1
	})
	ctl.Heal()

	acked := ctr.acked.Load()
	consumed := ctr.consumed.Load()
	waitUntil(t, 15*time.Second, "batched production to resume", func() bool {
		return ctr.acked.Load() >= acked+3*batchSize
	})
	waitUntil(t, 15*time.Second, "batched consumption to resume", func() bool {
		return ctr.consumed.Load() >= consumed+3
	})

	stopAndWait(t, rt)
	assertBatchOracle(t, srv, ctr)
	if ctr.reattaches.Load() == 0 {
		t.Fatal("partition healed without a single reattach: the fault never bit")
	}
}
