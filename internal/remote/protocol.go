// Package remote makes Stampede channels reachable over real TCP sockets,
// so a pipeline can genuinely span processes and machines (the paper's
// Stampede is a cluster programming library; §5's configuration 2 runs
// each task on its own node).
//
// A Server hosts named channels. Remote threads attach producer or
// consumer connections and then put/get items over the wire; summary-STP
// feedback is piggybacked on exactly those messages, as in the paper: a
// consumer's get carries its summary-STP to the channel, and a producer's
// put returns the channel's compressed summary-STP with the reply.
//
// The wire protocol is length-free gob streams: each attached connection
// owns one TCP connection carrying a strict request/response alternation,
// so a blocking GetLatest simply leaves the reply pending. Payloads are
// opaque byte slices; callers serialize their own data.
package remote

import (
	"repro/internal/core"
	"repro/internal/vt"
)

// Op is a protocol request kind.
type Op uint8

// Protocol operations.
const (
	// OpAttachProducer binds this TCP connection as a producer of the
	// named channel.
	OpAttachProducer Op = iota + 1
	// OpAttachConsumer binds this TCP connection as a consumer.
	OpAttachConsumer
	// OpPut inserts an item (producer connections only).
	OpPut
	// OpGetLatest blocks for the freshest unseen item (consumers only).
	OpGetLatest
	// OpTryGetLatest is the non-blocking variant.
	OpTryGetLatest
	// OpStats reports channel occupancy.
	OpStats
	// OpDetach releases the connection's attachment.
	OpDetach
)

// Request is one client→server message.
type Request struct {
	Op      Op
	Channel string
	// TS is the item timestamp (OpPut).
	TS vt.Timestamp
	// Payload carries opaque item bytes (OpPut).
	Payload []byte
	// Size is the item's logical size for accounting; if zero on put,
	// len(Payload) is used.
	Size int64
	// SummarySTP piggybacks the sender's summary-STP (OpGetLatest /
	// OpTryGetLatest: consumer → channel feedback).
	SummarySTP core.STP
	// Window is the consumer's sliding-window width (OpAttachConsumer);
	// zero means 1. Re-attaches after a reconnect replay it so the
	// server-side view is rebuilt exactly.
	Window int
	// Token identifies one producer instance across reconnects
	// (OpAttachProducer / OpPut). The server remembers the last applied
	// (token, timestamp) so a put retried after a lost response is
	// idempotent — it never double-inserts. Zero means "no idempotency".
	Token uint64
	// Retry marks a put re-sent after a wire failure mid-call: the
	// original may or may not have been applied. Paired with Token (or,
	// for token-less clients, with the channel's duplicate-timestamp
	// check) it makes the retry safe.
	Retry bool
}

// Response is one server→client message.
type Response struct {
	// Err is a non-empty error string on failure. ErrClosed maps to
	// "closed" so clients can detect shutdown.
	Err string
	// OK distinguishes "no fresh item" on OpTryGetLatest.
	OK bool
	// TS, Payload, Size describe the returned item.
	TS      vt.Timestamp
	Payload []byte
	Size    int64
	// SkippedTS lists timestamps this consumer passed over.
	SkippedTS []vt.Timestamp
	// SummarySTP piggybacks the channel's summary-STP (OpPut reply:
	// channel → producer feedback).
	SummarySTP core.STP
	// Items/Bytes report occupancy (OpStats).
	Items int
	Bytes int64
}

// ErrClosedText is the canonical Err value for a closed channel or
// server.
const ErrClosedText = "closed"
