package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestBuildReportThreads(t *testing.T) {
	evs := buildPipelineTrace()
	a := mustAnalyze(t, evs, AnalyzeOptions{To: sec(5)})
	rep := BuildReport(evs, a)

	src := rep.Threads[graph.NodeID(0)]
	if src == nil {
		t.Fatal("source thread missing from report")
	}
	if src.Iterations != 4 {
		t.Errorf("source iterations = %d, want 4", src.Iterations)
	}
	if src.Compute != 100*time.Millisecond {
		t.Errorf("source mean compute = %v, want 100ms", src.Compute)
	}
	if src.Produced != 4 {
		t.Errorf("source produced = %d", src.Produced)
	}
	if src.Period != sec(5)/4 {
		t.Errorf("source period = %v", src.Period)
	}
	if src.Utilization <= 0 || src.Utilization > 1 {
		t.Errorf("utilization = %v", src.Utilization)
	}

	worker := rep.Threads[graph.NodeID(2)]
	if worker == nil || worker.Iterations != 2 || worker.Compute != 800*time.Millisecond {
		t.Fatalf("worker report = %+v", worker)
	}
}

func TestBuildReportChannels(t *testing.T) {
	evs := buildPipelineTrace()
	a := mustAnalyze(t, evs, AnalyzeOptions{To: sec(5)})
	rep := BuildReport(evs, a)

	chA := rep.Channels[graph.NodeID(1)]
	if chA == nil {
		t.Fatal("channel A missing")
	}
	if chA.Allocs != 4 || chA.Gets != 2 || chA.Skips != 2 || chA.Frees != 4 {
		t.Errorf("chA counts = %+v", chA)
	}
	if chA.BytesAllocated != 400 {
		t.Errorf("chA bytes = %d", chA.BytesAllocated)
	}
	if chA.WastedItems != 2 {
		t.Errorf("chA wasted = %d (items 2 and 4)", chA.WastedItems)
	}
	if chA.MeanResidency <= 0 {
		t.Errorf("chA residency = %v", chA.MeanResidency)
	}

	chB := rep.Channels[graph.NodeID(3)]
	if chB == nil || chB.Allocs != 2 || chB.WastedItems != 0 {
		t.Fatalf("chB report = %+v", chB)
	}
}

func TestReportRendering(t *testing.T) {
	evs := buildPipelineTrace()
	a := mustAnalyze(t, evs, AnalyzeOptions{To: sec(5)})
	rep := BuildReport(evs, a)

	g := graph.New()
	g.MustAddNode(graph.KindThread, "source", 0)
	g.MustAddNode(graph.KindChannel, "chanA", 0)
	g.MustAddNode(graph.KindThread, "worker", 0)
	g.MustAddNode(graph.KindChannel, "chanB", 0)
	g.MustAddNode(graph.KindThread, "sink", 0)

	var buf bytes.Buffer
	rep.WriteThreads(&buf, g)
	rep.WriteChannels(&buf, g)
	out := buf.String()
	for _, want := range []string{"source", "worker", "sink", "chanA", "chanB", "iters", "residency"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}

	// Rendering without a graph falls back to ids.
	buf.Reset()
	rep.WriteThreads(&buf, nil)
	if !strings.Contains(buf.String(), "node-0") {
		t.Error("nil-graph rendering must use node ids")
	}
}

func TestReportWindowClipping(t *testing.T) {
	evs := buildPipelineTrace()
	a := mustAnalyze(t, evs, AnalyzeOptions{From: sec(2), To: sec(4)})
	rep := BuildReport(evs, a)
	src := rep.Threads[graph.NodeID(0)]
	// Source iterations at 0,1,2,3s; window [2,4) keeps 2 of them.
	if src == nil || src.Iterations != 2 {
		t.Fatalf("clipped source = %+v", src)
	}
}
