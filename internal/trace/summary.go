package trace

import (
	"encoding/json"
	"io"
	"time"
)

// Summary is the flat, machine-readable digest of an Analysis, suitable
// for JSON export and diffing across runs. All byte figures are raw
// bytes; durations are in milliseconds for spreadsheet friendliness.
type Summary struct {
	WindowFromMS int64 `json:"window_from_ms"`
	WindowToMS   int64 `json:"window_to_ms"`

	MeanFootprintBytes float64 `json:"mean_footprint_bytes"`
	StdFootprintBytes  float64 `json:"std_footprint_bytes"`
	PeakFootprintBytes float64 `json:"peak_footprint_bytes"`
	IGCMeanBytes       float64 `json:"igc_mean_bytes"`
	WastedMemPct       float64 `json:"wasted_mem_pct"`
	WastedCompPct      float64 `json:"wasted_comp_pct"`

	Outputs       int     `json:"outputs"`
	ThroughputFPS float64 `json:"throughput_fps"`
	LatencyMeanMS float64 `json:"latency_mean_ms"`
	LatencyStdMS  float64 `json:"latency_std_ms"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP95MS  float64 `json:"latency_p95_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	JitterMS      float64 `json:"jitter_ms"`

	ItemsTotal      int `json:"items_total"`
	ItemsSuccessful int `json:"items_successful"`
	ItemsWasted     int `json:"items_wasted"`
	Gets            int `json:"gets"`
	Skips           int `json:"skips"`

	TotalComputeMS  float64 `json:"total_compute_ms"`
	WastedComputeMS float64 `json:"wasted_compute_ms"`
}

// Summary digests the analysis.
func (a *Analysis) Summary() Summary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Summary{
		WindowFromMS:       a.From.Milliseconds(),
		WindowToMS:         a.To.Milliseconds(),
		MeanFootprintBytes: a.All.MeanBytes,
		StdFootprintBytes:  a.All.StdBytes,
		PeakFootprintBytes: a.All.PeakBytes,
		IGCMeanBytes:       a.IGC.MeanBytes,
		WastedMemPct:       a.WastedMemPct,
		WastedCompPct:      a.WastedCompPct,
		Outputs:            a.Outputs,
		ThroughputFPS:      a.ThroughputFPS,
		LatencyMeanMS:      ms(a.LatencyMean),
		LatencyStdMS:       ms(a.LatencyStd),
		LatencyP50MS:       ms(a.LatencyP50),
		LatencyP95MS:       ms(a.LatencyP95),
		LatencyP99MS:       ms(a.LatencyP99),
		JitterMS:           ms(a.Jitter),
		ItemsTotal:         a.ItemsTotal,
		ItemsSuccessful:    a.ItemsSuccessful,
		ItemsWasted:        a.ItemsWasted,
		Gets:               a.Gets,
		Skips:              a.Skips,
		TotalComputeMS:     ms(a.TotalCompute),
		WastedComputeMS:    ms(a.WastedCompute),
	}
}

// WriteJSON writes the summary as indented JSON.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Summary())
}
