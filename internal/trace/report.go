package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/graph"
)

// ThreadReport summarizes one thread's execution over the analysis
// window, reconstructed from its EvIter records.
type ThreadReport struct {
	Thread graph.NodeID
	// Iterations is the number of completed loop iterations.
	Iterations int
	// Period is the mean time between iterations (window / iterations).
	Period time.Duration
	// Compute and Blocked are mean per-iteration times.
	Compute, Blocked time.Duration
	// Utilization is compute ÷ period: the fraction of the thread's
	// period spent doing work rather than waiting or pacing.
	Utilization float64
	// Produced counts items the thread created in the window.
	Produced int
}

// ChannelReport summarizes one buffer's traffic over the window.
type ChannelReport struct {
	Node graph.NodeID
	// Allocs/Gets/Skips/Frees count the item events in the window.
	Allocs, Gets, Skips, Frees int
	// BytesAllocated sums allocated item sizes.
	BytesAllocated int64
	// WastedItems counts allocated items classified unsuccessful.
	WastedItems int
	// MeanResidency is the mean alloc→free lifetime of items allocated
	// in the window.
	MeanResidency time.Duration
}

// Report is the structured drill-down companion to Analysis.
type Report struct {
	Threads  map[graph.NodeID]*ThreadReport
	Channels map[graph.NodeID]*ChannelReport
}

// BuildReport derives per-thread and per-channel summaries from raw
// events, using an Analysis for the window and item classifications.
func BuildReport(events []Event, a *Analysis) *Report {
	rep := &Report{
		Threads:  make(map[graph.NodeID]*ThreadReport),
		Channels: make(map[graph.NodeID]*ChannelReport),
	}
	window := a.To - a.From
	thread := func(id graph.NodeID) *ThreadReport {
		tr := rep.Threads[id]
		if tr == nil {
			tr = &ThreadReport{Thread: id}
			rep.Threads[id] = tr
		}
		return tr
	}
	ch := func(id graph.NodeID) *ChannelReport {
		cr := rep.Channels[id]
		if cr == nil {
			cr = &ChannelReport{Node: id}
			rep.Channels[id] = cr
		}
		return cr
	}
	var residency = map[graph.NodeID]*struct {
		total time.Duration
		n     int
	}{}

	for _, ev := range events {
		if ev.At < a.From || ev.At >= a.To {
			continue
		}
		switch ev.Kind {
		case EvIter:
			tr := thread(ev.Thread)
			tr.Iterations++
			tr.Compute += ev.Compute
			tr.Blocked += ev.Blocked
			tr.Produced += len(ev.Items)
		case EvAlloc:
			cr := ch(ev.Node)
			cr.Allocs++
			cr.BytesAllocated += ev.Size
			if info, ok := a.Items[ev.Item]; ok {
				if !info.Successful {
					cr.WastedItems++
				}
				r := residency[ev.Node]
				if r == nil {
					r = &struct {
						total time.Duration
						n     int
					}{}
					residency[ev.Node] = r
				}
				r.total += info.FreeAt - info.AllocAt
				r.n++
			}
		case EvGet:
			ch(ev.Node).Gets++
		case EvSkip:
			ch(ev.Node).Skips++
		case EvFree:
			ch(ev.Node).Frees++
		}
	}

	for _, tr := range rep.Threads {
		if tr.Iterations > 0 {
			tr.Period = window / time.Duration(tr.Iterations)
			tr.Compute /= time.Duration(tr.Iterations)
			tr.Blocked /= time.Duration(tr.Iterations)
			if tr.Period > 0 {
				tr.Utilization = float64(tr.Compute) / float64(tr.Period)
			}
		}
	}
	for id, r := range residency {
		if r.n > 0 {
			rep.Channels[id].MeanResidency = r.total / time.Duration(r.n)
		}
	}
	return rep
}

// WriteThreads renders the thread table, resolving names through g (nil
// g prints bare ids).
func (r *Report) WriteThreads(w io.Writer, g *graph.Graph) {
	r.WriteThreadsNamed(w, GraphNames(g))
}

// WriteThreadsNamed renders the thread table with an explicit name table
// (from a persisted trace; nil prints bare ids).
func (r *Report) WriteThreadsNamed(w io.Writer, names map[graph.NodeID]string) {
	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s %6s %9s\n",
		"thread", "iters", "period", "compute", "blocked", "util", "produced")
	for _, id := range sortedThreadIDs(r) {
		tr := r.Threads[id]
		fmt.Fprintf(w, "%-18s %8d %10v %10v %10v %5.0f%% %9d\n",
			nodeName(names, id), tr.Iterations,
			tr.Period.Round(time.Millisecond),
			tr.Compute.Round(time.Millisecond),
			tr.Blocked.Round(time.Millisecond),
			tr.Utilization*100, tr.Produced)
	}
}

// WriteChannels renders the channel table.
func (r *Report) WriteChannels(w io.Writer, g *graph.Graph) {
	r.WriteChannelsNamed(w, GraphNames(g))
}

// WriteChannelsNamed renders the channel table with an explicit name
// table.
func (r *Report) WriteChannelsNamed(w io.Writer, names map[graph.NodeID]string) {
	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s %8s %12s %11s\n",
		"channel", "allocs", "gets", "skips", "frees", "wasted", "bytes", "residency")
	ids := make([]graph.NodeID, 0, len(r.Channels))
	for id := range r.Channels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cr := r.Channels[id]
		fmt.Fprintf(w, "%-18s %8d %8d %8d %8d %8d %12d %11v\n",
			nodeName(names, id), cr.Allocs, cr.Gets, cr.Skips, cr.Frees,
			cr.WastedItems, cr.BytesAllocated,
			cr.MeanResidency.Round(time.Millisecond))
	}
}

func sortedThreadIDs(r *Report) []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(r.Threads))
	for id := range r.Threads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func nodeName(names map[graph.NodeID]string, id graph.NodeID) string {
	if name, ok := names[id]; ok && name != "" {
		return name
	}
	return fmt.Sprintf("node-%d", id)
}
