package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	evs := buildPipelineTrace()
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch: %d vs %d events", len(got), len(evs))
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events", len(got))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace")); err == nil {
		t.Error("garbage must be rejected")
	}
	// A valid gob stream with the wrong magic.
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the magic string bytes.
	idx := bytes.Index(data, []byte("stampede"))
	if idx < 0 {
		t.Fatal("magic not found in stream")
	}
	data[idx] = 'X'
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("wrong magic must be rejected")
	}
}

func TestReadTruncated(t *testing.T) {
	evs := buildPipelineTrace()
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream must be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rec := NewRecorder()
	for _, ev := range buildPipelineTrace() {
		rec.Append(ev)
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := SaveFile(path, rec); err != nil {
		t.Fatal(err)
	}
	evs, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != rec.Len() {
		t.Fatalf("loaded %d events, want %d", len(evs), rec.Len())
	}
	// The loaded trace must analyze identically.
	a1, err := AnalyzeEvents(evs, AnalyzeOptions{To: sec(5)})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(rec, AnalyzeOptions{To: sec(5)})
	if err != nil {
		t.Fatal(err)
	}
	if a1.All.IntegralByteSec != a2.All.IntegralByteSec || a1.Outputs != a2.Outputs {
		t.Fatal("analysis of loaded trace diverges")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing file must error")
	}
}
