package trace

import "testing"

// BenchmarkAnalyze measures the postmortem pass over the reference
// pipeline trace, scaled 100x.
func BenchmarkAnalyze(b *testing.B) {
	base := buildPipelineTrace()
	events := make([]Event, 0, len(base)*100)
	for rep := 0; rep < 100; rep++ {
		offset := ItemID(rep * 1000)
		for _, ev := range base {
			ev2 := ev
			if ev2.Item != 0 {
				ev2.Item += offset
			}
			if len(ev2.Items) > 0 {
				items := make([]ItemID, len(ev2.Items))
				for i, id := range ev2.Items {
					items[i] = id + offset
				}
				ev2.Items = items
			}
			events = append(events, ev2)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeEvents(events, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderAppend measures the tracing hot path.
func BenchmarkRecorderAppend(b *testing.B) {
	r := NewRecorder()
	ev := Event{Kind: EvGet, Item: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(ev)
	}
}
