package trace

import (
	"sync"
	"testing"
)

// BenchmarkAnalyze measures the postmortem pass over the reference
// pipeline trace, scaled 100x.
func BenchmarkAnalyze(b *testing.B) {
	base := buildPipelineTrace()
	events := make([]Event, 0, len(base)*100)
	for rep := 0; rep < 100; rep++ {
		offset := ItemID(rep * 1000)
		for _, ev := range base {
			ev2 := ev
			if ev2.Item != 0 {
				ev2.Item += offset
			}
			if len(ev2.Items) > 0 {
				items := make([]ItemID, len(ev2.Items))
				for i, id := range ev2.Items {
					items[i] = id + offset
				}
				ev2.Items = items
			}
			events = append(events, ev2)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeEvents(events, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderAppend measures the tracing hot path.
func BenchmarkRecorderAppend(b *testing.B) {
	r := NewRecorder()
	ev := Event{Kind: EvGet, Item: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(ev)
	}
}

// BenchmarkRecorderAppendParallel measures the tracing hot path under
// contention: every thread goroutine of a busy pipeline appends trace
// events concurrently, which is exactly the pattern of a real run (each
// put/get/skip/free funnels into the recorder).
func BenchmarkRecorderAppendParallel(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ev := Event{Kind: EvGet, Item: 1}
		for pb.Next() {
			r.Append(ev)
		}
	})
}

// mutexRecorder is the pre-sharding single-mutex design, kept as an
// in-tree baseline so the parallel speedup of the sharded recorder stays
// measurable in one benchmark run.
type mutexRecorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *mutexRecorder) Append(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// BenchmarkRecorderAppendParallelMutexBaseline measures the single-mutex
// baseline under the same parallel load as
// BenchmarkRecorderAppendParallel.
func BenchmarkRecorderAppendParallelMutexBaseline(b *testing.B) {
	r := &mutexRecorder{}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ev := Event{Kind: EvGet, Item: 1}
		for pb.Next() {
			r.Append(ev)
		}
	})
}
