package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/vt"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

// buildPipelineTrace fabricates a two-stage pipeline run:
//
//	source thread (node 0) -> channel A (node 1) -> worker (node 2)
//	  -> channel B (node 3) -> sink (node 4)
//
// Source items 1..4 are produced at t=0..3 s (100 bytes each). The worker
// consumes items 1 and 3, producing derived items 11 and 13 (50 bytes)
// into channel B; items 2 and 4 are skipped (wasted). The sink consumes
// and emits outputs for items 11 and 13.
func buildPipelineTrace() []Event {
	const (
		srcThread  = graph.NodeID(0)
		chanA      = graph.NodeID(1)
		workThread = graph.NodeID(2)
		chanB      = graph.NodeID(3)
		sinkThread = graph.NodeID(4)
	)
	var evs []Event
	alloc := func(id ItemID, node, prod graph.NodeID, ts vt.Timestamp, size int64, at time.Duration, inputs ...ItemID) {
		evs = append(evs, Event{Kind: EvAlloc, Item: id, Node: node, Thread: prod, TS: ts, Size: size, At: at, Items: inputs})
	}
	// Source items.
	for i := 1; i <= 4; i++ {
		alloc(ItemID(i), chanA, srcThread, vt.Timestamp(i), 100, sec(float64(i-1)))
		evs = append(evs, Event{Kind: EvIter, Thread: srcThread, At: sec(float64(i - 1)), Compute: 100 * time.Millisecond, Items: []ItemID{ItemID(i)}})
	}
	// Worker consumes 1 and 3; 2 and 4 skipped and freed unconsumed.
	evs = append(evs,
		Event{Kind: EvGet, Item: 1, Node: chanA, Thread: workThread, At: sec(0.5)},
		Event{Kind: EvSkip, Item: 2, Node: chanA, Thread: workThread, At: sec(2.1)},
		Event{Kind: EvGet, Item: 3, Node: chanA, Thread: workThread, At: sec(2.2)},
		Event{Kind: EvSkip, Item: 4, Node: chanA, Thread: workThread, At: sec(3.5)},
	)
	alloc(11, chanB, workThread, 1, 50, sec(1.5), 1)
	evs = append(evs, Event{Kind: EvIter, Thread: workThread, At: sec(1.5), Compute: 800 * time.Millisecond, Items: []ItemID{11}})
	alloc(13, chanB, workThread, 3, 50, sec(3.2), 3)
	evs = append(evs, Event{Kind: EvIter, Thread: workThread, At: sec(3.2), Compute: 800 * time.Millisecond, Items: []ItemID{13}})
	// Frees.
	for _, f := range []struct {
		id   ItemID
		node graph.NodeID
		at   time.Duration
	}{{1, chanA, sec(2.2)}, {2, chanA, sec(2.2)}, {3, chanA, sec(3.6)}, {4, chanA, sec(3.8)}, {11, chanB, sec(3.0)}, {13, chanB, sec(4.5)}} {
		evs = append(evs, Event{Kind: EvFree, Item: f.id, Node: f.node, At: f.at})
	}
	// Sink consumes and emits.
	evs = append(evs,
		Event{Kind: EvGet, Item: 11, Node: chanB, Thread: sinkThread, At: sec(2.0)},
		Event{Kind: EvEmit, Thread: sinkThread, At: sec(2.5), Items: []ItemID{11}},
		Event{Kind: EvIter, Thread: sinkThread, At: sec(2.5), Compute: 200 * time.Millisecond},
		Event{Kind: EvGet, Item: 13, Node: chanB, Thread: sinkThread, At: sec(4.0)},
		Event{Kind: EvEmit, Thread: sinkThread, At: sec(4.5), Items: []ItemID{13}},
		Event{Kind: EvIter, Thread: sinkThread, At: sec(4.5), Compute: 200 * time.Millisecond},
	)
	return evs
}

func mustAnalyze(t *testing.T, evs []Event, opt AnalyzeOptions) *Analysis {
	t.Helper()
	a, err := AnalyzeEvents(evs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeSuccessMarking(t *testing.T) {
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{})
	wantSuccess := map[ItemID]bool{1: true, 2: false, 3: true, 4: false, 11: true, 13: true}
	for id, want := range wantSuccess {
		it, ok := a.Items[id]
		if !ok {
			t.Fatalf("item %d missing", id)
		}
		if it.Successful != want {
			t.Errorf("item %d Successful = %v, want %v", id, it.Successful, want)
		}
	}
	if a.ItemsTotal != 6 || a.ItemsSuccessful != 4 || a.ItemsWasted != 2 {
		t.Errorf("counts = %d/%d/%d", a.ItemsTotal, a.ItemsSuccessful, a.ItemsWasted)
	}
	if a.Gets != 4 || a.Skips != 2 {
		t.Errorf("gets/skips = %d/%d", a.Gets, a.Skips)
	}
}

func TestAnalyzeComputeAccounting(t *testing.T) {
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{})
	// Total = 4×100ms (source) + 2×800ms (worker) + 2×200ms (sink) = 2.4s.
	if a.TotalCompute != 2400*time.Millisecond {
		t.Errorf("TotalCompute = %v", a.TotalCompute)
	}
	// Wasted: source iterations that produced items 2 and 4 → 200ms.
	if a.WastedCompute != 200*time.Millisecond {
		t.Errorf("WastedCompute = %v", a.WastedCompute)
	}
	wantPct := 100 * 200.0 / 2400.0
	if math.Abs(a.WastedCompPct-wantPct) > 1e-9 {
		t.Errorf("WastedCompPct = %v, want %v", a.WastedCompPct, wantPct)
	}
}

func TestAnalyzeOutputsAndLatency(t *testing.T) {
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{})
	if a.Outputs != 2 {
		t.Fatalf("Outputs = %d", a.Outputs)
	}
	// Output 1 at 2.5s from item 11 whose root (item 1) was allocated at
	// t=0 → latency 2.5 s. Output 2 at 4.5 s, root item 3 allocated at
	// 2 s → latency 2.5 s.
	if len(a.Latencies) != 2 {
		t.Fatalf("Latencies = %v", a.Latencies)
	}
	for i, want := range []time.Duration{sec(2.5), sec(2.5)} {
		if a.Latencies[i] != want {
			t.Errorf("latency[%d] = %v, want %v", i, a.Latencies[i], want)
		}
	}
	if a.LatencyMean != sec(2.5) || a.LatencyStd != 0 {
		t.Errorf("latency mean/std = %v/%v", a.LatencyMean, a.LatencyStd)
	}
	// Window is [0, 4.5s) by default (last event at 4.5s)... To==end, so
	// emit at exactly 4.5 is excluded by the half-open window only if
	// To == 4.5; ensure both outputs counted by extending the window.
	a2 := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{To: sec(5)})
	if a2.Outputs != 2 {
		t.Fatalf("extended window Outputs = %d", a2.Outputs)
	}
	if got := a2.ThroughputFPS; math.Abs(got-2.0/5.0) > 1e-9 {
		t.Errorf("ThroughputFPS = %v", got)
	}
}

func TestAnalyzeFootprint(t *testing.T) {
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{To: sec(5)})
	// Hand-computed integral of the all-items series (byte·seconds):
	// item1 100B [0,2.2) = 220; item2 100B [1,2.2) = 120;
	// item3 100B [2,3.6) = 160; item4 100B [3,3.8) = 80;
	// item11 50B [1.5,3.0) = 75; item13 50B [3.2,4.5) = 65. Total 720.
	if math.Abs(a.All.IntegralByteSec-720) > 1e-6 {
		t.Errorf("All integral = %v, want 720", a.All.IntegralByteSec)
	}
	if math.Abs(a.All.MeanBytes-720.0/5.0) > 1e-6 {
		t.Errorf("All mean = %v", a.All.MeanBytes)
	}
	// Wasted: items 2 and 4 → 120 + 80 = 200.
	if math.Abs(a.Wasted.IntegralByteSec-200) > 1e-6 {
		t.Errorf("Wasted integral = %v, want 200", a.Wasted.IntegralByteSec)
	}
	if math.Abs(a.WastedMemPct-100*200.0/720.0) > 1e-6 {
		t.Errorf("WastedMemPct = %v", a.WastedMemPct)
	}
	// IGC: successful items, alloc→last get:
	// item1 [0,0.5)=50, item3 [2,2.2)=20, item11 [1.5,2.0)=25,
	// item13 [3.2,4.0)=40. Total 135.
	if math.Abs(a.IGC.IntegralByteSec-135) > 1e-6 {
		t.Errorf("IGC integral = %v, want 135", a.IGC.IntegralByteSec)
	}
	if a.IGC.IntegralByteSec >= a.All.IntegralByteSec {
		t.Error("IGC must be a strict lower bound here")
	}
	// Peak: at t=2.0..2.2 items 1,2,3,11 live = 350.
	if a.All.PeakBytes != 350 {
		t.Errorf("Peak = %v, want 350", a.All.PeakBytes)
	}
}

func TestAnalyzeWindowClipping(t *testing.T) {
	// Restrict to [2s, 4s): only the second emit's predecessor window.
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{From: sec(2), To: sec(4)})
	if a.Outputs != 1 {
		t.Fatalf("clipped Outputs = %d", a.Outputs)
	}
	if a.OutputTimes[0] != sec(2.5) {
		t.Errorf("clipped output time = %v", a.OutputTimes[0])
	}
	if a.ThroughputFPS != 0.5 {
		t.Errorf("clipped throughput = %v", a.ThroughputFPS)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := AnalyzeEvents([]Event{
		{Kind: EvAlloc, Item: 1, At: sec(1)},
		{Kind: EvAlloc, Item: 1, At: sec(2)},
	}, AnalyzeOptions{}); err == nil {
		t.Error("duplicate alloc must error")
	}
	if _, err := AnalyzeEvents([]Event{
		{Kind: EvAlloc, Item: 1, At: sec(1)},
		{Kind: EvFree, Item: 1, At: sec(2)},
		{Kind: EvFree, Item: 1, At: sec(3)},
	}, AnalyzeOptions{}); err == nil {
		t.Error("double free must error")
	}
	if _, err := AnalyzeEvents(nil, AnalyzeOptions{From: sec(5), To: sec(1)}); err == nil {
		t.Error("inverted window must error")
	}
}

func TestAnalyzeUnfreedItemLivesToEnd(t *testing.T) {
	evs := []Event{
		{Kind: EvAlloc, Item: 1, Size: 100, At: 0},
		{Kind: EvGet, Item: 1, At: sec(1)},
		{Kind: EvEmit, At: sec(2), Items: []ItemID{1}},
	}
	a := mustAnalyze(t, evs, AnalyzeOptions{To: sec(2)})
	// Item never freed: live [0, 2s) → 200 byte·sec.
	if math.Abs(a.All.IntegralByteSec-200) > 1e-6 {
		t.Errorf("integral = %v", a.All.IntegralByteSec)
	}
	if a.Items[1].Freed {
		t.Error("item must be marked unfreed")
	}
}

func TestAnalyzeJitter(t *testing.T) {
	evs := []Event{
		{Kind: EvAlloc, Item: 1, Size: 1, At: 0},
		{Kind: EvEmit, At: sec(1), Items: []ItemID{1}},
		{Kind: EvEmit, At: sec(2), Items: []ItemID{1}},
		{Kind: EvEmit, At: sec(4), Items: []ItemID{1}},
	}
	a := mustAnalyze(t, evs, AnalyzeOptions{To: sec(5)})
	// Gaps 1s and 2s → mean 1.5s, population std 0.5s.
	if a.Jitter != sec(0.5) {
		t.Errorf("Jitter = %v, want 0.5s", a.Jitter)
	}
}

func TestAnalyzeSinkOnlyIterationsAreUseful(t *testing.T) {
	evs := []Event{
		{Kind: EvAlloc, Item: 1, Size: 1, At: 0},
		{Kind: EvIter, Thread: 4, At: sec(1), Compute: sec(1)}, // no produced items
	}
	a := mustAnalyze(t, evs, AnalyzeOptions{To: sec(2)})
	if a.WastedCompute != 0 {
		t.Errorf("sink iteration must not be wasted, got %v", a.WastedCompute)
	}
	if a.TotalCompute != sec(1) {
		t.Errorf("TotalCompute = %v", a.TotalCompute)
	}
}

func TestAnalyzeLatencyPercentiles(t *testing.T) {
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{To: sec(5)})
	// Both latencies are 2.5s → all percentiles equal.
	if a.LatencyP50 != sec(2.5) || a.LatencyP95 != sec(2.5) || a.LatencyP99 != sec(2.5) {
		t.Fatalf("percentiles = %v/%v/%v", a.LatencyP50, a.LatencyP95, a.LatencyP99)
	}
	// No outputs → zero percentiles.
	b := mustAnalyze(t, []Event{{Kind: EvAlloc, Item: 1, At: sec(1)}}, AnalyzeOptions{To: sec(2)})
	if b.LatencyP50 != 0 || b.LatencyP99 != 0 {
		t.Fatalf("empty percentiles = %v/%v", b.LatencyP50, b.LatencyP99)
	}
}

func TestSummaryAndJSON(t *testing.T) {
	a := mustAnalyze(t, buildPipelineTrace(), AnalyzeOptions{To: sec(5)})
	s := a.Summary()
	if s.Outputs != a.Outputs || s.ItemsTotal != a.ItemsTotal {
		t.Fatal("summary counts diverge")
	}
	if s.MeanFootprintBytes != a.All.MeanBytes || s.IGCMeanBytes != a.IGC.MeanBytes {
		t.Fatal("summary footprint diverges")
	}
	if s.LatencyMeanMS != 2500 {
		t.Fatalf("latency ms = %v, want 2500", s.LatencyMeanMS)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatal("JSON round trip diverges")
	}
}
