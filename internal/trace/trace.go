// Package trace implements the measurement infrastructure described in §4
// of the paper: "Each interaction of an item with the operating system
// (e.g., allocation, deallocation, etc.) is recorded. Items that do not
// make it to the end of the pipeline are marked to differentiate between
// wasted and successful memory and computations. A postmortem analysis
// program uses these statistics to derive the metrics of interest."
//
// The runtime appends Events to a Recorder during execution; Analyze runs
// the postmortem pass, classifying every item as successful (its data
// transitively reached a pipeline sink) or wasted, and computing the
// paper's metrics: mean/std memory footprint (MUμ/MUσ), percentage wasted
// memory and computation, latency, throughput, jitter, and the Ideal
// Garbage Collector (IGC) lower bound on footprint.
package trace

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/vt"
)

// ItemID uniquely identifies one data item instance across the whole run.
// Each Put creates a distinct item (Stampede copies data into the channel).
type ItemID int64

// NoItem is the invalid item id.
const NoItem ItemID = 0

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvAlloc records the creation of an item by a producer thread. It
	// carries the item's logical size, its timestamp, the channel it was
	// produced into, and its provenance (the input items consumed by the
	// iteration that produced it). An item's live interval for footprint
	// accounting starts here.
	EvAlloc EventKind = iota
	// EvGet records a consumer connection retrieving the item.
	EvGet
	// EvSkip records a consumer connection passing over the item without
	// consuming it (get-latest semantics skipped stale data).
	EvSkip
	// EvFree records the garbage collector reclaiming the item, ending
	// its live interval.
	EvFree
	// EvIter records the completion of one thread loop iteration with its
	// compute time (blocking excluded) and the items it produced.
	EvIter
	// EvEmit records a pipeline output: a sink thread completed
	// processing of the listed consumed items (one displayed frame for
	// the tracker's GUI).
	EvEmit
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvGet:
		return "get"
	case EvSkip:
		return "skip"
	case EvFree:
		return "free"
	case EvIter:
		return "iter"
	case EvEmit:
		return "emit"
	default:
		return "unknown"
	}
}

// Event is one trace record. Field usage depends on Kind; unused fields
// are zero.
type Event struct {
	Kind EventKind
	// At is the runtime-clock time of the event.
	At time.Duration
	// Item is the subject item (EvAlloc/EvGet/EvSkip/EvFree).
	Item ItemID
	// Node is the channel or queue holding the item (EvAlloc/EvGet/
	// EvSkip/EvFree).
	Node graph.NodeID
	// Thread is the acting thread (EvAlloc producer, EvGet/EvSkip
	// consumer, EvIter/EvEmit subject).
	Thread graph.NodeID
	// TS is the item's virtual timestamp (EvAlloc).
	TS vt.Timestamp
	// Size is the item's logical size in bytes (EvAlloc).
	Size int64
	// Compute is the iteration's execution time excluding blocking and
	// throttle sleep (EvIter).
	Compute time.Duration
	// Blocked is the time the iteration spent waiting on inputs (EvIter).
	Blocked time.Duration
	// Items lists provenance inputs (EvAlloc), items produced (EvIter),
	// or items consumed for an output (EvEmit).
	Items []ItemID
}

// chunkSize is the number of events held by one shard chunk. Chunks are
// append-only and never reallocated, so recording never copies old
// events (the single-slice design paid an amortized memmove of the whole
// history on every growth).
const chunkSize = 1024

// entry is one recorded event tagged with its global append sequence
// number, which defines the total order Events() reconstructs.
type entry struct {
	seq int64
	ev  Event
}

// shard is one append-only event buffer. Shards are owned by the
// recorder; goroutines acquire temporary affinity to a shard through a
// sync.Pool, so in steady state each P appends to its own shard and the
// shard mutex is uncontended.
type shard struct {
	mu     sync.Mutex
	chunks [][]entry
}

// appendEntry adds one entry to the shard's current chunk, opening a new
// chunk when full.
func (s *shard) appendEntry(e entry) {
	s.mu.Lock()
	n := len(s.chunks)
	if n == 0 || len(s.chunks[n-1]) == chunkSize {
		s.chunks = append(s.chunks, make([]entry, 0, chunkSize))
		n++
	}
	s.chunks[n-1] = append(s.chunks[n-1], e)
	s.mu.Unlock()
}

// len returns the shard's entry count.
func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, c := range s.chunks {
		total += len(c)
	}
	return total
}

// Recorder collects events. It is safe for concurrent use. A nil
// *Recorder is valid and discards everything, so tracing can be disabled
// without branching at call sites.
//
// Internally the recorder is sharded: every Append reserves a global
// sequence number with one atomic increment and stores the event in a
// per-P (pool-affine) chunked buffer, so concurrent thread goroutines do
// not serialize on a single mutex and recording never rewrites history
// to grow a slice. Events() merges the shards back into the global
// append order, preserving the original single-buffer contract for the
// analyze/persist consumers.
type Recorder struct {
	shards []*shard
	pool   sync.Pool
	seq    atomic.Int64 // global append order; also counts appends
	nextID atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	r := &Recorder{shards: make([]*shard, n)}
	for i := range r.shards {
		r.shards[i] = &shard{}
	}
	// The pool hands goroutines shard affinity. If the GC drops pooled
	// entries, New re-issues shards round-robin; events already stored
	// are owned by r.shards and are never lost.
	var next atomic.Int64
	r.pool.New = func() any {
		return r.shards[int(next.Add(1)-1)%len(r.shards)]
	}
	return r
}

// NewItemID allocates a fresh unique item id, starting at 1. Valid on a
// nil recorder, which hands out ids without recording anything.
func (r *Recorder) NewItemID() ItemID {
	if r == nil {
		return NoItem
	}
	return ItemID(r.nextID.Add(1))
}

// Append records one event. A nil recorder discards it.
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	sh := r.pool.Get().(*shard)
	sh.appendEntry(entry{seq: seq, ev: ev})
	r.pool.Put(sh)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	total := 0
	for _, sh := range r.shards {
		total += sh.len()
	}
	return total
}

// Events returns a snapshot copy of the recorded events in append order
// (the order in which Append calls reserved their sequence numbers; for
// causally ordered appends this matches the old single-mutex order
// exactly). The merge and sort run only at analyze/persist time, never
// on the recording hot path.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var all []entry
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, c := range sh.chunks {
			all = append(all, c...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}
