// Package trace implements the measurement infrastructure described in §4
// of the paper: "Each interaction of an item with the operating system
// (e.g., allocation, deallocation, etc.) is recorded. Items that do not
// make it to the end of the pipeline are marked to differentiate between
// wasted and successful memory and computations. A postmortem analysis
// program uses these statistics to derive the metrics of interest."
//
// The runtime appends Events to a Recorder during execution; Analyze runs
// the postmortem pass, classifying every item as successful (its data
// transitively reached a pipeline sink) or wasted, and computing the
// paper's metrics: mean/std memory footprint (MUμ/MUσ), percentage wasted
// memory and computation, latency, throughput, jitter, and the Ideal
// Garbage Collector (IGC) lower bound on footprint.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/vt"
)

// ItemID uniquely identifies one data item instance across the whole run.
// Each Put creates a distinct item (Stampede copies data into the channel).
type ItemID int64

// NoItem is the invalid item id.
const NoItem ItemID = 0

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvAlloc records the creation of an item by a producer thread. It
	// carries the item's logical size, its timestamp, the channel it was
	// produced into, and its provenance (the input items consumed by the
	// iteration that produced it). An item's live interval for footprint
	// accounting starts here.
	EvAlloc EventKind = iota
	// EvGet records a consumer connection retrieving the item.
	EvGet
	// EvSkip records a consumer connection passing over the item without
	// consuming it (get-latest semantics skipped stale data).
	EvSkip
	// EvFree records the garbage collector reclaiming the item, ending
	// its live interval.
	EvFree
	// EvIter records the completion of one thread loop iteration with its
	// compute time (blocking excluded) and the items it produced.
	EvIter
	// EvEmit records a pipeline output: a sink thread completed
	// processing of the listed consumed items (one displayed frame for
	// the tracker's GUI).
	EvEmit
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvGet:
		return "get"
	case EvSkip:
		return "skip"
	case EvFree:
		return "free"
	case EvIter:
		return "iter"
	case EvEmit:
		return "emit"
	default:
		return "unknown"
	}
}

// Event is one trace record. Field usage depends on Kind; unused fields
// are zero.
type Event struct {
	Kind EventKind
	// At is the runtime-clock time of the event.
	At time.Duration
	// Item is the subject item (EvAlloc/EvGet/EvSkip/EvFree).
	Item ItemID
	// Node is the channel or queue holding the item (EvAlloc/EvGet/
	// EvSkip/EvFree).
	Node graph.NodeID
	// Thread is the acting thread (EvAlloc producer, EvGet/EvSkip
	// consumer, EvIter/EvEmit subject).
	Thread graph.NodeID
	// TS is the item's virtual timestamp (EvAlloc).
	TS vt.Timestamp
	// Size is the item's logical size in bytes (EvAlloc).
	Size int64
	// Compute is the iteration's execution time excluding blocking and
	// throttle sleep (EvIter).
	Compute time.Duration
	// Blocked is the time the iteration spent waiting on inputs (EvIter).
	Blocked time.Duration
	// Items lists provenance inputs (EvAlloc), items produced (EvIter),
	// or items consumed for an output (EvEmit).
	Items []ItemID
}

// Recorder collects events. It is safe for concurrent use. A nil
// *Recorder is valid and discards everything, so tracing can be disabled
// without branching at call sites.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	nextID atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	r.nextID.Store(1)
	return r
}

// NewItemID allocates a fresh unique item id. Valid on a nil recorder,
// which hands out ids without recording anything.
func (r *Recorder) NewItemID() ItemID {
	if r == nil {
		return NoItem
	}
	return ItemID(r.nextID.Add(1))
}

// Append records one event. A nil recorder discards it.
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot copy of the recorded events in append order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}
