package trace

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// traceFileVersion guards the on-disk format.
const traceFileVersion = 2

// fileHeader opens a persisted trace. Names is an optional node-id →
// human-name table, so offline tools can label threads and channels.
type fileHeader struct {
	Magic   string
	Version int
	Events  int
	Names   map[graph.NodeID]string
}

const magic = "stampede-aru-trace"

// Write serializes events to w without a name table.
func Write(w io.Writer, events []Event) error {
	return WriteNamed(w, events, nil)
}

// WriteNamed serializes events plus a node-name table to w (gob stream:
// header, then events), so a run's measurements can be analyzed offline
// by cmd/traceview or archived alongside experiment results.
func WriteNamed(w io.Writer, events []Event, names map[graph.NodeID]string) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	h := fileHeader{Magic: magic, Version: traceFileVersion, Events: len(events), Names: names}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read deserializes a persisted trace, dropping the name table.
func Read(r io.Reader) ([]Event, error) {
	events, _, err := ReadNamed(r)
	return events, err
}

// ReadNamed deserializes a persisted trace including its name table
// (possibly nil).
func ReadNamed(r io.Reader) ([]Event, map[graph.NodeID]string, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, nil, fmt.Errorf("trace: read header: %w", err)
	}
	if h.Magic != magic {
		return nil, nil, fmt.Errorf("trace: not a trace file (magic %q)", h.Magic)
	}
	if h.Version != traceFileVersion {
		return nil, nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	if h.Events < 0 {
		return nil, nil, fmt.Errorf("trace: negative event count %d", h.Events)
	}
	events := make([]Event, 0, h.Events)
	for i := 0; i < h.Events; i++ {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, nil, fmt.Errorf("trace: read event %d/%d: %w", i, h.Events, err)
		}
		events = append(events, ev)
	}
	return events, h.Names, nil
}

// GraphNames extracts the node-name table from a task graph.
func GraphNames(g *graph.Graph) map[graph.NodeID]string {
	if g == nil {
		return nil
	}
	names := make(map[graph.NodeID]string, g.NumNodes())
	g.Nodes(func(n *graph.Node) { names[n.ID] = n.Name })
	return names
}

// SaveFile writes a recorder's events to path without names.
func SaveFile(path string, r *Recorder) error {
	return SaveFileNamed(path, r, nil)
}

// SaveFileNamed writes a recorder's events plus a name table to path.
func SaveFileNamed(path string, r *Recorder, names map[graph.NodeID]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteNamed(f, r.Events(), names)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a persisted trace from path, dropping names.
func LoadFile(path string) ([]Event, error) {
	events, _, err := LoadFileNamed(path)
	return events, err
}

// LoadFileNamed reads a persisted trace and its name table from path.
func LoadFileNamed(path string) ([]Event, map[graph.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadNamed(f)
}
