package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/vt"

	"repro/internal/graph"
)

// Footprint summarizes one memory-occupancy step series over the analysis
// window using the paper's time-weighted formulas.
type Footprint struct {
	// MeanBytes is MUμ: the time-weighted mean occupancy.
	MeanBytes float64
	// StdBytes is MUσ: the time-weighted standard deviation.
	StdBytes float64
	// PeakBytes is the maximum occupancy within the window.
	PeakBytes float64
	// IntegralByteSec is the occupancy integral in byte·seconds.
	IntegralByteSec float64
	// Series is the underlying step function (bytes versus runtime time).
	Series *stats.StepSeries
}

// ItemInfo is the reconstructed lifecycle of one item.
type ItemInfo struct {
	ID         ItemID
	Node       graph.NodeID // channel/queue that held the item
	Producer   graph.NodeID
	TS         vt.Timestamp
	Size       int64
	AllocAt    time.Duration
	FreeAt     time.Duration // run end if never freed
	Freed      bool
	Gets       int
	Skips      int
	LastGetAt  time.Duration
	Inputs     []ItemID
	Successful bool
}

// Analysis is the result of the postmortem pass over one run's trace.
type Analysis struct {
	// From and To delimit the analysis window on the runtime clock.
	From, To time.Duration

	// All is the footprint of every live item (what the application
	// actually held). Wasted covers only items classified unsuccessful.
	// IGC is the Ideal Garbage Collector bound: successful items only,
	// each live exactly from allocation to its last use (§4: IGC
	// "eliminate[s] all unnecessary computations ... and associated
	// memory usage"; it requires future knowledge and is not realizable).
	All, Wasted, IGC Footprint

	// WastedMemPct is the percentage of the total memory integral spent
	// on items that never reached the end of the pipeline.
	WastedMemPct float64

	// TotalCompute is the work done by all tasks (execution time
	// excluding blocking and throttle sleep). WastedCompute is the part
	// spent on iterations whose produced items were all dropped.
	TotalCompute, WastedCompute time.Duration
	WastedCompPct               float64

	// Outputs is the number of pipeline outputs (displayed frames) in
	// the window; OutputTimes their runtime-clock times.
	Outputs     int
	OutputTimes []time.Duration
	// ThroughputFPS is Outputs divided by the window length.
	ThroughputFPS float64
	// LatencyMean/LatencyStd summarize per-output pipeline latency: the
	// time from the allocation of the earliest source item in the
	// output's provenance to the output emit. LatencyP50/P95/P99 are the
	// corresponding percentiles.
	LatencyMean, LatencyStd            time.Duration
	LatencyP50, LatencyP95, LatencyP99 time.Duration
	Latencies                          []time.Duration
	// Jitter is the standard deviation of successive output gaps.
	Jitter time.Duration

	// Item population counts over the whole run (not window-clipped).
	ItemsTotal, ItemsSuccessful, ItemsWasted int
	Gets, Skips                              int

	// Items maps every item id to its reconstructed lifecycle.
	Items map[ItemID]*ItemInfo
}

// AnalyzeOptions tunes the postmortem pass.
type AnalyzeOptions struct {
	// From/To delimit the analysis window. A zero To means the time of
	// the last event.
	From, To time.Duration
}

// Analyze runs the postmortem analysis over a recorder's events.
func Analyze(r *Recorder, opt AnalyzeOptions) (*Analysis, error) {
	return AnalyzeEvents(r.Events(), opt)
}

// AnalyzeEvents runs the postmortem analysis over an explicit event list.
func AnalyzeEvents(events []Event, opt AnalyzeOptions) (*Analysis, error) {
	end := opt.To
	for _, ev := range events {
		if ev.At > end {
			end = ev.At
		}
	}
	if opt.To == 0 {
		// Default window covers every event; +1ns keeps the half-open
		// interval from excluding events at exactly the last instant.
		opt.To = end + 1
	}
	if opt.To <= opt.From {
		return nil, fmt.Errorf("trace: empty analysis window [%v, %v)", opt.From, opt.To)
	}

	a := &Analysis{
		From:  opt.From,
		To:    opt.To,
		Items: make(map[ItemID]*ItemInfo),
	}

	// Pass 1: reconstruct item lifecycles and gather iteration/output
	// events.
	type iterRec struct {
		thread   graph.NodeID
		compute  time.Duration
		at       time.Duration
		produced []ItemID
	}
	var iters []iterRec
	type emitRec struct {
		at    time.Duration
		items []ItemID
	}
	var emits []emitRec

	for _, ev := range events {
		switch ev.Kind {
		case EvAlloc:
			if _, dup := a.Items[ev.Item]; dup {
				return nil, fmt.Errorf("trace: duplicate alloc for item %d", ev.Item)
			}
			a.Items[ev.Item] = &ItemInfo{
				ID:       ev.Item,
				Node:     ev.Node,
				Producer: ev.Thread,
				TS:       ev.TS,
				Size:     ev.Size,
				AllocAt:  ev.At,
				FreeAt:   end,
				Inputs:   ev.Items,
			}
		case EvGet:
			if it, ok := a.Items[ev.Item]; ok {
				it.Gets++
				if ev.At > it.LastGetAt {
					it.LastGetAt = ev.At
				}
				a.Gets++
			}
		case EvSkip:
			if it, ok := a.Items[ev.Item]; ok {
				it.Skips++
				a.Skips++
			}
		case EvFree:
			if it, ok := a.Items[ev.Item]; ok {
				if it.Freed {
					return nil, fmt.Errorf("trace: double free of item %d", ev.Item)
				}
				it.Freed = true
				it.FreeAt = ev.At
			}
		case EvIter:
			iters = append(iters, iterRec{thread: ev.Thread, compute: ev.Compute, at: ev.At, produced: ev.Items})
		case EvEmit:
			emits = append(emits, emitRec{at: ev.At, items: ev.Items})
		}
	}

	// Pass 2: success marking. Base: every item consumed by an emitted
	// output. Propagate backwards through provenance: if a derived item
	// is successful, the inputs that fed it are too.
	var stack []ItemID
	mark := func(id ItemID) {
		if it, ok := a.Items[id]; ok && !it.Successful {
			it.Successful = true
			stack = append(stack, id)
		}
	}
	for _, e := range emits {
		for _, id := range e.items {
			mark(id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range a.Items[id].Inputs {
			mark(in)
		}
	}

	for _, it := range a.Items {
		a.ItemsTotal++
		if it.Successful {
			a.ItemsSuccessful++
		} else {
			a.ItemsWasted++
		}
	}

	// Pass 3: footprint step series (all, wasted-only, IGC).
	a.All = buildFootprint(a.Items, opt, func(it *ItemInfo) (bool, time.Duration, time.Duration) {
		return true, it.AllocAt, it.FreeAt
	})
	a.Wasted = buildFootprint(a.Items, opt, func(it *ItemInfo) (bool, time.Duration, time.Duration) {
		return !it.Successful, it.AllocAt, it.FreeAt
	})
	a.IGC = buildFootprint(a.Items, opt, func(it *ItemInfo) (bool, time.Duration, time.Duration) {
		if !it.Successful {
			return false, 0, 0
		}
		last := it.LastGetAt
		if last < it.AllocAt {
			last = it.AllocAt
		}
		return true, it.AllocAt, last
	})
	if a.All.IntegralByteSec > 0 {
		a.WastedMemPct = 100 * a.Wasted.IntegralByteSec / a.All.IntegralByteSec
	}

	// Pass 4: computation accounting. An iteration's work is wasted when
	// it produced items and none of them (transitively) mattered.
	for _, it := range iters {
		a.TotalCompute += it.compute
		if len(it.produced) == 0 {
			continue // sink/bookkeeping iteration: work served consumed items
		}
		wasted := true
		for _, id := range it.produced {
			if info, ok := a.Items[id]; ok && info.Successful {
				wasted = false
				break
			}
		}
		if wasted {
			a.WastedCompute += it.compute
		}
	}
	if a.TotalCompute > 0 {
		a.WastedCompPct = 100 * float64(a.WastedCompute) / float64(a.TotalCompute)
	}

	// Pass 5: outputs, latency, throughput, jitter (window-clipped).
	rootMemo := make(map[ItemID]time.Duration)
	var rootAlloc func(id ItemID) time.Duration
	rootAlloc = func(id ItemID) time.Duration {
		if t, ok := rootMemo[id]; ok {
			return t
		}
		it, ok := a.Items[id]
		if !ok {
			return -1
		}
		best := it.AllocAt
		for _, in := range it.Inputs {
			if t := rootAlloc(in); t >= 0 && t < best {
				best = t
			}
		}
		rootMemo[id] = best
		return best
	}
	sort.Slice(emits, func(i, j int) bool { return emits[i].at < emits[j].at })
	for _, e := range emits {
		if e.at < opt.From || e.at >= opt.To {
			continue
		}
		a.Outputs++
		a.OutputTimes = append(a.OutputTimes, e.at)
		var root time.Duration = -1
		for _, id := range e.items {
			if t := rootAlloc(id); t >= 0 && (root < 0 || t < root) {
				root = t
			}
		}
		if root >= 0 {
			a.Latencies = append(a.Latencies, e.at-root)
		}
	}
	a.ThroughputFPS = stats.Throughput(a.Outputs, opt.To-opt.From)
	a.LatencyMean, a.LatencyStd = stats.DurationStats(a.Latencies)
	if len(a.Latencies) > 0 {
		samples := make([]float64, len(a.Latencies))
		for i, d := range a.Latencies {
			samples[i] = float64(d)
		}
		a.LatencyP50 = time.Duration(stats.Quantile(samples, 0.50))
		a.LatencyP95 = time.Duration(stats.Quantile(samples, 0.95))
		a.LatencyP99 = time.Duration(stats.Quantile(samples, 0.99))
	}
	a.Jitter = stats.Jitter(a.OutputTimes)

	return a, nil
}

// buildFootprint constructs one occupancy step series over the window.
// include returns whether an item participates and its live interval.
func buildFootprint(items map[ItemID]*ItemInfo, opt AnalyzeOptions,
	include func(*ItemInfo) (bool, time.Duration, time.Duration)) Footprint {

	type delta struct {
		at time.Duration
		d  int64
	}
	var deltas []delta
	for _, it := range items {
		ok, lo, hi := include(it)
		if !ok || hi <= lo {
			continue
		}
		deltas = append(deltas, delta{at: lo, d: it.Size}, delta{at: hi, d: -it.Size})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })

	series := stats.NewStepSeries()
	series.Record(0, 0)
	var level int64
	for _, d := range deltas {
		level += d.d
		series.Record(d.at, float64(level))
	}

	mean, std := series.TimeWeighted(opt.From, opt.To)
	return Footprint{
		MeanBytes:       mean,
		StdBytes:        std,
		PeakBytes:       series.Peak(opt.From, opt.To),
		IntegralByteSec: series.Integral(opt.From, opt.To) / float64(time.Second),
		Series:          series,
	}
}
