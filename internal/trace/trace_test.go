package trace

import (
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Append(Event{Kind: EvAlloc}) // must not panic
	if r.Len() != 0 {
		t.Error("nil recorder must report 0 events")
	}
	if r.Events() != nil {
		t.Error("nil recorder must return nil events")
	}
	if r.NewItemID() != NoItem {
		t.Error("nil recorder must hand out NoItem")
	}
}

func TestRecorderAppendAndSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Append(Event{Kind: EvAlloc, Item: 1})
	r.Append(Event{Kind: EvFree, Item: 1})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != EvAlloc || evs[1].Kind != EvFree {
		t.Fatalf("Events = %+v", evs)
	}
	// Snapshot must be independent of later appends.
	r.Append(Event{Kind: EvGet})
	if len(evs) != 2 {
		t.Error("snapshot must not grow")
	}
}

// TestRecorderFirstItemID pins the id sequence start: the first item of
// a run must be 1 (ids used to start at 2 because the counter was
// initialized to 1 and then pre-incremented).
func TestRecorderFirstItemID(t *testing.T) {
	r := NewRecorder()
	if id := r.NewItemID(); id != ItemID(1) {
		t.Fatalf("first NewItemID = %d, want 1", id)
	}
	if id := r.NewItemID(); id != ItemID(2) {
		t.Fatalf("second NewItemID = %d, want 2", id)
	}
}

// TestRecorderOrderAcrossChunks pins the Events() contract over the
// sharded implementation: append order is reconstructed exactly, even
// when the history spans many chunks.
func TestRecorderOrderAcrossChunks(t *testing.T) {
	r := NewRecorder()
	const n = 3*chunkSize + 17
	for i := 0; i < n; i++ {
		r.Append(Event{Kind: EvGet, Item: ItemID(i)})
	}
	evs := r.Events()
	if len(evs) != n {
		t.Fatalf("len = %d, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Item != ItemID(i) {
			t.Fatalf("event %d has item %d; append order not preserved", i, ev.Item)
		}
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
}

// TestRecorderCausalOrderConcurrent checks that causally ordered appends
// (alloc handed off to a consumer which then records a get) never invert
// in the merged Events() view, whatever shard each landed in.
func TestRecorderCausalOrderConcurrent(t *testing.T) {
	r := NewRecorder()
	const items = 200
	ch := make(chan ItemID, items)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			id := r.NewItemID()
			r.Append(Event{Kind: EvAlloc, Item: id})
			ch <- id
		}
		close(ch)
	}()
	go func() { // consumer
		defer wg.Done()
		for id := range ch {
			r.Append(Event{Kind: EvGet, Item: id})
		}
	}()
	wg.Wait()
	pos := map[ItemID]int{}
	for i, ev := range r.Events() {
		if ev.Kind == EvAlloc {
			pos[ev.Item] = i
		}
		if ev.Kind == EvGet {
			allocAt, ok := pos[ev.Item]
			if !ok {
				t.Fatalf("get of item %d before its alloc", ev.Item)
			}
			if allocAt >= i {
				t.Fatalf("alloc at %d not before get at %d", allocAt, i)
			}
		}
	}
}

func TestRecorderUniqueIDs(t *testing.T) {
	r := NewRecorder()
	const n = 64
	ids := make(chan ItemID, n*8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ids <- r.NewItemID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[ItemID]bool{}
	for id := range ids {
		if id == NoItem {
			t.Fatal("NewItemID returned NoItem")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EvAlloc: "alloc", EvGet: "get", EvSkip: "skip",
		EvFree: "free", EvIter: "iter", EvEmit: "emit",
		EventKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRecorderConcurrentAppend(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Append(Event{Kind: EvGet, At: time.Duration(g*100 + i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

var _ = graph.NodeID(0) // keep import honest in minimal builds
