package queue

import (
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/graph"
	"repro/internal/vt"
)

// TestQueueMatchesReferenceFIFO drives random put/get sequences against a
// slice-based reference: dequeue order is exactly enqueue order,
// occupancy always matches, and LastDequeued tracks the max dequeued
// timestamp.
func TestQueueMatchesReferenceFIFO(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := New(Config{Name: "prop", Clock: clock.NewReal()})
		q.AttachProducer(prod)
		q.AttachConsumer(cons, 1)

		type refItem struct {
			ts   vt.Timestamp
			size int64
		}
		var ref []refItem
		var nextTS vt.Timestamp
		maxDeq := vt.None

		for round := 0; round < 1500; round++ {
			switch op := rng.Intn(10); {
			case op < 5: // put
				nextTS++
				size := int64(rng.Intn(500) + 1)
				if _, err := q.Put(prod, &Item{TS: nextTS, Size: size}); err != nil {
					t.Fatalf("seed %d: put: %v", seed, err)
				}
				ref = append(ref, refItem{nextTS, size})

			case op < 9: // get (only when the reference is non-empty:
				// a blocking get on an empty queue would deadlock a
				// single-threaded property test)
				if len(ref) == 0 {
					continue
				}
				res, err := q.Get(cons)
				if err != nil {
					t.Fatalf("seed %d: get: %v", seed, err)
				}
				want := ref[0]
				ref = ref[1:]
				if res.Item.TS != want.ts || res.Item.Size != want.size {
					t.Fatalf("seed %d: dequeued %v/%d, want %v/%d",
						seed, res.Item.TS, res.Item.Size, want.ts, want.size)
				}
				if res.Item.TS > maxDeq {
					maxDeq = res.Item.TS
				}

			default: // audit
				items, bytes := q.Occupancy()
				var refBytes int64
				for _, it := range ref {
					refBytes += it.size
				}
				if items != len(ref) || bytes != refBytes {
					t.Fatalf("seed %d: occupancy %d/%d vs reference %d/%d",
						seed, items, bytes, len(ref), refBytes)
				}
				if q.LastDequeued() != maxDeq {
					t.Fatalf("seed %d: LastDequeued %v vs %v", seed, q.LastDequeued(), maxDeq)
				}
			}
		}
		if q.Puts() != int64(nextTS) {
			t.Fatalf("seed %d: Puts %d vs %d", seed, q.Puts(), nextTS)
		}
	}
}

var _ = graph.ConnID(0)
