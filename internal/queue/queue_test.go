package queue

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/graph"
	"repro/internal/vt"
)

const (
	prod = graph.ConnID(0)
	cons = graph.ConnID(1)
)

func newTestQueue(capacity int) *Queue {
	q := New(Config{Name: "q", Clock: clock.NewReal(), Capacity: capacity})
	q.AttachProducer(prod)
	q.AttachConsumer(cons, 1)
	return q
}

func TestFIFOOrder(t *testing.T) {
	q := newTestQueue(0)
	for ts := vt.Timestamp(1); ts <= 5; ts++ {
		if _, err := q.Put(prod, &Item{TS: ts, Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	for want := vt.Timestamp(1); want <= 5; want++ {
		res, err := q.Get(cons)
		if err != nil {
			t.Fatal(err)
		}
		if res.Item.TS != want {
			t.Fatalf("dequeued %v, want %v", res.Item.TS, want)
		}
	}
	if n, b := q.Occupancy(); n != 0 || b != 0 {
		t.Fatalf("occupancy = %d/%d", n, b)
	}
	if q.LastDequeued() != 5 {
		t.Fatalf("LastDequeued = %v", q.LastDequeued())
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	q := newTestQueue(0)
	got := make(chan vt.Timestamp, 1)
	go func() {
		res, err := q.Get(cons)
		if err != nil {
			got <- vt.None
			return
		}
		got <- res.Item.TS
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := q.Put(prod, &Item{TS: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case ts := <-got:
		if ts != 3 {
			t.Fatalf("got %v", ts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never woke")
	}
}

func TestGetReportsBlockedTime(t *testing.T) {
	q := newTestQueue(0)
	done := make(chan GetResult, 1)
	go func() {
		res, _ := q.Get(cons)
		done <- res
	}()
	time.Sleep(20 * time.Millisecond)
	q.Put(prod, &Item{TS: 1})
	if res := <-done; res.Blocked < 10*time.Millisecond {
		t.Fatalf("Blocked = %v", res.Blocked)
	}
}

func TestCapacityBlocksPut(t *testing.T) {
	q := newTestQueue(1)
	q.Put(prod, &Item{TS: 1})
	unblocked := make(chan struct{})
	go func() {
		q.Put(prod, &Item{TS: 2})
		close(unblocked)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-unblocked:
		t.Fatal("put must block while full")
	default:
	}
	if _, err := q.Get(cons); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("put never unblocked")
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	q := newTestQueue(0)
	q.Put(prod, &Item{TS: 1})
	q.Close()
	if res, err := q.Get(cons); err != nil || res.Item.TS != 1 {
		t.Fatalf("drain after close: %v/%v", res, err)
	}
	if _, err := q.Get(cons); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := q.Put(prod, &Item{TS: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close err = %v", err)
	}
	if !q.Closed() {
		t.Error("Closed must report true")
	}
	q.Close() // idempotent
}

func TestCloseWakesBlockedGetter(t *testing.T) {
	q := newTestQueue(0)
	errs := make(chan error, 1)
	go func() {
		_, err := q.Get(cons)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake getter")
	}
}

func TestUnattachedConnections(t *testing.T) {
	q := newTestQueue(0)
	if _, err := q.Put(graph.ConnID(9), &Item{}); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("put err = %v", err)
	}
	if _, err := q.Get(graph.ConnID(9)); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("get err = %v", err)
	}
}

func TestOnFreeAndDrain(t *testing.T) {
	var mu sync.Mutex
	var freed []vt.Timestamp
	q := New(Config{Name: "q", Clock: clock.NewReal(), OnFree: func(it *Item, _ time.Duration) {
		mu.Lock()
		freed = append(freed, it.TS)
		mu.Unlock()
	}})
	q.AttachProducer(prod)
	q.AttachConsumer(cons, 1)
	q.Put(prod, &Item{TS: 1, Size: 5})
	q.Put(prod, &Item{TS: 2, Size: 5})
	q.Get(cons)
	if n := q.Drain(); n != 1 {
		t.Fatalf("Drain = %d, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(freed) != 2 || freed[0] != 1 || freed[1] != 2 {
		t.Fatalf("freed = %v", freed)
	}
	if n, b := q.Occupancy(); n != 0 || b != 0 {
		t.Fatalf("occupancy = %d/%d", n, b)
	}
}

func TestEachItemDeliveredOnce(t *testing.T) {
	q := New(Config{Name: "q", Clock: clock.NewReal()})
	q.AttachProducer(prod)
	consumers := []graph.ConnID{10, 11, 12}
	for _, c := range consumers {
		q.AttachConsumer(c, 1)
	}
	const n = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ts := vt.Timestamp(1); ts <= n; ts++ {
			if _, err := q.Put(prod, &Item{TS: ts, Size: 1}); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		q.Close()
	}()
	var mu sync.Mutex
	seen := map[vt.Timestamp]int{}
	for _, c := range consumers {
		wg.Add(1)
		go func(c graph.ConnID) {
			defer wg.Done()
			for {
				res, err := q.Get(c)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				mu.Lock()
				seen[res.Item.TS]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("delivered %d distinct items, want %d", len(seen), n)
	}
	for ts, count := range seen {
		if count != 1 {
			t.Fatalf("item %v delivered %d times", ts, count)
		}
	}
	if q.Puts() != n {
		t.Fatalf("Puts = %d", q.Puts())
	}
}
