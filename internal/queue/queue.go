// Package queue implements the Stampede queue abstraction: a timestamped
// FIFO buffer. Unlike channels — where every consumer connection sees
// every item and may skip stale ones — a queue hands each item to exactly
// one consumer, in put order: the work-queue pattern used for records that
// must not be lost (the tracker pipeline's decision records in Figure 1).
//
// Queues participate in ARU exactly like channels: they are graph nodes
// with a backwardSTP vector and relay summary-STP feedback between their
// consumers and producers; they merely have trivial garbage-collection
// behaviour (an item is reclaimed the moment it is dequeued).
//
// Queue is a buffer.Buffer backend (registered as "queue"): the condvar
// pair, clock-aware waits, attachment maps, capacity blocking, and
// puts/frees/liveBytes accounting live in the embedded buffer.Base; this
// package adds only the FIFO discipline — a head-indexed slice whose
// dequeues advance head instead of re-slicing, reusing the backing array
// once drained so a steady-state queue stops allocating.
package queue

import (
	"fmt"
	"time"

	"repro/internal/buffer"
	"repro/internal/graph"
	"repro/internal/vt"
)

// Errors returned by queue operations. They alias the shared buffer
// errors, so errors.Is matches across packages.
var (
	// ErrClosed reports an operation on a closed queue.
	ErrClosed = buffer.ErrClosed
	// ErrNotAttached reports use of an unattached connection.
	ErrNotAttached = buffer.ErrNotAttached
)

// Item is one queued element (the shared buffer item type).
type Item = buffer.Item

// Config configures a queue.
type Config = buffer.Config

// GetResult is the outcome of a dequeue.
type GetResult = buffer.GetResult

func init() {
	buffer.Register("queue", buffer.Backend{
		New:  func(cfg Config) (buffer.Buffer, error) { return New(cfg), nil },
		Caps: caps,
	})
}

var caps = buffer.Caps{
	Discipline: buffer.FIFO,
	TryGet:     true,
}

// Queue is a FIFO of timestamped items, safe for concurrent use.
type Queue struct {
	buffer.Base

	// items and head are guarded by Base.Mu.
	items   []*Item
	head    int // index of the next item to dequeue
	lastDeq vt.Timestamp
}

// New creates a queue.
func New(cfg Config) *Queue {
	q := &Queue{lastDeq: vt.None}
	q.Base.Init(cfg, q.queued)
	return q
}

// queued returns the number of items currently buffered.
func (q *Queue) queued() int { return len(q.items) - q.head }

// Caps reports the queue backend's capabilities.
func (q *Queue) Caps() buffer.Caps { return caps }

// AttachConsumer registers an input connection. Queues hand each item to
// exactly one consumer, so sliding windows are meaningless: window > 1 is
// rejected with ErrUnsupported.
func (q *Queue) AttachConsumer(conn graph.ConnID, window int) error {
	if window != 1 {
		return fmt.Errorf("%w: window width %d on FIFO queue %q", buffer.ErrUnsupported, window, q.Name())
	}
	q.Mu.Lock()
	defer q.Mu.Unlock()
	q.AttachConsumerLocked(conn, 1)
	return nil
}

// DetachConsumer removes a consumer connection.
func (q *Queue) DetachConsumer(conn graph.ConnID) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	delete(q.Consumers, conn)
}

// FailProducer removes a producer attachment that failed permanently.
// Once every producer has failed, consumers drain the remaining items
// and then report ErrPeerFailed instead of blocking forever.
func (q *Queue) FailProducer(conn graph.ConnID) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if q.FailProducerLocked(conn) {
		q.BroadcastConsumersLocked()
	}
}

// FailConsumer removes a consumer attachment that failed permanently.
// Once every consumer has failed, producers blocked on capacity report
// ErrPeerFailed (nothing will ever be dequeued again).
func (q *Queue) FailConsumer(conn graph.ConnID) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if _, ok := q.Consumers[conn]; !ok {
		return
	}
	delete(q.Consumers, conn)
	q.MarkConsumerFailedLocked()
	if q.ConsumersExhaustedLocked() {
		q.BroadcastFullLocked()
	}
}

// Put enqueues an item, blocking while a bounded queue is full. The
// returned duration is time spent blocked.
func (q *Queue) Put(conn graph.ConnID, it *Item) (time.Duration, error) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if err := q.CheckProducerLocked(conn); err != nil {
		return 0, err
	}
	blocked, err := q.AwaitCapacityLocked()
	if err != nil {
		return blocked, err
	}
	if q.ClosedLocked() {
		return blocked, ErrClosed
	}
	q.items = append(q.items, it)
	q.AccountPutLocked(it)
	// One item: wake exactly one (interchangeable) consumer.
	q.SignalConsumerLocked()
	return blocked, nil
}

// PutBatch enqueues items in order under one lock acquisition, stopping
// at the first failure. Consumer wakeups are batched — min(k, waiters)
// signals for a k-item batch — and when a bounded queue fills mid-batch
// the applied prefix is published (and consumers signaled) before the
// producer parks, so consumers can drain the capacity the batch needs.
func (q *Queue) PutBatch(conn graph.ConnID, items []*Item) (int, time.Duration, error) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if err := q.CheckProducerLocked(conn); err != nil {
		return 0, 0, err
	}
	var blocked time.Duration
	applied, flushed := 0, 0
	flush := func() {
		if applied > flushed {
			q.AccountPutBatchLocked(q.items[len(q.items)-(applied-flushed):])
			q.SignalConsumersLocked(applied - flushed)
			flushed = applied
		}
	}
	var err error
	for _, it := range items {
		if q.SealedLocked() {
			err = fmt.Errorf("%w: put into sealed %q", buffer.ErrDraining, q.Name())
			break
		}
		if q.AtCapacityLocked() {
			flush()
			var d time.Duration
			d, err = q.AwaitCapacityLocked()
			blocked += d
			if err != nil {
				break
			}
		}
		if q.ClosedLocked() {
			err = ErrClosed
			break
		}
		q.items = append(q.items, it)
		applied++
	}
	flush()
	return applied, blocked, err
}

// Get dequeues the oldest item, blocking until one is available. A closed
// queue drains remaining items before reporting ErrClosed.
func (q *Queue) Get(conn graph.ConnID) (GetResult, error) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if _, err := q.ConsumerLocked(conn); err != nil {
		return GetResult{}, err
	}
	start := q.Clock().Now()
	for {
		if q.queued() > 0 {
			res := GetResult{Item: q.dequeueLocked(), Blocked: q.Clock().Now() - start}
			return res, nil
		}
		// Sealed and empty: the backlog is flushed and nothing new can
		// arrive — terminate like a close.
		if q.ClosedLocked() || q.SealedLocked() {
			return GetResult{Blocked: q.Clock().Now() - start}, ErrClosed
		}
		if q.ProducersExhaustedLocked() {
			return GetResult{Blocked: q.Clock().Now() - start}, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, q.Name())
		}
		q.WaitConsumer()
	}
}

// GetBatch dequeues up to len(dst) items in FIFO order under one lock
// acquisition, blocking only until the first is available.
func (q *Queue) GetBatch(conn graph.ConnID, dst []GetResult) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if _, err := q.ConsumerLocked(conn); err != nil {
		return 0, err
	}
	start := q.Clock().Now()
	for {
		if avail := q.queued(); avail > 0 {
			n := min(avail, len(dst))
			for i := 0; i < n; i++ {
				dst[i] = GetResult{Item: q.dequeueLocked()}
			}
			dst[0].Blocked = q.Clock().Now() - start
			return n, nil
		}
		if q.ClosedLocked() || q.SealedLocked() {
			return 0, ErrClosed
		}
		if q.ProducersExhaustedLocked() {
			return 0, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, q.Name())
		}
		q.WaitConsumer()
	}
}

// TryGet is the non-blocking Get: ok is false when the queue is empty.
func (q *Queue) TryGet(conn graph.ConnID) (res GetResult, ok bool, err error) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if _, err := q.ConsumerLocked(conn); err != nil {
		return GetResult{}, false, err
	}
	if q.queued() == 0 {
		if q.ClosedLocked() || q.SealedLocked() {
			return GetResult{}, false, ErrClosed
		}
		if q.ProducersExhaustedLocked() {
			return GetResult{}, false, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, q.Name())
		}
		return GetResult{}, false, nil
	}
	return GetResult{Item: q.dequeueLocked()}, true, nil
}

// GetAt is unsupported: a FIFO queue cannot consume by timestamp.
func (q *Queue) GetAt(conn graph.ConnID, ts vt.Timestamp) (GetResult, error) {
	return GetResult{}, fmt.Errorf("%w: GetAt on FIFO queue %q", buffer.ErrUnsupported, q.Name())
}

// dequeueLocked removes and accounts the head item, returning a snapshot.
// The item's storage leaves the queue here: OnFree observes it, one
// capacity waiter is woken (matching a channel free), and the item goes
// back to the pool — so the snapshot is taken before the recycle zeroes
// it.
func (q *Queue) dequeueLocked() Item {
	it := q.items[q.head]
	q.items[q.head] = nil // release the reference for GC
	q.head++
	if q.head == len(q.items) {
		// Fully drained: rewind and reuse the backing array.
		q.items = q.items[:0]
		q.head = 0
	}
	if it.TS > q.lastDeq {
		q.lastDeq = it.TS
	}
	res := buffer.Snapshot(it)
	q.NoteDeliveredLocked()
	q.AccountFreeLocked(it)
	q.RecycleLocked(it)
	return res
}

// WouldBeDead reports false in normal operation: queue items are handed
// to exactly one consumer and never skipped, so no put is ever dead on
// arrival. The one exception is a dead audience — every consumer failed
// permanently — when any enqueue is wasted by definition.
func (q *Queue) WouldBeDead(ts vt.Timestamp) bool {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	return q.ConsumersExhaustedLocked()
}

// Close marks the queue closed; consumers drain remaining items, then see
// ErrClosed.
func (q *Queue) Close() {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if !q.MarkClosedLocked() {
		return
	}
	q.BroadcastLocked()
}

// Drain discards all queued items, reporting each to OnFree and counting
// it as explicitly shed. It is used at shutdown to account remaining
// storage.
func (q *Queue) Drain() int {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	n := q.queued()
	q.AccountShedLocked(int64(n))
	for _, it := range q.items[q.head:] {
		q.AccountFreeLocked(it)
		q.RecycleLocked(it)
	}
	q.items = nil
	q.head = 0
	q.BroadcastFullLocked()
	return n
}

// Puts returns the cumulative number of enqueued items.
func (q *Queue) Puts() int64 {
	puts, _ := q.Stats()
	return puts
}

// LastDequeued returns the highest timestamp dequeued so far, or vt.None.
func (q *Queue) LastDequeued() vt.Timestamp {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	return q.lastDeq
}
