// Package queue implements the Stampede queue abstraction: a timestamped
// FIFO buffer. Unlike channels — where every consumer connection sees
// every item and may skip stale ones — a queue hands each item to exactly
// one consumer, in put order: the work-queue pattern used for records that
// must not be lost (the tracker pipeline's decision records in Figure 1).
//
// Queues participate in ARU exactly like channels: they are graph nodes
// with a backwardSTP vector and relay summary-STP feedback between their
// consumers and producers; they merely have trivial garbage-collection
// behaviour (an item is reclaimed the moment it is dequeued).
package queue

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/vt"
)

// Errors returned by queue operations.
var (
	// ErrClosed reports an operation on a closed queue.
	ErrClosed = errors.New("queue: closed")
	// ErrNotAttached reports use of an unattached connection.
	ErrNotAttached = errors.New("queue: connection not attached")
)

// Item is one queued element.
type Item struct {
	// TS is the producer-assigned virtual timestamp.
	TS vt.Timestamp
	// Payload is the application data.
	Payload any
	// Size is the logical size in bytes.
	Size int64
	// ID is the trace identity.
	ID trace.ItemID
}

// Config configures a queue.
type Config struct {
	// Name is the queue's system-wide unique name.
	Name string
	// Node is the queue's task-graph identity.
	Node graph.NodeID
	// Clock supplies time for blocking measurement and free events.
	Clock clock.Clock
	// Capacity bounds queued items; Put blocks while full. Zero means
	// unbounded.
	Capacity int
	// OnFree, if non-nil, observes each item as it is dequeued (its
	// storage leaves the queue).
	OnFree func(it *Item, at time.Duration)
}

// Queue is a FIFO of timestamped items, safe for concurrent use.
//
// Like channel.Channel, blocking is split across two condition
// variables: consumers waiting for work park on notEmpty (one Signal per
// enqueued item — queue consumers are interchangeable, so exactly one
// should wake), producers waiting for capacity park on notFull (one
// Signal per dequeue). The buffer is a head-indexed slice: dequeues
// advance head instead of re-slicing, and the backing array is reused
// once drained, so a steady-state queue stops allocating.
type Queue struct {
	cfg Config

	mu        sync.Mutex
	notEmpty  *sync.Cond // consumers: an item is available (or closed)
	notFull   *sync.Cond // producers: capacity freed (or closed/drained)
	items     []*Item
	head      int // index of the next item to dequeue
	consumers map[graph.ConnID]bool
	producers map[graph.ConnID]bool
	closed    bool
	puts      int64
	liveBytes int64
	lastDeq   vt.Timestamp
}

// New creates a queue.
func New(cfg Config) *Queue {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	q := &Queue{
		cfg:       cfg,
		consumers: make(map[graph.ConnID]bool),
		producers: make(map[graph.ConnID]bool),
		lastDeq:   vt.None,
	}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// wait parks the caller on the given condition variable, telling a
// discrete-event clock (if one is in use) that the goroutine is blocked
// so virtual time may advance.
func (q *Queue) wait(cond *sync.Cond) {
	if b, ok := q.cfg.Clock.(clock.Blocker); ok {
		b.BlockEnter()
		cond.Wait()
		b.BlockExit()
		return
	}
	cond.Wait()
}

// queued returns the number of items currently buffered.
func (q *Queue) queued() int { return len(q.items) - q.head }

// Name returns the queue's name.
func (q *Queue) Name() string { return q.cfg.Name }

// Node returns the queue's task-graph id.
func (q *Queue) Node() graph.NodeID { return q.cfg.Node }

// AttachProducer registers an output connection.
func (q *Queue) AttachProducer(conn graph.ConnID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.producers[conn] = true
}

// AttachConsumer registers an input connection.
func (q *Queue) AttachConsumer(conn graph.ConnID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.consumers[conn] = true
}

// Put enqueues an item, blocking while a bounded queue is full. The
// returned duration is time spent blocked.
func (q *Queue) Put(conn graph.ConnID, it *Item) (time.Duration, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.producers[conn] {
		return 0, fmt.Errorf("%w: producer %d on %q", ErrNotAttached, conn, q.cfg.Name)
	}
	var blocked time.Duration
	if q.cfg.Capacity > 0 {
		start := q.cfg.Clock.Now()
		for !q.closed && q.queued() >= q.cfg.Capacity {
			q.wait(q.notFull)
		}
		blocked = q.cfg.Clock.Now() - start
	}
	if q.closed {
		return blocked, ErrClosed
	}
	q.items = append(q.items, it)
	q.liveBytes += it.Size
	q.puts++
	// One item: wake exactly one (interchangeable) consumer.
	q.notEmpty.Signal()
	return blocked, nil
}

// GetResult is the outcome of a dequeue.
type GetResult struct {
	// Item is the dequeued element.
	Item *Item
	// Blocked is the time spent waiting for work.
	Blocked time.Duration
}

// Get dequeues the oldest item, blocking until one is available. A closed
// queue drains remaining items before reporting ErrClosed.
func (q *Queue) Get(conn graph.ConnID) (GetResult, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.consumers[conn] {
		return GetResult{}, fmt.Errorf("%w: consumer %d on %q", ErrNotAttached, conn, q.cfg.Name)
	}
	start := q.cfg.Clock.Now()
	for {
		if q.queued() > 0 {
			it := q.items[q.head]
			q.items[q.head] = nil // release the reference for GC
			q.head++
			if q.head == len(q.items) {
				// Fully drained: rewind and reuse the backing array.
				q.items = q.items[:0]
				q.head = 0
			}
			q.liveBytes -= it.Size
			if it.TS > q.lastDeq {
				q.lastDeq = it.TS
			}
			if q.cfg.OnFree != nil {
				q.cfg.OnFree(it, q.cfg.Clock.Now())
			}
			if q.cfg.Capacity > 0 {
				q.notFull.Signal() // one slot freed: one producer
			}
			return GetResult{Item: it, Blocked: q.cfg.Clock.Now() - start}, nil
		}
		if q.closed {
			return GetResult{Blocked: q.cfg.Clock.Now() - start}, ErrClosed
		}
		q.wait(q.notEmpty)
	}
}

// Close marks the queue closed; consumers drain remaining items, then see
// ErrClosed. Undequeued items at close are reported to OnFree as
// reclaimed.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Drain discards all queued items, reporting each to OnFree. It is used
// at shutdown to account remaining storage.
func (q *Queue) Drain() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.queued()
	for _, it := range q.items[q.head:] {
		q.liveBytes -= it.Size
		if q.cfg.OnFree != nil {
			q.cfg.OnFree(it, q.cfg.Clock.Now())
		}
	}
	q.items = nil
	q.head = 0
	q.notFull.Broadcast()
	return n
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Occupancy returns the current queued item count and bytes.
func (q *Queue) Occupancy() (items int, bytes int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued(), q.liveBytes
}

// Puts returns the cumulative number of enqueued items.
func (q *Queue) Puts() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.puts
}

// LastDequeued returns the highest timestamp dequeued so far, or vt.None.
func (q *Queue) LastDequeued() vt.Timestamp {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lastDeq
}
