package tracker

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCalibrate is a tuning aid, enabled with TRACKER_CALIBRATE=1. It
// sweeps bus bandwidth and prints the headline metrics per policy.
func TestCalibrate(t *testing.T) {
	if os.Getenv("TRACKER_CALIBRATE") == "" {
		t.Skip("set TRACKER_CALIBRATE=1 to run the calibration sweep")
	}
	for _, hosts := range []int{1, 5} {
		for _, bus := range []float64{120e6} {
			for _, pc := range []struct {
				name   string
				policy core.Policy
			}{
				{"no-aru", core.PolicyOff()},
				{"aru-min", core.PolicyMin()},
				{"aru-max", core.PolicyMax()},
			} {
				app, err := New(Config{Hosts: hosts, Seed: 42, Policy: pc.policy, BusBytesPerSec: bus})
				if err != nil {
					t.Fatal(err)
				}
				a, err := app.Run(60*time.Second, 10*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("h=%d bus=%3.0fMB/s %-8s mem=%6.2fMB igc=%5.2fMB wastedMem=%5.1f%% wastedComp=%5.1f%% fps=%.2f lat=%dms jit=%dms",
					hosts, bus/1e6, pc.name, a.All.MeanBytes/(1<<20), a.IGC.MeanBytes/(1<<20),
					a.WastedMemPct, a.WastedCompPct, a.ThroughputFPS,
					a.LatencyMean.Milliseconds(), a.Jitter.Milliseconds())
			}
		}
	}
}
