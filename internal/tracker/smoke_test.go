package tracker

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestSmokeShapes runs each policy briefly at high scale and prints the
// headline metrics; it asserts only the coarsest orderings. The full
// shape assertions live in integration_test.go and the bench harness.
func TestSmokeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run skipped in -short")
	}
	type result struct {
		name          string
		meanMB, igcMB float64
		wastedMemPct  float64
		wastedCompPct float64
		fps           float64
		latency       time.Duration
	}
	var results []result
	for _, pc := range []struct {
		name   string
		policy core.Policy
	}{
		{"no-aru", core.PolicyOff()},
		{"aru-min", core.PolicyMin()},
		{"aru-max", core.PolicyMax()},
	} {
		app, err := New(Config{Hosts: 1, Seed: 42, Policy: pc.policy})
		if err != nil {
			t.Fatal(err)
		}
		a, err := app.Run(60*time.Second, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, result{
			name:          pc.name,
			meanMB:        a.All.MeanBytes / (1 << 20),
			igcMB:         a.IGC.MeanBytes / (1 << 20),
			wastedMemPct:  a.WastedMemPct,
			wastedCompPct: a.WastedCompPct,
			fps:           a.ThroughputFPS,
			latency:       a.LatencyMean,
		})
	}
	for _, r := range results {
		t.Logf("%-8s mem=%6.2fMB igc=%5.2fMB wastedMem=%5.1f%% wastedComp=%5.1f%% fps=%.2f lat=%v",
			r.name, r.meanMB, r.igcMB, r.wastedMemPct, r.wastedCompPct, r.fps, r.latency)
	}
	noARU, min, max := results[0], results[1], results[2]
	if min.meanMB >= noARU.meanMB {
		t.Errorf("ARU-min footprint %.2f must beat No-ARU %.2f", min.meanMB, noARU.meanMB)
	}
	if max.meanMB >= min.meanMB {
		t.Errorf("ARU-max footprint %.2f must beat ARU-min %.2f", max.meanMB, min.meanMB)
	}
	if min.wastedMemPct >= noARU.wastedMemPct {
		t.Errorf("ARU-min wasted %.1f%% must beat No-ARU %.1f%%", min.wastedMemPct, noARU.wastedMemPct)
	}
}
