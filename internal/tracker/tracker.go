// Package tracker implements the paper's evaluation workload: the
// color-based people tracker developed at Compaq CRL (Rehg et al., CVPR
// 1997) as instantiated in Figure 5 of the paper.
//
// Five tasks executed by six threads, interconnected by nine channels:
//
//		Digitizer ──C1──▶ MotionMask ──C5──▶ TargetDetect1 ──C8──▶ GUI
//		     │    ──C2──▶ Histogram  ──C6──▶ TargetDetect2 ──C9──▶ GUI
//		     │    ──C3──▶ TargetDetect1     (C7: Histogram ▶ both TDs)
//		     └────C4──▶ TargetDetect2
//
//	  - The Digitizer emits 738 kB video frames at camera rate (~30 fps).
//	  - The Motion Mask (Change Detection) task differences the current
//	    frame against the background, producing 246 kB masks.
//	  - The Histogram task builds a 981 kB color histogram model per frame.
//	  - Two Target Detection threads — one per color model — combine the
//	    freshest frame, mask, and histogram model into a 68-byte location
//	    record. The two models have different runtime complexity (paper
//	    §3.1: computation is data dependent), which is exactly what makes
//	    the min and max compression operators behave differently.
//	  - The GUI consumes both location streams and displays the result;
//	    each display is one pipeline output.
//
// The vision kernels are replaced by synthetic compute with the paper's
// item sizes, stage-period ratios, data-dependent complexity (a bounded
// random walk per frame), and seeded log-normal execution noise (the
// paper's OS-scheduling variance). ARU never inspects pixels; it reacts
// to periods, sizes, and topology, all of which are preserved.
package tracker

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vt"
)

// Sizes are the per-item logical sizes reported in §5 of the paper.
type Sizes struct {
	Frame     int64 // Digitizer output
	Mask      int64 // Background / Motion Mask output
	Histogram int64 // Histogram model output
	Location  int64 // Target Detection output
}

// PaperSizes returns the sizes from the paper: 738 kB, 246 kB, 981 kB,
// 68 B.
func PaperSizes() Sizes {
	return Sizes{Frame: 738 << 10, Mask: 246 << 10, Histogram: 981 << 10, Location: 68}
}

// Timing holds the base execution periods of each stage, in paper-scale
// (wall-clock of the original testbed) units. The defaults make Target
// Detection the bottleneck, as in the paper, with the two color models
// deliberately asymmetric.
type Timing struct {
	// CameraPeriod is the digitizer's intrinsic frame interval.
	CameraPeriod time.Duration
	// DigitizeCost is the digitizer's per-frame busy time.
	DigitizeCost time.Duration
	// MaskCost is the motion-mask task's base compute per frame.
	MaskCost time.Duration
	// HistogramCost is the histogram task's base compute per frame.
	HistogramCost time.Duration
	// DetectCost1 and DetectCost2 are the two target detectors' base
	// compute per frame (model 2 is the heavier color model).
	DetectCost1, DetectCost2 time.Duration
	// GUICost is the display task's per-result compute.
	GUICost time.Duration
	// NoiseSigma is the σ of the log-normal multiplicative noise applied
	// to every compute span (OS-scheduling variance, §3.3.2).
	NoiseSigma float64
	// ComplexityAmplitude bounds the data-dependent complexity walk:
	// each frame's content factor stays within [1-A, 1+A].
	ComplexityAmplitude float64
}

// DefaultTiming returns stage periods modeled on the tracker's measured
// behaviour (≈3–5 fps end to end, 350–660 ms latency).
func DefaultTiming() Timing {
	return Timing{
		CameraPeriod:        33 * time.Millisecond,
		DigitizeCost:        8 * time.Millisecond,
		MaskCost:            85 * time.Millisecond,
		HistogramCost:       120 * time.Millisecond,
		DetectCost1:         185 * time.Millisecond,
		DetectCost2:         205 * time.Millisecond,
		GUICost:             18 * time.Millisecond,
		NoiseSigma:          0.12,
		ComplexityAmplitude: 0.18,
	}
}

// Config assembles one tracker run.
type Config struct {
	// Hosts is 1 (paper configuration 1) or 5 (configuration 2). Other
	// positive values are allowed; placement round-robins the pipeline
	// stages.
	Hosts int
	// Scale selects the clock. Zero (the default) uses the
	// discrete-event virtual clock: runs complete as fast as the host
	// executes them with microsecond-exact virtual timing. A positive
	// Scale instead runs against the wall clock sped up Scale times
	// (Scale=1 is real time) — useful for demos, but subject to OS timer
	// granularity.
	Scale float64
	// Seed drives all synthetic randomness (per-thread streams are
	// derived from it).
	Seed int64
	// Policy is the ARU policy under test.
	Policy core.Policy
	// Collector is the GC strategy; nil means DGC as in the paper.
	Collector gc.Collector
	// Sizes and Timing default to the paper's values when zero.
	Sizes  Sizes
	Timing Timing
	// BusBytesPerSec is each host's memory-system bandwidth; 0 uses the
	// reproduction's calibrated default.
	BusBytesPerSec float64
	// PressureBytes scales bus costs by 1 + live/PressureBytes per host
	// (memory-pressure model); 0 uses the calibrated default, negative
	// disables it.
	PressureBytes int64
	// Link is the inter-host link; zero value uses Gigabit Ethernet.
	Link transport.LinkSpec
	// EliminateDeadComputations enables the §3.2 dead-timestamp
	// computation elimination: intermediate stages skip their compute
	// when every consumer of their outputs has already moved past the
	// timestamp they are about to process. The paper reports this
	// technique alone had "limited success" (upstream threads run ahead
	// of consumer guarantees); ablation ABL4 measures exactly that.
	EliminateDeadComputations bool
	// HotFactor, when > 1, multiplies DetectCost1 — an induced hot stage
	// (a color model whose compute blew up on the deployed content) used
	// by the elastic-recovery experiment (cmd/tracker -hotstage).
	HotFactor float64
	// Elastic, when non-nil, installs the elastic scheduler
	// (internal/sched) as a runtime control loop: the bottleneck stage
	// is replicated into a worker pool behind its buffers and drained
	// back when the load subsides. Nil (the default) runs no scheduler —
	// the baseline figures are untouched.
	Elastic *sched.Config
	// Metrics, when non-nil, enables the runtime's live metrics registry
	// (the elastic-recovery harness reads the scheduler's scale counters
	// through it).
	Metrics *metrics.Registry
}

// DefaultBusBytesPerSec is the calibrated per-host memory-system copy
// bandwidth. It is set low enough that a digitizer running at full camera
// rate (the No-ARU baseline) loads the shared memory system and slows the
// co-located detection stages — the causal path behind configuration 1's
// throughput loss in the paper.
const DefaultBusBytesPerSec = 120e6

// DefaultPressureBytes is the calibrated memory-pressure scale: a host
// holding this many live buffered bytes pays double per byte moved. It
// models the allocator/paging/cache degradation that made the paper's
// No-ARU configuration lose throughput on one node (§5.2).
const DefaultPressureBytes = 4 << 20

// withDefaults fills zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if cfg.Sizes == (Sizes{}) {
		cfg.Sizes = PaperSizes()
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.BusBytesPerSec == 0 {
		cfg.BusBytesPerSec = DefaultBusBytesPerSec
	}
	if cfg.PressureBytes == 0 {
		cfg.PressureBytes = DefaultPressureBytes
	} else if cfg.PressureBytes < 0 {
		cfg.PressureBytes = 0
	}
	if cfg.Link == (transport.LinkSpec{}) {
		cfg.Link = transport.GigabitEthernet
	}
	if cfg.Collector == nil {
		cfg.Collector = gc.NewDeadTimestamp()
	}
	return cfg
}

// App is a built tracker application.
type App struct {
	cfg      Config
	Runtime  *runtime.Runtime
	Recorder *trace.Recorder
	Cluster  *transport.Cluster
}

// Frame is the digitizer's payload: a synthetic stand-in for the 738 kB
// image, carrying the data-dependent complexity factor downstream stages
// scale their work by.
type Frame struct {
	Seq        int64
	Complexity float64
}

// Mask is the motion-mask payload.
type Mask struct {
	FrameTS    vt.Timestamp
	Complexity float64
}

// Model is the histogram-model payload.
type Model struct {
	FrameTS    vt.Timestamp
	Complexity float64
}

// Location is the target-detection payload.
type Location struct {
	FrameTS vt.Timestamp
	ModelID int
	X, Y    float64
	Found   bool
}

// hostPlan maps the six threads onto hosts. With one host everything is
// co-located (configuration 1); with five, each *task* gets its own host
// and the two detection threads share one, as in the paper's
// configuration 2.
type hostPlan struct {
	digitizer, mask, histogram, detect1, detect2, gui int
}

func planHosts(n int) hostPlan {
	if n <= 1 {
		return hostPlan{}
	}
	at := func(i int) int { return i % n }
	return hostPlan{
		digitizer: at(0), mask: at(1), histogram: at(2),
		detect1: at(3), detect2: at(3), gui: at(4),
	}
}

// New builds the tracker application (graph declared, not yet started).
func New(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	var clk clock.Clock
	if cfg.Scale > 0 {
		clk = clock.NewScaled(clock.NewReal(), cfg.Scale)
	} else {
		clk = clock.NewVirtual()
	}
	cluster := transport.NewCluster(clk, transport.ClusterSpec{
		Hosts: cfg.Hosts, Link: cfg.Link, BusBytesPerSec: cfg.BusBytesPerSec,
	})
	rec := trace.NewRecorder()
	opts := runtime.Options{
		Clock: clk, Cluster: cluster, Collector: cfg.Collector,
		ARU: cfg.Policy, Recorder: rec, PressureBytes: cfg.PressureBytes,
		Metrics: cfg.Metrics,
	}
	if cfg.Elastic != nil {
		opts.ControlLoops = append(opts.ControlLoops, sched.Loop(*cfg.Elastic))
	}
	rt := runtime.New(opts)
	app := &App{cfg: cfg, Runtime: rt, Recorder: rec, Cluster: cluster}
	if err := app.build(); err != nil {
		return nil, err
	}
	return app, nil
}

// build declares the Figure 5 task graph and thread bodies.
func (a *App) build() error {
	cfg := a.cfg
	rt := a.Runtime
	hp := planHosts(cfg.Hosts)
	tm := cfg.Timing
	sz := cfg.Sizes

	// Channels live on their producer's host (paper §5, configuration 2).
	c1, err := rt.AddChannel("C1-frame-mask", hp.digitizer)
	if err != nil {
		return err
	}
	c2 := rt.MustAddChannel("C2-frame-hist", hp.digitizer)
	c3 := rt.MustAddChannel("C3-frame-td1", hp.digitizer)
	c4 := rt.MustAddChannel("C4-frame-td2", hp.digitizer)
	c5 := rt.MustAddChannel("C5-mask-td1", hp.mask)
	c6 := rt.MustAddChannel("C6-mask-td2", hp.mask)
	c7 := rt.MustAddChannel("C7-model", hp.histogram) // shared by both TDs
	c8 := rt.MustAddChannel("C8-loc1", hp.detect1)
	c9 := rt.MustAddChannel("C9-loc2", hp.detect2)

	noise := func(rng *rand.Rand) float64 {
		if tm.NoiseSigma <= 0 {
			return 1
		}
		return math.Exp(rng.NormFloat64() * tm.NoiseSigma)
	}
	scaleDur := func(d time.Duration, f float64) time.Duration {
		return time.Duration(float64(d) * f)
	}

	// --- Digitizer -------------------------------------------------------
	digitizer := rt.MustAddThread("digitizer", hp.digitizer, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed))
		outs := threadOuts(ctx)
		complexity := 1.0
		var ts vt.Timestamp
		for !ctx.Stopped() {
			ts++
			// Data-dependent content: bounded random walk.
			complexity += rng.NormFloat64() * 0.05
			lo, hi := 1-tm.ComplexityAmplitude, 1+tm.ComplexityAmplitude
			if complexity < lo {
				complexity = lo
			}
			if complexity > hi {
				complexity = hi
			}
			ctx.Compute(scaleDur(tm.DigitizeCost, noise(rng)))
			frame := Frame{Seq: int64(ts), Complexity: complexity}
			for _, out := range outs {
				if err := ctx.Put(out, ts, frame, sz.Frame); err != nil {
					return err
				}
			}
			// The camera paces the digitizer even without ARU.
			ctx.Idle(tm.CameraPeriod - ctx.Elapsed())
			ctx.Sync()
		}
		return nil
	})

	// --- Motion Mask (Change Detection) ----------------------------------
	// deadOnArrival implements the optional §3.2 computation elimination:
	// true when every output's consumers have already passed ts.
	deadOnArrival := func(ctx *runtime.Ctx, ts vt.Timestamp, outs []*runtime.OutPort) bool {
		if !cfg.EliminateDeadComputations {
			return false
		}
		for _, out := range outs {
			if ctx.ShouldProduce(out, ts) {
				return false
			}
		}
		return true
	}

	maskThread := rt.MustAddThread("motion-mask", hp.mask, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		in := threadIns(ctx)[0]
		outs := threadOuts(ctx)
		for {
			msg, err := ctx.GetLatest(in)
			if err != nil {
				return err
			}
			if deadOnArrival(ctx, msg.TS, outs) {
				ctx.Sync()
				continue
			}
			frame := msg.Payload.(Frame)
			ctx.Compute(scaleDur(tm.MaskCost, frame.Complexity*noise(rng)))
			mask := Mask{FrameTS: msg.TS, Complexity: frame.Complexity}
			for _, out := range outs {
				if err := ctx.Put(out, msg.TS, mask, sz.Mask); err != nil {
					return err
				}
			}
			ctx.Sync()
		}
	})

	// --- Histogram --------------------------------------------------------
	histThread := rt.MustAddThread("histogram", hp.histogram, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 2))
		in := threadIns(ctx)[0]
		out := threadOuts(ctx)[0]
		for {
			msg, err := ctx.GetLatest(in)
			if err != nil {
				return err
			}
			if deadOnArrival(ctx, msg.TS, threadOuts(ctx)) {
				ctx.Sync()
				continue
			}
			frame := msg.Payload.(Frame)
			ctx.Compute(scaleDur(tm.HistogramCost, frame.Complexity*noise(rng)))
			model := Model{FrameTS: msg.TS, Complexity: frame.Complexity}
			if err := ctx.Put(out, msg.TS, model, sz.Histogram); err != nil {
				return err
			}
			ctx.Sync()
		}
	})

	// --- Target Detection (two color models) -----------------------------
	makeDetector := func(id int, base time.Duration, seedOff int64) runtime.Body {
		return func(ctx *runtime.Ctx) error {
			rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
			ins := threadIns(ctx) // frame, mask, model — in wiring order
			out := threadOuts(ctx)[0]
			// A detection needs one mask and one model to exist; block
			// for the first of each, then track the pipeline off the
			// freshest frame and refresh mask/model opportunistically
			// (the real tracker reuses its current background and color
			// model between updates).
			maskMsg, err := ctx.GetLatest(ins[1])
			if err != nil {
				return err
			}
			modelMsg, err := ctx.GetLatest(ins[2])
			if err != nil {
				return err
			}
			for {
				frameMsg, err := ctx.GetLatest(ins[0])
				if err != nil {
					return err
				}
				if m, ok, err := ctx.TryGetLatest(ins[1]); err != nil {
					return err
				} else if ok {
					maskMsg = m
				} else {
					ctx.Reuse(maskMsg)
				}
				if m, ok, err := ctx.TryGetLatest(ins[2]); err != nil {
					return err
				} else if ok {
					modelMsg = m
				} else {
					ctx.Reuse(modelMsg)
				}
				frame := frameMsg.Payload.(Frame)
				ctx.Compute(scaleDur(base, frame.Complexity*noise(rng)))
				loc := Location{
					FrameTS: frameMsg.TS, ModelID: id,
					X: rng.Float64() * 640, Y: rng.Float64() * 480,
					Found: rng.Float64() < 0.85,
				}
				if err := ctx.Put(out, frameMsg.TS, loc, sz.Location); err != nil {
					return err
				}
				ctx.Sync()
			}
		}
	}
	detect1Cost := tm.DetectCost1
	if cfg.HotFactor > 1 {
		detect1Cost = scaleDur(detect1Cost, cfg.HotFactor)
	}
	td1 := rt.MustAddThread("target-detect-1", hp.detect1, makeDetector(1, detect1Cost, 3))
	td2 := rt.MustAddThread("target-detect-2", hp.detect2, makeDetector(2, tm.DetectCost2, 4))

	// --- GUI ---------------------------------------------------------------
	gui := rt.MustAddThread("gui", hp.gui, func(ctx *runtime.Ctx) error {
		rng := rand.New(rand.NewSource(cfg.Seed + 5))
		ins := threadIns(ctx)
		// The display waits for a fresh result from each color model
		// before refreshing — the paper's GUI "continually displays the
		// tracking result". Blocking on both streams is what exposes the
		// §5.2 buffer-residency effect: under ARU-max consumers wait on
		// empty buffers and items never linger, reducing latency at the
		// cost of throughput.
		for {
			if _, err := ctx.GetLatest(ins[0]); err != nil {
				return err
			}
			if _, err := ctx.GetLatest(ins[1]); err != nil {
				return err
			}
			ctx.Compute(scaleDur(tm.GUICost, noise(rng)))
			ctx.Emit()
			ctx.Sync()
		}
	})

	// --- Wiring (order matters for bodies indexing ins/outs) --------------
	digitizer.MustOutput(c1)
	digitizer.MustOutput(c2)
	digitizer.MustOutput(c3)
	digitizer.MustOutput(c4)

	maskThread.MustInput(c1)
	maskThread.MustOutput(c5)
	maskThread.MustOutput(c6)

	histThread.MustInput(c2)
	histThread.MustOutput(c7)

	td1.MustInput(c3) // frame
	td1.MustInput(c5) // mask
	td1.MustInput(c7) // model
	td1.MustOutput(c8)

	td2.MustInput(c4) // frame
	td2.MustInput(c6) // mask
	td2.MustInput(c7) // model
	td2.MustOutput(c9)

	gui.MustInput(c8)
	gui.MustInput(c9)

	return nil
}

// threadOuts and threadIns expose the declared ports to bodies in wiring
// order.
func threadOuts(ctx *runtime.Ctx) []*runtime.OutPort { return ctx.Outs() }
func threadIns(ctx *runtime.Ctx) []*runtime.InPort   { return ctx.Ins() }

// Run executes the tracker for d of virtual (paper-scale) time and
// returns the postmortem analysis over the window after the warmup prefix
// is discarded.
func (a *App) Run(d, warmup time.Duration) (*trace.Analysis, error) {
	if warmup >= d {
		return nil, fmt.Errorf("tracker: warmup %v must be shorter than run %v", warmup, d)
	}
	if err := a.Runtime.RunFor(d); err != nil {
		return nil, err
	}
	return trace.Analyze(a.Recorder, trace.AnalyzeOptions{From: warmup, To: d})
}
