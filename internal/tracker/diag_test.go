package tracker

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/trace"
)

// TestDiagPeriods prints per-thread effective periods, compute, and
// blocked time. Enabled with TRACKER_DIAG=1.
func TestDiagPeriods(t *testing.T) {
	if os.Getenv("TRACKER_DIAG") == "" {
		t.Skip("set TRACKER_DIAG=1")
	}
	for _, pc := range []struct {
		name   string
		policy core.Policy
	}{
		{"no-aru", core.PolicyOff()},
		{"aru-min", core.PolicyMin()},
		{"aru-max", core.PolicyMax()},
	} {
		app, err := New(Config{Hosts: 1, Seed: 42, Policy: pc.policy})
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Runtime.RunFor(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		type agg struct {
			iters   int
			compute time.Duration
			blocked time.Duration
		}
		per := map[graph.NodeID]*agg{}
		for _, ev := range app.Recorder.Events() {
			if ev.Kind != trace.EvIter || ev.At < 10*time.Second {
				continue
			}
			a := per[ev.Thread]
			if a == nil {
				a = &agg{}
				per[ev.Thread] = a
			}
			a.iters++
			a.compute += ev.Compute
			a.blocked += ev.Blocked
		}
		t.Logf("=== %s ===", pc.name)
		app.Runtime.Graph().Nodes(func(n *graph.Node) {
			if n.Kind != graph.KindThread {
				return
			}
			a := per[n.ID]
			if a == nil || a.iters == 0 {
				t.Logf("  %-16s no iterations", n.Name)
				return
			}
			window := 50 * time.Second
			t.Logf("  %-16s iters=%4d period=%4dms compute=%4dms blocked=%4dms",
				n.Name, a.iters,
				(window / time.Duration(a.iters)).Milliseconds(),
				(a.compute / time.Duration(a.iters)).Milliseconds(),
				(a.blocked / time.Duration(a.iters)).Milliseconds())
		})
	}
}
