package tracker

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/trace"
)

func TestPaperSizes(t *testing.T) {
	s := PaperSizes()
	if s.Frame != 738*1024 || s.Mask != 246*1024 || s.Histogram != 981*1024 || s.Location != 68 {
		t.Fatalf("sizes = %+v", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Hosts != 1 {
		t.Error("default hosts")
	}
	if cfg.Sizes != PaperSizes() {
		t.Error("default sizes")
	}
	if cfg.Timing != DefaultTiming() {
		t.Error("default timing")
	}
	if cfg.BusBytesPerSec != DefaultBusBytesPerSec {
		t.Error("default bus")
	}
	if cfg.PressureBytes != DefaultPressureBytes {
		t.Error("default pressure")
	}
	if cfg.Collector == nil || cfg.Collector.Name() != "dgc" {
		t.Error("default collector must be DGC")
	}
	neg := Config{PressureBytes: -1}.withDefaults()
	if neg.PressureBytes != 0 {
		t.Error("negative PressureBytes must disable the model")
	}
}

func TestHostPlan(t *testing.T) {
	hp1 := planHosts(1)
	if hp1 != (hostPlan{}) {
		t.Errorf("single host plan = %+v", hp1)
	}
	hp5 := planHosts(5)
	if hp5.digitizer != 0 || hp5.mask != 1 || hp5.histogram != 2 ||
		hp5.detect1 != 3 || hp5.detect2 != 3 || hp5.gui != 4 {
		t.Errorf("five host plan = %+v", hp5)
	}
	// Fewer hosts than stages must still place validly.
	hp3 := planHosts(3)
	for _, h := range []int{hp3.digitizer, hp3.mask, hp3.histogram, hp3.detect1, hp3.detect2, hp3.gui} {
		if h < 0 || h >= 3 {
			t.Errorf("host %d out of range", h)
		}
	}
}

func TestGraphStructure(t *testing.T) {
	app, err := New(Config{Hosts: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := app.Runtime.Graph()
	threads, channels := 0, 0
	g.Nodes(func(n *graph.Node) {
		switch n.Kind {
		case graph.KindThread:
			threads++
		case graph.KindChannel:
			channels++
		}
	})
	if threads != 6 {
		t.Errorf("threads = %d, want 6 (five tasks, two detection threads)", threads)
	}
	if channels != 9 {
		t.Errorf("channels = %d, want 9 (Figure 5)", channels)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph must validate: %v", err)
	}
	srcs := g.SourceThreads()
	if len(srcs) != 1 || g.Node(srcs[0]).Name != "digitizer" {
		t.Errorf("sources = %v", srcs)
	}
	sinks := g.SinkThreads()
	if len(sinks) != 1 || g.Node(sinks[0]).Name != "gui" {
		t.Errorf("sinks = %v", sinks)
	}
	// The digitizer fans out to four frame channels.
	dig := g.Node(srcs[0])
	if len(dig.Out) != 4 {
		t.Errorf("digitizer outputs = %d, want 4", len(dig.Out))
	}
	// Channels are placed on their producer's host.
	g.Nodes(func(n *graph.Node) {
		if n.Kind != graph.KindChannel {
			return
		}
		prod := g.Node(g.Conn(n.In[0]).From)
		if n.Host != prod.Host {
			t.Errorf("channel %q on host %d but producer %q on %d", n.Name, n.Host, prod.Name, prod.Host)
		}
	})
}

func TestRunProducesOutputs(t *testing.T) {
	app, err := New(Config{Hosts: 1, Seed: 7, Policy: core.PolicyMin()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := app.Run(30*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outputs < 50 {
		t.Fatalf("outputs = %d over 25s, want a steady ~4 fps stream", a.Outputs)
	}
	if a.ThroughputFPS < 2 || a.ThroughputFPS > 8 {
		t.Errorf("throughput %.2f fps outside plausible range", a.ThroughputFPS)
	}
	if a.LatencyMean <= 0 || a.LatencyMean > 3*time.Second {
		t.Errorf("latency %v implausible", a.LatencyMean)
	}
	if a.All.MeanBytes <= 0 {
		t.Error("footprint must be positive")
	}
	if a.IGC.MeanBytes > a.All.MeanBytes {
		t.Error("IGC must lower-bound the real footprint")
	}
	if a.ItemsTotal == 0 || a.ItemsSuccessful == 0 {
		t.Error("items must flow")
	}
}

func TestRunWarmupValidation(t *testing.T) {
	app, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(time.Second, 2*time.Second); err == nil {
		t.Fatal("warmup ≥ duration must fail")
	}
}

func TestFiveHostRunUsesNetwork(t *testing.T) {
	app, err := New(Config{Hosts: 5, Seed: 3, Policy: core.PolicyOff()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(20*time.Second, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Frames travel digitizer(h0) → mask(h1): the link must show
	// traffic.
	if busy := app.Cluster.Network().LinkBusy(0, 1); busy == 0 {
		t.Error("h0→h1 link saw no traffic in the 5-host configuration")
	}
	if busy := app.Cluster.Network().LinkBusy(3, 4); busy == 0 {
		t.Error("detector→gui link saw no traffic")
	}
}

func TestCollectorOverride(t *testing.T) {
	app, err := New(Config{Seed: 1, Collector: gc.NewNone()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := app.Run(20*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Without GC, no frees happen before shutdown: footprint integrates
	// upward, so the mean must dwarf a DGC run's.
	appDGC, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := appDGC.Run(20*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.All.MeanBytes < 3*b.All.MeanBytes {
		t.Errorf("no-GC footprint %.0f must dwarf DGC footprint %.0f", a.All.MeanBytes, b.All.MeanBytes)
	}
}

// TestShapeFig6And7 asserts the Figure 6/7 orderings in configuration 1:
// footprint and waste fall monotonically from No-ARU to ARU-min to
// ARU-max, with IGC a lower bound.
func TestShapeFig6And7(t *testing.T) {
	run := func(p core.Policy) *trace.Analysis {
		app, err := New(Config{Hosts: 1, Seed: 42, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		a, err := app.Run(90*time.Second, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	noARU := run(core.PolicyOff())
	aruMin := run(core.PolicyMin())
	aruMax := run(core.PolicyMax())

	if !(noARU.All.MeanBytes > aruMin.All.MeanBytes && aruMin.All.MeanBytes > aruMax.All.MeanBytes) {
		t.Errorf("footprint ordering violated: %.0f / %.0f / %.0f",
			noARU.All.MeanBytes, aruMin.All.MeanBytes, aruMax.All.MeanBytes)
	}
	for name, a := range map[string]*trace.Analysis{"no-aru": noARU, "aru-min": aruMin, "aru-max": aruMax} {
		if a.IGC.MeanBytes > a.All.MeanBytes*1.001 {
			t.Errorf("%s: IGC %.0f above actual %.0f", name, a.IGC.MeanBytes, a.All.MeanBytes)
		}
	}
	if !(noARU.WastedMemPct > aruMin.WastedMemPct && aruMin.WastedMemPct > aruMax.WastedMemPct) {
		t.Errorf("wasted-memory ordering violated: %.1f / %.1f / %.1f",
			noARU.WastedMemPct, aruMin.WastedMemPct, aruMax.WastedMemPct)
	}
	if noARU.WastedMemPct < 40 {
		t.Errorf("No-ARU must waste most of its footprint (got %.1f%%)", noARU.WastedMemPct)
	}
	if aruMax.WastedMemPct > 10 {
		t.Errorf("ARU-max must nearly eliminate waste (got %.1f%%)", aruMax.WastedMemPct)
	}
	if !(noARU.WastedCompPct > aruMax.WastedCompPct) {
		t.Errorf("wasted-computation ordering violated: %.1f / %.1f",
			noARU.WastedCompPct, aruMax.WastedCompPct)
	}
}

// TestShapeFig10 asserts the Figure 10 performance orderings in
// configuration 1: ARU-min has the highest throughput, ARU-max the lowest
// latency, and No-ARU the highest latency.
func TestShapeFig10(t *testing.T) {
	run := func(p core.Policy) *trace.Analysis {
		app, err := New(Config{Hosts: 1, Seed: 42, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		a, err := app.Run(90*time.Second, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	noARU := run(core.PolicyOff())
	aruMin := run(core.PolicyMin())
	aruMax := run(core.PolicyMax())

	if !(aruMin.ThroughputFPS > noARU.ThroughputFPS) {
		t.Errorf("ARU-min fps %.2f must beat No-ARU %.2f", aruMin.ThroughputFPS, noARU.ThroughputFPS)
	}
	if !(aruMin.ThroughputFPS > aruMax.ThroughputFPS) {
		t.Errorf("ARU-min fps %.2f must beat ARU-max %.2f (max over-throttles)", aruMin.ThroughputFPS, aruMax.ThroughputFPS)
	}
	if !(noARU.LatencyMean > aruMin.LatencyMean && aruMin.LatencyMean > aruMax.LatencyMean) {
		t.Errorf("latency ordering violated: %v / %v / %v",
			noARU.LatencyMean, aruMin.LatencyMean, aruMax.LatencyMean)
	}
}
