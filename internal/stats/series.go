package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// StepSeries is a right-continuous step function of time: the value set at
// time t holds until the next recorded point. It models the application
// memory footprint, which changes only at item allocation and free events.
//
// The paper computes (§4):
//
//	MUμ = Σ( MU(t_{i+1}) × (t_{i+1} − t_i) ) / (t_N − t_0)
//	MUσ = sqrt( Σ( (MUμ − MU(t_{i+1}))² × (t_{i+1} − t_i) ) / (t_N − t_0) )
//
// i.e. a time-weighted mean and standard deviation over the step function.
type StepSeries struct {
	times  []time.Duration
	values []float64
}

// NewStepSeries returns an empty series.
func NewStepSeries() *StepSeries { return &StepSeries{} }

// Record appends the value taking effect at time t. Points must be
// recorded in non-decreasing time order; Record panics otherwise, since an
// out-of-order point indicates a bug in event collection. Recording a new
// value at an existing latest time overwrites it (the last write at an
// instant wins, matching event coalescing).
func (s *StepSeries) Record(t time.Duration, v float64) {
	if n := len(s.times); n > 0 {
		last := s.times[n-1]
		if t < last {
			panic(fmt.Sprintf("stats: StepSeries.Record out of order: %v after %v", t, last))
		}
		if t == last {
			s.values[n-1] = v
			return
		}
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// Len returns the number of recorded points.
func (s *StepSeries) Len() int { return len(s.times) }

// At returns the series value at time t: the value of the latest point at
// or before t, or 0 before the first point.
func (s *StepSeries) At(t time.Duration) float64 {
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t })
	if i == 0 {
		return 0
	}
	return s.values[i-1]
}

// Point returns the i-th recorded (time, value) pair.
func (s *StepSeries) Point(i int) (time.Duration, float64) {
	return s.times[i], s.values[i]
}

// TimeWeighted integrates the series over [from, to] and returns the
// time-weighted mean and (population) standard deviation per the paper's
// MUμ / MUσ formulas. The span before the first point contributes value 0.
// An empty interval returns zeros.
func (s *StepSeries) TimeWeighted(from, to time.Duration) (mean, std float64) {
	if to <= from {
		return 0, 0
	}
	total := float64(to - from)

	var sum float64
	s.eachSegment(from, to, func(dt time.Duration, v float64) {
		sum += v * float64(dt)
	})
	mean = sum / total

	var varSum float64
	s.eachSegment(from, to, func(dt time.Duration, v float64) {
		d := v - mean
		varSum += d * d * float64(dt)
	})
	return mean, math.Sqrt(varSum / total)
}

// Integral returns the integral of the series over [from, to]
// (value × time, e.g. byte·seconds for a footprint series).
func (s *StepSeries) Integral(from, to time.Duration) float64 {
	var sum float64
	s.eachSegment(from, to, func(dt time.Duration, v float64) {
		sum += v * float64(dt)
	})
	return sum
}

// Peak returns the maximum value attained within [from, to], considering
// the value carried into the window as well. An empty window returns 0.
func (s *StepSeries) Peak(from, to time.Duration) float64 {
	peak := math.Inf(-1)
	seen := false
	s.eachSegment(from, to, func(dt time.Duration, v float64) {
		seen = true
		if v > peak {
			peak = v
		}
	})
	if !seen {
		return 0
	}
	return peak
}

// eachSegment invokes fn for every constant segment of the series clipped
// to [from, to], passing the segment duration and value. Zero-length
// segments are skipped.
func (s *StepSeries) eachSegment(from, to time.Duration, fn func(dt time.Duration, v float64)) {
	if to <= from {
		return
	}
	cursor := from
	cur := s.At(from)
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > from })
	for ; i < len(s.times) && s.times[i] < to; i++ {
		if dt := s.times[i] - cursor; dt > 0 {
			fn(dt, cur)
		}
		cursor = s.times[i]
		cur = s.values[i]
	}
	if dt := to - cursor; dt > 0 {
		fn(dt, cur)
	}
}

// Downsample returns at most n points approximating the series by sampling
// it at uniform offsets over [from, to]. It is used to emit plot data for
// the footprint-versus-time figures without dumping every event.
func (s *StepSeries) Downsample(from, to time.Duration, n int) (times []time.Duration, values []float64) {
	if n <= 0 || to <= from {
		return nil, nil
	}
	if n == 1 {
		return []time.Duration{from}, []float64{s.At(from)}
	}
	step := (to - from) / time.Duration(n-1)
	if step <= 0 {
		step = 1
	}
	for t := from; t <= to && len(times) < n; t += step {
		times = append(times, t)
		values = append(values, s.At(t))
	}
	return times, values
}

// WriteCSV writes "time_us,value" rows for at most n uniform samples over
// [from, to], preceded by a header naming the value column.
func (s *StepSeries) WriteCSV(w io.Writer, valueName string, from, to time.Duration, n int) error {
	if _, err := fmt.Fprintf(w, "time_us,%s\n", valueName); err != nil {
		return err
	}
	times, values := s.Downsample(from, to, n)
	for i := range times {
		if _, err := fmt.Fprintf(w, "%d,%.0f\n", times[i].Microseconds(), values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Counter is a convenience wrapper maintaining a running total recorded
// into a StepSeries, e.g. live bytes in all channels.
type Counter struct {
	series *StepSeries
	total  float64
}

// NewCounter returns a counter starting at 0 recorded at time 0.
func NewCounter() *Counter {
	c := &Counter{series: NewStepSeries()}
	c.series.Record(0, 0)
	return c
}

// Add changes the total by delta at time t and records the new level.
func (c *Counter) Add(t time.Duration, delta float64) {
	c.total += delta
	c.series.Record(t, c.total)
}

// Total returns the current running total.
func (c *Counter) Total() float64 { return c.total }

// Series exposes the underlying step series.
func (c *Counter) Series() *StepSeries { return c.series }
