package stats

import (
	"math"
	"testing"
	"time"
)

func TestJitterUniformOutputIsZero(t *testing.T) {
	outs := []time.Duration{ms(0), ms(100), ms(200), ms(300)}
	if got := Jitter(outs); got != 0 {
		t.Fatalf("uniform output must have zero jitter, got %v", got)
	}
}

func TestJitterKnown(t *testing.T) {
	// Gaps: 100, 300 → mean 200, population std 100.
	outs := []time.Duration{ms(0), ms(100), ms(400)}
	if got := Jitter(outs); got != ms(100) {
		t.Fatalf("Jitter = %v, want 100ms", got)
	}
}

func TestJitterTooFewOutputs(t *testing.T) {
	if Jitter(nil) != 0 || Jitter([]time.Duration{ms(1)}) != 0 || Jitter([]time.Duration{ms(1), ms(5)}) != 0 {
		t.Fatal("fewer than 3 outputs must yield zero jitter")
	}
}

func TestGaps(t *testing.T) {
	outs := []time.Duration{ms(10), ms(30), ms(35)}
	gaps := Gaps(outs)
	if len(gaps) != 2 || gaps[0] != ms(20) || gaps[1] != ms(5) {
		t.Fatalf("Gaps = %v", gaps)
	}
	if Gaps([]time.Duration{ms(1)}) != nil {
		t.Fatal("single output has no gaps")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(50, 10*time.Second); got != 5 {
		t.Fatalf("Throughput = %v, want 5", got)
	}
	if Throughput(10, 0) != 0 || Throughput(10, -time.Second) != 0 {
		t.Fatal("non-positive window must yield 0")
	}
}

func TestQuantile(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated Quantile = %v, want 1.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty Quantile must be NaN")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile must not mutate its input")
	}
}

func TestDurationStats(t *testing.T) {
	mean, std := DurationStats([]time.Duration{ms(100), ms(300)})
	if mean != ms(200) {
		t.Errorf("mean = %v", mean)
	}
	if std != ms(100) {
		t.Errorf("std = %v", std)
	}
	mean, std = DurationStats(nil)
	if mean != 0 || std != 0 {
		t.Error("empty DurationStats must yield zeros")
	}
}
