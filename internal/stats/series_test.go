package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestStepSeriesAt(t *testing.T) {
	s := NewStepSeries()
	s.Record(ms(10), 5)
	s.Record(ms(20), 8)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0}, {ms(9), 0}, {ms(10), 5}, {ms(15), 5}, {ms(20), 8}, {ms(100), 8},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepSeriesRecordSameInstantOverwrites(t *testing.T) {
	s := NewStepSeries()
	s.Record(ms(10), 5)
	s.Record(ms(10), 7)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if got := s.At(ms(10)); got != 7 {
		t.Fatalf("At = %v, want 7 (last write wins)", got)
	}
}

func TestStepSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record must panic")
		}
	}()
	s := NewStepSeries()
	s.Record(ms(10), 1)
	s.Record(ms(5), 2)
}

func TestTimeWeightedMeanStd(t *testing.T) {
	// Value 0 on [0,10), 4 on [10,20), 8 on [20,40): over [0,40]
	// mean = (0*10 + 4*10 + 8*20)/40 = 3.0... wait: (0+40+160)/40 = 5.
	s := NewStepSeries()
	s.Record(ms(10), 4)
	s.Record(ms(20), 8)
	mean, std := s.TimeWeighted(0, ms(40))
	if !almostEqual(mean, 5, 1e-9) {
		t.Errorf("mean = %v, want 5", mean)
	}
	// variance = (25*10 + 1*10 + 9*20)/40 = (250+10+180)/40 = 11
	if !almostEqual(std, math.Sqrt(11), 1e-9) {
		t.Errorf("std = %v, want sqrt(11)", std)
	}
}

func TestTimeWeightedWindowClipping(t *testing.T) {
	s := NewStepSeries()
	s.Record(0, 2)
	s.Record(ms(100), 6)
	// Window entirely inside the first segment.
	mean, std := s.TimeWeighted(ms(10), ms(50))
	if !almostEqual(mean, 2, 1e-9) || std != 0 {
		t.Errorf("clipped mean/std = %v/%v", mean, std)
	}
	// Empty window.
	mean, std = s.TimeWeighted(ms(50), ms(50))
	if mean != 0 || std != 0 {
		t.Error("empty window must yield zeros")
	}
}

func TestIntegralAndPeak(t *testing.T) {
	s := NewStepSeries()
	s.Record(0, 1)
	s.Record(ms(10), 3)
	s.Record(ms(20), 2)
	got := s.Integral(0, ms(30))
	want := 1*float64(ms(10)) + 3*float64(ms(10)) + 2*float64(ms(10))
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("Integral = %v, want %v", got, want)
	}
	if p := s.Peak(0, ms(30)); p != 3 {
		t.Errorf("Peak = %v, want 3", p)
	}
	if p := s.Peak(ms(21), ms(30)); p != 2 {
		t.Errorf("Peak in tail = %v, want 2", p)
	}
	if p := s.Peak(ms(5), ms(5)); p != 0 {
		t.Errorf("Peak of empty window = %v, want 0", p)
	}
}

func TestDownsample(t *testing.T) {
	s := NewStepSeries()
	s.Record(0, 1)
	s.Record(ms(50), 2)
	times, values := s.Downsample(0, ms(100), 5)
	if len(times) != 5 || len(values) != 5 {
		t.Fatalf("Downsample returned %d/%d points", len(times), len(values))
	}
	if values[0] != 1 || values[4] != 2 {
		t.Errorf("endpoint values = %v", values)
	}
	if times[1]-times[0] != ms(25) {
		t.Errorf("spacing = %v", times[1]-times[0])
	}
	if ts, vs := s.Downsample(0, ms(100), 0); ts != nil || vs != nil {
		t.Error("n=0 must return nil")
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewStepSeries()
	s.Record(0, 10)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf, "bytes", 0, ms(10), 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "time_us,bytes" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,10" {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add(ms(10), 100)
	c.Add(ms(20), -40)
	if c.Total() != 60 {
		t.Fatalf("Total = %v", c.Total())
	}
	if got := c.Series().At(ms(15)); got != 100 {
		t.Errorf("Series.At(15ms) = %v", got)
	}
	if got := c.Series().At(ms(25)); got != 60 {
		t.Errorf("Series.At(25ms) = %v", got)
	}
	if got := c.Series().At(0); got != 0 {
		t.Errorf("Series.At(0) = %v, want initial 0", got)
	}
}

// Property: the time-weighted mean of any step series lies within
// [min, max] of the values present in the window (including the implicit
// leading zero), and Integral == mean × window.
func TestStepSeriesQuickMeanBounds(t *testing.T) {
	f := func(deltas []uint8, values []int8) bool {
		s := NewStepSeries()
		var t0 time.Duration
		n := len(deltas)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			t0 += time.Duration(deltas[i]+1) * time.Millisecond
			s.Record(t0, float64(values[i]))
		}
		end := t0 + ms(10)
		mean, _ := s.TimeWeighted(0, end)
		lo, hi := 0.0, 0.0 // implicit leading zero
		for i := 0; i < n; i++ {
			v := float64(values[i])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if mean < lo-1e-9 || mean > hi+1e-9 {
			return false
		}
		return almostEqual(s.Integral(0, end), mean*float64(end), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
