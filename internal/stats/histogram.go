package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Histogram is a fixed-bin histogram over durations, used to render
// latency distributions in the offline analysis tooling.
type Histogram struct {
	lo, hi time.Duration
	counts []int
	under  int
	over   int
	total  int
}

// NewHistogram builds a histogram with bins uniform bins over [lo, hi).
// Invalid shapes panic: histograms are constructed from code, not input.
func NewHistogram(lo, hi time.Duration, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v, %v) x%d", lo, hi, bins))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// AutoHistogram sizes the range from the samples (min to a nudge past
// max) and fills it. Empty input yields a 1-bin empty histogram.
func AutoHistogram(samples []time.Duration, bins int) *Histogram {
	if len(samples) == 0 {
		return NewHistogram(0, time.Second, 1)
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	// Nudge the top edge so the max lands inside the last bin.
	span := hi - lo
	h := NewHistogram(lo, hi+span/time.Duration(64*bins)+1, bins)
	for _, s := range samples {
		h.Add(s)
	}
	return h
}

// Add folds one sample.
func (h *Histogram) Add(d time.Duration) {
	h.total++
	switch {
	case d < h.lo:
		h.under++
	case d >= h.hi:
		h.over++
	default:
		idx := int(float64(d-h.lo) / float64(h.hi-h.lo) * float64(len(h.counts)))
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Total returns the number of samples folded.
func (h *Histogram) Total() int { return h.total }

// Bin returns bin i's [lo, hi) edges and count.
func (h *Histogram) Bin(i int) (lo, hi time.Duration, count int) {
	width := (h.hi - h.lo) / time.Duration(len(h.counts))
	return h.lo + time.Duration(i)*width, h.lo + time.Duration(i+1)*width, h.counts[i]
}

// Bins returns the bin count.
func (h *Histogram) Bins() int { return len(h.counts) }

// OutOfRange returns the under/over counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Write renders the histogram as a fixed-width bar chart.
func (h *Histogram) Write(w io.Writer, width int) {
	if width < 1 {
		width = 40
	}
	max := 1
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i := range h.counts {
		lo, hi, count := h.Bin(i)
		bar := strings.Repeat("#", int(math.Round(float64(count)/float64(max)*float64(width))))
		fmt.Fprintf(w, "%10v – %-10v %6d |%s\n",
			lo.Round(time.Millisecond), hi.Round(time.Millisecond), count, bar)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(w, "%23s %6d under, %d over\n", "", h.under, h.over)
	}
}
