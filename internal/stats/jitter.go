package stats

import (
	"math"
	"sort"
	"time"
)

// Jitter computes the paper's jitter metric over a sequence of output
// timestamps: the standard deviation of the time difference between
// successive output frames (§4). Fewer than three outputs yield 0 (no two
// gaps to vary between).
func Jitter(outputs []time.Duration) time.Duration {
	if len(outputs) < 3 {
		return 0
	}
	var w Welford
	for i := 1; i < len(outputs); i++ {
		w.Add(float64(outputs[i] - outputs[i-1]))
	}
	return time.Duration(w.Std())
}

// Gaps returns the successive differences of a timestamp sequence.
func Gaps(outputs []time.Duration) []time.Duration {
	if len(outputs) < 2 {
		return nil
	}
	gaps := make([]time.Duration, 0, len(outputs)-1)
	for i := 1; i < len(outputs); i++ {
		gaps = append(gaps, outputs[i]-outputs[i-1])
	}
	return gaps
}

// Throughput returns outputs per second over the observation window. A
// non-positive window yields 0.
func Throughput(count int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples using linear
// interpolation between closest ranks. It copies and sorts its input.
// Empty input yields NaN.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// DurationStats summarizes a slice of durations with a Welford pass.
func DurationStats(ds []time.Duration) (mean, std time.Duration) {
	var w Welford
	for _, d := range ds {
		w.Add(float64(d))
	}
	return time.Duration(w.Mean()), time.Duration(w.Std())
}
