package stats

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 100*time.Millisecond, 4)
	for _, d := range []time.Duration{
		5 * time.Millisecond, 30 * time.Millisecond, 55 * time.Millisecond,
		80 * time.Millisecond, 99 * time.Millisecond,
	} {
		h.Add(d)
	}
	wantCounts := []int{1, 1, 1, 2}
	for i, want := range wantCounts {
		lo, hi, count := h.Bin(i)
		if count != want {
			t.Errorf("bin %d [%v,%v) = %d, want %d", i, lo, hi, count, want)
		}
	}
	if h.Total() != 5 || h.Bins() != 4 {
		t.Errorf("total/bins = %d/%d", h.Total(), h.Bins())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 20*time.Millisecond, 2)
	h.Add(5 * time.Millisecond)
	h.Add(25 * time.Millisecond)
	h.Add(15 * time.Millisecond)
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestAutoHistogram(t *testing.T) {
	samples := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 400 * time.Millisecond,
	}
	h := AutoHistogram(samples, 4)
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 0 || over != 0 {
		t.Fatalf("auto range must cover all samples: %d/%d", under, over)
	}
	sum := 0
	for i := 0; i < h.Bins(); i++ {
		_, _, c := h.Bin(i)
		sum += c
	}
	if sum != 4 {
		t.Fatalf("binned %d of 4", sum)
	}
}

func TestAutoHistogramDegenerate(t *testing.T) {
	if h := AutoHistogram(nil, 4); h.Total() != 0 {
		t.Fatal("empty input")
	}
	// All-equal samples must not panic (zero span).
	h := AutoHistogram([]time.Duration{time.Second, time.Second}, 3)
	if h.Total() != 2 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramWrite(t *testing.T) {
	h := AutoHistogram([]time.Duration{
		10 * time.Millisecond, 12 * time.Millisecond, 90 * time.Millisecond,
	}, 3)
	var buf bytes.Buffer
	h.Write(&buf, 20)
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Fatalf("render degenerate:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("want 3 rows:\n%s", out)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape must panic")
		}
	}()
	NewHistogram(0, 0, 1)
}
