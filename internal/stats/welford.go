// Package stats provides the statistical machinery used by the paper's
// evaluation methodology (§4): time-weighted mean and standard deviation of
// the memory footprint (MUμ, MUσ), sample statistics for latency and
// throughput, jitter (the standard deviation of successive output-frame
// gaps), quantiles, and step series for the footprint-versus-time figures.
package stats

import "math"

// Welford accumulates streaming sample statistics using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples seen.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 with fewer than one
// sample.
func (w *Welford) Variance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected variance, or 0 with fewer
// than two samples.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// SampleStd returns the Bessel-corrected standard deviation.
func (w *Welford) SampleStd() float64 { return math.Sqrt(w.SampleVariance()) }

// Min returns the smallest sample, or 0 with no samples.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample, or 0 with no samples.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Merge folds the samples of other into w, as if every sample had been
// added to w directly (Chan et al. parallel variance combination).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}
