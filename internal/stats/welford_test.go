package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d <= tol*scale
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Std() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Std(), 2, 1e-12) { // classic example: population std 2
		t.Errorf("Std = %v, want 2", w.Std())
	}
	if !almostEqual(w.SampleVariance(), 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v", w.SampleVariance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Fatal("single sample must have mean=x, variance=0")
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("single sample min=max=x")
	}
}

// Property: streaming results match the naive two-pass computation.
func TestWelfordQuickMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		return almostEqual(w.Mean(), mean, 1e-9) &&
			almostEqual(w.Variance(), m2/float64(len(xs)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge(a, b) equals adding all samples to one accumulator.
func TestWelfordQuickMerge(t *testing.T) {
	f := func(av, bv []int16) bool {
		var a, b, all Welford
		for _, v := range av {
			a.Add(float64(v))
			all.Add(float64(v))
		}
		for _, v := range bv {
			b.Add(float64(v))
			all.Add(float64(v))
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-8) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 2 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Fatalf("Merge into empty: count=%d mean=%v", a.Count(), a.Mean())
	}
	var c Welford
	a.Merge(&c) // merging empty is a no-op
	if a.Count() != 2 {
		t.Fatal("merging an empty accumulator must not change counts")
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset with small variance: naive sum-of-squares would lose
	// precision; Welford must not.
	var w Welford
	rng := rand.New(rand.NewSource(7))
	const offset = 1e9
	for i := 0; i < 10000; i++ {
		w.Add(offset + rng.Float64()) // uniform [offset, offset+1)
	}
	if !almostEqual(w.Mean(), offset+0.5, 1e-6) {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Uniform(0,1) variance is 1/12 ≈ 0.0833.
	if w.Variance() < 0.06 || w.Variance() > 0.11 {
		t.Errorf("Variance = %v, want ≈1/12", w.Variance())
	}
}
