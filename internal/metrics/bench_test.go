package metrics

import (
	"io"
	"testing"
	"time"
)

// The hot-path cost model the registry promises: a nil handle (metrics
// off) is one branch; a live handle is a fixed number of atomic ops;
// neither allocates. EXPERIMENTS.md records the measured numbers. Handle
// resolution (Registry.Counter etc.) is the cold path and deliberately
// unmeasured here — it runs once per instrument at Start.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", Labels{"node": "n"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncParallel is the contended case: every worker
// hammers the same series, so this is the worst-case cache-line
// ping-pong an instrumented hot path can see.
func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", Labels{"node": "n"})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkNilCounterInc is the metrics-off cost: the branch a disabled
// instrument adds to the hot path.
func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

// BenchmarkGaugeMax exercises the CAS loop (uncontended: one CAS).
func BenchmarkGaugeMax(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Max(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkWriteProm measures a full scrape render of a realistically
// sized registry (60 series across counters, gauges, and histograms) —
// the cold path a /metrics poll pays.
func BenchmarkWriteProm(b *testing.B) {
	r := NewRegistry()
	for _, node := range []string{"digitizer", "lofi", "hifi", "decision", "gui"} {
		ls := Labels{"node": node}
		r.Counter("aru_bench_iterations_total", "Iterations.", ls).Add(12345)
		r.DurationGauge("aru_bench_stp_seconds", "STP.", ls).SetDuration(170 * time.Millisecond)
		h := r.Histogram("aru_bench_wait_seconds", "Wait.", nil, ls)
		for i := 0; i < 100; i++ {
			h.Observe(time.Duration(i) * time.Millisecond)
		}
		r.Counter("aru_bench_restarts_total", "Restarts.", ls)
		r.Gauge("aru_bench_items", "Items.", ls).Set(42)
		r.Counter("aru_bench_gets_total", "Gets.", ls).Add(99)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
