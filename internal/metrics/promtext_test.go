package metrics

// A promtool-free validator of the Prometheus text exposition format
// (version 0.0.4), used both here and by the runtime's endpoint test:
// parsePromText is a strict line-oriented parser that rejects malformed
// names, labels, and values, and checks the structural invariants a
// real scraper relies on (TYPE before samples, cumulative buckets,
// _count == +Inf bucket).

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	name    string
	kind    string
	help    bool
	samples []promSample
}

// parsePromText parses exposition text, failing on any syntax or
// structural violation.
func parsePromText(text string) (map[string]*promFamily, error) {
	fams := make(map[string]*promFamily)
	var current *promFamily
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad HELP: %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			fams[name] = &promFamily{name: name, help: true}
			current = fams[name]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: bad TYPE: %q", lineNo, line)
			}
			name, kind := fields[0], fields[1]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, kind)
			}
			f, ok := fams[name]
			if !ok {
				f = &promFamily{name: name}
				fams[name] = f
			}
			if f.kind != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			f.kind = kind
			current = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		// A sample belongs to the family whose name it carries (modulo
		// the histogram suffixes), and that family's TYPE must already
		// have been announced.
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(s.name, suf) {
				if f, ok := fams[strings.TrimSuffix(s.name, suf)]; ok && f.kind == "histogram" {
					base = strings.TrimSuffix(s.name, suf)
				}
			}
		}
		f, ok := fams[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q precedes its TYPE", lineNo, s.name)
		}
		if current == nil || f != current {
			return nil, fmt.Errorf("line %d: sample %q outside its family block", lineNo, s.name)
		}
		f.samples = append(f.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parsePromSample parses one `name{labels} value` line.
func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !nameRe.MatchString(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body, after := rest[1:end], rest[end+1:]
		for len(body) > 0 {
			eq := strings.Index(body, "=")
			if eq < 0 {
				return s, fmt.Errorf("bad label pair in %q", line)
			}
			key := body[:eq]
			if !labelRe.MatchString(key) {
				return s, fmt.Errorf("bad label name %q", key)
			}
			body = body[eq+1:]
			if !strings.HasPrefix(body, `"`) {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			body = body[1:]
			var val strings.Builder
			closed := false
			for i := 0; i < len(body); i++ {
				c := body[i]
				if c == '\\' && i+1 < len(body) {
					i++
					switch body[i] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(body[i])
					}
					continue
				}
				if c == '"' {
					body = body[i+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.labels[key] = val.String()
			body = strings.TrimPrefix(body, ",")
		}
		rest = after
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// validatePromFamilies checks the structural invariants scrapers rely
// on: every family has HELP and TYPE; histogram buckets are cumulative
// and end at +Inf; _count equals the +Inf bucket; counters are finite
// and non-negative.
func validatePromFamilies(t *testing.T, fams map[string]*promFamily) {
	t.Helper()
	for name, f := range fams {
		if !f.help {
			t.Errorf("family %s: missing HELP", name)
		}
		if f.kind == "" {
			t.Errorf("family %s: missing TYPE", name)
		}
		switch f.kind {
		case "counter":
			for _, s := range f.samples {
				if math.IsNaN(s.value) || s.value < 0 {
					t.Errorf("counter %s: non-monotone value %v", name, s.value)
				}
			}
		case "histogram":
			// Group buckets per label set (minus le).
			type agg struct {
				last     float64
				sawInf   bool
				infCount float64
				count    float64
				hasCount bool
			}
			byKey := map[string]*agg{}
			key := func(ls map[string]string) string {
				var parts []string
				for k, v := range ls {
					if k == "le" {
						continue
					}
					parts = append(parts, k+"="+v)
				}
				sortStrings(parts)
				return strings.Join(parts, ",")
			}
			for _, s := range f.samples {
				a := byKey[key(s.labels)]
				if a == nil {
					a = &agg{}
					byKey[key(s.labels)] = a
				}
				switch s.name {
				case name + "_bucket":
					if s.value < a.last {
						t.Errorf("histogram %s: non-cumulative buckets", name)
					}
					a.last = s.value
					if s.labels["le"] == "+Inf" {
						a.sawInf = true
						a.infCount = s.value
					}
				case name + "_count":
					a.count = s.value
					a.hasCount = true
				}
			}
			for k, a := range byKey {
				if !a.sawInf {
					t.Errorf("histogram %s{%s}: no +Inf bucket", name, k)
				}
				if !a.hasCount {
					t.Errorf("histogram %s{%s}: no _count sample", name, k)
				}
				if a.sawInf && a.hasCount && a.infCount != a.count {
					t.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", name, k, a.count, a.infCount)
				}
			}
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestWritePromParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("aru_test_total", "A counter.", Labels{"node": "digitizer"}).Add(5)
	r.DurationCounter("aru_test_sleep_seconds_total", "Sleep.", Labels{"thread": "t"}).AddDuration(time.Second)
	g := r.DurationGauge("aru_test_stp_seconds", "STP.", Labels{"node": "a b\"c\\d"})
	g.SetUnknown()
	h := r.Histogram("aru_test_wait_seconds", "Wait.", nil, Labels{"buffer": "frames"})
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Second)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := parsePromText(b.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	validatePromFamilies(t, fams)

	if f := fams["aru_test_total"]; f == nil || f.kind != "counter" || len(f.samples) != 1 || f.samples[0].value != 5 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if f := fams["aru_test_stp_seconds"]; f == nil || !math.IsNaN(f.samples[0].value) {
		t.Fatalf("unknown gauge must scrape as NaN: %+v", f)
	}
	if got := fams["aru_test_stp_seconds"].samples[0].labels["node"]; got != "a b\"c\\d" {
		t.Fatalf("escaped label round-trip = %q", got)
	}
	hist := fams["aru_test_wait_seconds"]
	if hist == nil || hist.kind != "histogram" {
		t.Fatalf("histogram family wrong: %+v", hist)
	}
	// 9 buckets (8 bounds + inf) + sum + count.
	if len(hist.samples) != len(DurationBuckets)+1+2 {
		t.Fatalf("histogram samples = %d, want %d", len(hist.samples), len(DurationBuckets)+3)
	}
}
