package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", nil, nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles: %v %v %v", c, g, h)
	}
	// Every nil-handle method must no-op, not panic.
	c.Inc()
	c.Add(3)
	c.AddDuration(time.Second)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g.Set(7)
	g.SetDuration(time.Second)
	g.SetUnknown()
	g.SetBool(true)
	g.Max(9)
	if g.Value() != 0 || g.Known() {
		t.Fatalf("nil gauge: value=%d known=%v", g.Value(), g.Known())
	}
	h.Observe(time.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram: count=%d sum=%v", h.Count(), h.Sum())
	}
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry Gather = %v", got)
	}
}

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", Labels{"node": "a"})
	c.Inc()
	c.Add(4)
	c.Add(-2) // monotone: negative deltas ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same series.
	if again := r.Counter("requests_total", "Requests.", Labels{"node": "a"}); again != c {
		t.Fatal("re-registration must return the same handle")
	}
	// Different labels is a different series.
	other := r.Counter("requests_total", "Requests.", Labels{"node": "b"})
	if other == c {
		t.Fatal("different labels must be a different series")
	}
}

func TestDurationCounterScale(t *testing.T) {
	r := NewRegistry()
	c := r.DurationCounter("sleep_seconds_total", "Sleep.", nil)
	c.AddDuration(1500 * time.Millisecond)
	fams := r.Gather()
	if len(fams) != 1 || len(fams[0].Series) != 1 {
		t.Fatalf("gather shape: %+v", fams)
	}
	if got := float64(fams[0].Series[0].Value); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("duration counter renders %v, want 1.5", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Depth.", nil)
	g.Set(3)
	g.Max(10)
	g.Max(5) // below current max: no effect
	if g.Value() != 10 {
		t.Fatalf("gauge max = %d, want 10", g.Value())
	}
	g.SetUnknown()
	if g.Known() {
		t.Fatal("unknown gauge must report !Known")
	}
	// Max out of unknown must take the new value.
	g.Max(2)
	if !g.Known() || g.Value() != 2 {
		t.Fatalf("max-from-unknown = %d known=%v", g.Value(), g.Known())
	}
	g.SetBool(true)
	if g.Value() != 1 {
		t.Fatalf("SetBool(true) = %d", g.Value())
	}
}

func TestUnknownGaugeRendersNaN(t *testing.T) {
	r := NewRegistry()
	g := r.DurationGauge("stp_seconds", "STP.", Labels{"node": "x"})
	g.SetUnknown()
	fams := r.Gather()
	if !math.IsNaN(float64(fams[0].Series[0].Value)) {
		t.Fatalf("unknown gauge gathers %v, want NaN", fams[0].Series[0].Value)
	}
	var text bytes.Buffer
	if err := r.WriteProm(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `stp_seconds{node="x"} NaN`) {
		t.Fatalf("prom text missing NaN sample:\n%s", text.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wait_seconds", "Wait.", []time.Duration{time.Millisecond, time.Second}, nil)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(20 * time.Millisecond)  // bucket 1
	h.Observe(time.Minute)            // overflow
	h.Observe(-time.Second)           // clamped to 0, bucket 0
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	fams := r.Gather()
	bk := fams[0].Series[0].Buckets
	if len(bk) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(bk))
	}
	// Buckets are cumulative.
	if bk[0].Count != 3 || bk[1].Count != 4 || bk[2].Count != 5 {
		t.Fatalf("cumulative counts = %d,%d,%d want 3,4,5", bk[0].Count, bk[1].Count, bk[2].Count)
	}
	if !math.IsInf(float64(bk[2].LE), 1) {
		t.Fatalf("last bucket LE = %v, want +Inf", bk[2].LE)
	}
	wantSum := (500*time.Microsecond + time.Millisecond + 20*time.Millisecond + time.Minute).Seconds()
	if got := float64(fams[0].Series[0].Sum); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestGatherOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "", nil)
	r.Counter("aaa", "", Labels{"node": "b"})
	r.Counter("aaa", "", Labels{"node": "a"})
	fams := r.Gather()
	if fams[0].Name != "aaa" || fams[1].Name != "zzz" {
		t.Fatalf("families not name-sorted: %s, %s", fams[0].Name, fams[1].Name)
	}
	if fams[0].Series[0].Labels["node"] != "a" || fams[0].Series[1].Labels["node"] != "b" {
		t.Fatalf("series not label-sorted: %+v", fams[0].Series)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "with \\ and\nnewline", Labels{"v": "a\"b\\c\nd"}).Inc()
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total with \\ and\nnewline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", Labels{"node": "n"}).Add(2)
	r.Histogram("h_seconds", "H.", nil, nil).Observe(3 * time.Millisecond)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal(b.Bytes(), &fams); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	// Empty registry must still encode a JSON array, not null.
	var empty bytes.Buffer
	if err := NewRegistry().WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty.String()) != "[]" {
		t.Fatalf("empty registry JSON = %q, want []", empty.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "", nil)
	h := r.Histogram("conc_seconds", "", nil, nil)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
				r.Gauge("conc_gauge", "", nil).Max(int64(j))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("concurrent counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("concurrent histogram count = %d, want 4000", h.Count())
	}
	if g := r.Gauge("conc_gauge", "", nil); g.Value() != 999 {
		t.Fatalf("concurrent gauge max = %d, want 999", g.Value())
	}
}
