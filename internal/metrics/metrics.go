// Package metrics is the runtime's live measurement layer: a
// zero-dependency registry of atomic counters, gauges, and fixed-bucket
// histograms, keyed by node/connection labels.
//
// The paper's whole premise is that the runtime measures itself — the
// current-STP per iteration, the summary-STP piggybacked on every
// put/get — so the operational window into a running pipeline must cost
// nothing on the paths it observes. Two invariants shape the design:
//
//   - Off is free. Every instrument handle is nil-safe: a nil *Counter,
//     *Gauge, or *Histogram no-ops after a single branch, so code holds
//     handles unconditionally and a runtime without a Registry pays one
//     predictable branch per event — no allocation, no atomic, no map
//     lookup (the existing hot-path allocation pins hold untouched).
//
//   - On is O(1) atomics. Handles are resolved once, at registration
//     time (Start/materialize — the cold path, where the map lookups
//     and label allocations live). An enabled event is then a fixed
//     number of uncontended atomic operations: one add for a counter,
//     one store (or CAS-max) for a gauge, two adds for a histogram
//     observation. Nothing on the event path allocates or locks.
//
// Export is pull-based: Gather snapshots every family, WriteProm renders
// the Prometheus text exposition format, and Snapshot builds the
// JSON-marshalable form. Both derive from the same atomic reads, so a
// scrape, a JSON poll, and a status dump can never disagree about a
// counter's value beyond the instant they were taken.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that goes up and down (or tracks a maximum).
	KindGauge
	// KindHistogram is a fixed-bucket distribution of observations.
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// unknownGauge is the sentinel a Gauge stores for "no value" (an
// Unknown STP, say); it renders as NaN.
const unknownGauge = math.MinInt64

// Counter is a monotonically increasing atomic counter. The zero value
// is usable but normally counters are created through a Registry. All
// methods are nil-safe: a nil *Counter no-ops, so disabled metrics cost
// one branch.
type Counter struct {
	v     atomic.Int64
	scale float64 // multiplier applied at render (1, or 1e-9 for ns→s)
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// AddDuration adds a duration to a time counter (stored in nanoseconds,
// rendered in seconds when the family was created via DurationCounter).
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Value returns the raw count (nanoseconds for duration counters). A
// nil counter reads 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Like Counter, every method is
// nil-safe.
type Gauge struct {
	v     atomic.Int64
	scale float64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetDuration stores a duration value (rendered in seconds for gauges
// created via DurationGauge).
func (g *Gauge) SetDuration(d time.Duration) { g.Set(int64(d)) }

// SetUnknown stores the "no value" sentinel, rendered as NaN.
func (g *Gauge) SetUnknown() {
	if g != nil {
		g.v.Store(unknownGauge)
	}
}

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Max raises the gauge to v if v exceeds the stored value — the
// high-water primitive. One load plus (rarely) one CAS per call.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if cur != unknownGauge && v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the raw stored value (0 for nil, the sentinel for
// unknown).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Known reports whether the gauge holds a real value (not the unknown
// sentinel).
func (g *Gauge) Known() bool {
	return g != nil && g.v.Load() != unknownGauge
}

// DurationBuckets is the default histogram layout for wait-time
// distributions: decade bounds from 1µs to 10s. Nine fixed buckets keep
// an Observe at a bounded scan plus two atomic adds.
var DurationBuckets = []time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket distribution of duration observations.
// Buckets are immutable after creation; Observe is a bounded linear
// scan (≤ len(bounds) compares) plus two atomic adds — no allocation,
// no lock. Nil-safe like the other instruments.
type Histogram struct {
	bounds []time.Duration // upper bounds, ascending
	counts []atomic.Int64  // per-bucket (non-cumulative); len(bounds)+1 with overflow
	sum    atomic.Int64    // total observed nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if d <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the total number of observations. Nil reads 0.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total observed time. Nil reads 0.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Labels identifies one series within a family. Registration copies it;
// callers may reuse the map.
type Labels map[string]string

// series is one labeled instrument inside a family.
type series struct {
	labels Labels
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with a set of labeled series.
type family struct {
	name    string
	help    string
	kind    Kind
	scale   float64
	bounds  []time.Duration
	mu      sync.Mutex
	series  map[string]*series
	ordered []*series
}

// Registry holds metric families. Registration (the *Counter/*Gauge/
// *Histogram constructors) locks and may allocate — it belongs to the
// cold path (Start, materialize, attach). The returned handles are the
// hot-path interface. A nil *Registry returns nil handles from every
// constructor, so "metrics off" composes transparently.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	ordered  []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes labels deterministically.
func labelKey(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(ls[k])
	}
	return b.String()
}

// getFamily returns (creating if needed) the family, enforcing kind
// consistency: re-registering a name with a different kind panics — it
// is a programming error that would silently corrupt the exposition.
func (r *Registry) getFamily(name, help string, kind Kind, scale float64, bounds []time.Duration) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, scale: scale, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		r.ordered = append(r.ordered, f)
		sort.Slice(r.ordered, func(i, j int) bool { return r.ordered[i].name < r.ordered[j].name })
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: family %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// getSeries returns (creating if needed) the labeled series of f.
func (f *family) getSeries(ls Labels) *series {
	key := labelKey(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		copied := make(Labels, len(ls))
		for k, v := range ls {
			copied[k] = v
		}
		s = &series{labels: copied, key: key}
		switch f.kind {
		case KindCounter:
			s.c = &Counter{scale: f.scale}
		case KindGauge:
			s.g = &Gauge{scale: f.scale}
		case KindHistogram:
			s.h = &Histogram{bounds: f.bounds}
			s.h.counts = make([]atomic.Int64, len(f.bounds)+1)
		}
		f.series[key] = s
		f.ordered = append(f.ordered, s)
		sort.Slice(f.ordered, func(i, j int) bool { return f.ordered[i].key < f.ordered[j].key })
	}
	return s
}

// Counter returns the counter series of family name with the given
// labels, creating both as needed. A nil registry returns nil.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, KindCounter, 1, nil).getSeries(ls).c
}

// DurationCounter returns a counter that accumulates nanoseconds and
// renders seconds (Prometheus base-unit convention).
func (r *Registry) DurationCounter(name, help string, ls Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, KindCounter, 1e-9, nil).getSeries(ls).c
}

// Gauge returns the gauge series of family name with the given labels.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, KindGauge, 1, nil).getSeries(ls).g
}

// DurationGauge returns a gauge storing nanoseconds and rendering
// seconds. STP and heartbeat-age gauges use it.
func (r *Registry) DurationGauge(name, help string, ls Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, KindGauge, 1e-9, nil).getSeries(ls).g
}

// Histogram returns the histogram series of family name with the given
// labels and bucket upper bounds (nil means DurationBuckets). Bounds
// are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, ls Labels) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.getFamily(name, help, KindHistogram, 1e-9, bounds).getSeries(ls).h
}

// Float is a float64 that survives JSON encoding when non-finite:
// NaN and ±Inf (which encoding/json rejects) marshal as the strings
// "NaN", "+Inf", "-Inf" — the same spellings the text exposition uses —
// and unmarshal back from either form.
type Float float64

// MarshalJSON renders finite values as numbers and non-finite ones as
// their exposition-format strings.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(formatValue(v))
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both the numeric and the string form.
func (f *Float) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = Float(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "NaN":
		*f = Float(math.NaN())
	case "+Inf":
		*f = Float(math.Inf(1))
	case "-Inf":
		*f = Float(math.Inf(-1))
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		*f = Float(v)
	}
	return nil
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound in seconds
	// (math.Inf(1) for the overflow bucket).
	LE Float `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count int64 `json:"count"`
}

// SeriesSnapshot is one labeled series' state at Gather time.
type SeriesSnapshot struct {
	// Labels identifies the series.
	Labels Labels `json:"labels,omitempty"`
	// Value is the scaled scalar for counters and gauges (NaN for an
	// unknown gauge; omitted for histograms).
	Value Float `json:"value"`
	// Buckets, Sum, and Count describe a histogram series.
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Sum is the histogram's total observed value in seconds.
	Sum Float `json:"sum,omitempty"`
	// Count is the histogram's total observation count.
	Count int64 `json:"count,omitempty"`
}

// FamilySnapshot is one family's state at Gather time.
type FamilySnapshot struct {
	// Name is the family name (Prometheus metric name).
	Name string `json:"name"`
	// Help is the family's help string.
	Help string `json:"help"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Series lists the labeled series, label-sorted.
	Series []SeriesSnapshot `json:"series"`
}

// scaled converts a raw int64 to the family's rendered float.
func scaled(v int64, scale float64) float64 {
	if scale == 0 || scale == 1 {
		return float64(v)
	}
	return float64(v) * scale
}

// Gather snapshots every family, name-sorted, series label-sorted. A
// nil registry gathers nothing.
func (r *Registry) Gather() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.ordered...)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		ser := append([]*series(nil), f.ordered...)
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String(), Series: make([]SeriesSnapshot, 0, len(ser))}
		for _, s := range ser {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				ss.Value = Float(scaled(s.c.Value(), f.scale))
			case KindGauge:
				raw := s.g.Value()
				if !s.g.Known() {
					ss.Value = Float(math.NaN())
				} else {
					ss.Value = Float(scaled(raw, f.scale))
				}
			case KindHistogram:
				var cum int64
				for i := range s.h.counts {
					cum += s.h.counts[i].Load()
					le := math.Inf(1)
					if i < len(f.bounds) {
						le = f.bounds[i].Seconds()
					}
					ss.Buckets = append(ss.Buckets, BucketCount{LE: Float(le), Count: cum})
				}
				ss.Sum = Float(time.Duration(s.h.sum.Load()).Seconds())
				ss.Count = cum
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float in exposition format.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k="v",...}, with an optional extra le pair for
// histogram buckets.
func writeLabels(b *strings.Builder, ls Labels, le string) {
	if len(ls) == 0 && le == "" {
		return
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteByte('"')
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP and TYPE line per family, then its
// series; histograms expand to _bucket/_sum/_count. A nil registry
// writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.Gather() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			if f.Kind == "histogram" {
				for _, bk := range s.Buckets {
					b.WriteString(f.Name)
					b.WriteString("_bucket")
					writeLabels(&b, s.Labels, formatValue(float64(bk.LE)))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatInt(bk.Count, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.Name)
				b.WriteString("_sum")
				writeLabels(&b, s.Labels, "")
				b.WriteByte(' ')
				b.WriteString(formatValue(float64(s.Sum)))
				b.WriteByte('\n')
				b.WriteString(f.Name)
				b.WriteString("_count")
				writeLabels(&b, s.Labels, "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.Count, 10))
				b.WriteByte('\n')
				continue
			}
			b.WriteString(f.Name)
			writeLabels(&b, s.Labels, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(float64(s.Value)))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the Gather snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := r.Gather()
	if snap == nil {
		snap = []FamilySnapshot{}
	}
	return enc.Encode(snap)
}
