package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestPiggybackZeroAlloc pins the hot-path allocation contract: NotePut
// and NoteGet run once per item moved through the pipeline, so any
// allocation there shows up as GC pressure in the very STP measurements
// the feedback loop consumes. The incremental fold on BackwardVec makes
// both paths allocation-free.
func TestPiggybackZeroAlloc(t *testing.T) {
	c, putConn, getConn := benchGraph(t, PolicyMin())
	if got := testing.AllocsPerRun(200, func() { c.NotePut(putConn) }); got != 0 {
		t.Errorf("NotePut allocates %.1f objects per call, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() { c.NoteGet(getConn) }); got != 0 {
		t.Errorf("NoteGet allocates %.1f objects per call, want 0", got)
	}
	cMax, putMax, getMax := benchGraph(t, PolicyMax())
	if got := testing.AllocsPerRun(200, func() { cMax.NotePut(putMax) }); got != 0 {
		t.Errorf("NotePut(max) allocates %.1f objects per call, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() { cMax.NoteGet(getMax) }); got != 0 {
		t.Errorf("NoteGet(max) allocates %.1f objects per call, want 0", got)
	}
}

// TestBackwardVecFoldMatchesRecompute drives a vector through a random
// Update / RemoveSlot / AddSlot sequence and cross-checks the cached
// fold against a from-scratch reference after every step, for min, max
// and a custom (non-foldable) compressor. This is the invariant the
// incremental fold must maintain: Compressed(c) == c.Compress(Snapshot())
// at every observation point.
func TestBackwardVecFoldMatchesRecompute(t *testing.T) {
	compressors := []Compressor{Min, Max,
		Func{FuncName: "second-min", Fn: func(vec []STP) STP {
			// A deliberately non-foldable operator.
			best, second := Unknown, Unknown
			for _, s := range vec {
				if !s.Known() {
					continue
				}
				switch {
				case !best.Known() || s < best:
					second, best = best, s
				case !second.Known() || s < second:
					second = s
				}
			}
			if second.Known() {
				return second
			}
			return best
		}},
	}
	for _, comp := range compressors {
		comp := comp
		t.Run(comp.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			conns := []graph.ConnID{0, 1, 2, 3, 4}
			v := NewBackwardVec(conns, nil)
			present := map[graph.ConnID]bool{0: true, 1: true, 2: true, 3: true, 4: true}
			for step := 0; step < 2000; step++ {
				conn := conns[rng.Intn(len(conns))]
				switch op := rng.Intn(10); {
				case op < 7: // update (sometimes to Unknown)
					s := STP(rng.Intn(500)+1) * 1e6
					if rng.Intn(10) == 0 {
						s = Unknown
					}
					v.Update(conn, s)
				case op < 8: // fast-path update+compress
					v.UpdateAndCompress(conn, STP(rng.Intn(500)+1)*1e6, comp)
				case op < 9:
					v.RemoveSlot(conn)
					present[conn] = false
				default:
					v.AddSlot(conn, nil)
					present[conn] = true
				}
				got := v.Compressed(comp)
				want := comp.Compress(v.Snapshot())
				if got != want {
					t.Fatalf("step %d: Compressed = %v, reference fold = %v (snapshot %v)",
						step, got, want, v.Snapshot())
				}
			}
			_ = present
		})
	}
}

// TestBackwardVecCompressorSwitch checks that re-binding the fold cache
// to a differently named compressor re-folds instead of serving the
// stale cache.
func TestBackwardVecCompressorSwitch(t *testing.T) {
	v := NewBackwardVec([]graph.ConnID{1, 2}, nil)
	v.Update(1, STP(100e6))
	v.Update(2, STP(300e6))
	if got := v.Compressed(Min); got != STP(100e6) {
		t.Fatalf("min = %v", got)
	}
	if got := v.Compressed(Max); got != STP(300e6) {
		t.Fatalf("max after switch = %v", got)
	}
	if got := v.Compressed(Min); got != STP(100e6) {
		t.Fatalf("min after switch back = %v", got)
	}
}
