package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func stpMs(n int) STP { return STP(time.Duration(n) * time.Millisecond) }

// paperVec is the backwardSTP vector of node A in Figures 3 and 4: the
// downstream nodes B–F report summary-STPs 337, 139, 273, 544, 420.
var paperVec = []STP{stpMs(337), stpMs(139), stpMs(273), stpMs(544), stpMs(420)}

// TestCompressMinPaperExample reproduces Figure 3: with nodes B–F as
// endpoints, A sustains the fastest consumer (C) via the min operator.
func TestCompressMinPaperExample(t *testing.T) {
	if got := Min.Compress(paperVec); got != stpMs(139) {
		t.Fatalf("min compress = %v, want 139ms", got)
	}
}

// TestCompressMaxPaperExample reproduces Figure 4: with full data
// dependency through consumer G, A may slow to the slowest consumer via
// the max operator.
func TestCompressMaxPaperExample(t *testing.T) {
	if got := Max.Compress(paperVec); got != stpMs(544) {
		t.Fatalf("max compress = %v, want 544ms", got)
	}
}

func TestSTPBasics(t *testing.T) {
	if Unknown.Known() {
		t.Error("Unknown must not be Known")
	}
	if !stpMs(5).Known() {
		t.Error("positive STP must be Known")
	}
	if stpMs(5).Duration() != 5*time.Millisecond {
		t.Error("Duration conversion broken")
	}
	if !strings.Contains(stpMs(5).String(), "5ms") {
		t.Errorf("String = %q", stpMs(5).String())
	}
	if Unknown.String() != "stp(unknown)" {
		t.Errorf("Unknown String = %q", Unknown.String())
	}
}

func TestMinMaxSTPIgnoreUnknown(t *testing.T) {
	if MinSTP(Unknown, stpMs(7)) != stpMs(7) || MinSTP(stpMs(7), Unknown) != stpMs(7) {
		t.Error("MinSTP must ignore Unknown")
	}
	if MaxSTP(Unknown, stpMs(7)) != stpMs(7) || MaxSTP(stpMs(7), Unknown) != stpMs(7) {
		t.Error("MaxSTP must ignore Unknown")
	}
	if MinSTP(Unknown, Unknown) != Unknown || MaxSTP(Unknown, Unknown) != Unknown {
		t.Error("all-Unknown folds must be Unknown")
	}
	if MinSTP(stpMs(3), stpMs(9)) != stpMs(3) || MaxSTP(stpMs(3), stpMs(9)) != stpMs(9) {
		t.Error("ordinary Min/Max broken")
	}
}

func TestCompressEmptyAndUnknown(t *testing.T) {
	if Min.Compress(nil) != Unknown || Max.Compress(nil) != Unknown {
		t.Error("empty vector must compress to Unknown")
	}
	vec := []STP{Unknown, Unknown}
	if Min.Compress(vec) != Unknown || Max.Compress(vec) != Unknown {
		t.Error("all-Unknown vector must compress to Unknown")
	}
	mixed := []STP{Unknown, stpMs(10), Unknown, stpMs(20)}
	if Min.Compress(mixed) != stpMs(10) {
		t.Error("min must skip Unknown entries")
	}
	if Max.Compress(mixed) != stpMs(20) {
		t.Error("max must skip Unknown entries")
	}
}

func TestCompressorNames(t *testing.T) {
	if Min.Name() != "min" || Max.Name() != "max" {
		t.Error("compressor names broken")
	}
	f := Func{FuncName: "mean", Fn: func(vec []STP) STP { return Unknown }}
	if f.Name() != "mean" {
		t.Error("Func name broken")
	}
}

func TestFuncCompressor(t *testing.T) {
	// A user-defined operator: second smallest (sustain the two fastest
	// consumers).
	second := Func{FuncName: "second-min", Fn: func(vec []STP) STP {
		best, next := Unknown, Unknown
		for _, s := range vec {
			if !s.Known() {
				continue
			}
			switch {
			case !best.Known() || s < best:
				next = best
				best = s
			case !next.Known() || s < next:
				next = s
			}
		}
		if next.Known() {
			return next
		}
		return best
	}}
	if got := second.Compress(paperVec); got != stpMs(273) {
		t.Fatalf("second-min = %v, want 273ms", got)
	}
}

// Property: min ≤ every known element ≤ max; both results are elements of
// the vector; permutation invariance.
func TestCompressQuickBounds(t *testing.T) {
	f := func(raw []uint32, seed int64) bool {
		vec := make([]STP, len(raw))
		anyKnown := false
		for i, v := range raw {
			vec[i] = STP(v) // includes Unknown when v==0
			if vec[i].Known() {
				anyKnown = true
			}
		}
		mn, mx := Min.Compress(vec), Max.Compress(vec)
		if !anyKnown {
			return mn == Unknown && mx == Unknown
		}
		foundMin, foundMax := false, false
		for _, s := range vec {
			if !s.Known() {
				continue
			}
			if s < mn || s > mx {
				return false
			}
			if s == mn {
				foundMin = true
			}
			if s == mx {
				foundMax = true
			}
		}
		if !foundMin || !foundMax {
			return false
		}
		// Permutation invariance.
		perm := make([]STP, len(vec))
		copy(perm, vec)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return Min.Compress(perm) == mn && Max.Compress(perm) == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
