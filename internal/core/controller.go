package core

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/graph"
)

// BackwardVec is the backwardSTP vector of one task-graph node: one slot
// per output connection, holding the (optionally filtered) summary-STP
// most recently received from that downstream node. It is safe for
// concurrent use.
//
// The vector maintains its compressed (folded) value incrementally: for
// the foldable min/max operators an Update adjusts the cached fold in
// O(1) (a full re-fold is deferred only when the current extremum is
// raised/lowered away, and on RemoveSlot); custom compressors mark the
// cache dirty and re-fold lazily through a reused scratch slice. Either
// way the per-piggyback path (NoteGet/NotePut) performs zero allocations
// and a single lock hop on the vector — the pre-optimization design took
// two vector locks and built a fresh snapshot slice on every piggyback.
//
// The cache is keyed by the compression operator's Name(): callers that
// alternate between differently named compressors on one vector (none
// do) pay a re-fold per switch. Compressors must be deterministic pure
// functions of the vector, which the Compressor contract already
// requires.
type BackwardVec struct {
	mu      sync.Mutex
	order   []graph.ConnID
	slots   map[graph.ConnID]STP
	filters map[graph.ConnID]Filter

	comp       Compressor // operator the cached fold belongs to (nil: none yet)
	compName   string
	compIsMin  bool
	compIsMax  bool
	compressed STP
	dirty      bool
	scratch    []STP // reused by re-folds under custom compressors
}

// NewBackwardVec creates a vector with one Unknown slot per connection.
// newFilter may be nil for unfiltered feedback.
func NewBackwardVec(conns []graph.ConnID, newFilter FilterFactory) *BackwardVec {
	v := &BackwardVec{
		order:   append([]graph.ConnID(nil), conns...),
		slots:   make(map[graph.ConnID]STP, len(conns)),
		filters: make(map[graph.ConnID]Filter, len(conns)),
	}
	for _, c := range conns {
		v.slots[c] = Unknown
		if newFilter != nil {
			v.filters[c] = newFilter()
		}
	}
	return v
}

// AddSlot registers an additional output connection after construction,
// with its own filter instance. It is used where connections attach
// dynamically (remote consumers joining a channel server). Adding an
// existing slot is a no-op.
func (v *BackwardVec) AddSlot(conn graph.ConnID, newFilter FilterFactory) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.slots[conn]; ok {
		return
	}
	v.order = append(v.order, conn)
	v.slots[conn] = Unknown
	if newFilter != nil {
		v.filters[conn] = newFilter()
	}
}

// RemoveSlot drops a connection from the vector (consumer detach), so its
// stale feedback no longer influences compression. The cached fold is
// fully recomputed on the next read — removal can promote any slot to
// the new extremum.
func (v *BackwardVec) RemoveSlot(conn graph.ConnID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.slots[conn]; !ok {
		return
	}
	delete(v.slots, conn)
	delete(v.filters, conn)
	for i, c := range v.order {
		if c == conn {
			v.order = append(v.order[:i], v.order[i+1:]...)
			break
		}
	}
	v.dirty = true
}

// bindLocked points the fold cache at compressor c (identified by name).
func (v *BackwardVec) bindLocked(c Compressor) {
	if v.comp != nil && v.compName == c.Name() {
		return
	}
	v.comp = c
	v.compName = c.Name()
	_, v.compIsMin = c.(minCompressor)
	_, v.compIsMax = c.(maxCompressor)
	v.dirty = true
}

// foldUpdateLocked folds one slot transition old→s into the cached
// compressed value, marking the cache dirty when the fold cannot be
// maintained in O(1) (the previous extremum moved away, or the operator
// is not min/max).
func (v *BackwardVec) foldUpdateLocked(old, s STP) {
	if v.comp == nil || v.dirty {
		v.dirty = true
		return
	}
	switch {
	case v.compIsMin:
		if s.Known() && (!v.compressed.Known() || s <= v.compressed) {
			v.compressed = s
		} else if old.Known() && old == v.compressed {
			v.dirty = true // the previous minimum was raised or withdrawn
		}
	case v.compIsMax:
		if s.Known() && s >= v.compressed {
			v.compressed = s
		} else if old.Known() && old == v.compressed {
			v.dirty = true // the previous maximum was lowered or withdrawn
		}
	default:
		v.dirty = true
	}
}

// recomputeLocked re-folds the whole vector under the bound compressor.
// Min/max fold directly over the slots; custom operators are fed through
// the reused scratch slice. No allocation in steady state.
func (v *BackwardVec) recomputeLocked() {
	v.dirty = false
	if v.comp == nil {
		v.compressed = Unknown
		return
	}
	if v.compIsMin || v.compIsMax {
		out := Unknown
		for _, c := range v.order {
			s := v.slots[c]
			if v.compIsMin {
				out = MinSTP(out, s)
			} else {
				out = MaxSTP(out, s)
			}
		}
		v.compressed = out
		return
	}
	v.scratch = v.scratch[:0]
	for _, c := range v.order {
		v.scratch = append(v.scratch, v.slots[c])
	}
	v.compressed = v.comp.Compress(v.scratch)
}

// updateLocked applies the filter and stores the slot, folding the
// transition into the cache. It reports whether the slot existed.
func (v *BackwardVec) updateLocked(conn graph.ConnID, s STP) bool {
	old, ok := v.slots[conn]
	if !ok {
		return false
	}
	if f, ok := v.filters[conn]; ok {
		s = f.Apply(s)
	}
	v.slots[conn] = s
	v.foldUpdateLocked(old, s)
	return true
}

// Update stores the summary-STP received on conn, passing it through the
// slot's filter. Updates for connections not in the vector are ignored
// (a detached consumer may still have a feedback message in flight).
func (v *BackwardVec) Update(conn graph.ConnID, s STP) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.updateLocked(conn, s)
}

// Snapshot returns the slot values in connection order.
func (v *BackwardVec) Snapshot() []STP {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]STP, len(v.order))
	for i, c := range v.order {
		out[i] = v.slots[c]
	}
	return out
}

// Compressed folds the vector with the compressor, served from the
// incremental cache whenever it is clean.
func (v *BackwardVec) Compressed(c Compressor) STP {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.bindLocked(c)
	if v.dirty {
		v.recomputeLocked()
	}
	return v.compressed
}

// UpdateAndCompress stores the summary-STP received on conn and returns
// the vector's compressed value under c — the piggyback fast path, one
// lock acquisition and zero allocations.
func (v *BackwardVec) UpdateAndCompress(conn graph.ConnID, s STP, c Compressor) STP {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.bindLocked(c)
	v.updateLocked(conn, s)
	if v.dirty {
		v.recomputeLocked()
	}
	return v.compressed
}

// Policy selects the ARU behaviour for a run.
type Policy struct {
	// Enabled turns the mechanism on. When false, no feedback is
	// propagated and no thread throttles (the paper's "No ARU"
	// baseline).
	Enabled bool
	// Compressor is the default compression operator (Min unless set).
	Compressor Compressor
	// PerNode overrides the compressor for named nodes, the paper's
	// "parameter added to all channel/queue and thread creation APIs"
	// for encoding known data dependencies.
	PerNode map[string]Compressor
	// NewFilter optionally smooths incoming summary-STP values
	// (reproduction extension; nil reproduces the paper).
	NewFilter FilterFactory
	// EstimatorFactory optionally plugs an estimator stage between the
	// compressed feedback and the pacing throttle of every thread node
	// (reproduction extension, DESIGN.md §4h; nil reproduces the paper:
	// threads pace to the raw summary-STP).
	EstimatorFactory EstimatorFactory
}

// WithEstimator returns a copy of the policy with the estimator stage
// plugged in.
func (p Policy) WithEstimator(f EstimatorFactory) Policy {
	p.EstimatorFactory = f
	return p
}

// PolicyOff returns the No-ARU baseline policy.
func PolicyOff() Policy { return Policy{} }

// PolicyMin returns ARU with the default conservative min operator.
func PolicyMin() Policy { return Policy{Enabled: true, Compressor: Min} }

// PolicyMax returns ARU with the aggressive max operator everywhere,
// appropriate for pipelines whose sink dictates overall throughput (the
// tracker's GUI).
func PolicyMax() Policy { return Policy{Enabled: true, Compressor: Max} }

// Name describes the policy for reports.
func (p Policy) Name() string {
	if !p.Enabled {
		return "no-aru"
	}
	c := p.Compressor
	if c == nil {
		c = Min
	}
	return "aru-" + c.Name()
}

// DefaultStaleTTL is the default age past which a remote node's
// summary-STP stops being fully trusted (see NodeState.MarkRemote).
const DefaultStaleTTL = 10 * time.Second

// NodeState holds the ARU state of one task-graph node.
type NodeState struct {
	node *graph.Node
	comp Compressor
	vec  *BackwardVec

	mu      sync.Mutex
	current STP // threads only: effective current-STP (parallel fold when replicated)
	primary STP // threads only: the primary incarnation's own measured current-STP
	// repl holds the live elastic replicas' last measured current-STPs by
	// replica slot. It stays nil until the scheduler registers a replica,
	// so unreplicated pipelines keep the exact pre-elastic fold (current
	// == primary) with no extra work on the Sync path.
	repl    map[int]STP
	summary STP
	remote  bool // summary is externally supplied (wire-backed buffer)

	// Staleness tracking for remote summaries: clk stamps each
	// SetSummary; past staleTTL of silence the stored summary decays
	// linearly to Unknown over a second staleTTL, so feedback from a
	// dead peer stops throttling upstream producers (they return to
	// local current-STP pacing — the safe direction: shedding load on a
	// healthy pipeline wastes capacity, but pacing to a ghost wedges
	// it). staleTTL <= 0 or a nil clk disables decay.
	clk       clock.Clock
	staleTTL  time.Duration
	summaryAt time.Duration // clk reading at the last SetSummary

	// Estimator stage (thread nodes under an estimator-bearing policy
	// only). est is set once at construction and never mutated, so the
	// nil check on the hot path needs no lock; estClk stamps
	// observations and target reads.
	est    Estimator
	estClk clock.Clock
}

// Node returns the underlying graph node.
func (n *NodeState) Node() *graph.Node { return n.node }

// Vec returns the node's backwardSTP vector.
func (n *NodeState) Vec() *BackwardVec { return n.vec }

// Compressor returns the operator the node folds its vector with.
func (n *NodeState) Compressor() Compressor { return n.comp }

// applySummary derives the node's summary-STP per the paper's algorithm:
// threads take max(compressed-backwardSTP, current-STP); buffers take the
// compressed value alone (they generate no current-STP).
func (n *NodeState) applySummary(compressed STP) {
	n.mu.Lock()
	if n.remote {
		// A wire-backed buffer's summary is authoritative on the remote
		// holder; locally folded values must not overwrite it.
		n.mu.Unlock()
		return
	}
	if n.node.Kind == graph.KindThread {
		n.summary = MaxSTP(compressed, n.current)
	} else {
		n.summary = compressed
	}
	n.mu.Unlock()
}

// ReceiveSummary folds a summary-STP received on an output connection and
// refreshes the node's own summary. This is the piggyback hot path: one
// lock hop on the vector (update + cached fold) and one on the node
// state, no allocations, plus one estimator observation when the stage
// is plugged in (a single predictable branch when it is not).
func (n *NodeState) ReceiveSummary(conn graph.ConnID, s STP) {
	compressed := n.vec.UpdateAndCompress(conn, s, n.comp)
	if n.est != nil {
		n.est.Observe(n.estClk.Now(), conn, s, compressed)
	}
	n.applySummary(compressed)
}

// RefreshSummary re-derives the node's summary-STP from its vector's
// current compressed value. Used after out-of-band vector surgery
// (RemoveSlot on a failed consumer) where no piggyback is in flight to
// trigger the re-fold.
func (n *NodeState) RefreshSummary() {
	n.applySummary(n.vec.Compressed(n.comp))
}

// SetCurrentSTP records a thread's newly measured current-STP and
// refreshes the summary. For a replicated stage the measurement lands in
// the primary's slot and the effective current becomes the parallel fold
// over every live incarnation (see foldLocked).
func (n *NodeState) SetCurrentSTP(s STP) {
	n.mu.Lock()
	n.primary = s
	n.current = n.foldLocked()
	n.mu.Unlock()
	n.applySummary(n.vec.Compressed(n.comp))
}

// CurrentSTP returns the thread's last measured current-STP.
func (n *NodeState) CurrentSTP() STP {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.current
}

// Summary returns the node's current summary-STP. For remote nodes with
// staleness tracking, the stored value is decayed by its age: full
// strength through staleTTL, then linearly down to Unknown by 2×staleTTL.
func (n *NodeState) Summary() STP {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.decayedLocked()
}

// Target returns the period the node's thread should pace to: the raw
// summary-STP under raw propagation (the paper's signal), or the
// estimator's damped target when the stage is plugged in. Estimators
// receive the raw summary as fallback so cold or expired estimates
// degrade to exactly the paper's behaviour.
func (n *NodeState) Target() STP {
	s := n.Summary()
	if n.est == nil {
		return s
	}
	return n.est.Target(n.estClk.Now(), s)
}

// Estimator returns the node's estimator stage (nil under raw
// propagation).
func (n *NodeState) Estimator() Estimator { return n.est }

// decayedLocked applies the staleness decay to the stored summary.
func (n *NodeState) decayedLocked() STP {
	s := n.summary
	if !n.remote || n.staleTTL <= 0 || n.clk == nil || !s.Known() {
		return s
	}
	age := n.clk.Now() - n.summaryAt
	if age <= n.staleTTL {
		return s
	}
	if age >= 2*n.staleTTL {
		return Unknown
	}
	// Linear fade over the second TTL. A shrinking period throttles
	// upstream producers less and less until local pacing takes over.
	frac := float64(2*n.staleTTL-age) / float64(n.staleTTL)
	return STP(float64(s) * frac)
}

// MarkRemote declares the node's summary externally supplied: local folds
// stop writing it and SetSummary becomes the only writer. Used for
// wire-backed buffer endpoints, whose authoritative summary-STP lives on
// the remote server and arrives piggybacked on put replies. clk and
// staleTTL enable staleness decay (see NodeState docs); a nil clk or
// non-positive TTL trusts remote feedback forever.
func (n *NodeState) MarkRemote(clk clock.Clock, staleTTL time.Duration) {
	n.mu.Lock()
	n.remote = true
	n.clk = clk
	n.staleTTL = staleTTL
	if clk != nil {
		n.summaryAt = clk.Now()
	}
	n.mu.Unlock()
}

// Remote reports whether the node's summary is externally supplied.
func (n *NodeState) Remote() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.remote
}

// Degraded reports whether a remote node's feedback has gone stale: a
// known summary older than the staleness TTL. It turns false again as
// soon as fresh feedback arrives (SetSummary restamps the age).
func (n *NodeState) Degraded() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.remote || n.staleTTL <= 0 || n.clk == nil || !n.summary.Known() {
		return false
	}
	return n.clk.Now()-n.summaryAt > n.staleTTL
}

// SetSummary overwrites the node's summary-STP with an externally
// supplied value (the wire feedback path for remote buffers), stamping
// its arrival time for staleness decay.
func (n *NodeState) SetSummary(s STP) {
	n.mu.Lock()
	n.summary = s
	if n.clk != nil {
		n.summaryAt = n.clk.Now()
	}
	n.mu.Unlock()
}

// Controller owns the ARU state for every node of a task graph and
// implements the piggyback propagation rules. All methods are safe for
// concurrent use by the runtime's thread goroutines.
type Controller struct {
	g      *graph.Graph
	policy Policy
	states []*NodeState
}

// NewController builds per-node state for the whole graph under the given
// policy. It is valid (and cheap) to build a controller for a disabled
// policy; its methods become no-ops that report Unknown. An
// estimator-bearing policy timestamps observations on the real clock;
// use NewControllerOn to supply a test or virtual clock.
func NewController(g *graph.Graph, p Policy) *Controller {
	return NewControllerOn(g, p, nil)
}

// NewControllerOn is NewController with an explicit clock for the
// estimator stage (nil falls back to the real clock). The runtime passes
// its own clock so estimators see manual/virtual time in tests and
// simulations.
func NewControllerOn(g *graph.Graph, p Policy, clk clock.Clock) *Controller {
	if p.Compressor == nil {
		p.Compressor = Min
	}
	if p.EstimatorFactory != nil && clk == nil {
		clk = clock.NewReal()
	}
	c := &Controller{g: g, policy: p, states: make([]*NodeState, g.NumNodes())}
	g.Nodes(func(n *graph.Node) {
		comp := p.Compressor
		if over, ok := p.PerNode[n.Name]; ok && over != nil {
			comp = over
		}
		st := &NodeState{
			node: n,
			comp: comp,
			vec:  NewBackwardVec(n.Out, p.NewFilter),
		}
		// The estimator stage shapes pacing, and only threads pace:
		// buffer nodes keep raw folds so the propagated vector is
		// byte-identical to the paper's regardless of backend.
		if p.EstimatorFactory != nil && n.Kind == graph.KindThread {
			st.est = p.EstimatorFactory()
			st.estClk = clk
		}
		c.states[n.ID] = st
	})
	return c
}

// Policy returns the controller's policy.
func (c *Controller) Policy() Policy { return c.policy }

// Enabled reports whether feedback propagation is active.
func (c *Controller) Enabled() bool { return c.policy.Enabled }

// State returns the ARU state for a node.
func (c *Controller) State(id graph.NodeID) *NodeState { return c.states[id] }

// NoteGet implements the consumer-side piggyback: when a consumer thread
// performs a get over conn (a buffer→thread edge), its summary-STP is
// delivered to the buffer's backwardSTP slot for that connection.
func (c *Controller) NoteGet(conn graph.ConnID) {
	if !c.policy.Enabled {
		return
	}
	edge := c.g.Conn(conn)
	consumer := c.states[edge.To]
	buffer := c.states[edge.From]
	buffer.ReceiveSummary(conn, consumer.Summary())
}

// NotePut implements the producer-side piggyback: when a producer thread
// performs a put over conn (a thread→buffer edge), the buffer's
// summary-STP is returned to the producer's backwardSTP slot for that
// connection.
func (c *Controller) NotePut(conn graph.ConnID) {
	if !c.policy.Enabled {
		return
	}
	edge := c.g.Conn(conn)
	producer := c.states[edge.From]
	buffer := c.states[edge.To]
	producer.ReceiveSummary(conn, buffer.Summary())
}

// SetCurrentSTP records a thread's measured current-STP (the
// periodicity_sync() entry point).
func (c *Controller) SetCurrentSTP(id graph.NodeID, s STP) {
	if !c.policy.Enabled {
		return
	}
	c.states[id].SetCurrentSTP(s)
}

// MarkRemote declares a node's summary-STP externally supplied (see
// NodeState.MarkRemote), with staleness decay driven by clk and
// staleTTL. Safe to call regardless of policy.
func (c *Controller) MarkRemote(id graph.NodeID, clk clock.Clock, staleTTL time.Duration) {
	c.states[id].MarkRemote(clk, staleTTL)
}

// Degraded reports whether a remote node's feedback has gone stale (see
// NodeState.Degraded). It is always false for local nodes and disabled
// policies.
func (c *Controller) Degraded(id graph.NodeID) bool {
	if !c.policy.Enabled {
		return false
	}
	return c.states[id].Degraded()
}

// SetRemoteSummary delivers a remote buffer's summary-STP as received
// over the wire. It is the remote counterpart of the NotePut fold.
func (c *Controller) SetRemoteSummary(id graph.NodeID, s STP) {
	if !c.policy.Enabled {
		return
	}
	c.states[id].SetSummary(s)
}

// DropConsumer removes a dead consumer's feedback slot from the vector
// of the buffer it consumed from (conn is a buffer→thread edge) and
// re-derives the buffer's summary. This is the local analogue of the
// remote staleness decay: feedback must always reflect *live* consumers,
// so a permanently failed thread's last summary-STP must stop throttling
// upstream producers. With the slot gone, the buffer's fold is taken over
// the surviving consumers only (Unknown when none remain), and producers
// return to their own measured period on their next NotePut.
func (c *Controller) DropConsumer(conn graph.ConnID) {
	if !c.policy.Enabled {
		return
	}
	edge := c.g.Conn(conn)
	st := c.states[edge.From]
	st.vec.RemoveSlot(conn)
	st.RefreshSummary()
}

// FadeNode clears a permanently failed thread's own ARU state: its
// current-STP and summary-STP become Unknown, so any reader of the dead
// node's feedback (ConsumerSummary for a wire-forwarded get, status
// dumps) observes "no demand" rather than the ghost of its last measured
// period.
func (c *Controller) FadeNode(id graph.NodeID) {
	if !c.policy.Enabled {
		return
	}
	st := c.states[id]
	st.mu.Lock()
	st.current = Unknown
	st.primary = Unknown
	st.repl = nil // replicas die with their primary's permanent failure
	st.summary = Unknown
	st.mu.Unlock()
	if st.est != nil {
		// A dead node's estimation history must die with it: were the
		// node restarted, a damped target learned from the old incarnation
		// would pace the new one to a ghost.
		st.est.Reset()
	}
}

// ConsumerSummary returns the summary-STP of the thread consuming over
// conn (a buffer→thread edge), or Unknown when feedback is disabled. It
// is what a wire-backed buffer endpoint forwards with each remote get.
func (c *Controller) ConsumerSummary(conn graph.ConnID) STP {
	if !c.policy.Enabled {
		return Unknown
	}
	return c.states[c.g.Conn(conn).To].Summary()
}

// TargetPeriod returns the period a thread should pace itself to: its own
// summary-STP under raw propagation, or the estimator's damped target
// when the pipeline's estimator stage is plugged in. Unknown (or a
// disabled policy) means "run free".
func (c *Controller) TargetPeriod(id graph.NodeID) STP {
	if !c.policy.Enabled {
		return Unknown
	}
	return c.states[id].Target()
}

// EstimatorState reports the estimator stage's observable state for a
// node, and whether the node has one (thread nodes under an
// estimator-bearing policy).
func (c *Controller) EstimatorState(id graph.NodeID) (EstimatorState, bool) {
	st := c.states[id]
	if st == nil || st.est == nil {
		return EstimatorState{}, false
	}
	return st.est.State(st.estClk.Now()), true
}

// Meter measures a thread's current-STP across loop iterations: the
// iteration wall time minus time blocked on inputs and minus deliberate
// throttle sleep, i.e. "the minimum time required to produce an item given
// present load conditions" (§3.3.1). One Meter belongs to one thread
// goroutine; it is not safe for concurrent use.
type Meter struct {
	clk       clock.Clock
	iterStart time.Duration
	blocked   time.Duration
	throttled time.Duration
	started   bool
}

// NewMeter returns a meter reading the given clock.
func NewMeter(clk clock.Clock) *Meter {
	return &Meter{clk: clk}
}

// BeginIteration marks the start of a thread loop iteration.
func (m *Meter) BeginIteration() {
	m.iterStart = m.clk.Now()
	m.blocked = 0
	m.throttled = 0
	m.started = true
}

// AddBlocked accounts time spent waiting for an upstream stage to produce
// data; it is excluded from the current-STP.
func (m *Meter) AddBlocked(d time.Duration) {
	if d > 0 {
		m.blocked += d
	}
}

// AddThrottled accounts deliberate pacing sleep; also excluded.
func (m *Meter) AddThrottled(d time.Duration) {
	if d > 0 {
		m.throttled += d
	}
}

// Elapsed returns the full wall time of the current iteration so far
// (compute + blocked + throttled), or 0 if no iteration is open.
func (m *Meter) Elapsed() time.Duration {
	if !m.started {
		return 0
	}
	return m.clk.Now() - m.iterStart
}

// EndIteration closes the iteration and returns its current-STP along
// with the busy (compute) time and the time spent blocked on inputs.
// Calling it before BeginIteration returns zeros.
func (m *Meter) EndIteration() (current STP, busy, blocked time.Duration) {
	if !m.started {
		return Unknown, 0, 0
	}
	elapsed := m.clk.Now() - m.iterStart
	busy = elapsed - m.blocked - m.throttled
	if busy < 0 {
		busy = 0
	}
	blocked = m.blocked
	m.started = false
	if busy == 0 {
		return Unknown, 0, blocked
	}
	return STP(busy), busy, blocked
}

// Throttle paces a source thread to a target period.
type Throttle struct {
	clk clock.Clock
}

// NewThrottle returns a throttle on the given clock.
func NewThrottle(clk clock.Clock) *Throttle {
	return &Throttle{clk: clk}
}

// Pace sleeps long enough that an iteration which has already consumed
// spent reaches the target period, returning the time slept. Unknown
// targets and already-slow iterations sleep nothing.
func (t *Throttle) Pace(target STP, spent time.Duration) time.Duration {
	if !target.Known() {
		return 0
	}
	gap := target.Duration() - spent
	if gap <= 0 {
		return 0
	}
	t.clk.Sleep(gap)
	return gap
}
