// Package core implements the paper's primary contribution: the Adaptive
// Resource Utilization (ARU) mechanism (§3).
//
// Every thread measures its sustainable thread period (STP) — the time one
// loop iteration takes excluding time blocked on inputs. Every task-graph
// node (thread, channel, or queue) keeps a backwardSTP vector with one slot
// per output connection, holding the last summary-STP reported by that
// downstream node. Each node folds its vector with a compression operator
// (min by default, max when downstream data dependencies justify it),
// combines the result with its own current-STP if it is a thread, and
// propagates the resulting summary-STP upstream, piggybacked on put/get
// operations. Source threads pace their production to the summary-STP they
// receive; the cascade adjusts every upstream stage.
package core

import (
	"fmt"
	"time"
)

// STP is a sustainable thread period: the minimum time a node currently
// needs per item. The zero value means "unknown" — no feedback has been
// received yet — and is ignored by compression.
type STP time.Duration

// Unknown is the STP of a node that has not yet reported.
const Unknown STP = 0

// Known reports whether the value carries real feedback.
func (s STP) Known() bool { return s > 0 }

// Duration converts the period to a time.Duration.
func (s STP) Duration() time.Duration { return time.Duration(s) }

// String renders the period like a duration, or "unknown".
func (s STP) String() string {
	if !s.Known() {
		return "stp(unknown)"
	}
	return fmt.Sprintf("stp(%v)", time.Duration(s))
}

// MaxSTP returns the larger of two periods, treating Unknown as absent.
func MaxSTP(a, b STP) STP {
	if !a.Known() {
		return b
	}
	if !b.Known() {
		return a
	}
	if a > b {
		return a
	}
	return b
}

// MinSTP returns the smaller of two periods, treating Unknown as absent.
func MinSTP(a, b STP) STP {
	if !a.Known() {
		return b
	}
	if !b.Known() {
		return a
	}
	if a < b {
		return a
	}
	return b
}

// Compressor folds a backwardSTP vector into the compressed-backwardSTP
// value (§3.3.2). Implementations must ignore Unknown entries and return
// Unknown for an all-unknown vector.
type Compressor interface {
	// Name identifies the operator ("min", "max", ...).
	Name() string
	// Compress folds the vector.
	Compress(vec []STP) STP
}

type minCompressor struct{}

func (minCompressor) Name() string { return "min" }
func (minCompressor) Compress(vec []STP) STP {
	out := Unknown
	for _, s := range vec {
		out = MinSTP(out, s)
	}
	return out
}

type maxCompressor struct{}

func (maxCompressor) Name() string { return "max" }
func (maxCompressor) Compress(vec []STP) STP {
	out := Unknown
	for _, s := range vec {
		out = MaxSTP(out, s)
	}
	return out
}

// Min is the default compression operator: sustain the fastest consumer.
// It never hurts throughput and is safe under any data-dependency pattern,
// which is why the paper makes it the default.
var Min Compressor = minCompressor{}

// Max matches the slowest consumer. It is the aggressive operator, correct
// when complete data dependencies exist between all consumers (e.g. a
// downstream join consumes corresponding items from every output), so
// producing faster than the slowest consumer is pure waste.
var Max Compressor = maxCompressor{}

// Func adapts a user-defined compression function, the paper's escape
// hatch for application writers who understand their consumers' data
// dependencies.
type Func struct {
	// FuncName is reported by Name.
	FuncName string
	// Fn folds the vector; it must honor the Unknown conventions.
	Fn func(vec []STP) STP
}

// Name implements Compressor.
func (f Func) Name() string { return f.FuncName }

// Compress implements Compressor.
func (f Func) Compress(vec []STP) STP { return f.Fn(vec) }
