package core

import "time"

// TrendState classifies the trend of the feedback signal: is downstream
// demand (the compressed summary-STP, our proxy for backlog pressure)
// growing, shrinking, or flat?
type TrendState int8

const (
	// TrendUnderuse: the demanded period is falling — downstream is
	// speeding up, slack is opening.
	TrendUnderuse TrendState = -1
	// TrendHold: no significant trend.
	TrendHold TrendState = 0
	// TrendOveruse: the demanded period is rising — downstream is
	// slowing, pressure is building.
	TrendOveruse TrendState = 1
)

// String renders the trend for status output.
func (t TrendState) String() string {
	switch t {
	case TrendUnderuse:
		return "underuse"
	case TrendOveruse:
		return "overuse"
	default:
		return "hold"
	}
}

// trendSample is one (time, value) point of a Trendline window.
type trendSample struct {
	at time.Duration
	v  float64
}

// Trendline fits a least-squares line through a bounded window of
// timestamped feedback samples and classifies its slope as
// overuse/hold/underuse — the GCC trendline-filter idiom transplanted
// from delay gradients to summary-STP gradients. The raw least-squares
// slope is smoothed through a Kalman-style gain before thresholding, so
// one outlier sample cannot flip the classification.
//
// The slope is normalized by the window's mean value, making the
// threshold a relative drift rate (fraction of the signal per second)
// that works unchanged whether periods sit at 5ms or 5s.
// Trendline is not safe for concurrent use; the owning estimator
// serializes access.
type Trendline struct {
	window    time.Duration
	maxCount  int
	gain      float64 // smoothing gain applied to each new slope fit
	threshold float64 // |smoothed slope| below this is Hold (fraction/sec)

	samples []trendSample // ring buffer
	head    int
	count   int
	slope   float64 // smoothed normalized slope, fraction/sec
	fitted  bool
}

// NewTrendline returns a slope filter over a window of timestamped
// samples. gain in (0, 1] smooths successive slope fits (1 disables
// smoothing); threshold is the relative drift rate (fraction of the
// signal per second) below which the trend reads Hold.
func NewTrendline(window time.Duration, maxCount int, gain, threshold float64) *Trendline {
	if window <= 0 {
		panic("core: Trendline window must be positive")
	}
	if maxCount < 3 {
		panic("core: Trendline maxCount must be ≥ 3")
	}
	if gain <= 0 || gain > 1 {
		panic("core: Trendline gain must be in (0, 1]")
	}
	if threshold <= 0 {
		panic("core: Trendline threshold must be positive")
	}
	return &Trendline{
		window: window, maxCount: maxCount, gain: gain, threshold: threshold,
		samples: make([]trendSample, maxCount),
	}
}

// prune drops samples older than the window relative to now.
func (t *Trendline) prune(now time.Duration) {
	for t.count > 0 {
		if now-t.samples[t.head].at <= t.window {
			return
		}
		t.head = (t.head + 1) % len(t.samples)
		t.count--
	}
}

// Add records one feedback sample and refreshes the smoothed slope.
func (t *Trendline) Add(now time.Duration, v float64) {
	t.prune(now)
	if t.count == len(t.samples) {
		t.head = (t.head + 1) % len(t.samples)
		t.count--
	}
	t.samples[(t.head+t.count)%len(t.samples)] = trendSample{at: now, v: v}
	t.count++

	fit, ok := t.fitLocked()
	if !ok {
		return
	}
	if !t.fitted {
		t.slope, t.fitted = fit, true
		return
	}
	t.slope += t.gain * (fit - t.slope)
}

// fitLocked computes the least-squares slope of the window, normalized
// by the mean value: fraction of the signal per second. It needs at
// least three samples spanning non-zero time and a non-zero mean.
func (t *Trendline) fitLocked() (float64, bool) {
	if t.count < 3 {
		return 0, false
	}
	var sumT, sumV float64
	for i := 0; i < t.count; i++ {
		s := t.samples[(t.head+i)%len(t.samples)]
		sumT += s.at.Seconds()
		sumV += s.v
	}
	n := float64(t.count)
	meanT, meanV := sumT/n, sumV/n
	if meanV == 0 {
		return 0, false
	}
	var num, den float64
	for i := 0; i < t.count; i++ {
		s := t.samples[(t.head+i)%len(t.samples)]
		dt := s.at.Seconds() - meanT
		num += dt * (s.v - meanV)
		den += dt * dt
	}
	if den == 0 {
		return 0, false
	}
	return (num / den) / meanV, true
}

// Slope returns the smoothed normalized slope (fraction of the signal
// per second) and whether a fit exists yet.
func (t *Trendline) Slope() (float64, bool) { return t.slope, t.fitted }

// State classifies the smoothed slope against the threshold.
func (t *Trendline) State() TrendState {
	if !t.fitted {
		return TrendHold
	}
	switch {
	case t.slope > t.threshold:
		return TrendOveruse
	case t.slope < -t.threshold:
		return TrendUnderuse
	default:
		return TrendHold
	}
}

// Reset clears the window and the smoothed slope.
func (t *Trendline) Reset() {
	t.head, t.count, t.slope, t.fitted = 0, 0, 0, false
}
