package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/graph"
)

// degradeFixture builds src(thread) → ch(channel) with ch marked remote
// under a manual clock and a 100ms staleness TTL.
func degradeFixture(t *testing.T) (*Controller, *clock.Manual, graph.NodeID, graph.NodeID, graph.ConnID) {
	t.Helper()
	g := graph.New()
	src, err := g.AddNode(graph.KindThread, "src", 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := g.AddNode(graph.KindChannel, "ch", 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := g.Connect(src, ch)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewManual()
	ctrl := NewController(g, PolicyMin())
	ctrl.MarkRemote(ch, clk, 100*time.Millisecond)
	return ctrl, clk, src, ch, conn
}

// TestRemoteSummaryDecaySchedule pins the decay: a remote summary holds
// full strength through the TTL, fades linearly over the second TTL, and
// is Unknown past 2×TTL. Degraded flips at exactly age > TTL.
func TestRemoteSummaryDecaySchedule(t *testing.T) {
	ctrl, clk, _, ch, _ := degradeFixture(t)
	st := ctrl.State(ch)

	ctrl.SetRemoteSummary(ch, STP(400*time.Millisecond))
	if got := st.Summary(); got != STP(400*time.Millisecond) {
		t.Fatalf("fresh summary = %v", got)
	}
	if ctrl.Degraded(ch) {
		t.Fatal("fresh summary must not be degraded")
	}

	// Exactly at the TTL: still full strength, still healthy.
	clk.Advance(100 * time.Millisecond)
	if got := st.Summary(); got != STP(400*time.Millisecond) {
		t.Fatalf("summary at TTL = %v, want full 400ms", got)
	}
	if ctrl.Degraded(ch) {
		t.Fatal("age == TTL must not be degraded yet")
	}

	// Midway through the fade: half strength, degraded.
	clk.Advance(50 * time.Millisecond)
	if got := st.Summary(); got != STP(200*time.Millisecond) {
		t.Fatalf("summary at 1.5×TTL = %v, want 200ms (half)", got)
	}
	if !ctrl.Degraded(ch) {
		t.Fatal("age 1.5×TTL must be degraded")
	}

	// Three quarters through: quarter strength.
	clk.Advance(25 * time.Millisecond)
	if got := st.Summary(); got != STP(100*time.Millisecond) {
		t.Fatalf("summary at 1.75×TTL = %v, want 100ms", got)
	}

	// Fully stale: Unknown — the ghost stops throttling anyone.
	clk.Advance(25 * time.Millisecond)
	if got := st.Summary(); got.Known() {
		t.Fatalf("summary at 2×TTL = %v, want Unknown", got)
	}
	if !ctrl.Degraded(ch) {
		t.Fatal("silent peer stays degraded until fresh feedback")
	}

	// Fresh feedback heals instantly: full strength, healthy.
	ctrl.SetRemoteSummary(ch, STP(250*time.Millisecond))
	if got := st.Summary(); got != STP(250*time.Millisecond) {
		t.Fatalf("healed summary = %v", got)
	}
	if ctrl.Degraded(ch) {
		t.Fatal("fresh feedback must clear degraded")
	}
}

// TestDecayReturnsProducerToLocalPacing proves the paper-safe direction
// end to end in the controller: while remote feedback is fresh the
// producer paces to it; once it goes fully stale the producer's target
// period falls back to its own current-STP.
func TestDecayReturnsProducerToLocalPacing(t *testing.T) {
	ctrl, clk, src, ch, conn := degradeFixture(t)

	// The producer measures a 30ms local period; the remote channel
	// reports a 400ms summary (a slow downstream consumer).
	ctrl.SetCurrentSTP(src, STP(30*time.Millisecond))
	ctrl.SetRemoteSummary(ch, STP(400*time.Millisecond))
	ctrl.NotePut(conn) // the put-reply piggyback fold
	if got := ctrl.TargetPeriod(src); got != STP(400*time.Millisecond) {
		t.Fatalf("fresh target = %v, want remote 400ms", got)
	}

	// The peer dies. Midway through the fade the throttle weakens.
	clk.Advance(150 * time.Millisecond)
	ctrl.NotePut(conn) // the runtime's Sync-driven fold refresh
	if got := ctrl.TargetPeriod(src); got != STP(200*time.Millisecond) {
		t.Fatalf("mid-decay target = %v, want 200ms", got)
	}

	// Fully stale: the fold sees Unknown and local pacing wins.
	clk.Advance(50 * time.Millisecond)
	ctrl.NotePut(conn)
	if got := ctrl.TargetPeriod(src); got != STP(30*time.Millisecond) {
		t.Fatalf("stale target = %v, want local 30ms", got)
	}

	// Heal: fresh feedback re-throttles on the next fold.
	ctrl.SetRemoteSummary(ch, STP(350*time.Millisecond))
	ctrl.NotePut(conn)
	if got := ctrl.TargetPeriod(src); got != STP(350*time.Millisecond) {
		t.Fatalf("healed target = %v, want 350ms", got)
	}
}

// TestLocalNodesNeverDegrade guards the boundary: staleness is a remote
// concept; in-process buffers and threads are never degraded and their
// summaries never decay.
func TestLocalNodesNeverDegrade(t *testing.T) {
	g := graph.New()
	src, _ := g.AddNode(graph.KindThread, "src", 0)
	ch, _ := g.AddNode(graph.KindChannel, "ch", 0)
	sink, _ := g.AddNode(graph.KindThread, "sink", 0)
	if _, err := g.Connect(src, ch); err != nil {
		t.Fatal(err)
	}
	get, err := g.Connect(ch, sink)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(g, PolicyMin())

	ctrl.SetCurrentSTP(sink, STP(100*time.Millisecond))
	ctrl.NoteGet(get) // sink's summary reaches the in-process channel
	if ctrl.Degraded(ch) || ctrl.Degraded(src) || ctrl.Degraded(sink) {
		t.Fatal("local nodes must never report degraded")
	}
	if got := ctrl.State(ch).Summary(); got != STP(100*time.Millisecond) {
		t.Fatalf("local summary = %v, want undecayed 100ms", got)
	}
}
