package core

import (
	"time"

	"repro/internal/graph"
)

// Estimator is the pluggable feedback-estimation stage of the ARU
// pipeline. It sits between the backwardSTP vector's compression and the
// pacing throttle: every summary-STP a node receives is Observed
// (timestamped, per connection), and the pacing target the node's thread
// throttles to is whatever Target returns — which may be the raw
// compressed summary (the paper's behaviour, the default), or a
// filtered, damped control signal derived from the observation history
// (the AIMD estimator, DESIGN.md §4h).
//
// The paper propagates raw last-sample summary-STPs; under jittery stage
// times the source's pacing target tracks every sample and production
// oscillates — the non-smooth behaviour §3.3.2 names as future work. An
// Estimator is where that future work plugs in, next to the per-slot
// Filter and the vector Compressor: Filter smooths one connection's
// incoming stream, Compressor folds the vector, and the Estimator turns
// the folded history into a stable actuation signal.
//
// One Estimator instance belongs to one thread node. Observe and Target
// are called from the owning thread's goroutine, but State may be called
// concurrently by snapshot readers (WriteStatus, the metrics sampler),
// so implementations must be safe for concurrent use.
type Estimator interface {
	// Name identifies the estimator backend ("raw", "aimd", ...).
	Name() string
	// Observe feeds one feedback observation received at time now on
	// conn: the raw incoming summary-STP and the vector's new compressed
	// fold. Unknown values carry no feedback and must never poison the
	// estimate (mirroring the Filter cold-start contract).
	Observe(now time.Duration, conn graph.ConnID, raw, compressed STP)
	// Target returns the period the node should pace to at time now.
	// fallback is the node's raw summary-STP (the paper's pacing signal);
	// estimators return it while they have no estimate of their own —
	// cold start, or an estimate expired by feedback silence.
	Target(now time.Duration, fallback STP) STP
	// State reports the estimator's observable state at time now for
	// status output and metrics.
	State(now time.Duration) EstimatorState
	// Reset clears all estimation state (used when a node's feedback is
	// faded on permanent downstream failure).
	Reset()
}

// EstimatorFactory builds a fresh estimator per thread node. A nil
// factory means raw propagation: the pacing target is the node's
// summary-STP exactly as the paper specifies.
type EstimatorFactory func() Estimator

// EstimatorState is an estimator's observable state: what WriteStatus
// prints and the metrics sampler publishes per node.
type EstimatorState struct {
	// Name is the estimator backend name.
	Name string
	// Trend is the current backlog-trend classification.
	Trend TrendState
	// Phase is the AIMD controller phase ("hold" for non-AIMD backends).
	Phase AIMDPhase
	// Target is the current damped pacing target (Unknown until the
	// estimator has initialized).
	Target STP
	// Estimate is the sliding-window estimate of the feedback signal.
	Estimate STP
	// FeedbackInterval is the mean interval between feedback samples
	// over the window (0 when fewer than two samples).
	FeedbackInterval time.Duration
	// Backoffs counts multiplicative back-offs applied so far.
	Backoffs uint64
	// Speedups counts additive speed-ups applied so far.
	Speedups uint64
}

// rawEstimator is the default backend: no state, the pacing target is
// the raw summary-STP — byte-for-byte the paper's propagation.
type rawEstimator struct{}

// NewRawEstimator returns the pass-through estimator. It exists so an
// application can plug the estimator stage explicitly and still get the
// paper's behaviour; leaving Policy.EstimatorFactory nil is equivalent
// (and cheaper: no Observe calls are made at all).
func NewRawEstimator() Estimator { return rawEstimator{} }

func (rawEstimator) Name() string                                  { return "raw" }
func (rawEstimator) Observe(time.Duration, graph.ConnID, STP, STP) {}
func (rawEstimator) Target(_ time.Duration, fallback STP) STP      { return fallback }
func (rawEstimator) State(time.Duration) EstimatorState            { return EstimatorState{Name: "raw"} }
func (rawEstimator) Reset()                                        {}

// rateSample is one timestamped observation in a RateStats window.
type rateSample struct {
	at time.Duration
	v  float64
}

// RateStats measures a signal over a bounded sliding window of
// timestamped samples: the arrival rate of samples (how often feedback
// lands) and the windowed mean of their values. It is the model-based
// alternative to acting on a single sample — a scheduler should act on
// an estimate of the rate, not on the last packet (cf. DRS and the GCC
// RateStatistics idiom).
//
// The window is bounded both by age (samples older than window are
// pruned) and by count (maxCount caps memory for bursty feedback); the
// backing ring is reused, so steady-state Adds allocate nothing.
// RateStats is not safe for concurrent use; the owning estimator
// serializes access.
type RateStats struct {
	window   time.Duration
	maxCount int
	samples  []rateSample // ring buffer
	head     int          // index of the oldest sample
	count    int
	sum      float64
}

// NewRateStats returns a sliding-window estimator retaining at most
// maxCount samples no older than window. window must be positive and
// maxCount ≥ 2.
func NewRateStats(window time.Duration, maxCount int) *RateStats {
	if window <= 0 {
		panic("core: RateStats window must be positive")
	}
	if maxCount < 2 {
		panic("core: RateStats maxCount must be ≥ 2")
	}
	return &RateStats{window: window, maxCount: maxCount, samples: make([]rateSample, maxCount)}
}

// prune drops samples older than the window relative to now.
func (r *RateStats) prune(now time.Duration) {
	for r.count > 0 {
		s := r.samples[r.head]
		if now-s.at <= r.window {
			return
		}
		r.sum -= s.v
		r.head = (r.head + 1) % len(r.samples)
		r.count--
	}
}

// Add records one sample at time now.
func (r *RateStats) Add(now time.Duration, v float64) {
	r.prune(now)
	if r.count == len(r.samples) {
		// Count-bounded: overwrite the oldest.
		r.sum -= r.samples[r.head].v
		r.head = (r.head + 1) % len(r.samples)
		r.count--
	}
	idx := (r.head + r.count) % len(r.samples)
	r.samples[idx] = rateSample{at: now, v: v}
	r.count++
	r.sum += v
}

// Count returns the number of samples currently in the window.
func (r *RateStats) Count(now time.Duration) int {
	r.prune(now)
	return r.count
}

// Mean returns the windowed mean of the sample values, or 0 when the
// window is empty.
func (r *RateStats) Mean(now time.Duration) float64 {
	r.prune(now)
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Interval returns the mean spacing between samples in the window, or 0
// when fewer than two samples remain. 1/Interval is the feedback
// arrival rate.
func (r *RateStats) Interval(now time.Duration) time.Duration {
	r.prune(now)
	if r.count < 2 {
		return 0
	}
	newest := r.samples[(r.head+r.count-1)%len(r.samples)].at
	oldest := r.samples[r.head].at
	return (newest - oldest) / time.Duration(r.count-1)
}

// Newest returns the timestamp of the most recent sample and whether one
// exists.
func (r *RateStats) Newest() (time.Duration, bool) {
	if r.count == 0 {
		return 0, false
	}
	return r.samples[(r.head+r.count-1)%len(r.samples)].at, true
}

// Reset empties the window.
func (r *RateStats) Reset() {
	r.head, r.count, r.sum = 0, 0, 0
}
