package core

import "sort"

// Filter smooths the stream of summary-STP values received on one
// connection before it enters the backwardSTP vector. The paper observes
// that OS-scheduling variance makes consumers "intermittently emit large
// or small summary-STP values", producing non-smooth production rates, and
// names feedback filters (as in the Swift toolbox) as the natural
// extension; it leaves them to future work (§3.3.2). The reproduction
// implements them and measures their effect in an ablation (EXPERIMENTS.md
// ABL1).
//
// A Filter instance is owned by a single connection slot and is not safe
// for concurrent use; the BackwardVec serializes access.
type Filter interface {
	// Apply folds one raw observation and returns the smoothed value.
	Apply(raw STP) STP
	// Reset clears filter state.
	Reset()
}

// FilterFactory builds a fresh filter per connection slot. A nil factory
// means no filtering.
type FilterFactory func() Filter

// nopFilter passes values through unchanged.
type nopFilter struct{}

func (nopFilter) Apply(raw STP) STP { return raw }
func (nopFilter) Reset()            {}

// NewNopFilter returns the identity filter.
func NewNopFilter() Filter { return nopFilter{} }

// ewmaFilter applies an exponentially weighted moving average.
type ewmaFilter struct {
	alpha float64
	value STP
}

// NewEWMAFilter returns an EWMA filter with smoothing factor alpha in
// (0, 1]: out = alpha*raw + (1-alpha)*prev. alpha=1 passes through.
// Out-of-range alphas panic: a zero alpha would freeze feedback forever.
func NewEWMAFilter(alpha float64) Filter {
	if alpha <= 0 || alpha > 1 {
		panic("core: EWMA alpha must be in (0, 1]")
	}
	return &ewmaFilter{alpha: alpha}
}

func (f *ewmaFilter) Apply(raw STP) STP {
	if !raw.Known() {
		return f.value
	}
	if !f.value.Known() {
		f.value = raw
		return raw
	}
	f.value = STP(f.alpha*float64(raw) + (1-f.alpha)*float64(f.value))
	return f.value
}

func (f *ewmaFilter) Reset() { f.value = Unknown }

// medianFilter emits the median of the last w observations, discarding
// transient spikes entirely rather than averaging them in.
type medianFilter struct {
	window []STP
	size   int
}

// NewMedianFilter returns a sliding-window median filter of width w ≥ 1.
func NewMedianFilter(w int) Filter {
	if w < 1 {
		panic("core: median window must be ≥ 1")
	}
	return &medianFilter{size: w}
}

func (f *medianFilter) Apply(raw STP) STP {
	if !raw.Known() {
		return f.median()
	}
	f.window = append(f.window, raw)
	if len(f.window) > f.size {
		f.window = f.window[1:]
	}
	return f.median()
}

func (f *medianFilter) median() STP {
	n := len(f.window)
	if n == 0 {
		return Unknown
	}
	s := make([]STP, n)
	copy(s, f.window)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func (f *medianFilter) Reset() { f.window = f.window[:0] }
