package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/graph"
)

// fanoutGraph builds the Figure 3/4 topology: thread A puts into channels
// B–F; consumer threads b..f get from them. Returns the graph, A's id,
// the A→channel conns, and the channel→consumer conns keyed by channel.
func fanoutGraph(t *testing.T) (g *graph.Graph, a graph.NodeID, putConns map[string]graph.ConnID, getConns map[string]graph.ConnID) {
	t.Helper()
	g = graph.New()
	a = g.MustAddNode(graph.KindThread, "A", 0)
	putConns = map[string]graph.ConnID{}
	getConns = map[string]graph.ConnID{}
	for _, name := range []string{"B", "C", "D", "E", "F"} {
		ch := g.MustAddNode(graph.KindChannel, name, 0)
		cons := g.MustAddNode(graph.KindThread, name+"-consumer", 0)
		putConns[name] = g.MustConnect(a, ch)
		getConns[name] = g.MustConnect(ch, cons)
	}
	return g, a, putConns, getConns
}

// feedFanout drives the Figure 3/4 feedback: each consumer reports its
// current-STP, gets (pushing feedback to its channel), and then A puts to
// every channel (pulling feedback back).
func feedFanout(c *Controller, g *graph.Graph, putConns, getConns map[string]graph.ConnID, reports map[string]STP) {
	for name, stp := range reports {
		id, _ := g.Lookup(name + "-consumer")
		c.SetCurrentSTP(id, stp)
		c.NoteGet(getConns[name])
	}
	for _, conn := range putConns {
		c.NotePut(conn)
	}
}

var figureReports = map[string]STP{
	"B": stpMs(337), "C": stpMs(139), "D": stpMs(273), "E": stpMs(544), "F": stpMs(420),
}

// TestControllerFigure3MinPropagation pushes the paper's example values
// through a real controller: node A's summary under min must be 139ms.
func TestControllerFigure3MinPropagation(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyMin())
	feedFanout(c, g, putConns, getConns, figureReports)
	if got := c.State(a).Summary(); got != stpMs(139) {
		t.Fatalf("A summary under min = %v, want 139ms", got)
	}
}

// TestControllerFigure4MaxPropagation: same topology, max operator →
// 544ms.
func TestControllerFigure4MaxPropagation(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyMax())
	feedFanout(c, g, putConns, getConns, figureReports)
	if got := c.State(a).Summary(); got != stpMs(544) {
		t.Fatalf("A summary under max = %v, want 544ms", got)
	}
}

// TestControllerThreadInsertsOwnPeriod: "a thread with a larger period
// than its consumers inserts its execution period into the summary-STP".
func TestControllerThreadInsertsOwnPeriod(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyMin())
	feedFanout(c, g, putConns, getConns, figureReports)
	c.SetCurrentSTP(a, stpMs(250)) // slower than the 139ms compressed value
	if got := c.State(a).Summary(); got != stpMs(250) {
		t.Fatalf("summary = %v, want own 250ms period", got)
	}
	c.SetCurrentSTP(a, stpMs(50)) // faster than consumers again
	if got := c.State(a).Summary(); got != stpMs(139) {
		t.Fatalf("summary = %v, want 139ms", got)
	}
}

// TestControllerCascade verifies multi-stage backward propagation through
// src -> C1 -> mid -> C2 -> sink.
func TestControllerCascade(t *testing.T) {
	g := graph.New()
	src := g.MustAddNode(graph.KindThread, "src", 0)
	c1 := g.MustAddNode(graph.KindChannel, "C1", 0)
	mid := g.MustAddNode(graph.KindThread, "mid", 0)
	c2 := g.MustAddNode(graph.KindChannel, "C2", 0)
	sink := g.MustAddNode(graph.KindThread, "sink", 0)
	putSrc := g.MustConnect(src, c1)
	getMid := g.MustConnect(c1, mid)
	putMid := g.MustConnect(mid, c2)
	getSink := g.MustConnect(c2, sink)

	c := NewController(g, PolicyMin())
	// The sink is the bottleneck at 400ms.
	c.SetCurrentSTP(sink, stpMs(400))
	c.NoteGet(getSink) // sink → C2
	c.SetCurrentSTP(mid, stpMs(100))
	c.NotePut(putMid) // C2 → mid
	if got := c.State(mid).Summary(); got != stpMs(400) {
		t.Fatalf("mid summary = %v, want 400ms (sink dominates)", got)
	}
	c.NoteGet(getMid) // mid → C1
	c.NotePut(putSrc) // C1 → src
	c.SetCurrentSTP(src, stpMs(30))
	if got := c.TargetPeriod(src); got != stpMs(400) {
		t.Fatalf("src target = %v, want 400ms after cascade", got)
	}
}

func TestControllerDisabledIsInert(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyOff())
	feedFanout(c, g, putConns, getConns, figureReports)
	c.SetCurrentSTP(a, stpMs(500))
	if got := c.State(a).Summary(); got != Unknown {
		t.Fatalf("disabled controller summary = %v, want Unknown", got)
	}
	if got := c.TargetPeriod(a); got != Unknown {
		t.Fatalf("disabled TargetPeriod = %v", got)
	}
	if c.Enabled() {
		t.Error("PolicyOff must be disabled")
	}
}

func TestControllerPerNodeOverride(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	p := PolicyMin()
	p.PerNode = map[string]Compressor{"A": Max}
	c := NewController(g, p)
	feedFanout(c, g, putConns, getConns, figureReports)
	if got := c.State(a).Summary(); got != stpMs(544) {
		t.Fatalf("A with per-node max = %v, want 544ms", got)
	}
	// Channels keep the default min and just relay their single consumer.
	chB, _ := g.Lookup("B")
	if got := c.State(chB).Summary(); got != stpMs(337) {
		t.Fatalf("B summary = %v, want 337ms", got)
	}
}

func TestControllerWithEWMAFilter(t *testing.T) {
	g := graph.New()
	src := g.MustAddNode(graph.KindThread, "src", 0)
	ch := g.MustAddNode(graph.KindChannel, "ch", 0)
	cons := g.MustAddNode(graph.KindThread, "cons", 0)
	put := g.MustConnect(src, ch)
	get := g.MustConnect(ch, cons)

	p := PolicyMin()
	p.NewFilter = func() Filter { return NewEWMAFilter(0.5) }
	c := NewController(g, p)

	c.SetCurrentSTP(cons, stpMs(100))
	c.NoteGet(get)
	c.SetCurrentSTP(cons, stpMs(300)) // noisy spike
	c.NoteGet(get)
	c.NotePut(put)
	// Channel slot: EWMA(100, 300) = 200; src slot EWMA first sample
	// passes through: 200.
	if got := c.State(src).Summary(); got != stpMs(200) {
		t.Fatalf("filtered summary = %v, want 200ms", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if PolicyOff().Name() != "no-aru" {
		t.Error("PolicyOff name")
	}
	if PolicyMin().Name() != "aru-min" {
		t.Error("PolicyMin name")
	}
	if PolicyMax().Name() != "aru-max" {
		t.Error("PolicyMax name")
	}
	if (Policy{Enabled: true}).Name() != "aru-min" {
		t.Error("default compressor must read as min")
	}
}

func TestBackwardVecIgnoresForeignConn(t *testing.T) {
	v := NewBackwardVec([]graph.ConnID{1, 2}, nil)
	v.Update(99, stpMs(5)) // not a slot; must be ignored
	if got := v.Compressed(Min); got != Unknown {
		t.Fatalf("foreign conn leaked into vector: %v", got)
	}
	v.Update(1, stpMs(7))
	if got := v.Compressed(Min); got != stpMs(7) {
		t.Fatalf("Compressed = %v", got)
	}
	snap := v.Snapshot()
	if len(snap) != 2 || snap[0] != stpMs(7) || snap[1] != Unknown {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestBackwardVecConcurrent(t *testing.T) {
	conns := []graph.ConnID{0, 1, 2, 3}
	v := NewBackwardVec(conns, func() Filter { return NewEWMAFilter(0.9) })
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c graph.ConnID) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				v.Update(c, STP(time.Duration(i)*time.Millisecond))
			}
		}(c)
	}
	wg.Wait()
	if got := v.Compressed(Max); !got.Known() {
		t.Fatal("vector must hold data after concurrent updates")
	}
}

func TestMeterExcludesBlockingAndThrottle(t *testing.T) {
	clk := clock.NewManual()
	m := NewMeter(clk)
	m.BeginIteration()
	clk.Advance(50 * time.Millisecond) // compute
	m.AddBlocked(0)                    // non-positive ignored
	clk.Advance(30 * time.Millisecond) // blocked span
	m.AddBlocked(30 * time.Millisecond)
	clk.Advance(20 * time.Millisecond) // throttle span
	m.AddThrottled(20 * time.Millisecond)
	clk.Advance(10 * time.Millisecond) // more compute
	current, busy, blocked := m.EndIteration()
	if current != stpMs(60) {
		t.Fatalf("current-STP = %v, want 60ms", current)
	}
	if busy != 60*time.Millisecond {
		t.Fatalf("busy = %v, want 60ms", busy)
	}
	if blocked != 30*time.Millisecond {
		t.Fatalf("blocked = %v, want 30ms", blocked)
	}
}

func TestMeterWithoutBeginIsZero(t *testing.T) {
	m := NewMeter(clock.NewManual())
	if cur, busy, blocked := m.EndIteration(); cur != Unknown || busy != 0 || blocked != 0 {
		t.Fatalf("EndIteration without Begin = %v/%v/%v", cur, busy, blocked)
	}
}

func TestMeterZeroBusyIsUnknown(t *testing.T) {
	clk := clock.NewManual()
	m := NewMeter(clk)
	m.BeginIteration()
	clk.Advance(10 * time.Millisecond)
	m.AddBlocked(10 * time.Millisecond)
	cur, _, blocked := m.EndIteration()
	if cur != Unknown {
		t.Fatalf("fully blocked iteration current-STP = %v, want Unknown", cur)
	}
	if blocked != 10*time.Millisecond {
		t.Fatalf("blocked = %v, want 10ms", blocked)
	}
}

func TestThrottlePace(t *testing.T) {
	clk := clock.NewManual()
	th := NewThrottle(clk)
	done := make(chan time.Duration, 1)
	go func() { done <- th.Pace(stpMs(100), 30*time.Millisecond) }()
	// The pace sleep is 70ms of manual time.
	deadline := time.Now().Add(2 * time.Second)
	for clk.Sleepers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("Pace never slept")
		}
		time.Sleep(100 * time.Microsecond)
	}
	clk.Advance(70 * time.Millisecond)
	if slept := <-done; slept != 70*time.Millisecond {
		t.Fatalf("slept = %v, want 70ms", slept)
	}
}

func TestThrottleNoSleepCases(t *testing.T) {
	th := NewThrottle(clock.NewManual()) // would hang if it ever slept
	if th.Pace(Unknown, 0) != 0 {
		t.Error("Unknown target must not sleep")
	}
	if th.Pace(stpMs(50), 80*time.Millisecond) != 0 {
		t.Error("already-slow iteration must not sleep")
	}
	if th.Pace(stpMs(50), 50*time.Millisecond) != 0 {
		t.Error("exactly-on-target iteration must not sleep")
	}
}
