package core

import (
	"testing"

	"repro/internal/graph"
)

// benchGraph builds the Figure 3 fan-out (thread A → channels B..F →
// consumer threads) and returns a controller primed with the paper's
// example feedback values, plus one put conn (A→B) and one get conn
// (B→B-consumer).
func benchGraph(b testing.TB, p Policy) (c *Controller, putConn, getConn graph.ConnID) {
	b.Helper()
	g := graph.New()
	a := g.MustAddNode(graph.KindThread, "A", 0)
	reports := map[string]STP{
		"B": STP(337e6), "C": STP(139e6), "D": STP(273e6),
		"E": STP(544e6), "F": STP(420e6),
	}
	for _, name := range []string{"B", "C", "D", "E", "F"} {
		ch := g.MustAddNode(graph.KindChannel, name, 0)
		cons := g.MustAddNode(graph.KindThread, name+"-consumer", 0)
		pc := g.MustConnect(a, ch)
		gc := g.MustConnect(ch, cons)
		if name == "B" {
			putConn, getConn = pc, gc
		}
		_ = cons
	}
	c = NewController(g, p)
	for _, name := range []string{"B", "C", "D", "E", "F"} {
		id, _ := g.Lookup(name + "-consumer")
		c.SetCurrentSTP(id, reports[name])
	}
	// Push feedback once so every slot is warm.
	g.Conns(func(cn *graph.Conn) {
		if g.Node(cn.From).Kind == graph.KindChannel {
			c.NoteGet(cn.ID)
		}
	})
	g.Conns(func(cn *graph.Conn) {
		if g.Node(cn.To).Kind == graph.KindChannel {
			c.NotePut(cn.ID)
		}
	})
	return c, putConn, getConn
}

// BenchmarkNotePut measures the producer-side piggyback — executed once
// per put on every thread of the pipeline, it must cost nanoseconds and
// zero allocations or the feedback mechanism perturbs the STP
// measurements it feeds on.
func BenchmarkNotePut(b *testing.B) {
	c, putConn, _ := benchGraph(b, PolicyMin())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NotePut(putConn)
	}
}

// BenchmarkNoteGet measures the consumer-side piggyback.
func BenchmarkNoteGet(b *testing.B) {
	c, _, getConn := benchGraph(b, PolicyMin())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NoteGet(getConn)
	}
}

// BenchmarkNotePutMax exercises the max-operator fold on the same path.
func BenchmarkNotePutMax(b *testing.B) {
	c, putConn, _ := benchGraph(b, PolicyMax())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NotePut(putConn)
	}
}
