package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/graph"
)

// NodeSnapshot captures one node's ARU state at an instant.
type NodeSnapshot struct {
	Node       graph.NodeID
	Name       string
	Kind       graph.Kind
	Compressor string
	// Current is the thread's last measured current-STP (Unknown for
	// buffers).
	Current STP
	// Compressed is the folded backwardSTP vector.
	Compressed STP
	// Summary is the propagated summary-STP.
	Summary STP
	// Vector lists the backwardSTP slots in connection order.
	Vector []STP
	// Estimator is the node's estimator-stage state, nil under raw
	// propagation (no estimator plugged in).
	Estimator *EstimatorState
	// Replicas is the number of live elastic replica slots folded into
	// Current (0 for unreplicated stages and buffers).
	Replicas int
}

// Snapshot captures the whole controller's state, ordered by node id. It
// is the observability hook behind cmd/stpsim and debugging sessions:
// "why is this producer running at this period?" is answered by walking
// the snapshot upstream.
func (c *Controller) Snapshot() []NodeSnapshot {
	out := make([]NodeSnapshot, 0, len(c.states))
	for _, st := range c.states {
		if st == nil {
			continue
		}
		snap := NodeSnapshot{
			Node:       st.node.ID,
			Name:       st.node.Name,
			Kind:       st.node.Kind,
			Compressor: st.comp.Name(),
			Current:    st.CurrentSTP(),
			Compressed: st.vec.Compressed(st.comp),
			Summary:    st.Summary(),
			Vector:     st.vec.Snapshot(),
			Replicas:   st.Replicas(),
		}
		if st.est != nil {
			es := st.est.State(st.estClk.Now())
			snap.Estimator = &es
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// WriteSnapshot renders the controller state as a table.
func (c *Controller) WriteSnapshot(w io.Writer) {
	fmt.Fprintf(w, "%-18s %-8s %-5s %12s %12s %12s  %s\n",
		"node", "kind", "op", "current", "compressed", "summary", "backwardSTP")
	for _, s := range c.Snapshot() {
		fmt.Fprintf(w, "%-18s %-8s %-5s %12s %12s %12s  %s\n",
			s.Name, s.Kind, s.Compressor,
			stpCell(s.Current), stpCell(s.Compressed), stpCell(s.Summary),
			vecCell(s.Vector))
	}
}

func stpCell(s STP) string {
	if !s.Known() {
		return "-"
	}
	return s.Duration().Round(time.Millisecond).String()
}

func vecCell(vec []STP) string {
	if len(vec) == 0 {
		return "[]"
	}
	out := "["
	for i, s := range vec {
		if i > 0 {
			out += " "
		}
		out += stpCell(s)
	}
	return out + "]"
}

// KthSmallest returns a compressor selecting the k-th smallest known
// period (k counts from 1; k=1 is Min). It lets an application sustain
// its k fastest consumers while shedding the demand of outliers — a
// middle ground between the paper's min and max.
func KthSmallest(k int) Compressor {
	if k < 1 {
		panic("core: KthSmallest needs k ≥ 1")
	}
	return Func{
		FuncName: fmt.Sprintf("kth-smallest(%d)", k),
		Fn: func(vec []STP) STP {
			known := make([]STP, 0, len(vec))
			for _, s := range vec {
				if s.Known() {
					known = append(known, s)
				}
			}
			if len(known) == 0 {
				return Unknown
			}
			sort.Slice(known, func(i, j int) bool { return known[i] < known[j] })
			if k > len(known) {
				return known[len(known)-1]
			}
			return known[k-1]
		},
	}
}

// Mean returns a compressor averaging the known periods: a smooth
// compromise operator an application writer might supply when consumers
// are loosely coupled.
func Mean() Compressor {
	return Func{
		FuncName: "mean",
		Fn: func(vec []STP) STP {
			var sum time.Duration
			n := 0
			for _, s := range vec {
				if s.Known() {
					sum += s.Duration()
					n++
				}
			}
			if n == 0 {
				return Unknown
			}
			return STP(sum / time.Duration(n))
		},
	}
}
