package core

import (
	"testing"
	"time"

	"repro/internal/graph"
)

func TestNopFilter(t *testing.T) {
	f := NewNopFilter()
	if f.Apply(stpMs(5)) != stpMs(5) {
		t.Error("nop must pass through")
	}
	if f.Apply(Unknown) != Unknown {
		t.Error("nop must pass Unknown through")
	}
	f.Reset() // must not panic
}

func TestEWMAFilterSmoothing(t *testing.T) {
	f := NewEWMAFilter(0.5)
	if got := f.Apply(stpMs(100)); got != stpMs(100) {
		t.Fatalf("first sample = %v, want pass-through", got)
	}
	if got := f.Apply(stpMs(200)); got != stpMs(150) {
		t.Fatalf("second sample = %v, want 150ms", got)
	}
	if got := f.Apply(stpMs(150)); got != stpMs(150) {
		t.Fatalf("third sample = %v, want 150ms", got)
	}
}

func TestEWMAFilterUnknownKeepsState(t *testing.T) {
	f := NewEWMAFilter(0.5)
	f.Apply(stpMs(100))
	if got := f.Apply(Unknown); got != stpMs(100) {
		t.Fatalf("Unknown must return previous value, got %v", got)
	}
}

func TestEWMAFilterReset(t *testing.T) {
	f := NewEWMAFilter(0.5)
	f.Apply(stpMs(100))
	f.Reset()
	if got := f.Apply(stpMs(300)); got != stpMs(300) {
		t.Fatalf("after Reset first sample = %v, want pass-through", got)
	}
}

func TestEWMAFilterAlphaOnePassesThrough(t *testing.T) {
	f := NewEWMAFilter(1)
	f.Apply(stpMs(100))
	if got := f.Apply(stpMs(700)); got != stpMs(700) {
		t.Fatalf("alpha=1 must track raw, got %v", got)
	}
}

func TestEWMAFilterRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v must panic", alpha)
				}
			}()
			NewEWMAFilter(alpha)
		}()
	}
}

func TestMedianFilterSuppressesSpike(t *testing.T) {
	f := NewMedianFilter(3)
	f.Apply(stpMs(100))
	f.Apply(stpMs(110))
	// A 10x spike should not surface through a width-3 median.
	if got := f.Apply(stpMs(1000)); got != stpMs(110) {
		t.Fatalf("spike surfaced: %v, want 110ms", got)
	}
	// But a sustained shift should.
	f.Apply(stpMs(1000))
	if got := f.Apply(stpMs(1000)); got != stpMs(1000) {
		t.Fatalf("sustained shift suppressed: %v", got)
	}
}

func TestMedianFilterEvenWindow(t *testing.T) {
	f := NewMedianFilter(2)
	f.Apply(stpMs(100))
	if got := f.Apply(stpMs(200)); got != stpMs(150) {
		t.Fatalf("even-window median = %v, want 150ms", got)
	}
}

func TestMedianFilterUnknownAndReset(t *testing.T) {
	f := NewMedianFilter(3)
	if got := f.Apply(Unknown); got != Unknown {
		t.Fatalf("empty filter on Unknown = %v", got)
	}
	f.Apply(stpMs(50))
	if got := f.Apply(Unknown); got != stpMs(50) {
		t.Fatalf("Unknown must return current median, got %v", got)
	}
	f.Reset()
	if got := f.Apply(Unknown); got != Unknown {
		t.Fatalf("after Reset = %v", got)
	}
}

func TestMedianFilterRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 must panic")
		}
	}()
	NewMedianFilter(0)
}

func TestMedianFilterSlidesWindow(t *testing.T) {
	f := NewMedianFilter(3)
	for _, v := range []int{10, 20, 30, 40, 50} {
		f.Apply(STP(time.Duration(v) * time.Millisecond))
	}
	// Window is now {30,40,50} → median 40.
	if got := f.Apply(Unknown); got != stpMs(40) {
		t.Fatalf("sliding median = %v, want 40ms", got)
	}
}

// TestFilterColdStartAsymmetry pins the Unknown-handling contract across
// every shipped filter with Unknown→known→Unknown sequences: an Unknown
// sample before any known one yields Unknown (not a poisoned zero), a
// known sample then initializes the smoothed value, and later Unknowns
// return the held value without perturbing subsequent smoothing.
func TestFilterColdStartAsymmetry(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Filter
	}{
		{"nop", NewNopFilter},
		{"ewma", func() Filter { return NewEWMAFilter(0.5) }},
		{"median", func() Filter { return NewMedianFilter(3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.mk()
			// Cold Unknown: no known sample exists, so the smoothed value
			// must still read Unknown — never a fabricated period.
			for i := 0; i < 3; i++ {
				if got := f.Apply(Unknown); got.Known() {
					t.Fatalf("cold Apply(Unknown) #%d = %v, want Unknown", i, got)
				}
			}
			// First known sample initializes (every shipped filter passes
			// the first known sample through).
			if got := f.Apply(stpMs(100)); got != stpMs(100) {
				t.Fatalf("first known sample = %v, want 100ms", got)
			}
			// Unknown after initialization holds the smoothed value.
			held := f.Apply(Unknown)
			if tc.name == "nop" {
				// The identity filter has no state to hold by design.
				if held.Known() {
					t.Fatalf("nop Apply(Unknown) = %v, want Unknown", held)
				}
			} else if held != stpMs(100) {
				t.Fatalf("Apply(Unknown) after init = %v, want held 100ms", held)
			}
			// And the Unknown must not have shifted the smoothing state:
			// the next known sample sees exactly the pre-Unknown state.
			ref := tc.mk()
			ref.Apply(stpMs(100))
			if got, want := f.Apply(stpMs(200)), ref.Apply(stpMs(200)); got != want {
				t.Fatalf("post-Unknown smoothing diverged: %v, want %v", got, want)
			}
		})
	}
}

// TestFilterUnknownNeverPoisonsInVector drives the same contract through
// a BackwardVec slot: a consumer whose feedback lapses to Unknown must
// not drag a filtered slot to zero and poison the compressed fold.
func TestFilterUnknownNeverPoisonsInVector(t *testing.T) {
	conns := []graph.ConnID{1, 2}
	v := NewBackwardVec(conns, func() Filter { return NewEWMAFilter(0.5) })
	v.Update(1, stpMs(100))
	v.Update(2, stpMs(200))
	if got := v.Compressed(Min); got != stpMs(100) {
		t.Fatalf("compressed = %v, want 100ms", got)
	}
	// Slot 1's feedback lapses: the filter holds 100ms, so min is
	// unchanged rather than collapsing to Unknown/zero.
	v.Update(1, Unknown)
	if got := v.Compressed(Min); got != stpMs(100) {
		t.Fatalf("compressed after Unknown = %v, want 100ms held", got)
	}
}
