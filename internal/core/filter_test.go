package core

import (
	"testing"
	"time"
)

func TestNopFilter(t *testing.T) {
	f := NewNopFilter()
	if f.Apply(stpMs(5)) != stpMs(5) {
		t.Error("nop must pass through")
	}
	if f.Apply(Unknown) != Unknown {
		t.Error("nop must pass Unknown through")
	}
	f.Reset() // must not panic
}

func TestEWMAFilterSmoothing(t *testing.T) {
	f := NewEWMAFilter(0.5)
	if got := f.Apply(stpMs(100)); got != stpMs(100) {
		t.Fatalf("first sample = %v, want pass-through", got)
	}
	if got := f.Apply(stpMs(200)); got != stpMs(150) {
		t.Fatalf("second sample = %v, want 150ms", got)
	}
	if got := f.Apply(stpMs(150)); got != stpMs(150) {
		t.Fatalf("third sample = %v, want 150ms", got)
	}
}

func TestEWMAFilterUnknownKeepsState(t *testing.T) {
	f := NewEWMAFilter(0.5)
	f.Apply(stpMs(100))
	if got := f.Apply(Unknown); got != stpMs(100) {
		t.Fatalf("Unknown must return previous value, got %v", got)
	}
}

func TestEWMAFilterReset(t *testing.T) {
	f := NewEWMAFilter(0.5)
	f.Apply(stpMs(100))
	f.Reset()
	if got := f.Apply(stpMs(300)); got != stpMs(300) {
		t.Fatalf("after Reset first sample = %v, want pass-through", got)
	}
}

func TestEWMAFilterAlphaOnePassesThrough(t *testing.T) {
	f := NewEWMAFilter(1)
	f.Apply(stpMs(100))
	if got := f.Apply(stpMs(700)); got != stpMs(700) {
		t.Fatalf("alpha=1 must track raw, got %v", got)
	}
}

func TestEWMAFilterRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v must panic", alpha)
				}
			}()
			NewEWMAFilter(alpha)
		}()
	}
}

func TestMedianFilterSuppressesSpike(t *testing.T) {
	f := NewMedianFilter(3)
	f.Apply(stpMs(100))
	f.Apply(stpMs(110))
	// A 10x spike should not surface through a width-3 median.
	if got := f.Apply(stpMs(1000)); got != stpMs(110) {
		t.Fatalf("spike surfaced: %v, want 110ms", got)
	}
	// But a sustained shift should.
	f.Apply(stpMs(1000))
	if got := f.Apply(stpMs(1000)); got != stpMs(1000) {
		t.Fatalf("sustained shift suppressed: %v", got)
	}
}

func TestMedianFilterEvenWindow(t *testing.T) {
	f := NewMedianFilter(2)
	f.Apply(stpMs(100))
	if got := f.Apply(stpMs(200)); got != stpMs(150) {
		t.Fatalf("even-window median = %v, want 150ms", got)
	}
}

func TestMedianFilterUnknownAndReset(t *testing.T) {
	f := NewMedianFilter(3)
	if got := f.Apply(Unknown); got != Unknown {
		t.Fatalf("empty filter on Unknown = %v", got)
	}
	f.Apply(stpMs(50))
	if got := f.Apply(Unknown); got != stpMs(50) {
		t.Fatalf("Unknown must return current median, got %v", got)
	}
	f.Reset()
	if got := f.Apply(Unknown); got != Unknown {
		t.Fatalf("after Reset = %v", got)
	}
}

func TestMedianFilterRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 must panic")
		}
	}()
	NewMedianFilter(0)
}

func TestMedianFilterSlidesWindow(t *testing.T) {
	f := NewMedianFilter(3)
	for _, v := range []int{10, 20, 30, 40, 50} {
		f.Apply(STP(time.Duration(v) * time.Millisecond))
	}
	// Window is now {30,40,50} → median 40.
	if got := f.Apply(Unknown); got != stpMs(40) {
		t.Fatalf("sliding median = %v, want 40ms", got)
	}
}
