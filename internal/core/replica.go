// Per-replica STP folding for elastic stages (internal/sched).
//
// ARU's feedback loop slows producers down to the bottleneck's pace;
// the elastic scheduler is the dual — it speeds the bottleneck up by
// replicating the stage behind its inbound buffer. For the feedback to
// reflect that added capacity, a replicated stage's current-STP must be
// the *parallel composition* of its incarnations: k workers draining
// one buffer at periods p₁..pₖ behave like a single stage with period
// 1/Σ(1/pᵢ), so the summary-STP piggybacked upstream relaxes as
// replicas come online and upstream throttling eases without any
// change to the propagation rules.
package core

import "repro/internal/graph"

// foldLocked derives the effective current-STP from the primary's and
// every live replica's last measurement. With no replicas it is the
// primary's value bit-for-bit (the pre-elastic behavior); otherwise the
// known periods compose in parallel and Unknown incarnations (not yet
// through their first Sync) contribute nothing.
func (n *NodeState) foldLocked() STP {
	if len(n.repl) == 0 {
		return n.primary
	}
	var rate float64
	if n.primary.Known() {
		rate = 1 / float64(n.primary)
	}
	for _, s := range n.repl {
		if s.Known() {
			rate += 1 / float64(s)
		}
	}
	if rate == 0 {
		return n.primary
	}
	return STP(1 / rate)
}

// SetReplicaSTP records a replica incarnation's newly measured
// current-STP (slot ≥ 1; the primary is SetCurrentSTP) and re-derives
// the effective current and summary.
func (n *NodeState) SetReplicaSTP(slot int, s STP) {
	n.mu.Lock()
	if n.repl == nil {
		n.repl = make(map[int]STP)
	}
	n.repl[slot] = s
	n.current = n.foldLocked()
	n.mu.Unlock()
	n.applySummary(n.vec.Compressed(n.comp))
}

// RetireReplica removes a retired (or permanently failed) replica's
// contribution from the fold, so the stage's summary-STP tightens back
// toward the surviving incarnations' pace and upstream throttling
// resumes — the scale-down analogue of DropConsumer's "feedback must
// reflect live consumers" rule.
func (n *NodeState) RetireReplica(slot int) {
	n.mu.Lock()
	delete(n.repl, slot)
	n.current = n.foldLocked()
	n.mu.Unlock()
	n.applySummary(n.vec.Compressed(n.comp))
}

// Replicas returns the number of live replica slots (the primary is not
// counted).
func (n *NodeState) Replicas() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.repl)
}

// SetReplicaSTP records a replica's measured current-STP for a node (the
// replica-slot counterpart of SetCurrentSTP).
func (c *Controller) SetReplicaSTP(id graph.NodeID, slot int, s STP) {
	if !c.policy.Enabled {
		return
	}
	c.states[id].SetReplicaSTP(slot, s)
}

// RetireReplica drops a replica slot's contribution to a node's
// effective current-STP.
func (c *Controller) RetireReplica(id graph.NodeID, slot int) {
	if !c.policy.Enabled {
		return
	}
	c.states[id].RetireReplica(slot)
}
