package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
)

// AIMDPhase is the rate controller's actuation phase, reported for
// status output and metrics.
type AIMDPhase int8

const (
	// PhaseBackoff: the last update applied a multiplicative back-off
	// (pacing period raised — production rate multiplicatively cut).
	PhaseBackoff AIMDPhase = -1
	// PhaseHold: the last update left the target unchanged.
	PhaseHold AIMDPhase = 0
	// PhaseSpeedup: the last update applied an additive speed-up
	// (pacing period lowered by one step).
	PhaseSpeedup AIMDPhase = 1
)

// String renders the phase for status output.
func (p AIMDPhase) String() string {
	switch p {
	case PhaseBackoff:
		return "backoff"
	case PhaseSpeedup:
		return "speedup"
	default:
		return "hold"
	}
}

// AIMDConfig shapes the AIMD estimator. The zero value of every field
// selects a sensible default (see DefaultAIMDConfig); invalid explicit
// values panic at construction, mirroring the filter constructors.
type AIMDConfig struct {
	// Window bounds the sliding windows of the rate estimator and the
	// trendline filter by sample age. Default 2s.
	Window time.Duration
	// MaxSamples bounds the same windows by count. Default 64.
	MaxSamples int
	// Beta is the multiplicative back-off factor applied to the pacing
	// period on sustained over-production; must be ≥ 1. Default 1.15
	// (production rate cut to ≈0.87×, the GCC ballpark).
	Beta float64
	// Step is the additive speed-up subtracted from the pacing period
	// per update while slack is signalled. Default 1ms.
	Step time.Duration
	// Margin is the hysteresis half-width around the windowed estimate:
	// targets within ±Margin of the estimate hold. Default 0.10.
	Margin float64
	// Sustain is the over-production score required before a back-off
	// fires; in-band updates decay the score, and a rising trend counts
	// double, so a lone jitter spike never triggers a back-off but a
	// genuine demand increase does so quickly. Default 3.
	Sustain int
	// Gain is the Kalman-style smoothing gain of the trendline slope in
	// (0, 1]. Default 0.6.
	Gain float64
	// TrendThreshold is the normalized slope (fraction of the signal per
	// second) beyond which the trend reads overuse/underuse. Default
	// 0.25.
	TrendThreshold float64
	// MinTarget and MaxTarget clamp the pacing period (0 = unbounded).
	MinTarget, MaxTarget STP
	// Expire is the feedback silence after which the estimator's state
	// is discarded and Target falls back to the raw summary — the local
	// analogue of the remote staleness decay: a damped target must not
	// outlive the feedback that justified it. Default 3×Window.
	Expire time.Duration
}

// withDefaults fills zero fields and validates the rest.
func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 64
	}
	if c.MaxSamples < 3 {
		panic("core: AIMD MaxSamples must be ≥ 3")
	}
	if c.Beta == 0 {
		c.Beta = 1.15
	}
	if c.Beta < 1 {
		panic("core: AIMD Beta must be ≥ 1 (a back-off cannot speed production up)")
	}
	if c.Step <= 0 {
		c.Step = time.Millisecond
	}
	if c.Margin <= 0 {
		c.Margin = 0.10
	}
	if c.Sustain <= 0 {
		c.Sustain = 3
	}
	if c.Gain == 0 {
		c.Gain = 0.6
	}
	if c.Gain < 0 || c.Gain > 1 {
		panic("core: AIMD Gain must be in (0, 1]")
	}
	if c.TrendThreshold <= 0 {
		c.TrendThreshold = 0.25
	}
	if c.Expire <= 0 {
		c.Expire = 3 * c.Window
	}
	return c
}

// DefaultAIMDConfig returns the default AIMD tuning.
func DefaultAIMDConfig() AIMDConfig { return AIMDConfig{}.withDefaults() }

// RateController is the AIMD-shaped actuator: it owns the damped pacing
// target and moves it toward the windowed demand estimate —
// multiplicative back-off on sustained over-production, additive
// speed-up on slack, hold inside the hysteresis band. Unlike TCP's
// blind probe, the bottleneck's demanded period is explicitly signalled
// here (it IS the feedback), so the additive probe is floored at the
// band's lower edge: producing faster than the signalled demand is the
// paper's wasted production, not undiscovered capacity.
//
// RateController is not safe for concurrent use; the owning estimator
// serializes access.
type RateController struct {
	cfg    AIMDConfig
	target STP
	phase  AIMDPhase
	score  int // sustained over-production score
	// Lifetime actuation counters (monotonic; Reset keeps them so the
	// metrics layer can publish them as Prometheus counters).
	backoffs uint64
	speedups uint64
}

// NewRateController returns a controller with the given tuning
// (defaults applied to zero fields).
func NewRateController(cfg AIMDConfig) *RateController {
	return &RateController{cfg: cfg.withDefaults()}
}

// clamp applies the configured target bounds.
func (c *RateController) clamp(s STP) STP {
	if c.cfg.MinTarget.Known() && s < c.cfg.MinTarget {
		s = c.cfg.MinTarget
	}
	if c.cfg.MaxTarget.Known() && s > c.cfg.MaxTarget {
		s = c.cfg.MaxTarget
	}
	return s
}

// Update folds one windowed demand estimate and its trend
// classification into the target. Unknown estimates are ignored.
func (c *RateController) Update(est STP, trend TrendState) {
	if !est.Known() {
		return
	}
	if !c.target.Known() {
		// First feedback initializes the target at the demand estimate.
		c.target = c.clamp(est)
		c.phase = PhaseHold
		return
	}
	lo := STP(float64(est) * (1 - c.cfg.Margin))
	hi := STP(float64(est) * (1 + c.cfg.Margin))
	switch {
	case c.target < lo:
		// Over-production: we pace faster than downstream sustains.
		// Back off only when the signal persists — a rising trend counts
		// double so a genuine demand increase clears the bar in fewer
		// observations than jitter can.
		if trend == TrendOveruse {
			c.score += 2
		} else {
			c.score++
		}
		c.phase = PhaseHold
		if c.score >= c.cfg.Sustain {
			c.target = c.clamp(STP(float64(MaxSTP(c.target, est)) * c.cfg.Beta))
			c.phase = PhaseBackoff
			c.backoffs++
			c.score = 0
		}
	case c.target > hi && trend != TrendOveruse:
		// Slack: downstream demands less than we pace to. Speed up one
		// additive step, never past the band's lower edge.
		c.score = 0
		next := c.target - STP(c.cfg.Step)
		if next < lo {
			next = lo
		}
		c.target = c.clamp(next)
		c.phase = PhaseSpeedup
		c.speedups++
	default:
		// In band (or out-of-band slack while the trend still rises):
		// hold, and let a decaying score forget isolated spikes.
		if c.score > 0 {
			c.score--
		}
		c.phase = PhaseHold
	}
}

// Target returns the current pacing target (Unknown before the first
// known estimate).
func (c *RateController) Target() STP { return c.target }

// Phase returns the last update's actuation phase.
func (c *RateController) Phase() AIMDPhase { return c.phase }

// Counts returns the lifetime back-off and speed-up counts.
func (c *RateController) Counts() (backoffs, speedups uint64) {
	return c.backoffs, c.speedups
}

// Reset clears the target and phase, keeping the lifetime counters.
func (c *RateController) Reset() {
	c.target, c.phase, c.score = Unknown, PhaseHold, 0
}

// AIMDEstimator is the filtered, damped estimator backend: a sliding-
// window rate estimator (per-connection arrival/service statistics and
// the windowed demand estimate), a trendline slope filter classifying
// the backlog trend, and an AIMD RateController shaping the pacing
// target. It implements Estimator and is safe for concurrent use.
type AIMDEstimator struct {
	cfg AIMDConfig

	mu      sync.Mutex
	vals    *RateStats // windowed compressed-summary estimate
	trend   *Trendline
	ctrl    *RateController
	perConn map[graph.ConnID]*RateStats // per-connection raw feedback windows
	lastObs time.Duration
	haveObs bool
}

// NewAIMDEstimator returns an AIMD estimator with the given tuning
// (defaults applied to zero fields).
func NewAIMDEstimator(cfg AIMDConfig) *AIMDEstimator {
	cfg = cfg.withDefaults()
	return &AIMDEstimator{
		cfg:     cfg,
		vals:    NewRateStats(cfg.Window, cfg.MaxSamples),
		trend:   NewTrendline(cfg.Window, cfg.MaxSamples, cfg.Gain, cfg.TrendThreshold),
		ctrl:    NewRateController(cfg),
		perConn: make(map[graph.ConnID]*RateStats),
	}
}

// AIMDFactory returns an EstimatorFactory building AIMD estimators with
// the given tuning — what Policy.WithEstimator plugs in.
func AIMDFactory(cfg AIMDConfig) EstimatorFactory {
	cfg = cfg.withDefaults() // validate once, loudly, at configuration time
	return func() Estimator { return NewAIMDEstimator(cfg) }
}

// Name implements Estimator.
func (e *AIMDEstimator) Name() string { return "aimd" }

// Observe implements Estimator: per-connection arrival bookkeeping for
// every feedback event, and — for known folds — the windowed estimate,
// the trendline, and one controller update.
func (e *AIMDEstimator) Observe(now time.Duration, conn graph.ConnID, raw, compressed STP) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pc := e.perConn[conn]
	if pc == nil {
		pc = NewRateStats(e.cfg.Window, e.cfg.MaxSamples)
		e.perConn[conn] = pc
	}
	pc.Add(now, float64(raw))
	if !compressed.Known() {
		// Unknown carries no feedback; it must never poison the
		// estimate (the Filter cold-start contract, held here too).
		return
	}
	e.lastObs, e.haveObs = now, true
	e.vals.Add(now, float64(compressed))
	e.trend.Add(now, float64(compressed))
	e.ctrl.Update(STP(e.vals.Mean(now)), e.trend.State())
}

// expireLocked discards estimation state when feedback has been silent
// past the expiry, reporting whether the estimator is (still) live.
func (e *AIMDEstimator) expireLocked(now time.Duration) bool {
	if !e.haveObs {
		return false
	}
	if now-e.lastObs <= e.cfg.Expire {
		return true
	}
	// Silence outlived the estimate: a damped target must not keep
	// throttling a producer whose downstream stopped reporting (died,
	// detached, faded). Drop everything; the next feedback re-initializes.
	e.resetLocked()
	return false
}

// Target implements Estimator.
func (e *AIMDEstimator) Target(now time.Duration, fallback STP) STP {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.expireLocked(now) {
		return fallback
	}
	if t := e.ctrl.Target(); t.Known() {
		return t
	}
	return fallback
}

// ConnEstimate returns the windowed mean of the raw summary-STPs
// received on one connection — the per-connection service-period
// estimate — and whether any samples remain in the window.
func (e *AIMDEstimator) ConnEstimate(now time.Duration, conn graph.ConnID) (STP, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pc := e.perConn[conn]
	if pc == nil || pc.Count(now) == 0 {
		return Unknown, false
	}
	return STP(pc.Mean(now)), true
}

// State implements Estimator.
func (e *AIMDEstimator) State(now time.Duration) EstimatorState {
	e.mu.Lock()
	defer e.mu.Unlock()
	backoffs, speedups := e.ctrl.Counts()
	st := EstimatorState{
		Name:     "aimd",
		Phase:    e.ctrl.Phase(),
		Trend:    e.trend.State(),
		Backoffs: backoffs,
		Speedups: speedups,
	}
	if e.expireLocked(now) {
		st.Target = e.ctrl.Target()
		st.Estimate = STP(e.vals.Mean(now))
		st.FeedbackInterval = e.vals.Interval(now)
	} else {
		// Expired or cold: phase/trend read hold.
		st.Phase, st.Trend = PhaseHold, TrendHold
	}
	return st
}

// resetLocked clears all estimation state (the controller keeps its
// lifetime counters).
func (e *AIMDEstimator) resetLocked() {
	e.vals.Reset()
	e.trend.Reset()
	e.ctrl.Reset()
	for _, pc := range e.perConn {
		pc.Reset()
	}
	e.haveObs = false
}

// Reset implements Estimator.
func (e *AIMDEstimator) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resetLocked()
}

// String renders the estimator's tuning for debugging.
func (e *AIMDEstimator) String() string {
	return fmt.Sprintf("aimd(window=%v beta=%.2f step=%v margin=%.2f sustain=%d)",
		e.cfg.Window, e.cfg.Beta, e.cfg.Step, e.cfg.Margin, e.cfg.Sustain)
}
