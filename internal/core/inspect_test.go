package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotReflectsPropagation(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyMin())
	feedFanout(c, g, putConns, getConns, figureReports)
	c.SetCurrentSTP(a, stpMs(50))

	snap := c.Snapshot()
	if len(snap) != g.NumNodes() {
		t.Fatalf("snapshot has %d nodes, want %d", len(snap), g.NumNodes())
	}
	// Node A is id 0.
	sa := snap[0]
	if sa.Name != "A" || sa.Kind.String() != "thread" {
		t.Fatalf("snapshot[0] = %+v", sa)
	}
	if sa.Current != stpMs(50) {
		t.Errorf("A current = %v", sa.Current)
	}
	if sa.Compressed != stpMs(139) {
		t.Errorf("A compressed = %v, want 139ms", sa.Compressed)
	}
	if sa.Summary != stpMs(139) {
		t.Errorf("A summary = %v, want 139ms", sa.Summary)
	}
	if len(sa.Vector) != 5 {
		t.Errorf("A vector size = %d", len(sa.Vector))
	}
	if sa.Compressor != "min" {
		t.Errorf("A compressor = %q", sa.Compressor)
	}
}

func TestWriteSnapshot(t *testing.T) {
	g, _, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyMax())
	feedFanout(c, g, putConns, getConns, figureReports)
	var buf bytes.Buffer
	c.WriteSnapshot(&buf)
	out := buf.String()
	for _, want := range []string{"A", "B-consumer", "channel", "thread", "max", "544ms", "backwardSTP"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot output missing %q:\n%s", want, out)
		}
	}
	// Unknown cells render as "-".
	if !strings.Contains(out, "-") {
		t.Error("unknown STPs must render as -")
	}
}

func TestKthSmallest(t *testing.T) {
	vec := paperVec // 337, 139, 273, 544, 420
	cases := []struct {
		k    int
		want STP
	}{
		{1, stpMs(139)}, {2, stpMs(273)}, {3, stpMs(337)},
		{4, stpMs(420)}, {5, stpMs(544)}, {9, stpMs(544)},
	}
	for _, c := range cases {
		comp := KthSmallest(c.k)
		if got := comp.Compress(vec); got != c.want {
			t.Errorf("KthSmallest(%d) = %v, want %v", c.k, got, c.want)
		}
	}
	if KthSmallest(1).Compress(nil) != Unknown {
		t.Error("empty vector must be Unknown")
	}
	if got := KthSmallest(2).Compress([]STP{Unknown, stpMs(7), Unknown}); got != stpMs(7) {
		t.Errorf("k beyond known entries = %v, want the largest known", got)
	}
	if !strings.Contains(KthSmallest(3).Name(), "3") {
		t.Error("name must carry k")
	}
	defer func() {
		if recover() == nil {
			t.Error("k<1 must panic")
		}
	}()
	KthSmallest(0)
}

func TestKthSmallestEqualsMinAndMaxAtExtremes(t *testing.T) {
	vec := paperVec
	if KthSmallest(1).Compress(vec) != Min.Compress(vec) {
		t.Error("k=1 must equal Min")
	}
	if KthSmallest(len(vec)).Compress(vec) != Max.Compress(vec) {
		t.Error("k=len must equal Max")
	}
}

func TestMeanCompressor(t *testing.T) {
	m := Mean()
	if got := m.Compress([]STP{stpMs(100), stpMs(300)}); got != stpMs(200) {
		t.Errorf("mean = %v", got)
	}
	if got := m.Compress([]STP{Unknown, stpMs(100), Unknown}); got != stpMs(100) {
		t.Errorf("mean with unknowns = %v", got)
	}
	if m.Compress(nil) != Unknown {
		t.Error("empty mean must be Unknown")
	}
	if m.Name() != "mean" {
		t.Error("name")
	}
	// Mean lies between min and max on the paper vector.
	got := m.Compress(paperVec)
	if got < Min.Compress(paperVec) || got > Max.Compress(paperVec) {
		t.Errorf("mean %v outside [min,max]", got)
	}
}
