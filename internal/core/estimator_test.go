package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/graph"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestRateStatsWindowPruning pins the sliding window's age bound: samples
// older than the window stop contributing to the mean.
func TestRateStatsWindowPruning(t *testing.T) {
	r := NewRateStats(100*time.Millisecond, 16)
	r.Add(ms(0), 10)
	r.Add(ms(50), 20)
	if got := r.Mean(ms(50)); got != 15 {
		t.Fatalf("mean with both samples = %v, want 15", got)
	}
	// At t=150ms the first sample (age 150ms) is out, the second (age
	// 100ms) is exactly at the bound and stays.
	if got := r.Mean(ms(150)); got != 20 {
		t.Fatalf("mean after pruning = %v, want 20", got)
	}
	if got := r.Count(ms(300)); got != 0 {
		t.Fatalf("count after full expiry = %d, want 0", got)
	}
	if got := r.Mean(ms(300)); got != 0 {
		t.Fatalf("mean of empty window = %v, want 0", got)
	}
}

// TestRateStatsCountBound pins the count bound: the ring overwrites the
// oldest sample once maxCount is reached, and the running sum follows.
func TestRateStatsCountBound(t *testing.T) {
	r := NewRateStats(time.Hour, 3)
	for i := 1; i <= 5; i++ {
		r.Add(ms(i), float64(i))
	}
	// Only 3, 4, 5 remain.
	if got := r.Count(ms(5)); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := r.Mean(ms(5)); got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
}

// TestRateStatsInterval pins the feedback-rate estimate: mean spacing
// between samples in the window.
func TestRateStatsInterval(t *testing.T) {
	r := NewRateStats(time.Second, 8)
	if got := r.Interval(0); got != 0 {
		t.Fatalf("interval of empty window = %v, want 0", got)
	}
	r.Add(ms(0), 1)
	r.Add(ms(10), 1)
	r.Add(ms(30), 1)
	if got := r.Interval(ms(30)); got != ms(15) {
		t.Fatalf("interval = %v, want 15ms", got)
	}
	at, ok := r.Newest()
	if !ok || at != ms(30) {
		t.Fatalf("newest = %v,%v, want 30ms,true", at, ok)
	}
	r.Reset()
	if got := r.Count(ms(30)); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

// TestTrendlineClassification pins the slope filter: a steadily rising
// signal reads overuse, a falling one underuse, a flat one hold.
func TestTrendlineClassification(t *testing.T) {
	mk := func() *Trendline { return NewTrendline(time.Second, 16, 1, 0.05) }

	up := mk()
	for i := 0; i < 8; i++ {
		up.Add(ms(i*50), 50+float64(i*10)) // +20%/50ms — far past threshold
	}
	if got := up.State(); got != TrendOveruse {
		t.Fatalf("rising signal trend = %v, want overuse", got)
	}

	down := mk()
	for i := 0; i < 8; i++ {
		down.Add(ms(i*50), 120-float64(i*10))
	}
	if got := down.State(); got != TrendUnderuse {
		t.Fatalf("falling signal trend = %v, want underuse", got)
	}

	flat := mk()
	for i := 0; i < 8; i++ {
		flat.Add(ms(i*50), 50)
	}
	if got := flat.State(); got != TrendHold {
		t.Fatalf("flat signal trend = %v, want hold", got)
	}
	flat.Reset()
	if got := flat.State(); got != TrendHold {
		t.Fatalf("trend after reset = %v, want hold", got)
	}
	if _, fitted := flat.Slope(); fitted {
		t.Fatal("slope must be unfitted after reset")
	}
}

// TestTrendlineNeedsThreeSamples: fewer than three samples produce no
// fit, so classification stays hold.
func TestTrendlineNeedsThreeSamples(t *testing.T) {
	tr := NewTrendline(time.Second, 8, 1, 0.05)
	tr.Add(ms(0), 10)
	tr.Add(ms(50), 1000)
	if got := tr.State(); got != TrendHold {
		t.Fatalf("trend with 2 samples = %v, want hold", got)
	}
}

// TestRateControllerInitAndHold: the first known estimate initializes the
// target; estimates inside the hysteresis band hold it.
func TestRateControllerInitAndHold(t *testing.T) {
	c := NewRateController(AIMDConfig{Margin: 0.10})
	if c.Target().Known() {
		t.Fatal("target must start Unknown")
	}
	c.Update(Unknown, TrendHold)
	if c.Target().Known() {
		t.Fatal("Unknown estimate must not initialize the target")
	}
	c.Update(STP(ms(50)), TrendHold)
	if got := c.Target(); got != STP(ms(50)) {
		t.Fatalf("target after init = %v, want 50ms", got)
	}
	// 52ms is inside ±10% of 50ms: hold.
	c.Update(STP(ms(52)), TrendHold)
	if got, ph := c.Target(), c.Phase(); got != STP(ms(50)) || ph != PhaseHold {
		t.Fatalf("in-band update: target=%v phase=%v, want 50ms/hold", got, ph)
	}
}

// TestRateControllerBackoffNeedsSustain: over-production must persist for
// Sustain observations before the multiplicative back-off fires, so a
// lone jitter spike never triggers one.
func TestRateControllerBackoffNeedsSustain(t *testing.T) {
	c := NewRateController(AIMDConfig{Beta: 1.5, Margin: 0.10, Sustain: 3})
	c.Update(STP(ms(50)), TrendHold) // init at 50ms

	// Demand jumps to 100ms: target 50 < lo 90 — over-production.
	c.Update(STP(ms(100)), TrendHold)
	if b, _ := c.Counts(); b != 0 || c.Phase() != PhaseHold {
		t.Fatalf("first overuse observation must not back off (backoffs=%d phase=%v)", b, c.Phase())
	}
	// One in-band observation decays the score back down.
	c.Update(STP(ms(52)), TrendHold)
	c.Update(STP(ms(100)), TrendHold)
	c.Update(STP(ms(100)), TrendHold)
	if b, _ := c.Counts(); b != 0 {
		t.Fatalf("score decay failed: %d backoffs before sustain met", b)
	}
	c.Update(STP(ms(100)), TrendHold) // third consecutive: score reaches 3
	b, _ := c.Counts()
	if b != 1 || c.Phase() != PhaseBackoff {
		t.Fatalf("sustained overuse: backoffs=%d phase=%v, want 1/backoff", b, c.Phase())
	}
	// Back-off: max(target, est) * Beta = 100ms * 1.5.
	if got := c.Target(); got != STP(ms(150)) {
		t.Fatalf("backed-off target = %v, want 150ms", got)
	}
}

// TestRateControllerOveruseTrendAccelerates: a rising trend counts double
// toward the sustain score, so a genuine demand increase backs off in
// fewer observations.
func TestRateControllerOveruseTrendAccelerates(t *testing.T) {
	c := NewRateController(AIMDConfig{Margin: 0.10, Sustain: 4})
	c.Update(STP(ms(50)), TrendHold)
	c.Update(STP(ms(100)), TrendOveruse) // score 2
	c.Update(STP(ms(100)), TrendOveruse) // score 4 → backoff
	if b, _ := c.Counts(); b != 1 {
		t.Fatalf("backoffs = %d, want 1 after two rising-trend observations", b)
	}
}

// TestRateControllerSpeedupFloorsAtBand: slack walks the target down one
// additive step per update, stopping at the band's lower edge rather
// than probing past the signalled demand.
func TestRateControllerSpeedupFloorsAtBand(t *testing.T) {
	c := NewRateController(AIMDConfig{Step: ms(2), Margin: 0.10})
	c.Update(STP(ms(100)), TrendHold) // init at 100ms
	// Demand speeds up to 50ms: target 100 > hi 55 — slack.
	c.Update(STP(ms(50)), TrendHold)
	if got, ph := c.Target(), c.Phase(); got != STP(ms(98)) || ph != PhaseSpeedup {
		t.Fatalf("speedup: target=%v phase=%v, want 98ms/speedup", got, ph)
	}
	for i := 0; i < 100; i++ {
		c.Update(STP(ms(50)), TrendHold)
	}
	// The walk must stop inside the band, never below lo = 45ms.
	got := c.Target()
	if got < STP(ms(45)) || got > STP(ms(55)) {
		t.Fatalf("settled target = %v, want within band [45ms, 55ms]", got)
	}
	// A rising trend vetoes the speed-up (the slack may be evaporating).
	before := c.Target()
	c.Update(STP(ms(10)), TrendOveruse)
	if c.Target() != before || c.Phase() == PhaseSpeedup {
		t.Fatalf("speedup must not fire under a rising trend")
	}
}

// TestRateControllerClamp pins the MinTarget/MaxTarget bounds.
func TestRateControllerClamp(t *testing.T) {
	c := NewRateController(AIMDConfig{
		Beta: 10, Margin: 0.10, Sustain: 1,
		MinTarget: STP(ms(20)), MaxTarget: STP(ms(80)),
	})
	c.Update(STP(ms(10)), TrendHold)
	if got := c.Target(); got != STP(ms(20)) {
		t.Fatalf("init clamped = %v, want MinTarget 20ms", got)
	}
	c.Update(STP(ms(70)), TrendHold) // 20 < 63: overuse, sustain 1 → ×10, clamped
	if got := c.Target(); got != STP(ms(80)) {
		t.Fatalf("backed-off clamped = %v, want MaxTarget 80ms", got)
	}
}

// TestRateControllerReset: estimation state clears, lifetime counters
// survive (they feed monotonic metrics).
func TestRateControllerReset(t *testing.T) {
	c := NewRateController(AIMDConfig{Sustain: 1})
	c.Update(STP(ms(50)), TrendHold)
	c.Update(STP(ms(200)), TrendHold)
	b0, _ := c.Counts()
	if b0 == 0 {
		t.Fatal("setup: expected a backoff")
	}
	c.Reset()
	if c.Target().Known() || c.Phase() != PhaseHold {
		t.Fatalf("reset left target=%v phase=%v", c.Target(), c.Phase())
	}
	if b, _ := c.Counts(); b != b0 {
		t.Fatalf("reset dropped lifetime counters: %d, want %d", b, b0)
	}
}

// TestAIMDConfigValidation pins the loud-failure contract on nonsense
// tunings.
func TestAIMDConfigValidation(t *testing.T) {
	for name, cfg := range map[string]AIMDConfig{
		"beta<1":     {Beta: 0.5},
		"gain>1":     {Gain: 1.5},
		"maxCount<3": {MaxSamples: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewAIMDEstimator(cfg)
		}()
	}
	def := DefaultAIMDConfig()
	if def.Beta < 1 || def.Window <= 0 || def.Expire <= 0 {
		t.Fatalf("defaults unusable: %+v", def)
	}
}

// TestAIMDEstimatorUnknownNeverPoisons pins the estimator-stage
// cold-start contract: Unknown observations — before, between, and after
// known ones — never initialize or corrupt the estimate.
func TestAIMDEstimatorUnknownNeverPoisons(t *testing.T) {
	e := NewAIMDEstimator(AIMDConfig{})
	conn := graph.ConnID(1)
	fallback := STP(ms(75))

	// Cold: only Unknown observed → Target is the fallback.
	e.Observe(ms(0), conn, Unknown, Unknown)
	if got := e.Target(ms(0), fallback); got != fallback {
		t.Fatalf("cold target = %v, want fallback %v", got, fallback)
	}
	st := e.State(ms(0))
	if st.Target.Known() || st.Estimate.Known() {
		t.Fatalf("Unknown observations initialized state: %+v", st)
	}

	// Known feedback initializes.
	for i := 1; i <= 4; i++ {
		e.Observe(ms(i*10), conn, STP(ms(50)), STP(ms(50)))
	}
	if got := e.Target(ms(40), fallback); got != STP(ms(50)) {
		t.Fatalf("initialized target = %v, want 50ms", got)
	}

	// Unknown again (upstream lost feedback): the smoothed state must
	// hold, not reset or absorb zeros.
	e.Observe(ms(50), conn, Unknown, Unknown)
	if got := e.Target(ms(50), fallback); got != STP(ms(50)) {
		t.Fatalf("target after Unknown = %v, want 50ms untouched", got)
	}
	if st := e.State(ms(50)); st.Estimate != STP(ms(50)) {
		t.Fatalf("estimate after Unknown = %v, want 50ms untouched", st.Estimate)
	}
}

// TestAIMDEstimatorExpiry: feedback silence past Expire discards the
// damped target — a producer must not keep pacing to a dead consumer's
// ghost — and the next feedback re-initializes cleanly.
func TestAIMDEstimatorExpiry(t *testing.T) {
	e := NewAIMDEstimator(AIMDConfig{Window: time.Second, Expire: 2 * time.Second})
	conn := graph.ConnID(1)
	fallback := STP(ms(30))
	for i := 0; i < 4; i++ {
		e.Observe(ms(i*100), conn, STP(ms(50)), STP(ms(50)))
	}
	if got := e.Target(ms(400), fallback); got != STP(ms(50)) {
		t.Fatalf("live target = %v, want 50ms", got)
	}
	// 2.5s of silence: expired.
	if got := e.Target(ms(2900), fallback); got != fallback {
		t.Fatalf("expired target = %v, want fallback %v", got, fallback)
	}
	if st := e.State(ms(2900)); st.Target.Known() || st.Trend != TrendHold || st.Phase != PhaseHold {
		t.Fatalf("expired state not reset: %+v", st)
	}
	// Fresh feedback re-initializes.
	e.Observe(ms(3000), conn, STP(ms(80)), STP(ms(80)))
	if got := e.Target(ms(3000), fallback); got != STP(ms(80)) {
		t.Fatalf("re-initialized target = %v, want 80ms", got)
	}
}

// TestAIMDEstimatorConnEstimate pins the per-connection service-period
// window: each connection's raw feedback is tracked separately.
func TestAIMDEstimatorConnEstimate(t *testing.T) {
	e := NewAIMDEstimator(AIMDConfig{})
	a, b := graph.ConnID(1), graph.ConnID(2)
	for i := 0; i < 3; i++ {
		e.Observe(ms(i*10), a, STP(ms(40)), STP(ms(40)))
		e.Observe(ms(i*10+5), b, STP(ms(80)), STP(ms(40)))
	}
	if got, ok := e.ConnEstimate(ms(30), a); !ok || got != STP(ms(40)) {
		t.Fatalf("conn a estimate = %v,%v, want 40ms,true", got, ok)
	}
	if got, ok := e.ConnEstimate(ms(30), b); !ok || got != STP(ms(80)) {
		t.Fatalf("conn b estimate = %v,%v, want 80ms,true", got, ok)
	}
	if _, ok := e.ConnEstimate(ms(30), graph.ConnID(9)); ok {
		t.Fatal("unseen conn must report no estimate")
	}
}

// TestRawEstimatorPassThrough: the default backend is a pure fallback
// pass-through with empty state.
func TestRawEstimatorPassThrough(t *testing.T) {
	e := NewRawEstimator()
	e.Observe(ms(0), graph.ConnID(1), STP(ms(10)), STP(ms(10)))
	if got := e.Target(ms(0), STP(ms(42))); got != STP(ms(42)) {
		t.Fatalf("raw target = %v, want the 42ms fallback", got)
	}
	if st := e.State(ms(0)); st.Name != "raw" || st.Target.Known() {
		t.Fatalf("raw state = %+v", st)
	}
	e.Reset()
}

// jitteryFeedback simulates the jittery-consumer scenario on a manual
// clock: feedback arrives every tick with period mean±spread (uniform,
// seeded). Returns the raw feedback values and the estimator's target
// after each tick.
func jitteryFeedback(e Estimator, clk *clock.Manual, ticks int, tick, mean, spread time.Duration, seed int64) (raws, targets []STP) {
	rng := rand.New(rand.NewSource(seed))
	conn := graph.ConnID(1)
	for i := 0; i < ticks; i++ {
		clk.Advance(tick)
		v := STP(mean + time.Duration(rng.Int63n(int64(2*spread))) - spread)
		e.Observe(clk.Now(), conn, v, v)
		raws = append(raws, v)
		targets = append(targets, e.Target(clk.Now(), v))
	}
	return raws, targets
}

// signFlips counts direction reversals in the sequence of successive
// deltas — the no-oscillation oracle. Zero deltas (holds) don't reset
// the last direction, so a slow sawtooth is still counted.
func signFlips(vals []STP) int {
	flips, last := 0, 0
	for i := 1; i < len(vals); i++ {
		d := int64(vals[i]) - int64(vals[i-1])
		sign := 0
		if d > 0 {
			sign = 1
		} else if d < 0 {
			sign = -1
		}
		if sign != 0 {
			if last != 0 && sign != last {
				flips++
			}
			last = sign
		}
	}
	return flips
}

// stddevSTP returns the standard deviation of a period series in
// float64 nanoseconds.
func stddevSTP(vals []STP) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)))
}

// TestAIMDConvergenceManualClock is the convergence regression pin: under
// the jittery-consumer scenario (bottleneck 50ms ± 30ms, uniform,
// seeded) the AIMD target must converge to within 10% of the bottleneck
// *rate* within 100 ticks, then hold with a bounded number of pacing
// sign flips and at least 2x less steady-state jitter than the raw
// last-sample signal it replaces.
func TestAIMDConvergenceManualClock(t *testing.T) {
	const (
		ticks     = 300
		converged = 100 // convergence budget, in ticks
		bottleMs  = 50
	)
	clk := clock.NewManual()
	e := NewAIMDEstimator(AIMDConfig{Window: 2 * time.Second, Margin: 0.05})
	raws, targets := jitteryFeedback(e, clk, ticks, ms(50), ms(bottleMs), ms(30), 7)

	// Convergence: the steady-state source rate — 1/mean(target) over the
	// post-budget window — must sit within 10% of the bottleneck rate.
	// (Per-tick targets ride a shallow AIMD sawtooth: an occasional
	// back-off overshoot walked back by additive steps; the paced *rate*
	// is the controlled quantity.)
	steady := targets[converged:]
	rawSteady := raws[converged:]
	var sum float64
	for _, v := range steady {
		if !v.Known() {
			t.Fatal("target Unknown after convergence budget")
		}
		sum += float64(v)
	}
	meanTarget := sum / float64(len(steady))
	bottleRate := 1.0 / float64(ms(bottleMs))
	rate := 1.0 / meanTarget
	if diff := math.Abs(rate-bottleRate) / bottleRate; diff > 0.10 {
		t.Fatalf("steady-state rate is %.1f%% off the bottleneck (mean target %.2fms, want ≤10%%)",
			diff*100, meanTarget/1e6)
	}

	// No-oscillation oracle: the damped signal reverses direction rarely;
	// the raw signal reverses on most ticks.
	flips, rawFlips := signFlips(steady), signFlips(rawSteady)
	if flips > 20 || flips*4 > rawFlips {
		t.Fatalf("steady-state pacing sign flips = %d (raw %d), want ≤ 20 and ≤ raw/4",
			flips, rawFlips)
	}

	// Jitter pin: ≥2x lower steady-state stddev than raw propagation.
	rawJit, aimdJit := stddevSTP(rawSteady), stddevSTP(steady)
	if aimdJit*2 > rawJit {
		t.Fatalf("steady-state jitter: aimd=%.3fms raw=%.3fms, want aimd ≤ raw/2",
			aimdJit/1e6, rawJit/1e6)
	}
}

// TestAIMDTracksStepChange: when the bottleneck slows (a demand step),
// the multiplicative back-off must move the target to the new demand
// within a bounded number of feedback ticks.
func TestAIMDTracksStepChange(t *testing.T) {
	clk := clock.NewManual()
	e := NewAIMDEstimator(AIMDConfig{Window: time.Second, Margin: 0.05})
	conn := graph.ConnID(1)
	feed := func(v STP, n int) {
		for i := 0; i < n; i++ {
			clk.Advance(ms(50))
			e.Observe(clk.Now(), conn, v, v)
		}
	}
	feed(STP(ms(50)), 40)
	if got := e.Target(clk.Now(), Unknown); got < STP(ms(45)) || got > STP(ms(55)) {
		t.Fatalf("pre-step target = %v, want ≈50ms", got)
	}
	// Step: consumer slows to 200ms. The window (1s = 20 samples) flushes
	// old demand and the back-offs compound toward the new period.
	feed(STP(ms(200)), 60)
	got := e.Target(clk.Now(), Unknown)
	if got < STP(ms(180)) || got > STP(ms(230)) {
		t.Fatalf("post-step target = %v, want ≈200ms (±10%%+margin)", got)
	}
	// Step back down: additive probing recovers the faster rate.
	feed(STP(ms(50)), 200)
	got = e.Target(clk.Now(), Unknown)
	if got < STP(ms(45)) || got > STP(ms(60)) {
		t.Fatalf("recovered target = %v, want ≈50ms", got)
	}
}

// TestControllerEstimatorWiring pins the controller integration: thread
// nodes under an estimator-bearing policy pace to the damped target,
// buffer nodes never grow an estimator, snapshots expose the state, and
// FadeNode resets the stage.
func TestControllerEstimatorWiring(t *testing.T) {
	g := graph.New()
	src := g.MustAddNode(graph.KindThread, "src", 0)
	ch := g.MustAddNode(graph.KindChannel, "ch", 0)
	sink := g.MustAddNode(graph.KindThread, "sink", 0)
	put := g.MustConnect(src, ch)
	get := g.MustConnect(ch, sink)

	clk := clock.NewManual()
	p := PolicyMin().WithEstimator(AIMDFactory(AIMDConfig{Window: time.Second}))
	c := NewControllerOn(g, p, clk)

	if c.State(ch).Estimator() != nil {
		t.Fatal("buffer node must not grow an estimator")
	}
	if c.State(src).Estimator() == nil {
		t.Fatal("thread node must grow an estimator")
	}
	if _, ok := c.EstimatorState(ch); ok {
		t.Fatal("EstimatorState must report false for buffer nodes")
	}

	// Drive steady 50ms feedback from the sink through the piggyback
	// path; the source's target must initialize to it.
	for i := 0; i < 10; i++ {
		clk.Advance(ms(50))
		c.SetCurrentSTP(sink, STP(ms(50)))
		c.NoteGet(get)
		c.NotePut(put)
	}
	if got := c.TargetPeriod(src); got != STP(ms(50)) {
		t.Fatalf("TargetPeriod = %v, want 50ms", got)
	}
	es, ok := c.EstimatorState(src)
	if !ok || es.Name != "aimd" || es.Estimate != STP(ms(50)) {
		t.Fatalf("EstimatorState = %+v,%v", es, ok)
	}
	var snapEst *EstimatorState
	for _, ns := range c.Snapshot() {
		if ns.Name == "src" {
			snapEst = ns.Estimator
		}
	}
	if snapEst == nil || snapEst.Estimate != STP(ms(50)) {
		t.Fatalf("snapshot estimator = %+v, want estimate 50ms", snapEst)
	}

	// FadeNode resets the stage along with the node's feedback.
	c.FadeNode(src)
	if es, _ := c.EstimatorState(src); es.Target.Known() {
		t.Fatalf("estimator target survived FadeNode: %+v", es)
	}
}

// TestControllerRawDefaultUnchanged: without an estimator factory the
// controller's pacing signal is exactly the summary-STP — the paper's
// behaviour, byte-for-byte.
func TestControllerRawDefaultUnchanged(t *testing.T) {
	g, a, putConns, getConns := fanoutGraph(t)
	c := NewController(g, PolicyMin())
	feedFanout(c, g, putConns, getConns, figureReports)
	if got := c.TargetPeriod(a); got != c.State(a).Summary() {
		t.Fatalf("raw TargetPeriod %v != Summary %v", got, c.State(a).Summary())
	}
	if c.State(a).Estimator() != nil {
		t.Fatal("nil factory must leave the estimator stage unplugged")
	}
}

// TestEstimatorConcurrentState: State must be callable concurrently with
// Observe/Target (the snapshot/sampler path) — run with -race.
func TestEstimatorConcurrentState(t *testing.T) {
	e := NewAIMDEstimator(AIMDConfig{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			e.Observe(ms(i), graph.ConnID(1), STP(ms(50)), STP(ms(50)))
			e.Target(ms(i), Unknown)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = e.State(ms(i))
	}
	<-done
}
