package core

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// replicaGraph builds src → C1 → worker, the minimal shape for observing
// how a replicated worker's effective current-STP feeds back upstream.
func replicaGraph(t *testing.T) (c *Controller, worker graph.NodeID, get graph.ConnID, put graph.ConnID) {
	t.Helper()
	g := graph.New()
	src := g.MustAddNode(graph.KindThread, "src", 0)
	ch := g.MustAddNode(graph.KindChannel, "C1", 0)
	worker = g.MustAddNode(graph.KindThread, "worker", 0)
	put = g.MustConnect(src, ch)
	get = g.MustConnect(ch, worker)
	return NewController(g, PolicyMin()), worker, get, put
}

// TestReplicaFoldParallel pins the parallel composition: a primary at
// 100ms with replicas at 100ms and 50ms folds to 1/(10+10+20) = 25ms,
// retiring a replica re-tightens the fold, and an Unknown replica (not
// yet through its first Sync) contributes nothing.
func TestReplicaFoldParallel(t *testing.T) {
	c, worker, _, _ := replicaGraph(t)
	st := c.State(worker)

	c.SetCurrentSTP(worker, STP(100*time.Millisecond))
	if got := st.CurrentSTP(); got != STP(100*time.Millisecond) {
		t.Fatalf("unreplicated current = %v, want 100ms", got)
	}
	if st.Replicas() != 0 {
		t.Fatalf("replicas = %d before any registered", st.Replicas())
	}

	// A registered-but-unmeasured replica must not perturb the fold.
	c.SetReplicaSTP(worker, 1, Unknown)
	if got := st.CurrentSTP(); got != STP(100*time.Millisecond) {
		t.Fatalf("current with Unknown replica = %v, want 100ms", got)
	}

	c.SetReplicaSTP(worker, 1, STP(100*time.Millisecond))
	if got := st.CurrentSTP(); got != STP(50*time.Millisecond) {
		t.Fatalf("current with equal replica = %v, want 50ms", got)
	}

	c.SetReplicaSTP(worker, 2, STP(50*time.Millisecond))
	if got := st.CurrentSTP(); got != STP(25*time.Millisecond) {
		t.Fatalf("current with 100+100+50ms fold = %v, want 25ms", got)
	}

	c.RetireReplica(worker, 2)
	if got := st.CurrentSTP(); got != STP(50*time.Millisecond) {
		t.Fatalf("current after retire = %v, want 50ms", got)
	}
	c.RetireReplica(worker, 1)
	if got := st.CurrentSTP(); got != STP(100*time.Millisecond) {
		t.Fatalf("current after full scale-down = %v, want primary's 100ms", got)
	}
}

// TestReplicaFoldFeedsUpstream proves the point of the fold: the
// worker's summary-STP (max of compressed and effective current) is what
// its get piggybacks onto C1, so a replica coming online relaxes the
// backpressure the source sees on its next put.
func TestReplicaFoldFeedsUpstream(t *testing.T) {
	c, worker, get, put := replicaGraph(t)

	c.SetCurrentSTP(worker, STP(200*time.Millisecond))
	c.NoteGet(get)
	c.NotePut(put)
	src := c.g.Conn(put).From
	if got := c.State(src).Summary(); got != STP(200*time.Millisecond) {
		t.Fatalf("pre-replica source summary = %v, want the worker's 200ms", got)
	}

	// One equal replica: effective period halves and the next
	// piggyback cycle propagates the relaxed demand.
	c.SetReplicaSTP(worker, 1, STP(200*time.Millisecond))
	c.NoteGet(get)
	c.NotePut(put)
	if got := c.State(src).Summary(); got != STP(100*time.Millisecond) {
		t.Fatalf("post-replica source summary = %v, want 100ms", got)
	}

	// Snapshot surfaces the replica count for status rendering.
	for _, ns := range c.Snapshot() {
		if ns.Name == "worker" && ns.Replicas != 1 {
			t.Fatalf("snapshot replicas = %d, want 1", ns.Replicas)
		}
	}
}
