package soak

import (
	"testing"
	"time"
)

// TestConservationUnderChaos is the acceptance oracle for the drain
// subsystem, exercised end to end: seeded relay kills with supervisor
// restarts on a local FIFO cycle, then faultnet wire chaos (scripted
// delays, a mid-stream sever budget, a partition/heal pulse) on a
// remote cycle — both ending in a graceful Drain. Conservation must
// hold outright (produced == delivered + explicitly shed, with wire
// skips exactly balancing the timestamp gaps), zero duplicates, and
// the clean drain must shed 0. CI runs this under -race -count=2, so
// every lifecycle handoff in the drain path is also a race probe.
func TestConservationUnderChaos(t *testing.T) {
	rep, err := Run(Config{
		Seed:   1719,
		Cycles: 2,
		Relays: 2,
		Kills:  2,
		Run:    400 * time.Millisecond,
		Period: time.Millisecond,
		Remote: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violated: %s", v)
	}
	if rep.Produced == 0 || rep.Delivered == 0 {
		t.Fatalf("soak did not flow: produced %d, delivered %d", rep.Produced, rep.Delivered)
	}
	var kills int
	var remoteFaults int64
	for _, cr := range rep.Cycles {
		kills += cr.Kills
		if cr.Remote {
			remoteFaults += cr.Faults
		}
	}
	if kills == 0 {
		t.Fatal("no seeded kills fired: the supervisor path went unexercised")
	}
	if remoteFaults == 0 {
		t.Fatal("faultnet injected nothing on the remote cycle")
	}
}

// TestLocalCycleStrictLedger pins the strict local invariant on its
// own: no remote edge, several kills, and the ledger must balance to
// the item — a clean drain delivers every produced item.
func TestLocalCycleStrictLedger(t *testing.T) {
	rep, err := Run(Config{
		Seed:   7,
		Cycles: 1,
		Relays: 3,
		Kills:  3,
		Run:    400 * time.Millisecond,
		Period: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle violated: %s", v)
	}
	cr := rep.Cycles[0]
	if cr.Produced != cr.Delivered {
		t.Fatalf("clean local drain lost items: produced %d, delivered %d, shed %d", cr.Produced, cr.Delivered, cr.Shed)
	}
	if !cr.Clean || cr.Shed != 0 {
		t.Fatalf("drain not clean/zero-shed: clean=%v shed=%d", cr.Clean, cr.Shed)
	}
}
