// Package soak is the lifecycle torture harness behind cmd/soak: it
// runs seeded kill/restart/chaos/drain cycles over FIFO pipelines on a
// real clock and asserts the conservation invariant outright —
//
//	produced == delivered + explicitly_shed (+ discipline skips on a
//	latest-discipline wire edge)
//
// with zero duplicates, and a clean (deadline-not-hit) drain shedding
// exactly 0 items. Every cycle builds a fresh Runtime, hammers it with
// supervisor-restarted panics (and, on remote cycles, faultnet wire
// chaos: scripted delays, a mid-stream sever, a partition/heal pulse),
// then ends with Runtime.Drain — the exact lifecycle sequence the
// drain subsystem promises to make lossless.
//
// The harness is seeded but runs on the wall clock, so item counts
// vary run to run; the conservation identity must hold for every
// count. That is the point: the oracle is an invariant, not a pin.
package soak

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/faultnet"
	"repro/internal/rand"
	"repro/internal/remote"
	rt "repro/internal/runtime"
	"repro/internal/vt"
)

// Config shapes one soak run. Zero values take the defaults below.
type Config struct {
	// Seed drives every random draw: kill placement, chaos scripting,
	// per-cycle substreams. Same seed → same schedule of injected
	// faults (the flow itself is wall-clock timed).
	Seed int64
	// Cycles is the number of build→run→chaos→drain→verify rounds.
	Cycles int
	// Relays is the number of relay stages between source and sink.
	Relays int
	// Kills is the number of seeded relay panics injected per cycle
	// (each restarted by the supervisor).
	Kills int
	// Run is the load phase per cycle before the drain begins.
	Run time.Duration
	// DrainDeadline bounds each cycle's graceful drain. It is generous
	// by default: a correct flush finishes early and Clean=true is part
	// of the oracle.
	DrainDeadline time.Duration
	// Period is the source's inter-item production period.
	Period time.Duration
	// Capacity bounds every queue edge.
	Capacity int
	// Remote routes the middle edge of every odd cycle over a real
	// socket (remote channel server) wrapped in faultnet chaos.
	Remote bool
	// Out receives per-cycle progress lines; nil is silent.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1719
	}
	if c.Cycles <= 0 {
		c.Cycles = 4
	}
	if c.Relays <= 0 {
		c.Relays = 3
	}
	if c.Kills < 0 {
		c.Kills = 0
	}
	if c.Run <= 0 {
		c.Run = 1500 * time.Millisecond
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 10 * time.Second
	}
	if c.Period <= 0 {
		c.Period = 2 * time.Millisecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	return c
}

// Quick returns the CI smoke configuration: two cycles (one local,
// one remote-chaos when Remote is on), short load phases, same
// invariants.
func Quick(seed int64) Config {
	return Config{Seed: seed, Cycles: 2, Relays: 2, Kills: 2,
		Run: 500 * time.Millisecond, Period: time.Millisecond, Remote: true}
}

// CycleResult is one cycle's accounting and verdicts.
type CycleResult struct {
	Cycle     int
	Remote    bool
	Produced  int64 // successful source puts
	Delivered int64 // sink consumptions
	Drained   int64 // items delivered after their buffer sealed
	Shed      int64 // items explicitly discarded at settle
	Skipped   int64 // latest-discipline skips on the wire edge (remote cycles)
	Dups      int64 // duplicate timestamps at the sink (must be 0)
	Clean     bool  // drain finished before its deadline
	DrainMs   float64
	Kills     int   // injected panics that actually fired
	Restarts  int   // supervisor restarts consumed
	Faults    int64 // faultnet injections (remote cycles)
	// Violations lists every oracle this cycle broke (empty = pass).
	Violations []string

	plannedKills int // cardinality of the seeded kill schedule
}

// Report aggregates a run.
type Report struct {
	Seed       int64
	Cycles     []CycleResult
	Produced   int64
	Delivered  int64
	Drained    int64
	Shed       int64
	Skipped    int64
	Dups       int64
	Violations []string
}

// OK reports that every cycle passed every oracle.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Run executes the soak: cfg.Cycles rounds of build → load (+ seeded
// kills, + wire chaos on remote cycles) → drain → verify.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed}
	for i := 0; i < cfg.Cycles; i++ {
		remoteCycle := cfg.Remote && i%2 == 1
		cr, err := runCycle(cfg, i, remoteCycle)
		if err != nil {
			return rep, fmt.Errorf("soak: cycle %d: %w", i, err)
		}
		rep.Cycles = append(rep.Cycles, *cr)
		rep.Produced += cr.Produced
		rep.Delivered += cr.Delivered
		rep.Drained += cr.Drained
		rep.Shed += cr.Shed
		rep.Skipped += cr.Skipped
		rep.Dups += cr.Dups
		for _, v := range cr.Violations {
			rep.Violations = append(rep.Violations, fmt.Sprintf("cycle %d: %s", i, v))
		}
		if cfg.Out != nil {
			kind := "local"
			if remoteCycle {
				kind = "remote"
			}
			fmt.Fprintf(cfg.Out, "cycle %d (%s): produced %d delivered %d drained %d shed %d skipped %d dups %d kills %d restarts %d clean %v drain %.1fms violations %d\n",
				i, kind, cr.Produced, cr.Delivered, cr.Drained, cr.Shed, cr.Skipped, cr.Dups, cr.Kills, cr.Restarts, cr.Clean, cr.DrainMs, len(cr.Violations))
		}
	}
	return rep, nil
}

// pipeState is the shared mutable state of one cycle's pipeline. The
// counters are atomics because the supervisor may run a relay body
// again after a panic while the harness reads progress; the sink's
// seen map is single-goroutine and only read after Wait.
type pipeState struct {
	produced   atomic.Int64
	delivered  atomic.Int64
	killsFired atomic.Int64
	killsArmed atomic.Bool
	bodyFault  atomic.Value // first unexpected body error (string)
	seen       map[vt.Timestamp]int
	order      []vt.Timestamp
}

func (ps *pipeState) fault(format string, args ...any) {
	ps.bodyFault.CompareAndSwap(nil, fmt.Sprintf(format, args...))
}

// runCycle builds source → relay₀ → … → relayₙ → sink over bounded
// FIFO queues (remote cycles swap the edge between relay₀ and relay₁
// for a faultnet-wrapped wire), loads it for cfg.Run with seeded relay
// panics armed, then drains and audits the ledger.
func runCycle(cfg Config, cycle int, remoteCycle bool) (*CycleResult, error) {
	rng := rand.New(rand.Split(uint64(cfg.Seed), uint64(cycle)))
	cr := &CycleResult{Cycle: cycle, Remote: remoteCycle}
	ps := &pipeState{seen: make(map[vt.Timestamp]int)}
	ps.killsArmed.Store(true)

	relays := cfg.Relays
	if remoteCycle && relays < 2 {
		relays = 2 // the wire needs a producer relay and a consumer relay
	}

	// Seeded kill schedule: each kill targets one relay at a small
	// local iteration, so every kill fires well inside the load phase
	// and is fully restarted before the drain begins.
	killAt := make([]map[int64]bool, relays)
	for i := range killAt {
		killAt[i] = map[int64]bool{}
	}
	for k := 0; k < cfg.Kills; k++ {
		killAt[rng.Intn(relays)][rng.Int63n(40)+3] = true
	}
	for _, m := range killAt {
		cr.plannedKills += len(m)
	}

	var ctl *faultnet.Control
	var srv *remote.Server
	if remoteCycle {
		ctl = faultnet.New(cfg.Seed + int64(cycle))
		ln, err := ctl.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv, err = remote.NewServer(remote.ServerConfig{Listener: ln}, "wire")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		// Scripted wire friction from the start; the sever and the
		// partition pulse land mid-run below.
		ctl.SetDelays(200*time.Microsecond, 200*time.Microsecond, 300*time.Microsecond)
		ctl.DropWriteAfter(16384 + rng.Int63n(16384))
	}

	r := rt.New(rt.Options{Clock: clock.NewReal(), SampleEvery: -1})

	// Edges: queue i feeds stage i+1; on remote cycles edge 1 (between
	// relay₀ and relay₁) is the wire.
	edges := make([]*rt.BufferRef, relays+1)
	for i := range edges {
		if remoteCycle && i == 1 {
			ref, err := r.AddRemoteChannel("wire", 0, srv.Addr())
			if err != nil {
				return nil, err
			}
			edges[i] = ref
			continue
		}
		ref, err := r.AddQueue(fmt.Sprintf("q%d", i), 0, rt.WithQueueCapacity(cfg.Capacity))
		if err != nil {
			return nil, err
		}
		edges[i] = ref
	}

	policy := rt.RestartPolicy{MaxRestarts: cfg.Kills + 4, Seed: cfg.Seed + 1}
	policy.Backoff.Base = 5 * time.Millisecond
	policy.Backoff.Cap = 20 * time.Millisecond
	policy.Backoff.Factor = 2

	src, err := r.AddThread("source", 0, sourceBody(ps, cfg.Period))
	if err != nil {
		return nil, err
	}
	if _, err := src.Output(edges[0]); err != nil {
		return nil, err
	}
	for i := 0; i < relays; i++ {
		wireIn := remoteCycle && i == 1
		th, err := r.AddThread(fmt.Sprintf("relay%d", i), 0,
			relayBody(ps, i, killAt[i], wireIn), rt.WithRestartOnFailure(policy))
		if err != nil {
			return nil, err
		}
		if _, err := th.Input(edges[i]); err != nil {
			return nil, err
		}
		if _, err := th.Output(edges[i+1]); err != nil {
			return nil, err
		}
	}
	sink, err := r.AddThread("sink", 0, sinkBody(ps))
	if err != nil {
		return nil, err
	}
	if _, err := sink.Input(edges[relays]); err != nil {
		return nil, err
	}

	if err := r.Start(); err != nil {
		return nil, err
	}

	// Load phase. Remote cycles pulse a partition through the middle of
	// it and heal before the drain, so the reconnect/replay machinery
	// must carry the stream across the outage without loss or dup.
	if remoteCycle {
		time.Sleep(cfg.Run / 3)
		ctl.Partition()
		time.Sleep(cfg.Run / 6)
		ctl.Heal()
		time.Sleep(cfg.Run / 2)
	} else {
		time.Sleep(cfg.Run)
	}

	// Disarm the kill schedule before draining: a panic inside the
	// drain window is deliberately unrecoverable (the supervisor treats
	// drain as terminal), which would turn a clean flush into a shed —
	// a different scenario than the one this harness pins. The seeded
	// kills all fire at small iteration counts, long before this point.
	ps.killsArmed.Store(false)
	drainRep := r.Drain(cfg.DrainDeadline)
	if err := r.Wait(); err != nil {
		return nil, err
	}

	cr.Produced = ps.produced.Load()
	cr.Delivered = ps.delivered.Load()
	cr.Drained = drainRep.Drained
	cr.Shed = drainRep.Shed
	cr.Clean = drainRep.Clean
	cr.DrainMs = float64(drainRep.Duration) / float64(time.Millisecond)
	cr.Kills = int(ps.killsFired.Load())
	for _, th := range r.Health().Threads {
		cr.Restarts += th.Restarts
	}
	if ctl != nil {
		cr.Faults = ctl.Injected()
	}
	for ts, n := range ps.seen {
		if n > 1 {
			cr.Dups += int64(n - 1)
		}
		if int64(ts) > cr.Produced {
			cr.Violations = append(cr.Violations, fmt.Sprintf("sink saw timestamp %d beyond produced %d (phantom item)", ts, cr.Produced))
		}
	}
	verify(cfg, cr, ps)
	return cr, nil
}

// verify audits one cycle against the oracles. Local cycles get the
// strict ledger — produced == delivered + shed, and a clean drain
// sheds 0, so produced == delivered exactly. Remote cycles route
// through a latest-discipline wire whose skips are the paper's drop
// discipline, not loss: the remainder produced − delivered − shed is
// attributed to Skipped and must exactly equal the timestamp gaps the
// sink observed — every item is accounted for, none vanish silently.
func verify(cfg Config, cr *CycleResult, ps *pipeState) {
	bad := func(format string, args ...any) {
		cr.Violations = append(cr.Violations, fmt.Sprintf(format, args...))
	}
	if cr.Produced == 0 {
		bad("source produced nothing: the cycle proves nothing")
	}
	if cr.Delivered == 0 {
		bad("sink delivered nothing: the pipeline never flowed")
	}
	if cr.Dups != 0 {
		bad("%d duplicate deliveries (want 0)", cr.Dups)
	}
	if !cr.Clean {
		bad("drain hit its %v deadline (want a clean flush)", cfg.DrainDeadline)
	}
	if f := ps.bodyFault.Load(); f != nil {
		bad("unexpected body error: %v", f)
	}
	if cr.Kills != cr.plannedKills {
		bad("injected %d kills, schedule called for %d", cr.Kills, cr.plannedKills)
	}
	for i := 1; i < len(ps.order); i++ {
		if ps.order[i] <= ps.order[i-1] {
			bad("delivery order regressed: ts %d after %d", ps.order[i], ps.order[i-1])
			break
		}
	}
	rem := cr.Produced - cr.Delivered - cr.Shed
	if cr.Remote {
		cr.Skipped = rem
		if rem < 0 {
			bad("conservation broke: delivered+shed exceeds produced by %d", -rem)
		}
		if cr.Faults == 0 {
			bad("faultnet injected nothing: the chaos script never bit")
		}
		// The skip ledger must balance against what the sink saw: gaps
		// in the delivered timestamp sequence plus the tail the sealed
		// wire jumped over. With zero dups these are arithmetically the
		// same count, so the assert is on the measured seen-set.
		var maxTS vt.Timestamp
		for ts := range ps.seen {
			if ts > maxTS {
				maxTS = ts
			}
		}
		gaps := int64(maxTS) - int64(len(ps.seen)) + (cr.Produced - int64(maxTS))
		if cr.Dups == 0 && gaps != rem {
			bad("skip ledger off: %d timestamp gaps vs %d unaccounted items", gaps, rem)
		}
	} else {
		if rem != 0 {
			bad("conservation broke: produced %d != delivered %d + shed %d", cr.Produced, cr.Delivered, cr.Shed)
		}
		if cr.Clean && cr.Shed != 0 {
			bad("clean drain shed %d items (want 0)", cr.Shed)
		}
	}
}

// sourceBody produces one item per period with consecutive timestamps,
// counting only puts the buffer accepted. A put rejected by quiesce
// (ErrDraining) or shutdown never existed for the ledger.
func sourceBody(ps *pipeState, period time.Duration) rt.Body {
	return func(ctx *rt.Ctx) error {
		out := ctx.Outs()[0]
		var ts vt.Timestamp
		for !ctx.Stopped() {
			ts++
			err := ctx.Put(out, ts, nil, 64)
			if err == nil || errors.Is(err, rt.ErrReattached) {
				ps.produced.Add(1)
			} else if errors.Is(err, rt.ErrDraining) || errors.Is(err, rt.ErrShutdown) {
				return nil
			} else {
				ps.fault("source put: %v", err)
				return nil
			}
			ctx.Idle(period)
		}
		return nil
	}
}

// relayBody forwards its input 1:1. The kill check runs at the top of
// the iteration — before Get — so a panic never strands an in-hand
// item: the unconsumed item stays in the queue for the restarted body
// (or for the drain accounting). Wire-fed relays poll TryGetLatest
// like every remote consumer in the tree (a blocked wire get has no
// local producer to wake it after seal).
func relayBody(ps *pipeState, idx int, killAt map[int64]bool, wireIn bool) rt.Body {
	var iter int64
	return func(ctx *rt.Ctx) error {
		in, out := ctx.Ins()[0], ctx.Outs()[0]
		for !ctx.Stopped() {
			iter++
			if killAt[iter] && ps.killsArmed.Load() {
				ps.killsFired.Add(1)
				panic(fmt.Sprintf("soak: seeded kill in relay%d at iteration %d", idx, iter))
			}
			var msg rt.Msg
			var err error
			if wireIn {
				var ok bool
				msg, ok, err = ctx.TryGetLatest(in)
				if errors.Is(err, rt.ErrReattached) {
					err = nil
					if !ok {
						continue
					}
				}
				if err == nil && !ok {
					ctx.Idle(time.Millisecond)
					continue
				}
			} else {
				msg, err = ctx.Get(in)
				if errors.Is(err, rt.ErrReattached) {
					err = nil
				}
			}
			if err != nil {
				if errors.Is(err, rt.ErrShutdown) {
					return nil
				}
				return err // supervisor restarts (wire outages land here)
			}
			if perr := ctx.Put(out, msg.TS, nil, msg.Size); perr != nil {
				if errors.Is(perr, rt.ErrShutdown) || errors.Is(perr, rt.ErrReattached) {
					if errors.Is(perr, rt.ErrReattached) {
						continue
					}
					return nil
				}
				ps.fault("relay%d put: %v", idx, perr)
				return nil
			}
		}
		return nil
	}
}

// sinkBody records every delivery: the count, the multiset of
// timestamps (duplicate detector), and the order (monotonicity check).
func sinkBody(ps *pipeState) rt.Body {
	return func(ctx *rt.Ctx) error {
		in := ctx.Ins()[0]
		for !ctx.Stopped() {
			msg, err := ctx.Get(in)
			if errors.Is(err, rt.ErrReattached) {
				err = nil
			}
			if err != nil {
				if errors.Is(err, rt.ErrShutdown) {
					return nil
				}
				ps.fault("sink get: %v", err)
				return nil
			}
			ps.delivered.Add(1)
			ps.seen[msg.TS]++
			ps.order = append(ps.order, msg.TS)
			ctx.Emit()
		}
		return nil
	}
}
