// Package ring implements a bounded lock-free FIFO buffer backend for
// the throughput regime the ROADMAP's "millions of users" north star
// asks for: hot-path puts and gets are a handful of atomic operations —
// no mutex, no condition variable, no allocation — with a mutex+condvar
// slow path entered only when the ring is actually empty (consumer) or
// full (producers).
//
// The design is the classic bounded MPMC ring specialized to this
// repo's shapes: a power-of-two slot array where each slot carries a
// sequence number that encodes its state. Slot i is free for position
// pos (seq == pos), published (seq == pos+1), or still draining from a
// previous lap (seq < pos). Producers claim positions on a padded tail
// cursor — a plain store in SPSC mode, a CAS loop in MPSC mode — write
// the item value, and release the slot by storing seq = pos+1; the
// single consumer reads head, waits for seq == pos+1, copies the item
// out, and recycles the slot with seq = pos+ringSize. Sequence numbers
// are the only cross-thread handshake, so producers never read head and
// the consumer never reads tail: each cursor stays in its owner's cache
// line (both are padded against false sharing).
//
// Items are stored by value. The *Item a producer hands to Put is
// copied into the slot and recycled into the configured pool
// immediately, so a pooled put allocates nothing even while the ring
// holds a backlog — the property behind the put=0 allocation pin.
//
// Blocking is spin-then-park: a bounded Gosched spin absorbs the
// microsecond-scale waits of a busy pipeline, then the waiter registers
// itself in an atomic sleeper count and parks on a condvar. Publishers
// check the sleeper count (one atomic load when nobody sleeps) after
// releasing a slot; the sequentially consistent store/load ordering of
// Go atomics makes the classic sleeper handshake race-free. Because the
// spin phase burns real CPU, the ring requires a real (or scaled)
// clock: under a discrete-event virtual clock a spinning goroutine
// would freeze virtual time, so New rejects clock.Registrar clocks and
// the runtime's auto-selection never picks the ring for them.
//
// Ring is registered as "ring": FIFO discipline, TryGet, single
// consumer, one or many producers (the mode is frozen by the number of
// producer attachments, which per the Buffer contract all happen before
// the first Put).
package ring

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vt"
)

func init() {
	buffer.Register("ring", buffer.Backend{
		New:  func(cfg buffer.Config) (buffer.Buffer, error) { return New(cfg) },
		Caps: caps,
	})
}

var caps = buffer.Caps{
	Discipline: buffer.FIFO,
	TryGet:     true,
}

// spins bounds the Gosched spin phase before a waiter parks on the
// condvar slow path.
const spins = 64

// noConn is the "no consumer attached" sentinel (graph connection ids
// are non-negative).
const noConn = int64(-1)

// slot is one ring cell: the sequence number is the slot's state (see
// the package comment) and the item is stored by value.
type slot struct {
	seq atomic.Uint64
	it  buffer.Item
}

// pad keeps the hot cursors on their own cache lines.
type pad [64]byte

// Ring is a bounded lock-free FIFO buffer (single consumer, SPSC or
// MPSC producers). All methods are safe for concurrent use within that
// attachment shape.
type Ring struct {
	cfg   buffer.Config
	slots []slot
	mask  uint64

	_    pad
	head atomic.Uint64 // consumer cursor: next position to pop
	_    pad
	tail atomic.Uint64 // producer cursor: next position to claim
	_    pad

	mpsc      atomic.Bool // ≥2 producers attached: claim via CAS
	closed    atomic.Bool
	sealed    atomic.Bool // drain mode: puts rejected, gets serve the backlog
	prodsDead atomic.Bool // every producer failed permanently
	consDead  atomic.Bool // every consumer failed permanently

	puts      atomic.Int64
	frees     atomic.Int64
	liveBytes atomic.Int64
	drainedN  atomic.Int64 // items delivered to the consumer after Seal
	shedN     atomic.Int64 // items discarded undelivered by Drain

	// sleepCons/sleepProd count waiters parked on the slow path; a
	// publisher that loads zero skips the mutex entirely.
	sleepCons atomic.Int32
	sleepProd atomic.Int32

	// mu guards attachment mutations and backs the park/wake slow path.
	// The hot paths read the attachment state lock-free: producers is a
	// copy-on-write set behind an atomic pointer, consumer an atomic
	// conn id (negative: none attached) — so checkProducer/checkConsumer
	// never race with FailProducer/FailConsumer rewriting the tables.
	mu         sync.Mutex
	notEmpty   *sync.Cond
	notFull    *sync.Cond
	producers  atomic.Pointer[map[graph.ConnID]bool]
	consumer   atomic.Int64 // graph.ConnID, or noConn
	prodFailed int
	consFailed int

	// Live instruments (nil when Cfg.Metrics is nil).
	mPuts       *metrics.Counter
	mFrees      *metrics.Counter
	mItemsHW    *metrics.Gauge
	mBytesHW    *metrics.Gauge
	mPutBlocked *metrics.Histogram
	mDrained    *metrics.Counter
	mShed       *metrics.Counter
}

// New creates a ring. Capacity must be positive and is rounded up to
// the next power of two (the mask trick needs it; the documented
// capacity of a ring buffer is its slot count). A discrete-event
// virtual clock is rejected: the spin phase would freeze virtual time.
func New(cfg buffer.Config) (*Ring, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("ring: %q requires a positive capacity (got %d): a lock-free ring is bounded by construction", cfg.Name, cfg.Capacity)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if _, isReg := cfg.Clock.(clock.Registrar); isReg {
		return nil, fmt.Errorf("ring: %q requires a real clock: the spin phase would freeze a discrete-event clock", cfg.Name)
	}
	size := 1
	for size < cfg.Capacity {
		size <<= 1
	}
	r := &Ring{
		cfg:   cfg,
		slots: make([]slot, size),
		mask:  uint64(size - 1),
	}
	empty := map[graph.ConnID]bool{}
	r.producers.Store(&empty)
	r.consumer.Store(noConn)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.notEmpty = sync.NewCond(&r.mu)
	r.notFull = sync.NewCond(&r.mu)
	if reg := cfg.Metrics; reg != nil {
		ls := cfg.MetricLabels()
		r.mPuts = reg.Counter(buffer.MetricPuts, "Items inserted into the buffer.", ls)
		r.mFrees = reg.Counter(buffer.MetricFrees, "Items reclaimed by the collector (or drained).", ls)
		r.mItemsHW = reg.Gauge(buffer.MetricItemsHW, "High-water mark of live items.", ls)
		r.mBytesHW = reg.Gauge(buffer.MetricBytesHW, "High-water mark of live bytes.", ls)
		r.mPutBlocked = reg.Histogram(buffer.MetricPutBlocked, "Time producers spent blocked on capacity (blocking puts only).", nil, ls)
		r.mDrained = reg.Counter(buffer.MetricDrained, "Items delivered to a consumer after the buffer was sealed for drain.", ls)
		r.mShed = reg.Counter(buffer.MetricShed, "Items discarded undelivered at shutdown (explicitly shed, not silently lost).", ls)
	}
	return r, nil
}

// Name returns the buffer's system-wide unique name.
func (r *Ring) Name() string { return r.cfg.Name }

// Node returns the buffer's task-graph id.
func (r *Ring) Node() graph.NodeID { return r.cfg.Node }

// Caps reports the ring backend's capabilities.
func (r *Ring) Caps() buffer.Caps { return caps }

// Capacity returns the ring's slot count (the declared capacity rounded
// up to a power of two).
func (r *Ring) Capacity() int { return len(r.slots) }

// AttachProducer registers a producer connection. The second distinct
// producer flips the ring into MPSC mode (CAS-claimed tail); per the
// Buffer contract every attach happens before the first Put, so the
// mode is frozen by the time the hot path reads it.
func (r *Ring) AttachProducer(conn graph.ConnID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.producers.Load()
	next := make(map[graph.ConnID]bool, len(old)+1)
	for c := range old {
		next[c] = true
	}
	next[conn] = true
	r.producers.Store(&next)
	if len(next) > 1 {
		r.mpsc.Store(true)
	}
	return nil
}

// AttachConsumer registers the single consumer connection. The ring's
// lock-free pop owns the head cursor exclusively, so a second distinct
// consumer — and any sliding window — is rejected with ErrUnsupported.
func (r *Ring) AttachConsumer(conn graph.ConnID, window int) error {
	if window != 1 {
		return fmt.Errorf("%w: window width %d on ring %q", buffer.ErrUnsupported, window, r.cfg.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.consumer.Load(); cur != noConn && cur != int64(conn) {
		return fmt.Errorf("%w: second consumer on ring %q (the ring's pop path is single-consumer)", buffer.ErrUnsupported, r.cfg.Name)
	}
	r.consumer.Store(int64(conn))
	return nil
}

// DetachConsumer removes the consumer connection.
func (r *Ring) DetachConsumer(conn graph.ConnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consumer.CompareAndSwap(int64(conn), noConn)
}

// FailProducer removes a producer attachment that failed permanently.
// Once every producer has failed the consumer drains the remaining
// items and then observes ErrPeerFailed instead of blocking forever.
func (r *Ring) FailProducer(conn graph.ConnID) {
	r.mu.Lock()
	old := *r.producers.Load()
	if old[conn] {
		next := make(map[graph.ConnID]bool, len(old))
		for c := range old {
			if c != conn {
				next[c] = true
			}
		}
		r.producers.Store(&next)
		r.prodFailed++
		if len(next) == 0 {
			r.prodsDead.Store(true)
			r.notEmpty.Broadcast()
		}
	}
	r.mu.Unlock()
}

// FailConsumer removes the consumer attachment on permanent failure.
// Producers blocked on capacity then observe ErrPeerFailed: nothing
// will ever be popped again.
func (r *Ring) FailConsumer(conn graph.ConnID) {
	r.mu.Lock()
	if r.consumer.CompareAndSwap(int64(conn), noConn) {
		r.consFailed++
		r.consDead.Store(true)
		r.notFull.Broadcast()
	}
	r.mu.Unlock()
}

// checkProducer validates the connection against the copy-on-write
// attachment set — a lock-free read that never races with the
// mutations, which swap in a fresh map under mu.
func (r *Ring) checkProducer(conn graph.ConnID) error {
	if !(*r.producers.Load())[conn] {
		return fmt.Errorf("%w: producer %d on %q", buffer.ErrNotAttached, conn, r.cfg.Name)
	}
	return nil
}

func (r *Ring) checkConsumer(conn graph.ConnID) error {
	if r.consumer.Load() != int64(conn) {
		return fmt.Errorf("%w: consumer %d on %q", buffer.ErrNotAttached, conn, r.cfg.Name)
	}
	return nil
}

// accountPut records n inserted items totalling bytes.
func (r *Ring) accountPut(n int, bytes int64) {
	r.puts.Add(int64(n))
	live := r.liveBytes.Add(bytes)
	if r.mPuts != nil {
		r.mPuts.Add(int64(n))
		r.mItemsHW.Max(int64(r.tail.Load() - r.head.Load()))
		r.mBytesHW.Max(live)
	}
}

// wakeConsumer wakes a parked consumer, if any: one atomic load on the
// common (nobody-sleeping) path.
func (r *Ring) wakeConsumer() {
	if r.sleepCons.Load() > 0 {
		r.mu.Lock()
		r.notEmpty.Broadcast()
		r.mu.Unlock()
	}
}

// wakeProducers wakes parked producers, if any.
func (r *Ring) wakeProducers() {
	if r.sleepProd.Load() > 0 {
		r.mu.Lock()
		r.notFull.Broadcast()
		r.mu.Unlock()
	}
}

// parkProducer waits until the slot generation for position pos is free
// (seq reaches pos), spinning first and then sleeping. It returns the
// time spent in the parked phase and ErrPeerFailed when every consumer
// has failed — with a dead audience no slot will ever free again.
//
// The wake condition is seq >= pos, not equality: in MPSC mode pos can
// go stale while this producer parks (another producer claims the freed
// slot and republishes it, moving seq past pos). Equality would then
// never hold again and the waiter would sleep forever; >= hands control
// back to the caller, which reloads the tail and retries.
func (r *Ring) parkProducer(pos uint64) (time.Duration, error) {
	s := &r.slots[pos&r.mask]
	freed := func() bool {
		return int64(s.seq.Load())-int64(pos) >= 0 || r.closed.Load() || r.sealed.Load() || r.consDead.Load()
	}
	for i := 0; i < spins; i++ {
		if freed() {
			if r.consDead.Load() {
				return 0, fmt.Errorf("%w: all consumers of %q failed while producer blocked on capacity", buffer.ErrPeerFailed, r.cfg.Name)
			}
			return 0, nil
		}
		runtime.Gosched()
	}
	start := r.cfg.Clock.Now()
	r.mu.Lock()
	r.sleepProd.Add(1)
	for !freed() {
		r.notFull.Wait()
	}
	r.sleepProd.Add(-1)
	r.mu.Unlock()
	d := r.cfg.Clock.Now() - start
	if r.mPutBlocked != nil && d > 0 {
		r.mPutBlocked.Observe(d)
	}
	if r.consDead.Load() {
		return d, fmt.Errorf("%w: all consumers of %q failed while producer blocked on capacity", buffer.ErrPeerFailed, r.cfg.Name)
	}
	return d, nil
}

// parkConsumer waits until the slot at the head position is published,
// the ring closes, or every producer fails; it returns time spent in
// the parked phase.
// Like parkProducer, the wake condition is seq >= pos+1 rather than
// equality: a concurrent Drain can pop the slot this consumer parked
// on (recycling it a full lap ahead), after which equality would never
// hold; >= returns to the caller, which reloads the head and retries.
func (r *Ring) parkConsumer() time.Duration {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	ready := func() bool {
		return int64(s.seq.Load())-int64(pos+1) >= 0 || r.closed.Load() || r.sealed.Load() || r.prodsDead.Load()
	}
	for i := 0; i < spins; i++ {
		if ready() {
			return 0
		}
		runtime.Gosched()
	}
	start := r.cfg.Clock.Now()
	r.mu.Lock()
	r.sleepCons.Add(1)
	for !ready() {
		r.notEmpty.Wait()
	}
	r.sleepCons.Add(-1)
	r.mu.Unlock()
	return r.cfg.Clock.Now() - start
}

// insert writes an item into the slot claimed at pos and publishes it.
// The item value is copied, so the pointer goes straight back to the
// pool — the ring never retains caller memory.
func (r *Ring) insert(pos uint64, it *buffer.Item) {
	s := &r.slots[pos&r.mask]
	s.it = *it
	s.seq.Store(pos + 1)
	size := it.Size
	r.cfg.Pool.Recycle(it)
	r.accountPut(1, size)
	r.wakeConsumer()
}

// Put inserts an item, blocking while the ring is full. SPSC mode
// claims the tail with a plain store (the single producer owns it);
// MPSC mode claims it with CAS.
func (r *Ring) Put(conn graph.ConnID, it *buffer.Item) (time.Duration, error) {
	if err := r.checkProducer(conn); err != nil {
		return 0, err
	}
	var blocked time.Duration
	if r.mpsc.Load() {
		return r.putMPSC(it)
	}
	for {
		if r.closed.Load() {
			return blocked, buffer.ErrClosed
		}
		if r.sealed.Load() {
			return blocked, r.errSealed()
		}
		pos := r.tail.Load()
		if r.slots[pos&r.mask].seq.Load() == pos {
			r.tail.Store(pos + 1)
			r.insert(pos, it)
			return blocked, nil
		}
		d, err := r.parkProducer(pos)
		blocked += d
		if err != nil {
			return blocked, err
		}
	}
}

// errSealed builds the typed drain rejection for puts into a sealed ring.
func (r *Ring) errSealed() error {
	return fmt.Errorf("%w: put into sealed %q", buffer.ErrDraining, r.cfg.Name)
}

// putMPSC is Put with a CAS-claimed tail for concurrent producers.
func (r *Ring) putMPSC(it *buffer.Item) (time.Duration, error) {
	var blocked time.Duration
	for {
		if r.closed.Load() {
			return blocked, buffer.ErrClosed
		}
		if r.sealed.Load() {
			return blocked, r.errSealed()
		}
		pos := r.tail.Load()
		seq := r.slots[pos&r.mask].seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				r.insert(pos, it)
				return blocked, nil
			}
		case diff < 0:
			// The slot is still draining a previous lap: the ring is
			// full at pos.
			d, err := r.parkProducer(pos)
			blocked += d
			if err != nil {
				return blocked, err
			}
		default:
			// Another producer claimed pos between our loads; retry.
			runtime.Gosched()
		}
	}
}

// PutBatch inserts items in order. In SPSC mode runs of free slots are
// written with one tail store and one accounting round per run; MPSC
// mode degrades to per-item CAS claims (contended producers cannot
// reserve runs without risking a capacity deadlock).
func (r *Ring) PutBatch(conn graph.ConnID, items []*buffer.Item) (int, time.Duration, error) {
	if err := r.checkProducer(conn); err != nil {
		return 0, 0, err
	}
	var blocked time.Duration
	if r.mpsc.Load() {
		for i, it := range items {
			d, err := r.putMPSC(it)
			blocked += d
			if err != nil {
				return i, blocked, err
			}
		}
		return len(items), blocked, nil
	}
	applied := 0
	for applied < len(items) {
		if r.closed.Load() {
			return applied, blocked, buffer.ErrClosed
		}
		if r.sealed.Load() {
			return applied, blocked, r.errSealed()
		}
		pos := r.tail.Load()
		// Count the run of free slots from pos, bounded by the batch.
		k := 0
		for applied+k < len(items) && k < len(r.slots) {
			if r.slots[(pos+uint64(k))&r.mask].seq.Load() != pos+uint64(k) {
				break
			}
			k++
		}
		if k == 0 {
			d, err := r.parkProducer(pos)
			blocked += d
			if err != nil {
				return applied, blocked, err
			}
			continue
		}
		var bytes int64
		for j := 0; j < k; j++ {
			it := items[applied+j]
			s := &r.slots[(pos+uint64(j))&r.mask]
			s.it = *it
			bytes += it.Size
			s.seq.Store(pos + uint64(j) + 1)
		}
		// The pointers stay ours even after the seq stores publish the
		// slots (consumers see only the copied values), so the whole run
		// recycles in one pool round.
		r.cfg.Pool.RecycleN(items[applied : applied+k])
		r.tail.Store(pos + uint64(k))
		r.accountPut(k, bytes)
		r.wakeConsumer()
		applied += k
	}
	return applied, blocked, nil
}

// tryPop pops one item into dst if one is published, without blocking.
// The head cursor is claimed with CAS rather than a plain store: the
// pop path is nominally single-consumer, but shutdown's Drain runs it
// concurrently with a consumer thread that has not yet observed the
// stop signal, and the CAS makes that overlap safe (an uncontended CAS
// costs the same cache-line ownership the store would).
func (r *Ring) tryPop(dst *buffer.GetResult) bool {
	for {
		pos := r.head.Load()
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			return false
		}
		if !r.head.CompareAndSwap(pos, pos+1) {
			continue // a concurrent drainer claimed pos; retry at the new head
		}
		// The CAS made [pos] exclusively ours: the publishing producer
		// released it with the seq store we already observed, and no
		// other popper can claim it now. Copy straight into dst (a local
		// copy passed to OnFree by address would escape and cost an
		// allocation per pop even with OnFree unset); OnFree observes
		// the slot's item in place before the slot is wiped and released.
		dst.Item = s.it
		dst.Skipped = nil
		dst.Window = nil
		dst.Blocked = 0
		if r.cfg.OnFree != nil {
			r.cfg.OnFree(&s.it, r.cfg.Clock.Now())
		}
		s.it = buffer.Item{}
		s.seq.Store(pos + uint64(len(r.slots)))
		r.frees.Add(1)
		r.liveBytes.Add(-dst.Item.Size)
		if r.mFrees != nil {
			r.mFrees.Inc()
		}
		r.wakeProducers()
		return true
	}
}

// popN pops up to len(dst) published items, amortizing the head claim,
// the accounting, the OnFree clock read, and the producer wakeup over
// the batch. Like tryPop it claims with CAS so Drain can overlap a
// late-running consumer.
func (r *Ring) popN(dst []buffer.GetResult) int {
	for {
		pos := r.head.Load()
		n := 0
		for n < len(dst) {
			if r.slots[(pos+uint64(n))&r.mask].seq.Load() != pos+uint64(n)+1 {
				break
			}
			n++
		}
		if n == 0 {
			return 0
		}
		if !r.head.CompareAndSwap(pos, pos+uint64(n)) {
			continue // lost the claim to a concurrent drainer; retry
		}
		var bytes int64
		for i := 0; i < n; i++ {
			s := &r.slots[(pos+uint64(i))&r.mask]
			it := s.it
			s.it = buffer.Item{}
			s.seq.Store(pos + uint64(i) + uint64(len(r.slots)))
			dst[i] = buffer.GetResult{Item: it}
			bytes += it.Size
		}
		r.frees.Add(int64(n))
		r.liveBytes.Add(-bytes)
		if r.cfg.OnFree != nil {
			at := r.cfg.Clock.Now()
			for i := 0; i < n; i++ {
				r.cfg.OnFree(&dst[i].Item, at)
			}
		}
		if r.mFrees != nil {
			r.mFrees.Add(int64(n))
		}
		r.wakeProducers()
		return n
	}
}

// Get pops the oldest item, blocking until one is available. A closed
// ring drains remaining items before reporting ErrClosed (queue
// parity); once every producer has failed the same drain-then-error
// shape applies with ErrPeerFailed.
func (r *Ring) Get(conn graph.ConnID) (buffer.GetResult, error) {
	var res buffer.GetResult
	if err := r.checkConsumer(conn); err != nil {
		return res, err
	}
	var blocked time.Duration
	for {
		if r.tryPop(&res) {
			r.noteDelivered(1)
			res.Blocked = blocked
			return res, nil
		}
		if r.closed.Load() {
			// Re-check after observing closed: a pop and the close may
			// race, and remaining items must drain first.
			if r.tryPop(&res) {
				r.noteDelivered(1)
				res.Blocked = blocked
				return res, nil
			}
			return buffer.GetResult{Blocked: blocked}, buffer.ErrClosed
		}
		if r.sealed.Load() {
			// Sealed and empty: the flush is complete — terminate like a
			// close (a pop may still race the seal, so re-check first).
			if r.tryPop(&res) {
				r.noteDelivered(1)
				res.Blocked = blocked
				return res, nil
			}
			return buffer.GetResult{Blocked: blocked}, buffer.ErrClosed
		}
		if r.prodsDead.Load() {
			if r.tryPop(&res) {
				res.Blocked = blocked
				return res, nil
			}
			return buffer.GetResult{Blocked: blocked}, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, r.cfg.Name)
		}
		blocked += r.parkConsumer()
	}
}

// noteDelivered records n items delivered to the consumer while sealed —
// the "drained" side of the conservation ledger. A no-op before Seal.
func (r *Ring) noteDelivered(n int) {
	if r.sealed.Load() && n > 0 {
		r.drainedN.Add(int64(n))
		if r.mDrained != nil {
			r.mDrained.Add(int64(n))
		}
	}
}

// GetBatch pops up to len(dst) items in FIFO order, blocking only until
// the first is available.
func (r *Ring) GetBatch(conn graph.ConnID, dst []buffer.GetResult) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if err := r.checkConsumer(conn); err != nil {
		return 0, err
	}
	var blocked time.Duration
	for {
		if n := r.popN(dst); n > 0 {
			r.noteDelivered(n)
			dst[0].Blocked = blocked
			return n, nil
		}
		if r.closed.Load() {
			if n := r.popN(dst); n > 0 {
				r.noteDelivered(n)
				dst[0].Blocked = blocked
				return n, nil
			}
			return 0, buffer.ErrClosed
		}
		if r.sealed.Load() {
			if n := r.popN(dst); n > 0 {
				r.noteDelivered(n)
				dst[0].Blocked = blocked
				return n, nil
			}
			return 0, buffer.ErrClosed
		}
		if r.prodsDead.Load() {
			if n := r.popN(dst); n > 0 {
				dst[0].Blocked = blocked
				return n, nil
			}
			return 0, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, r.cfg.Name)
		}
		blocked += r.parkConsumer()
	}
}

// TryGet is the non-blocking Get: ok is false when the ring is empty.
func (r *Ring) TryGet(conn graph.ConnID) (res buffer.GetResult, ok bool, err error) {
	if err := r.checkConsumer(conn); err != nil {
		return res, false, err
	}
	if r.tryPop(&res) {
		r.noteDelivered(1)
		return res, true, nil
	}
	if r.closed.Load() {
		if r.tryPop(&res) {
			r.noteDelivered(1)
			return res, true, nil
		}
		return buffer.GetResult{}, false, buffer.ErrClosed
	}
	if r.sealed.Load() {
		if r.tryPop(&res) {
			r.noteDelivered(1)
			return res, true, nil
		}
		return buffer.GetResult{}, false, buffer.ErrClosed
	}
	if r.prodsDead.Load() {
		if r.tryPop(&res) {
			return res, true, nil
		}
		return buffer.GetResult{}, false, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, r.cfg.Name)
	}
	return buffer.GetResult{}, false, nil
}

// GetAt is unsupported: a FIFO ring cannot consume by timestamp.
func (r *Ring) GetAt(conn graph.ConnID, ts vt.Timestamp) (buffer.GetResult, error) {
	return buffer.GetResult{}, fmt.Errorf("%w: GetAt on ring %q", buffer.ErrUnsupported, r.cfg.Name)
}

// WouldBeDead reports false in normal operation — ring items are handed
// to the consumer and never skipped — and true once every consumer has
// failed permanently.
func (r *Ring) WouldBeDead(ts vt.Timestamp) bool { return r.consDead.Load() }

// Seal flips the ring into drain mode: puts (including puts parked on
// capacity) reject with ErrDraining, while the consumer keeps popping
// the backlog and then observes ErrClosed. Idempotent.
func (r *Ring) Seal() {
	if r.sealed.Swap(true) {
		return
	}
	r.mu.Lock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// Drained reports that the ring is sealed and empty: the flush is
// complete.
func (r *Ring) Drained() bool {
	return r.sealed.Load() && r.tail.Load() == r.head.Load()
}

// DrainStats returns the cumulative drain accounting: items popped by
// the consumer after Seal, and items discarded undelivered by Drain.
func (r *Ring) DrainStats() (drained, shed int64) {
	return r.drainedN.Load(), r.shedN.Load()
}

// Close marks the ring closed and wakes every blocked operation; the
// consumer drains remaining items, then sees ErrClosed.
func (r *Ring) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.mu.Lock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool { return r.closed.Load() }

// Drain discards items still buffered after Close, reporting each to
// OnFree and counting it as explicitly shed, and returns how many it
// discarded. It reuses the consumer pop path, whose CAS-claimed head
// makes it safe to run concurrently with a consumer thread that has not
// yet observed the stop signal (the runtime calls Drain from Stop while
// threads may still be unwinding).
func (r *Ring) Drain() int {
	total := 0
	var scratch [64]buffer.GetResult
	for {
		n := r.popN(scratch[:])
		total += n
		if n < len(scratch) {
			break
		}
	}
	if total > 0 {
		r.shedN.Add(int64(total))
		if r.mShed != nil {
			r.mShed.Add(int64(total))
		}
	}
	return total
}

// Occupancy returns the current live item count and bytes.
func (r *Ring) Occupancy() (items int, bytes int64) {
	return int(r.tail.Load() - r.head.Load()), r.liveBytes.Load()
}

// Stats returns cumulative puts and frees.
func (r *Ring) Stats() (puts, frees int64) {
	return r.puts.Load(), r.frees.Load()
}

// HighWater returns the high-water marks of live items and bytes since
// creation (zeros when metrics are disabled), implementing
// buffer.HighWaterer like the Base-backed backends.
func (r *Ring) HighWater() (items, bytes int64) {
	if r.mItemsHW == nil {
		return 0, 0
	}
	return r.mItemsHW.Value(), r.mBytesHW.Value()
}
